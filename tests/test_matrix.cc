// Tests for the Matrix / view layer.
#include <gtest/gtest.h>

#include "la/matrix.h"
#include "la/norms.h"

namespace bst::la {
namespace {

TEST(Matrix, InitializerListIsRowMajor) {
  Mat a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(a(1, 2), 6.0);
}

TEST(Matrix, ColumnMajorStorageLayout) {
  Mat a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  EXPECT_DOUBLE_EQ(a.data()[0], 1);
  EXPECT_DOUBLE_EQ(a.data()[1], 2);
  EXPECT_DOUBLE_EQ(a.data()[2], 3);
  EXPECT_DOUBLE_EQ(a.data()[3], 4);
}

TEST(Matrix, BlockViewSharesStorage) {
  Mat a(4, 4);
  View b = a.block(1, 1, 2, 2);
  b(0, 0) = 9.0;
  b(1, 1) = 7.0;
  EXPECT_DOUBLE_EQ(a(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 7.0);
  EXPECT_EQ(b.ld(), 4);
}

TEST(Matrix, NestedBlockViews) {
  Mat a(6, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 6; ++i) a(i, j) = static_cast<double>(10 * i + j);
  View outer = a.block(1, 1, 4, 4);
  View inner = outer.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(inner(0, 0), a(2, 2));
  EXPECT_DOUBLE_EQ(inner(1, 1), a(3, 3));
}

TEST(Matrix, CopyAndSetZero) {
  Mat a{{1, 2}, {3, 4}};
  Mat b(2, 2);
  copy(a.view(), b.view());
  EXPECT_DOUBLE_EQ(max_diff(a.view(), b.view()), 0.0);
  set_zero(b.view());
  EXPECT_DOUBLE_EQ(max_abs(b.view()), 0.0);
}

TEST(Matrix, IdentityAndTranspose) {
  Mat i3 = identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Mat a{{1, 2, 3}, {4, 5, 6}};
  Mat at = transpose(a.view());
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(Norms, FrobeniusOneInfMax) {
  Mat a{{3, -4}, {0, 0}};
  EXPECT_DOUBLE_EQ(frobenius(a.view()), 5.0);
  EXPECT_DOUBLE_EQ(max_abs(a.view()), 4.0);
  EXPECT_DOUBLE_EQ(norm1(a.view()), 4.0);      // max column abs-sum
  EXPECT_DOUBLE_EQ(norm_inf(a.view()), 7.0);   // max row abs-sum
}

TEST(Norms, EmptyAndZero) {
  Mat z(3, 3);
  EXPECT_DOUBLE_EQ(frobenius(z.view()), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(z.view()), 0.0);
}

}  // namespace
}  // namespace bst::la
