// Tests for the dense factorizations (Cholesky, LDL^T, signature LDL,
// trmm helpers).
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/ldlt.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "util/rng.h"

namespace bst::la {
namespace {

Mat random_spd(index_t n, util::Rng& rng, double ridge = 1.0) {
  Mat b(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.uniform(-1, 1);
  Mat a(n, n);
  gemm(Op::None, Op::Trans, 1.0, b.view(), b.view(), 0.0, a.view());
  for (index_t i = 0; i < n; ++i) a(i, i) += ridge;
  return a;
}

Mat random_symmetric(index_t n, util::Rng& rng) {
  Mat a(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i <= j; ++i) a(i, j) = a(j, i) = rng.uniform(-1, 1);
  return a;
}

class CholeskySweep : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySweep, ReconstructsMatrix) {
  const index_t n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  Mat a = random_spd(n, rng);
  Mat l = cholesky_factor(a.view(), /*block=*/8);  // small block to hit the blocked path
  Mat rec(n, n);
  gemm(Op::None, Op::Trans, 1.0, l.view(), l.view(), 0.0, rec.view());
  EXPECT_LT(max_diff(rec.view(), a.view()), 1e-10 * static_cast<double>(n));
  EXPECT_TRUE(is_upper_triangular(transpose(l.view()).view(), 0.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySweep, ::testing::Values(1, 2, 3, 7, 8, 9, 16, 33, 64));

TEST(Cholesky, RejectsIndefinite) {
  Mat a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  Mat work(2, 2);
  copy(a.view(), work.view());
  EXPECT_FALSE(cholesky_lower(work.view()));
  EXPECT_THROW(cholesky_factor(a.view()), std::runtime_error);
}

TEST(Cholesky, RejectsSingular) {
  Mat a{{1.0, 1.0}, {1.0, 1.0}};
  Mat work(2, 2);
  copy(a.view(), work.view());
  EXPECT_FALSE(cholesky_lower(work.view()));
}

class LdltSweep : public ::testing::TestWithParam<int> {};

TEST_P(LdltSweep, ReconstructsSymmetricMatrix) {
  const index_t n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 3 + 1));
  Mat a = random_symmetric(n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += (i % 2 == 0 ? 2.0 : -2.0);  // indefinite
  Mat l(n, n);
  copy(a.view(), l.view());
  std::vector<double> d;
  ASSERT_TRUE(ldlt_unpivoted(l.view(), d));
  // rec = L D L^T with unit lower L.
  keep_triangle(l.view(), /*keep_upper=*/false);
  for (index_t i = 0; i < n; ++i) l(i, i) = 1.0;
  Mat ld(n, n);
  copy(l.view(), ld.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ld(i, j) *= d[static_cast<std::size_t>(j)];
  Mat rec(n, n);
  gemm(Op::None, Op::Trans, 1.0, ld.view(), l.view(), 0.0, rec.view());
  EXPECT_LT(max_diff(rec.view(), a.view()), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LdltSweep, ::testing::Values(1, 2, 5, 8, 17, 32));

TEST(Ldlt, DetectsSingularMinor) {
  Mat a{{1.0, 1.0}, {1.0, 1.0}};  // second pivot is exactly zero
  std::vector<double> d;
  EXPECT_FALSE(ldlt_unpivoted(a.view(), d));
}

TEST(LdlSignature, ReconstructsAndSignsMatchInertia) {
  util::Rng rng(77);
  const index_t n = 6;
  Mat a = random_symmetric(n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += (i < 3 ? 3.0 : -3.0);
  Mat work(n, n);
  copy(a.view(), work.view());
  Mat l;
  std::vector<double> sigma;
  ASSERT_TRUE(ldl_signature(work.view(), l, sigma));
  // rec = L S L^T.
  Mat ls(n, n);
  copy(l.view(), ls.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) ls(i, j) *= sigma[static_cast<std::size_t>(j)];
  Mat rec(n, n);
  gemm(Op::None, Op::Trans, 1.0, ls.view(), l.view(), 0.0, rec.view());
  EXPECT_LT(max_diff(rec.view(), a.view()), 1e-9);
  for (double s : sigma) EXPECT_TRUE(s == 1.0 || s == -1.0);
}

TEST(LdlSignature, SpdGivesAllPlusAndMatchesCholesky) {
  util::Rng rng(13);
  Mat a = random_spd(5, rng);
  Mat work(5, 5);
  copy(a.view(), work.view());
  Mat l;
  std::vector<double> sigma;
  ASSERT_TRUE(ldl_signature(work.view(), l, sigma));
  for (double s : sigma) EXPECT_DOUBLE_EQ(s, 1.0);
  Mat lc = cholesky_factor(a.view());
  EXPECT_LT(max_diff(l.view(), lc.view()), 1e-10);
}

TEST(Trmm, LeftLowerMatchesGemm) {
  util::Rng rng(31);
  Mat t(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = j; i < 4; ++i) t(i, j) = rng.uniform(-1, 1);
  Mat b(4, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) b(i, j) = rng.uniform(-1, 1);
  Mat expect(4, 3);
  gemm(Op::None, Op::None, 2.0, t.view(), b.view(), 0.0, expect.view());
  trmm(TrSide::Left, TrUplo::Lower, /*trans=*/false, 2.0, t.view(), b.view());
  EXPECT_LT(max_diff(b.view(), expect.view()), 1e-12);
}

TEST(Trmm, RightUpperTransMatchesGemm) {
  util::Rng rng(37);
  Mat t(3, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i <= j; ++i) t(i, j) = rng.uniform(-1, 1);
  Mat b(4, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) b(i, j) = rng.uniform(-1, 1);
  Mat expect(4, 3);
  gemm(Op::None, Op::Trans, 1.0, b.view(), t.view(), 0.0, expect.view());
  trmm(TrSide::Right, TrUplo::Upper, /*trans=*/true, 1.0, t.view(), b.view());
  EXPECT_LT(max_diff(b.view(), expect.view()), 1e-12);
}

TEST(KeepTriangle, ZeroesStrictParts) {
  Mat a{{1, 2}, {3, 4}};
  keep_triangle(a.view(), /*keep_upper=*/true);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  Mat b{{1, 2}, {3, 4}};
  keep_triangle(b.view(), /*keep_upper=*/false);
  EXPECT_DOUBLE_EQ(b(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(b(1, 0), 3.0);
}

}  // namespace
}  // namespace bst::la
