// Tests for the block hyperbolic Householder representations
// (paper sections 4-6): all four aggregation schemes must agree with each
// other, with the sequential application, and with the dense composite.
#include <gtest/gtest.h>

#include <cmath>

#include "core/block_reflector.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "util/rng.h"

namespace bst::core {
namespace {

Signature spd_sig(index_t m) {
  Signature w(static_cast<std::size_t>(2 * m), 1.0);
  for (index_t i = 0; i < m; ++i) w[static_cast<std::size_t>(m + i)] = -1.0;
  return w;
}

// A pivot pair with strongly dominant diagonal so every hyperbolic norm in
// the elimination stays positive.
void random_pivot_pair(index_t m, util::Rng& rng, Mat& p, Mat& q) {
  p = Mat(m, m);
  q = Mat(m, m);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j; ++i) p(i, j) = rng.uniform(-0.5, 0.5);
    p(j, j) = rng.uniform(4.0, 6.0);
    for (index_t i = 0; i < m; ++i) q(i, j) = rng.uniform(-0.5, 0.5);
  }
}

Mat random_generator(index_t m, index_t cols, util::Rng& rng) {
  Mat g(m, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < m; ++i) g(i, j) = rng.uniform(-1, 1);
  return g;
}

const Representation kAll[] = {Representation::AccumulatedU, Representation::VY1,
                               Representation::VY2, Representation::YTY,
                               Representation::Sequential};

class RepSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

// Every representation must transform the pivot pair identically and must
// equal the explicit product of the scalar reflectors.
TEST_P(RepSweep, AllFormsAgreeOnPivotAndTrailing) {
  const auto [repi, m] = GetParam();
  const Representation rep = kAll[repi];
  util::Rng rng(static_cast<std::uint64_t>(1000 + m));
  Mat p0, q0;
  random_pivot_pair(m, rng, p0, q0);
  const index_t cols = 3 * m;
  Mat a0 = random_generator(m, cols, rng);
  Mat b0 = random_generator(m, cols, rng);

  // Reference: Sequential representation.
  Mat pr(m, m), qr(m, m), ar(m, cols), br(m, cols);
  la::copy(p0.view(), pr.view());
  la::copy(q0.view(), qr.view());
  la::copy(a0.view(), ar.view());
  la::copy(b0.view(), br.view());
  BlockReflector ref(Representation::Sequential, m, spd_sig(m));
  ASSERT_FALSE(ref.build(pr.view(), qr.view()).has_value());
  ref.apply(ar.view(), br.view());

  Mat pt(m, m), qt(m, m), at(m, cols), bt(m, cols);
  la::copy(p0.view(), pt.view());
  la::copy(q0.view(), qt.view());
  la::copy(a0.view(), at.view());
  la::copy(b0.view(), bt.view());
  BlockReflector bref(rep, m, spd_sig(m));
  ASSERT_FALSE(bref.build(pt.view(), qt.view()).has_value());
  bref.apply(at.view(), bt.view());

  EXPECT_LT(la::max_diff(pt.view(), pr.view()), 1e-11);
  EXPECT_LT(la::max_diff(qt.view(), qr.view()), 1e-11);
  EXPECT_LT(la::max_diff(at.view(), ar.view()), 1e-10);
  EXPECT_LT(la::max_diff(bt.view(), br.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(FormsAndSizes, RepSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3, 4, 5, 8)));

TEST(BlockReflector, PivotBecomesTriangularAndQZero) {
  util::Rng rng(7);
  const index_t m = 4;
  Mat p, q;
  random_pivot_pair(m, rng, p, q);
  BlockReflector bref(Representation::VY2, m, spd_sig(m));
  ASSERT_FALSE(bref.build(p.view(), q.view()).has_value());
  EXPECT_TRUE(la::is_upper_triangular(p.view(), 0.0));
  EXPECT_DOUBLE_EQ(la::max_abs(q.view()), 0.0);
  // Diagonal entries are -sigma_k, nonzero.
  for (index_t k = 0; k < m; ++k) EXPECT_GT(std::fabs(p(k, k)), 0.1);
}

TEST(BlockReflector, DenseCompositeIsWUnitary) {
  util::Rng rng(8);
  const index_t m = 3;
  Mat p, q;
  random_pivot_pair(m, rng, p, q);
  Signature w = spd_sig(m);
  BlockReflector bref(Representation::YTY, m, w);
  ASSERT_FALSE(bref.build(p.view(), q.view()).has_value());
  Mat u = bref.dense_u();
  EXPECT_LT(w_unitarity_error(u.view(), w), 1e-10);
}

TEST(BlockReflector, DenseCompositeMatchesAccumulatedU) {
  util::Rng rng(9);
  const index_t m = 4;
  Mat p, q;
  random_pivot_pair(m, rng, p, q);
  // AccumulatedU applied to the identity must reproduce dense_u().
  BlockReflector bref(Representation::AccumulatedU, m, spd_sig(m));
  ASSERT_FALSE(bref.build(p.view(), q.view()).has_value());
  Mat u = bref.dense_u();
  Mat eye_a(m, 2 * m), eye_b(m, 2 * m);
  for (index_t i = 0; i < m; ++i) {
    eye_a(i, i) = 1.0;
    eye_b(i, m + i) = 1.0;
  }
  bref.apply(eye_a.view(), eye_b.view());
  // Columns of [eye_a; eye_b] are now the columns of U.
  for (index_t j = 0; j < 2 * m; ++j)
    for (index_t i = 0; i < m; ++i) {
      EXPECT_NEAR(eye_a(i, j), u(i, j), 1e-11);
      EXPECT_NEAR(eye_b(i, j), u(m + i, j), 1e-11);
    }
}

TEST(BlockReflector, BreakdownReportedAtRightColumn) {
  const index_t m = 2;
  // Column 1's hyperbolic norm is exactly zero: p11 = q11 after the first
  // reflector does nothing to them (q column 0 is zero => U_1 = W on it...
  // construct directly: q(:,0) = 0 so step 0 succeeds trivially.
  Mat p{{2.0, 0.0}, {0.0, 1.0}};
  Mat q{{0.0, 0.0}, {0.0, 1.0}};
  BlockReflector bref(Representation::VY2, m, spd_sig(m));
  auto bd = bref.build(p.view(), q.view(), 1e-12);
  ASSERT_TRUE(bd.has_value());
  EXPECT_EQ(bd->column, 1);
  EXPECT_NEAR(bd->hnorm, 0.0, 1e-12);
}

TEST(BlockReflector, SplitQuadrantApplicationMatchesStacked) {
  // The A and B views handed to apply() live at different offsets of a
  // larger array (the in-place virtual shift); results must be identical
  // to the contiguous case.
  util::Rng rng(10);
  const index_t m = 3, cols = 6;
  Mat p, q;
  random_pivot_pair(m, rng, p, q);
  Mat big(2 * m, 12 * m);
  for (index_t j = 0; j < big.cols(); ++j)
    for (index_t i = 0; i < big.rows(); ++i) big(i, j) = rng.uniform(-1, 1);
  View a = big.block(0, 0, m, cols);
  View b = big.block(m, 5 * m, m, cols);
  Mat ac(m, cols), bc(m, cols);
  la::copy(a, ac.view());
  la::copy(b, bc.view());

  Mat p1(m, m), q1(m, m);
  la::copy(p.view(), p1.view());
  la::copy(q.view(), q1.view());
  BlockReflector bref(Representation::VY1, m, spd_sig(m));
  ASSERT_FALSE(bref.build(p1.view(), q1.view()).has_value());
  bref.apply(a, b);
  bref.apply(ac.view(), bc.view());
  EXPECT_LT(la::max_diff(a, ac.view()), 0.0 + 1e-15);
  EXPECT_LT(la::max_diff(b, bc.view()), 0.0 + 1e-15);
}

TEST(BlockReflector, GeneralSignatureFormsAgree) {
  // Signature with mixed signs in the upper half (indefinite leading block).
  util::Rng rng(11);
  const index_t m = 3;
  Signature w{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  // Build a pivot pair consistent with the signature: huge diagonal keeps
  // each column's hyperbolic norm sign equal to sig[k].
  Mat p(m, m), q(m, m);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j; ++i) p(i, j) = rng.uniform(-0.3, 0.3);
    p(j, j) = rng.uniform(5.0, 6.0);
    for (index_t i = 0; i < m; ++i) q(i, j) = rng.uniform(-0.3, 0.3);
  }
  const index_t cols = 2 * m;
  Mat a0 = random_generator(m, cols, rng), b0 = random_generator(m, cols, rng);

  Mat pr(m, m), qr(m, m), ar(m, cols), br(m, cols);
  la::copy(p.view(), pr.view());
  la::copy(q.view(), qr.view());
  la::copy(a0.view(), ar.view());
  la::copy(b0.view(), br.view());
  BlockReflector ref(Representation::Sequential, m, w);
  ASSERT_FALSE(ref.build(pr.view(), qr.view()).has_value());
  ref.apply(ar.view(), br.view());

  for (Representation rep : {Representation::AccumulatedU, Representation::VY1,
                             Representation::VY2, Representation::YTY}) {
    Mat pt(m, m), qt(m, m), at(m, cols), bt(m, cols);
    la::copy(p.view(), pt.view());
    la::copy(q.view(), qt.view());
    la::copy(a0.view(), at.view());
    la::copy(b0.view(), bt.view());
    BlockReflector bref(rep, m, w);
    ASSERT_FALSE(bref.build(pt.view(), qt.view()).has_value()) << to_string(rep);
    bref.apply(at.view(), bt.view());
    EXPECT_LT(la::max_diff(pt.view(), pr.view()), 1e-11) << to_string(rep);
    EXPECT_LT(la::max_diff(at.view(), ar.view()), 1e-10) << to_string(rep);
    EXPECT_LT(la::max_diff(bt.view(), br.view()), 1e-10) << to_string(rep);
  }
}

TEST(BlockReflector, ToStringNames) {
  EXPECT_STREQ(to_string(Representation::AccumulatedU), "U");
  EXPECT_STREQ(to_string(Representation::VY1), "VY1");
  EXPECT_STREQ(to_string(Representation::VY2), "VY2");
  EXPECT_STREQ(to_string(Representation::YTY), "YTY");
  EXPECT_STREQ(to_string(Representation::Sequential), "seq");
}

}  // namespace
}  // namespace bst::core
