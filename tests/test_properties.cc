// Cross-cutting property tests: algebraic invariances of the factorization,
// determinism, failure injection, and family sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/indefinite.h"
#include "core/schur.h"
#include "core/solve.h"
#include "la/blas.h"
#include "la/ldlt.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;

double reconstruction_error(const BlockToeplitz& t, CView r) {
  const index_t n = t.order();
  Mat rec(n, n);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, r, r, 0.0, rec.view());
  Mat dense = t.dense();
  return la::max_diff(rec.view(), dense.view()) / (1.0 + la::max_abs(dense.view()));
}

BlockToeplitz scaled(const BlockToeplitz& t, double alpha) {
  Mat row(t.block_size(), t.block_size() * t.num_blocks());
  la::copy(t.first_row(), row.view());
  for (index_t j = 0; j < row.cols(); ++j)
    for (index_t i = 0; i < row.rows(); ++i) row(i, j) *= alpha;
  return BlockToeplitz(t.block_size(), std::move(row));
}

TEST(Properties, ScalingEquivariance) {
  // T -> alpha T implies R -> sqrt(alpha) R (for alpha > 0).
  BlockToeplitz t = toeplitz::random_spd_block(2, 6, 2, 3);
  const double alpha = 7.0;
  SchurFactor f1 = block_schur_factor(t);
  SchurFactor f2 = block_schur_factor(scaled(t, alpha));
  const double s = std::sqrt(alpha);
  for (index_t j = 0; j < t.order(); ++j)
    for (index_t i = 0; i < t.order(); ++i)
      EXPECT_NEAR(f2.r(i, j), s * f1.r(i, j), 1e-9 * (1.0 + std::fabs(f1.r(i, j))));
}

TEST(Properties, DeterministicAcrossRuns) {
  BlockToeplitz t = toeplitz::random_spd_block(3, 7, 2, 11);
  SchurFactor f1 = block_schur_factor(t);
  SchurFactor f2 = block_schur_factor(t);
  EXPECT_DOUBLE_EQ(la::max_diff(f1.r.view(), f2.r.view()), 0.0);  // bit-identical
  EXPECT_EQ(f1.flops, f2.flops);
}

TEST(Properties, DiagonalShiftImprovesConditioning) {
  // T + beta I is "more SPD": reconstruction stays accurate and the factor
  // diagonal grows.
  BlockToeplitz t = toeplitz::prolate(24, 0.3);
  Mat row(1, 24);
  la::copy(t.first_row(), row.view());
  row(0, 0) += 1.0;
  BlockToeplitz ts(1, std::move(row));
  SchurFactor f0 = block_schur_factor(t);
  SchurFactor f1 = block_schur_factor(ts);
  EXPECT_LT(reconstruction_error(ts, f1.r.view()), 1e-12);
  double min0 = 1e300, min1 = 1e300;
  for (index_t i = 0; i < 24; ++i) {
    min0 = std::min(min0, std::fabs(f0.r(i, i)));
    min1 = std::min(min1, std::fabs(f1.r(i, i)));
  }
  EXPECT_GT(min1, min0);
}

class FamilySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FamilySweep, FactorSolveRoundTrip) {
  const auto [family, ms] = GetParam();
  BlockToeplitz t = [&]() -> BlockToeplitz {
    switch (family) {
      case 0: return toeplitz::kms(48, 0.75);
      case 1: return toeplitz::prolate(48, 0.4);
      case 2: return toeplitz::fgn(48, 0.7);
      case 3: return toeplitz::random_spd_block(2, 24, 3, 5).with_block_size(2);
      default: return toeplitz::ar1_block(4, 12, 9);
    }
  }();
  SchurOptions opt;
  if (ms > 0 && t.order() % ms == 0 && ms % t.block_size() == 0) opt.block_size = ms;
  SchurFactor f = block_schur_factor(t, opt);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = solve_spd(f, b);
  double err = 0.0;
  for (double v : x) err = std::max(err, std::fabs(v - 1.0));
  // The prolate matrix is notoriously ill-conditioned (cond ~ 1e10 at this
  // size), so the attainable forward error is correspondingly larger.
  const double tol = (family == 1) ? 1e-2 : 1e-6;
  EXPECT_LT(err, tol) << "family " << family << " ms " << ms;
}

INSTANTIATE_TEST_SUITE_P(FamiliesAndBlockSizes, FamilySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(0, 2, 4, 8)));

TEST(Properties, NanInputIsRejectedNotSilent) {
  Mat row(1, 8);
  row(0, 0) = 1.0;
  row(0, 3) = std::numeric_limits<double>::quiet_NaN();
  BlockToeplitz t(1, std::move(row));
  // The factorization must fail loudly (breakdown), never return a factor
  // full of NaNs labelled as success.
  try {
    SchurFactor f = block_schur_factor(t);
    // If it got through, the factor must at least be non-finite-free...
    bool has_nan = false;
    for (index_t j = 0; j < 8; ++j)
      for (index_t i = 0; i < 8; ++i) has_nan |= std::isnan(f.r(i, j));
    EXPECT_TRUE(has_nan) << "NaN input silently produced a finite factor";
    GTEST_SKIP() << "NaN propagated (acceptable; documented)";
  } catch (const NotPositiveDefinite&) {
    SUCCEED();
  }
}

TEST(Properties, NanLeadingBlockThrows) {
  Mat row(1, 4);
  row(0, 0) = std::numeric_limits<double>::quiet_NaN();
  BlockToeplitz t(1, std::move(row));
  EXPECT_THROW(block_schur_factor(t), std::runtime_error);
}

TEST(Properties, RefinementNeverWorsensResidual) {
  BlockToeplitz t = toeplitz::singular_minor_family(48, 21);
  LdlFactor f = block_schur_indefinite(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  toeplitz::MatVec op(t);
  std::vector<double> x = solve_ldl(f, b);
  std::vector<double> r;
  op.residual(b, x, r);
  double prev = la::norm2(r);
  for (int it = 0; it < 3; ++it) {
    std::vector<double> dx = solve_ldl(f, r);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
    op.residual(b, x, r);
    const double cur = la::norm2(r);
    EXPECT_LT(cur, prev * 1.01) << "iteration " << it;
    prev = cur;
  }
}

TEST(Properties, EmitOrderIndependentOfRepresentation) {
  // The streaming sink must see identical content regardless of rep.
  BlockToeplitz t = toeplitz::random_spd_block(2, 6, 2, 31);
  auto collect = [&](Representation rep) {
    SchurOptions opt;
    opt.rep = rep;
    std::vector<double> all;
    block_schur_stream(t, opt, [&](index_t, CView rows) {
      for (index_t j = 0; j < rows.cols(); ++j)
        for (index_t i = 0; i < rows.rows(); ++i) all.push_back(rows(i, j));
    });
    return all;
  };
  const auto a = collect(Representation::VY2);
  const auto b = collect(Representation::YTY);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST(Properties, FactorDiagonalSquaresSumToTrace) {
  // trace(T) = ||R||_F^2 since T = R^T R.
  BlockToeplitz t = toeplitz::random_spd_block(3, 5, 2, 17);
  SchurFactor f = block_schur_factor(t);
  double trace = 0.0;
  for (index_t i = 0; i < t.order(); ++i) trace += t.entry(i, i);
  const double fro = la::frobenius(f.r.view());
  EXPECT_NEAR(fro * fro, trace, 1e-9 * trace);
}

TEST(Properties, IndefiniteDeterminantSignMatchesSignature) {
  // det(T) = det(R)^2 * prod(D): the signature product gives det's sign.
  BlockToeplitz t = toeplitz::random_indefinite(8, 13, /*diag=*/1.4);
  LdlFactor f = block_schur_indefinite(t);
  ASSERT_TRUE(f.perturbations.empty());
  double sign_d = 1.0;
  for (double d : f.d) sign_d *= d;
  // Reference determinant sign via dense LDL^T pivots.
  Mat dense = t.dense();
  std::vector<double> piv;
  ASSERT_TRUE(la::ldlt_unpivoted(dense.view(), piv));
  double sign_ref = 1.0;
  for (double v : piv) sign_ref *= (v > 0 ? 1.0 : -1.0);
  EXPECT_DOUBLE_EQ(sign_d, sign_ref);
}

}  // namespace
}  // namespace bst::core
