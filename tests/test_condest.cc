// Tests for the 1-norm condition estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dense_solver.h"
#include "core/schur.h"
#include "core/solve.h"
#include "la/condest.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "util/rng.h"

namespace bst::la {
namespace {

// Exact ||A^{-1}||_1 by dense inversion (columns via solves).
double exact_invnorm1(CView a) {
  const index_t n = a.rows();
  Mat inv(n, n);
  for (index_t j = 0; j < n; ++j) {
    std::vector<double> e(static_cast<std::size_t>(n), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    std::vector<double> x = baseline::dense_sym_solve(a, e);
    for (index_t i = 0; i < n; ++i) inv(i, j) = x[static_cast<std::size_t>(i)];
  }
  return norm1(inv.view());
}

TEST(Condest, ExactOnDiagonalMatrix) {
  const index_t n = 5;
  Mat a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = static_cast<double>(i + 1);
  auto solve = [&](const std::vector<double>& b, std::vector<double>& x) {
    x.resize(b.size());
    for (index_t i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)] / a(i, i);
  };
  const double est = invnorm1_estimate(n, solve, solve);
  EXPECT_NEAR(est, 1.0, 1e-12);  // ||A^{-1}||_1 = 1/min diag = 1
}

class CondestSweep : public ::testing::TestWithParam<int> {};

TEST_P(CondestSweep, WithinFactorOfExactOnSpdToeplitz) {
  const index_t n = 16;
  const double rho = 0.1 * GetParam();
  toeplitz::BlockToeplitz t = toeplitz::kms(n, rho);
  Mat dense = t.dense();
  core::SchurFactor f = core::block_schur_factor(t);
  auto solve = [&](const std::vector<double>& b, std::vector<double>& x) {
    x = core::solve_spd(f, b);
  };
  const double est = invnorm1_estimate(n, solve, solve);
  const double exact = exact_invnorm1(dense.view());
  // Hager's estimate is a lower bound, almost always within a small factor.
  EXPECT_LE(est, exact * (1.0 + 1e-10));
  EXPECT_GE(est, exact * 0.3);
}

INSTANTIATE_TEST_SUITE_P(Rhos, CondestSweep, ::testing::Values(1, 3, 5, 7, 9));

TEST(Condest, TracksIllConditioning) {
  // The prolate matrix's condition number explodes as n grows; the
  // estimate must grow with it.
  auto cond_of = [&](index_t n) {
    toeplitz::BlockToeplitz t = toeplitz::prolate(n, 0.35);
    core::SchurFactor f = core::block_schur_factor(t);
    auto solve = [&](const std::vector<double>& b, std::vector<double>& x) {
      x = core::solve_spd(f, b);
    };
    return condest1(n, norm1(t.dense().view()), solve, solve);
  };
  const double c8 = cond_of(8);
  const double c24 = cond_of(24);
  EXPECT_GT(c24, 10.0 * c8);
  EXPECT_GT(c8, 1.0);
}

TEST(Condest, WellConditionedNearOne) {
  const index_t n = 12;
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.05);  // near identity
  core::SchurFactor f = core::block_schur_factor(t);
  auto solve = [&](const std::vector<double>& b, std::vector<double>& x) {
    x = core::solve_spd(f, b);
  };
  const double c = condest1(n, norm1(t.dense().view()), solve, solve);
  EXPECT_GT(c, 1.0);
  EXPECT_LT(c, 3.0);
}

TEST(Condest, ZeroOrder) {
  auto solve = [](const std::vector<double>&, std::vector<double>& x) { x.clear(); };
  EXPECT_DOUBLE_EQ(invnorm1_estimate(0, solve, solve), 0.0);
}

}  // namespace
}  // namespace bst::la
