// Exhaustive tests for the packed/SIMD/threaded level-3 kernel stack
// (la/blas3.cc): correctness against naive references over odd/prime sizes,
// every Op/Side/Uplo/Diag combination, strided views, alpha/beta sweeps and
// micro-kernel edge tiles, with max-ulp/forward-error bounds; plus the
// counter invariants (closed-form charges, merge-on-join) that keep
// model_ratio exact under threading.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "la/blas.h"
#include "la/kernel_config.h"
#include "util/flops.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::la {
namespace {

Mat random_matrix(index_t r, index_t c, util::Rng& rng) {
  Mat a(r, c);
  for (index_t j = 0; j < c; ++j)
    for (index_t i = 0; i < r; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

// Restores the process-wide KernelConfig on scope exit so tests that force
// packing/SIMD/threading choices cannot leak into each other.
struct ConfigGuard {
  KernelConfig saved = KernelConfig::active();
  ConfigGuard() = default;
  ConfigGuard(const ConfigGuard&) = delete;
  ConfigGuard& operator=(const ConfigGuard&) = delete;
  ~ConfigGuard() { KernelConfig::set_active(saved); }
};

// Tiny blocking forces many KC/MC/NC iterations and edge panels even at
// test sizes; pack_min_* = 0/1 routes everything through the packed path.
KernelConfig forced_packed(bool simd) {
  KernelConfig cfg;
  cfg.mc = 16;
  cfg.kc = 8;
  cfg.nc = 12;
  cfg.pack_min_flops = 0;
  cfg.pack_min_m = 1;
  cfg.simd = simd;
  return cfg;
}

// Total order on doubles for ulp distances (negatives mirrored below the
// bias so the distance counts representable values between x and y).
std::uint64_t ulp_key(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof u);
  const std::uint64_t bias = 0x8000000000000000ull;
  return (u & bias) ? bias - (u & ~bias) : bias + u;
}

std::uint64_t ulp_distance(double x, double y) {
  if (!std::isfinite(x) || !std::isfinite(y)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t kx = ulp_key(x), ky = ulp_key(y);
  return kx > ky ? kx - ky : ky - kx;
}

constexpr std::uint64_t kMaxUlps = 256;

// Reference C = alpha op(A) op(B) + beta C0, plus the matching magnitude
// accumulation |alpha| |op(A)| |op(B)| + |beta| |C0| used for the forward
// error bound (the packed kernel sums in a different order than the naive
// triple loop, so elementwise agreement holds only to ~k*eps*magnitude).
void naive_gemm(Op ta, Op tb, double alpha, CView a, CView b, double beta, CView c0,
                Mat& ref, Mat& mag) {
  const index_t m = (ta == Op::None) ? a.rows() : a.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  const index_t n = (tb == Op::None) ? b.cols() : b.rows();
  ref = Mat(m, n);
  mag = Mat(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0, sa = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = (ta == Op::None) ? a(i, l) : a(l, i);
        const double bv = (tb == Op::None) ? b(l, j) : b(j, l);
        s += av * bv;
        sa += std::fabs(av * bv);
      }
      ref(i, j) = alpha * s + beta * c0(i, j);
      mag(i, j) = std::fabs(alpha) * sa + std::fabs(beta * c0(i, j));
    }
}

void expect_close(CView got, const Mat& ref, const Mat& mag, index_t k, const char* what) {
  const double eps = std::numeric_limits<double>::epsilon();
  const double bound_scale = static_cast<double>(k + 4) * eps;
  for (index_t j = 0; j < ref.cols(); ++j)
    for (index_t i = 0; i < ref.rows(); ++i) {
      const double g = got(i, j), r = ref(i, j);
      const double abs_bound = bound_scale * mag(i, j) + 1e-300;
      const bool ok = (std::fabs(g - r) <= abs_bound) || (ulp_distance(g, r) <= kMaxUlps);
      ASSERT_TRUE(ok) << what << " mismatch at (" << i << "," << j << "): got " << g
                      << " want " << r << " |diff| " << std::fabs(g - r) << " bound "
                      << abs_bound << " ulps " << ulp_distance(g, r);
    }
}

struct Shape {
  index_t m, n, k;
};

// Odd/prime sizes, exact micro-tiles (8x6 multiples), edge tiles with
// m % 8 != 0 and n % 6 != 0, degenerate rows/columns, and the Schur hot
// shapes (narrow panels against wide trailing generators).
const Shape kGemmShapes[] = {
    {1, 1, 1},   {2, 3, 1},    {3, 5, 7},    {5, 2, 9},    {7, 11, 13},  {8, 6, 16},
    {9, 7, 5},   {13, 17, 19}, {16, 12, 8},  {17, 23, 29}, {31, 29, 37}, {40, 42, 41},
    {53, 47, 13}, {64, 48, 32}, {97, 89, 61}, {95, 129, 33}, {2, 100, 4},  {4, 200, 8},
    {3, 150, 16}, {8, 120, 16}, {1, 301, 64},
};

const double kAlphas[] = {0.0, 1.0, -1.0, 0.3};
const double kBetas[] = {0.0, 1.0, -1.0, 0.3};
const Op kOps[] = {Op::None, Op::Trans};

void run_gemm_sweep(const KernelConfig& cfg) {
  ConfigGuard guard;
  KernelConfig::set_active(cfg);
  util::Rng rng(12345);
  for (const Shape& s : kGemmShapes) {
    for (const Op ta : kOps) {
      for (const Op tb : kOps) {
        const Mat a = (ta == Op::None) ? random_matrix(s.m, s.k, rng)
                                       : random_matrix(s.k, s.m, rng);
        const Mat b = (tb == Op::None) ? random_matrix(s.k, s.n, rng)
                                       : random_matrix(s.n, s.k, rng);
        const Mat c0 = random_matrix(s.m, s.n, rng);
        for (const double alpha : kAlphas) {
          for (const double beta : kBetas) {
            Mat ref, mag;
            naive_gemm(ta, tb, alpha, a.view(), b.view(), beta, c0.view(), ref, mag);
            Mat c = c0;
            gemm(ta, tb, alpha, a.view(), b.view(), beta, c.view());
            expect_close(c.view(), ref, mag, s.k, "gemm");
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(KernelGemm, DefaultConfigVsNaive) { run_gemm_sweep(KernelConfig::active()); }

TEST(KernelGemm, PackedSimdVsNaive) { run_gemm_sweep(forced_packed(true)); }

TEST(KernelGemm, PackedPortableVsNaive) { run_gemm_sweep(forced_packed(false)); }

TEST(KernelGemm, SeedReferenceVsNaive) {
  util::Rng rng(999);
  for (const Shape& s : {Shape{7, 11, 13}, Shape{31, 29, 37}, Shape{64, 48, 32}}) {
    for (const Op ta : kOps) {
      for (const Op tb : kOps) {
        const Mat a = (ta == Op::None) ? random_matrix(s.m, s.k, rng)
                                       : random_matrix(s.k, s.m, rng);
        const Mat b = (tb == Op::None) ? random_matrix(s.k, s.n, rng)
                                       : random_matrix(s.n, s.k, rng);
        const Mat c0 = random_matrix(s.m, s.n, rng);
        Mat ref, mag;
        naive_gemm(ta, tb, 0.3, a.view(), b.view(), -1.0, c0.view(), ref, mag);
        Mat c = c0;
        detail::gemm_seed(ta, tb, 0.3, a.view(), b.view(), -1.0, c.view());
        expect_close(c.view(), ref, mag, s.k, "gemm_seed");
      }
    }
  }
}

TEST(KernelGemm, StridedViews) {
  // Operands and C live inside larger parents, so every ld exceeds the
  // logical row count and the packing loops must honour it.
  ConfigGuard guard;
  KernelConfig::set_active(forced_packed(true));
  util::Rng rng(777);
  const index_t m = 37, n = 41, k = 29, pad = 11;
  Mat pa = random_matrix(m + pad, k + pad, rng);
  Mat pb = random_matrix(k + pad, n + pad, rng);
  Mat pc = random_matrix(m + pad, n + pad, rng);
  const Mat pc_orig = pc;
  CView a = pa.block(3, 5, m, k);
  CView b = pb.block(7, 2, k, n);
  View c = pc.block(5, 3, m, n);
  Mat ref, mag;
  naive_gemm(Op::None, Op::None, 1.0, a, b, 0.3, pc_orig.block(5, 3, m, n), ref, mag);
  gemm(Op::None, Op::None, 1.0, a, b, 0.3, c);
  expect_close(c, ref, mag, k, "strided gemm");
  // The padding around the C block must be untouched.
  for (index_t j = 0; j < pc.cols(); ++j)
    for (index_t i = 0; i < pc.rows(); ++i) {
      const bool inside = (i >= 5 && i < 5 + m && j >= 3 && j < 3 + n);
      if (!inside) {
        ASSERT_EQ(pc(i, j), pc_orig(i, j)) << "padding clobbered at " << i << "," << j;
      }
    }
}

TEST(KernelGemm, DeterministicAcrossThreading) {
  // The threaded tile grid splits only m and n, never k, so results must be
  // bitwise identical whether a call is parallelized or not (on a 1-thread
  // pool both paths are serial and the test degenerates to pack==pack).
  util::Rng rng(4242);
  const Mat a = random_matrix(160, 96, rng), b = random_matrix(96, 150, rng);
  Mat c1(160, 150), c2(160, 150);
  {
    ConfigGuard guard;
    KernelConfig cfg = forced_packed(true);
    cfg.parallel_min_flops = std::numeric_limits<index_t>::max();  // serial
    KernelConfig::set_active(cfg);
    gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c1.view());
    cfg.parallel_min_flops = 1;  // threaded whenever the pool has threads
    KernelConfig::set_active(cfg);
    gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c2.view());
  }
  for (index_t j = 0; j < c1.cols(); ++j)
    for (index_t i = 0; i < c1.rows(); ++i)
      ASSERT_EQ(c1(i, j), c2(i, j)) << "threaded gemm not bitwise deterministic";
}

TEST(KernelSyrk, VsNaiveLowerOnly) {
  ConfigGuard guard;
  KernelConfig::set_active(forced_packed(true));
  util::Rng rng(31337);
  for (const index_t n : {1, 7, 23, 48, 49, 97, 130}) {
    for (const index_t k : {1, 5, 19, 64}) {
      const Mat a = random_matrix(n, k, rng);
      for (const double alpha : {1.0, -1.0, 0.3}) {
        for (const double beta : {0.0, 1.0, 0.3}) {
          Mat c0 = random_matrix(n, n, rng);
          Mat c = c0;
          syrk_lower(alpha, a.view(), beta, c.view());
          // Reference via naive gemm A A^T on the lower triangle.
          Mat ref, mag;
          naive_gemm(Op::None, Op::Trans, alpha, a.view(), a.view(), beta, c0.view(), ref, mag);
          const double eps = std::numeric_limits<double>::epsilon();
          for (index_t j = 0; j < n; ++j) {
            for (index_t i = 0; i < n; ++i) {
              if (i >= j) {
                const double bound = static_cast<double>(k + 4) * eps * mag(i, j) + 1e-300;
                ASSERT_TRUE(std::fabs(c(i, j) - ref(i, j)) <= bound ||
                            ulp_distance(c(i, j), ref(i, j)) <= kMaxUlps)
                    << "syrk mismatch at " << i << "," << j;
              } else {
                ASSERT_EQ(c(i, j), c0(i, j)) << "syrk touched strict upper at " << i << "," << j;
              }
            }
          }
        }
      }
    }
  }
}

// Well-conditioned triangular factor: unit-ish diagonal dominance so the
// solve residual check is meaningful at 1e-12 tolerances.
Mat make_triangular(index_t n, Uplo uplo, util::Rng& rng) {
  Mat t = random_matrix(n, n, rng);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool keep = (uplo == Uplo::Lower) ? (i >= j) : (i <= j);
      if (!keep) t(i, j) = 0.0;  // stored zeros in the dead triangle
      else t(i, j) *= 0.25;
    }
    t(j, j) = 2.0 + 0.1 * static_cast<double>(j % 7);
  }
  return t;
}

TEST(KernelTrsm, AllCombosResidual) {
  util::Rng rng(2024);
  for (const Side side : {Side::Left, Side::Right}) {
    for (const Uplo uplo : {Uplo::Lower, Uplo::Upper}) {
      for (const Op op : {Op::None, Op::Trans}) {
        for (const Diag diag : {Diag::NonUnit, Diag::Unit}) {
          for (const Shape& s : {Shape{5, 3, 0}, Shape{23, 17, 0}, Shape{70, 31, 0},
                                 Shape{129, 65, 0}}) {
            const index_t m = s.m, n = s.n;
            const index_t tn = (side == Side::Left) ? m : n;
            Mat t = make_triangular(tn, uplo, rng);
            if (diag == Diag::Unit) {
              // Unit solves ignore the stored diagonal; poison it to prove it.
              for (index_t j = 0; j < tn; ++j) t(j, j) = 1e30;
            }
            const Mat b0 = random_matrix(m, n, rng);
            for (const double alpha : {1.0, -1.0, 0.3}) {
              Mat x = b0;
              trsm(side, uplo, op, diag, alpha, t.view(), x.view());
              // Residual: op(T) X (Left) or X op(T) (Right) must equal
              // alpha * B0.  Unit diag means op(T) has ones on the diagonal.
              Mat teff = t;
              if (diag == Diag::Unit)
                for (index_t j = 0; j < tn; ++j) teff(j, j) = 1.0;
              Mat prod(m, n);
              if (side == Side::Left) {
                detail::gemm_seed(op, Op::None, 1.0, teff.view(), x.view(), 0.0, prod.view());
              } else {
                detail::gemm_seed(Op::None, op, 1.0, x.view(), teff.view(), 0.0, prod.view());
              }
              double max_err = 0.0, max_x = 0.0;
              for (index_t j = 0; j < n; ++j)
                for (index_t i = 0; i < m; ++i) {
                  max_err = std::max(max_err, std::fabs(prod(i, j) - alpha * b0(i, j)));
                  max_x = std::max(max_x, std::fabs(x(i, j)));
                }
              const double tol = 1e-12 * static_cast<double>(tn) * std::max(1.0, max_x);
              ASSERT_LE(max_err, tol)
                  << "trsm residual: side=" << static_cast<int>(side)
                  << " uplo=" << static_cast<int>(uplo) << " op=" << static_cast<int>(op)
                  << " diag=" << static_cast<int>(diag) << " m=" << m << " n=" << n
                  << " alpha=" << alpha;
            }
          }
        }
      }
    }
  }
}

// ----- counter invariants ---------------------------------------------------
// The attainment layer's model_ratio gate requires the kernels to charge
// closed-form totals on the calling thread regardless of how the work is
// split: counts must not depend on pool size, crossover path, or SIMD.

std::uint64_t flops_of(const std::function<void()>& fn, std::uint64_t* bytes = nullptr) {
  const std::uint64_t f0 = util::FlopCounter::now();
  const std::uint64_t b0 = util::ByteCounter::now();
  fn();
  if (bytes != nullptr) *bytes = util::ByteCounter::now() - b0;
  return util::FlopCounter::now() - f0;
}

TEST(KernelCounts, GemmClosedFormAnyPath) {
  util::Rng rng(5150);
  for (const KernelConfig& cfg :
       {KernelConfig::defaults(), forced_packed(true), forced_packed(false)}) {
    ConfigGuard guard;
    KernelConfig::set_active(cfg);
    const index_t m = 129, n = 95, k = 70;
    const Mat a = random_matrix(m, k, rng), b = random_matrix(k, n, rng);
    Mat c(m, n);
    std::uint64_t bytes = 0;
    const std::uint64_t flops = flops_of(
        [&] { gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 1.0, c.view()); }, &bytes);
    EXPECT_EQ(flops, static_cast<std::uint64_t>(2 * m * n * k));
    EXPECT_EQ(bytes, static_cast<std::uint64_t>(8 * (m * k + k * n + 2 * m * n)));
  }
}

TEST(KernelCounts, SyrkAndTrsmClosedForm) {
  util::Rng rng(60);
  const index_t n = 130, k = 41, cols = 37;
  const Mat a = random_matrix(n, k, rng);
  Mat c(n, n);
  std::uint64_t bytes = 0;
  std::uint64_t flops =
      flops_of([&] { syrk_lower(1.0, a.view(), 0.0, c.view()); }, &bytes);
  EXPECT_EQ(flops, static_cast<std::uint64_t>(n * (n + 1) * k));
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(8 * (n * k + n * (n + 1))));

  Mat t = make_triangular(n, Uplo::Lower, rng);
  Mat rhs = random_matrix(n, cols, rng);
  flops = flops_of(
      [&] { trsm(Side::Left, Uplo::Lower, Op::None, Diag::NonUnit, 1.0, t.view(), rhs.view()); },
      &bytes);
  EXPECT_EQ(flops, static_cast<std::uint64_t>(cols) * static_cast<std::uint64_t>(n * n));
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(cols) *
                       static_cast<std::uint64_t>(8 * (n * (n + 1) / 2 + 2 * n)));

  Mat rt = make_triangular(cols, Uplo::Upper, rng);
  Mat rb = random_matrix(n, cols, rng);
  flops = flops_of(
      [&] { trsm(Side::Right, Uplo::Upper, Op::None, Diag::NonUnit, 1.0, rt.view(), rb.view()); },
      &bytes);
  EXPECT_EQ(flops, static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(cols) *
                       static_cast<std::uint64_t>(cols));
  EXPECT_EQ(bytes, static_cast<std::uint64_t>(12 * n) * static_cast<std::uint64_t>(cols) *
                           static_cast<std::uint64_t>(cols - 1) +
                       static_cast<std::uint64_t>(16 * n * cols));
}

TEST(KernelCounts, ThreadedEqualsSerialCharges) {
  // The same call, once with threading disabled and once with the threshold
  // at 1 (fans out whenever the pool has threads; on a 1-thread pool both
  // run serially, on CI's multicore runners the second genuinely threads):
  // charged totals must match exactly.
  util::Rng rng(8080);
  const index_t m = 192, n = 180, k = 96;
  const Mat a = random_matrix(m, k, rng), b = random_matrix(k, n, rng);
  Mat c1(m, n), c2(m, n);
  ConfigGuard guard;
  KernelConfig cfg = forced_packed(true);
  cfg.parallel_min_flops = std::numeric_limits<index_t>::max();
  KernelConfig::set_active(cfg);
  std::uint64_t bytes_serial = 0, bytes_threaded = 0;
  const std::uint64_t serial = flops_of(
      [&] { gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c1.view()); }, &bytes_serial);
  cfg.parallel_min_flops = 1;
  KernelConfig::set_active(cfg);
  const std::uint64_t threaded = flops_of(
      [&] { gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c2.view()); }, &bytes_threaded);
  EXPECT_EQ(serial, threaded);
  EXPECT_EQ(bytes_serial, bytes_threaded);
}

TEST(PoolCounters, MergeOnJoin) {
  // Worker-side charges must land on the caller's counters at join,
  // whatever the pool size (on one thread everything is caller-side).
  auto& pool = util::ThreadPool::global();
  const std::uint64_t f0 = util::FlopCounter::now();
  const std::uint64_t b0 = util::ByteCounter::now();
  pool.parallel_for(0, 64, [](std::size_t) {
    util::FlopCounter::charge(10);
    util::ByteCounter::charge(7);
  });
  EXPECT_EQ(util::FlopCounter::now() - f0, 640u);
  EXPECT_EQ(util::ByteCounter::now() - b0, 448u);
}

TEST(PoolCounters, NestedParallelForRunsInlineAndMerges) {
  auto& pool = util::ThreadPool::global();
  const std::uint64_t f0 = util::FlopCounter::now();
  pool.parallel_for(0, 16, [&](std::size_t) {
    // Nested dispatch must fall back to inline execution (no deadlock) and
    // its charges must still merge through the outer join.
    pool.parallel_for(0, 4, [](std::size_t) { util::FlopCounter::charge(1); });
  });
  EXPECT_EQ(util::FlopCounter::now() - f0, 64u);
}

TEST(PoolCounters, ConcurrentCallersKeepTheirOwnTotals) {
  // Two plain std::threads race parallel_for on the global pool (the simnet
  // SPMD pattern): the busy-guard serializes dispatch, and each caller must
  // observe exactly its own charges.
  auto& pool = util::ThreadPool::global();
  std::uint64_t totals[2] = {0, 0};
  std::thread t1([&] {
    const std::uint64_t f0 = util::FlopCounter::now();
    pool.parallel_for(0, 32, [](std::size_t) { util::FlopCounter::charge(3); });
    totals[0] = util::FlopCounter::now() - f0;
  });
  std::thread t2([&] {
    const std::uint64_t f0 = util::FlopCounter::now();
    pool.parallel_for(0, 32, [](std::size_t) { util::FlopCounter::charge(5); });
    totals[1] = util::FlopCounter::now() - f0;
  });
  t1.join();
  t2.join();
  EXPECT_EQ(totals[0], 96u);
  EXPECT_EQ(totals[1], 160u);
}

TEST(PoolState, InParallelRegionFlag) {
  EXPECT_FALSE(util::ThreadPool::in_parallel_region());
  auto& pool = util::ThreadPool::global();
  std::atomic<int> violations{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    if (!util::ThreadPool::in_parallel_region()) violations.fetch_add(1);
  });
  EXPECT_EQ(violations.load(), 0);
  EXPECT_FALSE(util::ThreadPool::in_parallel_region());
}

// ----- KernelConfig ---------------------------------------------------------

TEST(KernelConfigTest, EnvOverridesAndInvariants) {
  setenv("BST_KERNEL_MC", "100", 1);   // not a multiple of mr: rounded down
  setenv("BST_KERNEL_KC", "3", 1);     // below the floor of 4
  setenv("BST_KERNEL_NC", "100", 1);   // not a multiple of nr: rounded down
  setenv("BST_KERNEL_SIMD", "0", 1);
  const KernelConfig cfg = KernelConfig::from_env(KernelConfig::defaults());
  unsetenv("BST_KERNEL_MC");
  unsetenv("BST_KERNEL_KC");
  unsetenv("BST_KERNEL_NC");
  unsetenv("BST_KERNEL_SIMD");
  EXPECT_EQ(cfg.mc % kMicroRows, 0);
  EXPECT_EQ(cfg.mc, 96);
  EXPECT_GE(cfg.kc, 4);
  EXPECT_EQ(cfg.nc % kMicroCols, 0);
  EXPECT_EQ(cfg.nc, 96);
  EXPECT_FALSE(cfg.simd);
}

TEST(KernelConfigTest, TunedClampsAndRounds) {
  // Typical laptop: 32K L1d, 512K L2, 8M shared.
  const KernelConfig cfg = KernelConfig::tuned(32.0, 512.0, 8192.0);
  EXPECT_GE(cfg.kc, 64);
  EXPECT_LE(cfg.kc, 1024);
  EXPECT_EQ(cfg.mc % kMicroRows, 0);
  EXPECT_EQ(cfg.nc % kMicroCols, 0);
  // kc doubles * (mr + nr) must fit the L1 budget it was derived from.
  EXPECT_LE(static_cast<double>(cfg.kc * (kMicroRows + kMicroCols)) * 8.0, 32.0 * 1024.0);
  // Unknown levels keep the defaults.
  const KernelConfig defaults = KernelConfig::defaults();
  const KernelConfig unknown = KernelConfig::tuned(0.0, 0.0, 0.0);
  EXPECT_EQ(unknown.mc, defaults.mc);
  EXPECT_EQ(unknown.kc, defaults.kc);
  EXPECT_EQ(unknown.nc, defaults.nc);
}

TEST(KernelConfigTest, SetActiveRoundTrip) {
  ConfigGuard guard;
  KernelConfig cfg = KernelConfig::defaults();
  cfg.mc = 64;
  cfg.kc = 32;
  KernelConfig::set_active(cfg);
  EXPECT_EQ(KernelConfig::active().mc, 64);
  EXPECT_EQ(KernelConfig::active().kc, 32);
}

}  // namespace
}  // namespace bst::la
