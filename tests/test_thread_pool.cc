// Tests for the work-sharing thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.h"

namespace bst::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int sum = 0;
  pool.parallel_for(0, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, GrainChunksStillCoverRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(0, 97, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/8);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 97);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), (100L + 199L) * 100 / 2);
}

TEST(ThreadPool, GlobalPoolExists) {
  auto& pool = ThreadPool::global();
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

}  // namespace
}  // namespace bst::util
