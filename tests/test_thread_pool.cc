// Tests for the work-sharing thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "util/flops.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::util {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int sum = 0;
  pool.parallel_for(0, 10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, GrainChunksStillCoverRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(97);
  pool.parallel_for(0, 97, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/8);
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 97);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, OffsetRange) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), (100L + 199L) * 100 / 2);
}

TEST(ThreadPool, ResetWorkerStatsZeroesUtilizationCounters) {
  ThreadPool pool(3);
  pool.parallel_for(0, 50, [](std::size_t) {});
  std::uint64_t chunks = 0;
  for (const WorkerStats& s : pool.worker_stats()) chunks += s.chunks;
  EXPECT_GT(chunks, 0u);
  pool.reset_worker_stats();
  for (const WorkerStats& s : pool.worker_stats()) {
    EXPECT_EQ(s.chunks, 0u);
    EXPECT_DOUBLE_EQ(s.busy_seconds, 0.0);
    EXPECT_DOUBLE_EQ(s.idle_seconds, 0.0);
  }
}

TEST(ThreadPool, ResetWorkerStatsClearsWorkerFlopCountersNotTheCallers) {
  ThreadPool pool(4);
  // First run: every participating thread piles up flop charges.
  pool.parallel_for(0, 64, [](std::size_t) { FlopCounter::charge(1'000'000); });
  // The caller's thread-local counter must survive the reset (an enclosing
  // FlopScope/TraceSpan on the caller holds a baseline against it).
  const std::uint64_t caller_before = FlopCounter::now();
  pool.reset_worker_stats();
  EXPECT_EQ(FlopCounter::now(), caller_before);

  // Second run: workers honour the pending reset before their next chunk,
  // so any thread still carrying the first run's megaflops can only be the
  // caller (whose counter kept growing from caller_before).
  std::mutex mu;
  std::vector<std::uint64_t> observed;
  std::atomic<int> calls{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    FlopCounter::charge(1);
    calls.fetch_add(1);
    const std::uint64_t now = FlopCounter::now();
    std::lock_guard lock(mu);
    observed.push_back(now);
  });
  EXPECT_EQ(calls.load(), 64);
  for (const std::uint64_t v : observed) {
    EXPECT_TRUE(v <= 64 || v >= caller_before)
        << "worker kept a stale counter: " << v;
  }
}

TEST(ThreadPool, ChunkLatenciesFeedTheMetricsHistogram) {
  Tracer::reset();
  Tracer::enable();
  ThreadPool pool(2);
  pool.parallel_for(0, 32, [](std::size_t) {}, /*grain=*/4);
  Tracer::disable();
  bool found = false;
  for (const HistogramStats& h : Metrics::snapshot()) {
    if (h.name == "pool_chunk_ns") {
      found = true;
      EXPECT_GT(h.count, 0u);
    }
  }
  EXPECT_TRUE(found);
  Tracer::reset();
}

TEST(ThreadPool, GlobalPoolExists) {
  auto& pool = ThreadPool::global();
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 10, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

}  // namespace
}  // namespace bst::util
