// Tests for the two-level blocking scheme (paper section 6.2): building the
// step reflector in panels of `inner_block` columns must give exactly the
// same factorization as the single-level path, for every representation,
// panel size, and signature.
#include <gtest/gtest.h>

#include "core/block_reflector.h"
#include "core/schur.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "util/rng.h"

namespace bst::core {
namespace {

Signature spd_sig(index_t m) {
  Signature w(static_cast<std::size_t>(2 * m), 1.0);
  for (index_t i = 0; i < m; ++i) w[static_cast<std::size_t>(m + i)] = -1.0;
  return w;
}

void random_pivot_pair(index_t m, util::Rng& rng, Mat& p, Mat& q) {
  p = Mat(m, m);
  q = Mat(m, m);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j; ++i) p(i, j) = rng.uniform(-0.5, 0.5);
    p(j, j) = rng.uniform(4.0, 6.0);
    for (index_t i = 0; i < m; ++i) q(i, j) = rng.uniform(-0.5, 0.5);
  }
}

const Representation kBlocked[] = {Representation::AccumulatedU, Representation::VY1,
                                   Representation::VY2, Representation::YTY};

class TwoLevelSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TwoLevelSweep, PanelBuildMatchesSingleLevel) {
  const auto [repi, m, kb] = GetParam();
  if (kb >= m) GTEST_SKIP() << "panel covers the whole step";
  const Representation rep = kBlocked[repi];
  util::Rng rng(static_cast<std::uint64_t>(repi * 100 + m * 10 + kb));
  Mat p0, q0;
  random_pivot_pair(m, rng, p0, q0);
  const index_t cols = 2 * m;
  Mat a0(m, cols), b0(m, cols);
  for (index_t j = 0; j < cols; ++j)
    for (index_t i = 0; i < m; ++i) {
      a0(i, j) = rng.uniform(-1, 1);
      b0(i, j) = rng.uniform(-1, 1);
    }

  auto run = [&](index_t inner) {
    Mat p(m, m), q(m, m), a(m, cols), b(m, cols);
    la::copy(p0.view(), p.view());
    la::copy(q0.view(), q.view());
    la::copy(a0.view(), a.view());
    la::copy(b0.view(), b.view());
    BlockReflector bref(rep, m, spd_sig(m));
    EXPECT_FALSE(bref.build(p.view(), q.view(), 0.0, inner).has_value());
    bref.apply(a.view(), b.view());
    return std::make_tuple(std::move(p), std::move(q), std::move(a), std::move(b));
  };
  auto [p1, q1, a1, b1] = run(0);
  auto [p2, q2, a2, b2] = run(kb);
  EXPECT_LT(la::max_diff(p1.view(), p2.view()), 1e-11);
  EXPECT_LT(la::max_diff(q1.view(), q2.view()), 1e-11);
  EXPECT_LT(la::max_diff(a1.view(), a2.view()), 1e-10);
  EXPECT_LT(la::max_diff(b1.view(), b2.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(PanelsAndSizes, TwoLevelSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(4, 6, 8, 12),
                                            ::testing::Values(1, 2, 3, 4, 5)));

TEST(TwoLevel, GeneralSignaturePanels) {
  // Mixed signature (indefinite leading block): panel W-flips must track.
  const index_t m = 6;
  Signature w{1, -1, 1, 1, -1, 1, -1, 1, -1, -1, 1, -1};
  util::Rng rng(3);
  Mat p(m, m), q(m, m);
  for (index_t j = 0; j < m; ++j) {
    for (index_t i = 0; i <= j; ++i) p(i, j) = rng.uniform(-0.3, 0.3);
    p(j, j) = rng.uniform(5.0, 6.0);
    for (index_t i = 0; i < m; ++i) q(i, j) = rng.uniform(-0.3, 0.3);
  }
  Mat p1(m, m), q1(m, m), p2(m, m), q2(m, m);
  la::copy(p.view(), p1.view());
  la::copy(q.view(), q1.view());
  la::copy(p.view(), p2.view());
  la::copy(q.view(), q2.view());
  BlockReflector one(Representation::VY2, m, w);
  BlockReflector two(Representation::VY2, m, w);
  ASSERT_FALSE(one.build(p1.view(), q1.view(), 0.0, 0).has_value());
  ASSERT_FALSE(two.build(p2.view(), q2.view(), 0.0, 2).has_value());
  EXPECT_LT(la::max_diff(p1.view(), p2.view()), 1e-11);
  EXPECT_LT(la::max_diff(q1.view(), q2.view()), 1e-11);
}

class SchurInnerBlockSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchurInnerBlockSweep, FullFactorizationUnchanged) {
  const index_t kb = GetParam();
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(8, 6, 3, 77);
  SchurOptions base;
  SchurOptions two;
  two.inner_block = kb;
  SchurFactor f1 = block_schur_factor(t, base);
  SchurFactor f2 = block_schur_factor(t, two);
  EXPECT_LT(la::max_diff(f1.r.view(), f2.r.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(PanelSizes, SchurInnerBlockSweep, ::testing::Values(1, 2, 3, 4, 7));

TEST(TwoLevel, SequentialRepIgnoresInnerBlock) {
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(4, 5, 2, 9);
  SchurOptions a, b;
  a.rep = b.rep = Representation::Sequential;
  b.inner_block = 2;
  SchurFactor fa = block_schur_factor(t, a);
  SchurFactor fb = block_schur_factor(t, b);
  EXPECT_LT(la::max_diff(fa.r.view(), fb.r.view()), 0.0 + 1e-15);
}

}  // namespace
}  // namespace bst::core
