// Tests for the stall guard (util/stallguard.h): heartbeat registration,
// synchronous scan detection with the stalls_detected counter, idle parking,
// per-episode recovery, monitor start/stop cycles, and TSan-exercised
// shutdown races (stallguard + telemetry exporter stopping concurrently with
// in-flight service submits).
//
// The race tests use a huge stall_ms on purpose: open_span_name reads a
// flagged thread's ring unsynchronized against its owner, so nothing may
// flag while owners are still recording.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "service/service.h"
#include "toeplitz/generators.h"
#include "util/metrics.h"
#include "util/stallguard.h"
#include "util/telemetry.h"

namespace bst::util {
namespace {

void sleep_ms(int ms) { std::this_thread::sleep_for(std::chrono::milliseconds(ms)); }

// A registered thread that never beats until released.
struct StuckThread {
  std::atomic<bool> release{false};
  std::atomic<bool> registered{false};
  std::thread th;

  explicit StuckThread(const char* label) {
    th = std::thread([this, label] {
      StallGuard::register_self(label);
      registered.store(true);
      while (!release.load()) sleep_ms(1);
    });
    while (!registered.load()) sleep_ms(1);
  }
  ~StuckThread() {
    release.store(true);
    th.join();
  }
};

TEST(StallGuard, ScanDetectsAMissedHeartbeatOnce) {
  StuckThread stuck("test:stuck");
  sleep_ms(30);
  const std::uint64_t before = StallGuard::stalls_detected();
  StallGuardOptions opt;
  opt.stall_ms = 10;
  EXPECT_GE(StallGuard::scan_once(opt), 1u);
  EXPECT_GE(StallGuard::stalls_detected(), before + 1);
  // Detection is per-episode: a still-stalled thread is not re-counted.
  const std::uint64_t after = StallGuard::stalls_detected();
  EXPECT_EQ(StallGuard::scan_once(opt), 0u);
  EXPECT_EQ(StallGuard::stalls_detected(), after);
}

TEST(StallGuard, IdleThreadIsNeverAStall) {
  std::atomic<bool> release{false};
  std::atomic<bool> parked{false};
  std::thread th([&] {
    StallGuard::register_self("test:idle");
    StallGuard::idle();
    parked.store(true);
    while (!release.load()) sleep_ms(1);
  });
  while (!parked.load()) sleep_ms(1);
  sleep_ms(30);
  StallGuardOptions opt;
  opt.stall_ms = 10;
  EXPECT_EQ(StallGuard::scan_once(opt), 0u);
  release.store(true);
  th.join();
}

TEST(StallGuard, FlaggedThreadRecoversOnNextBeat) {
  std::atomic<bool> release{false};
  std::atomic<bool> beat_again{false};
  std::atomic<bool> registered{false};
  std::thread th([&] {
    StallGuard::register_self("test:recover");
    registered.store(true);
    while (!release.load()) {
      if (beat_again.load()) {
        StallGuard::beat();
        beat_again.store(false);
      }
      sleep_ms(1);
    }
  });
  while (!registered.load()) sleep_ms(1);
  sleep_ms(30);
  StallGuardOptions opt;
  opt.stall_ms = 10;
  EXPECT_GE(StallGuard::scan_once(opt), 1u);
  beat_again.store(true);
  while (beat_again.load()) sleep_ms(1);
  // The fresh beat unflags the slot; the episode is over.
  EXPECT_EQ(StallGuard::scan_once(opt), 0u);
  sleep_ms(30);
  // ...and a new stall after recovery counts as a new episode.
  EXPECT_GE(StallGuard::scan_once(opt), 1u);
  release.store(true);
  th.join();
}

TEST(StallGuard, MonitorStartStopCycles) {
  for (int cycle = 0; cycle < 3; ++cycle) {
    StallGuardOptions opt;
    opt.stall_ms = 60000;  // nothing flags; exercises lifecycle only
    opt.poll_ms = 5;
    StallGuard::start(opt);
    EXPECT_TRUE(StallGuard::running());
    StallGuard::start(opt);  // idempotent while running
    StallGuard::stop();
    EXPECT_FALSE(StallGuard::running());
    StallGuard::stop();  // idempotent while stopped
  }
}

TEST(StallGuard, ZeroStallMsNeverStarts) {
  StallGuardOptions off;
  off.stall_ms = 0;
  StallGuard::start(off);
  EXPECT_FALSE(StallGuard::running());
}

// Shutdown races, meant to run under TSan: the stallguard monitor and the
// telemetry exporter stop concurrently with in-flight submit()s.
TEST(StallGuardShutdown, ConcurrentStopWithInflightSubmits) {
  StallGuardOptions opt;
  opt.stall_ms = 60000;  // see the file comment: nothing may flag here
  opt.poll_ms = 5;
  StallGuard::start(opt);

  TelemetryOptions topt;
  topt.interval_ms = 10;
  topt.out = "stallguard_shutdown_ticks.jsonl";
  std::remove(topt.out.c_str());

  const toeplitz::BlockToeplitz t = toeplitz::kms(32, 0.5);
  const std::vector<double> rhs(static_cast<std::size_t>(t.order()), 1.0);

  {
    service::ServiceOptions sopt;
    sopt.queue_capacity = 16;
    service::Service svc(sopt);
    TelemetryExporter exporter(topt);
    exporter.start();

    std::thread submitter([&] {
      for (int i = 0; i < 40; ++i) {
        std::future<service::SolveResult> fut = svc.submit(t, rhs);
        fut.get();
      }
    });
    std::thread exporter_stop([&] {
      sleep_ms(15);
      exporter.stop();
    });
    std::thread guard_stop([&] {
      sleep_ms(10);
      StallGuard::stop();
    });
    submitter.join();
    exporter_stop.join();
    guard_stop.join();
    svc.drain();
  }
  StallGuard::stop();
  EXPECT_FALSE(StallGuard::running());
}

// Repeated start/stop while a service churns: the monitor must come and go
// without touching freed state (slots outlive it; the Metrics counters are
// process-global).
TEST(StallGuardShutdown, RestartWhileServiceChurns) {
  const toeplitz::BlockToeplitz t = toeplitz::kms(24, 0.4);
  std::vector<double> rhs(static_cast<std::size_t>(t.order()), 1.0);
  service::Service svc{service::ServiceOptions{}};
  std::atomic<bool> done{false};
  std::thread submitter([&] {
    while (!done.load()) {
      std::future<service::SolveResult> fut = svc.submit(t, rhs);
      fut.get();
    }
  });
  for (int cycle = 0; cycle < 5; ++cycle) {
    StallGuardOptions opt;
    opt.stall_ms = 60000;
    opt.poll_ms = 5;
    StallGuard::start(opt);
    sleep_ms(10);
    StallGuard::stop();
  }
  done.store(true);
  submitter.join();
  svc.drain();
}

}  // namespace
}  // namespace bst::util
