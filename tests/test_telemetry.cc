// Tests for the live-telemetry layer: gauges (set/add semantics, snapshot
// includes zero readings), the no-silent-caps registry overflow contract,
// concurrent writers vs snapshot() (exercised under the TSan CI job), the
// pure tick/exposition serializers (byte-determinism), the rolling-window
// derivation math (QPS, quantiles, burn-rate), and the TelemetryExporter
// end to end against temp files.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/report.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace bst {
namespace {

using util::GaugeStats;
using util::Metrics;
using util::TelemetryDerived;
using util::TelemetryOptions;
using util::TelemetrySnapshot;

// ------------------------------------------------------------------ gauges

TEST(MetricsGauges, SetAddAndValue) {
  const util::GaugeId id = Metrics::gauge("test_gauge_basic");
  EXPECT_EQ(id, Metrics::gauge("test_gauge_basic"));  // interned
  Metrics::gauge_set(id, 42);
  EXPECT_EQ(Metrics::gauge_value(id), 42);
  Metrics::gauge_add(id, -40);
  EXPECT_EQ(Metrics::gauge_value(id), 2);
  Metrics::gauge_add(id, -5);
  EXPECT_EQ(Metrics::gauge_value(id), -3);  // gauges go below zero
}

TEST(MetricsGauges, SnapshotIncludesZeroReadings) {
  const util::GaugeId id = Metrics::gauge("test_gauge_zero");
  Metrics::gauge_set(id, 0);
  bool found = false;
  for (const GaugeStats& g : Metrics::gauges_snapshot()) {
    if (g.name == "test_gauge_zero") {
      found = true;
      EXPECT_EQ(g.value, 0);  // an empty queue is a measurement
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsGauges, InvalidIdIsNoop) {
  Metrics::gauge_set(-1, 99);       // must not crash
  Metrics::gauge_add(-1, 1);
  EXPECT_EQ(Metrics::gauge_value(-1), 0);
}

// Concurrent counter/gauge writers racing snapshot() -- the TSan job runs
// this binary, so any unsynchronized access to the tables fails loudly.
TEST(MetricsGauges, ConcurrentWritersVsSnapshot) {
  const util::GaugeId g = Metrics::gauge("test_gauge_race");
  const util::CtrId c = Metrics::counter("test_ctr_race");
  const std::uint64_t c0 = Metrics::counter_value(c);
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < 4000; ++k) {
        Metrics::gauge_add(g, (i % 2 == 0) ? 1 : -1);
        Metrics::gauge_set(g, k);
        Metrics::add(c);
      }
    });
  }
  for (int k = 0; k < 200; ++k) {  // snapshots race the writers
    (void)Metrics::gauges_snapshot();
    (void)Metrics::counters_snapshot();
    (void)Metrics::gauge_value(g);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Metrics::counter_value(c), c0 + 16000u);
  (void)Metrics::gauges_snapshot();
}

// ------------------------------------------------- snapshot + pure derive

TelemetrySnapshot fixed_snapshot(std::uint64_t ts_ns) {
  TelemetrySnapshot s;
  s.ts_ns = ts_ns;
  s.counters.push_back({"service_completed", 100});
  s.counters.push_back({"service_cache_hits", 90});
  s.gauges.push_back({"service_queue_depth", 3});
  s.gauges.push_back({"service_cache_resident_bytes", 1 << 20});
  util::HistogramStats h;
  h.name = "service_request_ns";
  h.count = 100;
  h.sum = 100'000'000;
  h.min = 500'000;
  h.max = 2'000'000;
  h.p50 = 1'000'000.0;
  h.p95 = 1'900'000.0;
  h.p99 = 1'990'000.0;
  h.buckets.push_back({util::hist_bucket_lo(util::hist_bucket(1'000'000)), 90});
  h.buckets.push_back({util::hist_bucket_lo(util::hist_bucket(2'000'000)), 10});
  s.histograms.push_back(h);
  return s;
}

TEST(Telemetry, CaptureSeesCountersGaugesHistograms) {
  const util::CtrId c = Metrics::counter("test_tel_ctr");
  const util::GaugeId g = Metrics::gauge("test_tel_gauge");
  const util::HistId h = Metrics::histogram("test_tel_hist");
  Metrics::add(c, 5);
  Metrics::gauge_set(g, 11);
  Metrics::record(h, 1234);
  const TelemetrySnapshot snap = util::telemetry_capture(777);
  EXPECT_EQ(snap.ts_ns, 777u);
  auto has = [](const auto& vec, const std::string& name) {
    for (const auto& e : vec)
      if (e.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has(snap.counters, "test_tel_ctr"));
  EXPECT_TRUE(has(snap.gauges, "test_tel_gauge"));
  EXPECT_TRUE(has(snap.histograms, "test_tel_hist"));
}

// Window math on hand-built snapshots: 60 completions over 2 seconds at a
// known latency distribution.
TEST(Telemetry, DeriveWindowQpsAndQuantiles) {
  TelemetrySnapshot oldest = fixed_snapshot(0);
  TelemetrySnapshot newest = fixed_snapshot(2'000'000'000);  // +2 s
  newest.counters[0].value = 160;            // +60 completions
  newest.histograms[0].count = 160;
  newest.histograms[0].buckets[0].second = 140;  // +50 fast
  newest.histograms[0].buckets[1].second = 20;   // +10 slow
  TelemetryOptions opt;
  opt.slo_p99_ms = 100.0;
  const TelemetryDerived d = util::telemetry_derive(oldest, newest, opt);
  EXPECT_NEAR(d.window_s, 2.0, 1e-12);
  EXPECT_EQ(d.window_count, 60u);
  EXPECT_NEAR(d.qps, 30.0, 1e-9);
  // 50/60 samples sit in the ~1 ms bucket, 10/60 in the ~2 ms bucket: the
  // p50 must land in the first, the p99 in the second (25% bucket error).
  EXPECT_GT(d.p50_ms, 0.5);
  EXPECT_LT(d.p50_ms, 1.5);
  EXPECT_GT(d.p99_ms, 1.4);
  EXPECT_LT(d.p99_ms, 3.0);
  EXPECT_EQ(d.bad_fraction, 0.0);  // nothing slower than 100 ms
  EXPECT_EQ(d.burn_rate, 0.0);
}

TEST(Telemetry, DeriveBurnRateCountsSlowRequests) {
  TelemetrySnapshot oldest = fixed_snapshot(0);
  TelemetrySnapshot newest = fixed_snapshot(1'000'000'000);
  newest.counters[0].value = 200;  // +100 completions
  newest.histograms[0].count = 200;
  newest.histograms[0].buckets[0].second = 188;  // +98 fast (~1 ms)
  newest.histograms[0].buckets[1].second = 12;   // +2 slow (~2 ms)
  TelemetryOptions opt;
  opt.slo_p99_ms = 1.5;  // the ~2 ms bucket violates the SLO
  const TelemetryDerived d = util::telemetry_derive(oldest, newest, opt);
  EXPECT_GT(d.bad_fraction, 0.0);
  EXPECT_LE(d.bad_fraction, 0.05);
  EXPECT_NEAR(d.burn_rate, d.bad_fraction / 0.01, 1e-12);
  // ~2% of requests blow a p99 budget of 1% -> burning ~2x faster.
  EXPECT_GT(d.burn_rate, 1.0);
}

TEST(Telemetry, DeriveSameSnapshotYieldsZeroWindow) {
  const TelemetrySnapshot s = fixed_snapshot(42);
  const TelemetryDerived d = util::telemetry_derive(s, s, TelemetryOptions{});
  EXPECT_EQ(d.window_s, 0.0);
  EXPECT_EQ(d.window_count, 0u);
  EXPECT_EQ(d.qps, 0.0);
  EXPECT_EQ(d.burn_rate, 0.0);
}

// ------------------------------------------------------- pure serializers

TEST(Telemetry, TickJsonIsDeterministicAndParses) {
  const TelemetrySnapshot snap = fixed_snapshot(123456789);
  const TelemetryDerived d =
      util::telemetry_derive(fixed_snapshot(0), snap, TelemetryOptions{});
  const std::string a = util::telemetry_tick_json(7, snap, d, 1.5, 0.001);
  const std::string b = util::telemetry_tick_json(7, snap, d, 1.5, 0.001);
  EXPECT_EQ(a, b);  // byte-identical on identical inputs
  EXPECT_EQ(a.find('\n'), std::string::npos);  // one line
  const util::Json doc = util::parse_json(a);
  ASSERT_EQ(doc.kind(), util::Json::Kind::Object);
  for (const char* key : {"seq", "ts_ns", "uptime_s", "telemetry_self_s", "qps", "p50_ms",
                          "p99_ms", "burn_rate", "counters", "gauges", "histograms"}) {
    EXPECT_NE(doc.find(key), nullptr) << key << " missing from " << a;
  }
  EXPECT_EQ(doc.find("seq")->as_number(), 7.0);
  const util::Json* gauges = doc.find("gauges");
  ASSERT_NE(gauges->find("service_queue_depth"), nullptr);
  EXPECT_EQ(gauges->find("service_queue_depth")->as_number(), 3.0);
}

TEST(Telemetry, TickJsonSectionsSortedByName) {
  TelemetrySnapshot snap = fixed_snapshot(1);
  snap.counters.push_back({"aaa_first", 1});  // interned last, sorts first
  const TelemetryDerived d = util::telemetry_derive(snap, snap, TelemetryOptions{});
  const std::string line = util::telemetry_tick_json(0, snap, d, 0.0, 0.0);
  EXPECT_LT(line.find("aaa_first"), line.find("service_cache_hits"));
  EXPECT_LT(line.find("service_cache_hits"), line.find("service_completed"));
}

TEST(Telemetry, PrometheusExpositionWellFormed) {
  const TelemetrySnapshot snap = fixed_snapshot(1);
  const TelemetryDerived d = util::telemetry_derive(snap, snap, TelemetryOptions{});
  const std::string a = util::prometheus_exposition(snap, d, 2.0, 0.01);
  EXPECT_EQ(a, util::prometheus_exposition(snap, d, 2.0, 0.01));  // deterministic
  // Counters gain the _total suffix; gauges and derived series are plain.
  EXPECT_NE(a.find("# TYPE bst_service_completed_total counter"), std::string::npos) << a;
  EXPECT_NE(a.find("bst_service_completed_total 100"), std::string::npos) << a;
  EXPECT_NE(a.find("# TYPE bst_service_queue_depth gauge"), std::string::npos);
  EXPECT_NE(a.find("bst_service_queue_depth 3"), std::string::npos);
  EXPECT_NE(a.find("# TYPE bst_qps gauge"), std::string::npos);
  EXPECT_NE(a.find("bst_burn_rate"), std::string::npos);
  EXPECT_NE(a.find("bst_uptime_seconds 2"), std::string::npos);
  // Histograms export as summaries with quantile labels.
  EXPECT_NE(a.find("# TYPE bst_service_request_ns summary"), std::string::npos);
  EXPECT_NE(a.find("bst_service_request_ns{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(a.find("bst_service_request_ns_count 100"), std::string::npos);
  EXPECT_EQ(a.back(), '\n');
}

TEST(Telemetry, PrometheusNameSanitization) {
  TelemetrySnapshot snap;
  snap.counters.push_back({"weird-name.with/chars", 5});
  const TelemetryDerived d{};
  const std::string a = util::prometheus_exposition(snap, d, 0.0, 0.0);
  EXPECT_NE(a.find("bst_weird_name_with_chars_total 5"), std::string::npos) << a;
  EXPECT_EQ(a.find("weird-name"), std::string::npos);
}

// ---------------------------------------------------------- env overrides

TEST(TelemetryOptions, FromEnvOverridesAndClamps) {
  setenv("BST_TELEMETRY_INTERVAL_MS", "5", 1);  // clamped to 10
  setenv("BST_TELEMETRY_OUT", "/tmp/ticks.jsonl", 1);
  setenv("BST_TELEMETRY_PROM", "/tmp/bst.prom", 1);
  setenv("BST_SLO_P99_MS", "25.5", 1);
  setenv("BST_TELEMETRY_WINDOW", "0", 1);  // clamped to 1
  const TelemetryOptions o = TelemetryOptions::from_env();
  EXPECT_EQ(o.interval_ms, 10u);
  EXPECT_EQ(o.out, "/tmp/ticks.jsonl");
  EXPECT_EQ(o.prom, "/tmp/bst.prom");
  EXPECT_NEAR(o.slo_p99_ms, 25.5, 1e-12);
  EXPECT_EQ(o.window_ticks, 1u);
  EXPECT_TRUE(o.active());
  for (const char* v : {"BST_TELEMETRY_INTERVAL_MS", "BST_TELEMETRY_OUT",
                        "BST_TELEMETRY_PROM", "BST_SLO_P99_MS", "BST_TELEMETRY_WINDOW"}) {
    unsetenv(v);
  }
  const TelemetryOptions d = TelemetryOptions::from_env();
  EXPECT_EQ(d.interval_ms, 1000u);
  EXPECT_FALSE(d.active());  // no outputs -> exporter start() is a no-op
}

// ------------------------------------------------------- exporter, end to end

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  std::ostringstream os;
  os << (dir != nullptr ? dir : "/tmp") << "/" << stem << "_" << ::getpid();
  return os.str();
}

TEST(TelemetryExporter, InactiveOptionsNeverStart) {
  util::TelemetryExporter exp{TelemetryOptions{}};
  exp.start();
  EXPECT_FALSE(exp.running());
  exp.stop();  // harmless
  EXPECT_EQ(exp.ticks(), 0u);
}

TEST(TelemetryExporter, WritesTicksAndPromAndFinalTickOnStop) {
  const std::string out = temp_path("bst_test_ticks") + ".jsonl";
  const std::string prom = temp_path("bst_test_prom") + ".prom";
  std::remove(out.c_str());
  std::remove(prom.c_str());

  TelemetryOptions opt;
  opt.out = out;
  opt.prom = prom;
  opt.interval_ms = 20;
  const util::CtrId c = Metrics::counter("service_completed");
  {
    util::TelemetryExporter exp(opt);
    exp.start();
    EXPECT_TRUE(exp.running());
    Metrics::add(c, 10);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    exp.stop();
    EXPECT_FALSE(exp.running());
    EXPECT_GE(exp.ticks(), 1u);  // at least the final stop() tick
    EXPECT_GE(exp.self_seconds(), 0.0);
  }

  // The tick stream parses line by line with consecutive seq.
  std::ifstream f(out);
  ASSERT_TRUE(f.is_open()) << out;
  std::string line;
  std::uint64_t expect_seq = 0, ticks = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const util::Json doc = util::parse_json(line);
    ASSERT_EQ(doc.kind(), util::Json::Kind::Object) << line;
    EXPECT_EQ(doc.find("seq")->as_number(), static_cast<double>(expect_seq));
    ++expect_seq;
    ++ticks;
  }
  EXPECT_GE(ticks, 1u);

  // The Prometheus file exists, is non-empty, and carries the derived series.
  std::ifstream pf(prom);
  ASSERT_TRUE(pf.is_open()) << prom;
  std::stringstream ss;
  ss << pf.rdbuf();
  const std::string exposition = ss.str();
  EXPECT_NE(exposition.find("bst_qps"), std::string::npos);
  EXPECT_NE(exposition.find("bst_uptime_seconds"), std::string::npos);
  EXPECT_NE(exposition.find("# TYPE"), std::string::npos);
  EXPECT_EQ(exposition.find(".tmp"), std::string::npos);  // renamed, not partial

  std::remove(out.c_str());
  std::remove(prom.c_str());
}

TEST(TelemetryExporter, StopIsIdempotentAndRestartable) {
  const std::string out = temp_path("bst_test_restart") + ".jsonl";
  std::remove(out.c_str());
  TelemetryOptions opt;
  opt.out = out;
  opt.interval_ms = 10;
  util::TelemetryExporter exp(opt);
  exp.start();
  exp.stop();
  exp.stop();  // second stop: no-op, no crash
  EXPECT_GE(exp.ticks(), 1u);
  exp.start();  // a fresh run after stop (tick count restarts with it)
  exp.stop();
  EXPECT_GE(exp.ticks(), 1u);
  std::remove(out.c_str());
}

// Shutdown racing an in-flight tick: stop() from another thread while the
// exporter thread is mid-tick and the process keeps mutating metrics.  The
// assertions are deliberately weak (no crash, monotone tick count, not
// running afterwards); the real check is the TSan CI job, which runs this
// binary and flags any data race between the tick loop, the metric
// writers, and the stop path.
TEST(TelemetryExporter, StopRacesInflightTick) {
  const std::string out = temp_path("bst_test_race") + ".jsonl";
  std::remove(out.c_str());
  const util::CtrId c = Metrics::counter("service_completed");
  for (int round = 0; round < 8; ++round) {
    TelemetryOptions opt;
    opt.out = out;
    opt.interval_ms = 1;  // as many in-flight ticks as possible
    util::TelemetryExporter exp(opt);
    exp.start();
    std::atomic<bool> done{false};
    std::thread stopper([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 + round));
      exp.stop();
      done.store(true);
    });
    // Keep the registry hot while the tick loop reads it...
    while (!done.load()) {
      Metrics::add(c, 1);
      (void)exp.running();
      (void)exp.ticks();
    }
    stopper.join();
    exp.stop();  // second stop from this thread: idempotent under the race
    EXPECT_FALSE(exp.running());
    EXPECT_GE(exp.ticks(), 1u);  // the final stop() tick always lands
  }
  std::remove(out.c_str());
}

// A full registry refuses further names without throwing or aborting: the
// id is invalid, records no-op, the drop is counted, and counters_snapshot
// surfaces the synthetic `metrics_dropped` entry (no silent caps).  Interned
// names persist for the process, so this saturating test runs LAST in the
// binary -- everything after it would fail to register fresh gauges.
TEST(MetricsGaugesZZZ, RegistryOverflowIsCountedNotSilent) {
  for (int i = 0; i < Metrics::kMaxGauges; ++i) {
    Metrics::gauge("test_gauge_fill_" + std::to_string(i));  // idempotent refill
  }
  const std::uint64_t dropped0 = Metrics::dropped();
  const util::GaugeId overflow = Metrics::gauge("test_gauge_overflow_xyz");
  ASSERT_LT(overflow, 0);  // table is saturated: invalid id, not a throw
  EXPECT_GT(Metrics::dropped(), dropped0);
  Metrics::gauge_set(overflow, 7);  // no-op, no crash
  EXPECT_EQ(Metrics::gauge_value(overflow), 0);
  bool synthetic = false;
  for (const util::CounterStats& c : Metrics::counters_snapshot()) {
    if (c.name == "metrics_dropped") {
      synthetic = true;
      EXPECT_GE(c.value, dropped0 + 1);
    }
  }
  EXPECT_TRUE(synthetic);
}

}  // namespace
}  // namespace bst
