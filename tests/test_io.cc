// Tests for the text I/O layer (file format used by the bst_solve tool).
#include <gtest/gtest.h>

#include <sstream>

#include "la/norms.h"
#include "toeplitz/generators.h"
#include "toeplitz/io.h"

namespace bst::toeplitz {
namespace {

TEST(Io, MatrixRoundTrip) {
  BlockToeplitz t = random_spd_block(3, 5, 2, 7);
  std::stringstream ss;
  write_block_toeplitz(ss, t);
  BlockToeplitz u = read_block_toeplitz(ss);
  EXPECT_EQ(u.block_size(), 3);
  EXPECT_EQ(u.num_blocks(), 5);
  EXPECT_LT(la::max_diff(t.first_row(), u.first_row()), 0.0 + 1e-18);
}

TEST(Io, ScalarMatrixRoundTrip) {
  BlockToeplitz t = kms(9, 0.42);
  std::stringstream ss;
  write_block_toeplitz(ss, t);
  BlockToeplitz u = read_block_toeplitz(ss);
  for (la::index_t j = 0; j < 9; ++j) EXPECT_DOUBLE_EQ(u.entry(0, j), t.entry(0, j));
}

TEST(Io, VectorRoundTrip) {
  std::vector<double> v{1.0, -2.5, 3.25e-17, 0.0, 1e100};
  std::stringstream ss;
  write_vector(ss, v);
  std::vector<double> u = read_vector(ss);
  ASSERT_EQ(u.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(u[i], v[i]);
}

TEST(Io, CommentsAndWhitespaceTolerated) {
  std::stringstream ss(
      "# a comment line\n"
      "bst-toeplitz 1 3   # trailing comment\n"
      "  2.0\n# mid comment\n 0.5\t0.25 ");
  BlockToeplitz t = read_block_toeplitz(ss);
  EXPECT_EQ(t.order(), 3);
  EXPECT_DOUBLE_EQ(t.entry(0, 2), 0.25);
}

// kms decay 0.5^k underflows to subnormal well before n = 4096; the reader
// must accept subnormal entries (glibc strtod flags them ERANGE) so large
// superfast-tier matrices round-trip. Infinity/overflow still reject.
TEST(Io, SubnormalEntriesRoundTrip) {
  std::stringstream ss("bst-toeplitz 1 3 1.0 1.1125369292536007e-308 4.9e-324");
  BlockToeplitz t = read_block_toeplitz(ss);
  EXPECT_DOUBLE_EQ(t.entry(0, 1), 1.1125369292536007e-308);
  EXPECT_GT(t.entry(0, 2), 0.0);
  std::stringstream big("bst-toeplitz 1 2 1.0 1e999");
  EXPECT_THROW(read_block_toeplitz(big), std::runtime_error);
  std::stringstream inf("bst-vector 2 1.0 inf");
  EXPECT_THROW(read_vector(inf), std::runtime_error);
}

TEST(Io, BadHeaderRejected) {
  std::stringstream ss("toeplitz 1 3 1 0 0");
  EXPECT_THROW(read_block_toeplitz(ss), std::runtime_error);
}

TEST(Io, TruncatedInputRejected) {
  std::stringstream ss("bst-toeplitz 2 2 1.0 0.0");
  EXPECT_THROW(read_block_toeplitz(ss), std::runtime_error);
}

TEST(Io, NonNumericEntryRejected) {
  std::stringstream ss("bst-toeplitz 1 2 1.0 abc");
  EXPECT_THROW(read_block_toeplitz(ss), std::runtime_error);
}

TEST(Io, ImplausibleDimensionsRejected) {
  std::stringstream a("bst-toeplitz 0 3");
  EXPECT_THROW(read_block_toeplitz(a), std::runtime_error);
  std::stringstream b("bst-toeplitz -2 3");
  EXPECT_THROW(read_block_toeplitz(b), std::runtime_error);
  std::stringstream c("bst-vector -1");
  EXPECT_THROW(read_vector(c), std::runtime_error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(read_block_toeplitz_file("/nonexistent/path.txt"), std::runtime_error);
  EXPECT_THROW(read_vector_file("/nonexistent/path.txt"), std::runtime_error);
}

TEST(Io, FileRoundTrip) {
  const std::string dir = ::testing::TempDir();
  BlockToeplitz t = prolate(12, 0.3);
  write_block_toeplitz_file(dir + "/t.txt", t);
  BlockToeplitz u = read_block_toeplitz_file(dir + "/t.txt");
  EXPECT_LT(la::max_diff(t.first_row(), u.first_row()), 0.0 + 1e-18);
  std::vector<double> b = rhs_for_ones(t);
  write_vector_file(dir + "/b.txt", b);
  std::vector<double> c = read_vector_file(dir + "/b.txt");
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_DOUBLE_EQ(b[i], c[i]);
}

TEST(Io, AsymmetricLeadingBlockRejectedOnRead) {
  // The BlockToeplitz constructor validates T1's symmetry.
  std::stringstream ss("bst-toeplitz 2 2  1.0 0.5  0.0 1.0  0 0 0 0");
  EXPECT_THROW(read_block_toeplitz(ss), std::invalid_argument);
}

}  // namespace
}  // namespace bst::toeplitz
