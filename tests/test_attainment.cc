// Tests for util/attainment: the join of traced phase counters with the
// calibrated machine ceilings and the flop models, on synthetic inputs with
// hand-computable results.
#include <gtest/gtest.h>

#include "bst.h"

using namespace bst;
using util::Json;

namespace {

// A report document with one phase: 2e9 flops and 1e9 bytes in 0.5 s
// -> 4 GFLOP/s at intensity 2 flops/byte.
Json synthetic_report() {
  Json ph = Json::object();
  ph.set("calls", Json::number(1000.0));
  ph.set("seconds", Json::number(0.5));
  ph.set("flops", Json::number(2e9));
  ph.set("bytes", Json::number(1e9));
  Json phases = Json::object();
  phases.set("reflector_apply", std::move(ph));
  Json metrics = Json::object();
  metrics.set("time_s", Json::number(1.0));
  metrics.set("backward_error", Json::number(3e-16));
  Json doc = Json::object();
  doc.set("schema_version", Json::number(1.0));
  doc.set("phases", std::move(phases));
  doc.set("metrics", std::move(metrics));
  return doc;
}

// peak 8 GF/s, stream 10 GB/s -> balance point at 0.8 flops/byte; at
// intensity 2 the phase is compute-bound (ceiling = peak).
Json synthetic_calibration() {
  Json cal = Json::object();
  cal.set("cpu_model", Json::string("test-cpu"));
  cal.set("peak_gflops", Json::number(8.0));
  cal.set("stream_gbs", Json::number(10.0));
  cal.set("span_overhead_ns", Json::number(100.0));
  return cal;
}

double num(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  EXPECT_NE(v, nullptr) << key;
  return v != nullptr ? v->as_number() : -1.0;
}

}  // namespace

TEST(Attainment, JoinsCountersWithCalibratedCeilings) {
  const Json report = synthetic_report();
  const Json cal = synthetic_calibration();
  std::vector<util::PhaseModel> models{{"reflector_apply", 1.6e9, 1e9}};
  const Json att = util::attainment_section(report, &cal, models);

  const Json* row = att.find("phases")->find("reflector_apply");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(num(*row, "gflops"), 4.0);
  EXPECT_DOUBLE_EQ(num(*row, "intensity"), 2.0);
  // Compute-bound: min(8, 2 * 10) = 8; attainment 4/8.
  EXPECT_DOUBLE_EQ(num(*row, "ceiling_gflops"), 8.0);
  EXPECT_DOUBLE_EQ(num(*row, "attainment"), 0.5);
  // Measured 2e9 over modeled 1.6e9 (impl) and 1e9 (paper).
  EXPECT_DOUBLE_EQ(num(*row, "model_ratio"), 1.25);
  EXPECT_DOUBLE_EQ(num(*row, "paper_ratio"), 2.0);

  // Calibration provenance subobject.
  const Json* c = att.find("calibration");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->find("cpu_model")->as_string(), "test-cpu");
  EXPECT_EQ(c->find("hash")->as_string(), util::fnv1a_hex(cal.dump_compact()));

  // Observability budget: 1000 spans x 100 ns = 0.1 ms over a 1 s makespan.
  EXPECT_DOUBLE_EQ(num(att, "makespan_s"), 1.0);
  EXPECT_DOUBLE_EQ(num(att, "span_calls"), 1000.0);
  EXPECT_DOUBLE_EQ(num(att, "obs_overhead_s"), 1e-4);
  EXPECT_DOUBLE_EQ(num(att, "obs_overhead_frac"), 1e-4);
  EXPECT_DOUBLE_EQ(num(att, "backward_error"), 3e-16);
}

TEST(Attainment, BandwidthBoundCeilingBelowPeak) {
  // Drop the intensity below the balance point: 2e9 flops over 1e10 bytes
  // = 0.2 flops/byte -> ceiling 0.2 * 10 = 2 GF/s < peak 8.
  Json report = synthetic_report();
  Json ph = Json::object();
  ph.set("calls", Json::number(1.0));
  ph.set("seconds", Json::number(0.5));
  ph.set("flops", Json::number(2e9));
  ph.set("bytes", Json::number(1e10));
  Json phases = Json::object();
  phases.set("stream_phase", std::move(ph));
  report.set("phases", std::move(phases));
  const Json cal = synthetic_calibration();
  const Json att = util::attainment_section(report, &cal, {});

  const Json* row = att.find("phases")->find("stream_phase");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(num(*row, "ceiling_gflops"), 2.0);
  EXPECT_DOUBLE_EQ(num(*row, "attainment"), 2.0);  // 4 GF/s "over" the roof
}

TEST(Attainment, UncalibratedReportOmitsCeilingsButKeepsModelRatio) {
  const Json report = synthetic_report();
  std::vector<util::PhaseModel> models{{"reflector_apply", 2e9, 2e9}};
  const Json att = util::attainment_section(report, nullptr, models);

  EXPECT_EQ(att.find("calibration"), nullptr);
  EXPECT_EQ(att.find("obs_overhead_frac"), nullptr);
  const Json* row = att.find("phases")->find("reflector_apply");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(num(*row, "gflops"), 4.0);
  EXPECT_EQ(row->find("ceiling_gflops"), nullptr);
  EXPECT_EQ(row->find("attainment"), nullptr);
  EXPECT_DOUBLE_EQ(num(*row, "model_ratio"), 1.0);
}

TEST(Attainment, MakespanFallsBackToPhaseSum) {
  // Benches without a wall-clock metric: makespan = sum of phase seconds.
  Json report = synthetic_report();
  report.set("metrics", Json::object());
  const Json cal = synthetic_calibration();
  const Json att = util::attainment_section(report, &cal, {});
  EXPECT_DOUBLE_EQ(num(att, "makespan_s"), 0.5);
  EXPECT_DOUBLE_EQ(num(att, "obs_overhead_frac"), 2e-4);
  EXPECT_EQ(att.find("backward_error"), nullptr);
}

TEST(Attainment, EndToEndProfiledFactorizationHitsModelExactly) {
  // The as-implemented models must match the traced flop counters of a
  // real factorization *exactly* for every representation -- this is the
  // invariant the CI attainment gate (model_ratio in [0.9, 1.1]) rests on.
  const toeplitz::BlockToeplitz t = toeplitz::kms(128, 0.6).with_block_size(4);
  for (const core::Representation rep :
       {core::Representation::AccumulatedU, core::Representation::VY1,
        core::Representation::VY2, core::Representation::YTY,
        core::Representation::Sequential}) {
    util::Tracer::reset();
    util::Tracer::enable();
    core::SchurOptions opt;
    opt.rep = rep;
    (void)core::block_schur_stream(t, opt, [](la::index_t, la::CView) {});
    util::Tracer::disable();

    util::PerfReport report("test_attainment");
    const Json doc = report.build();
    const std::vector<util::PhaseModel> models =
        core::schur_phase_models(rep, t.order(), t.block_size());
    ASSERT_EQ(models.size(), 2u);
    const Json att = util::attainment_section(doc, nullptr, models);
    for (const char* phase : {"reflector_build", "reflector_apply"}) {
      const Json* row = att.find("phases")->find(phase);
      ASSERT_NE(row, nullptr) << phase;
      EXPECT_NEAR(num(*row, "model_ratio"), 1.0, 1e-12)
          << phase << " rep " << core::to_string(rep);
    }
    util::Tracer::reset();
  }
}
