// Tests for the metrics registry (util/metrics.h): log-bucket geometry,
// exact count/sum/min/max accounting, percentile estimation against exact
// quantiles, registry interning/reset, and the perf report's "histograms" /
// "warnings" sections (util/report.h + util/watchdog.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "util/metrics.h"
#include "util/report.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::util {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::reset();  // cascades to Metrics/Watchdog
    Tracer::enable();
  }
  void TearDown() override {
    Tracer::disable();
    Tracer::reset();
  }
};

const HistogramStats* find_hist(const std::vector<HistogramStats>& hists,
                                const std::string& name) {
  for (const HistogramStats& h : hists) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Bucket geometry.

TEST(HistBucketTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    const int b = hist_bucket(v);
    EXPECT_EQ(b, static_cast<int>(v));
    EXPECT_DOUBLE_EQ(hist_bucket_lo(b), static_cast<double>(v));
    EXPECT_DOUBLE_EQ(hist_bucket_hi(b), static_cast<double>(v + 1));
  }
}

TEST(HistBucketTest, EveryValueIsInsideItsBucket) {
  // Strict lo <= v < hi containment, probed where double holds v exactly.
  std::vector<std::uint64_t> probes{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 100, 1000, 4095, 4096};
  for (int shift = 12; shift < 53; shift += 5) {
    probes.push_back(std::uint64_t{1} << shift);
    probes.push_back((std::uint64_t{1} << shift) + 3);
    probes.push_back((std::uint64_t{1} << shift) - 1);
  }
  for (const std::uint64_t v : probes) {
    const int b = hist_bucket(v);
    ASSERT_GE(b, 0) << v;
    ASSERT_LT(b, kHistBuckets) << v;
    EXPECT_LE(hist_bucket_lo(b), static_cast<double>(v)) << v;
    EXPECT_GT(hist_bucket_hi(b), static_cast<double>(v)) << v;
  }
  // Past double's exact range, pin the bucket index instead of the bounds.
  EXPECT_EQ(hist_bucket(~std::uint64_t{0}), kHistBuckets - 1);
  EXPECT_EQ(hist_bucket(std::uint64_t{1} << 63), kHistSubBuckets * 62);
}

TEST(HistBucketTest, BucketsAreMonotone) {
  // Bucket index never decreases as the value grows, and the relative bucket
  // width stays at most 25% past the exact range.
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v += 13) {
    const int b = hist_bucket(v);
    EXPECT_GE(b, prev);
    prev = b;
  }
  for (int b = kHistSubBuckets; b < kHistBuckets - 1; ++b) {
    const double lo = hist_bucket_lo(b), hi = hist_bucket_hi(b);
    EXPECT_DOUBLE_EQ(hist_bucket_lo(b + 1), hi);
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Recording + snapshots.

TEST_F(MetricsTest, CountsSumMinMaxAreExact) {
  const HistId id = Metrics::histogram("metrics_test_exact");
  const std::vector<std::uint64_t> values{3, 17, 17, 250, 9001, 0};
  std::uint64_t sum = 0;
  for (const std::uint64_t v : values) {
    Metrics::record(id, v);
    sum += v;
  }
  const std::vector<HistogramStats> hists = Metrics::snapshot();
  const auto* h = find_hist(hists, "metrics_test_exact");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, values.size());
  EXPECT_EQ(h->sum, sum);
  EXPECT_EQ(h->min, 0u);
  EXPECT_EQ(h->max, 9001u);
  EXPECT_DOUBLE_EQ(h->mean(), static_cast<double>(sum) / static_cast<double>(values.size()));
  std::uint64_t bucketed = 0;
  for (const auto& [lo, c] : h->buckets) {
    (void)lo;
    bucketed += c;
  }
  EXPECT_EQ(bucketed, values.size());
}

TEST_F(MetricsTest, PercentilesTrackExactQuantilesWithinBucketWidth) {
  const HistId id = Metrics::histogram("metrics_test_quantile");
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 1000; ++v) values.push_back(v * 7 + 13);
  for (const std::uint64_t v : values) Metrics::record(id, v);
  std::sort(values.begin(), values.end());

  const std::vector<HistogramStats> hists = Metrics::snapshot();
  const auto* h = find_hist(hists, "metrics_test_quantile");
  ASSERT_NE(h, nullptr);
  for (const double q : {0.50, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(values.size())) - 1;
    const double exact = static_cast<double>(values[rank]);
    const double est = h->quantile(q);
    // The estimate must land within the 25% relative bucket width.
    EXPECT_NEAR(est, exact, 0.25 * exact + 1.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h->p50, h->quantile(0.50));
  EXPECT_DOUBLE_EQ(h->p95, h->quantile(0.95));
  EXPECT_DOUBLE_EQ(h->p99, h->quantile(0.99));
  // Quantiles are clamped into the recorded range and ordered.
  EXPECT_GE(h->p50, static_cast<double>(h->min));
  EXPECT_LE(h->p99, static_cast<double>(h->max));
  EXPECT_LE(h->p50, h->p95);
  EXPECT_LE(h->p95, h->p99);
}

TEST_F(MetricsTest, SingleSampleQuantilesClampToTheValue) {
  const HistId id = Metrics::histogram("metrics_test_single");
  Metrics::record(id, 1000);
  const std::vector<HistogramStats> hists = Metrics::snapshot();
  const auto* h = find_hist(hists, "metrics_test_single");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->p50, 1000.0);
  EXPECT_DOUBLE_EQ(h->p99, 1000.0);
}

TEST_F(MetricsTest, InterningIsIdempotentAndResetPreservesIds) {
  const HistId a = Metrics::histogram("metrics_test_intern");
  const HistId b = Metrics::histogram("metrics_test_intern");
  EXPECT_EQ(a, b);
  Metrics::record(a, 5);
  Tracer::reset();  // cascades into Metrics::reset()
  const std::vector<HistogramStats> cleared = Metrics::snapshot();
  EXPECT_EQ(find_hist(cleared, "metrics_test_intern"), nullptr);
  EXPECT_EQ(Metrics::histogram("metrics_test_intern"), a);
  Metrics::record(a, 9);
  const std::vector<HistogramStats> hists = Metrics::snapshot();
  const auto* h = find_hist(hists, "metrics_test_intern");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
}

TEST_F(MetricsTest, TraceSpansFeedThePhaseLatencyHistogram) {
  const PhaseId id = Tracer::phase("metrics_test_span");
  for (int i = 0; i < 5; ++i) TraceSpan span(id);
  const std::vector<HistogramStats> hists = Metrics::snapshot();
  const auto* h = find_hist(hists, "metrics_test_span_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 5u);
}

TEST_F(MetricsTest, DisabledTracerFeedsNothing) {
  Tracer::disable();
  const PhaseId id = Tracer::phase("metrics_test_disabled");
  { TraceSpan span(id); }
  Tracer::enable();
  const std::vector<HistogramStats> hists = Metrics::snapshot();
  EXPECT_EQ(find_hist(hists, "metrics_test_disabled_ns"), nullptr);
}

// ---------------------------------------------------------------------------
// Watchdog warnings.

TEST_F(MetricsTest, WatchdogChecksFireOnThresholds) {
  Watchdog::check_step(3, 1e-12, 1.0, 1.0);           // near-singular minor
  Watchdog::check_step(4, 1.0, 1e9, 1.0);             // generator growth
  Watchdog::check_step(5, 1.0, 1.0, 1.0);             // healthy: nothing
  Watchdog::check_reflection(6, 1.0 - 1e-9);          // near-unit rotation
  Watchdog::check_refine(2, true, 0.9);               // stall
  Watchdog::check_refine(10, false, 0.0);             // no convergence
  const std::vector<Warning> w = Watchdog::snapshot();
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(w[0].code, "near_singular_minor");
  EXPECT_EQ(w[0].step, 3);
  EXPECT_EQ(w[1].code, "generator_growth");
  EXPECT_EQ(w[2].code, "hyperbolic_rotation_near_1");
  EXPECT_EQ(w[3].code, "refine_stall");
  EXPECT_EQ(w[4].code, "refine_no_convergence");
  EXPECT_EQ(Watchdog::total(), 5u);
}

TEST_F(MetricsTest, WatchdogIsSilentWhileDisabledAndCapsTheLog) {
  Tracer::disable();
  Watchdog::warn("metrics_test_off", 0, 1.0, 2.0);
  Tracer::enable();
  EXPECT_TRUE(Watchdog::snapshot().empty());

  const std::size_t saved = Watchdog::limits().max_warnings;
  Watchdog::limits().max_warnings = 3;
  for (int i = 0; i < 10; ++i) Watchdog::warn("metrics_test_cap", i, 0.0, 0.0);
  EXPECT_EQ(Watchdog::snapshot().size(), 3u);
  EXPECT_EQ(Watchdog::total(), 10u);
  Watchdog::limits().max_warnings = saved;
}

// ---------------------------------------------------------------------------
// Report sections round-trip.

TEST_F(MetricsTest, ReportCarriesHistogramsAndWarnings) {
  const HistId id = Metrics::histogram("metrics_test_report");
  for (std::uint64_t v = 1; v <= 100; ++v) Metrics::record(id, v);
  Watchdog::warn("near_singular_minor", 7, 1e-12, 1e-10);

  PerfReport report("metrics_test");
  std::ostringstream os;
  report.write(os);
  const Json doc = parse_json(os.str());

  const Json* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const Json* h = hists->find("metrics_test_report");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(h->find("min")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h->find("max")->as_number(), 100.0);
  EXPECT_GT(h->find("p50")->as_number(), 0.0);
  EXPECT_GE(h->find("p99")->as_number(), h->find("p50")->as_number());
  const Json* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  double bucketed = 0.0;
  for (const Json& pair : buckets->items()) {
    ASSERT_EQ(pair.items().size(), 2u);
    bucketed += pair.items()[1].as_number();
  }
  EXPECT_DOUBLE_EQ(bucketed, 100.0);

  const Json* warnings = doc.find("warnings");
  ASSERT_NE(warnings, nullptr);
  ASSERT_EQ(warnings->items().size(), 1u);
  EXPECT_EQ(warnings->items()[0].find("code")->as_string(), "near_singular_minor");
  EXPECT_DOUBLE_EQ(warnings->items()[0].find("step")->as_number(), 7.0);
  EXPECT_EQ(doc.find("warnings_dropped"), nullptr);  // nothing dropped
}

TEST_F(MetricsTest, ReportOmitsEmptyHistogramAndWarningSections) {
  PerfReport report("metrics_test_empty");
  std::ostringstream os;
  report.write(os);
  const Json doc = parse_json(os.str());
  EXPECT_EQ(doc.find("histograms"), nullptr);
  EXPECT_EQ(doc.find("warnings"), nullptr);
}

TEST_F(MetricsTest, ReportRecordsDroppedWarningCount) {
  const std::size_t saved = Watchdog::limits().max_warnings;
  Watchdog::limits().max_warnings = 2;
  for (int i = 0; i < 5; ++i) Watchdog::warn("metrics_test_drop", i, 0.0, 0.0);
  PerfReport report("metrics_test_drop");
  std::ostringstream os;
  report.write(os);
  Watchdog::limits().max_warnings = saved;
  const Json doc = parse_json(os.str());
  ASSERT_NE(doc.find("warnings"), nullptr);
  EXPECT_EQ(doc.find("warnings")->items().size(), 2u);
  ASSERT_NE(doc.find("warnings_dropped"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("warnings_dropped")->as_number(), 3.0);
}

}  // namespace
}  // namespace bst::util
