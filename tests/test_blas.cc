// Tests for the BLAS-style kernels, checked against naive references over
// parameterized shape sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "la/blas.h"
#include "la/norms.h"
#include "util/flops.h"
#include "util/rng.h"

namespace bst::la {
namespace {

Mat random_matrix(index_t r, index_t c, util::Rng& rng) {
  Mat a(r, c);
  for (index_t j = 0; j < c; ++j)
    for (index_t i = 0; i < r; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

Mat naive_gemm(Op ta, Op tb, double alpha, CView a, CView b, double beta, CView c0) {
  const index_t m = (ta == Op::None) ? a.rows() : a.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  const index_t n = (tb == Op::None) ? b.cols() : b.rows();
  Mat c(m, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) {
        const double av = (ta == Op::None) ? a(i, l) : a(l, i);
        const double bv = (tb == Op::None) ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = alpha * s + beta * c0(i, j);
    }
  return c;
}

TEST(Blas1, DotAxpyScalNrm2) {
  std::vector<double> x{1, 2, 3, 4, 5}, y{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot(5, x.data(), y.data()), 35.0);
  axpy(5, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[4], 11.0);
  scal(5, 0.5, y.data());
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  std::vector<double> z{3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(2, z.data()), 5.0);
}

TEST(Blas1, Nrm2AvoidsOverflow) {
  std::vector<double> big{1e200, 1e200};
  EXPECT_NEAR(nrm2(2, big.data()) / (std::sqrt(2.0) * 1e200), 1.0, 1e-14);
  std::vector<double> zero{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(nrm2(3, zero.data()), 0.0);
}

TEST(Blas1, DotHandlesRemainderLengths) {
  util::Rng rng(5);
  for (index_t n : {0, 1, 2, 3, 4, 5, 6, 7, 9, 17}) {
    std::vector<double> x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
    double expect = 0.0;
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
      y[static_cast<std::size_t>(i)] = rng.uniform(-1, 1);
      expect += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(dot(n, x.data(), y.data()), expect, 1e-13);
  }
}

TEST(Blas2, GemvBothOps) {
  util::Rng rng(9);
  Mat a = random_matrix(5, 3, rng);
  std::vector<double> x{1.0, -2.0, 0.5};
  std::vector<double> y(5, 1.0);
  gemv(false, 2.0, a.view(), x.data(), 3.0, y.data());
  for (index_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 3; ++j) s += a(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], 2.0 * s + 3.0, 1e-13);
  }
  std::vector<double> xt(5, 0.5), yt(3, 0.0);
  gemv(true, 1.0, a.view(), xt.data(), 0.0, yt.data());
  for (index_t j = 0; j < 3; ++j) {
    double s = 0.0;
    for (index_t i = 0; i < 5; ++i) s += a(i, j) * 0.5;
    EXPECT_NEAR(yt[static_cast<std::size_t>(j)], s, 1e-13);
  }
}

TEST(Blas2, GerRank1) {
  Mat a(3, 2);
  std::vector<double> x{1, 2, 3}, y{4, 5};
  ger(2.0, x.data(), y.data(), a.view());
  EXPECT_DOUBLE_EQ(a(2, 1), 2.0 * 3 * 5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0 * 1 * 4);
}

// Parameterized gemm sweep over shapes and transpose combinations.
using GemmParam = std::tuple<int, int, int, int, int>;  // m, n, k, ta, tb

class GemmSweep : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweep, MatchesNaive) {
  const auto [m, n, k, tai, tbi] = GetParam();
  const Op ta = tai != 0 ? Op::Trans : Op::None;
  const Op tb = tbi != 0 ? Op::Trans : Op::None;
  util::Rng rng(static_cast<std::uint64_t>(m * 73 + n * 31 + k * 7 + tai * 2 + tbi));
  Mat a = (ta == Op::None) ? random_matrix(m, k, rng) : random_matrix(k, m, rng);
  Mat b = (tb == Op::None) ? random_matrix(k, n, rng) : random_matrix(n, k, rng);
  Mat c = random_matrix(m, n, rng);
  Mat expect = naive_gemm(ta, tb, 1.3, a.view(), b.view(), -0.7, c.view());
  gemm(ta, tb, 1.3, a.view(), b.view(), -0.7, c.view());
  EXPECT_LT(max_diff(c.view(), expect.view()), 1e-12 * (1 + static_cast<double>(k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 8, 17), ::testing::Values(1, 3, 8, 13),
                       ::testing::Values(1, 4, 9, 32), ::testing::Values(0, 1),
                       ::testing::Values(0, 1)));

TEST(Gemm, BetaZeroOverwritesNaNs) {
  Mat a{{1.0}}, b{{2.0}};
  Mat c(1, 1);
  c(0, 0) = std::nan("");
  gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
}

TEST(Gemm, KZeroScalesOnly) {
  Mat a(2, 0), b(0, 2);
  Mat c{{1, 2}, {3, 4}};
  gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 2.0, c.view());
  EXPECT_DOUBLE_EQ(c(1, 1), 8.0);
}

TEST(Syrk, LowerMatchesGemm) {
  util::Rng rng(21);
  Mat a = random_matrix(6, 4, rng);
  Mat c = random_matrix(6, 6, rng);
  // Symmetrize reference including the upper half via full gemm.
  Mat full(6, 6);
  copy(c.view(), full.view());
  gemm(Op::None, Op::Trans, 1.5, a.view(), a.view(), 1.0, full.view());
  syrk_lower(1.5, a.view(), 1.0, c.view());
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = j; i < 6; ++i) EXPECT_NEAR(c(i, j), full(i, j), 1e-12);
}

class TrsmSweep : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TrsmSweep, SolvesTriangularSystem) {
  const auto [sidei, uploi, opi, n] = GetParam();
  const Side side = sidei != 0 ? Side::Right : Side::Left;
  const Uplo uplo = uploi != 0 ? Uplo::Upper : Uplo::Lower;
  const Op op = opi != 0 ? Op::Trans : Op::None;
  util::Rng rng(static_cast<std::uint64_t>(100 + sidei * 8 + uploi * 4 + opi * 2 + n));
  Mat t = random_matrix(n, n, rng);
  for (index_t i = 0; i < n; ++i) t(i, i) = 2.0 + rng.uniform();  // well conditioned
  // Zero the non-referenced triangle to make the reference unambiguous.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      const bool keep = (uplo == Uplo::Lower) ? i >= j : i <= j;
      if (!keep) t(i, j) = 0.0;
    }
  const index_t br = (side == Side::Left) ? n : 5;
  const index_t bc = (side == Side::Left) ? 5 : n;
  Mat b = random_matrix(br, bc, rng);
  Mat x(br, bc);
  copy(b.view(), x.view());
  trsm(side, uplo, op, Diag::NonUnit, 1.0, t.view(), x.view());
  // Verify op(T) X = B (or X op(T) = B).
  Mat check(br, bc);
  if (side == Side::Left) {
    gemm(op, Op::None, 1.0, t.view(), x.view(), 0.0, check.view());
  } else {
    gemm(Op::None, op, 1.0, x.view(), t.view(), 0.0, check.view());
  }
  EXPECT_LT(max_diff(check.view(), b.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TrsmSweep,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1),
                                            ::testing::Values(0, 1),
                                            ::testing::Values(1, 2, 7, 16)));

TEST(Trsv, UnitDiagonalVariant) {
  Mat t{{1.0, 0.0}, {0.5, 1.0}};  // stored values; unit diag means diag ignored
  t(0, 0) = 99.0;                 // must be ignored
  t(1, 1) = -99.0;
  std::vector<double> x{2.0, 3.0};
  trsv(Uplo::Lower, Op::None, Diag::Unit, t.view(), x.data());
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0 - 0.5 * 2.0);
}

TEST(Flops, GemmChargesTwoMNK) {
  util::Rng rng(1);
  Mat a = random_matrix(4, 6, rng), b = random_matrix(6, 5, rng), c(4, 5);
  util::FlopScope scope;
  gemm(Op::None, Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
  EXPECT_EQ(scope.elapsed(), 2u * 4u * 5u * 6u);
}

}  // namespace
}  // namespace bst::la
