// Tests for util/ledger: entry distillation, JSONL round-trip, the trend
// gate semantics behind `bst_report --trend`, and the report-determinism
// guarantees the ledger relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bst.h"

using namespace bst;

namespace {

// Temp-file path in the test's working directory, removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(std::string name) : path(std::move(name)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
};

util::Json entry_with(double solve_s, double residual) {
  util::Json phases = util::Json::object();
  phases.set("solve", util::Json::number(solve_s));
  util::Json metrics = util::Json::object();
  metrics.set("residual", util::Json::number(residual));
  util::Json e = util::Json::object();
  e.set("phases", std::move(phases));
  e.set("metrics", std::move(metrics));
  return e;
}

}  // namespace

TEST(Ledger, UtcTimestampShape) {
  const std::string ts = util::utc_timestamp();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Ledger, Fnv1aKnownVectors) {
  EXPECT_EQ(util::fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(util::fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_NE(util::fnv1a_hex("{\"n\":256}"), util::fnv1a_hex("{\"n\":512}"));
}

TEST(Ledger, EntryDistillsReportDocument) {
  util::PerfReport report("test_tool");
  report.param("n", static_cast<std::int64_t>(128));
  report.metric("time_s", 0.25);
  const util::Json entry = util::ledger_entry(report.build(/*include_tracer=*/false));

  ASSERT_NE(entry.find("utc"), nullptr);
  ASSERT_NE(entry.find("git"), nullptr);
  ASSERT_NE(entry.find("tool"), nullptr);
  EXPECT_EQ(entry.find("tool")->as_string(), "test_tool");
  ASSERT_NE(entry.find("params_hash"), nullptr);
  ASSERT_NE(entry.find("params"), nullptr);
  ASSERT_NE(entry.find("metrics"), nullptr);
  EXPECT_DOUBLE_EQ(entry.find("metrics")->find("time_s")->as_number(), 0.25);
  ASSERT_NE(entry.find("warnings"), nullptr);
  EXPECT_DOUBLE_EQ(entry.find("warnings")->as_number(), 0.0);
  // One line, no whitespace: the JSONL contract.
  const std::string line = entry.dump_compact();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find(": "), std::string::npos);
}

TEST(Ledger, AppendReadRoundTripSkipsCorruptLines) {
  TempFile f("test_ledger_roundtrip.jsonl");
  util::PerfReport report("test_tool");
  report.metric("time_s", 1.0);
  const util::Json doc = report.build(false);
  util::append_ledger(f.path, doc);
  util::append_ledger(f.path, doc);
  {
    std::ofstream os(f.path, std::ios::app);
    os << "{not json\n\n";  // corrupt + blank line must not poison the rest
  }
  util::append_ledger(f.path, doc);

  const std::vector<util::Json> entries = util::read_ledger(f.path);
  ASSERT_EQ(entries.size(), 3u);
  for (const util::Json& e : entries) EXPECT_EQ(e.find("tool")->as_string(), "test_tool");
  EXPECT_THROW(util::read_ledger("no_such_ledger_file.jsonl"), std::runtime_error);
}

TEST(Ledger, TrendFlagsRegressionOfLastAgainstRollingMedian) {
  std::vector<util::Json> entries{entry_with(1.0, 1e-12), entry_with(1.0, 1e-12),
                                  entry_with(2.0, 5e-12)};
  const util::TrendReport trend = util::ledger_trend(entries, /*max_regress=*/0.5,
                                                     /*min_seconds=*/0.0);
  EXPECT_EQ(trend.regressions, 1);
  bool saw_solve = false, saw_residual = false;
  for (const util::TrendStat& s : trend.series) {
    if (s.key == "phases.solve") {
      saw_solve = true;
      EXPECT_TRUE(s.gated);
      EXPECT_TRUE(s.regressed);
      EXPECT_DOUBLE_EQ(s.baseline, 1.0);
      EXPECT_DOUBLE_EQ(s.last, 2.0);
      EXPECT_NEAR(s.rel, 1.0, 1e-12);
    }
    if (s.key == "metrics.residual") {
      saw_residual = true;
      // Residuals are reported but never fail the gate (5x jump here).
      EXPECT_FALSE(s.gated);
      EXPECT_FALSE(s.regressed);
    }
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_residual);
}

TEST(Ledger, TrendRespectsNoiseFloorAndDisabledGate) {
  std::vector<util::Json> entries{entry_with(1e-5, 0), entry_with(1e-5, 0),
                                  entry_with(1e-3, 0)};
  // Baseline 1e-5 is under the 1e-3 noise floor: a 100x jump is ignored.
  EXPECT_EQ(util::ledger_trend(entries, 0.5, 1e-3).regressions, 0);
  // max_regress < 0 disables gating entirely.
  std::vector<util::Json> bad{entry_with(1.0, 0), entry_with(1.0, 0), entry_with(10.0, 0)};
  EXPECT_EQ(util::ledger_trend(bad, -1.0, 0.0).regressions, 0);
}

TEST(Ledger, TrendSingleEntryIsInsufficientHistoryNotRegression) {
  std::vector<util::Json> entries{entry_with(1.0, 1e-12)};
  const util::TrendReport trend = util::ledger_trend(entries, 0.5, 0.0);
  EXPECT_EQ(trend.regressions, 0);
  EXPECT_TRUE(trend.insufficient_history);
  for (const util::TrendStat& s : trend.series) {
    EXPECT_FALSE(s.regressed);
    // baseline falls back to the single value; rel must be 0, not NaN/inf.
    EXPECT_DOUBLE_EQ(s.rel, 0.0);
  }
  std::vector<util::Json> two{entry_with(1.0, 0), entry_with(1.0, 0)};
  EXPECT_FALSE(util::ledger_trend(two, 0.5, 0.0).insufficient_history);
}

TEST(Ledger, TrendSkipsEntriesFromOtherMachines) {
  auto on_machine = [](double solve_s, const char* fp) {
    util::Json e = entry_with(solve_s, 0.0);
    e.set("machine", util::Json::string(fp));
    return e;
  };
  // Fast history from machine B would make A's last entry look like a 4x
  // regression; B must be filtered out against A's reference fingerprint.
  std::vector<util::Json> entries{on_machine(2.0, "aaaa"), on_machine(0.5, "bbbb"),
                                  on_machine(0.5, "bbbb"), on_machine(2.0, "aaaa")};
  const util::TrendReport trend = util::ledger_trend(entries, 0.5, 0.0);
  EXPECT_EQ(trend.skipped_machines, 2);
  EXPECT_EQ(trend.regressions, 0);
  for (const util::TrendStat& s : trend.series) {
    if (s.key == "phases.solve") {
      EXPECT_EQ(s.values.size(), 2u);
    }
  }
  // Entries predating the fingerprint field ("machine" absent) stay in.
  std::vector<util::Json> mixed{entry_with(1.0, 0), on_machine(1.0, "aaaa")};
  EXPECT_EQ(util::ledger_trend(mixed, 0.5, 0.0).skipped_machines, 0);
}

TEST(Ledger, TrendSkipsEntriesOnDifferentSolverPath) {
  auto on_path = [](double solve_s, const char* sp) {
    util::Json e = entry_with(solve_s, 0.0);
    util::Json params = util::Json::object();
    params.set("solver_path", util::Json::string(sp));
    e.set("params", std::move(params));
    return e;
  };
  // A much-faster PCG history would make the Schur entry look regressed;
  // cross-path entries must be excluded, not compared.
  std::vector<util::Json> entries{on_path(0.1, "pcg"), on_path(0.1, "pcg"),
                                  on_path(2.0, "schur")};
  const util::TrendReport trend = util::ledger_trend(entries, 0.5, 0.0);
  EXPECT_EQ(trend.skipped_paths, 2);
  EXPECT_EQ(trend.regressions, 0);
  for (const util::TrendStat& s : trend.series) {
    if (s.key == "phases.solve") EXPECT_EQ(s.values.size(), 1u);
  }
  // Entries predating the field stay in (old ledgers keep their history),
  // and a same-path history is compared as before.
  std::vector<util::Json> mixed{entry_with(1.0, 0), on_path(1.0, "schur")};
  EXPECT_EQ(util::ledger_trend(mixed, 0.5, 0.0).skipped_paths, 0);
  std::vector<util::Json> same{on_path(1.0, "pcg"), on_path(1.0, "pcg"), on_path(2.0, "pcg")};
  EXPECT_EQ(util::ledger_trend(same, 0.5, 0.0).skipped_paths, 0);
  EXPECT_EQ(util::ledger_trend(same, 0.5, 0.0).regressions, 1);
}

TEST(Ledger, TrendGatesAttainmentOnDropsNotRises) {
  auto with_attainment = [](double a) {
    util::Json att = util::Json::object();
    att.set("reflector_apply", util::Json::number(a));
    util::Json e = util::Json::object();
    e.set("attainment", std::move(att));
    return e;
  };
  // 0.6 -> 0.2 is a 67% drop: regresses at max_regress = 0.5.
  std::vector<util::Json> drop{with_attainment(0.6), with_attainment(0.6),
                               with_attainment(0.2)};
  const util::TrendReport bad = util::ledger_trend(drop, 0.5, /*min_seconds=*/1.0);
  EXPECT_EQ(bad.regressions, 1);
  for (const util::TrendStat& s : bad.series) {
    EXPECT_TRUE(s.gated);
    EXPECT_TRUE(s.higher_is_better);
    EXPECT_TRUE(s.regressed);  // min_seconds floor must not shield fractions
  }
  // The reverse move (0.2 -> 0.6, a 3x *rise*) is an improvement, not a
  // regression, even though |rel| is far past the gate.
  std::vector<util::Json> rise{with_attainment(0.2), with_attainment(0.2),
                               with_attainment(0.6)};
  EXPECT_EQ(util::ledger_trend(rise, 0.5, 0.0).regressions, 0);
}

TEST(Ledger, EntryCarriesMachineAndAttainmentColumns) {
  util::PerfReport report("test_tool");
  report.metric("time_s", 1.0);
  util::Json att = util::Json::object();
  util::Json rows = util::Json::object();
  util::Json row = util::Json::object();
  row.set("attainment", util::Json::number(0.42));
  row.set("gflops", util::Json::number(3.0));
  rows.set("reflector_apply", std::move(row));
  att.set("phases", std::move(rows));
  report.set_attainment(std::move(att));

  const util::Json entry = util::ledger_entry(report.build(false));
  const util::Json* machine = entry.find("machine");
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(machine->as_string(), util::machine_fingerprint());
  const util::Json* a = entry.find("attainment");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(a->find("reflector_apply"), nullptr);
  EXPECT_DOUBLE_EQ(a->find("reflector_apply")->as_number(), 0.42);
}

TEST(Ledger, EntryCarriesPmuColumnsWhenCountersPresent) {
  util::Json row = util::Json::object();
  row.set("seconds", util::Json::number(0.5));
  row.set("cycles", util::Json::number(1.5e9));
  row.set("instructions", util::Json::number(3.0e9));
  row.set("llc_loads", util::Json::number(1.0e6));
  row.set("llc_misses", util::Json::number(2.5e5));
  util::Json phases = util::Json::object();
  phases.set("reflector_apply", std::move(row));
  util::Json doc = util::Json::object();
  doc.set("tool", util::Json::string("test_tool"));
  doc.set("phases", std::move(phases));

  const util::Json entry = util::ledger_entry(doc);
  const util::Json* pmu = entry.find("pmu");
  ASSERT_NE(pmu, nullptr);
  ASSERT_NE(pmu->find("ipc"), nullptr);
  EXPECT_DOUBLE_EQ(pmu->find("ipc")->as_number(), 2.0);
  ASSERT_NE(pmu->find("llc_miss_rate"), nullptr);
  EXPECT_DOUBLE_EQ(pmu->find("llc_miss_rate")->as_number(), 0.25);
}

TEST(Ledger, EntryOmitsPmuColumnsWithoutCounters) {
  // A run where perf_event_open was denied (or --prof never given) has no
  // hardware columns in its phases; the entry must omit "pmu" entirely
  // rather than write zeros that would poison the trend series.
  util::PerfReport report("test_tool");
  report.metric("time_s", 0.25);
  const util::Json entry = util::ledger_entry(report.build(false));
  EXPECT_EQ(entry.find("pmu"), nullptr);
}

TEST(Ledger, TrendSkipsPmuOnPrePmuHistory) {
  // Two pre-PR lines without pmu columns plus a new one with them: the
  // pmu series is informational (never gated) and absent keys drop out of
  // the series instead of failing the trend.
  util::Json newest = entry_with(1.0, 1e-12);
  util::Json pmu = util::Json::object();
  pmu.set("ipc", util::Json::number(1.8));
  pmu.set("llc_miss_rate", util::Json::number(0.1));
  newest.set("pmu", std::move(pmu));
  std::vector<util::Json> entries{entry_with(1.0, 1e-12), entry_with(1.0, 1e-12),
                                  std::move(newest)};
  const util::TrendReport trend = util::ledger_trend(entries, /*max_regress=*/0.5,
                                                     /*min_seconds=*/0.0);
  EXPECT_EQ(trend.regressions, 0);
  bool saw_ipc = false;
  for (const util::TrendStat& s : trend.series) {
    if (s.key == "pmu.ipc") {
      saw_ipc = true;
      EXPECT_FALSE(s.gated);
      EXPECT_FALSE(s.regressed);
      ASSERT_EQ(s.values.size(), 1u);  // only the new line carries it
      EXPECT_DOUBLE_EQ(s.last, 1.8);
    }
  }
  EXPECT_TRUE(saw_ipc);
}

TEST(Ledger, SparklineShapes) {
  const std::string ramp = util::sparkline({0.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(ramp.size(), 4u);
  EXPECT_EQ(ramp.front(), '.');
  EXPECT_EQ(ramp.back(), '@');
  EXPECT_EQ(util::sparkline({5.0, 5.0, 5.0}), "---");
  const std::string with_nan = util::sparkline({0.0, std::nan(""), 1.0});
  EXPECT_EQ(with_nan[1], '?');
  EXPECT_TRUE(util::sparkline({}).empty());
}

TEST(Ledger, ReportBuildIsDeterministic) {
  // Two identical reports serialize byte-identically, and the tracer's
  // phase section comes out sorted by name regardless of registration
  // order -- both needed for stable ledger diffs.
  util::Tracer::reset();
  util::Tracer::enable();
  const util::PhaseId zz = util::Tracer::phase("zz_last_registered");
  const util::PhaseId aa = util::Tracer::phase("aa_first_alphabetically");
  { util::TraceSpan span(zz); }
  { util::TraceSpan span(aa); }
  util::Tracer::disable();

  auto make = [] {
    util::PerfReport r("det_tool");
    r.param("n", static_cast<std::int64_t>(64));
    r.metric("time_s", 0.5);
    return r.build();
  };
  const util::Json a = make();
  EXPECT_EQ(a.dump(), make().dump());

  const util::Json* phases = a.find("phases");
  ASSERT_NE(phases, nullptr);
  std::string prev;
  bool saw_both = false;
  for (const auto& [name, stats] : phases->members()) {
    EXPECT_LE(prev, name);
    prev = name;
    saw_both |= name == "zz_last_registered";
  }
  EXPECT_TRUE(saw_both);
  util::Tracer::reset();
}
