// Tests for util/ledger: entry distillation, JSONL round-trip, the trend
// gate semantics behind `bst_report --trend`, and the report-determinism
// guarantees the ledger relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bst.h"

using namespace bst;

namespace {

// Temp-file path in the test's working directory, removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(std::string name) : path(std::move(name)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
};

util::Json entry_with(double solve_s, double residual) {
  util::Json phases = util::Json::object();
  phases.set("solve", util::Json::number(solve_s));
  util::Json metrics = util::Json::object();
  metrics.set("residual", util::Json::number(residual));
  util::Json e = util::Json::object();
  e.set("phases", std::move(phases));
  e.set("metrics", std::move(metrics));
  return e;
}

}  // namespace

TEST(Ledger, UtcTimestampShape) {
  const std::string ts = util::utc_timestamp();
  ASSERT_EQ(ts.size(), 20u);
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[7], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[13], ':');
  EXPECT_EQ(ts[16], ':');
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Ledger, Fnv1aKnownVectors) {
  EXPECT_EQ(util::fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(util::fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_NE(util::fnv1a_hex("{\"n\":256}"), util::fnv1a_hex("{\"n\":512}"));
}

TEST(Ledger, EntryDistillsReportDocument) {
  util::PerfReport report("test_tool");
  report.param("n", static_cast<std::int64_t>(128));
  report.metric("time_s", 0.25);
  const util::Json entry = util::ledger_entry(report.build(/*include_tracer=*/false));

  ASSERT_NE(entry.find("utc"), nullptr);
  ASSERT_NE(entry.find("git"), nullptr);
  ASSERT_NE(entry.find("tool"), nullptr);
  EXPECT_EQ(entry.find("tool")->as_string(), "test_tool");
  ASSERT_NE(entry.find("params_hash"), nullptr);
  ASSERT_NE(entry.find("params"), nullptr);
  ASSERT_NE(entry.find("metrics"), nullptr);
  EXPECT_DOUBLE_EQ(entry.find("metrics")->find("time_s")->as_number(), 0.25);
  ASSERT_NE(entry.find("warnings"), nullptr);
  EXPECT_DOUBLE_EQ(entry.find("warnings")->as_number(), 0.0);
  // One line, no whitespace: the JSONL contract.
  const std::string line = entry.dump_compact();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find(": "), std::string::npos);
}

TEST(Ledger, AppendReadRoundTripSkipsCorruptLines) {
  TempFile f("test_ledger_roundtrip.jsonl");
  util::PerfReport report("test_tool");
  report.metric("time_s", 1.0);
  const util::Json doc = report.build(false);
  util::append_ledger(f.path, doc);
  util::append_ledger(f.path, doc);
  {
    std::ofstream os(f.path, std::ios::app);
    os << "{not json\n\n";  // corrupt + blank line must not poison the rest
  }
  util::append_ledger(f.path, doc);

  const std::vector<util::Json> entries = util::read_ledger(f.path);
  ASSERT_EQ(entries.size(), 3u);
  for (const util::Json& e : entries) EXPECT_EQ(e.find("tool")->as_string(), "test_tool");
  EXPECT_THROW(util::read_ledger("no_such_ledger_file.jsonl"), std::runtime_error);
}

TEST(Ledger, TrendFlagsRegressionOfLastAgainstRollingMedian) {
  std::vector<util::Json> entries{entry_with(1.0, 1e-12), entry_with(1.0, 1e-12),
                                  entry_with(2.0, 5e-12)};
  const util::TrendReport trend = util::ledger_trend(entries, /*max_regress=*/0.5,
                                                     /*min_seconds=*/0.0);
  EXPECT_EQ(trend.regressions, 1);
  bool saw_solve = false, saw_residual = false;
  for (const util::TrendStat& s : trend.series) {
    if (s.key == "phases.solve") {
      saw_solve = true;
      EXPECT_TRUE(s.gated);
      EXPECT_TRUE(s.regressed);
      EXPECT_DOUBLE_EQ(s.baseline, 1.0);
      EXPECT_DOUBLE_EQ(s.last, 2.0);
      EXPECT_NEAR(s.rel, 1.0, 1e-12);
    }
    if (s.key == "metrics.residual") {
      saw_residual = true;
      // Residuals are reported but never fail the gate (5x jump here).
      EXPECT_FALSE(s.gated);
      EXPECT_FALSE(s.regressed);
    }
  }
  EXPECT_TRUE(saw_solve);
  EXPECT_TRUE(saw_residual);
}

TEST(Ledger, TrendRespectsNoiseFloorAndDisabledGate) {
  std::vector<util::Json> entries{entry_with(1e-5, 0), entry_with(1e-5, 0),
                                  entry_with(1e-3, 0)};
  // Baseline 1e-5 is under the 1e-3 noise floor: a 100x jump is ignored.
  EXPECT_EQ(util::ledger_trend(entries, 0.5, 1e-3).regressions, 0);
  // max_regress < 0 disables gating entirely.
  std::vector<util::Json> bad{entry_with(1.0, 0), entry_with(1.0, 0), entry_with(10.0, 0)};
  EXPECT_EQ(util::ledger_trend(bad, -1.0, 0.0).regressions, 0);
}

TEST(Ledger, SparklineShapes) {
  const std::string ramp = util::sparkline({0.0, 1.0, 2.0, 3.0});
  ASSERT_EQ(ramp.size(), 4u);
  EXPECT_EQ(ramp.front(), '.');
  EXPECT_EQ(ramp.back(), '@');
  EXPECT_EQ(util::sparkline({5.0, 5.0, 5.0}), "---");
  const std::string with_nan = util::sparkline({0.0, std::nan(""), 1.0});
  EXPECT_EQ(with_nan[1], '?');
  EXPECT_TRUE(util::sparkline({}).empty());
}

TEST(Ledger, ReportBuildIsDeterministic) {
  // Two identical reports serialize byte-identically, and the tracer's
  // phase section comes out sorted by name regardless of registration
  // order -- both needed for stable ledger diffs.
  util::Tracer::reset();
  util::Tracer::enable();
  const util::PhaseId zz = util::Tracer::phase("zz_last_registered");
  const util::PhaseId aa = util::Tracer::phase("aa_first_alphabetically");
  { util::TraceSpan span(zz); }
  { util::TraceSpan span(aa); }
  util::Tracer::disable();

  auto make = [] {
    util::PerfReport r("det_tool");
    r.param("n", static_cast<std::int64_t>(64));
    r.metric("time_s", 0.5);
    return r.build();
  };
  const util::Json a = make();
  EXPECT_EQ(a.dump(), make().dump());

  const util::Json* phases = a.find("phases");
  ASSERT_NE(phases, nullptr);
  std::string prev;
  bool saw_both = false;
  for (const auto& [name, stats] : phases->members()) {
    EXPECT_LE(prev, name);
    prev = name;
    saw_both |= name == "zz_last_registered";
  }
  EXPECT_TRUE(saw_both);
  util::Tracer::reset();
}
