// Tests for the distributed-memory simulation: machine cost model,
// layout/owner maps, distributed factorization correctness (V1/V2 really
// run on distributed storage) and the qualitative tradeoffs of section 7.
#include <gtest/gtest.h>

#include "core/schur.h"
#include "la/norms.h"
#include "simnet/dist_schur.h"
#include "simnet/machine.h"
#include "toeplitz/generators.h"

namespace bst::simnet {
namespace {

TEST(Machine, ComputeAdvancesClock) {
  Machine m(2, MachineParams{.flop_rate = 100.0, .latency = 0.0, .bandwidth = 1e9});
  m.compute(0, 200.0);
  EXPECT_DOUBLE_EQ(m.time(), 2.0);
  EXPECT_DOUBLE_EQ(m.breakdown().compute, 2.0);
}

TEST(Machine, PutSynchronizesReceiver) {
  MachineParams p;
  p.flop_rate = 1.0;
  p.latency = 1.0;
  p.bandwidth = 8.0;  // 1 second per 8 bytes
  Machine m(2, p);
  m.compute(0, 5.0);           // PE0 at t=5
  m.put(0, 1, 8.0);            // arrives at 5 + 1 + 1 = 7
  EXPECT_DOUBLE_EQ(m.time(), 7.0);
}

TEST(Machine, BroadcastReachesEveryone) {
  MachineParams p;
  p.latency = 1.0;
  p.bandwidth = 1e18;
  Machine m(8, p);
  m.compute(3, 0.0);
  m.broadcast(3, 0.0);
  // log2(8) = 3 hops of 1 second latency.
  EXPECT_DOUBLE_EQ(m.time(), 3.0);
}

TEST(Machine, BarrierAlignsClocksAndCountsIdle) {
  MachineParams p;
  p.flop_rate = 1.0;
  p.barrier_hop = 0.0;
  Machine m(2, p);
  m.compute(0, 10.0);
  m.barrier();
  EXPECT_DOUBLE_EQ(m.time(), 10.0);
  EXPECT_DOUBLE_EQ(m.breakdown().barrier, 10.0);  // PE1 idled 10 seconds
}

TEST(Machine, SelfPutIsFree) {
  Machine m(2, MachineParams{});
  m.put(0, 0, 1e9);
  EXPECT_DOUBLE_EQ(m.time(), 0.0);
}

TEST(RepresentationBytes, YtyIsSmallest) {
  for (core::index_t m : {2, 4, 8, 32}) {
    const double u = representation_bytes(core::Representation::AccumulatedU, m);
    const double vy = representation_bytes(core::Representation::VY2, m);
    const double yty = representation_bytes(core::Representation::YTY, m);
    // Paper section 6.5: the YTY form needs about half the storage /
    // communication volume of the other methods (U and VY are both 4m^2).
    EXPECT_LT(yty, vy) << m;
    EXPECT_LE(vy, u) << m;
    // ~ (2m^2 + m^2/2) / 4m^2 = 0.625, approaching 0.5 as the triangular
    // T block becomes negligible.
    EXPECT_GE(yty / vy, 0.5) << m;
    EXPECT_LE(yty / vy, 0.72) << m;
  }
}

class DistCorrectness : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DistCorrectness, DistributedFactorEqualsSequential) {
  const auto [layouti, np, group] = GetParam();
  const Layout layout = layouti == 0 ? Layout::V1 : Layout::V2;
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(3, 12, 2, 99);
  core::SchurFactor seq = core::block_schur_factor(t);

  DistOptions opt;
  opt.layout = layout;
  opt.np = np;
  opt.group = group;
  DistResult res = dist_schur_factor(t, opt, /*want_factor=*/true);
  ASSERT_TRUE(res.r.has_value());
  EXPECT_LT(la::max_diff(res.r->view(), seq.r.view()), 1e-10);
  EXPECT_GT(res.sim_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(LayoutsAndSizes, DistCorrectness,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(1, 2, 3)));

TEST(DistSchur, V3NumericPathRejected) {
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(2, 4, 1, 1);
  DistOptions opt;
  opt.layout = Layout::V3;
  opt.np = 4;
  opt.spread = 2;
  EXPECT_THROW(dist_schur_factor(t, opt, /*want_factor=*/true), std::invalid_argument);
  EXPECT_NO_THROW(dist_schur_factor(t, opt, /*want_factor=*/false));
}

TEST(DistSchur, InvalidOptionsRejected) {
  DistOptions opt;
  opt.np = 0;
  EXPECT_THROW(dist_schur_model(1, 8, opt), std::invalid_argument);
  opt.np = 4;
  opt.layout = Layout::V3;
  opt.spread = 3;  // does not divide np
  EXPECT_THROW(dist_schur_model(1, 8, opt), std::invalid_argument);
}

TEST(DistSchur, ModelIsDeterministic) {
  DistOptions opt;
  opt.np = 16;
  const DistResult a = dist_schur_model(1, 512, opt);
  const DistResult b = dist_schur_model(1, 512, opt);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.steps, 511);
}

TEST(DistSchur, GroupingReducesShiftTraffic) {
  // Paper section 7.1.2: V2's shift volume drops by the group factor.
  DistOptions v1;
  v1.np = 16;
  DistOptions v2 = v1;
  v2.layout = Layout::V2;
  v2.group = 8;
  const DistResult r1 = dist_schur_model(1, 1024, v1);
  const DistResult r2 = dist_schur_model(1, 1024, v2);
  EXPECT_LT(r2.breakdown.shift, r1.breakdown.shift * 0.5);
}

TEST(DistSchur, Fig6ShapeSharpFallThenRise) {
  // 4096-point scalar matrix on 16 PEs: time falls with b then rises
  // (paper Fig. 6; best around b = 16).
  DistOptions opt;
  opt.np = 16;
  auto time_for = [&](core::index_t b) {
    DistOptions o = opt;
    if (b == 1) {
      o.layout = Layout::V1;
    } else {
      o.layout = Layout::V2;
      o.group = b;
    }
    return dist_schur_model(1, 4096, o).sim_seconds;
  };
  const double t1 = time_for(1);
  const double t16 = time_for(16);
  const double t256 = time_for(256);
  EXPECT_LT(t16, t1);    // grouping helps at first...
  EXPECT_GT(t256, t16);  // ...then the lost parallelism dominates
}

TEST(DistSchur, Fig9ShapeBlockSizeCrossover) {
  // 1024-point matrix, m = 2 vs m = 4 (paper Fig. 9): the larger block
  // size loses on few PEs (more flops) and wins on many (fewer steps =>
  // fewer synchronizations).
  auto time_for = [&](core::index_t m, int np) {
    DistOptions o;
    o.np = np;
    return dist_schur_model(m, 1024 / m, o).sim_seconds;
  };
  EXPECT_LT(time_for(2, 1), time_for(4, 1));    // small NP: m = 2 faster
  EXPECT_GT(time_for(2, 64), time_for(4, 64));  // large NP: m = 4 faster
}

TEST(DistSchur, V3HelpsLargeBlocksFewBlocks) {
  // Paper Fig. 8 mechanism: m = 32, p = 128 on 64 PEs: most PEs idle
  // under V1; spreading each block increases parallelism.
  DistOptions v1;
  v1.np = 64;
  DistOptions v3 = v1;
  v3.layout = Layout::V3;
  v3.spread = 8;
  const double t1 = dist_schur_model(32, 128, v1).sim_seconds;
  const double t3 = dist_schur_model(32, 128, v3).sim_seconds;
  EXPECT_LT(t3, t1);
}

TEST(DistSchur, MoreProcessorsHelpWhenParallelismAvailable) {
  DistOptions a, b;
  a.np = 4;
  b.np = 16;
  const double t4 = dist_schur_model(8, 256, a).sim_seconds;
  const double t16 = dist_schur_model(8, 256, b).sim_seconds;
  EXPECT_LT(t16, t4);
}

TEST(DistSchur, BlockSizeOverrideInDistributedRun) {
  toeplitz::BlockToeplitz t = toeplitz::kms(16, 0.5);
  DistOptions opt;
  opt.np = 2;
  opt.block_size = 4;
  DistResult res = dist_schur_factor(t, opt, /*want_factor=*/true);
  ASSERT_TRUE(res.r.has_value());
  core::SchurOptions sopt;
  sopt.block_size = 4;
  core::SchurFactor seq = core::block_schur_factor(t, sopt);
  EXPECT_LT(la::max_diff(res.r->view(), seq.r.view()), 1e-10);
}


TEST(Machine, ExchangeIsConcurrentNotChained) {
  // With put_many in a loop, PE k's send would wait for PE k-1's arrival;
  // exchange() must charge all sends from a common snapshot.
  MachineParams p;
  p.latency = 1.0;
  p.bandwidth = 1e18;
  Machine chained(4, p), collective(4, p);
  for (int pe = 0; pe < 4; ++pe) chained.put_many(pe, (pe + 1) % 4, 1.0, 0.0);
  std::vector<Machine::ShiftMsg> msgs;
  for (int pe = 0; pe < 4; ++pe) msgs.push_back({pe, (pe + 1) % 4, 1.0, 0.0});
  collective.exchange(msgs);
  EXPECT_DOUBLE_EQ(collective.time(), 1.0);  // all concurrent
  EXPECT_GT(chained.time(), 1.5);            // the ring chained up
}

TEST(Machine, ExchangeSkipsSelfAndEmpty) {
  Machine m(2, MachineParams{});
  m.exchange({{0, 0, 5.0, 100.0}, {1, 0, 0.0, 100.0}});
  EXPECT_DOUBLE_EQ(m.time(), 0.0);
}

TEST(Machine, CommDelayChargesBroadcastBucket) {
  Machine m(2, MachineParams{});
  m.comm_delay(1, 0.25);
  EXPECT_DOUBLE_EQ(m.time(), 0.25);
  EXPECT_DOUBLE_EQ(m.breakdown().broadcast, 0.25);
}

TEST(MachineParams, BlockEfficiencySaturatesAtCacheLine) {
  MachineParams p;
  EXPECT_LT(p.block_efficiency(1), p.block_efficiency(2));
  EXPECT_LT(p.block_efficiency(2), p.block_efficiency(4));
  EXPECT_DOUBLE_EQ(p.block_efficiency(4), 1.0);
  EXPECT_DOUBLE_EQ(p.block_efficiency(32), 1.0);
}

}  // namespace
}  // namespace bst::simnet
