// Tests for the baseline solvers: Levinson, classical Schur, dense solves.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/classic_schur.h"
#include "la/blas.h"
#include "baseline/dense_solver.h"
#include "baseline/levinson.h"
#include "core/schur.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::baseline {
namespace {

std::vector<double> first_row_of(const toeplitz::BlockToeplitz& t) {
  std::vector<double> row(static_cast<std::size_t>(t.order()));
  for (la::index_t j = 0; j < t.order(); ++j) row[static_cast<std::size_t>(j)] = t.entry(0, j);
  return row;
}

class LevinsonSweep : public ::testing::TestWithParam<int> {};

TEST_P(LevinsonSweep, MatchesDenseSolve) {
  const la::index_t n = GetParam();
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.6);
  util::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> x = levinson_solve(first_row_of(t), b);
  std::vector<double> xd = dense_spd_solve(t.dense().view(), b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LevinsonSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 40));

TEST(Levinson, SolvesIndefiniteWithNonsingularMinors) {
  toeplitz::BlockToeplitz t = toeplitz::random_indefinite(10, 3, /*diag=*/1.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = levinson_solve(first_row_of(t), b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-7);
}

TEST(Levinson, ThrowsOnSingularMinor) {
  toeplitz::BlockToeplitz t = toeplitz::paper_example_6x6();
  std::vector<double> b(6, 1.0);
  EXPECT_THROW(levinson_solve(first_row_of(t), b), std::runtime_error);
}

TEST(Levinson, SizeMismatchThrows) {
  EXPECT_THROW(levinson_solve({1.0, 0.5}, {1.0}), std::invalid_argument);
}

TEST(Durbin, SolvesYuleWalker) {
  toeplitz::BlockToeplitz t = toeplitz::kms(8, 0.5);
  std::vector<double> r = first_row_of(t);
  DurbinResult res = durbin(r);
  // Check T_{n-1} y = -(r_1 .. r_{n-1}).
  ASSERT_EQ(res.y.size(), 7u);
  for (la::index_t i = 0; i < 7; ++i) {
    double s = 0.0;
    for (la::index_t j = 0; j < 7; ++j) s += t.entry(i, j) * res.y[static_cast<std::size_t>(j)];
    EXPECT_NEAR(s, -r[static_cast<std::size_t>(i + 1)], 1e-12);
  }
  // For a stable AR process all reflection coefficients are inside (-1, 1).
  for (double k : res.reflection) EXPECT_LT(std::fabs(k), 1.0);
  EXPECT_GT(res.beta, 0.0);
}

class ClassicSchurSweep : public ::testing::TestWithParam<int> {};

TEST_P(ClassicSchurSweep, FactorReconstructs) {
  const la::index_t n = GetParam();
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.55);
  la::Mat r = classic_schur_factor(first_row_of(t));
  EXPECT_TRUE(la::is_upper_triangular(r.view(), 0.0));
  la::Mat rec(n, n);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, r.view(), r.view(), 0.0, rec.view());
  EXPECT_LT(la::max_diff(rec.view(), t.dense().view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClassicSchurSweep, ::testing::Values(1, 2, 4, 9, 16, 33));

TEST(ClassicSchur, AgreesWithBlockSchurM1) {
  toeplitz::BlockToeplitz t = toeplitz::prolate(20, 0.35);
  la::Mat rc = classic_schur_factor(first_row_of(t));
  core::SchurFactor fb = core::block_schur_factor(t);
  // Same factor up to row signs.
  for (la::index_t i = 0; i < 20; ++i)
    for (la::index_t j = 0; j < 20; ++j)
      EXPECT_NEAR(std::fabs(rc(i, j)), std::fabs(fb.r(i, j)), 1e-8);
}

TEST(ClassicSchur, SolveAgainstLevinson) {
  toeplitz::BlockToeplitz t = toeplitz::kms(24, 0.7);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> xs = classic_schur_solve(first_row_of(t), b);
  std::vector<double> xl = levinson_solve(first_row_of(t), b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(xs[i], xl[i], 1e-8);
}

TEST(ClassicSchur, ThrowsOnIndefinite) {
  EXPECT_THROW(classic_schur_factor({1.0, 2.0, 0.0}), std::runtime_error);
  EXPECT_THROW(classic_schur_factor({-1.0, 0.0}), std::runtime_error);
}

TEST(DenseSolvers, SpdAndSymmetricAgree) {
  toeplitz::BlockToeplitz t = toeplitz::kms(12, 0.4);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x1 = dense_spd_solve(t.dense().view(), b);
  std::vector<double> x2 = dense_sym_solve(t.dense().view(), b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x1[i], 1.0, 1e-10);
    EXPECT_NEAR(x2[i], 1.0, 1e-10);
  }
}

TEST(DenseSolvers, SymSolveHandlesIndefinite) {
  toeplitz::BlockToeplitz t = toeplitz::random_indefinite(8, 17, /*diag=*/1.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = dense_sym_solve(t.dense().view(), b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-8);
}

}  // namespace
}  // namespace bst::baseline
