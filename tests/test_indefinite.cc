// Tests for the indefinite / singular-minor extension (paper section 8):
// T + dT = R^T D R, row interchanges, perturbations, the paper's worked
// 6x6 example.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dense_solver.h"
#include "core/indefinite.h"
#include "core/refine.h"
#include "core/solve.h"
#include "la/blas.h"
#include "la/ldlt.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;

// max |R^T D R - T| / max|T|.
double reconstruction_error(const BlockToeplitz& t, const LdlFactor& f) {
  const index_t n = t.order();
  Mat dr(n, n);
  la::copy(f.r.view(), dr.view());
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) dr(i, j) *= f.d[static_cast<std::size_t>(i)];
  Mat rec(n, n);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, f.r.view(), dr.view(), 0.0, rec.view());
  Mat dense = t.dense();
  return la::max_diff(rec.view(), dense.view()) / (1.0 + la::max_abs(dense.view()));
}

TEST(Indefinite, SpdInputGivesIdentitySignature) {
  BlockToeplitz t = toeplitz::random_spd_block(2, 5, 2, 3);
  LdlFactor f = block_schur_indefinite(t);
  for (double d : f.d) EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_EQ(f.interchanges, 0);
  EXPECT_TRUE(f.perturbations.empty());
  EXPECT_LT(reconstruction_error(t, f), 1e-10);
}

class IndefiniteSweep : public ::testing::TestWithParam<int> {};

TEST_P(IndefiniteSweep, RandomIndefiniteReconstructs) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  BlockToeplitz t = toeplitz::random_indefinite(16, seed, /*diag=*/1.2);
  LdlFactor f = block_schur_indefinite(t);
  EXPECT_TRUE(la::is_upper_triangular(f.r.view(), 0.0));
  if (f.perturbations.empty()) {
    EXPECT_LT(reconstruction_error(t, f), 1e-7) << "seed " << seed;
  }
  for (double d : f.d) EXPECT_TRUE(d == 1.0 || d == -1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndefiniteSweep, ::testing::Range(1, 21));

TEST(Indefinite, NegativeDefiniteMatrix) {
  // -KMS is negative definite: all signature entries must be -1.
  BlockToeplitz kms = toeplitz::kms(8, 0.4);
  Mat row(1, 8);
  for (index_t j = 0; j < 8; ++j) row(0, j) = -kms.entry(0, j);
  BlockToeplitz t(1, std::move(row));
  LdlFactor f = block_schur_indefinite(t);
  for (double d : f.d) EXPECT_DOUBLE_EQ(d, -1.0);
  EXPECT_LT(reconstruction_error(t, f), 1e-10);
}

TEST(Indefinite, SignatureMatchesInertia) {
  // Inertia of T = (#positive, #negative eigenvalues) must match D's signs
  // (Sylvester's law: T = R^T D R is a congruence).
  BlockToeplitz t = toeplitz::random_indefinite(10, 7, /*diag=*/1.5);
  LdlFactor f = block_schur_indefinite(t);
  ASSERT_TRUE(f.perturbations.empty());
  int pos = 0;
  for (double d : f.d) pos += (d > 0.0);
  // Count positive eigenvalues via the dense LDL^T pivots.
  Mat dense = t.dense();
  std::vector<double> piv;
  ASSERT_TRUE(la::ldlt_unpivoted(dense.view(), piv));
  int pos_ref = 0;
  for (double v : piv) pos_ref += (v > 0.0);
  EXPECT_EQ(pos, pos_ref);
}

TEST(Indefinite, BlockIndefiniteMatrix) {
  // Indefinite scalar matrix re-blocked to m = 2: exercises the signature
  // generator (T1 = L S L^T with mixed S) and the blocked fast path.
  BlockToeplitz t = toeplitz::random_indefinite(16, 31, /*diag=*/1.2).with_block_size(2);
  LdlFactor f = block_schur_indefinite(t);
  if (f.perturbations.empty()) {
    EXPECT_LT(reconstruction_error(t, f), 1e-7);
  }
}

TEST(Indefinite, SolveMatchesDenseBaseline) {
  BlockToeplitz t = toeplitz::random_indefinite(12, 11, /*diag=*/1.5);
  LdlFactor f = block_schur_indefinite(t);
  ASSERT_TRUE(f.perturbations.empty());
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = solve_ldl(f, b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(Indefinite, PaperExamplePerturbsOnceWithExpectedPivot) {
  // Paper section 8.2: first row (1, 1, .5297, .6711, .0077, .3834); the
  // generator's second pivot column (1, 1) has zero hyperbolic norm; with
  // delta = cbrt(1e-16) ~ 1e-5 the perturbed pivot is 1.0000049999875.
  BlockToeplitz t = toeplitz::paper_example_6x6();
  IndefiniteOptions opt;
  opt.delta = 1e-5;  // the paper's cbrt(10^-16)
  LdlFactor f = block_schur_indefinite(t, opt);
  ASSERT_EQ(f.perturbations.size(), 1u);
  const PerturbationEvent& e = f.perturbations[0];
  EXPECT_EQ(e.step, 1);
  EXPECT_NEAR(std::fabs(e.old_pivot), 1.0, 1e-12);
  EXPECT_NEAR(std::fabs(e.new_pivot), 1.0000049999875, 1e-10);
  // The factorization is exact for a nearby matrix: R^T D R ~ T to O(delta).
  EXPECT_LT(reconstruction_error(t, f), 1e-4);
  EXPECT_GT(reconstruction_error(t, f), 1e-12);  // but NOT exact
}

TEST(Indefinite, StrictModeThrowsOnSingularMinor) {
  IndefiniteOptions opt;
  opt.allow_perturbation = false;
  try {
    block_schur_indefinite(toeplitz::paper_example_6x6(), opt);
    FAIL() << "expected SingularMinor";
  } catch (const SingularMinor& e) {
    EXPECT_EQ(e.step, 1);
    EXPECT_NEAR(e.hnorm, 0.0, 1e-12);
  }
}

TEST(Indefinite, SingularMinorFamilyPerturbsAndStaysClose) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5}) {
    BlockToeplitz t = toeplitz::singular_minor_family(24, seed);
    LdlFactor f = block_schur_indefinite(t);
    EXPECT_GE(f.perturbations.size(), 1u) << "seed " << seed;
    // delta ~ 1e-5: the factorization matches a nearby matrix.
    EXPECT_LT(reconstruction_error(t, f), 1e-3) << "seed " << seed;
  }
}

TEST(Indefinite, InterchangesAreCountedForIndefiniteInputs) {
  // Over several seeds, at least one indefinite matrix needs interchanges.
  int total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    BlockToeplitz t = toeplitz::random_indefinite(12, seed, /*diag=*/0.8);
    LdlFactor f = block_schur_indefinite(t);
    total += f.interchanges;
  }
  EXPECT_GT(total, 0);
}

TEST(Indefinite, BlockSizeOverrideWorks) {
  BlockToeplitz t = toeplitz::random_indefinite(16, 13, /*diag=*/1.5);
  IndefiniteOptions opt;
  opt.block_size = 4;
  LdlFactor f = block_schur_indefinite(t, opt);
  EXPECT_EQ(f.block_size, 4);
  if (f.perturbations.empty()) {
    EXPECT_LT(reconstruction_error(t, f), 1e-7);
  }
}


// Builds a scalar first row (1, .3, .2, t3, r5..) whose leading 4x4 minor is
// exactly singular (t3 solved from the 3x3 cofactor system) while the 1x1,
// 2x2 and 3x3 minors stay nonsingular; re-blocked to m = 2 this puts the
// singular minor in the middle of a *block* step.
toeplitz::BlockToeplitz block_singular_minor(la::index_t n, std::uint64_t seed) {
  // det T4(t3) is quadratic in t3: find a root by bisection on [-3, 3].
  auto det4 = [&](double t3) {
    la::Mat t(4, 4);
    const double row[4] = {1.0, 0.3, 0.2, t3};
    for (la::index_t i = 0; i < 4; ++i)
      for (la::index_t j = 0; j < 4; ++j) t(i, j) = row[std::abs(i - j)];
    // Determinant via unpivoted LDL^T (minors nonsingular for our values).
    la::Mat w(4, 4);
    la::copy(t.view(), w.view());
    std::vector<double> d;
    if (!la::ldlt_unpivoted(w.view(), d, 0.0)) return 0.0;
    double det = 1.0;
    for (double v : d) det *= v;
    return det;
  };
  double lo = 0.0, hi = 3.0;
  // det4 is continuous; bracket a sign change.
  double flo = det4(lo);
  while (det4(hi) * flo > 0.0 && hi < 100.0) hi += 1.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (det4(mid) * flo <= 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double t3 = 0.5 * (lo + hi);
  util::Rng rng(seed);
  std::vector<double> row(static_cast<std::size_t>(n));
  row[0] = 1.0;
  row[1] = 0.3;
  row[2] = 0.2;
  row[3] = t3;
  for (la::index_t k = 4; k < n; ++k) row[static_cast<std::size_t>(k)] = rng.uniform(-1, 1);
  return toeplitz::BlockToeplitz::scalar(row);
}

TEST(Indefinite, BlockPathSingularMinorPerturbsAndRefines) {
  // m = 2: the singular 4x4 minor falls inside block step 2, exercising the
  // blocked probe -> sequential fallback -> perturbation chain.
  BlockToeplitz t = block_singular_minor(16, 77).with_block_size(2);
  LdlFactor f = block_schur_indefinite(t);
  EXPECT_GE(f.perturbations.size(), 1u);
  EXPECT_GT(f.max_reflector_norm, 1e2);
  // Refinement restores full accuracy.
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  toeplitz::MatVec op(t);
  auto res = solve_refined(
      op,
      [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_ldl(f, rhs);
      },
      b);
  EXPECT_TRUE(res.converged);
  double err = 0.0;
  for (double v : res.x) err = std::max(err, std::fabs(v - 1.0));
  EXPECT_LT(err, 1e-10);
}

TEST(Indefinite, ScalarAndBlockedPerturbationAgree) {
  // The same matrix factored at m = 1 and m = 2 must both perturb and both
  // refine to the same solution.
  BlockToeplitz t1 = block_singular_minor(16, 91);
  BlockToeplitz t2 = t1.with_block_size(2);
  LdlFactor f1 = block_schur_indefinite(t1);
  LdlFactor f2 = block_schur_indefinite(t2);
  EXPECT_GE(f1.perturbations.size(), 1u);
  EXPECT_GE(f2.perturbations.size(), 1u);
  std::vector<double> b = toeplitz::rhs_for_ones(t1);
  toeplitz::MatVec op(t1);
  auto solve_with = [&](const LdlFactor& f) {
    return solve_refined(
               op,
               [&](const std::vector<double>& rhs, std::vector<double>& out) {
                 out = solve_ldl(f, rhs);
               },
               b)
        .x;
  };
  std::vector<double> x1 = solve_with(f1);
  std::vector<double> x2 = solve_with(f2);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-9);
}

}  // namespace
}  // namespace bst::core
