// Tests for the displacement generator construction (paper section 2,
// eqs. 5-11): displacement identity and full reconstruction.
#include <gtest/gtest.h>

#include "core/generator.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "toeplitz/generators.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;

// Oracle for T - Z^T T Z from the dense matrix: the block displacement
// keeps the first block row/column and zeroes the rest (paper eq. 4).
Mat dense_displacement(const BlockToeplitz& t) {
  const index_t n = t.order(), m = t.block_size();
  Mat d = t.dense();
  Mat out(n, n);
  // (Z^T T Z)(i, j) = T(i - m, j - m) for i, j >= m.
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      double shifted = (i >= m && j >= m) ? d(i - m, j - m) : 0.0;
      out(i, j) = d(i, j) - shifted;
    }
  return out;
}

class GeneratorSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorSweep, DisplacementIdentityHolds) {
  const auto [m, p] = GetParam();
  BlockToeplitz t =
      toeplitz::random_spd_block(m, p, 2, static_cast<std::uint64_t>(m * 10 + p), 1.0);
  Generator g = make_generator_spd(t);
  Mat lhs = dense_displacement(t);
  Mat rhs = generator_displacement(g);
  EXPECT_LT(la::max_diff(lhs.view(), rhs.view()), 1e-11);
}

TEST_P(GeneratorSweep, FullReconstructionHolds) {
  const auto [m, p] = GetParam();
  BlockToeplitz t =
      toeplitz::random_spd_block(m, p, 2, static_cast<std::uint64_t>(m * 10 + p + 1), 1.0);
  Generator g = make_generator_spd(t);
  Mat rec = generator_reconstruct(g);
  EXPECT_LT(la::max_diff(rec.view(), t.dense().view()), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeneratorSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3, 5, 8)));

TEST(Generator, PivotBlockIsUpperTriangularTranspose) {
  BlockToeplitz t = toeplitz::random_spd_block(3, 4, 2, 5);
  Generator g = make_generator_spd(t);
  // T_1 = L1^T: exactly upper triangular.
  EXPECT_TRUE(la::is_upper_triangular(g.a_block(0), 0.0));
  // B's first block is zero.
  EXPECT_DOUBLE_EQ(la::max_abs(g.b_block(0)), 0.0);
  // A and B agree on blocks 2..p.
  for (index_t k = 1; k < 4; ++k) {
    EXPECT_DOUBLE_EQ(la::max_diff(g.a_block(k), g.b_block(k)), 0.0);
  }
}

TEST(Generator, SpdSignatureIsPlusMinusIdentity) {
  BlockToeplitz t = toeplitz::kms(6, 0.3);
  Generator g = make_generator_spd(t);
  ASSERT_EQ(g.sig.size(), 2u);
  EXPECT_DOUBLE_EQ(g.sig[0], 1.0);
  EXPECT_DOUBLE_EQ(g.sig[1], -1.0);
  EXPECT_GT(g.norm_g1, 0.0);
}

TEST(Generator, SpdThrowsOnIndefiniteLeadingBlock) {
  BlockToeplitz t = toeplitz::random_indefinite(6, 3, /*diag=*/0.05);
  // T1 = 0.05 is fine for m = 1 (scalar positive)... re-block to m = 2 so
  // the leading 2x2 block [[0.05, x],[x, 0.05]] is indefinite for |x|>0.05.
  BlockToeplitz t2 = t.with_block_size(2);
  EXPECT_THROW(make_generator_spd(t2), std::runtime_error);
}

TEST(Generator, IndefiniteHandlesMixedSignature) {
  toeplitz::BlockToeplitz t = toeplitz::random_indefinite(8, 21, /*diag=*/0.5);
  BlockToeplitz t2 = t.with_block_size(2);
  Generator g = make_generator_indefinite(t2);
  // Signature is (S, -S).
  for (index_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(g.sig[static_cast<std::size_t>(i)],
                     -g.sig[static_cast<std::size_t>(2 + i)]);
  }
  // Displacement identity still holds with the signature.
  Mat lhs = dense_displacement(t2);
  Mat rhs = generator_displacement(g);
  EXPECT_LT(la::max_diff(lhs.view(), rhs.view()), 1e-10);
  // And so does the full reconstruction.
  Mat rec = generator_reconstruct(g);
  EXPECT_LT(la::max_diff(rec.view(), t2.dense().view()), 1e-10);
}

TEST(Generator, IndefiniteThrowsOnSingularLeadingMinor) {
  // T1 = [[1, 1], [1, 1]] has a singular leading principal minor chain.
  BlockToeplitz t = toeplitz::paper_example_6x6().with_block_size(2);
  EXPECT_THROW(make_generator_indefinite(t), std::runtime_error);
}

}  // namespace
}  // namespace bst::core
