// Tests for scalar hyperbolic Householder reflectors (paper section 3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/hyperbolic.h"
#include "la/norms.h"
#include "util/rng.h"

namespace bst::core {
namespace {

Signature spd_sig(index_t m) {
  Signature w(static_cast<std::size_t>(2 * m), 1.0);
  for (index_t i = 0; i < m; ++i) w[static_cast<std::size_t>(m + i)] = -1.0;
  return w;
}

std::vector<double> random_positive_vector(index_t m, util::Rng& rng, index_t pivot) {
  // Upper entry at `pivot` large enough to dominate the lower part.
  std::vector<double> u(static_cast<std::size_t>(2 * m), 0.0);
  double low2 = 0.0;
  for (index_t i = 0; i < m; ++i) {
    u[static_cast<std::size_t>(m + i)] = rng.uniform(-1, 1);
    low2 += u[static_cast<std::size_t>(m + i)] * u[static_cast<std::size_t>(m + i)];
  }
  u[static_cast<std::size_t>(pivot)] = std::sqrt(low2) + rng.uniform(0.5, 2.0);
  return u;
}

TEST(Hyperbolic, NormUsesSignature) {
  Signature w{1.0, -1.0};
  EXPECT_DOUBLE_EQ(hyperbolic_norm({3.0, 2.0}, w), 5.0);
  EXPECT_DOUBLE_EQ(hyperbolic_norm({2.0, 3.0}, w), -5.0);
  EXPECT_DOUBLE_EQ(hyperbolic_norm({2.0, 2.0}, w), 0.0);
}

TEST(Hyperbolic, ReflectorMapsUToSigmaEj) {
  util::Rng rng(1);
  const index_t m = 4;
  Signature w = spd_sig(m);
  for (index_t pivot = 0; pivot < m; ++pivot) {
    std::vector<double> u = random_positive_vector(m, rng, pivot);
    auto r = make_reflector(u, w, pivot);
    ASSERT_TRUE(r.has_value());
    std::vector<double> y = u;
    apply_reflector(*r, w, y.data());
    for (index_t i = 0; i < 2 * m; ++i) {
      const double expect = (i == pivot) ? -r->sigma : 0.0;
      EXPECT_NEAR(y[static_cast<std::size_t>(i)], expect, 1e-12);
    }
    // |sigma| = sqrt(u^T W u).
    EXPECT_NEAR(r->sigma * r->sigma, hyperbolic_norm(u, w), 1e-12);
  }
}

TEST(Hyperbolic, DenseReflectorIsWUnitary) {
  util::Rng rng(2);
  const index_t m = 3;
  Signature w = spd_sig(m);
  std::vector<double> u = random_positive_vector(m, rng, 1);
  auto r = make_reflector(u, w, 1);
  ASSERT_TRUE(r.has_value());
  Mat ud = reflector_dense(*r, w);
  EXPECT_LT(w_unitarity_error(ud.view(), w), 1e-12);
}

TEST(Hyperbolic, PreservesHyperbolicNormOfAnyVector) {
  util::Rng rng(3);
  const index_t m = 5;
  Signature w = spd_sig(m);
  std::vector<double> u = random_positive_vector(m, rng, 2);
  auto r = make_reflector(u, w, 2);
  ASSERT_TRUE(r.has_value());
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> v(static_cast<std::size_t>(2 * m));
    for (auto& x : v) x = rng.uniform(-2, 2);
    const double before = hyperbolic_norm(v, w);
    apply_reflector(*r, w, v.data());
    EXPECT_NEAR(hyperbolic_norm(v, w), before, 1e-10);
  }
}

TEST(Hyperbolic, BreakdownOnZeroHyperbolicNorm) {
  Signature w{1.0, -1.0};
  EXPECT_FALSE(make_reflector({1.0, 1.0}, w, 0, 1e-12).has_value());
  EXPECT_FALSE(make_reflector({0.0, 0.0}, w, 0, 1e-12).has_value());
}

TEST(Hyperbolic, WrongSignRejected) {
  Signature w{1.0, -1.0};
  // u^T W u = 1 - 4 < 0 cannot be mapped onto the +1 axis...
  EXPECT_FALSE(make_reflector({1.0, 2.0}, w, 0).has_value());
  // ...but is fine onto the -1 axis.
  auto r = make_reflector({1.0, 2.0}, w, 1);
  ASSERT_TRUE(r.has_value());
  std::vector<double> y{1.0, 2.0};
  apply_reflector(*r, w, y.data());
  EXPECT_NEAR(y[0], 0.0, 1e-13);
  EXPECT_NEAR(std::fabs(y[1]), std::sqrt(3.0), 1e-13);
}

TEST(Hyperbolic, GeneralSignatureReflector) {
  util::Rng rng(9);
  Signature w{1.0, -1.0, -1.0, 1.0, -1.0, 1.0};
  // Build a vector with positive hyperbolic norm, pivot at j = 3 (w = +1).
  std::vector<double> u{0.3, 0.2, -0.4, 3.0, 0.1, 0.0};
  const double h = hyperbolic_norm(u, w);
  ASSERT_GT(h, 0.0);
  auto r = make_reflector(u, w, 3);
  ASSERT_TRUE(r.has_value());
  std::vector<double> y = u;
  apply_reflector(*r, w, y.data());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(y[i], i == 3 ? -r->sigma : 0.0, 1e-12);
  }
  EXPECT_LT(w_unitarity_error(reflector_dense(*r, w).view(), w), 1e-12);
}

TEST(Hyperbolic, ApplyToMatrixView) {
  util::Rng rng(4);
  const index_t m = 2;
  Signature w = spd_sig(m);
  std::vector<double> u = random_positive_vector(m, rng, 0);
  auto r = make_reflector(u, w, 0);
  ASSERT_TRUE(r.has_value());
  Mat g(4, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < 4; ++i) g(i, j) = rng.uniform(-1, 1);
  Mat expect(4, 3);
  la::copy(g.view(), expect.view());
  for (index_t j = 0; j < 3; ++j) apply_reflector(*r, w, expect.view().col(j));
  apply_reflector(*r, w, g.view());
  EXPECT_LT(la::max_diff(g.view(), expect.view()), 0.0 + 1e-15);
}

}  // namespace
}  // namespace bst::core
