// Tests for the threads-based message-passing runtime and the SPMD
// distributed factorization running on it.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/schur.h"
#include "la/norms.h"
#include "simnet/runtime.h"
#include "simnet/threaded_schur.h"
#include "toeplitz/generators.h"

namespace bst::simnet {
namespace {

TEST(Runtime, RanksAndSize) {
  std::atomic<int> sum{0};
  run_spmd(4, [&](Comm& c) {
    EXPECT_EQ(c.size(), 4);
    sum.fetch_add(c.rank());
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(Runtime, PointToPointDelivery) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, {1.0, 2.0, 3.0});
    } else {
      std::vector<double> got = c.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.0);
    }
  });
}

TEST(Runtime, FifoPerSourceAndTag) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 16; ++i) c.send(1, 3, {static_cast<double>(i)});
    } else {
      for (int i = 0; i < 16; ++i) {
        std::vector<double> got = c.recv(0, 3);
        EXPECT_DOUBLE_EQ(got[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Runtime, TagsAreIndependentChannels) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, {1.0});
      c.send(1, 2, {2.0});
    } else {
      // Receive in the opposite order of sending: tags must not mix.
      EXPECT_DOUBLE_EQ(c.recv(0, 2)[0], 2.0);
      EXPECT_DOUBLE_EQ(c.recv(0, 1)[0], 1.0);
    }
  });
}

TEST(Runtime, BroadcastFromEveryRoot) {
  for (int root = 0; root < 3; ++root) {
    run_spmd(3, [root](Comm& c) {
      std::vector<double> data;
      if (c.rank() == root) data = {42.0, static_cast<double>(root)};
      c.broadcast(root, data);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_DOUBLE_EQ(data[0], 42.0);
      EXPECT_DOUBLE_EQ(data[1], static_cast<double>(root));
    });
  }
}

TEST(Runtime, BarrierSeparatesPhases) {
  // Without the barrier this would race; with it, every PE observes all
  // increments from phase 1 before phase 2 reads.
  std::atomic<int> counter{0};
  run_spmd(8, [&](Comm& c) {
    counter.fetch_add(1);
    c.barrier();
    EXPECT_EQ(counter.load(), 8);
    c.barrier();
    counter.fetch_add(10);
    c.barrier();
    EXPECT_EQ(counter.load(), 8 + 80);
  });
}

TEST(Runtime, BarrierIsReusableManyTimes) {
  std::atomic<int> phase{0};
  run_spmd(4, [&](Comm& c) {
    for (int it = 0; it < 50; ++it) {
      if (c.rank() == 0) phase.store(it);
      c.barrier();
      EXPECT_EQ(phase.load(), it);
      c.barrier();
    }
  });
}

TEST(Runtime, ExceptionPropagatesWhenAllThrow) {
  EXPECT_THROW(run_spmd(3, [](Comm&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(Runtime, RingPass) {
  // Token accumulates each rank around a ring.
  run_spmd(5, [](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    if (c.rank() == 0) {
      c.send(next, 0, {0.0});
      std::vector<double> token = c.recv(prev, 0);
      EXPECT_DOUBLE_EQ(token[0], 0.0 + 1 + 2 + 3 + 4);
    } else {
      std::vector<double> token = c.recv(prev, 0);
      token[0] += static_cast<double>(c.rank());
      c.send(next, 0, std::move(token));
    }
  });
}

class ThreadedSchurSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreadedSchurSweep, MatchesSequentialFactor) {
  const auto [np, group, m] = GetParam();
  toeplitz::BlockToeplitz t =
      toeplitz::random_spd_block(m, 12, 2, static_cast<std::uint64_t>(np * 10 + group + m));
  core::SchurFactor seq = core::block_schur_factor(t);
  DistOptions opt;
  opt.np = np;
  if (group > 1) {
    opt.layout = Layout::V2;
    opt.group = group;
  }
  la::Mat r = threaded_schur_factor(t, opt);
  EXPECT_LT(la::max_diff(r.view(), seq.r.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(NpGroupM, ThreadedSchurSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                                            ::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 3)));

TEST(ThreadedSchur, AllPesThrowOnIndefinite) {
  toeplitz::BlockToeplitz t = toeplitz::random_indefinite(8, 3, /*diag=*/0.2);
  DistOptions opt;
  opt.np = 4;
  EXPECT_THROW(threaded_schur_factor(t, opt), core::NotPositiveDefinite);
}

class ThreadedV3Sweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ThreadedV3Sweep, SplitBlocksMatchSequential) {
  const auto [np, spread, m] = GetParam();
  if (np % spread != 0 || m % spread != 0) GTEST_SKIP() << "invalid combination";
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(
      m, 8, 2, static_cast<std::uint64_t>(np + spread * 10 + m * 100));
  core::SchurFactor seq = core::block_schur_factor(t);
  DistOptions opt;
  opt.np = np;
  opt.layout = Layout::V3;
  opt.spread = spread;
  la::Mat r = threaded_schur_factor(t, opt);
  EXPECT_LT(la::max_diff(r.view(), seq.r.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(NpSpreadM, ThreadedV3Sweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(2, 4),
                                            ::testing::Values(4, 8)));

TEST(ThreadedSchur, V3InvalidSpreadRejected) {
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(4, 4, 1, 1);
  DistOptions opt;
  opt.np = 4;
  opt.layout = Layout::V3;
  opt.spread = 3;  // does not divide np
  EXPECT_THROW(threaded_schur_factor(t, opt), std::invalid_argument);
  opt.np = 6;
  opt.spread = 3;  // divides np but not m = 4
  EXPECT_THROW(threaded_schur_factor(t, opt), std::invalid_argument);
}

TEST(ThreadedSchur, V3BreakdownThrowsEverywhere) {
  toeplitz::BlockToeplitz t = toeplitz::random_indefinite(8, 3, /*diag=*/0.2)
                                  .with_block_size(2);
  DistOptions opt;
  opt.np = 4;
  opt.layout = Layout::V3;
  opt.spread = 2;
  EXPECT_THROW(threaded_schur_factor(t, opt), std::runtime_error);
}

TEST(ThreadedSchur, BlockSizeOverride) {
  toeplitz::BlockToeplitz t = toeplitz::kms(24, 0.6);
  DistOptions opt;
  opt.np = 3;
  opt.block_size = 4;
  core::SchurOptions sopt;
  sopt.block_size = 4;
  core::SchurFactor seq = core::block_schur_factor(t, sopt);
  la::Mat r = threaded_schur_factor(t, opt);
  EXPECT_LT(la::max_diff(r.view(), seq.r.view()), 1e-10);
}

TEST(ThreadedSchur, MorePesThanBlocks) {
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(2, 3, 1, 7);
  DistOptions opt;
  opt.np = 8;  // most PEs own nothing
  core::SchurFactor seq = core::block_schur_factor(t);
  la::Mat r = threaded_schur_factor(t, opt);
  EXPECT_LT(la::max_diff(r.view(), seq.r.view()), 1e-10);
}

}  // namespace
}  // namespace bst::simnet
