// Tests for the SPD block Schur factorization (paper sections 2, 5, 6):
// T = R^T R across block sizes, representations, block-size overrides,
// matrix families; agreement with dense Cholesky; solves.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/dense_solver.h"
#include "core/indefinite.h"
#include "core/schur.h"
#include "core/solve.h"
#include "la/blas.h"
#include "la/cholesky.h"
#include "la/norms.h"
#include "la/triangular.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;

double reconstruction_error(const BlockToeplitz& t, CView r) {
  const index_t n = t.order();
  Mat rec(n, n);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, r, r, 0.0, rec.view());
  Mat dense = t.dense();
  return la::max_diff(rec.view(), dense.view()) / (1.0 + la::max_abs(dense.view()));
}

const Representation kAll[] = {Representation::AccumulatedU, Representation::VY1,
                               Representation::VY2, Representation::YTY,
                               Representation::Sequential};

class SchurRepSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SchurRepSweep, FactorReconstructsT) {
  const auto [repi, m, p] = GetParam();
  SchurOptions opt;
  opt.rep = kAll[repi];
  BlockToeplitz t =
      toeplitz::random_spd_block(m, p, 2, static_cast<std::uint64_t>(repi + 10 * m + 100 * p));
  SchurFactor f = block_schur_factor(t, opt);
  EXPECT_TRUE(la::is_upper_triangular(f.r.view(), 0.0));
  EXPECT_LT(reconstruction_error(t, f.r.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RepsBlocksLengths, SchurRepSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                                            ::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 4, 7)));

TEST(Schur, MatchesDenseCholeskyUpToRowSigns) {
  BlockToeplitz t = toeplitz::random_spd_block(2, 5, 2, 42);
  SchurFactor f = block_schur_factor(t);
  Mat l = la::cholesky_factor(t.dense().view());
  // R row i = +/- (L^T row i): compare |R| with |L^T|.
  const index_t n = t.order();
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(std::fabs(f.r(i, j)), std::fabs(l(j, i)), 1e-9) << i << "," << j;
}

TEST(Schur, AllRepresentationsGiveSameFactor) {
  BlockToeplitz t = toeplitz::random_spd_block(4, 6, 3, 7);
  SchurOptions opt;
  opt.rep = Representation::Sequential;
  SchurFactor ref = block_schur_factor(t, opt);
  for (Representation rep : {Representation::AccumulatedU, Representation::VY1,
                             Representation::VY2, Representation::YTY}) {
    opt.rep = rep;
    SchurFactor f = block_schur_factor(t, opt);
    EXPECT_LT(la::max_diff(f.r.view(), ref.r.view()), 1e-9) << to_string(rep);
  }
}

class BlockSizeOverrideSweep : public ::testing::TestWithParam<int> {};

TEST_P(BlockSizeOverrideSweep, LargerWorkingBlockSameMatrix) {
  const index_t ms = GetParam();
  // Scalar Toeplitz (m = 1) factored as if it were block Toeplitz with
  // block size ms -- the paper's device for point matrices.
  BlockToeplitz t = toeplitz::kms(24, 0.6);
  SchurOptions opt;
  opt.block_size = ms;
  SchurFactor f = block_schur_factor(t, opt);
  EXPECT_EQ(f.block_size, ms);
  EXPECT_LT(reconstruction_error(t, f.r.view()), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(WorkingBlockSizes, BlockSizeOverrideSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 24));

TEST(Schur, BlockOverrideOfBlockMatrix) {
  // m = 2 matrix treated with m_s = 4 and m_s = 8.
  BlockToeplitz t = toeplitz::random_spd_block(2, 8, 3, 11);
  SchurFactor ref = block_schur_factor(t);
  for (index_t ms : {4, 8}) {
    SchurOptions opt;
    opt.block_size = ms;
    SchurFactor f = block_schur_factor(t, opt);
    EXPECT_LT(reconstruction_error(t, f.r.view()), 1e-10) << ms;
    // Same matrix, same (Cholesky) factor up to row signs.
    for (index_t i = 0; i < t.order(); ++i)
      for (index_t j = 0; j < t.order(); ++j)
        EXPECT_NEAR(std::fabs(f.r(i, j)), std::fabs(ref.r(i, j)), 1e-8);
  }
}

TEST(Schur, KmsAndProlateFamilies) {
  for (double rho : {0.1, 0.5, 0.9}) {
    BlockToeplitz t = toeplitz::kms(32, rho);
    SchurFactor f = block_schur_factor(t);
    EXPECT_LT(reconstruction_error(t, f.r.view()), 1e-9) << "kms rho=" << rho;
  }
  BlockToeplitz t = toeplitz::prolate(24, 0.35);
  SchurFactor f = block_schur_factor(t);
  EXPECT_LT(reconstruction_error(t, f.r.view()), 1e-8);
}

TEST(Schur, ThrowsOnIndefiniteMatrix) {
  BlockToeplitz t = toeplitz::random_indefinite(12, 5, /*diag=*/0.3);
  try {
    block_schur_factor(t);
    FAIL() << "expected NotPositiveDefinite";
  } catch (const NotPositiveDefinite& e) {
    EXPECT_GE(e.step, 1);
    EXPECT_NE(std::string(e.what()).find("not positive definite"), std::string::npos);
  }
}

TEST(Schur, ThrowsOnSingularMinorMatrix) {
  EXPECT_THROW(block_schur_factor(toeplitz::paper_example_6x6()), NotPositiveDefinite);
}

TEST(Schur, SolveGivesAccurateSolution) {
  util::Rng rng(3);
  BlockToeplitz t = toeplitz::random_spd_block(3, 6, 2, 77);
  const index_t n = t.order();
  std::vector<double> xtrue(static_cast<std::size_t>(n));
  for (auto& v : xtrue) v = rng.uniform(-1, 1);
  std::vector<double> b;
  toeplitz::MatVec(t).apply(xtrue, b);
  SchurFactor f = block_schur_factor(t);
  std::vector<double> x = solve_spd(f, b);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], xtrue[static_cast<std::size_t>(i)], 1e-9);
}

TEST(Schur, SolveMatchesDenseBaseline) {
  BlockToeplitz t = toeplitz::kms(20, 0.7);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  SchurFactor f = block_schur_factor(t);
  std::vector<double> xs = solve_spd(f, b);
  std::vector<double> xd = baseline::dense_spd_solve(t.dense().view(), b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(Schur, StreamingSinkSeesAllSteps) {
  BlockToeplitz t = toeplitz::random_spd_block(2, 5, 2, 13);
  SchurOptions opt;
  std::vector<index_t> steps;
  std::vector<index_t> widths;
  block_schur_stream(t, opt, [&](index_t step, CView rows) {
    steps.push_back(step);
    widths.push_back(rows.cols());
    EXPECT_EQ(rows.rows(), 2);
  });
  ASSERT_EQ(steps.size(), 5u);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_EQ(steps[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(widths[static_cast<std::size_t>(i)], (5 - i) * 2);
  }
}

TEST(Schur, ParallelApplicationMatchesSerial) {
  BlockToeplitz t = toeplitz::random_spd_block(4, 16, 3, 19);
  SchurOptions serial, par;
  par.parallel = true;
  SchurFactor fs = block_schur_factor(t, serial);
  SchurFactor fp = block_schur_factor(t, par);
  EXPECT_LT(la::max_diff(fs.r.view(), fp.r.view()), 0.0 + 1e-15);
}

TEST(Schur, FlopCountScalesWithWorkingBlockSize) {
  // The paper's ~4 m_s n^2 law: doubling m_s roughly doubles the flops.
  BlockToeplitz t = toeplitz::kms(128, 0.5);
  SchurOptions o2, o8;
  o2.block_size = 2;
  o8.block_size = 8;
  SchurFactor f2 = block_schur_factor(t, o2);
  SchurFactor f8 = block_schur_factor(t, o8);
  const double ratio = static_cast<double>(f8.flops) / static_cast<double>(f2.flops);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);  // linear-ish growth, far below quadratic (16x)
}

TEST(Schur, SingleBlockMatrixIsJustCholesky) {
  BlockToeplitz t = toeplitz::random_spd_block(4, 1, 2, 3);
  SchurFactor f = block_schur_factor(t);
  Mat l = la::cholesky_factor(t.dense().view());
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_NEAR(std::fabs(f.r(i, j)), std::fabs(l(j, i)), 1e-12);
}

TEST(Schur, LargeScalarProblem) {
  BlockToeplitz t = toeplitz::kms(256, 0.8);
  SchurOptions opt;
  opt.block_size = 16;
  SchurFactor f = block_schur_factor(t, opt);
  // Spot check via the solve rather than dense reconstruction.
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = solve_spd(f, b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-8);
}


TEST(Schur, MultiRhsSolveMatchesColumnwise) {
  util::Rng rng(23);
  BlockToeplitz t = toeplitz::random_spd_block(2, 8, 2, 41);
  const index_t n = t.order();
  SchurFactor f = block_schur_factor(t);
  Mat b(n, 3);
  for (index_t j = 0; j < 3; ++j)
    for (index_t i = 0; i < n; ++i) b(i, j) = rng.uniform(-1, 1);
  Mat x = solve_spd_multi(f, b.view());
  for (index_t j = 0; j < 3; ++j) {
    std::vector<double> col(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = b(i, j);
    std::vector<double> xj = solve_spd(f, col);
    for (index_t i = 0; i < n; ++i)
      EXPECT_NEAR(x(i, j), xj[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Schur, MultiRhsWithSignature) {
  BlockToeplitz t = toeplitz::random_indefinite(10, 5, /*diag=*/1.5);
  const index_t n = t.order();
  IndefiniteOptions iopt;
  LdlFactor f = block_schur_indefinite(t, iopt);
  ASSERT_TRUE(f.perturbations.empty());
  Mat b(n, 2);
  std::vector<double> ones = toeplitz::rhs_for_ones(t);
  for (index_t i = 0; i < n; ++i) {
    b(i, 0) = ones[static_cast<std::size_t>(i)];
    b(i, 1) = 2.0 * ones[static_cast<std::size_t>(i)];
  }
  solve_rtdr_multi(f.r.view(), f.d.data(), b.view());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b(i, 0), 1.0, 1e-7);
    EXPECT_NEAR(b(i, 1), 2.0, 1e-7);
  }
}


TEST(Schur, ScaleStressN2048) {
  // Factor + solve at bench scale; residual must stay at working accuracy.
  BlockToeplitz t = toeplitz::kms(2048, 0.9);
  SchurOptions opt;
  opt.block_size = 16;
  SchurFactor f = block_schur_factor(t, opt);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = solve_spd(f, b);
  std::vector<double> r;
  toeplitz::MatVec(t, toeplitz::MatVecMode::Fft).residual(b, x, r);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    rn += r[i] * r[i];
    bn += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(rn / bn), 1e-10);
}

TEST(Schur, ParallelAndTwoLevelComposeAtScale) {
  BlockToeplitz t = toeplitz::kms(512, 0.8);
  SchurOptions base;
  base.block_size = 32;
  SchurOptions fancy = base;
  fancy.parallel = true;
  fancy.inner_block = 8;
  SchurFactor f1 = block_schur_factor(t, base);
  SchurFactor f2 = block_schur_factor(t, fancy);
  EXPECT_LT(la::max_diff(f1.r.view(), f2.r.view()), 1e-9);
}

}  // namespace
}  // namespace bst::core
