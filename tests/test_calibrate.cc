// Tests for util/calibrate: the machine-profile microbenchmarks behind the
// roofline/attainment layer.  The options are shrunk to keep the whole
// suite in the tens of milliseconds -- these tests check shape and sanity
// (finite, positive, cached), not absolute rates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "bst.h"

using namespace bst;

namespace {

struct TempFile {
  std::string path;
  explicit TempFile(std::string name) : path(std::move(name)) { std::remove(path.c_str()); }
  ~TempFile() { std::remove(path.c_str()); }
};

util::CalibrationOptions tiny_options() {
  util::CalibrationOptions opt;
  opt.block_sizes = {2, 8};
  opt.min_gemm_seconds = 1e-4;
  opt.stream_doubles = 1u << 14;
  opt.stream_reps = 2;
  opt.span_samples = 2000;
  return opt;
}

}  // namespace

TEST(Calibrate, FingerprintIsStableAndNonEmpty) {
  const std::string fp = util::machine_fingerprint();
  EXPECT_EQ(fp.size(), 16u);  // fnv1a_hex
  EXPECT_EQ(fp, util::machine_fingerprint());
  EXPECT_FALSE(util::cpu_model_name().empty());
}

TEST(Calibrate, RatesAreFinitePositiveAndShapedPerBlockSize) {
  const util::CalibrationOptions opt = tiny_options();
  const util::Calibration cal = util::run_calibration(opt);

  EXPECT_EQ(cal.fingerprint, util::machine_fingerprint());
  EXPECT_FALSE(cal.utc.empty());
  // Two shapes per block size.
  ASSERT_EQ(cal.gemm.size(), 2 * opt.block_sizes.size());
  double max_gflops = 0.0;
  for (const util::GemmPoint& p : cal.gemm) {
    EXPECT_TRUE(p.shape == "yt_g" || p.shape == "v_z") << p.shape;
    EXPECT_GT(p.m, 0);
    EXPECT_GT(p.cols, 0);
    EXPECT_TRUE(std::isfinite(p.gflops));
    EXPECT_GT(p.gflops, 0.0);
    max_gflops = std::max(max_gflops, p.gflops);
  }
  EXPECT_DOUBLE_EQ(cal.peak_gflops, max_gflops);
  EXPECT_TRUE(std::isfinite(cal.stream_gbs));
  EXPECT_GT(cal.stream_gbs, 0.0);
  EXPECT_TRUE(std::isfinite(cal.span_overhead_ns));
  // The tracer-on minus tracer-off difference can jitter to ~0 but is
  // clamped non-negative and should be well under a microsecond per span.
  EXPECT_GE(cal.span_overhead_ns, 0.0);
  EXPECT_LT(cal.span_overhead_ns, 1e5);
}

TEST(Calibrate, LargerBlocksSustainHigherGemmRates) {
  // Monotone-ish smoke: the m = 8 shapes must not be slower than *half*
  // the m = 2 rate (loose on purpose -- CI machines are noisy; what this
  // catches is a benchmark wired to the wrong shape or flop count).
  const util::Calibration cal = util::run_calibration(tiny_options());
  double small = 0.0, big = 0.0;
  for (const util::GemmPoint& p : cal.gemm) {
    if (p.m == 2) small = std::max(small, p.gflops);
    if (p.m == 8) big = std::max(big, p.gflops);
  }
  EXPECT_GT(big, 0.5 * small);
}

TEST(Calibrate, JsonRoundTrip) {
  const util::Calibration cal = util::run_calibration(tiny_options());
  const util::Calibration back = util::Calibration::from_json(cal.to_json());
  EXPECT_EQ(back.cpu_model, cal.cpu_model);
  EXPECT_EQ(back.fingerprint, cal.fingerprint);
  EXPECT_EQ(back.hardware_concurrency, cal.hardware_concurrency);
  ASSERT_EQ(back.gemm.size(), cal.gemm.size());
  for (std::size_t i = 0; i < cal.gemm.size(); ++i) {
    EXPECT_EQ(back.gemm[i].m, cal.gemm[i].m);
    EXPECT_EQ(back.gemm[i].shape, cal.gemm[i].shape);
    EXPECT_DOUBLE_EQ(back.gemm[i].gflops, cal.gemm[i].gflops);
  }
  EXPECT_DOUBLE_EQ(back.peak_gflops, cal.peak_gflops);
  EXPECT_DOUBLE_EQ(back.stream_gbs, cal.stream_gbs);
  EXPECT_DOUBLE_EQ(back.span_overhead_ns, cal.span_overhead_ns);

  EXPECT_THROW(util::Calibration::from_json(util::parse_json("{}")),
               std::runtime_error);
}

TEST(Calibrate, LoadOrRunCachesByFingerprint) {
  TempFile f("test_calibrate_cache.json");
  const util::CalibrationOptions opt = tiny_options();

  const util::Calibration first = util::load_or_run_calibration(f.path, opt);
  // A matching cached profile is returned verbatim (same utc stamp).
  const util::Calibration second = util::load_or_run_calibration(f.path, opt);
  EXPECT_EQ(second.utc, first.utc);
  EXPECT_DOUBLE_EQ(second.peak_gflops, first.peak_gflops);

  // A profile from "another machine" is ignored and re-measured over.
  {
    util::Calibration stale = first;
    stale.fingerprint = "deadbeefdeadbeef";
    std::ofstream os(f.path);
    stale.to_json().write(os);
  }
  const util::Calibration fresh = util::load_or_run_calibration(f.path, opt);
  EXPECT_EQ(fresh.fingerprint, util::machine_fingerprint());

  // Corrupt cache files are re-measured over, not fatal.
  {
    std::ofstream os(f.path);
    os << "{not json";
  }
  EXPECT_EQ(util::load_or_run_calibration(f.path, opt).fingerprint,
            util::machine_fingerprint());
}
