// Mixed-precision iterative refinement: a factor rounded to single
// precision loses ~8 digits, and the paper's refinement loop (section 8)
// against the exact double-precision Toeplitz operator restores full
// accuracy in a handful of steps -- the classical mixed-precision scheme,
// driven entirely by machinery the paper already requires.
#include <gtest/gtest.h>

#include <cmath>

#include "core/refine.h"
#include "core/schur.h"
#include "core/solve.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;
using toeplitz::MatVec;

class MixedPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(MixedPrecisionSweep, FloatFactorRefinesToDoubleAccuracy) {
  const int family = GetParam();
  BlockToeplitz t = [&]() -> BlockToeplitz {
    switch (family) {
      case 0: return toeplitz::kms(64, 0.6);
      case 1: return toeplitz::fgn(64, 0.7);
      default: return toeplitz::random_spd_block(4, 16, 3, 11);
    }
  }();
  SchurFactor f = block_schur_factor(t);
  demote_factor_to_float(f.r.view());

  std::vector<double> b = toeplitz::rhs_for_ones(t);
  MatVec op(t);
  // Plain float-factor solve: single-precision-level error.
  std::vector<double> x0 = solve_spd(f, b);
  double e0 = 0.0;
  for (double v : x0) e0 = std::max(e0, std::fabs(v - 1.0));
  EXPECT_GT(e0, 1e-9) << "float demotion should cost accuracy";

  // Refinement against the exact operator recovers double accuracy.
  RefineResult res = solve_refined(
      op, [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_spd(f, rhs);
      },
      b);
  EXPECT_TRUE(res.converged) << "family " << family;
  EXPECT_LE(res.iterations, 8) << "family " << family;
  double e1 = 0.0;
  for (double v : res.x) e1 = std::max(e1, std::fabs(v - 1.0));
  EXPECT_LT(e1, 1e-11) << "family " << family;
  EXPECT_LT(e1, e0 * 1e-3) << "family " << family;
}

INSTANTIATE_TEST_SUITE_P(Families, MixedPrecisionSweep, ::testing::Values(0, 1, 2));

TEST(MixedPrecision, DemoteIsIdempotent) {
  BlockToeplitz t = toeplitz::kms(16, 0.5);
  SchurFactor f = block_schur_factor(t);
  demote_factor_to_float(f.r.view());
  la::Mat once(16, 16);
  la::copy(f.r.view(), once.view());
  demote_factor_to_float(f.r.view());
  EXPECT_DOUBLE_EQ(la::max_diff(once.view(), f.r.view()), 0.0);
}

}  // namespace
}  // namespace bst::core
