// Tests for the FFT and circulant machinery.
#include <gtest/gtest.h>

#include <cmath>

#include "toeplitz/fft.h"
#include "util/rng.h"

namespace bst::toeplitz {
namespace {

std::vector<cplx> naive_dft(const std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<cplx> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cplx s{0.0, 0.0};
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * M_PI * static_cast<double>(k * j) / static_cast<double>(n);
      s += a[j] * cplx(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? s / static_cast<double>(n) : s;
  }
  return out;
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(1024), 1024u);
}

class FftSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftSweep, MatchesNaiveDft) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  util::Rng rng(static_cast<std::uint64_t>(n));
  std::vector<cplx> a(n);
  for (auto& v : a) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<cplx> expect = naive_dft(a, false);
  std::vector<cplx> got = a;
  fft(got, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got[i].real(), expect[i].real(), 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(got[i].imag(), expect[i].imag(), 1e-10 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSweep, ::testing::Values(1, 2, 4, 8, 16, 64, 256));

TEST(Fft, RoundTripIdentity) {
  util::Rng rng(3);
  std::vector<cplx> a(128);
  for (auto& v : a) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<cplx> b = a;
  fft(b, false);
  fft(b, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i].real(), a[i].real(), 1e-12);
    EXPECT_NEAR(b[i].imag(), a[i].imag(), 1e-12);
  }
}

TEST(Fft, Linearity) {
  util::Rng rng(4);
  std::vector<cplx> a(32), b(32), sum(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = cplx(rng.uniform(-1, 1), 0);
    b[i] = cplx(rng.uniform(-1, 1), 0);
    sum[i] = 2.0 * a[i] + b[i];
  }
  fft(a, false);
  fft(b, false);
  fft(sum, false);
  for (std::size_t i = 0; i < 32; ++i) {
    const cplx expect = 2.0 * a[i] + b[i];
    EXPECT_NEAR(sum[i].real(), expect.real(), 1e-12);
    EXPECT_NEAR(sum[i].imag(), expect.imag(), 1e-12);
  }
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cplx> a(16, cplx{0, 0});
  a[0] = cplx(1, 0);
  fft(a, false);
  for (const auto& v : a) {
    EXPECT_NEAR(v.real(), 1.0, 1e-14);
    EXPECT_NEAR(v.imag(), 0.0, 1e-14);
  }
}

TEST(Circulant, MatchesNaiveCirculantProduct) {
  util::Rng rng(8);
  const std::size_t n = 16;
  std::vector<double> c(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = rng.uniform(-1, 1);
    x[i] = rng.uniform(-1, 1);
  }
  CirculantMultiplier mult(c);
  std::vector<double> y;
  mult.apply(x, y);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += c[(i + n - j) % n] * x[j];
    EXPECT_NEAR(y[i], s, 1e-12);
  }
}

TEST(Circulant, IdentityFirstColumn) {
  std::vector<double> c(8, 0.0);
  c[0] = 1.0;
  CirculantMultiplier mult(c);
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8}, y;
  mult.apply(x, y);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(y[i], x[i], 1e-13);
}

// --- Bluestein DFT: arbitrary (odd, prime, composite) lengths ---

class DftSweep : public ::testing::TestWithParam<int> {};

TEST_P(DftSweep, MatchesNaiveDft) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  util::Rng rng(1000 + static_cast<std::uint64_t>(n));
  std::vector<cplx> a(n);
  for (auto& v : a) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<cplx> expect = naive_dft(a, false);
  std::vector<cplx> fwd = a;
  dft(fwd, false);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fwd[i].real(), expect[i].real(), 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(fwd[i].imag(), expect[i].imag(), 1e-10 * static_cast<double>(n));
  }
  dft(fwd, true);  // round trip back to the input
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fwd[i].real(), a[i].real(), 1e-10 * static_cast<double>(n));
    EXPECT_NEAR(fwd[i].imag(), a[i].imag(), 1e-10 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(OddPrimeComposite, DftSweep,
                         ::testing::Values(3, 5, 7, 12, 17, 31, 100, 243, 509));

// --- CirculantMultiplier at non-power-of-two logical orders ---
// The multiplier owns the next_pow2 embedding; callers hand it the logical
// first column and never see the padding.

class OddCirculantSweep : public ::testing::TestWithParam<int> {};

TEST_P(OddCirculantSweep, MatchesNaiveCirculantProduct) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  util::Rng rng(2000 + static_cast<std::uint64_t>(n));
  std::vector<double> c(n), x(n);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = rng.uniform(-1, 1);
    x[i] = rng.uniform(-1, 1);
  }
  CirculantMultiplier mult(c);
  EXPECT_EQ(mult.order(), n);
  EXPECT_EQ(mult.fft_order(), next_pow2(2 * n - 1));
  std::vector<double> y;
  mult.apply(x, y);
  ASSERT_EQ(y.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += c[(i + n - j) % n] * x[j];
    EXPECT_NEAR(y[i], s, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(OddPrime, OddCirculantSweep,
                         ::testing::Values(3, 5, 7, 13, 31, 97, 100));

TEST(Circulant, Pow2OrderUsesNoEmbedding) {
  std::vector<double> c{1.0, 2.0, 3.0, 4.0};
  CirculantMultiplier mult(c);
  EXPECT_EQ(mult.order(), 4u);
  EXPECT_EQ(mult.fft_order(), 4u);
}

// --- BlockCirculantMultiplier: embedding of a full block Toeplitz matrix ---

TEST(BlockCirculant, MatchesDenseMatVec) {
  const la::index_t m = 3, p = 7;  // odd p exercises the padded embedding
  util::Rng rng(42);
  la::Mat row(m, m * p);
  for (la::index_t j = 0; j < m * p; ++j)
    for (la::index_t i = 0; i < m; ++i) row(i, j) = rng.uniform(-1, 1);
  for (la::index_t i = 0; i < m; ++i)  // symmetrize T1
    for (la::index_t j = 0; j < i; ++j) row(i, j) = row(j, i);
  const BlockToeplitz t(m, row);
  const BlockCirculantMultiplier mult(t);
  EXPECT_EQ(mult.fft_order(), next_pow2(2 * static_cast<std::size_t>(p)));

  const la::Mat dense = t.dense();
  const la::index_t n = t.order();
  std::vector<double> x(static_cast<std::size_t>(n)), y;
  for (auto& v : x) v = rng.uniform(-1, 1);
  mult.apply(x, y);
  for (la::index_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (la::index_t j = 0; j < n; ++j) s += dense(i, j) * x[static_cast<std::size_t>(j)];
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], s, 1e-11);
  }
}

TEST(BlockCirculant, BatchedMatchesColumnwise) {
  const la::index_t m = 2, p = 12, k = 5;
  util::Rng rng(7);
  la::Mat row(m, m * p);
  for (la::index_t j = 0; j < m * p; ++j)
    for (la::index_t i = 0; i < m; ++i) row(i, j) = rng.uniform(-1, 1);
  for (la::index_t i = 0; i < m; ++i)
    for (la::index_t j = 0; j < i; ++j) row(i, j) = row(j, i);
  const BlockToeplitz t(m, row);
  const BlockCirculantMultiplier mult(t);

  const la::index_t n = t.order();
  la::Mat xs(n, k), ys(n, k);
  for (la::index_t j = 0; j < k; ++j)
    for (la::index_t i = 0; i < n; ++i) xs(i, j) = rng.uniform(-1, 1);
  mult.apply(xs.view(), ys.view());
  for (la::index_t j = 0; j < k; ++j) {
    std::vector<double> x(static_cast<std::size_t>(n)), y;
    for (la::index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = xs(i, j);
    mult.apply(x, y);
    for (la::index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ys(i, j), y[static_cast<std::size_t>(i)], 1e-13);
    }
  }
}

TEST(BlockCirculant, ResidualIsExactForTrueSolution) {
  const la::index_t m = 2, p = 9;
  util::Rng rng(11);
  la::Mat row(m, m * p);
  for (la::index_t j = 0; j < m * p; ++j)
    for (la::index_t i = 0; i < m; ++i) row(i, j) = rng.uniform(-1, 1);
  for (la::index_t i = 0; i < m; ++i)
    for (la::index_t j = 0; j < i; ++j) row(i, j) = row(j, i);
  const BlockToeplitz t(m, row);
  const BlockCirculantMultiplier mult(t);
  std::vector<double> x(static_cast<std::size_t>(t.order())), b, r;
  for (auto& v : x) v = rng.uniform(-1, 1);
  mult.apply(x, b);
  mult.residual(b, x, r);
  for (const double v : r) EXPECT_NEAR(v, 0.0, 1e-12);
}

}  // namespace
}  // namespace bst::toeplitz
