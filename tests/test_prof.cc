// Tests for util/prof: arm/disarm lifecycle, the degradation contract
// (PMU denied or disabled must never fail anything), the report section
// shape, folded-stack formatting, and request tagging.
//
// These tests run in containers and CI runners where perf_event_open is
// typically denied, so they assert *consistency* -- status and data agree
// -- rather than demanding live hardware counters.  Sampling tests spin
// real CPU under a high-rate timer but still accept zero samples (a loaded
// CI box may never deliver SIGPROF to this thread in time); every assertion
// on sample content is conditional on samples existing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "util/prof.h"
#include "util/report.h"
#include "util/trace.h"

namespace bst::util {
namespace {

// Burns CPU long enough for a few 997 Hz ticks to land.
double spin_ms(int ms) {
  volatile double sink = 1.0;
  const std::uint64_t t0 = TraceClock::now_ns();
  while (TraceClock::now_ns() - t0 < static_cast<std::uint64_t>(ms) * 1000000ull) {
    for (int i = 1; i < 2000; ++i) sink = sink + 1.0 / static_cast<double>(i);
  }
  return sink;
}

const Json* find_key(const Json& obj, const char* key) { return obj.find(key); }

TEST(Prof, DisarmedByDefaultAndCostsNothing) {
  Tracer::reset();
  EXPECT_FALSE(Prof::armed());
  EXPECT_FALSE(Prof::was_armed());
  EXPECT_EQ(Prof::pmu_status(), "off");
  EXPECT_FALSE(Prof::pmu_available());
  // The hooks are safe to call disarmed (trace.cc guards, but belt+braces).
  Prof::on_span_open(0);
  Prof::on_span_close(0);
}

TEST(Prof, ArmDisarmLifecycle) {
  Tracer::reset();
  ProfOptions opt;
  opt.pmu = false;      // deterministic everywhere: never touch perf
  opt.sample_hz = 0;    // and no timer
  Prof::arm(opt);
  EXPECT_TRUE(Prof::armed());
  EXPECT_TRUE(Prof::was_armed());
  EXPECT_EQ(Prof::pmu_status(), "disabled");
  Prof::disarm();
  EXPECT_FALSE(Prof::armed());
  EXPECT_TRUE(Prof::was_armed());  // survives disarm for the report builder
  Tracer::reset();
  EXPECT_FALSE(Prof::was_armed());  // reset clears it
}

TEST(Prof, ArmIsIdempotent) {
  Tracer::reset();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 0;
  Prof::arm(opt);
  Prof::arm(opt);
  EXPECT_TRUE(Prof::armed());
  Prof::disarm();
  Prof::disarm();
  EXPECT_FALSE(Prof::armed());
  Tracer::reset();
}

// Status and data must agree whatever the kernel allowed: either the PMU
// opened ("ok", snapshot may carry counts) or it did not ("unavailable:
// ...", snapshot stays empty).  This is the contract check_prof.py gates
// on in CI, in both directions.
TEST(Prof, PmuStatusMatchesData) {
  Tracer::reset();
  Tracer::enable();
  ProfOptions opt;
  opt.sample_hz = 0;  // PMU side only
  Prof::arm(opt);
  {
    TraceSpan span(Tracer::phase("prof_test_phase"));
    spin_ms(5);
  }
  Prof::disarm();
  const std::string status = Prof::pmu_status();
  const std::vector<PhasePmu> snap = Prof::pmu_snapshot();
  if (Prof::pmu_available()) {
    EXPECT_EQ(status, "ok");
    bool counted = false;
    for (const PhasePmu& p : snap) counted = counted || p.c.cycles > 0;
    EXPECT_TRUE(counted) << "PMU ok but no phase accumulated cycles";
  } else {
    EXPECT_TRUE(status.rfind("unavailable", 0) == 0) << status;
    for (const PhasePmu& p : snap) EXPECT_EQ(p.c.cycles, 0u);
  }
  Tracer::disable();
  Tracer::reset();
}

TEST(Prof, SectionJsonShape) {
  Tracer::reset();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 0;
  Prof::arm(opt);
  Prof::disarm();
  const Json section = Prof::section_json();
  const Json* pmu = find_key(section, "pmu");
  ASSERT_NE(pmu, nullptr);
  ASSERT_NE(find_key(*pmu, "status"), nullptr);
  EXPECT_EQ(find_key(*pmu, "status")->as_string(), "disabled");
  ASSERT_NE(find_key(*pmu, "available"), nullptr);
  EXPECT_FALSE(find_key(*pmu, "available")->as_bool());
  const Json* sampler = find_key(section, "sampler");
  ASSERT_NE(sampler, nullptr);
  ASSERT_NE(find_key(*sampler, "enabled"), nullptr);
  EXPECT_FALSE(find_key(*sampler, "enabled")->as_bool());
  ASSERT_NE(find_key(*sampler, "samples"), nullptr);
  ASSERT_NE(find_key(*sampler, "top_stacks"), nullptr);
  Tracer::reset();
}

// End-to-end software sampling under a real timer.  All content assertions
// are conditional on samples actually landing.
TEST(Prof, SamplerCapturesAndFoldsStacks) {
  Tracer::reset();
  Tracer::enable();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 997;
  Prof::arm(opt);
  Prof::set_request(42);
  {
    TraceSpan span(Tracer::phase("prof_sampled_phase"));
    spin_ms(60);
  }
  Prof::set_request(0);
  Prof::disarm();
  const SamplerStats st = Prof::sampler_stats();
  EXPECT_TRUE(st.enabled);
  EXPECT_EQ(st.interval_us, 1000000u / 997u);
  if (st.samples > 0) {
    const std::string folded = Prof::folded_stacks();
    ASSERT_FALSE(folded.empty());
    std::istringstream lines(folded);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      // "stack count": a space-separated trailing positive integer...
      const std::size_t sp = line.rfind(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u) << line;
      // ...and the stack roots at the phase attribution frame.
      EXPECT_EQ(line.rfind("phase:", 0), 0u) << line;
    }
    EXPECT_GE(st.threads, 1u);
  }
  Tracer::disable();
  Tracer::reset();
  EXPECT_EQ(Prof::sampler_stats().samples, 0u);  // reset dropped the pool
}

// A second arm() after reset() starts clean (fresh stats, fresh section):
// the service path re-arms across runs in one process.
TEST(Prof, RearmAfterResetStartsClean) {
  Tracer::reset();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 0;
  Prof::arm(opt);
  Prof::disarm();
  Tracer::reset();
  EXPECT_FALSE(Prof::was_armed());
  Prof::arm(opt);
  EXPECT_TRUE(Prof::armed());
  EXPECT_EQ(Prof::sampler_stats().samples, 0u);
  Prof::disarm();
  Tracer::reset();
}

// write_artifacts with zero samples must write nothing and return empty
// paths -- not emit empty files.
TEST(Prof, NoArtifactsWithoutSamples) {
  Tracer::reset();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 0;
  opt.out_prefix = "test_prof_should_not_exist";
  Prof::arm(opt);
  Prof::disarm();
  const Prof::Artifacts art = Prof::write_artifacts();
  EXPECT_TRUE(art.folded.empty());
  EXPECT_TRUE(art.perfetto.empty());
  Tracer::reset();
}

// The span-stack bookkeeping must stay balanced past the depth cap: deep
// recursion may overflow kMaxSpanDepth, and the matching closes must not
// corrupt the stack (would misattribute every later sample).
TEST(Prof, SpanStackSurvivesOverflow) {
  Tracer::reset();
  Tracer::enable();
  ProfOptions opt;
  opt.pmu = false;
  opt.sample_hz = 0;
  Prof::arm(opt);
  constexpr int kDeep = Prof::kMaxSpanDepth + 8;
  std::vector<TraceSpan*> spans;
  spans.reserve(kDeep);
  for (int i = 0; i < kDeep; ++i) spans.push_back(new TraceSpan(Tracer::phase("deep_phase")));
  for (int i = kDeep - 1; i >= 0; --i) delete spans[static_cast<std::size_t>(i)];
  // Re-open one span: attribution still works after the overflow unwound.
  {
    TraceSpan span(Tracer::phase("after_overflow"));
  }
  Prof::disarm();
  Tracer::disable();
  Tracer::reset();
}

}  // namespace
}  // namespace bst::util
