// Tests for the event flight recorder (util/flight_recorder.h): ring
// overflow, cross-thread recording, the chrome-trace exporter's per-tid B/E
// re-balancing, and watchdog warnings landing as instant markers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flight_recorder.h"
#include "util/flops.h"
#include "util/report.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::util {
namespace {

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::reset();
    Tracer::enable();
  }
  void TearDown() override {
    FlightRecorder::disable();
    Tracer::disable();
    Tracer::reset();
  }
};

// The one ring that recorded anything (tests enable() fresh, which clears
// every ring, so single-threaded tests see exactly one non-empty ring).
ThreadEvents only_ring() {
  const std::vector<ThreadEvents> threads = FlightRecorder::snapshot();
  EXPECT_EQ(threads.size(), 1u);
  return threads.empty() ? ThreadEvents{} : threads.front();
}

// Chrome-trace invariant the exporter guarantees: within every tid, B/E
// events nest like parentheses (matching names) and end balanced.
void expect_balanced(const Json& doc) {
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<double, std::vector<std::string>> stacks;
  std::map<double, double> last_ts;
  for (const Json& e : events->items()) {
    ASSERT_NE(e.find("ph"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("ts"), nullptr);
    const std::string ph = e.find("ph")->as_string();
    const double tid = e.find("tid")->as_number();
    const double ts = e.find("ts")->as_number();
    const std::string name = e.find("name")->as_string();
    if (name != "flight_recorder_dropped") {  // dropped marker pins ts = 0
      auto it = last_ts.find(tid);
      if (it != last_ts.end()) {
        EXPECT_LE(it->second, ts) << "ts went backwards in tid " << tid;
        it->second = ts;
      } else {
        last_ts.emplace(tid, ts);
      }
    }
    if (ph == "B") {
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "orphan End in tid " << tid;
      EXPECT_EQ(stacks[tid].back(), name);
      stacks[tid].pop_back();
    } else {
      EXPECT_EQ(ph, "i");
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed Begin in tid " << tid;
  }
}

Json export_trace() {
  std::ostringstream os;
  FlightRecorder::write_chrome_trace(os);
  return parse_json(os.str());
}

TEST_F(FlightTest, DisabledRecorderRecordsNothing) {
  FlightRecorder::enable(16);
  FlightRecorder::reset();
  FlightRecorder::disable();
  FlightRecorder::instant(Tracer::phase("flight_test_off"), 0, 1.0, 2.0);
  { TraceSpan span(Tracer::phase("flight_test_off")); }
  EXPECT_TRUE(FlightRecorder::snapshot().empty());
}

TEST_F(FlightTest, RingOverflowKeepsTheMostRecentEvents) {
  FlightRecorder::enable(8);
  const PhaseId p = Tracer::phase("flight_test_overflow");
  for (int i = 0; i < 20; ++i) {
    FlightRecorder::instant(p, i, static_cast<double>(i), 0.0);
  }
  const ThreadEvents te = only_ring();
  EXPECT_EQ(te.dropped, 12u);
  ASSERT_EQ(te.events.size(), 8u);
  for (std::size_t i = 0; i < te.events.size(); ++i) {
    EXPECT_EQ(te.events[i].kind, EventKind::kInstant);
    EXPECT_EQ(te.events[i].step, static_cast<std::int64_t>(12 + i));  // oldest first
    if (i > 0) EXPECT_GE(te.events[i].ts_ns, te.events[i - 1].ts_ns);
  }
}

TEST_F(FlightTest, SpansEmitNestedBeginEndWithFlopDeltas) {
  FlightRecorder::enable(64);
  const PhaseId outer = Tracer::phase("flight_test_outer");
  const PhaseId inner = Tracer::phase("flight_test_inner");
  {
    TraceSpan so(outer);
    FlopCounter::charge(3);
    {
      TraceSpan si(inner);
      FlopCounter::charge(7);
    }
  }
  const ThreadEvents te = only_ring();
  ASSERT_EQ(te.events.size(), 4u);
  EXPECT_EQ(te.events[0].kind, EventKind::kBegin);
  EXPECT_EQ(te.events[0].phase, outer);
  EXPECT_EQ(te.events[1].kind, EventKind::kBegin);
  EXPECT_EQ(te.events[1].phase, inner);
  EXPECT_EQ(te.events[2].kind, EventKind::kEnd);
  EXPECT_EQ(te.events[2].phase, inner);
  EXPECT_EQ(te.events[3].kind, EventKind::kEnd);
  EXPECT_EQ(te.events[3].phase, outer);
  // End events carry the span's flop delta (spans are inclusive).
  EXPECT_EQ(te.events[2].a, 7u);
  EXPECT_EQ(te.events[3].a, 10u);
}

TEST_F(FlightTest, ThreadsRecordIntoDistinctRings) {
  FlightRecorder::enable(1024);
  const PhaseId p = Tracer::phase("flight_test_threads");
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([p, t] {
      Tracer::set_step(t);
      for (int i = 0; i < 10; ++i) {
        TraceSpan span(p);
      }
      FlightRecorder::instant(p, t, static_cast<double>(t), 0.0);
    });
  }
  for (std::thread& w : workers) w.join();

  const std::vector<ThreadEvents> threads = FlightRecorder::snapshot();
  ASSERT_EQ(threads.size(), static_cast<std::size_t>(kThreads));
  std::set<std::uint32_t> tids;
  for (const ThreadEvents& te : threads) {
    tids.insert(te.tid);
    EXPECT_EQ(te.dropped, 0u);
    EXPECT_EQ(te.events.size(), 21u);  // 10 B/E pairs + 1 instant
    for (std::size_t i = 1; i < te.events.size(); ++i) {
      EXPECT_GE(te.events[i].ts_ns, te.events[i - 1].ts_ns);
    }
    // Every event on a ring carries that thread's step index.
    const std::int64_t step = te.events.back().step;
    for (const FlightEvent& e : te.events) EXPECT_EQ(e.step, step);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));

  // The multi-thread export parses and stays balanced per tid.
  expect_balanced(export_trace());
}

TEST_F(FlightTest, ExporterDropsOrphanEndsAndUnclosedBegins) {
  FlightRecorder::enable(64);
  const PhaseId p = Tracer::phase("flight_test_orphans");
  FlightRecorder::end(p, TraceClock::now_ns(), 0, 0);  // orphan End
  {
    TraceSpan span(p);  // the one balanced pair
  }
  FlightRecorder::begin(p, TraceClock::now_ns(), 0, 0);  // never closed
  ASSERT_EQ(only_ring().events.size(), 4u);

  const Json doc = export_trace();
  expect_balanced(doc);
  int begins = 0, ends = 0;
  for (const Json& e : doc.find("traceEvents")->items()) {
    const std::string ph = e.find("ph")->as_string();
    begins += ph == "B";
    ends += ph == "E";
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST_F(FlightTest, ExportStaysBalancedAfterRingWrap) {
  FlightRecorder::enable(8);
  const PhaseId p = Tracer::phase("flight_test_wrap");
  FlightRecorder::begin(p, TraceClock::now_ns(), 0, 0);  // wraps away mid-run
  for (int i = 0; i < 10; ++i) {
    TraceSpan span(p);
  }
  const ThreadEvents te = only_ring();
  EXPECT_GT(te.dropped, 0u);

  const Json doc = export_trace();
  expect_balanced(doc);
  // The overflow leaves a drop marker on the tid.
  bool saw_drop_marker = false;
  for (const Json& e : doc.find("traceEvents")->items()) {
    if (e.find("name")->as_string() == "flight_recorder_dropped") {
      saw_drop_marker = true;
      EXPECT_GT(e.find("args")->find("dropped")->as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_drop_marker);
}

TEST_F(FlightTest, WatchdogWarningsBecomeInstantMarkers) {
  FlightRecorder::enable(64);
  Watchdog::warn("flight_test_code", 5, 1.5, 2.5);
  const ThreadEvents te = only_ring();
  ASSERT_EQ(te.events.size(), 1u);
  EXPECT_EQ(te.events[0].kind, EventKind::kInstant);
  EXPECT_EQ(te.events[0].step, 5);

  const Json doc = export_trace();
  const std::vector<Json>& events = doc.find("traceEvents")->items();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].find("name")->as_string(), "warn:flight_test_code");
  EXPECT_EQ(events[0].find("ph")->as_string(), "i");
  const Json* args = events[0].find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->find("step")->as_number(), 5.0);
  EXPECT_DOUBLE_EQ(args->find("value")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(args->find("threshold")->as_number(), 2.5);
}

TEST_F(FlightTest, EmptyTraceIsStillValidJson) {
  FlightRecorder::enable(16);
  const Json doc = export_trace();
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_TRUE(doc.find("traceEvents")->items().empty());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
}

}  // namespace
}  // namespace bst::util
