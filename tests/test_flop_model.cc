// Tests for the closed-form flop models (paper eqs. 25-32): the k = m
// specializations printed in the paper, the ordering claims (YTY cheapest
// to build, VY2 cheapest to apply), and consistency with the instrumented
// flop counters of the real kernels.
#include <gtest/gtest.h>

#include "core/block_reflector.h"
#include "core/flop_model.h"
#include "core/schur.h"
#include "toeplitz/generators.h"
#include "util/flops.h"
#include "util/rng.h"
#include "util/trace.h"

namespace bst::core {
namespace {

TEST(FlopModel, PaperSpecializationsAtKEqualsM) {
  for (index_t m : {2, 4, 8, 16, 32, 64}) {
    const double dm = static_cast<double>(m);
    // Eq. 25: 6m^3 + 1.5m^2 + 11.5m  (the paper's k = m simplification has
    // a small constant slack; allow 0.5% + O(m) tolerance).
    EXPECT_NEAR(blocking_flops_accumulated_u(m, m), 6 * dm * dm * dm + 1.5 * dm * dm + 11.5 * dm,
                0.005 * dm * dm * dm + 20 * dm)
        << m;
    EXPECT_NEAR(blocking_flops_vy1(m, m), 2.3333 * dm * dm * dm + 3.75 * dm * dm + 8 * dm,
                0.01 * dm * dm * dm + 20 * dm)
        << m;
    EXPECT_NEAR(blocking_flops_vy2(m, m), 2 * dm * dm * dm + 3 * dm * dm + 8 * dm,
                0.005 * dm * dm * dm + 20 * dm)
        << m;
    EXPECT_NEAR(blocking_flops_yty(m, m), 1.3333 * dm * dm * dm + 3.75 * dm * dm + 8 * dm,
                0.01 * dm * dm * dm + 20 * dm)
        << m;
  }
}

TEST(FlopModel, BuildOrderingMatchesPaper) {
  // YTY < VY2 < VY1 << U for all nontrivial m (paper section 6.2).
  for (index_t m : {2, 4, 8, 16, 32, 64}) {
    const double u = blocking_flops_accumulated_u(m, m);
    const double v1 = blocking_flops_vy1(m, m);
    const double v2 = blocking_flops_vy2(m, m);
    const double y = blocking_flops_yty(m, m);
    EXPECT_LT(y, v2) << m;
    EXPECT_LT(v2, v1) << m;
    EXPECT_LT(v1, u) << m;
  }
}

TEST(FlopModel, ApplicationOrderingMatchesPaper) {
  // VY2 <= VY1 <= YTY < U at k = m (paper section 6.3, eqs. 29-32; the
  // YTY and U models coincide exactly at m = 2, so start at m = 4).
  for (index_t m : {4, 8, 16, 32}) {
    const index_t p = 64;
    const double u = application_flops_accumulated_u(m, p, m);
    const double v1 = application_flops_vy1(m, p, m);
    const double v2 = application_flops_vy2(m, p, m);
    const double y = application_flops_yty(m, p, m);
    EXPECT_LE(v2, v1) << m;
    EXPECT_LE(v1, y) << m;
    EXPECT_LT(y, u) << m;
    // Leading terms: U ~ 7m^3 p, others ~ 5m^3 p.
    const double dm = static_cast<double>(m), dp = static_cast<double>(p);
    EXPECT_NEAR(u / (dm * dm * dm * dp), 7.0, 1.2) << m;
    EXPECT_NEAR(v2 / (dm * dm * dm * dp), 5.0, 1.2) << m;
  }
}

TEST(FlopModel, DispatchersCoverAllReps) {
  for (Representation rep : {Representation::AccumulatedU, Representation::VY1,
                             Representation::VY2, Representation::YTY,
                             Representation::Sequential}) {
    EXPECT_GT(blocking_flops(rep, 8, 8), 0.0) << to_string(rep);
    EXPECT_GT(application_flops(rep, 8, 16, 8), 0.0) << to_string(rep);
  }
}

TEST(FlopModel, FactorizationModelIsLinearInBlockSize) {
  EXPECT_DOUBLE_EQ(factorization_flops_model(1024, 8) / factorization_flops_model(1024, 4), 2.0);
  EXPECT_DOUBLE_EQ(factorization_flops_model(2048, 4) / factorization_flops_model(1024, 4), 4.0);
}

// The instrumented flop counters of the real factorization should be of the
// same order as the ~4 m_s n^2 model (our kernels do not exploit every bit
// of sparsity, so allow a generous band).
TEST(FlopModel, MeasuredFactorizationFlopsNearModel) {
  toeplitz::BlockToeplitz t = toeplitz::kms(256, 0.5);
  for (index_t ms : {4, 16}) {
    SchurOptions opt;
    opt.block_size = ms;
    SchurFactor f = block_schur_factor(t, opt);
    const double model = factorization_flops_model(256, ms);
    const double measured = static_cast<double>(f.flops);
    EXPECT_GT(measured, 0.3 * model) << ms;
    EXPECT_LT(measured, 4.0 * model) << ms;
  }
}

// Measured application flops for one step: compare representations against
// each other on the real kernels (the VY/YTY advantage over U must be
// visible in the instrumented counts too).
TEST(FlopModel, MeasuredApplicationAdvantageOverU) {
  const index_t m = 16, p = 64;
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(m, p, 2, 5);
  auto flops_for = [&](Representation rep) {
    SchurOptions opt;
    opt.rep = rep;
    util::FlopScope scope;
    SchurFactor f = block_schur_factor(t, opt);
    (void)f;
    return static_cast<double>(scope.elapsed());
  };
  const double fu = flops_for(Representation::AccumulatedU);
  const double fvy2 = flops_for(Representation::VY2);
  EXPECT_LT(fvy2, fu);
}

// The tracer's per-phase flop totals must agree with the closed-form models:
// summing eqs. 25-28 (build) and 29-32 (apply) over the p-1 Schur steps
// predicts what the "reflector_build" / "reflector_apply" phases measure.
// The agreement is banded, not exact: the build phase also eliminates the
// m pivot columns (which the blocking models do not count), and the kernels
// do not exploit every structural zero the models assume.  Measured ratios
// are ~1.0-1.6x for apply and ~2.9-3.4x for build across representations.
TEST(FlopModel, TracerPhaseFlopsMatchModels) {
  const index_t m = 8, p = 24;
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(m, p, 2, 5);
  for (Representation rep : {Representation::AccumulatedU, Representation::VY1,
                             Representation::VY2, Representation::YTY}) {
    util::Tracer::reset();
    util::Tracer::enable();
    SchurOptions opt;
    opt.rep = rep;
    SchurFactor f = block_schur_factor(t, opt);
    util::Tracer::disable();
    (void)f;

    double build_model = 0.0, apply_model = 0.0;
    for (index_t i = 1; i < p; ++i) {
      build_model += blocking_flops(rep, m, m);
      const index_t trailing = p - i - 1;
      if (trailing > 0) apply_model += application_flops(rep, m, trailing, m);
    }

    double build_meas = 0.0, apply_meas = 0.0;
    for (const util::PhaseStats& ph : util::Tracer::snapshot()) {
      if (ph.name == "reflector_build") build_meas = static_cast<double>(ph.flops);
      if (ph.name == "reflector_apply") apply_meas = static_cast<double>(ph.flops);
    }
    util::Tracer::reset();

    EXPECT_GT(build_meas, 1.0 * build_model) << to_string(rep);
    EXPECT_LT(build_meas, 4.0 * build_model) << to_string(rep);
    EXPECT_GT(apply_meas, 0.5 * apply_model) << to_string(rep);
    EXPECT_LT(apply_meas, 2.0 * apply_model) << to_string(rep);
  }
}

// The as-implemented models close that band to zero: for the single-level
// sequential path, blocking_flops_impl / application_flops_impl are closed
// forms of exactly what the kernels charge, so the tracer's phase totals
// match schur_phase_models() to the last flop.  This is the invariant the
// attainment section's model_ratio (and the CI gate on it) relies on.
TEST(FlopModel, TracerPhaseFlopsMatchImplModelsExactly) {
  const index_t m = 8, p = 24;
  toeplitz::BlockToeplitz t = toeplitz::random_spd_block(m, p, 2, 5);
  for (Representation rep :
       {Representation::AccumulatedU, Representation::VY1, Representation::VY2,
        Representation::YTY, Representation::Sequential}) {
    util::Tracer::reset();
    util::Tracer::enable();
    SchurOptions opt;
    opt.rep = rep;
    SchurFactor f = block_schur_factor(t, opt);
    util::Tracer::disable();
    (void)f;

    double build_meas = 0.0, apply_meas = 0.0;
    for (const util::PhaseStats& ph : util::Tracer::snapshot()) {
      if (ph.name == "reflector_build") build_meas = static_cast<double>(ph.flops);
      if (ph.name == "reflector_apply") apply_meas = static_cast<double>(ph.flops);
    }
    util::Tracer::reset();

    const std::vector<util::PhaseModel> models = schur_phase_models(rep, t.order(), m);
    ASSERT_EQ(models.size(), 2u);
    ASSERT_EQ(models[0].phase, "reflector_build");
    ASSERT_EQ(models[1].phase, "reflector_apply");
    EXPECT_NEAR(build_meas / models[0].model_flops, 1.0, 1e-12) << to_string(rep);
    EXPECT_NEAR(apply_meas / models[1].model_flops, 1.0, 1e-12) << to_string(rep);
    // The paper totals in the same models are the verbatim eq. 25-32 sums.
    double build_paper = 0.0, apply_paper = 0.0;
    for (index_t i = 1; i < p; ++i) {
      build_paper += blocking_flops(rep, m, m);
      if (p - i - 1 > 0) apply_paper += application_flops(rep, m, p - i - 1, m);
    }
    EXPECT_DOUBLE_EQ(models[0].paper_flops, build_paper) << to_string(rep);
    EXPECT_DOUBLE_EQ(models[1].paper_flops, apply_paper) << to_string(rep);
  }
}

TEST(FlopModel, SchurPhaseModelsRejectNonDividingBlockSize) {
  EXPECT_TRUE(schur_phase_models(Representation::VY2, 100, 7).empty());
  EXPECT_TRUE(schur_phase_models(Representation::VY2, 0, 8).empty());
  EXPECT_FALSE(schur_phase_models(Representation::VY2, 64, 8).empty());
}

}  // namespace
}  // namespace bst::core
