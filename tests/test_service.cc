// Tests for the batched solver service: factor cache (keying, LRU-by-bytes
// eviction, thundering-herd coalescing), sync/async solve paths, bitwise
// determinism of concurrent submission, the panel-blocked multi-RHS solve,
// env-knob parsing, and the util::Metrics named-counter facility the
// service reports through.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "core/schur.h"
#include "core/solve.h"
#include "service/cache.h"
#include "service/service.h"
#include "toeplitz/generators.h"
#include "util/metrics.h"

namespace bst {
namespace {

using service::FactorCache;
using service::Service;
using service::ServiceOptions;
using service::SolveResult;
using toeplitz::BlockToeplitz;

double max_err_vs_ones(const std::vector<double>& x) {
  double e = 0.0;
  for (double v : x) e = std::max(e, std::fabs(v - 1.0));
  return e;
}

// ---------------------------------------------------------------- cache key

TEST(ProblemKey, SameProblemSameKey) {
  BlockToeplitz a = toeplitz::kms(24, 0.5);
  BlockToeplitz b = toeplitz::kms(24, 0.5);
  core::SchurOptions opt;
  EXPECT_EQ(service::problem_key(a, opt), service::problem_key(b, opt));
}

TEST(ProblemKey, MatrixContentChangesKey) {
  core::SchurOptions opt;
  EXPECT_NE(service::problem_key(toeplitz::kms(24, 0.5), opt),
            service::problem_key(toeplitz::kms(24, 0.6), opt));
  EXPECT_NE(service::problem_key(toeplitz::kms(24, 0.5), opt),
            service::problem_key(toeplitz::kms(32, 0.5), opt));
}

TEST(ProblemKey, NumericalOptionsChangeKey) {
  BlockToeplitz t = toeplitz::kms(24, 0.5);
  core::SchurOptions a;
  core::SchurOptions b;
  b.block_size = a.block_size + 1;
  EXPECT_NE(service::problem_key(t, a), service::problem_key(t, b));
  core::SchurOptions c;
  c.breakdown_tol = 1e-3;
  EXPECT_NE(service::problem_key(t, a), service::problem_key(t, c));
}

// ------------------------------------------------------------- FactorCache

core::SchurFactor factor_of(const BlockToeplitz& t) {
  return core::block_schur_factor(t, core::SchurOptions{});
}

TEST(FactorCache, HitOnSecondLookup) {
  FactorCache cache(64ull << 20);
  BlockToeplitz t = toeplitz::kms(16, 0.4);
  const std::string key = service::problem_key(t, core::SchurOptions{});
  bool hit = true;
  auto f1 = cache.get_or_factor(key, [&] { return factor_of(t); }, &hit);
  EXPECT_FALSE(hit);
  auto f2 = cache.get_or_factor(key, [&] { return factor_of(t); }, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(f1.get(), f2.get());  // same cached object, not a refactor
  const service::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(FactorCache, DifferentKeysMiss) {
  FactorCache cache(64ull << 20);
  BlockToeplitz a = toeplitz::kms(16, 0.4);
  BlockToeplitz b = toeplitz::kms(16, 0.7);
  core::SchurOptions opt;
  cache.get_or_factor(service::problem_key(a, opt), [&] { return factor_of(a); });
  cache.get_or_factor(service::problem_key(b, opt), [&] { return factor_of(b); });
  const service::CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(FactorCache, LruEvictionUnderByteBudget) {
  // An n x n factor is n^2 doubles; budget two 16x16 factors, insert three.
  const std::size_t one = 16 * 16 * sizeof(double) + sizeof(core::SchurFactor);
  FactorCache cache(2 * one + one / 2);
  core::SchurOptions opt;
  BlockToeplitz a = toeplitz::kms(16, 0.3);
  BlockToeplitz b = toeplitz::kms(16, 0.5);
  BlockToeplitz c = toeplitz::kms(16, 0.7);
  const std::string ka = service::problem_key(a, opt);
  const std::string kb = service::problem_key(b, opt);
  const std::string kc = service::problem_key(c, opt);
  cache.get_or_factor(ka, [&] { return factor_of(a); });
  cache.get_or_factor(kb, [&] { return factor_of(b); });
  // Touch `a` so `b` is the LRU victim when `c` lands.
  cache.get_or_factor(ka, [&] { return factor_of(a); });
  cache.get_or_factor(kc, [&] { return factor_of(c); });
  EXPECT_TRUE(cache.contains(ka));
  EXPECT_FALSE(cache.contains(kb));
  EXPECT_TRUE(cache.contains(kc));
  const service::CacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.resident_bytes, cache.max_bytes());
}

TEST(FactorCache, OversizedEntryStillCaches) {
  // A single factor above the budget caches anyway (and evicts the rest).
  FactorCache cache(1);
  BlockToeplitz t = toeplitz::kms(12, 0.4);
  const std::string key = service::problem_key(t, core::SchurOptions{});
  cache.get_or_factor(key, [&] { return factor_of(t); });
  EXPECT_TRUE(cache.contains(key));
  bool hit = false;
  cache.get_or_factor(key, [&] { return factor_of(t); }, &hit);
  EXPECT_TRUE(hit);
}

TEST(FactorCache, ConcurrentMissesFactorOnce) {
  FactorCache cache(64ull << 20);
  BlockToeplitz t = toeplitz::kms(32, 0.5);
  const std::string key = service::problem_key(t, core::SchurOptions{});
  std::atomic<int> factories{0};
  auto factory = [&] {
    ++factories;
    return factor_of(t);
  };
  std::vector<std::thread> threads;
  std::vector<service::FactorPtr> got(8);
  threads.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back([&, i] { got[i] = cache.get_or_factor(key, factory); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(factories.load(), 1);
  for (const auto& f : got) EXPECT_EQ(f.get(), got.front().get());
}

TEST(FactorCache, ThrowingFactoryPropagatesAndLeavesNoEntry) {
  FactorCache cache(64ull << 20);
  BlockToeplitz bad = toeplitz::random_indefinite(12, 3, /*diag=*/1.2);
  const std::string key = service::problem_key(bad, core::SchurOptions{});
  EXPECT_THROW(cache.get_or_factor(key, [&] { return factor_of(bad); }),
               core::NotPositiveDefinite);
  EXPECT_FALSE(cache.contains(key));
  EXPECT_EQ(cache.stats().entries, 0u);
}

// --------------------------------------------------------- panel-block solve

TEST(SolvePanels, MatchesMultiForAnyPanelWidth) {
  BlockToeplitz t = toeplitz::kms(48, 0.5);
  core::SchurFactor f = factor_of(t);
  const la::index_t n = t.order(), k = 11;
  la::Mat b(n, k);
  for (la::index_t j = 0; j < k; ++j) {
    for (la::index_t i = 0; i < n; ++i) b.view().col(j)[i] = std::sin(0.1 * (i + 3 * j) + 1.0);
  }
  la::Mat ref = b;
  core::solve_rtdr_multi(f.r.view(), nullptr, ref.view());
  for (la::index_t panel : {1, 3, 4, 11, 64}) {
    for (bool parallel : {false, true}) {
      la::Mat x = b;
      core::solve_rtdr_panels(f.r.view(), nullptr, x.view(), panel, parallel);
      double err = 0.0;
      for (la::index_t j = 0; j < k; ++j) {
        for (la::index_t i = 0; i < n; ++i) {
          err = std::max(err, std::fabs(x.view().col(j)[i] - ref.view().col(j)[i]));
        }
      }
      EXPECT_LT(err, 1e-12) << "panel=" << panel << " parallel=" << parallel;
    }
  }
}

TEST(SolvePanels, ParallelBitwiseMatchesSerialAtFixedPanel) {
  BlockToeplitz t = toeplitz::kms(96, 0.6);
  core::SchurFactor f = factor_of(t);
  const la::index_t n = t.order(), k = 40, panel = 8;
  la::Mat b(n, k);
  for (la::index_t i = 0; i < n * k; ++i) b.data()[i] = std::cos(0.01 * i);
  la::Mat serial = b, parallel = b;
  core::solve_rtdr_panels(f.r.view(), nullptr, serial.view(), panel, false);
  core::solve_rtdr_panels(f.r.view(), nullptr, parallel.view(), panel, true);
  EXPECT_EQ(0, std::memcmp(serial.data(), parallel.data(),
                           static_cast<std::size_t>(n * k) * sizeof(double)));
}

// ------------------------------------------------------------------ Service

ServiceOptions small_opts() {
  ServiceOptions o;
  o.cache_bytes = 64ull << 20;
  return o;
}

TEST(Service, SolveHitsCacheOnRepeat) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(32, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  SolveResult r1 = svc.solve(t, b);
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_LT(max_err_vs_ones(r1.x), 1e-10);
  SolveResult r2 = svc.solve(t, b);
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_EQ(r1.x, r2.x);  // bitwise: same factor, same panel shape
  const service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Service, DifferentProblemsMiss) {
  Service svc(small_opts());
  BlockToeplitz a = toeplitz::kms(24, 0.4);
  BlockToeplitz c = toeplitz::kms(24, 0.8);
  svc.solve(a, toeplitz::rhs_for_ones(a));
  svc.solve(c, toeplitz::rhs_for_ones(c));
  EXPECT_EQ(svc.stats().cache.misses, 2u);
  EXPECT_EQ(svc.stats().cache.hits, 0u);
}

TEST(Service, SolveManyMatchesSingleSolvesBitwise) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(40, 0.5);
  const la::index_t n = t.order(), k = 7;
  la::Mat b(n, k);
  for (la::index_t i = 0; i < n * k; ++i) b.data()[i] = std::sin(0.05 * i);
  la::Mat x = svc.solve_many(t, b.view());
  for (la::index_t j = 0; j < k; ++j) {
    std::vector<double> bj(b.view().col(j), b.view().col(j) + n);
    SolveResult r = svc.solve(t, bj);
    EXPECT_EQ(0, std::memcmp(r.x.data(), x.view().col(j),
                             static_cast<std::size_t>(n) * sizeof(double)))
        << "column " << j;
  }
}

TEST(Service, ConcurrentSubmitBitwiseIdenticalToSerial) {
  BlockToeplitz t = toeplitz::kms(64, 0.5);
  const la::index_t n = t.order();
  const int kReqs = 48;
  std::vector<std::vector<double>> rhs(kReqs);
  for (int r = 0; r < kReqs; ++r) {
    rhs[r].resize(static_cast<std::size_t>(n));
    for (la::index_t i = 0; i < n; ++i) {
      rhs[r][static_cast<std::size_t>(i)] = std::sin(0.02 * i + 0.3 * r);
    }
  }
  // Serial reference: one synchronous service, request at a time.
  std::vector<std::vector<double>> want(kReqs);
  {
    Service ref(small_opts());
    for (int r = 0; r < kReqs; ++r) want[r] = ref.solve(t, rhs[r]).x;
  }
  // Concurrent: many submitter threads racing into the batching dispatcher.
  Service svc(small_opts());
  std::vector<std::future<SolveResult>> futs(kReqs);
  {
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&, w] {
        for (int r = w; r < kReqs; r += 4) futs[r] = svc.submit(t, rhs[r]);
      });
    }
    for (auto& th : threads) th.join();
  }
  std::uint64_t batched = 0;
  for (int r = 0; r < kReqs; ++r) {
    SolveResult res = futs[static_cast<std::size_t>(r)].get();
    ASSERT_EQ(res.x.size(), want[r].size());
    EXPECT_EQ(0, std::memcmp(res.x.data(), want[r].data(),
                             res.x.size() * sizeof(double)))
        << "request " << r;
    batched = std::max<std::uint64_t>(batched, static_cast<std::uint64_t>(res.batch_cols));
  }
  svc.drain();
  const service::ServiceStats s = svc.stats();
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kReqs));
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.cache.misses, 1u + 0u);  // one factorization serves everything
}

TEST(Service, SubmitPropagatesFactorizationFailure) {
  Service svc(small_opts());
  BlockToeplitz bad = toeplitz::random_indefinite(12, 3, /*diag=*/1.2);
  std::vector<double> b(static_cast<std::size_t>(bad.order()), 1.0);
  std::future<SolveResult> fut = svc.submit(bad, b);
  EXPECT_THROW(fut.get(), core::NotPositiveDefinite);
  EXPECT_THROW(svc.solve(bad, b), core::NotPositiveDefinite);
}

TEST(Service, RhsSizeMismatchThrows) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(16, 0.5);
  std::vector<double> shorter(7, 1.0);
  EXPECT_THROW(svc.solve(t, shorter), std::invalid_argument);
  EXPECT_THROW(svc.submit(t, shorter), std::invalid_argument);
}

TEST(Service, NoCacheModeAlwaysMisses) {
  ServiceOptions o = small_opts();
  o.cache_enabled = false;
  Service svc(o);
  BlockToeplitz t = toeplitz::kms(24, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  EXPECT_FALSE(svc.solve(t, b).cache_hit);
  EXPECT_FALSE(svc.solve(t, b).cache_hit);
  EXPECT_EQ(svc.stats().cache.hits, 0u);
  EXPECT_EQ(svc.stats().cache.misses, 0u);  // cache never consulted
}

TEST(Service, TrySubmitAdmitsWhenQueueHasRoom) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(24, 0.5);
  std::future<SolveResult> fut;
  ASSERT_TRUE(svc.try_submit(t, toeplitz::rhs_for_ones(t), fut));
  EXPECT_LT(max_err_vs_ones(fut.get().x), 1e-10);
  EXPECT_EQ(svc.stats().rejected, 0u);
}

TEST(Service, StatsJsonHasAllSections) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(16, 0.5);
  svc.solve(t, toeplitz::rhs_for_ones(t));
  const std::string json = svc.stats_json().dump_compact();
  for (const char* key : {"\"cache\"", "\"queue\"", "\"batch\"", "\"hits\"", "\"misses\"",
                          "\"evictions\"", "\"hit_rate\"", "\"capacity\"", "\"rejected\"",
                          "\"rhs_panel\"", "\"refine\"", "\"sweeps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing from " << json;
  }
}

// ---------------------------------------------------------------- refinement

TEST(Service, RefinementImprovesResidualAndReportsPath) {
  BlockToeplitz t = toeplitz::kms(96, 0.9);
  const std::vector<double> b = toeplitz::rhs_for_ones(t);
  ServiceOptions off = small_opts();
  Service plain(off);
  const SolveResult r0 = plain.solve(t, b);
  EXPECT_EQ(r0.solver_path, "schur");
  EXPECT_EQ(r0.refine_steps, 0);
  EXPECT_EQ(plain.stats().refine_sweeps, 0u);

  ServiceOptions on = small_opts();
  on.refine_steps = 2;
  Service refined(on);
  const SolveResult r1 = refined.solve(t, b);
  EXPECT_EQ(r1.solver_path, "schur+refine");
  EXPECT_EQ(r1.refine_steps, 2);
  EXPECT_EQ(refined.stats().refine_sweeps, 2u);
  // Refinement must not make the answer worse, and on this conditioning it
  // should land at (or below) the unrefined error.
  EXPECT_LE(max_err_vs_ones(r1.x), max_err_vs_ones(r0.x) + 1e-14);
  EXPECT_LT(max_err_vs_ones(r1.x), 1e-10);
}

TEST(Service, RefinedAsyncMatchesRefinedSyncBitwise) {
  ServiceOptions opt = small_opts();
  opt.refine_steps = 1;
  BlockToeplitz t = toeplitz::kms(32, 0.5);
  const std::vector<double> b = toeplitz::rhs_for_ones(t);
  Service sync_svc(opt);
  const std::vector<double> want = sync_svc.solve(t, b).x;
  Service async_svc(opt);
  std::future<SolveResult> fut = async_svc.submit(t, b);
  const SolveResult res = fut.get();
  EXPECT_EQ(res.solver_path, "schur+refine");
  ASSERT_EQ(res.x.size(), want.size());
  EXPECT_EQ(std::memcmp(res.x.data(), want.data(), want.size() * sizeof(double)), 0);
}

// ---------------------------------------------------------------- env knobs

TEST(ServiceOptions, FromEnvOverridesAndClamps) {
  setenv("BST_SERVICE_CACHE_BYTES", "1048576", 1);
  setenv("BST_SERVICE_QUEUE", "7", 1);
  setenv("BST_SERVICE_BATCH", "3", 1);
  setenv("BST_SERVICE_PANEL", "0", 1);  // clamped to 1
  setenv("BST_SERVICE_NOCACHE", "1", 1);
  setenv("BST_SERVICE_REFINE", "2", 1);
  ServiceOptions o = ServiceOptions::from_env();
  EXPECT_EQ(o.cache_bytes, 1048576u);
  EXPECT_EQ(o.queue_capacity, 7u);
  EXPECT_EQ(o.max_batch, 3);
  EXPECT_EQ(o.rhs_panel, 1);
  EXPECT_FALSE(o.cache_enabled);
  EXPECT_EQ(o.refine_steps, 2);
  setenv("BST_SERVICE_NOCACHE", "0", 1);
  EXPECT_TRUE(ServiceOptions::from_env().cache_enabled);
  for (const char* v : {"BST_SERVICE_CACHE_BYTES", "BST_SERVICE_QUEUE", "BST_SERVICE_BATCH",
                        "BST_SERVICE_PANEL", "BST_SERVICE_NOCACHE", "BST_SERVICE_REFINE"}) {
    unsetenv(v);
  }
  ServiceOptions d = ServiceOptions::from_env();
  EXPECT_EQ(d.cache_bytes, ServiceOptions{}.cache_bytes);
  EXPECT_TRUE(d.cache_enabled);
  EXPECT_EQ(d.refine_steps, 0);
}

// ---------------------------------------------------------- metric counters

TEST(MetricsCounters, InternAddAndSnapshot) {
  const util::CtrId id = util::Metrics::counter("test_service_ctr");
  EXPECT_EQ(id, util::Metrics::counter("test_service_ctr"));  // interned
  const std::uint64_t before = util::Metrics::counter_value(id);
  util::Metrics::add(id);
  util::Metrics::add(id, 41);
  EXPECT_EQ(util::Metrics::counter_value(id), before + 42);
  bool found = false;
  for (const util::CounterStats& c : util::Metrics::counters_snapshot()) {
    if (c.name == "test_service_ctr") {
      found = true;
      EXPECT_GE(c.value, 42u);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------- per-request observability

TEST(Service, RequestIdsAreMonotoneAndNonzero) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(24, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  const SolveResult r1 = svc.solve(t, b);
  const SolveResult r2 = svc.solve(t, b);
  auto fut = svc.submit(t, b);
  const SolveResult r3 = fut.get();
  EXPECT_GT(r1.req_id, 0u);
  EXPECT_GT(r2.req_id, r1.req_id);
  EXPECT_GT(r3.req_id, r2.req_id);
}

TEST(Service, SolveResultCarriesPhaseTimings) {
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(32, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  const SolveResult miss = svc.solve(t, b);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_GT(miss.factor_ns, 0u);  // a miss pays the factorization
  EXPECT_GT(miss.solve_ns, 0u);
  const SolveResult hit = svc.solve(t, b);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_GT(hit.solve_ns, 0u);
  // Async requests additionally report their admission-to-dispatch wait.
  auto fut = svc.submit(t, b);
  const SolveResult async = fut.get();
  EXPECT_GT(async.done_ns, 0u);
  EXPECT_GT(async.req_id, 0u);
}

TEST(Service, SlowRequestsCountedAgainstThreshold) {
  ServiceOptions o = small_opts();
  o.slow_ms = 1e-6;  // ~1 ns threshold: everything is "slow" (0 disables)
  Service svc(o);
  BlockToeplitz t = toeplitz::kms(24, 0.5);
  svc.solve(t, toeplitz::rhs_for_ones(t));
  EXPECT_EQ(svc.stats().slow, 1u);
  const std::string json = svc.stats_json().dump_compact();
  EXPECT_NE(json.find("\"slow\""), std::string::npos) << json;

  ServiceOptions fast = small_opts();
  fast.slow_ms = 1e9;  // nothing is slow
  Service svc2(fast);
  svc2.solve(t, toeplitz::rhs_for_ones(t));
  EXPECT_EQ(svc2.stats().slow, 0u);
}

TEST(Service, GaugesTrackCacheAndQueueState) {
  const util::GaugeId resident = util::Metrics::gauge("service_cache_resident_bytes");
  const util::GaugeId depth = util::Metrics::gauge("service_queue_depth");
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(32, 0.5);
  svc.solve(t, toeplitz::rhs_for_ones(t));
  EXPECT_GT(util::Metrics::gauge_value(resident), 0);  // the factor is resident
  svc.drain();
  EXPECT_EQ(util::Metrics::gauge_value(depth), 0);  // drained queue reads empty
}

TEST(ServiceOptions, SlowAndTraceKnobsFromEnv) {
  setenv("BST_SERVICE_SLOW_MS", "7.5", 1);
  setenv("BST_SERVICE_TRACE_REQS", "3", 1);
  const ServiceOptions o = ServiceOptions::from_env();
  EXPECT_NEAR(o.slow_ms, 7.5, 1e-12);
  EXPECT_EQ(o.trace_requests, 3u);
  unsetenv("BST_SERVICE_SLOW_MS");
  unsetenv("BST_SERVICE_TRACE_REQS");
  EXPECT_NEAR(ServiceOptions::from_env().slow_ms, ServiceOptions{}.slow_ms, 1e-12);
}

TEST(MetricsCounters, ServiceCountersAccumulate) {
  const util::CtrId hits = util::Metrics::counter("service_cache_hits");
  const util::CtrId misses = util::Metrics::counter("service_cache_misses");
  const std::uint64_t h0 = util::Metrics::counter_value(hits);
  const std::uint64_t m0 = util::Metrics::counter_value(misses);
  Service svc(small_opts());
  BlockToeplitz t = toeplitz::kms(16, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  svc.solve(t, b);
  svc.solve(t, b);
  EXPECT_EQ(util::Metrics::counter_value(hits), h0 + 1);
  EXPECT_EQ(util::Metrics::counter_value(misses), m0 + 1);
}

}  // namespace
}  // namespace bst
