// Strided-view coverage: every la/ kernel must behave identically when its
// operands are sub-blocks of larger arrays (ld > rows) -- the way the core
// algorithm actually calls them.
#include <gtest/gtest.h>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/norms.h"
#include "util/rng.h"

namespace bst::la {
namespace {

// Embeds an r x c matrix at offset (2, 3) of a larger poisoned array and
// returns the big array; the view must ignore the poison.
Mat embed(CView small, Mat& big, index_t i0, index_t j0) {
  for (index_t j = 0; j < big.cols(); ++j)
    for (index_t i = 0; i < big.rows(); ++i) big(i, j) = 1e9;  // poison
  View dst = big.block(i0, j0, small.rows(), small.cols());
  copy(small, dst);
  return big;
}

Mat random_matrix(index_t r, index_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Mat a(r, c);
  for (index_t j = 0; j < c; ++j)
    for (index_t i = 0; i < r; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

class StridedGemm : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StridedGemm, SubBlockOperandsMatchContiguous) {
  const auto [tai, tbi] = GetParam();
  const Op ta = tai ? Op::Trans : Op::None;
  const Op tb = tbi ? Op::Trans : Op::None;
  const index_t m = 5, n = 4, k = 6;
  Mat a0 = (ta == Op::None) ? random_matrix(m, k, 1) : random_matrix(k, m, 1);
  Mat b0 = (tb == Op::None) ? random_matrix(k, n, 2) : random_matrix(n, k, 2);
  Mat c0 = random_matrix(m, n, 3);

  // Contiguous reference.
  Mat cref(m, n);
  copy(c0.view(), cref.view());
  gemm(ta, tb, 1.5, a0.view(), b0.view(), 0.5, cref.view());

  // Embedded operands.
  Mat abig(a0.rows() + 4, a0.cols() + 5), bbig(b0.rows() + 3, b0.cols() + 2),
      cbig(m + 6, n + 1);
  embed(a0.view(), abig, 2, 3);
  embed(b0.view(), bbig, 1, 0);
  embed(c0.view(), cbig, 4, 1);
  gemm(ta, tb, 1.5, abig.block(2, 3, a0.rows(), a0.cols()),
       bbig.block(1, 0, b0.rows(), b0.cols()), 0.5, cbig.block(4, 1, m, n));
  EXPECT_LT(max_diff(cbig.block(4, 1, m, n), cref.view()), 1e-14);
  // The poison around the destination must be untouched.
  EXPECT_DOUBLE_EQ(cbig(3, 1), 1e9);
  EXPECT_DOUBLE_EQ(cbig(4 + m, 1), 1e9);
  EXPECT_DOUBLE_EQ(cbig(4, 0), 1e9);
}

INSTANTIATE_TEST_SUITE_P(Ops, StridedGemm,
                         ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(StridedKernels, GemvOnSubBlock) {
  Mat a0 = random_matrix(4, 3, 9);
  std::vector<double> x{1.0, -1.0, 0.5}, yref(4, 0.25), y(4, 0.25);
  gemv(false, 2.0, a0.view(), x.data(), 1.0, yref.data());
  Mat big(10, 10);
  embed(a0.view(), big, 5, 6);
  gemv(false, 2.0, big.block(5, 6, 4, 3), x.data(), 1.0, y.data());
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)], yref[static_cast<std::size_t>(i)]);
}

TEST(StridedKernels, GerOnSubBlock) {
  Mat a0 = random_matrix(3, 3, 11);
  std::vector<double> x{1, 2, 3}, y{4, 5, 6};
  Mat ref(3, 3);
  copy(a0.view(), ref.view());
  ger(0.5, x.data(), y.data(), ref.view());
  Mat big(8, 8);
  embed(a0.view(), big, 2, 2);
  ger(0.5, x.data(), y.data(), big.block(2, 2, 3, 3));
  EXPECT_LT(max_diff(big.block(2, 2, 3, 3), ref.view()), 1e-15);
  EXPECT_DOUBLE_EQ(big(1, 2), 1e9);
}

TEST(StridedKernels, TrsmOnSubBlock) {
  util::Rng rng(13);
  Mat t0(4, 4);
  for (index_t j = 0; j < 4; ++j) {
    for (index_t i = j; i < 4; ++i) t0(i, j) = rng.uniform(-1, 1);
    t0(j, j) = 3.0;
  }
  Mat b0 = random_matrix(4, 3, 14);
  Mat ref(4, 3);
  copy(b0.view(), ref.view());
  trsm(Side::Left, Uplo::Lower, Op::None, Diag::NonUnit, 1.0, t0.view(), ref.view());
  Mat tbig(9, 9), bbig(7, 7);
  embed(t0.view(), tbig, 3, 3);
  embed(b0.view(), bbig, 1, 2);
  trsm(Side::Left, Uplo::Lower, Op::None, Diag::NonUnit, 1.0, tbig.block(3, 3, 4, 4),
       bbig.block(1, 2, 4, 3));
  EXPECT_LT(max_diff(bbig.block(1, 2, 4, 3), ref.view()), 1e-13);
}

TEST(StridedKernels, CholeskyOnSubBlock) {
  util::Rng rng(17);
  Mat b = random_matrix(5, 5, 18);
  Mat a0(5, 5);
  gemm(Op::None, Op::Trans, 1.0, b.view(), b.view(), 0.0, a0.view());
  for (index_t i = 0; i < 5; ++i) a0(i, i) += 2.0;
  Mat ref(5, 5);
  copy(a0.view(), ref.view());
  ASSERT_TRUE(cholesky_lower(ref.view(), /*block=*/2));
  Mat big(12, 12);
  embed(a0.view(), big, 6, 4);
  ASSERT_TRUE(cholesky_lower(big.block(6, 4, 5, 5), /*block=*/2));
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = j; i < 5; ++i) EXPECT_NEAR(big(6 + i, 4 + j), ref(i, j), 1e-13);
}

}  // namespace
}  // namespace bst::la
