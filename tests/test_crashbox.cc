// Tests for the post-mortem layer: async-signal-safe writers, the crashbox
// request table and dump/decode round trip (util/crashbox.h +
// util/postmortem.h), the flight recorder's unmatched-end accounting, and
// BST_FAULT injection (util/fault.h) including forked signal-death smoke
// tests that assert the crash report decodes.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/crashbox.h"
#include "util/fault.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/postmortem.h"
#include "util/trace.h"

namespace bst::util {
namespace {

// Fresh per-test report directory under the build tree.
std::string make_crash_dir(const char* tag) {
  std::string dir = "crashbox_test_" + std::string(tag);
  ::mkdir(dir.c_str(), 0777);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Restores a disarmed fault no matter how the test exits.
struct FaultDisarm {
  ~FaultDisarm() {
    ::unsetenv("BST_FAULT");
    ::unsetenv("BST_FAULT_SLOW_MS");
    ::unsetenv("BST_FAULT_HANG_MS");
    Fault::reload();
  }
};

TEST(Sigsafe, WritersFormatIntegersWithoutStdio) {
  char tmpl[] = "sigsafe_XXXXXX";
  const int fd = ::mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  sigsafe::write_str(fd, "u ");
  sigsafe::write_u64(fd, 0);
  sigsafe::write_str(fd, " ");
  sigsafe::write_u64(fd, 18446744073709551615ull);
  sigsafe::write_str(fd, "\ni ");
  sigsafe::write_i64(fd, -42);
  sigsafe::write_str(fd, " ");
  sigsafe::write_i64(fd, INT64_MIN);
  sigsafe::write_str(fd, "\n");
  ::close(fd);
  EXPECT_EQ(read_file(tmpl), "u 0 18446744073709551615\ni -42 -9223372036854775808\n");
  ::unlink(tmpl);
}

TEST(Crashbox, PhaseNamesAreStable) {
  EXPECT_STREQ(req_phase_name(ReqPhase::kQueued), "queued");
  EXPECT_STREQ(req_phase_name(ReqPhase::kFactor), "factor");
  EXPECT_STREQ(req_phase_name(ReqPhase::kSolve), "solve");
}

TEST(Crashbox, RequestTableLifecycle) {
  const std::string dir = make_crash_dir("reqs");
  ASSERT_TRUE(Crashbox::install(dir.c_str()));
  const int slot = Crashbox::request_begin(1001, ReqPhase::kQueued);
  ASSERT_GE(slot, 0);
  Crashbox::request_phase(slot, ReqPhase::kSolve);
  Crashbox::request_end(slot);
  // id 0 marks a free slot, so a zero-id request is refused, not recorded.
  EXPECT_EQ(Crashbox::request_begin(0, ReqPhase::kQueued), -1);
  // no-ops on the -1 sentinel
  Crashbox::request_phase(-1, ReqPhase::kSolve);
  Crashbox::request_end(-1);
}

TEST(Crashbox, DumpDecodeRoundTrip) {
  Tracer::reset();
  const CtrId ctr = Metrics::counter("crashbox_test_counter");
  const GaugeId gauge = Metrics::gauge("crashbox_test_gauge");
  Metrics::add(ctr, 7);
  Metrics::gauge_set(gauge, -3);

  const std::string dir = make_crash_dir("roundtrip");
  ASSERT_TRUE(Crashbox::install(dir.c_str()));
  const std::string path = Crashbox::report_path();
  ASSERT_FALSE(path.empty());

  const char tick[] = R"({"seq":9,"qps":12.5})";
  Crashbox::set_last_tick(tick, sizeof tick - 1);
  const int slot = Crashbox::request_begin(42, ReqPhase::kFactor);
  ASSERT_GE(slot, 0);
  Crashbox::request_phase(slot, ReqPhase::kSolve);

  // One closed span and one still-open span on this thread's ring.
  Tracer::enable();
  FlightRecorder::enable(64);
  const PhaseId closed = Tracer::phase("crashbox_test_span");
  const PhaseId open = Tracer::phase("crashbox_test_open");
  { TraceSpan span(closed); }
  FlightRecorder::begin(open, TraceClock::now_ns(), 0, 0);

  EXPECT_TRUE(Crashbox::dump(0, "unit-test"));
  EXPECT_FALSE(Crashbox::dump(0, "second"));  // one report per install

  FlightRecorder::end(open, TraceClock::now_ns(), 0, 0);
  FlightRecorder::disable();
  Tracer::disable();

  const CrashReport rep = read_crash_report(path);
  EXPECT_EQ(rep.signal, 0);
  EXPECT_EQ(rep.reason, "unit-test");
  EXPECT_FALSE(rep.truncated);
  EXPECT_GT(rep.ts_ns, 0u);
  EXPECT_EQ(rep.event_size, sizeof(FlightEvent));
  EXPECT_EQ(rep.last_tick, tick);
  EXPECT_FALSE(rep.tick_torn);

  bool saw_pid = false;
  for (const auto& [key, value] : rep.provenance) {
    if (key == "pid") {
      saw_pid = true;
      EXPECT_EQ(value, std::to_string(::getpid()));
    }
  }
  EXPECT_TRUE(saw_pid);

  bool saw_ctr = false, saw_gauge = false;
  for (const auto& [name, value] : rep.counters) {
    if (name == "crashbox_test_counter") {
      saw_ctr = true;
      EXPECT_EQ(value, 7u);
    }
  }
  for (const auto& [name, value] : rep.gauges) {
    if (name == "crashbox_test_gauge") {
      saw_gauge = true;
      EXPECT_EQ(value, -3);
    }
  }
  EXPECT_TRUE(saw_ctr);
  EXPECT_TRUE(saw_gauge);

  bool saw_req = false;
  for (const CrashRequest& r : rep.requests) {
    if (r.id == 42) {
      saw_req = true;
      EXPECT_EQ(r.phase, "solve");
    }
  }
  EXPECT_TRUE(saw_req);

  // The interned phase names were mirrored and the ring carries the span.
  EXPECT_EQ(rep.phase_name(closed), "crashbox_test_span");
  bool saw_span = false;
  for (const CrashRing& ring : rep.rings) {
    for (const FlightEvent& e : ring.events) {
      if (e.phase == closed) saw_span = true;
    }
  }
  EXPECT_TRUE(saw_span);

  // Summary and trace export render from the decoded report alone.
  const std::string summary = crash_summary(rep);
  EXPECT_NE(summary.find("req 42"), std::string::npos);
  EXPECT_NE(summary.find("crashbox_test_counter"), std::string::npos);
  EXPECT_NE(summary.find(R"({"seq":9)"), std::string::npos);
  std::ostringstream trace;
  write_crash_trace(rep, trace);
  EXPECT_NE(trace.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(trace.str().find("crashbox_test_span"), std::string::npos);

  Crashbox::request_end(slot);
  Tracer::reset();
}

TEST(Postmortem, UnreadableReportThrows) {
  EXPECT_THROW(read_crash_report("definitely_missing.bstcrash"), std::runtime_error);
}

TEST(Postmortem, NonCrashFileThrows) {
  char tmpl[] = "notacrash_XXXXXX";
  const int fd = ::mkstemp(tmpl);
  ASSERT_GE(fd, 0);
  const char junk[] = "this is not a crash report\n";
  ASSERT_EQ(::write(fd, junk, sizeof junk - 1), static_cast<ssize_t>(sizeof junk - 1));
  ::close(fd);
  EXPECT_THROW(read_crash_report(tmpl), std::runtime_error);
  ::unlink(tmpl);
}

// An End whose Begin was overwritten by ring wrap is counted (not silently
// dropped): cap-4 ring sees B1 b2 e2 b3 e3 E1; the window keeps the last
// four events [e2 b3 e3 E1], in which e2 and E1 open at depth 0.
TEST(FlightRecorderWrap, SnapshotCountsUnmatchedEnds) {
  Tracer::reset();
  Tracer::enable();
  FlightRecorder::enable(4);
  const PhaseId p1 = Tracer::phase("crashbox_wrap_outer");
  const PhaseId p2 = Tracer::phase("crashbox_wrap_inner");
  FlightRecorder::begin(p1, 10, 0, 0);
  FlightRecorder::begin(p2, 11, 0, 0);
  FlightRecorder::end(p2, 12, 0, 0);
  FlightRecorder::begin(p2, 13, 0, 0);
  FlightRecorder::end(p2, 14, 0, 0);
  FlightRecorder::end(p1, 15, 0, 0);
  const std::vector<ThreadEvents> threads = FlightRecorder::snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const ThreadEvents& te = threads[0];
  ASSERT_EQ(te.events.size(), 4u);
  EXPECT_EQ(te.unmatched_ends, 2u);
  EXPECT_EQ(te.dropped, 4u);  // 2 wrap-lost + 2 unmatched ends
  FlightRecorder::disable();
  Tracer::disable();
  Tracer::reset();
}

TEST(Fault, DisarmedByDefaultAndSlowFiresEveryHit) {
  FaultDisarm disarm;
  ::unsetenv("BST_FAULT");
  Fault::reload();
  EXPECT_FALSE(Fault::armed());
  EXPECT_STREQ(Fault::describe(), "");
  Fault::fire("admission");  // no-op

  ::setenv("BST_FAULT", "admission:slow:2", 1);
  ::setenv("BST_FAULT_SLOW_MS", "20", 1);
  Fault::reload();
  EXPECT_TRUE(Fault::armed());
  EXPECT_STREQ(Fault::describe(), "admission:slow:2");
  Fault::fire("dispatch");  // other sites stay untouched

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  Fault::fire("admission");  // hit 1 < count: no delay
  const auto t1 = clock::now();
  Fault::fire("admission");  // hit 2 == count: sleeps
  Fault::fire("admission");  // slow keeps firing past count
  const auto t2 = clock::now();
  EXPECT_LT(t1 - t0, std::chrono::milliseconds(15));
  EXPECT_GE(t2 - t1, std::chrono::milliseconds(30));
}

// Forked smoke tests: the child arms a fault, fires it, and dies on the
// expected signal; the parent asserts the crash report it left decodes to
// the victim request.  A manual fork keeps the report path predictable
// (crash_<childpid>.bstcrash) without death-test re-execution.
std::string child_report(const std::string& dir, const char* fault_spec, int expect_sig) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("BST_FAULT", fault_spec, 1);
    Fault::reload();
    Crashbox::install(dir.c_str());
    Crashbox::request_begin(77, ReqPhase::kFactor);
    Fault::fire("smoke");
    ::_exit(9);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFSIGNALED(status));
  if (WIFSIGNALED(status)) {
    EXPECT_EQ(WTERMSIG(status), expect_sig);
  }
  return dir + "/crash_" + std::to_string(pid) + ".bstcrash";
}

TEST(FaultSmoke, InjectedSegfaultLeavesDecodableReport) {
  const std::string dir = make_crash_dir("segv");
  const std::string path = child_report(dir, "smoke:crash", SIGSEGV);
  const CrashReport rep = read_crash_report(path);
  EXPECT_EQ(rep.signal, SIGSEGV);
  EXPECT_EQ(rep.signal_name, "SIGSEGV");
  bool saw_victim = false;
  for (const CrashRequest& r : rep.requests) {
    if (r.id == 77 && r.phase == "factor") saw_victim = true;
  }
  EXPECT_TRUE(saw_victim);
  EXPECT_NE(crash_summary(rep).find("SIGSEGV"), std::string::npos);
}

TEST(FaultSmoke, InjectedFpTrapLeavesDecodableReport) {
  const std::string dir = make_crash_dir("fpe");
  const std::string path = child_report(dir, "smoke:fp-trap", SIGFPE);
  const CrashReport rep = read_crash_report(path);
  EXPECT_EQ(rep.signal, SIGFPE);
  EXPECT_EQ(rep.signal_name, "SIGFPE");
}

}  // namespace
}  // namespace bst::util
