// Tests for the one-call solver facade and the block Levinson baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/block_levinson.h"
#include "baseline/dense_solver.h"
#include "baseline/levinson.h"
#include "core/solve.h"
#include "core/solver.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst {
namespace {

using core::SolvePath;
using toeplitz::BlockToeplitz;

double max_err_vs_ones(const std::vector<double>& x) {
  double e = 0.0;
  for (double v : x) e = std::max(e, std::fabs(v - 1.0));
  return e;
}

TEST(ToeplitzSolve, SpdTakesSpdPath) {
  BlockToeplitz t = toeplitz::random_spd_block(3, 8, 2, 5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveReport rep = core::toeplitz_solve(t, b);
  EXPECT_EQ(rep.path, SolvePath::Spd);
  EXPECT_FALSE(rep.refined);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-10);
  EXPECT_GT(rep.factor_flops, 0u);
}

TEST(ToeplitzSolve, IndefiniteFallsBack) {
  BlockToeplitz t = toeplitz::random_indefinite(12, 3, /*diag=*/1.2);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveReport rep = core::toeplitz_solve(t, b);
  EXPECT_EQ(rep.path, SolvePath::Indefinite);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-7);
}

TEST(ToeplitzSolve, SingularMinorPerturbsAndRefines) {
  BlockToeplitz t = toeplitz::paper_example_6x6();
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveReport rep = core::toeplitz_solve(t, b);
  EXPECT_EQ(rep.path, SolvePath::IndefinitePerturbed);
  EXPECT_TRUE(rep.refined);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.perturbations, 1u);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-12);
  EXPECT_GE(rep.final_residual, 0.0);
  EXPECT_LT(rep.final_residual, 1e-12);
}

TEST(ToeplitzSolve, AlwaysRefineOnSpd) {
  BlockToeplitz t = toeplitz::kms(16, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveOptions opt;
  opt.always_refine = true;
  core::SolveReport rep = core::toeplitz_solve(t, b, opt);
  EXPECT_TRUE(rep.refined);
  EXPECT_LE(rep.refinement_steps, 1);
  EXPECT_LT(rep.final_residual, 1e-11);
}

TEST(ToeplitzSolve, AssumeIndefiniteSkipsSpd) {
  BlockToeplitz t = toeplitz::kms(10, 0.5);  // SPD, but force the other path
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveOptions opt;
  opt.assume_indefinite = true;
  core::SolveReport rep = core::toeplitz_solve(t, b, opt);
  EXPECT_EQ(rep.path, SolvePath::Indefinite);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-9);
}

TEST(ToeplitzSolve, PathNames) {
  EXPECT_STREQ(core::to_string(SolvePath::Spd), "spd");
  EXPECT_STREQ(core::to_string(SolvePath::Indefinite), "indefinite");
  EXPECT_STREQ(core::to_string(SolvePath::IndefinitePerturbed), "indefinite+perturbed");
  EXPECT_STREQ(core::to_string(SolvePath::Pcg), "pcg");
}

TEST(SolverPolicy, SmallSystemsStayOnSchur) {
  BlockToeplitz t = toeplitz::kms(256, 0.5);
  core::PolicyDecision dec = core::choose_solver(t, core::SolverPolicy{});
  EXPECT_EQ(dec.chosen, core::SolverKind::Schur);
  EXPECT_EQ(dec.reason, "small");
  EXPECT_EQ(dec.condest, -1.0);       // never probed
  EXPECT_EQ(dec.precond, nullptr);    // never built
}

TEST(SolverPolicy, LargeWellConditionedCrossesToPcg) {
  BlockToeplitz t = toeplitz::kms(512, 0.5);
  core::SolverPolicy pol;
  pol.pcg_min_n = 128;
  core::PolicyDecision dec = core::choose_solver(t, pol);
  EXPECT_EQ(dec.chosen, core::SolverKind::Pcg);
  EXPECT_EQ(dec.reason, "crossover");
  EXPECT_GE(dec.condest, 1.0);
  ASSERT_NE(dec.precond, nullptr);
  EXPECT_TRUE(dec.precond->positive_definite());
}

TEST(SolverPolicy, IndefiniteProbeStaysOnSchur) {
  BlockToeplitz t = toeplitz::singular_minor_family(256, 9);
  core::SolverPolicy pol;
  pol.pcg_min_n = 64;
  core::PolicyDecision dec = core::choose_solver(t, pol);
  EXPECT_EQ(dec.chosen, core::SolverKind::Schur);
  EXPECT_EQ(dec.reason, "not_spd");
}

TEST(SolverPolicy, IllConditionedProbeStaysOnSchur) {
  BlockToeplitz t = toeplitz::kms(256, 0.9);
  core::SolverPolicy pol;
  pol.pcg_min_n = 64;
  pol.pcg_max_cond = 2.0;  // anything real fails this on purpose
  core::PolicyDecision dec = core::choose_solver(t, pol);
  EXPECT_EQ(dec.chosen, core::SolverKind::Schur);
  EXPECT_EQ(dec.reason, "ill_conditioned");
  EXPECT_GT(dec.condest, 2.0);
}

TEST(SolverPolicy, FromEnvOverrides) {
  setenv("BST_SOLVER", "pcg", 1);
  setenv("BST_SOLVER_MIN_N", "123", 1);
  setenv("BST_SOLVER_MAX_COND", "1e4", 1);
  core::SolverPolicy pol = core::SolverPolicy::from_env();
  unsetenv("BST_SOLVER");
  unsetenv("BST_SOLVER_MIN_N");
  unsetenv("BST_SOLVER_MAX_COND");
  EXPECT_EQ(pol.kind, core::SolverKind::Pcg);
  EXPECT_EQ(pol.pcg_min_n, 123);
  EXPECT_DOUBLE_EQ(pol.pcg_max_cond, 1e4);
  EXPECT_THROW(core::parse_solver_kind("bogus"), std::invalid_argument);
}

TEST(ToeplitzSolve, PcgPathSolvesLargeWellConditioned) {
  BlockToeplitz t = toeplitz::kms(1024, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveOptions opt;
  opt.policy.pcg_min_n = 256;
  core::SolveReport rep = core::toeplitz_solve(t, b, opt);
  EXPECT_EQ(rep.path, SolvePath::Pcg);
  EXPECT_EQ(rep.solver_path, "pcg");
  EXPECT_EQ(rep.policy_reason, "crossover");
  EXPECT_GT(rep.pcg_iterations, 0);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.final_residual, 0.0);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-9);
}

TEST(ToeplitzSolve, ForcedPcgOnIndefiniteFallsBackToSchur) {
  // Forcing PCG onto a matrix whose Strang circulant is not SPD must land
  // on the Schur path with mandatory refinement, flagged as the fallback,
  // with a watchdog warning explaining why.
  BlockToeplitz t = toeplitz::singular_minor_family(128, 9);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveOptions opt;
  opt.policy.kind = core::SolverKind::Pcg;
  util::Tracer::enable();
  util::Watchdog::reset();
  core::SolveReport rep = core::toeplitz_solve(t, b, opt);
  util::Tracer::disable();
  EXPECT_EQ(rep.solver_path, "pcg+fallback");
  EXPECT_TRUE(rep.refined);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-8);
  bool warned = false;
  for (const auto& w : util::Watchdog::snapshot()) {
    if (w.code == "pcg_precond_not_spd" || w.code == "pcg_no_convergence" ||
        w.code == "pcg_breakdown") {
      warned = true;
    }
  }
  util::Watchdog::reset();
  EXPECT_TRUE(warned);
}

TEST(ToeplitzSolve, ForcedSchurSkipsProbeOnLargeSystem) {
  BlockToeplitz t = toeplitz::kms(512, 0.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  core::SolveOptions opt;
  opt.policy.kind = core::SolverKind::Schur;
  opt.policy.pcg_min_n = 64;  // would cross over under Auto
  core::SolveReport rep = core::toeplitz_solve(t, b, opt);
  EXPECT_EQ(rep.path, SolvePath::Spd);
  EXPECT_EQ(rep.solver_path, "schur");
  EXPECT_EQ(rep.policy_reason, "forced");
  EXPECT_EQ(rep.condest, -1.0);
  EXPECT_LT(max_err_vs_ones(rep.x), 1e-9);
}

TEST(ToeplitzSolve, ReflectorNormTracking) {
  // Section 8.2: a perturbed factorization must exhibit transforms of norm
  // ~ 1/delta (delta ~ 1e-5): large_reflectors counts them (paper: two).
  BlockToeplitz t = toeplitz::paper_example_6x6();
  core::IndefiniteOptions opt;
  opt.delta = 1e-5;
  core::LdlFactor f = core::block_schur_indefinite(t, opt);
  EXPECT_GE(f.large_reflectors, 1);
  EXPECT_LE(f.large_reflectors, 4);
  EXPECT_GT(f.max_reflector_norm, 1e2);   // ~ 1/sqrt(delta) or larger
  // A clean SPD factorization has modest transform norms and none large.
  core::LdlFactor g = core::block_schur_indefinite(toeplitz::kms(16, 0.5));
  EXPECT_EQ(g.large_reflectors, 0);
  EXPECT_LT(g.max_reflector_norm, 1e3);
}

// ---- block Levinson baseline ------------------------------------------

class BlockLevinsonSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockLevinsonSweep, MatchesDenseSolve) {
  const auto [m, p] = GetParam();
  BlockToeplitz t =
      toeplitz::random_spd_block(m, p, 2, static_cast<std::uint64_t>(7 * m + p));
  util::Rng rng(static_cast<std::uint64_t>(m + p));
  std::vector<double> b(static_cast<std::size_t>(t.order()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  std::vector<double> x = baseline::block_levinson_solve(t, b);
  std::vector<double> xd = baseline::dense_spd_solve(t.dense().view(), b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x[i], xd[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockLevinsonSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5),
                                            ::testing::Values(1, 2, 3, 4, 8, 16)));

TEST(BlockLevinson, ScalarCaseAgreesWithLevinson) {
  BlockToeplitz t = toeplitz::kms(24, 0.6);
  std::vector<double> row(24);
  for (la::index_t j = 0; j < 24; ++j) row[static_cast<std::size_t>(j)] = t.entry(0, j);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> xb = baseline::block_levinson_solve(t, b);
  std::vector<double> xs = baseline::levinson_solve(row, b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(xb[i], xs[i], 1e-9);
}

TEST(BlockLevinson, IndefiniteWithNonsingularMinors) {
  BlockToeplitz t = toeplitz::random_indefinite(12, 11, /*diag=*/1.5);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> x = baseline::block_levinson_solve(t, b);
  EXPECT_LT(max_err_vs_ones(x), 1e-7);
}

TEST(BlockLevinson, ThrowsOnSingularMinor) {
  BlockToeplitz t = toeplitz::paper_example_6x6();
  std::vector<double> b(6, 1.0);
  EXPECT_THROW(baseline::block_levinson_solve(t, b), std::runtime_error);
}

TEST(BlockLevinson, RhsSizeMismatchThrows) {
  BlockToeplitz t = toeplitz::kms(8, 0.5);
  EXPECT_THROW(baseline::block_levinson_solve(t, std::vector<double>(7, 1.0)),
               std::invalid_argument);
}

TEST(BlockLevinson, AgreesWithBlockSchurSolve) {
  BlockToeplitz t = toeplitz::random_spd_block(4, 10, 3, 17);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  std::vector<double> xl = baseline::block_levinson_solve(t, b);
  core::SchurFactor f = core::block_schur_factor(t);
  std::vector<double> xs = core::solve_spd(f, b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(xl[i], xs[i], 1e-8);
}

}  // namespace
}  // namespace bst
