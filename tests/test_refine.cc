// Tests for iterative refinement (paper section 8): the worked 6x6 example
// with its published error trajectory, plus random singular-minor families.
#include <gtest/gtest.h>

#include <cmath>

#include "core/indefinite.h"
#include "core/refine.h"
#include "core/schur.h"
#include "core/solve.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;
using toeplitz::MatVec;

double error_norm(const std::vector<double>& x, const std::vector<double>& xtrue) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - xtrue[i];
    s += d * d;
  }
  return std::sqrt(s);
}

TEST(Refine, PaperExampleErrorTrajectory) {
  // Paper: x = ones(6); ||x - x1|| = 3.6e-5, after one refinement step
  // 7.0e-10, after two 1.6e-14 ~ machine precision.
  BlockToeplitz t = toeplitz::paper_example_6x6();
  IndefiniteOptions opt;
  opt.delta = 1e-5;
  LdlFactor f = block_schur_indefinite(t, opt);
  ASSERT_EQ(f.perturbations.size(), 1u);

  const std::vector<double> xtrue(6, 1.0);
  std::vector<double> b;
  MatVec op(t);
  op.apply(xtrue, b);
  // Check the paper's printed right-hand side (eq. after (50)).
  EXPECT_NEAR(b[0], 3.5919, 1e-12);
  EXPECT_NEAR(b[2], 4.7305, 1e-12);

  // Step errors: solve once, then refine manually to observe the decay.
  std::vector<double> x1 = solve_ldl(f, b);
  const double e1 = error_norm(x1, xtrue);
  EXPECT_GT(e1, 1e-6);
  EXPECT_LT(e1, 1e-3);  // paper: 3.6e-5

  RefineResult res = solve_refined(op, [&](const std::vector<double>& rhs,
                                           std::vector<double>& out) { out = solve_ldl(f, rhs); },
                                   b);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 4);  // paper: 2 steps suffice
  EXPECT_LT(error_norm(res.x, xtrue), 1e-11);
  // The residual history must decay monotonically by orders of magnitude.
  ASSERT_GE(res.residual_norms.size(), 2u);
  EXPECT_LT(res.residual_norms[1], res.residual_norms[0] * 1e-2);
}

TEST(Refine, ConvergesForSingularMinorFamilies) {
  for (std::uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    BlockToeplitz t = toeplitz::singular_minor_family(32, seed);
    LdlFactor f = block_schur_indefinite(t);
    std::vector<double> b = toeplitz::rhs_for_ones(t);
    MatVec op(t);
    RefineResult res = solve_refined(
        op, [&](const std::vector<double>& rhs, std::vector<double>& out) {
          out = solve_ldl(f, rhs);
        },
        b);
    EXPECT_TRUE(res.converged) << "seed " << seed;
    EXPECT_LE(res.iterations, 6) << "seed " << seed;
    const std::vector<double> ones(32, 1.0);
    EXPECT_LT(error_norm(res.x, ones) / std::sqrt(32.0), 1e-9) << "seed " << seed;
  }
}

TEST(Refine, NoRefinementNeededForWellConditionedSpd) {
  BlockToeplitz t = toeplitz::kms(16, 0.3);
  SchurFactor f = block_schur_factor(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  MatVec op(t);
  RefineResult res = solve_refined(
      op, [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_spd(f, rhs);
      },
      b);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1);
}

TEST(Refine, FftResidualsGiveSameResult) {
  BlockToeplitz t = toeplitz::singular_minor_family(64, 9);
  LdlFactor f = block_schur_indefinite(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  auto solver = [&](const std::vector<double>& rhs, std::vector<double>& out) {
    out = solve_ldl(f, rhs);
  };
  RefineResult direct = solve_refined(MatVec(t, toeplitz::MatVecMode::Direct), solver, b);
  RefineResult fft = solve_refined(MatVec(t, toeplitz::MatVecMode::Fft), solver, b);
  ASSERT_TRUE(direct.converged);
  ASSERT_TRUE(fft.converged);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(direct.x[i], fft.x[i], 1e-9);
}

// FFT-vs-dense agreement across every reflector representation: the
// residual route must not change the refined answer no matter which
// factorization produced the solver (documented bound: 1e-9 on a
// moderately conditioned SPD system, see docs/README.md SOLVERS).
class RefineFftAcrossReps : public ::testing::TestWithParam<core::Representation> {};

TEST_P(RefineFftAcrossReps, FftResidualsMatchDense) {
  BlockToeplitz t = toeplitz::kms(96, 0.8).with_block_size(4);
  SchurOptions sopt;
  sopt.rep = GetParam();
  SchurFactor f = block_schur_factor(t, sopt);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  auto solver = [&](const std::vector<double>& rhs, std::vector<double>& out) {
    out = solve_spd(f, rhs);
  };
  RefineResult direct = solve_refined(MatVec(t, toeplitz::MatVecMode::Direct), solver, b);
  RefineResult fft = solve_refined(MatVec(t, toeplitz::MatVecMode::Fft), solver, b);
  ASSERT_TRUE(direct.converged);
  ASSERT_TRUE(fft.converged);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(direct.x[i], fft.x[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllRepresentations, RefineFftAcrossReps,
                         ::testing::Values(core::Representation::AccumulatedU,
                                           core::Representation::VY1,
                                           core::Representation::VY2,
                                           core::Representation::YTY,
                                           core::Representation::Sequential));

TEST(Refine, RespectsMaxIterations) {
  BlockToeplitz t = toeplitz::paper_example_6x6();
  LdlFactor f = block_schur_indefinite(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  RefineOptions opt;
  opt.max_iters = 0;
  RefineResult res = solve_refined(
      MatVec(t), [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_ldl(f, rhs);
      },
      b, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Refine, HistoriesAreRecorded) {
  BlockToeplitz t = toeplitz::paper_example_6x6();
  LdlFactor f = block_schur_indefinite(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  RefineResult res = solve_refined(
      MatVec(t), [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_ldl(f, rhs);
      },
      b);
  EXPECT_EQ(res.residual_norms.size(), static_cast<std::size_t>(res.iterations) + 1);
  EXPECT_GE(res.correction_norms.size(), static_cast<std::size_t>(res.iterations));
}


TEST(Refine, ImprovesIllConditionedForwardError) {
  // The prolate matrix at this size has cond ~ 1e10; one or two refinement
  // steps against the exact operator tighten the residual substantially.
  toeplitz::BlockToeplitz t = toeplitz::prolate(48, 0.38);
  SchurFactor f = block_schur_factor(t);
  std::vector<double> b = toeplitz::rhs_for_ones(t);
  MatVec op(t);
  std::vector<double> x0 = solve_spd(f, b);
  std::vector<double> r0;
  op.residual(b, x0, r0);
  RefineResult res = solve_refined(
      op, [&](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_spd(f, rhs);
      },
      b);
  std::vector<double> r1;
  op.residual(b, res.x, r1);
  EXPECT_LE(la::norm2(r1), la::norm2(r0) * 1.0001);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace bst::core
