// Tests for the circulant-preconditioned CG path (core/pcg.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "core/pcg.h"
#include "la/norms.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::core {
namespace {

using toeplitz::BlockToeplitz;
using toeplitz::MatVec;
using toeplitz::MatVecMode;

// Dense Strang circulant built independently of the implementation: block
// (bi, bj) is W_{(bi-bj) mod p} with W_l the wrapped central diagonals.
la::Mat dense_strang(const BlockToeplitz& t) {
  const la::index_t m = t.block_size(), p = t.num_blocks(), n = t.order();
  const la::Mat td = t.dense();
  // A_d(ri, rj) = T's block at offset d = bi - bj, read off the dense form.
  auto a_entry = [&](la::index_t d, la::index_t ri, la::index_t rj) {
    const la::index_t bi = d >= 0 ? d : 0;
    const la::index_t bj = d >= 0 ? 0 : -d;
    return td(bi * m + ri, bj * m + rj);
  };
  auto w_entry = [&](la::index_t l, la::index_t ri, la::index_t rj) {
    if (2 * l < p) return a_entry(l, ri, rj);
    if (2 * l > p) return a_entry(l - p, ri, rj);
    return 0.5 * (a_entry(l, ri, rj) + a_entry(l - p, ri, rj));
  };
  la::Mat c(n, n);
  for (la::index_t bi = 0; bi < p; ++bi)
    for (la::index_t bj = 0; bj < p; ++bj)
      for (la::index_t ri = 0; ri < m; ++ri)
        for (la::index_t rj = 0; rj < m; ++rj)
          c(bi * m + ri, bj * m + rj) = w_entry((bi - bj + p) % p, ri, rj);
  return c;
}

TEST(CirculantPreconditioner, InverseMatchesDenseStrang) {
  // M * (M^{-1} r) == r with M rebuilt densely and independently.
  const BlockToeplitz t = toeplitz::random_spd_block(3, 11, 2, 5);
  const CirculantPreconditioner pre(t);
  ASSERT_TRUE(pre.positive_definite());
  const la::Mat md = dense_strang(t);
  const la::index_t n = t.order();
  std::vector<double> r(static_cast<std::size_t>(n)), z;
  for (la::index_t i = 0; i < n; ++i) r[static_cast<std::size_t>(i)] = std::sin(1.0 + i);
  pre.apply_inverse(r, z);
  for (la::index_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (la::index_t j = 0; j < n; ++j) s += md(i, j) * z[static_cast<std::size_t>(j)];
    EXPECT_NEAR(s, r[static_cast<std::size_t>(i)], 1e-9);
  }
}

TEST(CirculantPreconditioner, ScalarStrangIsExactOnCirculantInput) {
  // kms with rho = 0: T = I, whose Strang circulant is I.
  const BlockToeplitz t = toeplitz::kms(16, 0.0);
  const CirculantPreconditioner pre(t);
  ASSERT_TRUE(pre.positive_definite());
  std::vector<double> r(16, 0.0), z;
  r[3] = 2.0;
  pre.apply_inverse(r, z);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(z[i], r[i], 1e-13);
}

TEST(CirculantPreconditioner, IndefiniteMatrixDetected) {
  // A singular-minor indefinite matrix whose Strang circulant is not SPD:
  // the constructor must flag it rather than produce garbage factors.
  const BlockToeplitz t = toeplitz::singular_minor_family(64, 9);
  const CirculantPreconditioner pre(t);
  EXPECT_FALSE(pre.positive_definite());
  EXPECT_EQ(circulant_condest(t, pre), std::numeric_limits<double>::infinity());
}

TEST(Pcg, ConvergesFastOnKms) {
  const BlockToeplitz t = toeplitz::kms(256, 0.5);
  const std::vector<double> b = toeplitz::rhs_for_ones(t);
  const MatVec op(t, MatVecMode::Fft);
  const CirculantPreconditioner pre(t);
  ASSERT_TRUE(pre.positive_definite());
  const PcgResult res = pcg_solve(op, pre, b);
  EXPECT_TRUE(res.converged);
  // Strang-preconditioned KMS clusters at 1: convergence in O(1) iterations.
  EXPECT_LE(res.iterations, 30);
  for (const double xi : res.x) EXPECT_NEAR(xi, 1.0, 1e-9);
}

TEST(Pcg, ConvergesOnBlockSpd) {
  const BlockToeplitz t = toeplitz::random_spd_block(3, 40, 2, 17);
  const std::vector<double> b = toeplitz::rhs_for_ones(t);
  const MatVec op(t, MatVecMode::Fft);
  const CirculantPreconditioner pre(t);
  ASSERT_TRUE(pre.positive_definite());
  const PcgResult res = pcg_solve(op, pre, b);
  EXPECT_TRUE(res.converged);
  // True residual against the exact operator, not just the recurrence's.
  std::vector<double> r;
  MatVec(t, MatVecMode::Direct).residual(b, res.x, r);
  EXPECT_LE(la::norm2(r), 1e-9 * la::norm2(b));
}

TEST(Pcg, ZeroRhsShortCircuits) {
  const BlockToeplitz t = toeplitz::kms(32, 0.3);
  const MatVec op(t, MatVecMode::Fft);
  const CirculantPreconditioner pre(t);
  const std::vector<double> b(32, 0.0);
  const PcgResult res = pcg_solve(op, pre, b);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  for (const double xi : res.x) EXPECT_EQ(xi, 0.0);
}

TEST(Pcg, NonConvergenceRaisesWatchdogWarning) {
  // Unreachable tolerance and a tiny iteration budget: the solve must
  // report non-convergence and leave a watchdog warning for the fallback
  // logic (and the report's warnings section) to see.
  const BlockToeplitz t = toeplitz::kms(128, 0.9);
  const CirculantPreconditioner pre(t);
  ASSERT_TRUE(pre.positive_definite());
  util::Tracer::enable();
  util::Watchdog::reset();
  const MatVec op(t, MatVecMode::Fft);
  PcgOptions opt;
  opt.max_iters = 2;
  opt.tol = 1e-30;
  const PcgResult res = pcg_solve(op, pre, toeplitz::rhs_for_ones(t), opt);
  util::Tracer::disable();
  EXPECT_FALSE(res.converged);
  bool found = false;
  for (const auto& w : util::Watchdog::snapshot()) {
    if (w.code == "pcg_no_convergence") found = true;
  }
  util::Watchdog::reset();
  EXPECT_TRUE(found);
}

TEST(Pcg, CondestTracksConditioning) {
  const BlockToeplitz well = toeplitz::kms(64, 0.5);
  const double cw = circulant_condest(well, CirculantPreconditioner(well));
  EXPECT_GE(cw, 1.0);
  EXPECT_LE(cw, 1e3);  // true cond ~ 9; the 1-norm proxy stays small

  const BlockToeplitz ill = toeplitz::prolate(64, 0.05);
  const CirculantPreconditioner pre(ill);
  if (pre.positive_definite()) {
    EXPECT_GE(circulant_condest(ill, pre), 1e6);
  }
}

TEST(PcgOptions, FromEnvOverrides) {
  setenv("BST_PCG_TOL", "1e-6", 1);
  setenv("BST_PCG_MAXIT", "7", 1);
  const PcgOptions opt = PcgOptions::from_env();
  unsetenv("BST_PCG_TOL");
  unsetenv("BST_PCG_MAXIT");
  EXPECT_DOUBLE_EQ(opt.tol, 1e-6);
  EXPECT_EQ(opt.max_iters, 7);
  const PcgOptions defaults = PcgOptions::from_env();
  EXPECT_DOUBLE_EQ(defaults.tol, 1e-13);
  EXPECT_EQ(defaults.max_iters, 500);
}

}  // namespace
}  // namespace bst::core
