// Tests for util/par_analysis: the schedule capture of the simulated
// machine, the comm-matrix bookkeeping against analytic V1/V2 volumes, the
// critical-path invariant and the flight-recorder replay.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bst.h"

using namespace bst;

namespace {

// Arms the tracer so Machine construction turns span capture on.
struct TracerGuard {
  TracerGuard() {
    util::Tracer::reset();
    util::Tracer::enable();
  }
  ~TracerGuard() {
    util::Tracer::disable();
    util::Tracer::reset();
  }
};

simnet::DistResult run_model(int np, la::index_t m, la::index_t p, simnet::Layout layout,
                             la::index_t group = 1, la::index_t spread = 1) {
  simnet::DistOptions opt;
  opt.np = np;
  opt.layout = layout;
  opt.group = group;
  opt.spread = spread;
  return simnet::dist_schur_model(m, p, opt);
}

double matrix_total(const util::ParAnalysis& a) {
  double s = 0.0;
  for (const auto& row : a.comm_matrix)
    for (double v : row) s += v;
  return s;
}

// Analytic total payload volume for V1 (group = 1) / V2: every Schur step
// shifts the blocks that cross a group boundary (one m x m block each) and
// broadcasts one reflector to the other np - 1 PEs.
double expected_volume(int np, la::index_t m, la::index_t p, la::index_t group) {
  const double block_bytes = static_cast<double>(m * m) * 8.0;
  const double rep_bytes = simnet::representation_bytes(core::Representation::VY2, m);
  double crossings = 0.0;
  for (la::index_t i = 1; i < p; ++i)
    for (la::index_t j = i - 1; j < p - 1; ++j)
      if (j % group == group - 1) crossings += 1.0;
  return crossings * block_bytes +
         static_cast<double>(p - 1) * static_cast<double>(np - 1) * rep_bytes;
}

}  // namespace

TEST(ParAnalysis, CommMatrixMatchesAnalyticVolumesV1V2) {
  TracerGuard guard;
  const la::index_t m = 4;
  for (int np : {2, 4}) {
    for (la::index_t p : {9, 16}) {
      for (la::index_t group : {1, 2, 4}) {
        const simnet::Layout layout = group == 1 ? simnet::Layout::V1 : simnet::Layout::V2;
        simnet::DistResult res = run_model(np, m, p, layout, group);
        ASSERT_FALSE(res.schedule.empty());
        const util::ParAnalysis a = util::analyze_schedule(res.schedule);
        const double expect = expected_volume(np, m, p, group);
        EXPECT_NEAR(matrix_total(a), expect, 1e-9 * expect)
            << "np=" << np << " p=" << p << " group=" << group;
      }
    }
  }
}

TEST(ParAnalysis, GroupingReducesShiftVolumeOnly) {
  TracerGuard guard;
  // Same np/p: V2's broadcast volume equals V1's, only the shift volume
  // shrinks (by roughly the group factor) -- the mechanism behind Fig. 6.
  const la::index_t m = 4, p = 17;
  const int np = 4;
  auto shift_bytes = [](const util::ParSchedule& s) {
    double b = 0.0;
    for (const util::PeSpan& span : s.spans)
      if (span.kind == util::SpanKind::kSend) b += span.bytes;
    return b;
  };
  auto bcast_bytes = [](const util::ParSchedule& s) {
    double b = 0.0;
    for (const util::PeSpan& span : s.spans)
      if (span.kind == util::SpanKind::kBroadcastRecv) b += span.bytes;
    return b;
  };
  simnet::DistResult v1 = run_model(np, m, p, simnet::Layout::V1);
  simnet::DistResult v2 = run_model(np, m, p, simnet::Layout::V2, /*group=*/4);
  EXPECT_NEAR(bcast_bytes(v1.schedule), bcast_bytes(v2.schedule),
              1e-9 * bcast_bytes(v1.schedule));
  EXPECT_GT(shift_bytes(v1.schedule), 2.0 * shift_bytes(v2.schedule));
}

TEST(ParAnalysis, PerPeBusySumsMatchBreakdown) {
  TracerGuard guard;
  for (auto [layout, group, spread] :
       {std::tuple{simnet::Layout::V1, la::index_t{1}, la::index_t{1}},
        std::tuple{simnet::Layout::V2, la::index_t{4}, la::index_t{1}},
        std::tuple{simnet::Layout::V3, la::index_t{1}, la::index_t{2}}}) {
    simnet::DistResult res = run_model(4, 8, 12, layout, group, spread);
    const util::ParAnalysis a = util::analyze_schedule(res.schedule);
    double compute = 0.0;
    for (const util::PeUsage& u : a.per_pe) compute += u.compute;
    EXPECT_NEAR(compute, res.breakdown.compute, 1e-9 * res.breakdown.compute)
        << simnet::to_string(layout);
  }
}

TEST(ParAnalysis, CommMatrixColumnsMatchMachineRecvStats) {
  TracerGuard guard;
  simnet::DistResult res = run_model(4, 4, 13, simnet::Layout::V2, /*group=*/2);
  const util::ParAnalysis a = util::analyze_schedule(res.schedule);
  ASSERT_EQ(a.comm_matrix.size(), 4u);
  for (std::size_t dst = 0; dst < 4; ++dst) {
    double recv = 0.0;
    for (std::size_t src = 0; src < 4; ++src) recv += a.comm_matrix[src][dst];
    EXPECT_NEAR(recv, res.comm[dst].bytes_recv, 1e-9 * (res.comm[dst].bytes_recv + 1.0));
  }
}

TEST(ParAnalysis, CriticalPathTelescopesToMakespan) {
  TracerGuard guard;
  for (auto [layout, group, spread] :
       {std::tuple{simnet::Layout::V1, la::index_t{1}, la::index_t{1}},
        std::tuple{simnet::Layout::V2, la::index_t{4}, la::index_t{1}},
        std::tuple{simnet::Layout::V3, la::index_t{1}, la::index_t{4}}}) {
    simnet::DistResult res = run_model(8, 4, 24, layout, group, spread);
    const util::ParAnalysis a = util::analyze_schedule(res.schedule);
    EXPECT_TRUE(a.consistent()) << simnet::to_string(layout) << " slack=" << a.critical_slack;
    EXPECT_NEAR(a.makespan, res.sim_seconds, 1e-12 * res.sim_seconds);
    EXPECT_NEAR(a.critical_path_seconds, a.makespan, 1e-9 * a.makespan);
    EXPECT_GE(a.imbalance, 1.0);
    EXPECT_FALSE(a.critical_path.empty());
  }
}

TEST(ParAnalysis, FactorPathCapturesScheduleToo) {
  TracerGuard guard;
  toeplitz::BlockToeplitz t = toeplitz::kms(64, 0.5).with_block_size(8);
  simnet::DistOptions opt;
  opt.np = 4;
  opt.layout = simnet::Layout::V1;
  simnet::DistResult res = simnet::dist_schur_factor(t, opt, /*want_factor=*/true);
  ASSERT_FALSE(res.schedule.empty());
  const util::ParAnalysis a = util::analyze_schedule(res.schedule);
  EXPECT_TRUE(a.consistent());
  EXPECT_EQ(a.per_pe.size(), 4u);
}

TEST(ParAnalysis, EmitScheduleReplaysOntoVirtualPeTracks) {
  TracerGuard guard;
  util::FlightRecorder::enable();
  util::FlightRecorder::reset();

  util::ParSchedule s;
  s.np = 2;
  s.spans.push_back({0, -1, 1, util::SpanKind::kCompute, 0.0, 1.0, 0.0});
  s.spans.push_back({0, 1, 1, util::SpanKind::kSend, 1.0, 1.5, 64.0});
  s.spans.push_back({1, 0, 1, util::SpanKind::kRecv, 0.5, 1.5, 64.0});
  // Zero-length receive: counts for the comm matrix, not for the Gantt.
  s.spans.push_back({1, 0, 2, util::SpanKind::kRecv, 1.5, 1.5, 8.0});
  util::emit_schedule(s);

  int pe_tracks = 0;
  for (const util::ThreadEvents& te : util::FlightRecorder::snapshot()) {
    if (te.label.rfind("pe:", 0) != 0) continue;
    ++pe_tracks;
    EXPECT_TRUE(te.virtual_time) << te.label;
    int begins = 0, ends = 0;
    for (const util::FlightEvent& e : te.events) {
      begins += e.kind == util::EventKind::kBegin;
      ends += e.kind == util::EventKind::kEnd;
    }
    EXPECT_EQ(begins, ends) << te.label;
    EXPECT_EQ(te.events.size(), te.label == "pe:0" ? 4u : 2u) << te.label;
  }
  EXPECT_EQ(pe_tracks, 2);

  std::ostringstream os;
  util::FlightRecorder::write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"pe:0\""), std::string::npos);
  EXPECT_NE(doc.find("\"pe:1\""), std::string::npos);
  EXPECT_NE(doc.find("thread_name"), std::string::npos);
  EXPECT_NO_THROW(util::parse_json(doc));

  util::FlightRecorder::disable();
}

TEST(ParAnalysis, TraceFromModelHasOneTrackPerPe) {
  TracerGuard guard;
  util::FlightRecorder::enable();
  util::FlightRecorder::reset();
  run_model(4, 4, 10, simnet::Layout::V2, /*group=*/2);  // emits internally

  int pe_tracks = 0;
  for (const util::ThreadEvents& te : util::FlightRecorder::snapshot()) {
    if (te.label.rfind("pe:", 0) == 0) ++pe_tracks;
  }
  EXPECT_EQ(pe_tracks, 4);
  util::FlightRecorder::disable();
}
