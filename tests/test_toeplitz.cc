// Tests for the block Toeplitz types, matvec evaluators and generators.
#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/norms.h"
#include "toeplitz/block_toeplitz.h"
#include "toeplitz/generators.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::toeplitz {
namespace {

TEST(BlockToeplitz, ScalarEntryResolution) {
  BlockToeplitz t = BlockToeplitz::scalar({5.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(t.order(), 4);
  EXPECT_EQ(t.block_size(), 1);
  EXPECT_DOUBLE_EQ(t.entry(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.entry(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(t.entry(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.entry(2, 1), 1.0);
}

TEST(BlockToeplitz, DenseIsSymmetric) {
  BlockToeplitz t = random_spd_block(3, 4, 2, /*seed=*/17);
  la::Mat d = t.dense();
  EXPECT_LT(la::max_diff(d.view(), la::transpose(d.view()).view()), 1e-14);
}

TEST(BlockToeplitz, BlockEntryConsistency) {
  BlockToeplitz t = random_spd_block(2, 3, 1, 5);
  la::Mat d = t.dense();
  // Block (1, 2) must equal T_2; block (2, 1) its transpose.
  for (la::index_t i = 0; i < 2; ++i)
    for (la::index_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(d(2 + i, 4 + j), t.block(2)(i, j));
      EXPECT_DOUBLE_EQ(d(4 + i, 2 + j), t.block(2)(j, i));
    }
}

TEST(BlockToeplitz, RejectsAsymmetricLeadingBlock) {
  la::Mat row(2, 4);
  row(0, 1) = 1.0;  // T1 not symmetric
  EXPECT_THROW(BlockToeplitz(2, std::move(row)), std::invalid_argument);
}

TEST(BlockToeplitz, WithBlockSizePreservesMatrix) {
  BlockToeplitz t = random_spd_block(2, 8, 2, 23);
  BlockToeplitz t4 = t.with_block_size(4);
  EXPECT_EQ(t4.block_size(), 4);
  EXPECT_EQ(t4.order(), t.order());
  EXPECT_LT(la::max_diff(t.dense().view(), t4.dense().view()), 1e-14);
}

TEST(BlockToeplitz, WithBlockSizeValidation) {
  BlockToeplitz t = random_spd_block(2, 8, 2, 23);
  EXPECT_THROW(t.with_block_size(3), std::invalid_argument);   // not a multiple of m
  EXPECT_THROW(t.with_block_size(5), std::invalid_argument);   // does not divide n
  EXPECT_NO_THROW(t.with_block_size(8));
}

TEST(Generators, KmsIsSpdAndMatchesFormula) {
  BlockToeplitz t = kms(16, 0.5);
  EXPECT_DOUBLE_EQ(t.entry(3, 7), std::pow(0.5, 4));
  la::Mat d = t.dense();
  EXPECT_NO_THROW(la::cholesky_factor(d.view()));
}

TEST(Generators, ProlateIsSpd) {
  BlockToeplitz t = prolate(24, 0.30);
  la::Mat d = t.dense();
  EXPECT_NO_THROW(la::cholesky_factor(d.view()));
}

TEST(Generators, RandomSpdBlockIsSpd) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    BlockToeplitz t = random_spd_block(3, 5, 2, seed);
    la::Mat d = t.dense();
    EXPECT_NO_THROW(la::cholesky_factor(d.view())) << "seed " << seed;
  }
}

TEST(Generators, PaperExampleRow) {
  BlockToeplitz t = paper_example_6x6();
  EXPECT_EQ(t.order(), 6);
  EXPECT_DOUBLE_EQ(t.entry(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.entry(0, 5), 0.3834);
  // The leading 2x2 minor [[1 1],[1 1]] is singular.
  EXPECT_NEAR(t.entry(0, 0) * t.entry(1, 1) - t.entry(0, 1) * t.entry(1, 0), 0.0, 1e-15);
}

TEST(Generators, SingularMinorFamilyHasSingular2x2) {
  BlockToeplitz t = singular_minor_family(12, 99);
  EXPECT_DOUBLE_EQ(t.entry(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.entry(0, 1), 1.0);
}

TEST(MatVec, DirectMatchesDense) {
  util::Rng rng(12);
  BlockToeplitz t = random_spd_block(3, 5, 2, 31);
  const la::index_t n = t.order();
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> y;
  MatVec(t, MatVecMode::Direct).apply(x, y);
  la::Mat d = t.dense();
  std::vector<double> expect(static_cast<std::size_t>(n), 0.0);
  la::gemv(false, 1.0, d.view(), x.data(), 0.0, expect.data());
  for (la::index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expect[static_cast<std::size_t>(i)], 1e-12);
}

class MatVecFftSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MatVecFftSweep, FftMatchesDirect) {
  const auto [m, p] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 100 + p));
  BlockToeplitz t = random_spd_block(m, p, 2, static_cast<std::uint64_t>(m + p));
  std::vector<double> x(static_cast<std::size_t>(t.order()));
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> yd, yf;
  MatVec(t, MatVecMode::Direct).apply(x, yd);
  MatVec(t, MatVecMode::Fft).apply(x, yf);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(yf[i], yd[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatVecFftSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                                            ::testing::Values(1, 2, 5, 16, 33)));

TEST(MatVec, ResidualOfExactSolutionIsZero) {
  BlockToeplitz t = kms(10, 0.4);
  std::vector<double> b = rhs_for_ones(t);
  const std::vector<double> ones(10, 1.0);
  std::vector<double> r;
  MatVec(t).residual(b, ones, r);
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-13);
}

TEST(MatVec, IndefiniteRowWorksToo) {
  util::Rng rng(5);
  BlockToeplitz t = random_indefinite(9, 55);
  std::vector<double> x(9);
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> yd, yf;
  MatVec(t, MatVecMode::Direct).apply(x, yd);
  MatVec(t, MatVecMode::Fft).apply(x, yf);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(yf[i], yd[i], 1e-12);
}


TEST(Generators, FgnIsSpdAndLongMemory) {
  for (double h : {0.55, 0.75, 0.9}) {
    BlockToeplitz t = fgn(24, h);
    EXPECT_DOUBLE_EQ(t.entry(0, 0), 1.0) << h;
    la::Mat d = t.dense();
    EXPECT_NO_THROW(la::cholesky_factor(d.view())) << h;
  }
  // H > 1/2: positively correlated (long memory); H < 1/2: negative lag-1.
  EXPECT_GT(fgn(8, 0.8).entry(0, 1), 0.0);
  EXPECT_LT(fgn(8, 0.3).entry(0, 1), 0.0);
  // H = 1/2 degenerates to the identity (white noise).
  BlockToeplitz white = fgn(8, 0.5);
  for (la::index_t k = 1; k < 8; ++k) EXPECT_NEAR(white.entry(0, k), 0.0, 1e-14);
}

TEST(Generators, Ar1BlockIsSpdBlockToeplitz) {
  for (std::uint64_t seed : {1u, 5u, 9u}) {
    BlockToeplitz t = ar1_block(3, 6, seed);
    la::Mat d = t.dense();
    EXPECT_NO_THROW(la::cholesky_factor(d.view())) << seed;
    // Covariances decay with lag (rho(Phi) < 1).
    EXPECT_LT(la::max_abs(t.block(6)), la::max_abs(t.block(1))) << seed;
  }
}

TEST(Generators, Ar1BlockSatisfiesStationaryEquation) {
  // C_k = Phi^k C_0 implies C_1 C_0^{-1} C_1 = Phi C_0 C_0^{-1} Phi C_0 = C_2.
  BlockToeplitz t = ar1_block(2, 4, 3);
  la::Mat c0(2, 2), c1(2, 2), c2(2, 2);
  la::copy(t.block(1), c0.view());
  la::copy(t.block(2), c1.view());
  la::copy(t.block(3), c2.view());
  // X = C_0^{-1} C_1: solve C_0 X = C_1.
  la::Mat l = la::cholesky_factor(c0.view());
  la::Mat x(2, 2);
  la::copy(c1.view(), x.view());
  la::trsm(la::Side::Left, la::Uplo::Lower, la::Op::None, la::Diag::NonUnit, 1.0, l.view(),
           x.view());
  la::trsm(la::Side::Left, la::Uplo::Lower, la::Op::Trans, la::Diag::NonUnit, 1.0, l.view(),
           x.view());
  la::Mat check(2, 2);
  la::gemm(la::Op::None, la::Op::None, 1.0, c1.view(), x.view(), 0.0, check.view());
  EXPECT_LT(la::max_diff(check.view(), c2.view()), 1e-10);
}

}  // namespace
}  // namespace bst::toeplitz
