// Tests for the structured tracer (util/trace.h) and the JSON perf-report
// writer (util/report.h): phase interning, disabled-tracer no-ops, nested
// (inclusive) span accounting, exact multi-thread accumulation, per-step
// diagnostics, JSON round-tripping and the report schema.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>

#include "util/flops.h"
#include "util/report.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::util {
namespace {

// Every test starts from a clean, enabled tracer and leaves it disabled
// (the tracer is process-global; other test binaries rely on the default).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::reset();
    Tracer::enable();
  }
  void TearDown() override {
    Tracer::disable();
    Tracer::reset();
  }
};

std::uint64_t phase_flops(const std::vector<PhaseStats>& phases, const std::string& name) {
  for (const PhaseStats& p : phases) {
    if (p.name == name) return p.flops;
  }
  return 0;
}

const PhaseStats* find_phase(const std::vector<PhaseStats>& phases, const std::string& name) {
  for (const PhaseStats& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST_F(TraceTest, PhaseInterningIsIdempotent) {
  const PhaseId a = Tracer::phase("trace_test_intern");
  const PhaseId b = Tracer::phase("trace_test_intern");
  const PhaseId c = Tracer::phase("trace_test_intern_other");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, Tracer::kMaxPhases);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::disable();
  const PhaseId id = Tracer::phase("trace_test_disabled");
  {
    TraceSpan span(id);
    FlopCounter::charge(123);
    ByteCounter::charge(456);
  }
  Tracer::record_step(0, 1.0, 2.0);
  Tracer::enable();
  EXPECT_EQ(find_phase(Tracer::snapshot(), "trace_test_disabled"), nullptr);
  EXPECT_TRUE(Tracer::steps().empty());
}

TEST_F(TraceTest, SpanChargesFlopsBytesAndWallTime) {
  const PhaseId id = Tracer::phase("trace_test_basic");
  {
    TraceSpan span(id);
    FlopCounter::charge(1000);
    ByteCounter::charge(8000);
  }
  const PhaseStats* p = find_phase(Tracer::snapshot(), "trace_test_basic");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, 1u);
  EXPECT_EQ(p->flops, 1000u);
  EXPECT_EQ(p->bytes, 8000u);
  EXPECT_GE(p->seconds, 0.0);
}

TEST_F(TraceTest, NestedSpansAreInclusive) {
  const PhaseId outer = Tracer::phase("trace_test_outer");
  const PhaseId inner = Tracer::phase("trace_test_inner");
  {
    TraceSpan so(outer);
    FlopCounter::charge(10);
    {
      TraceSpan si(inner);
      FlopCounter::charge(100);
    }
    FlopCounter::charge(1);
  }
  const auto phases = Tracer::snapshot();
  // The inner span's work double-charges the outer phase by design.
  EXPECT_EQ(phase_flops(phases, "trace_test_outer"), 111u);
  EXPECT_EQ(phase_flops(phases, "trace_test_inner"), 100u);
}

TEST_F(TraceTest, ResetClearsTotalsButKeepsIds) {
  const PhaseId id = Tracer::phase("trace_test_reset");
  {
    TraceSpan span(id);
    FlopCounter::charge(5);
  }
  Tracer::reset();
  EXPECT_EQ(find_phase(Tracer::snapshot(), "trace_test_reset"), nullptr);
  EXPECT_EQ(Tracer::phase("trace_test_reset"), id);
  {
    TraceSpan span(id);
    FlopCounter::charge(7);
  }
  EXPECT_EQ(phase_flops(Tracer::snapshot(), "trace_test_reset"), 7u);
}

TEST_F(TraceTest, MultiThreadAccumulationIsExact) {
  // Spans open *inside* the worker callback (the counters are thread-local),
  // so the per-phase totals must sum every thread's share exactly.
  const PhaseId id = Tracer::phase("trace_test_mt");
  ThreadPool pool(4);
  constexpr std::size_t kIters = 1000;
  pool.parallel_for(0, kIters, [&](std::size_t) {
    TraceSpan span(id);
    FlopCounter::charge(7);
    ByteCounter::charge(11);
  });
  const PhaseStats* p = find_phase(Tracer::snapshot(), "trace_test_mt");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->calls, kIters);
  EXPECT_EQ(p->flops, 7u * kIters);
  EXPECT_EQ(p->bytes, 11u * kIters);
}

TEST_F(TraceTest, WorkerStatsCountChunks) {
  ThreadPool pool(3);
  pool.reset_worker_stats();
  std::atomic<int> ran{0};
  pool.parallel_for(0, 64, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
  const std::vector<WorkerStats> stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), pool.size());
  std::uint64_t chunks = 0;
  for (const WorkerStats& w : stats) {
    chunks += w.chunks;
    EXPECT_GE(w.busy_seconds, 0.0);
    EXPECT_GE(w.idle_seconds, 0.0);
  }
  EXPECT_GE(chunks, 1u);
  EXPECT_LE(chunks, 64u);
}

TEST_F(TraceTest, RecordsStepDiagnosticsInOrder) {
  Tracer::record_step(1, 0.5, 2.0);
  Tracer::record_step(2, 0.25, 4.0);
  const std::vector<StepDiag> steps = Tracer::steps();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].step, 1);
  EXPECT_DOUBLE_EQ(steps[0].min_hnorm, 0.5);
  EXPECT_DOUBLE_EQ(steps[1].max_generator, 4.0);
}

// ---------------------------------------------------------------------------
// JSON value + parser round-trips.

TEST(JsonTest, RoundTripsScalarsAndContainers) {
  Json doc = Json::object();
  doc.set("int", Json::number(std::int64_t{-42}));
  doc.set("big", Json::number(std::uint64_t{123456789012345ull}));
  doc.set("pi", Json::number(3.25));
  doc.set("flag", Json::boolean(true));
  doc.set("none", Json::null());
  Json arr = Json::array();
  arr.push(Json::number(1.0));
  arr.push(Json::string("two"));
  doc.set("list", arr);

  const Json back = parse_json(doc.dump());
  ASSERT_EQ(back.kind(), Json::Kind::Object);
  EXPECT_DOUBLE_EQ(back.find("int")->as_number(), -42.0);
  EXPECT_DOUBLE_EQ(back.find("big")->as_number(), 123456789012345.0);
  EXPECT_DOUBLE_EQ(back.find("pi")->as_number(), 3.25);
  EXPECT_TRUE(back.find("flag")->as_bool());
  EXPECT_EQ(back.find("none")->kind(), Json::Kind::Null);
  ASSERT_EQ(back.find("list")->items().size(), 2u);
  EXPECT_EQ(back.find("list")->items()[1].as_string(), "two");
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  Json doc = Json::object();
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  doc.set("s", Json::string(nasty));
  const std::string text = doc.dump();
  EXPECT_EQ(text.find('\n'), text.find("\n  \"s\""));  // only layout newlines
  const Json back = parse_json(text);
  EXPECT_EQ(back.find("s")->as_string(), nasty);
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  Json doc = Json::array();
  doc.push(Json::number(std::nan("")));
  doc.push(Json::number(std::numeric_limits<double>::infinity()));
  const Json back = parse_json(doc.dump());
  ASSERT_EQ(back.items().size(), 2u);
  EXPECT_EQ(back.items()[0].kind(), Json::Kind::Null);
  EXPECT_EQ(back.items()[1].kind(), Json::Kind::Null);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("tru"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1} junk"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// PerfReport schema.

TEST_F(TraceTest, PerfReportCarriesSchemaAndSections) {
  const PhaseId id = Tracer::phase("trace_test_report");
  {
    TraceSpan span(id);
    FlopCounter::charge(64);
  }
  Tracer::record_step(3, 1e-3, 2.5);

  PerfReport report("test_tool");
  report.param("n", std::int64_t{256});
  report.param("rep", "vy2");
  report.metric("time_s", 0.125);
  report.add_thread(1.0, 0.5, 10);
  report.add_pe_comm(1024.0, 2048.0, 16.0);
  Table tab("t");
  tab.header({"a", "b"});
  tab.row({1LL, 2.0});
  report.add_table(tab);

  std::ostringstream os;
  report.write(os);
  const Json doc = parse_json(os.str());

  ASSERT_EQ(doc.kind(), Json::Kind::Object);
  EXPECT_DOUBLE_EQ(doc.find("schema_version")->as_number(), kReportSchemaVersion);
  EXPECT_EQ(doc.find("tool")->as_string(), "test_tool");
  EXPECT_DOUBLE_EQ(doc.find("params")->find("n")->as_number(), 256.0);
  EXPECT_EQ(doc.find("params")->find("rep")->as_string(), "vy2");
  EXPECT_DOUBLE_EQ(doc.find("metrics")->find("time_s")->as_number(), 0.125);
  ASSERT_NE(doc.find("machine"), nullptr);
  EXPECT_GE(doc.find("machine")->find("hardware_concurrency")->as_number(), 1.0);
  ASSERT_NE(doc.find("build"), nullptr);

  const Json* phases = doc.find("phases");
  ASSERT_NE(phases, nullptr);
  const Json* ph = phases->find("trace_test_report");
  ASSERT_NE(ph, nullptr);
  EXPECT_DOUBLE_EQ(ph->find("flops")->as_number(), 64.0);
  EXPECT_DOUBLE_EQ(ph->find("calls")->as_number(), 1.0);

  const Json* steps = doc.find("steps");
  ASSERT_NE(steps, nullptr);
  ASSERT_EQ(steps->items().size(), 1u);
  EXPECT_DOUBLE_EQ(steps->items()[0].find("step")->as_number(), 3.0);

  ASSERT_EQ(doc.find("threads")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("threads")->items()[0].find("busy_seconds")->as_number(), 1.0);
  ASSERT_EQ(doc.find("comm")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(doc.find("comm")->items()[0].find("bytes_recv")->as_number(), 2048.0);

  ASSERT_EQ(doc.find("tables")->items().size(), 1u);
  const Json& table = doc.find("tables")->items()[0];
  EXPECT_EQ(table.find("title")->as_string(), "t");
  ASSERT_EQ(table.find("rows")->items().size(), 1u);
  EXPECT_DOUBLE_EQ(table.find("rows")->items()[0].items()[1].as_number(), 2.0);
}

TEST_F(TraceTest, PerfReportOmitsEmptySections) {
  Tracer::disable();  // no phases recorded
  PerfReport report("empty_tool");
  std::ostringstream os;
  report.write(os);
  const Json doc = parse_json(os.str());
  EXPECT_EQ(doc.find("phases"), nullptr);
  EXPECT_EQ(doc.find("steps"), nullptr);
  EXPECT_EQ(doc.find("threads"), nullptr);
  EXPECT_EQ(doc.find("comm"), nullptr);
  EXPECT_EQ(doc.find("tables"), nullptr);
  EXPECT_NE(doc.find("schema_version"), nullptr);
}

}  // namespace
}  // namespace bst::util
