// Tests for util/: RNG determinism and distributions, flop counting,
// table rendering, CLI parsing, FP trap scopes.
#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/cli.h"
#include "util/flops.h"
#include "util/fpenv.h"
#include "util/rng.h"
#include "util/table.h"

namespace bst::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, BelowStaysBelow) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  EXPECT_NE(r.next(), 0u);
}

TEST(Flops, ChargeAndScope) {
  FlopCounter::reset();
  FlopCounter::charge(100);
  EXPECT_EQ(FlopCounter::now(), 100u);
  {
    FlopScope scope;
    FlopCounter::charge(42);
    EXPECT_EQ(scope.elapsed(), 42u);
  }
  std::uint64_t out = 0;
  {
    FlopScope scope(&out);
    FlopCounter::charge(7);
  }
  EXPECT_EQ(out, 7u);
}

TEST(Flops, WallClockAdvances) {
  const double t0 = wall_seconds();
  EXPECT_GE(wall_seconds(), t0);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.header({"a", "bb", "ccc"});
  t.row({std::string("x"), 42LL, 3.25});
  t.row({std::string("yy"), -1LL, 0.5});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_NE(s.find("yy"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Cli, ParsesKeysAndDefaults) {
  const char* argv[] = {"prog", "--n=128", "--flag", "--rate=2.5", "positional"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("flag", ""), "1");
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(cli.get_int("missing", -7), -7);
  EXPECT_FALSE(cli.has("positional"));
}

TEST(Cli, RejectsTrailingGarbageOnIntegers) {
  const char* argv[] = {"prog", "--np=4x", "--panel=8q", "--n=16"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("np", 0), std::runtime_error);
  EXPECT_THROW((void)cli.get_int("panel", 0), std::runtime_error);
  EXPECT_EQ(cli.get_int("n", 0), 16);  // clean values still parse
  try {
    (void)cli.get_int("np", 0);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The message names the flag and echoes the bad value.
    EXPECT_NE(std::string(e.what()).find("--np"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4x"), std::string::npos);
  }
}

TEST(Cli, RejectsTrailingGarbageOnDoubles) {
  const char* argv[] = {"prog", "--rate=2.5mb", "--tol=1e-9", "--empty="};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_double("rate", 0.0), std::runtime_error);
  EXPECT_DOUBLE_EQ(cli.get_double("tol", 0.0), 1e-9);  // exponents are fine
  EXPECT_THROW((void)cli.get_double("empty", 0.0), std::runtime_error);
}

TEST(Cli, RejectsNonNumericValues) {
  const char* argv[] = {"prog", "--n=abc", "--rate=fast"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), std::runtime_error);
  EXPECT_THROW((void)cli.get_double("rate", 0.0), std::runtime_error);
}

// FpTrapScope save/restore when no scope is active: the baseline mask is
// whatever the harness runs with, and a scope must hand it back exactly.
TEST(FpTrap, RestoresBaselineMask) {
  if (!FpTrapScope::supported()) GTEST_SKIP() << "no feenableexcept on this libc";
  const int baseline = FpTrapScope::enabled_traps();
  {
    FpTrapScope scope(FE_DIVBYZERO);
    EXPECT_EQ(FpTrapScope::enabled_traps() & FE_DIVBYZERO, FE_DIVBYZERO);
  }
  EXPECT_EQ(FpTrapScope::enabled_traps(), baseline);
}

// Nested scopes: the inner scope adds its traps on top of the outer one's
// and each destructor peels back exactly one layer.
TEST(FpTrap, ScopesNestAndUnwindExactly) {
  if (!FpTrapScope::supported()) GTEST_SKIP() << "no feenableexcept on this libc";
  const int baseline = FpTrapScope::enabled_traps();
  {
    FpTrapScope outer(FE_DIVBYZERO);
    const int outer_mask = FpTrapScope::enabled_traps();
    EXPECT_EQ(outer_mask & FE_DIVBYZERO, FE_DIVBYZERO);
    {
      FpTrapScope inner(FE_INVALID);
      const int inner_mask = FpTrapScope::enabled_traps();
      EXPECT_EQ(inner_mask & FE_DIVBYZERO, FE_DIVBYZERO);  // outer survives
      EXPECT_EQ(inner_mask & FE_INVALID, FE_INVALID);      // inner added
    }
    EXPECT_EQ(FpTrapScope::enabled_traps(), outer_mask);  // inner peeled off
  }
  EXPECT_EQ(FpTrapScope::enabled_traps(), baseline);
}

// Re-requesting a trap the outer scope already armed must not disarm it
// when the inner scope ends (the restore is to the saved mask, not a
// subtraction).
TEST(FpTrap, OverlappingRequestsRestoreToSavedMask) {
  if (!FpTrapScope::supported()) GTEST_SKIP() << "no feenableexcept on this libc";
  const int baseline = FpTrapScope::enabled_traps();
  {
    FpTrapScope outer(FE_DIVBYZERO | FE_OVERFLOW);
    {
      FpTrapScope inner(FE_OVERFLOW);  // overlaps the outer request
      EXPECT_EQ(FpTrapScope::enabled_traps() & FE_OVERFLOW, FE_OVERFLOW);
    }
    EXPECT_EQ(FpTrapScope::enabled_traps() & (FE_DIVBYZERO | FE_OVERFLOW),
              FE_DIVBYZERO | FE_OVERFLOW);
  }
  EXPECT_EQ(FpTrapScope::enabled_traps(), baseline);
}

}  // namespace
}  // namespace bst::util
