// Shared --trace= / --profile= / --ledger= handling for the bench
// harnesses, so every bench exposes the same observability surface as
// bst_solve without five copies of the flag-parsing block:
//
//   Obs obs(cli);                       // arms Tracer / FlightRecorder
//   ... run the benchmark ...
//   util::PerfReport report("bench_x"); // params/metrics/tables as usual
//   obs.finish(report);                 // trace file, profile file, ledger
//   obs.write_default_json(report, "BENCH_x.json");  // --json / BST_BENCH_OUT
//
// finish() is safe to call when no flag was given (it does nothing beyond
// attaching the attainment section), so benches need no conditionals.
//
// Calibration (util/calibrate.h) is auto-loaded from --calibration=<path>
// or the BST_CALIBRATION environment variable (load-only: benches never
// spend time measuring; run `bst_solve --calibrate=prof.json` once).  When
// a profile is present -- or a bench fed per-phase flop models via
// add_phase_model() -- finish() attaches the "attainment" report section.
//
// The default JSON output honors BST_BENCH_OUT: when set, BENCH_*.json
// lands in that directory so CI can collect every bench artifact from one
// place.  --json=<path> overrides; --json=none suppresses.
// docs/BENCHMARKING.md documents the flags.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/attainment.h"
#include "util/calibrate.h"
#include "util/cli.h"
#include "util/flight_recorder.h"
#include "util/ledger.h"
#include "util/prof.h"
#include "util/report.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::bench {

class Obs {
 public:
  explicit Obs(const util::Cli& cli)
      : trace_(cli.get("trace", "")),
        profile_(cli.get("profile", "")),
        ledger_(cli.get("ledger", "")),
        json_flag_(cli.get("json", "")) {
    std::string cal_path = cli.get("calibration", "");
    if (cal_path.empty()) {
      if (const char* env = std::getenv("BST_CALIBRATION"); env != nullptr) cal_path = env;
    }
    if (!cal_path.empty()) load_calibration(cal_path);
    // --prof / BST_PROF arms the hardware-truth profiler (util/prof): PMU
    // counter groups at span boundaries plus the SIGPROF sampler.  It
    // implies tracing (the PMU snapshots ride the spans).
    util::ProfOptions popt = util::ProfOptions::from_env();
    prof_ = cli.has("prof") || popt.armed_by_env;
    if (!armed()) return;
    util::Tracer::reset();
    util::ThreadPool::global().reset_worker_stats();
    util::Tracer::enable();
    if (!trace_.empty()) util::FlightRecorder::enable();
    if (prof_) {
      popt.out_prefix = cli.get("prof-out", popt.out_prefix);
      util::Prof::arm(popt);
    }
  }

  /// True when any observability flag was given.
  [[nodiscard]] bool armed() const noexcept {
    return !trace_.empty() || !profile_.empty() || !ledger_.empty() || prof_;
  }

  [[nodiscard]] bool has_calibration() const noexcept { return has_cal_; }

  /// Accumulates a modeled flop budget for one phase (summed across calls,
  /// so sweeps add one model per configuration); joined against the
  /// measured counters in finish().
  void add_phase_model(const util::PhaseModel& pm) {
    for (util::PhaseModel& m : models_) {
      if (m.phase == pm.phase) {
        m.model_flops += pm.model_flops;
        m.paper_flops += pm.paper_flops;
        return;
      }
    }
    models_.push_back(pm);
  }
  void add_phase_models(const std::vector<util::PhaseModel>& pms) {
    for (const util::PhaseModel& pm : pms) add_phase_model(pm);
  }

  /// Stops recording, attaches the attainment section (when a calibration
  /// profile or phase models are available) and writes everything that was
  /// requested: the chrome trace, the JSON profile (with thread-pool
  /// utilization attached) and the ledger line.  Call once, after the run.
  void finish(util::PerfReport& report) {
    if (prof_) {
      // Stop sampling before any report is built so the stats (and the
      // folded artifacts) are final.
      util::Prof::disarm();
      const util::Prof::Artifacts art = util::Prof::write_artifacts();
      if (!art.folded.empty()) {
        std::fprintf(stderr, "bench: profiler artifacts: %s %s\n", art.folded.c_str(),
                     art.perfetto.c_str());
      }
    }
    if (armed()) {
      if (!trace_.empty()) {
        util::FlightRecorder::disable();
        util::FlightRecorder::write_chrome_trace(trace_);
      }
      util::Tracer::disable();
      for (const util::WorkerStats& w : util::ThreadPool::global().worker_stats()) {
        report.add_thread(w.busy_seconds, w.idle_seconds, w.chunks);
      }
    }
    if (has_cal_ || !models_.empty()) {
      const util::Json doc = report.build();
      report.set_attainment(
          util::attainment_section(doc, has_cal_ ? &cal_json_ : nullptr, models_));
    }
    if (!profile_.empty()) report.write_file(profile_);
    if (!ledger_.empty()) util::append_ledger(ledger_, report.build());
  }

  /// Resolves the bench's default JSON output path: --json=<path> wins,
  /// --json=none suppresses, otherwise $BST_BENCH_OUT/<default_name> when
  /// the environment variable is set, else <default_name> in the CWD.
  [[nodiscard]] std::string json_path(const std::string& default_name) const {
    if (!json_flag_.empty()) return json_flag_ == "none" ? std::string() : json_flag_;
    if (const char* dir = std::getenv("BST_BENCH_OUT"); dir != nullptr && dir[0] != '\0') {
      std::string path(dir);
      if (path.back() != '/') path.push_back('/');
      return path + default_name;
    }
    return default_name;
  }

  /// Writes the report to json_path(default_name) unless suppressed.
  void write_default_json(const util::PerfReport& report, const std::string& default_name) const {
    const std::string path = json_path(default_name);
    if (!path.empty()) report.write_file(path);
  }

 private:
  void load_calibration(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: warning: cannot open calibration '%s'\n", path.c_str());
      return;
    }
    std::string text;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
    std::fclose(f);
    try {
      const util::Calibration cal = util::Calibration::from_json(util::parse_json(text));
      cal_json_ = cal.to_json();
      has_cal_ = true;
      // Profile in hand: tune the level-3 kernel blocking from its cache
      // sizes so the bench runs what a tuned solver would run.
      util::apply_kernel_tuning(cal);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: warning: bad calibration '%s': %s\n", path.c_str(), e.what());
    }
  }

  std::string trace_, profile_, ledger_, json_flag_;
  util::Json cal_json_;
  bool prof_ = false;
  bool has_cal_ = false;
  std::vector<util::PhaseModel> models_;
};

}  // namespace bst::bench
