// Shared --trace= / --profile= / --ledger= handling for the bench
// harnesses, so every bench exposes the same observability surface as
// bst_solve without five copies of the flag-parsing block:
//
//   Obs obs(cli);                       // arms Tracer / FlightRecorder
//   ... run the benchmark ...
//   util::PerfReport report("bench_x"); // params/metrics/tables as usual
//   obs.finish(report);                 // trace file, profile file, ledger
//
// finish() is safe to call when no flag was given (it does nothing), so
// benches need no conditionals.  docs/BENCHMARKING.md documents the flags.
#pragma once

#include <string>

#include "util/cli.h"
#include "util/flight_recorder.h"
#include "util/ledger.h"
#include "util/report.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::bench {

class Obs {
 public:
  explicit Obs(const util::Cli& cli)
      : trace_(cli.get("trace", "")),
        profile_(cli.get("profile", "")),
        ledger_(cli.get("ledger", "")) {
    if (!armed()) return;
    util::Tracer::reset();
    util::ThreadPool::global().reset_worker_stats();
    util::Tracer::enable();
    if (!trace_.empty()) util::FlightRecorder::enable();
  }

  /// True when any observability flag was given.
  [[nodiscard]] bool armed() const noexcept {
    return !trace_.empty() || !profile_.empty() || !ledger_.empty();
  }

  /// Stops recording and writes everything that was requested: the chrome
  /// trace, the JSON profile (with thread-pool utilization attached) and
  /// the ledger line.  Call once, after the run.
  void finish(util::PerfReport& report) {
    if (!armed()) return;
    if (!trace_.empty()) {
      util::FlightRecorder::disable();
      util::FlightRecorder::write_chrome_trace(trace_);
    }
    util::Tracer::disable();
    for (const util::WorkerStats& w : util::ThreadPool::global().worker_stats()) {
      report.add_thread(w.busy_seconds, w.idle_seconds, w.chunks);
    }
    if (!profile_.empty()) report.write_file(profile_);
    if (!ledger_.empty()) util::append_ledger(ledger_, report.build());
  }

 private:
  std::string trace_, profile_, ledger_;
};

}  // namespace bst::bench
