// SLO benchmark for the batched solver service (docs/SERVICE.md).
//
// Three phases on one repeated-key workload (same matrix, distinct RHS):
//
//   1. no-cache baseline: synchronous solve() on a cache-disabled service,
//      i.e. every request pays a full factorization -- what a caller
//      without the service would do;
//   2. cached throughput: async submit() of every request into the warm
//      service, drain, wall-clock QPS.  The acceptance gate is
//      qps_cached / qps_nocache >= 5 (factor-once/solve-many economics);
//   3. open-loop latency: requests arrive on a fixed schedule at half the
//      measured cached QPS, latency is measured completion - *scheduled*
//      arrival (not submit), so queue buildup is charged to the requests
//      that suffered it -- no coordinated omission.  p50/p99/p999 come
//      from the log-bucketed histogram machinery (util/metrics.h, <= 25%
//      relative bucket error).
//
// Output: BENCH_service.json with qps_cached / qps_nocache /
// cache_speedup / hit_rate / p50_us / p99_us / p999_us metrics and the
// service's own stats under the "service" section.  CI gates on
// cache_speedup and on the percentile keys being present (.github/
// workflows/ci.yml, perf-smoke job).
#include <chrono>
#include <cmath>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

namespace {

// TraceClock-based wait until `sched_ns`: coarse sleep, then spin.
void wait_until_ns(std::uint64_t sched_ns) {
  for (;;) {
    const std::uint64_t now = util::TraceClock::now_ns();
    if (now >= sched_ns) return;
    const std::uint64_t left = sched_ns - now;
    if (left > 200000) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(left - 100000));
    } else {
      std::this_thread::yield();
    }
  }
}

std::vector<double> rhs_for(la::index_t n, int r) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (la::index_t i = 0; i < n; ++i) {
    b[static_cast<std::size_t>(i)] = std::sin(0.02 * static_cast<double>(i) + 0.3 * r);
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const auto n = static_cast<la::index_t>(cli.get_int("n", 512));
  const int reqs = static_cast<int>(cli.get_int("reqs", 2000));
  const int reqs_nocache = static_cast<int>(cli.get_int("reqs-nocache", 50));
  const double openloop_frac = cli.get_double("openloop-frac", 0.5);

  bench::Obs obs(cli);
  const double bench_t0 = util::wall_seconds();
  std::cout << "# bench_service: factor-once/solve-many SLO bench, n=" << n << "\n";

  // Live telemetry: flags layer over the BST_TELEMETRY_* / BST_SLO_* env
  // (docs/OBSERVABILITY.md).  With an output configured the exporter ticks
  // for the whole bench, so `bst_top --stream=<out>` watches it live and
  // the telemetry-smoke CI job validates the Prometheus exposition.
  util::TelemetryOptions tel = util::TelemetryOptions::from_env();
  tel.out = cli.get("telemetry-out", tel.out);
  tel.prom = cli.get("telemetry-prom", tel.prom);
  tel.interval_ms = static_cast<std::uint64_t>(
      cli.get_int("telemetry-interval-ms", static_cast<long>(tel.interval_ms)));
  tel.slo_p99_ms = cli.get_double("slo-p99-ms", tel.slo_p99_ms);
  util::TelemetryExporter exporter(tel);
  exporter.start();

  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.7);
  service::ServiceOptions opt = service::ServiceOptions::from_env();

  // Phase 1: no-cache baseline -- every solve() refactors.
  double qps_nocache = 0.0;
  {
    service::ServiceOptions no_cache = opt;
    no_cache.cache_enabled = false;
    service::Service svc(no_cache);
    const double t0 = util::wall_seconds();
    for (int r = 0; r < reqs_nocache; ++r) svc.solve(t, rhs_for(n, r));
    qps_nocache = reqs_nocache / (util::wall_seconds() - t0);
  }

  // Phases 2 + 3 share one service so the open-loop phase runs warm.
  service::Service svc(opt);
  svc.solve(t, rhs_for(n, 0));  // warm the cache: the one and only miss

  double qps_cached = 0.0;
  {
    std::vector<std::future<service::SolveResult>> futs;
    futs.reserve(static_cast<std::size_t>(reqs));
    const double t0 = util::wall_seconds();
    for (int r = 0; r < reqs; ++r) futs.push_back(svc.submit(t, rhs_for(n, r)));
    for (auto& f : futs) f.get();
    qps_cached = reqs / (util::wall_seconds() - t0);
  }
  const double cache_speedup = qps_cached / qps_nocache;

  // Phase 3: open-loop arrivals at a fraction of the measured capacity.
  const double rate_qps = openloop_frac * qps_cached;
  const auto period_ns = static_cast<std::uint64_t>(1e9 / rate_qps);
  const util::HistId lat_hist = util::Metrics::histogram("service_openloop_ns");
  {
    std::vector<std::future<service::SolveResult>> futs;
    std::vector<std::uint64_t> sched(static_cast<std::size_t>(reqs));
    futs.reserve(static_cast<std::size_t>(reqs));
    const std::uint64_t start_ns = util::TraceClock::now_ns() + period_ns;
    for (int r = 0; r < reqs; ++r) {
      const std::uint64_t at = start_ns + static_cast<std::uint64_t>(r) * period_ns;
      sched[static_cast<std::size_t>(r)] = at;
      wait_until_ns(at);
      futs.push_back(svc.submit(t, rhs_for(n, r)));
    }
    for (int r = 0; r < reqs; ++r) {
      const service::SolveResult res = futs[static_cast<std::size_t>(r)].get();
      // Latency vs the *scheduled* arrival: a stalled dispatcher charges
      // the stall to every request scheduled during it.
      util::Metrics::record(lat_hist, res.done_ns - sched[static_cast<std::size_t>(r)]);
    }
  }
  svc.drain();

  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  for (const util::HistogramStats& h : util::Metrics::snapshot()) {
    if (h.name == "service_openloop_ns") {
      p50_us = h.quantile(0.5) / 1e3;
      p99_us = h.quantile(0.99) / 1e3;
      p999_us = h.quantile(0.999) / 1e3;
    }
  }
  const service::ServiceStats stats = svc.stats();

  util::Table table("Service SLO summary");
  table.header({"qps_cached", "qps_nocache", "speedup", "hit_rate", "p50_us", "p99_us",
                "p999_us", "mean_batch"});
  table.row({qps_cached, qps_nocache, cache_speedup, stats.cache.hit_rate(), p50_us, p99_us,
             p999_us, stats.mean_batch()});
  table.precision(3);
  table.print(std::cout);

  util::PerfReport report("bench_service");
  report.param("n", static_cast<std::int64_t>(n));
  report.param("reqs", static_cast<std::int64_t>(reqs));
  report.param("reqs_nocache", static_cast<std::int64_t>(reqs_nocache));
  report.param("openloop_frac", openloop_frac);
  report.param("rhs_panel", static_cast<std::int64_t>(svc.options().rhs_panel));
  report.param("max_batch", static_cast<std::int64_t>(svc.options().max_batch));
  report.metric("time_s", util::wall_seconds() - bench_t0);
  report.metric("qps_cached", qps_cached);
  report.metric("qps_nocache", qps_nocache);
  report.metric("cache_speedup", cache_speedup);
  report.metric("hit_rate", stats.cache.hit_rate());
  report.metric("openloop_qps", rate_qps);
  report.metric("p50_us", p50_us);
  report.metric("p99_us", p99_us);
  report.metric("p999_us", p999_us);
  exporter.stop();  // final tick lands before the report reads its stats
  if (tel.active()) {
    report.metric("telemetry_ticks", static_cast<double>(exporter.ticks()));
    report.metric("telemetry_self_s", exporter.self_seconds());
  }
  report.set_extra("service", svc.stats_json());
  report.add_table(table);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_service.json");
  return 0;
}
