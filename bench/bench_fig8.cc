// Reproduces paper Figure 8: 4096 x 4096 block Toeplitz with m = 32 on a
// 64-PE T3D, V1 vs V3 with varying spread (number of PEs per block).
//
// Expected shape: with only p = 128 blocks on 64 PEs, V1 leaves most PEs
// idle; splitting each block over `spread` PEs buys parallelism until the
// extra broadcasts win -- optimum spread ~ 8 (paper section 7.1.7).
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const la::index_t m = cli.get_int("m", 32);
  const la::index_t n = cli.get_int("n", 4096);
  const int np = static_cast<int>(cli.get_int("np", 64));
  const la::index_t p = n / m;
  bench::Obs obs(cli);

  std::cout << "# bench_fig8: " << n << " x " << n << " block Toeplitz, m=" << m
            << ", NP=" << np << " (simulated T3D)\n";
  util::Table tab("Figure 8: factor time vs spread (PEs per block)");
  tab.header({"spread", "scheme", "time (s)", "compute (s)", "bcast (s)", "barrier idle (s)"});
  util::PerfReport report("bench_fig8");
  report.param("n", static_cast<std::int64_t>(n));
  report.param("m", static_cast<std::int64_t>(m));
  report.param("np", static_cast<std::int64_t>(np));
  double best_sim = 1e300;
  {
    simnet::DistOptions opt;
    opt.np = np;
    opt.layout = simnet::Layout::V1;
    simnet::DistResult r = simnet::dist_schur_model(m, p, opt);
    best_sim = std::min(best_sim, r.sim_seconds);
    tab.row({1LL, std::string("V1"), r.sim_seconds, r.breakdown.compute / np,
             r.breakdown.broadcast, r.breakdown.barrier / np});
  }
  for (la::index_t spread : {2, 4, 8, 16, 32}) {
    simnet::DistOptions opt;
    opt.np = np;
    opt.layout = simnet::Layout::V3;
    opt.spread = spread;
    simnet::DistResult r = simnet::dist_schur_model(m, p, opt);
    best_sim = std::min(best_sim, r.sim_seconds);
    tab.row({static_cast<long long>(spread), std::string("V3"), r.sim_seconds,
             r.breakdown.compute / np, r.breakdown.broadcast, r.breakdown.barrier / np});
    if (spread == 8) {  // the paper's optimum: keep its per-PE comm profile
      for (const simnet::PeCommStats& pe : r.comm) {
        report.add_pe_comm(pe.bytes_sent, pe.bytes_recv, pe.messages);
      }
      if (!r.schedule.empty()) report.add_par_analysis(util::analyze_schedule(r.schedule));
    }
  }
  tab.precision(4);
  tab.print(std::cout);
  report.metric("sim_seconds", best_sim);
  report.add_table(tab);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_fig8.json");
  std::cout << "paper: optimal spread is 8; larger spreads lose to broadcast cost\n";
  return 0;
}
