// Reproduces the representation-cost comparison of paper section 6
// (eqs. 25-28: blocking flops; eqs. 29-32: application flops), as both the
// closed-form models and measurements of the real kernels:
//   * instrumented flop counts of one build + one application,
//   * wall time of a full factorization per representation.
//
// Expected shape (paper): YTY cheapest to build, VY2 cheapest to apply,
// the naive accumulated-U scheme far more expensive than any blocked form.
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;
using core::Representation;

namespace {

constexpr Representation kReps[] = {Representation::AccumulatedU, Representation::VY1,
                                    Representation::VY2, Representation::YTY};

void model_table(la::index_t p, util::PerfReport& report) {
  util::Table build("Blocking flops to form the step reflector (k = m), eqs. 25-28");
  build.header({"m", "U (eq.25)", "VY1 (eq.26)", "VY2 (eq.27)", "YTY (eq.28)"});
  for (la::index_t m : {2, 4, 8, 16, 32, 64}) {
    build.row({static_cast<long long>(m), core::blocking_flops_accumulated_u(m, m),
               core::blocking_flops_vy1(m, m), core::blocking_flops_vy2(m, m),
               core::blocking_flops_yty(m, m)});
  }
  build.print(std::cout);
  report.add_table(build);

  util::Table apply("Application flops to a 2m x mp generator (k = m), eqs. 29-32");
  apply.header({"m", "p", "U (eq.29)", "VY1 (eq.30)", "VY2 (eq.31)", "YTY (eq.32)"});
  for (la::index_t m : {2, 4, 8, 16, 32, 64}) {
    apply.row({static_cast<long long>(m), static_cast<long long>(p),
               core::application_flops_accumulated_u(m, p, m),
               core::application_flops_vy1(m, p, m), core::application_flops_vy2(m, p, m),
               core::application_flops_yty(m, p, m)});
  }
  apply.print(std::cout);
  report.add_table(apply);
}

void measured_table(la::index_t m, la::index_t p, util::PerfReport& report) {
  toeplitz::BlockToeplitz t =
      toeplitz::random_spd_block(m, p, 2, /*seed=*/7).with_block_size(m);
  util::Table tab("Measured: full factorization per representation");
  tab.header({"rep", "n", "m", "flops (counted)", "time (s)", "MFLOP/s"});
  for (Representation rep : kReps) {
    core::SchurOptions opt;
    opt.rep = rep;
    const double t0 = util::wall_seconds();
    core::SchurFactor f = core::block_schur_factor(t, opt);
    const double dt = util::wall_seconds() - t0;
    tab.row({std::string(core::to_string(rep)), static_cast<long long>(t.order()),
             static_cast<long long>(m), static_cast<long long>(f.flops), dt,
             static_cast<double>(f.flops) / dt / 1e6});
  }
  // Sequential (unblocked) reference.
  {
    core::SchurOptions opt;
    opt.rep = Representation::Sequential;
    const double t0 = util::wall_seconds();
    core::SchurFactor f = core::block_schur_factor(t, opt);
    const double dt = util::wall_seconds() - t0;
    tab.row({std::string("seq"), static_cast<long long>(t.order()), static_cast<long long>(m),
             static_cast<long long>(f.flops), dt, static_cast<double>(f.flops) / dt / 1e6});
  }
  tab.print(std::cout);
  report.add_table(tab);
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const la::index_t p = cli.get_int("p", 64);
  bench::Obs obs(cli);
  util::PerfReport report("bench_forms");
  report.param("p", static_cast<std::int64_t>(p));
  const double run_t0 = util::wall_seconds();
  std::cout << "# bench_forms: representation tradeoffs (paper section 6)\n";
  model_table(p, report);
  measured_table(cli.get_int("m", 16), p, report);
  measured_table(cli.get_int("m2", 32), cli.get_int("p2", 32), report);
  report.metric("time_s", util::wall_seconds() - run_t0);
  obs.finish(report);
  return 0;
}
