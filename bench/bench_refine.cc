// Reproduces the paper's section 8 experiment: solving symmetric Toeplitz
// systems with singular principal minors via the perturbed factorization
// plus iterative refinement.
//
//  * Table 1: the worked 6x6 example (first row eq. 50): the perturbed
//    pivot, ||dT T^-1||, and the error trajectory
//    ||x - x_1|| ~ 3.6e-5  ->  ~7.0e-10  ->  ~1.6e-14 (machine precision).
//  * Table 2: random singular-minor families: perturbation counts and
//    refinement steps ("typically two steps are sufficient").
#include <cmath>
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

namespace {

double err(const std::vector<double>& x, const std::vector<double>& ref) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - ref[i]) * (x[i] - ref[i]);
  return std::sqrt(s);
}

void paper_example(util::PerfReport& report) {
  toeplitz::BlockToeplitz t = toeplitz::paper_example_6x6();
  core::IndefiniteOptions opt;
  opt.delta = 1e-5;  // cbrt(1e-16), the paper's choice
  core::LdlFactor f = core::block_schur_indefinite(t, opt);

  std::cout << "worked example: first row (1.0000 1.0000 0.5297 0.6711 0.0077 0.3834)\n";
  for (const auto& e : f.perturbations) {
    std::cout << "  perturbation at step " << e.step << ": pivot " << e.old_pivot << " -> ";
    printf("%.13f (paper: 1.0000049999875)\n", std::fabs(e.new_pivot));
  }

  // ||dT T^-1||: dT = R^T D R - T.
  const la::index_t n = 6;
  la::Mat dr(n, n);
  la::copy(f.r.view(), dr.view());
  for (la::index_t j = 0; j < n; ++j)
    for (la::index_t i = 0; i < n; ++i) dr(i, j) *= f.d[static_cast<std::size_t>(i)];
  la::Mat rec(n, n);
  la::gemm(la::Op::Trans, la::Op::None, 1.0, f.r.view(), dr.view(), 0.0, rec.view());
  la::Mat dense = t.dense();
  la::Mat dt(n, n);
  for (la::index_t j = 0; j < n; ++j)
    for (la::index_t i = 0; i < n; ++i) dt(i, j) = rec(i, j) - dense(i, j);
  // dT T^-1 row by row: T X^T = dT^T (T symmetric), solved with the
  // refined solver itself -- T has a singular principal minor, so the
  // unpivoted dense LDL^T cannot be used here.
  double gamma = 0.0;
  {
    toeplitz::MatVec op(t);
    auto fsolve = [&](const std::vector<double>& rhs, std::vector<double>& out) {
      out = core::solve_ldl(f, rhs);
    };
    la::Mat x(n, n);
    for (la::index_t j = 0; j < n; ++j) {
      std::vector<double> col(static_cast<std::size_t>(n));
      for (la::index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = dt(j, i);
      core::RefineResult rr = core::solve_refined(op, fsolve, col);
      for (la::index_t i = 0; i < n; ++i) x(j, i) = rr.x[static_cast<std::size_t>(i)];
    }
    gamma = la::frobenius(x.view());
  }
  printf("  ||dT T^-1|| = %.4e   (paper: 2.8753e-05)\n", gamma);

  const std::vector<double> xtrue(6, 1.0);
  toeplitz::MatVec op(t);
  std::vector<double> b;
  op.apply(xtrue, b);

  util::Table tab("Error trajectory ||x - x_i|| under iterative refinement");
  tab.header({"i", "||x - x_i||", "paper"});
  std::vector<double> x = core::solve_ldl(f, b);
  tab.row({1LL, err(x, xtrue), std::string("3.6375e-05")});
  std::vector<double> r(6), dx;
  const char* paper_vals[] = {"6.9982e-10", "1.5877e-14"};
  for (int it = 0; it < 2; ++it) {
    op.residual(b, x, r);
    dx = core::solve_ldl(f, r);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
    tab.row({static_cast<long long>(it + 2), err(x, xtrue), std::string(paper_vals[it])});
  }
  tab.precision(5);
  tab.print(std::cout);
  report.add_table(tab);
}

void family_table(la::index_t n, int seeds, util::PerfReport& report) {
  util::Table tab("Random singular-minor Toeplitz systems (n = " + std::to_string(n) + ")");
  tab.header({"seed", "perturbations", "interchanges", "refine steps", "final rel err"});
  for (int seed = 1; seed <= seeds; ++seed) {
    toeplitz::BlockToeplitz t =
        toeplitz::singular_minor_family(n, static_cast<std::uint64_t>(seed));
    core::LdlFactor f = core::block_schur_indefinite(t);
    std::vector<double> b = toeplitz::rhs_for_ones(t);
    toeplitz::MatVec op(t);
    core::RefineResult res = core::solve_refined(
        op,
        [&](const std::vector<double>& rhs, std::vector<double>& out) {
          out = core::solve_ldl(f, rhs);
        },
        b);
    const std::vector<double> ones(static_cast<std::size_t>(n), 1.0);
    tab.row({static_cast<long long>(seed), static_cast<long long>(f.perturbations.size()),
             static_cast<long long>(f.interchanges), static_cast<long long>(res.iterations),
             err(res.x, ones) / std::sqrt(static_cast<double>(n))});
  }
  tab.precision(3);
  tab.print(std::cout);
  report.add_table(tab);
  std::cout << "paper: \"typically two steps of iterative refinement are sufficient\"\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  bench::Obs obs(cli);
  util::PerfReport report("bench_refine");
  report.param("n", cli.get_int("n", 64));
  report.param("n2", cli.get_int("n2", 256));
  report.param("seeds", cli.get_int("seeds", 10));
  const double run_t0 = util::wall_seconds();
  std::cout << "# bench_refine: singular-minor perturbation + iterative refinement "
               "(paper section 8)\n";
  paper_example(report);
  family_table(cli.get_int("n", 64), static_cast<int>(cli.get_int("seeds", 10)), report);
  family_table(cli.get_int("n2", 256), static_cast<int>(cli.get_int("seeds", 10)), report);
  report.metric("time_s", util::wall_seconds() - run_t0);
  obs.finish(report);
  return 0;
}
