// bench_superfast: the superfast tier's two speed claims, measured.
//
//  * Residual sweep: the cost of one residual r = b - T x through the
//    dense block matvec vs the cached block-circulant FFT embedding
//    (toeplitz/fft.h), over a size sweep up to --nmax.  The dense route is
//    O(n^2); the FFT route is O(m^2 n log n) after a one-time O(m^2 n log n)
//    setup, so the gap widens with n.  CI gates on
//    metrics.fft_speedup_n4096 >= 4 (see .github/workflows/ci.yml).
//  * Solver crossover: wall time of the full Schur factorization solve vs
//    the circulant-preconditioned CG route (core/pcg.h) on a large
//    well-conditioned KMS instance, both forced through core::toeplitz_solve
//    so the timings include exactly what the policy dispatches.  CI gates
//    on metrics.pcg_speedup > 1.
//
// Emits BENCH_superfast.json (bench_obs.h conventions: --json / BST_BENCH_OUT,
// --profile/--trace/--ledger for the observability surface).
#include <cmath>
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

namespace {

// Per-call seconds of `body`, repeated until the total passes a small time
// target so ms-scale and us-scale costs are measured with the same noise.
template <typename F>
double time_per_call(F&& body, double target_s = 0.05) {
  const double t0 = util::wall_seconds();
  int calls = 0;
  double elapsed = 0.0;
  do {
    body();
    ++calls;
    elapsed = util::wall_seconds() - t0;
  } while (elapsed < target_s);
  return elapsed / calls;
}

void residual_sweep(const util::Cli& cli, util::PerfReport& report) {
  const la::index_t nmax = cli.get_int("nmax", 4096);
  const la::index_t ms = cli.get_int("ms", 4);
  util::Table tab("Residual r = b - T x: dense block matvec vs FFT embedding");
  tab.header({"n", "dense_ms", "fft_ms", "speedup"});
  for (la::index_t n = 256; n <= nmax; n *= 4) {
    toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5).with_block_size(ms);
    const std::vector<double> b = toeplitz::rhs_for_ones(t);
    const std::vector<double> x(static_cast<std::size_t>(n), 1.0);
    std::vector<double> r;
    toeplitz::MatVec dense(t, toeplitz::MatVecMode::Direct);
    // Spectra are built in the ctor (outside the timed region): the gate
    // is about the steady-state residual cost of refinement loops, where
    // the one-time setup is amortized over every sweep.
    toeplitz::MatVec fft(t, toeplitz::MatVecMode::Fft);
    const double dense_s = time_per_call([&] { dense.residual(b, x, r); });
    const double fft_s = time_per_call([&] { fft.residual(b, x, r); });
    const double speedup = fft_s > 0.0 ? dense_s / fft_s : 0.0;
    tab.row({static_cast<long long>(n), dense_s * 1e3, fft_s * 1e3, speedup});
    report.metric("fft_speedup_n" + std::to_string(n), speedup);
    if (n == nmax) {
      report.metric("dense_residual_ms", dense_s * 1e3);
      report.metric("fft_residual_ms", fft_s * 1e3);
    }
  }
  tab.precision(3);
  tab.print(std::cout);
  report.add_table(tab);
}

void solver_crossover(const util::Cli& cli, util::PerfReport& report) {
  const la::index_t n = cli.get_int("nmax", 4096);
  const la::index_t ms = cli.get_int("ms", 4);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5).with_block_size(ms);
  const std::vector<double> b = toeplitz::rhs_for_ones(t);

  core::SolveOptions schur_opt;
  schur_opt.policy.kind = core::SolverKind::Schur;
  const double t0 = util::wall_seconds();
  core::SolveReport schur_rep = core::toeplitz_solve(t, b, schur_opt);
  const double schur_s = util::wall_seconds() - t0;

  core::SolveOptions pcg_opt;
  pcg_opt.policy.kind = core::SolverKind::Pcg;
  const double t1 = util::wall_seconds();
  core::SolveReport pcg_rep = core::toeplitz_solve(t, b, pcg_opt);
  const double pcg_s = util::wall_seconds() - t1;

  util::Table tab("Full Schur vs circulant-preconditioned CG (kms, rho = 0.5)");
  tab.header({"solver", "time_ms", "residual", "pcg_iters"});
  tab.row({std::string(schur_rep.solver_path), schur_s * 1e3, schur_rep.final_residual,
           static_cast<long long>(schur_rep.pcg_iterations)});
  tab.row({std::string(pcg_rep.solver_path), pcg_s * 1e3, pcg_rep.final_residual,
           static_cast<long long>(pcg_rep.pcg_iterations)});
  tab.precision(3);
  tab.print(std::cout);
  report.add_table(tab);
  report.metric("schur_ms", schur_s * 1e3);
  report.metric("pcg_ms", pcg_s * 1e3);
  report.metric("pcg_speedup", pcg_s > 0.0 ? schur_s / pcg_s : 0.0);
  report.metric("pcg_iterations", pcg_rep.pcg_iterations);
  report.metric("pcg_residual", pcg_rep.final_residual);
  std::cout << "crossover: schur " << schur_s * 1e3 << " ms vs pcg " << pcg_s * 1e3
            << " ms (" << pcg_rep.pcg_iterations << " iterations)\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  bench::Obs obs(cli);
  util::PerfReport report("bench_superfast");
  report.param("nmax", cli.get_int("nmax", 4096));
  report.param("ms", cli.get_int("ms", 4));
  const double run_t0 = util::wall_seconds();
  std::cout << "# bench_superfast: FFT residuals + PCG vs the full Schur factorization\n";
  residual_sweep(cli, report);
  solver_crossover(cli, report);
  report.metric("time_s", util::wall_seconds() - run_t0);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_superfast.json");
  return 0;
}
