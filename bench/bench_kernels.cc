// Google-benchmark microbenchmarks of the dense kernel substrate: the
// shape-dependent BLAS3 rates that drive the paper's block-size tradeoff
// (section 6.5: "BLAS3 primitives applied to matrices with larger
// dimensions have sufficient performance advantage...").
#include <benchmark/benchmark.h>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

namespace {

const bool kFtz = [] {
  util::enable_flush_to_zero();
  return true;
}();

la::Mat random_matrix(la::index_t r, la::index_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Mat a(r, c);
  for (la::index_t j = 0; j < c; ++j)
    for (la::index_t i = 0; i < r; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

// Square gemm: rate vs dimension.
void BM_GemmSquare(benchmark::State& state) {
  const la::index_t n = state.range(0);
  la::Mat a = random_matrix(n, n, 1), b = random_matrix(n, n, 2), c(n, n);
  for (auto _ : state) {
    la::gemm(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSquare)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The algorithm's actual shape: small square (2m x 2m quadrant pieces)
// times a short-and-wide generator strip -- the "extreme shapes" the paper
// calls out on the Y-MP.
void BM_GemmShortWide(benchmark::State& state) {
  const la::index_t m = state.range(0);
  const la::index_t width = 4096;
  la::Mat a = random_matrix(m, m, 3), b = random_matrix(m, width, 4), c(m, width);
  for (auto _ : state) {
    la::gemm(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * m * m * width * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmShortWide)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Gemv(benchmark::State& state) {
  const la::index_t n = state.range(0);
  la::Mat a = random_matrix(n, n, 5);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    la::gemv(false, 1.0, a.view(), x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * n * n * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemv)->Arg(64)->Arg(256)->Arg(1024);

void BM_Cholesky(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  la::Mat dense = t.dense();
  la::Mat work(n, n);
  for (auto _ : state) {
    la::copy(dense.view(), work.view());
    benchmark::DoNotOptimize(la::cholesky_lower(work.view()));
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      n * n * n / 3.0 * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Cholesky)->Arg(128)->Arg(256)->Arg(512);

// One block Schur step: build + apply for the working block size, the
// kernel mix the representation choice controls.
void BM_SchurStep(benchmark::State& state) {
  const la::index_t m = state.range(0);
  const auto rep = static_cast<core::Representation>(state.range(1));
  const la::index_t p = 4096 / m;
  toeplitz::BlockToeplitz t = toeplitz::kms(4096, 0.6).with_block_size(m);
  core::Generator g0 = core::make_generator_spd(t);
  core::Generator g = g0;
  core::SchurOptions opt;
  opt.rep = rep;
  for (auto _ : state) {
    state.PauseTiming();
    g.a = g0.a;
    g.b = g0.b;
    state.ResumeTiming();
    core::schur_step(g, 1, opt);
  }
  state.counters["flops/step"] =
      core::blocking_flops(rep, m, m) + core::application_flops(rep, m, p - 2, m);
}
BENCHMARK(BM_SchurStep)
    ->Args({8, 2})   // m=8, VY2
    ->Args({8, 3})   // m=8, YTY
    ->Args({8, 0})   // m=8, U
    ->Args({32, 2})
    ->Args({32, 3})
    ->Args({32, 0});

void BM_ToeplitzMatvecDirect(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  toeplitz::MatVec op(t, toeplitz::MatVecMode::Direct);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y;
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ToeplitzMatvecDirect)->Arg(1024)->Arg(4096);

void BM_ToeplitzMatvecFft(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  toeplitz::MatVec op(t, toeplitz::MatVecMode::Fft);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y;
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ToeplitzMatvecFft)->Arg(1024)->Arg(4096);

}  // namespace

// Custom main (instead of benchmark::benchmark_main) so the shared
// observability flags work here too: google-benchmark's Initialize strips
// the flags it recognises and leaves ours in argv.
int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::Obs obs(cli);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  util::PerfReport report("bench_kernels");
  obs.finish(report);
  return 0;
}
