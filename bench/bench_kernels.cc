// Google-benchmark microbenchmarks of the dense kernel substrate: the
// shape-dependent BLAS3 rates that drive the paper's block-size tradeoff
// (section 6.5: "BLAS3 primitives applied to matrices with larger
// dimensions have sufficient performance advantage...").
//
// Besides the google-benchmark timings, main() runs a self-timed
// packed-vs-seed sweep (squares up to 1024 plus the Schur panel shapes)
// whose GF/s land as named metrics in BENCH_kernels.json --
// gemm_packed_512_gflops, gemm_seed_512_gflops, ... -- so CI can gate the
// kernel stack against the pre-packing baseline without parsing benchmark
// output.  sweep_model_ratio cross-checks the flop counters against the
// closed-form models over the whole sweep (must stay within [0.9, 1.1] at
// any thread count; the kernels charge closed forms merged at join, so any
// drift means the counter plumbing broke).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>

#include "bench_obs.h"
#include "bst.h"
#include "la/kernel_config.h"
#include "util/flops.h"
#include "util/table.h"

using namespace bst;

namespace {

const bool kFtz = [] {
  util::enable_flush_to_zero();
  return true;
}();

la::Mat random_matrix(la::index_t r, la::index_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Mat a(r, c);
  for (la::index_t j = 0; j < c; ++j)
    for (la::index_t i = 0; i < r; ++i) a(i, j) = rng.uniform(-1, 1);
  return a;
}

// Square gemm: rate vs dimension.
void BM_GemmSquare(benchmark::State& state) {
  const la::index_t n = state.range(0);
  la::Mat a = random_matrix(n, n, 1), b = random_matrix(n, n, 2), c(n, n);
  for (auto _ : state) {
    la::gemm(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmSquare)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The algorithm's actual shape: small square (2m x 2m quadrant pieces)
// times a short-and-wide generator strip -- the "extreme shapes" the paper
// calls out on the Y-MP.
void BM_GemmShortWide(benchmark::State& state) {
  const la::index_t m = state.range(0);
  const la::index_t width = 4096;
  la::Mat a = random_matrix(m, m, 3), b = random_matrix(m, width, 4), c(m, width);
  for (auto _ : state) {
    la::gemm(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * m * m * width * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmShortWide)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Gemv(benchmark::State& state) {
  const la::index_t n = state.range(0);
  la::Mat a = random_matrix(n, n, 5);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y(static_cast<std::size_t>(n));
  for (auto _ : state) {
    la::gemv(false, 1.0, a.view(), x.data(), 0.0, y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      2.0 * n * n * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemv)->Arg(64)->Arg(256)->Arg(1024);

void BM_Cholesky(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  la::Mat dense = t.dense();
  la::Mat work(n, n);
  for (auto _ : state) {
    la::copy(dense.view(), work.view());
    benchmark::DoNotOptimize(la::cholesky_lower(work.view()));
  }
  state.counters["MFLOP/s"] = benchmark::Counter(
      n * n * n / 3.0 * state.iterations() / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Cholesky)->Arg(128)->Arg(256)->Arg(512);

// One block Schur step: build + apply for the working block size, the
// kernel mix the representation choice controls.
void BM_SchurStep(benchmark::State& state) {
  const la::index_t m = state.range(0);
  const auto rep = static_cast<core::Representation>(state.range(1));
  const la::index_t p = 4096 / m;
  toeplitz::BlockToeplitz t = toeplitz::kms(4096, 0.6).with_block_size(m);
  core::Generator g0 = core::make_generator_spd(t);
  core::Generator g = g0;
  core::SchurOptions opt;
  opt.rep = rep;
  for (auto _ : state) {
    state.PauseTiming();
    g.a = g0.a;
    g.b = g0.b;
    state.ResumeTiming();
    core::schur_step(g, 1, opt);
  }
  state.counters["flops/step"] =
      core::blocking_flops(rep, m, m) + core::application_flops(rep, m, p - 2, m);
}
BENCHMARK(BM_SchurStep)
    ->Args({8, 2})   // m=8, VY2
    ->Args({8, 3})   // m=8, YTY
    ->Args({8, 0})   // m=8, U
    ->Args({32, 2})
    ->Args({32, 3})
    ->Args({32, 0});

void BM_ToeplitzMatvecDirect(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  toeplitz::MatVec op(t, toeplitz::MatVecMode::Direct);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y;
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ToeplitzMatvecDirect)->Arg(1024)->Arg(4096);

void BM_ToeplitzMatvecFft(benchmark::State& state) {
  const la::index_t n = state.range(0);
  toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.5);
  toeplitz::MatVec op(t, toeplitz::MatVecMode::Fft);
  std::vector<double> x(static_cast<std::size_t>(n), 1.0), y;
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ToeplitzMatvecFft)->Arg(1024)->Arg(4096);

// ----- packed-vs-seed sweep -------------------------------------------------

double seconds_of(const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  fn();
  return std::chrono::duration<double>(clock::now() - t0).count();
}

// Best-of GF/s: one warmup, then repeat until ~50 ms accumulated (at least
// two timed reps) and keep the fastest.
double best_gflops(double flops, const std::function<void()>& fn) {
  fn();  // warmup (packing buffers, page faults)
  double best = 0.0, total = 0.0;
  for (int rep = 0; rep < 16 && (rep < 2 || total < 0.05); ++rep) {
    const double s = seconds_of(fn);
    total += s;
    if (s > 0.0) best = std::max(best, flops / s * 1e-9);
  }
  return best;
}

// The sweep CI gates on: packed (public la::gemm, active KernelConfig,
// global pool) against the seed baseline (detail::gemm_seed) over squares
// and the Schur generator-panel shapes, plus syrk/trsm rates.  Returns the
// closed-form flop total the charging kernels should have counted.
double run_kernel_sweep(util::PerfReport& report) {
  util::Table table("kernel sweep: packed vs seed (GF/s)");
  table.header({"kernel", "shape", "packed", "seed", "ratio"});
  double modeled = 0.0;

  for (const la::index_t n : {64, 128, 256, 512, 1024}) {
    la::Mat a = random_matrix(n, n, 11), b = random_matrix(n, n, 12), c(n, n);
    const double flops = 2.0 * n * n * n;
    const double packed = best_gflops(flops, [&] {
      la::gemm(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
      modeled += flops;
    });
    const double seed = best_gflops(flops, [&] {
      la::detail::gemm_seed(la::Op::None, la::Op::None, 1.0, a.view(), b.view(), 0.0, c.view());
    });
    report.metric("gemm_packed_" + std::to_string(n) + "_gflops", packed);
    report.metric("gemm_seed_" + std::to_string(n) + "_gflops", seed);
    table.row({std::string("gemm"), std::to_string(n) + "x" + std::to_string(n),
               packed, seed, seed > 0 ? packed / seed : 0.0});
  }

  // Schur hot shapes: the Y^T [A; B] panel product (2m x m)^T (2m x L).
  const la::index_t width = 2048;
  for (const la::index_t m : {1, 2, 4, 8, 16}) {
    la::Mat y = random_matrix(2 * m, m, 13), g = random_matrix(2 * m, width, 14);
    la::Mat c(m, width);
    const double flops = 2.0 * m * width * (2 * m);
    const double packed = best_gflops(flops, [&] {
      la::gemm(la::Op::Trans, la::Op::None, 1.0, y.view(), g.view(), 0.0, c.view());
      modeled += flops;
    });
    const double seed = best_gflops(flops, [&] {
      la::detail::gemm_seed(la::Op::Trans, la::Op::None, 1.0, y.view(), g.view(), 0.0, c.view());
    });
    report.metric("gemm_schur_m" + std::to_string(m) + "_gflops", packed);
    table.row({std::string("gemm^T"), std::to_string(2 * m) + "x" + std::to_string(width),
               packed, seed, seed > 0 ? packed / seed : 0.0});
  }

  {
    const la::index_t n = 512, k = 256;
    la::Mat a = random_matrix(n, k, 15), c(n, n);
    const double flops = static_cast<double>(n) * (n + 1) * k;  // as charged
    const double rate = best_gflops(flops, [&] {
      la::syrk_lower(1.0, a.view(), 0.0, c.view());
      modeled += flops;
    });
    report.metric("syrk_512_gflops", rate);
    table.row({std::string("syrk"), std::string("512x512,k=256"), rate, 0.0, 0.0});
  }

  {
    const la::index_t m = 512, cols = 256;
    la::Mat t = random_matrix(m, m, 16);
    for (la::index_t j = 0; j < m; ++j) t(j, j) = 4.0 + t(j, j);
    la::Mat b = random_matrix(m, cols, 17);
    la::Mat x(m, cols);
    const double flops = static_cast<double>(cols) * m * m;  // as charged
    const double rate = best_gflops(flops, [&] {
      la::copy(b.view(), x.view());
      la::trsm(la::Side::Left, la::Uplo::Lower, la::Op::None, la::Diag::NonUnit, 1.0, t.view(),
               x.view());
      modeled += flops;
    });
    report.metric("trsm_512_gflops", rate);
    table.row({std::string("trsm"), std::string("512x512,rhs=256"), rate, 0.0, 0.0});
  }

  table.precision(4);
  report.add_table(table);
  return modeled;
}

}  // namespace

// Custom main (instead of benchmark::benchmark_main) so the shared
// observability flags work here too: google-benchmark's Initialize strips
// the flags it recognises and leaves ours in argv.
int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  bench::Obs obs(cli);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  util::PerfReport report("bench_kernels");
  const la::KernelConfig& cfg = la::KernelConfig::active();
  report.param("threads", static_cast<std::int64_t>(util::ThreadPool::global().size()));
  report.param("kernel_mc", static_cast<std::int64_t>(cfg.mc));
  report.param("kernel_kc", static_cast<std::int64_t>(cfg.kc));
  report.param("kernel_nc", static_cast<std::int64_t>(cfg.nc));
  report.param("kernel_simd",
               static_cast<std::int64_t>(cfg.simd && la::cpu_has_avx2_fma() ? 1 : 0));
  const std::uint64_t flops0 = util::FlopCounter::now();
  const double modeled = run_kernel_sweep(report);
  const double counted = static_cast<double>(util::FlopCounter::now() - flops0);
  report.metric("sweep_model_ratio", modeled > 0 ? counted / modeled : 0.0);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_kernels.json");
  return 0;
}
