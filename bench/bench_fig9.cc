// Reproduces paper Figure 9: time to factor a 1024 x 1024 block Toeplitz
// matrix with block sizes m = 2 and m = 4 as the machine size NP grows.
//
// Expected shape: m = 4 does ~2x the flops, so it loses on small machines;
// it halves the number of steps (and hence synchronizations/broadcasts)
// and updates memory more efficiently (4-word cache lines), so it wins on
// large machines -- the curves cross (paper section 7.1.7, last paragraph).
#include <algorithm>
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 1024);
  bench::Obs obs(cli);

  std::cout << "# bench_fig9: " << n << " x " << n << " block Toeplitz, m = 2 vs 4 "
            << "(simulated T3D)\n";
  util::Table tab("Figure 9: factor time vs NP for block sizes 2 and 4");
  tab.header({"NP", "m=2 (s)", "m=4 (s)", "faster"});
  double best_sim = 1e300;
  for (int np : {1, 2, 4, 8, 16, 32, 64}) {
    simnet::DistOptions opt;
    opt.np = np;
    const double t2 = simnet::dist_schur_model(2, n / 2, opt).sim_seconds;
    const double t4 = simnet::dist_schur_model(4, n / 4, opt).sim_seconds;
    best_sim = std::min({best_sim, t2, t4});
    tab.row({static_cast<long long>(np), t2, t4,
             std::string(t2 < t4 ? "m=2" : (t4 < t2 ? "m=4" : "tie"))});
  }
  tab.precision(4);
  tab.print(std::cout);
  util::PerfReport report("bench_fig9");
  report.param("n", static_cast<std::int64_t>(n));
  report.metric("sim_seconds", best_sim);
  report.add_table(tab);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_fig9.json");
  std::cout << "paper: m=4 is slower for small NP, faster for large NP "
               "(synchronization amortization + cache-line effects)\n";
  return 0;
}
