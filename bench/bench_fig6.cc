// Reproduces paper Figure 6: time to factor a 4096 x 4096 *point* (m = 1)
// Toeplitz matrix on a 16-PE T3D as the number b of adjacent blocks per PE
// varies (V1 at b = 1, V2 for b > 1).
//
// Expected shape: a sharp initial fall (the shift traffic drops by a factor
// b) to an optimum near b = 16, then a rise as the lost parallelism
// dominates (paper section 7.1.5).
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 4096);
  const int np = static_cast<int>(cli.get_int("np", 16));
  bench::Obs obs(cli);

  std::cout << "# bench_fig6: " << n << " x " << n << " point Toeplitz (m=1), NP=" << np
            << " (simulated T3D)\n";
  util::Table tab("Figure 6: factor time vs b (adjacent blocks per PE)");
  tab.header({"b", "scheme", "time (s)", "compute (s)", "shift (s)", "barrier idle (s)"});
  util::PerfReport report("bench_fig6");
  report.param("n", static_cast<std::int64_t>(n));
  report.param("np", static_cast<std::int64_t>(np));
  double best_sim = 1e300;
  for (la::index_t b : {1, 2, 4, 8, 16, 32, 64}) {
    simnet::DistOptions opt;
    opt.np = np;
    if (b == 1) {
      opt.layout = simnet::Layout::V1;
    } else {
      opt.layout = simnet::Layout::V2;
      opt.group = b;
    }
    simnet::DistResult r = simnet::dist_schur_model(1, n, opt);
    best_sim = std::min(best_sim, r.sim_seconds);
    tab.row({static_cast<long long>(b), std::string(to_string(opt.layout)), r.sim_seconds,
             r.breakdown.compute / np, r.breakdown.shift / np, r.breakdown.barrier / np});
    if (b == 1) {
      for (const simnet::PeCommStats& pe : r.comm) {
        report.add_pe_comm(pe.bytes_sent, pe.bytes_recv, pe.messages);
      }
      if (!r.schedule.empty()) report.add_par_analysis(util::analyze_schedule(r.schedule));
    }
  }
  tab.precision(4);
  tab.print(std::cout);
  report.metric("sim_seconds", best_sim);
  report.add_table(tab);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_fig6.json");
  std::cout << "paper: best time at b = 16; times increase again at b = 32, 64\n";
  return 0;
}
