// Reproduces paper Figure 10 (Cray Y-MP experiment, re-expressed for the
// host CPU): sustained MFLOP/s of the block Schur factorization of an SPD
// *point* Toeplitz matrix, for several working block sizes m_s, as the
// problem size grows.
//
// Expected shape: the flop count grows ~ 4 m_s n^2 (linear in m_s), but the
// BLAS3 shapes improve enough with m_s that the sustained rate grows
// superlinearly -- larger m_s pays off for large problems even though it
// does more arithmetic (paper section 9).  The wall-time table shows where
// the rate gain beats the flop increase.
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const long nmax = cli.get_int("nmax", 2048);
  const int reps = static_cast<int>(cli.get_int("reps", 1));

  // Phase-resolved profile of the sweep (the per-span overhead is one
  // relaxed atomic read-modify-write per phase, negligible at these sizes).
  // The tracer stays on even without --profile/--trace/--ledger so the
  // default --json report carries the phase breakdown.
  bench::Obs obs(cli);
  if (!obs.armed()) {
    util::Tracer::reset();
    util::Tracer::enable();
  }
  const double sweep_t0 = util::wall_seconds();

  std::cout << "# bench_fig10: block Schur MFLOP/s for point Toeplitz, varying m_s\n";
  util::Table rate("Figure 10: sustained MFLOP/s vs problem size and m_s");
  util::Table wall("Wall time (s) vs problem size and m_s");
  std::vector<std::string> hdr{"n"};
  const std::vector<la::index_t> sizes_ms{1, 2, 4, 8, 16, 32};
  for (la::index_t ms : sizes_ms) hdr.push_back("m_s=" + std::to_string(ms));
  rate.header(hdr);
  wall.header(hdr);

  for (long n = 256; n <= nmax; n *= 2) {
    toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.7);
    std::vector<util::Cell> rrow{static_cast<long long>(n)};
    std::vector<util::Cell> wrow{static_cast<long long>(n)};
    for (la::index_t ms : sizes_ms) {
      core::SchurOptions opt;
      opt.block_size = ms;
      // Stream into a null sink: measure the factorization, not the store.
      double best = 1e300;
      std::uint64_t flops = 0;
      for (int r = 0; r < reps; ++r) {
        const double t0 = util::wall_seconds();
        flops = core::block_schur_stream(t, opt, [](la::index_t, la::CView) {});
        best = std::min(best, util::wall_seconds() - t0);
        // Budget the traced phases so the report's attainment section can
        // show model-ratio per (n, m_s) sweep cell (summed across reps,
        // matching the tracer's accumulation).
        obs.add_phase_models(core::schur_phase_models(opt.rep, n, ms));
      }
      rrow.push_back(static_cast<double>(flops) / best / 1e6);
      wrow.push_back(best);
    }
    rate.row(std::move(rrow));
    wall.row(std::move(wrow));
  }
  rate.precision(4);
  wall.precision(3);
  rate.print(std::cout);
  wall.print(std::cout);

  util::PerfReport report("bench_fig10");
  report.param("nmax", static_cast<std::int64_t>(nmax));
  report.param("reps", static_cast<std::int64_t>(reps));
  report.metric("time_s", util::wall_seconds() - sweep_t0);
  report.add_table(rate);
  report.add_table(wall);
  obs.finish(report);
  util::Tracer::disable();
  obs.write_default_json(report, "BENCH_fig10.json");
  std::cout << "paper: on the Y-MP the rate grows superlinearly with m_s for large n,\n"
               "so a working block size m_s > m can reduce wall time despite ~4 m_s n^2 "
               "flops\n";
  return 0;
}
