// Ablations of the paper's qualitative machine-sensitivity claims and of
// our own design choices.
//
//  (a) Section 7.1.5: "If the shift operation on the T3D were slower, then
//      the optimal b would be greater than 16, whereas if the shift
//      operation were quicker we would not have seen a significant
//      reduction in execution times with increasing b."
//      -> sweep the message latency and report where the optimal b lands.
//  (b) Section 7.1.7: "If the cost of broadcast on the T3D were to reduce,
//      then the optimal number of processors over which to distribute a
//      block ... would increase."
//      -> sweep the latency/barrier cost and report the optimal V3 spread.
//  (c) Two-level blocking (section 6.2): factorization time vs the inner
//      panel size for a large working block.
//  (d) Representation choice vs communication: total broadcast bytes per
//      factorization for VY vs YTY (the YTY volume advantage).
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

namespace {

la::index_t best_b(double latency_scale, int np, la::index_t p) {
  double best = 1e300;
  la::index_t arg = 0;
  for (la::index_t b : {1, 2, 4, 8, 16, 32, 64, 128}) {
    simnet::DistOptions o;
    o.np = np;
    o.machine.latency *= latency_scale;
    if (b > 1) {
      o.layout = simnet::Layout::V2;
      o.group = b;
    }
    const double t = simnet::dist_schur_model(1, p, o).sim_seconds;
    if (t < best) {
      best = t;
      arg = b;
    }
  }
  return arg;
}

la::index_t best_spread(double comm_scale, int np, la::index_t m, la::index_t p) {
  double best = 1e300;
  la::index_t arg = 0;
  for (la::index_t s : {1, 2, 4, 8, 16, 32}) {
    simnet::DistOptions o;
    o.np = np;
    o.machine.latency *= comm_scale;
    o.machine.barrier_hop *= comm_scale;
    if (s > 1) {
      o.layout = simnet::Layout::V3;
      o.spread = s;
    }
    const double t = simnet::dist_schur_model(m, p, o).sim_seconds;
    if (t < best) {
      best = t;
      arg = s;
    }
  }
  return arg;
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  bench::Obs obs(cli);
  util::PerfReport report("bench_ablation");
  const double run_t0 = util::wall_seconds();

  std::cout << "# bench_ablation: machine-sensitivity + design-choice ablations\n";

  {
    util::Table tab("(a) optimal b vs shift latency (4096 pt matrix, NP=16)");
    tab.header({"latency scale", "optimal b"});
    for (double s : {0.1, 0.5, 1.0, 2.0, 4.0, 10.0}) {
      tab.row({s, static_cast<long long>(best_b(s, 16, 4096))});
    }
    tab.print(std::cout);
    report.add_table(tab);
    std::cout << "paper: slower shift => larger optimal b; quicker shift => grouping "
                 "barely helps\n";
  }
  {
    util::Table tab("(b) optimal V3 spread vs communication cost (m=32, p=128, NP=64)");
    tab.header({"comm scale", "optimal spread"});
    for (double s : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0}) {
      tab.row({s, static_cast<long long>(best_spread(s, 64, 32, 128))});
    }
    tab.print(std::cout);
    report.add_table(tab);
    std::cout << "paper: cheaper broadcast => larger optimal spread\n";
  }
  {
    const la::index_t n = cli.get_int("n", 1024);
    const la::index_t ms = cli.get_int("ms", 64);
    report.param("n", static_cast<std::int64_t>(n));
    report.param("ms", static_cast<std::int64_t>(ms));
    toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.7);
    util::Table tab("(c) two-level blocking: factor time vs inner panel size (m_s = " +
                    std::to_string(ms) + ")");
    tab.header({"inner k", "time (s)", "flops"});
    for (la::index_t kb : {0, 4, 8, 16, 32}) {
      core::SchurOptions opt;
      opt.block_size = ms;
      opt.inner_block = kb;
      const double t0 = util::wall_seconds();
      std::uint64_t flops = core::block_schur_stream(t, opt, [](la::index_t, la::CView) {});
      const double dt = util::wall_seconds() - t0;
      tab.row({static_cast<long long>(kb), dt, static_cast<long long>(flops)});
    }
    tab.print(std::cout);
    report.add_table(tab);
  }
  {
    util::Table tab("(d) broadcast volume per factorization (p = 128 steps)");
    tab.header({"m", "VY bytes", "YTY bytes", "ratio"});
    for (la::index_t m : {8, 16, 32, 64}) {
      const double vy = 127 * simnet::representation_bytes(core::Representation::VY2, m);
      const double yty = 127 * simnet::representation_bytes(core::Representation::YTY, m);
      tab.row({static_cast<long long>(m), vy, yty, yty / vy});
    }
    tab.print(std::cout);
    report.add_table(tab);
    std::cout << "paper (section 6.5): YTY halves the communicated volume\n";
  }
  report.metric("time_s", util::wall_seconds() - run_t0);
  obs.finish(report);
  return 0;
}
