// Reproduces paper Figure 7: 4096 x 4096 block Toeplitz with m = 8 on a
// 16-PE T3D, across all three data distribution schemes: V3 for b < 1
// (each block split over 1/b PEs), V1 at b = 1, V2 for b > 1.
//
// Expected shape: for moderate block sizes with adequate parallelism
// (N >> NP), V1 (b = 1) is the fastest scheme (paper section 7.1.6).
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const la::index_t m = cli.get_int("m", 8);
  const la::index_t n = cli.get_int("n", 4096);
  const int np = static_cast<int>(cli.get_int("np", 16));
  const la::index_t p = n / m;
  bench::Obs obs(cli);

  std::cout << "# bench_fig7: " << n << " x " << n << " block Toeplitz, m=" << m
            << ", NP=" << np << " (simulated T3D)\n";
  util::Table tab("Figure 7: factor time vs b across V1/V2/V3");
  tab.header({"b", "scheme", "time (s)", "compute (s)", "bcast (s)", "shift (s)"});

  util::PerfReport report("bench_fig7");
  report.param("n", static_cast<std::int64_t>(n));
  report.param("m", static_cast<std::int64_t>(m));
  report.param("np", static_cast<std::int64_t>(np));

  double best_sim = 1e300;
  auto add = [&](double blabel, simnet::DistOptions opt) {
    simnet::DistResult r = simnet::dist_schur_model(m, p, opt);
    best_sim = std::min(best_sim, r.sim_seconds);
    tab.row({blabel, std::string(to_string(opt.layout)), r.sim_seconds,
             r.breakdown.compute / np, r.breakdown.broadcast, r.breakdown.shift / np});
    if (opt.layout == simnet::Layout::V1) {
      // Per-PE comm volume for the paper's preferred scheme (section 7.1).
      for (const simnet::PeCommStats& pe : r.comm) {
        report.add_pe_comm(pe.bytes_sent, pe.bytes_recv, pe.messages);
      }
      if (!r.schedule.empty()) report.add_par_analysis(util::analyze_schedule(r.schedule));
      report.metric("v1_sim_seconds", r.sim_seconds);
    }
  };

  for (la::index_t spread : {4, 2}) {  // b = 1/4, 1/2
    simnet::DistOptions opt;
    opt.np = np;
    opt.layout = simnet::Layout::V3;
    opt.spread = spread;
    add(1.0 / static_cast<double>(spread), opt);
  }
  {
    simnet::DistOptions opt;
    opt.np = np;
    opt.layout = simnet::Layout::V1;
    add(1.0, opt);
  }
  for (la::index_t b : {2, 4, 8, 16}) {
    simnet::DistOptions opt;
    opt.np = np;
    opt.layout = simnet::Layout::V2;
    opt.group = b;
    add(static_cast<double>(b), opt);
  }
  tab.precision(4);
  tab.print(std::cout);
  report.metric("sim_seconds", best_sim);
  report.add_table(tab);
  obs.finish(report);
  obs.write_default_json(report, "BENCH_fig7.json");
  std::cout << "paper: for moderate m with N >> NP, V1 (b = 1) gives the fastest "
               "factorization\n";
  return 0;
}
