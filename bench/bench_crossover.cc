// Structured-vs-dense baseline comparison (implicit throughout the paper):
// the O(m_s n^2) block Schur factorization against the O(n^3) dense
// Cholesky and the O(n^2) Levinson solver, on SPD point Toeplitz systems.
//
// Expected shape: the structured algorithms win asymptotically; dense
// Cholesky is competitive only at small n.  Between the structured ones,
// Levinson solves a single system fastest while Schur produces the factor
// (reusable across right-hand sides) at a comparable O(n^2) cost.
#include <iostream>

#include "bench_obs.h"
#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  const long nmax = cli.get_int("nmax", 2048);
  bench::Obs obs(cli);
  const double run_t0 = util::wall_seconds();

  std::cout << "# bench_crossover: block Schur vs classical Schur vs Levinson vs dense\n";
  util::Table tab("Time (s) to factor + solve one SPD Toeplitz system");
  tab.header({"n", "blockSchur(ms=16)", "classicSchur", "levinson", "blockLevinson(m=4)", "denseCholesky"});
  for (long n = 256; n <= nmax; n *= 2) {
    toeplitz::BlockToeplitz t = toeplitz::kms(n, 0.7);
    std::vector<double> b = toeplitz::rhs_for_ones(t);
    std::vector<double> row(static_cast<std::size_t>(n));
    for (la::index_t j = 0; j < n; ++j) row[static_cast<std::size_t>(j)] = t.entry(0, j);

    double t_bs = 0, t_cs = 0, t_lev = 0, t_blev = 0, t_dense = 0;
    {
      const double t0 = util::wall_seconds();
      core::SchurOptions opt;
      opt.block_size = 16;
      core::SchurFactor f = core::block_schur_factor(t, opt);
      std::vector<double> x = core::solve_spd(f, b);
      t_bs = util::wall_seconds() - t0;
    }
    {
      const double t0 = util::wall_seconds();
      std::vector<double> x = baseline::classic_schur_solve(row, b);
      t_cs = util::wall_seconds() - t0;
    }
    {
      const double t0 = util::wall_seconds();
      std::vector<double> x = baseline::levinson_solve(row, b);
      t_lev = util::wall_seconds() - t0;
    }
    {
      toeplitz::BlockToeplitz t4 = t.with_block_size(4);
      const double t0 = util::wall_seconds();
      std::vector<double> x = baseline::block_levinson_solve(t4, b);
      t_blev = util::wall_seconds() - t0;
    }
    if (n <= 1024) {  // dense O(n^3) + O(n^2) memory: keep it sane
      const double t0 = util::wall_seconds();
      la::Mat dense = t.dense();
      std::vector<double> x = baseline::dense_spd_solve(dense.view(), b);
      t_dense = util::wall_seconds() - t0;
    }
    tab.row({static_cast<long long>(n), t_bs, t_cs, t_lev, t_blev,
             n <= 1024 ? util::Cell(t_dense) : util::Cell(std::string("-"))});
  }
  tab.precision(4);
  tab.print(std::cout);
  util::PerfReport report("bench_crossover");
  report.param("nmax", static_cast<std::int64_t>(nmax));
  report.metric("time_s", util::wall_seconds() - run_t0);
  report.add_table(tab);
  obs.finish(report);
  return 0;
}
