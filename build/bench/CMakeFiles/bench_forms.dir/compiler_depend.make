# Empty compiler generated dependencies file for bench_forms.
# This may be replaced when dependencies are built.
