file(REMOVE_RECURSE
  "CMakeFiles/bench_forms.dir/bench_forms.cc.o"
  "CMakeFiles/bench_forms.dir/bench_forms.cc.o.d"
  "bench_forms"
  "bench_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
