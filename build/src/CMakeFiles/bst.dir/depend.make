# Empty dependencies file for bst.
# This may be replaced when dependencies are built.
