file(REMOVE_RECURSE
  "libbst.a"
)
