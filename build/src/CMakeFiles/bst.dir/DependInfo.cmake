
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/block_levinson.cc" "src/CMakeFiles/bst.dir/baseline/block_levinson.cc.o" "gcc" "src/CMakeFiles/bst.dir/baseline/block_levinson.cc.o.d"
  "/root/repo/src/baseline/classic_schur.cc" "src/CMakeFiles/bst.dir/baseline/classic_schur.cc.o" "gcc" "src/CMakeFiles/bst.dir/baseline/classic_schur.cc.o.d"
  "/root/repo/src/baseline/dense_solver.cc" "src/CMakeFiles/bst.dir/baseline/dense_solver.cc.o" "gcc" "src/CMakeFiles/bst.dir/baseline/dense_solver.cc.o.d"
  "/root/repo/src/baseline/levinson.cc" "src/CMakeFiles/bst.dir/baseline/levinson.cc.o" "gcc" "src/CMakeFiles/bst.dir/baseline/levinson.cc.o.d"
  "/root/repo/src/core/block_reflector.cc" "src/CMakeFiles/bst.dir/core/block_reflector.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/block_reflector.cc.o.d"
  "/root/repo/src/core/flop_model.cc" "src/CMakeFiles/bst.dir/core/flop_model.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/flop_model.cc.o.d"
  "/root/repo/src/core/generator.cc" "src/CMakeFiles/bst.dir/core/generator.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/generator.cc.o.d"
  "/root/repo/src/core/hyperbolic.cc" "src/CMakeFiles/bst.dir/core/hyperbolic.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/hyperbolic.cc.o.d"
  "/root/repo/src/core/indefinite.cc" "src/CMakeFiles/bst.dir/core/indefinite.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/indefinite.cc.o.d"
  "/root/repo/src/core/refine.cc" "src/CMakeFiles/bst.dir/core/refine.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/refine.cc.o.d"
  "/root/repo/src/core/schur.cc" "src/CMakeFiles/bst.dir/core/schur.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/schur.cc.o.d"
  "/root/repo/src/core/solve.cc" "src/CMakeFiles/bst.dir/core/solve.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/solve.cc.o.d"
  "/root/repo/src/core/solver.cc" "src/CMakeFiles/bst.dir/core/solver.cc.o" "gcc" "src/CMakeFiles/bst.dir/core/solver.cc.o.d"
  "/root/repo/src/la/blas1.cc" "src/CMakeFiles/bst.dir/la/blas1.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/blas1.cc.o.d"
  "/root/repo/src/la/blas2.cc" "src/CMakeFiles/bst.dir/la/blas2.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/blas2.cc.o.d"
  "/root/repo/src/la/blas3.cc" "src/CMakeFiles/bst.dir/la/blas3.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/blas3.cc.o.d"
  "/root/repo/src/la/cholesky.cc" "src/CMakeFiles/bst.dir/la/cholesky.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/cholesky.cc.o.d"
  "/root/repo/src/la/condest.cc" "src/CMakeFiles/bst.dir/la/condest.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/condest.cc.o.d"
  "/root/repo/src/la/ldlt.cc" "src/CMakeFiles/bst.dir/la/ldlt.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/ldlt.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/CMakeFiles/bst.dir/la/matrix.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/matrix.cc.o.d"
  "/root/repo/src/la/norms.cc" "src/CMakeFiles/bst.dir/la/norms.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/norms.cc.o.d"
  "/root/repo/src/la/triangular.cc" "src/CMakeFiles/bst.dir/la/triangular.cc.o" "gcc" "src/CMakeFiles/bst.dir/la/triangular.cc.o.d"
  "/root/repo/src/simnet/dist_schur.cc" "src/CMakeFiles/bst.dir/simnet/dist_schur.cc.o" "gcc" "src/CMakeFiles/bst.dir/simnet/dist_schur.cc.o.d"
  "/root/repo/src/simnet/machine.cc" "src/CMakeFiles/bst.dir/simnet/machine.cc.o" "gcc" "src/CMakeFiles/bst.dir/simnet/machine.cc.o.d"
  "/root/repo/src/simnet/runtime.cc" "src/CMakeFiles/bst.dir/simnet/runtime.cc.o" "gcc" "src/CMakeFiles/bst.dir/simnet/runtime.cc.o.d"
  "/root/repo/src/simnet/threaded_schur.cc" "src/CMakeFiles/bst.dir/simnet/threaded_schur.cc.o" "gcc" "src/CMakeFiles/bst.dir/simnet/threaded_schur.cc.o.d"
  "/root/repo/src/toeplitz/block_toeplitz.cc" "src/CMakeFiles/bst.dir/toeplitz/block_toeplitz.cc.o" "gcc" "src/CMakeFiles/bst.dir/toeplitz/block_toeplitz.cc.o.d"
  "/root/repo/src/toeplitz/fft.cc" "src/CMakeFiles/bst.dir/toeplitz/fft.cc.o" "gcc" "src/CMakeFiles/bst.dir/toeplitz/fft.cc.o.d"
  "/root/repo/src/toeplitz/generators.cc" "src/CMakeFiles/bst.dir/toeplitz/generators.cc.o" "gcc" "src/CMakeFiles/bst.dir/toeplitz/generators.cc.o.d"
  "/root/repo/src/toeplitz/io.cc" "src/CMakeFiles/bst.dir/toeplitz/io.cc.o" "gcc" "src/CMakeFiles/bst.dir/toeplitz/io.cc.o.d"
  "/root/repo/src/toeplitz/matvec.cc" "src/CMakeFiles/bst.dir/toeplitz/matvec.cc.o" "gcc" "src/CMakeFiles/bst.dir/toeplitz/matvec.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/bst.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/cli.cc.o.d"
  "/root/repo/src/util/flops.cc" "src/CMakeFiles/bst.dir/util/flops.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/flops.cc.o.d"
  "/root/repo/src/util/fpenv.cc" "src/CMakeFiles/bst.dir/util/fpenv.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/fpenv.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/bst.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/rng.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/bst.dir/util/table.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/bst.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/bst.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
