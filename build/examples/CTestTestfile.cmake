# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multichannel_prediction "/root/repo/build/examples/multichannel_prediction")
set_tests_properties(example_multichannel_prediction PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_indefinite_refinement "/root/repo/build/examples/indefinite_refinement")
set_tests_properties(example_indefinite_refinement PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_sweep "/root/repo/build/examples/distributed_sweep")
set_tests_properties(example_distributed_sweep PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deconvolution "/root/repo/build/examples/deconvolution")
set_tests_properties(example_deconvolution PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;13;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spectral_estimation "/root/repo/build/examples/spectral_estimation")
set_tests_properties(example_spectral_estimation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;14;bst_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gp_regression "/root/repo/build/examples/gp_regression")
set_tests_properties(example_gp_regression PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;15;bst_example;/root/repo/examples/CMakeLists.txt;0;")
