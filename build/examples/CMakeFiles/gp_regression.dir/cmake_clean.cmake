file(REMOVE_RECURSE
  "CMakeFiles/gp_regression.dir/gp_regression.cpp.o"
  "CMakeFiles/gp_regression.dir/gp_regression.cpp.o.d"
  "gp_regression"
  "gp_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gp_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
