# Empty compiler generated dependencies file for gp_regression.
# This may be replaced when dependencies are built.
