file(REMOVE_RECURSE
  "CMakeFiles/multichannel_prediction.dir/multichannel_prediction.cpp.o"
  "CMakeFiles/multichannel_prediction.dir/multichannel_prediction.cpp.o.d"
  "multichannel_prediction"
  "multichannel_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
