# Empty compiler generated dependencies file for multichannel_prediction.
# This may be replaced when dependencies are built.
