# Empty dependencies file for indefinite_refinement.
# This may be replaced when dependencies are built.
