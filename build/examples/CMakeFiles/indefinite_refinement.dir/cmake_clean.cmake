file(REMOVE_RECURSE
  "CMakeFiles/indefinite_refinement.dir/indefinite_refinement.cpp.o"
  "CMakeFiles/indefinite_refinement.dir/indefinite_refinement.cpp.o.d"
  "indefinite_refinement"
  "indefinite_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indefinite_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
