# Empty compiler generated dependencies file for spectral_estimation.
# This may be replaced when dependencies are built.
