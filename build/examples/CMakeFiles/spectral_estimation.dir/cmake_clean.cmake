file(REMOVE_RECURSE
  "CMakeFiles/spectral_estimation.dir/spectral_estimation.cpp.o"
  "CMakeFiles/spectral_estimation.dir/spectral_estimation.cpp.o.d"
  "spectral_estimation"
  "spectral_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
