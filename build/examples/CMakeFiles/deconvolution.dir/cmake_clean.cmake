file(REMOVE_RECURSE
  "CMakeFiles/deconvolution.dir/deconvolution.cpp.o"
  "CMakeFiles/deconvolution.dir/deconvolution.cpp.o.d"
  "deconvolution"
  "deconvolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deconvolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
