# Empty compiler generated dependencies file for deconvolution.
# This may be replaced when dependencies are built.
