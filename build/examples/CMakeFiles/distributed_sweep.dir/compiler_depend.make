# Empty compiler generated dependencies file for distributed_sweep.
# This may be replaced when dependencies are built.
