file(REMOVE_RECURSE
  "CMakeFiles/distributed_sweep.dir/distributed_sweep.cpp.o"
  "CMakeFiles/distributed_sweep.dir/distributed_sweep.cpp.o.d"
  "distributed_sweep"
  "distributed_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
