# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_solve_paper_example "/root/repo/build/tools/bst_solve" "--matrix=/root/repo/build/tools/paper6.txt" "--report" "--out=/root/repo/build/tools/x.txt")
set_tests_properties(cli_solve_paper_example PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_matrix_fails "/root/repo/build/tools/bst_solve")
set_tests_properties(cli_missing_matrix_fails PROPERTIES  TIMEOUT "30" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_then_solve "sh" "-c" "/root/repo/build/tools/bst_gen --family=singular --n=32 --seed=4                           --out=/root/repo/build/tools/gen.txt                           --rhs-ones=/root/repo/build/tools/rhs.txt &&                         /root/repo/build/tools/bst_solve --matrix=/root/repo/build/tools/gen.txt                           --rhs=/root/repo/build/tools/rhs.txt --report                           --out=/root/repo/build/tools/sol.txt")
set_tests_properties(cli_gen_then_solve PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_unknown_family_fails "/root/repo/build/tools/bst_gen" "--family=bogus")
set_tests_properties(cli_gen_unknown_family_fails PROPERTIES  TIMEOUT "30" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
