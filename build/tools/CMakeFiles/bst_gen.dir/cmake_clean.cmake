file(REMOVE_RECURSE
  "CMakeFiles/bst_gen.dir/bst_gen.cc.o"
  "CMakeFiles/bst_gen.dir/bst_gen.cc.o.d"
  "bst_gen"
  "bst_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bst_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
