# Empty dependencies file for bst_gen.
# This may be replaced when dependencies are built.
