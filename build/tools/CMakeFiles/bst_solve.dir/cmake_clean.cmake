file(REMOVE_RECURSE
  "CMakeFiles/bst_solve.dir/bst_solve.cc.o"
  "CMakeFiles/bst_solve.dir/bst_solve.cc.o.d"
  "bst_solve"
  "bst_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bst_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
