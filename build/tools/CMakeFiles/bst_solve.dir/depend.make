# Empty dependencies file for bst_solve.
# This may be replaced when dependencies are built.
