# Empty compiler generated dependencies file for test_condest.
# This may be replaced when dependencies are built.
