file(REMOVE_RECURSE
  "CMakeFiles/test_hyperbolic.dir/test_hyperbolic.cc.o"
  "CMakeFiles/test_hyperbolic.dir/test_hyperbolic.cc.o.d"
  "test_hyperbolic"
  "test_hyperbolic.pdb"
  "test_hyperbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hyperbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
