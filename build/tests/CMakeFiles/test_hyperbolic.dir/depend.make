# Empty dependencies file for test_hyperbolic.
# This may be replaced when dependencies are built.
