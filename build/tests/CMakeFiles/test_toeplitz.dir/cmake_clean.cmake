file(REMOVE_RECURSE
  "CMakeFiles/test_toeplitz.dir/test_toeplitz.cc.o"
  "CMakeFiles/test_toeplitz.dir/test_toeplitz.cc.o.d"
  "test_toeplitz"
  "test_toeplitz.pdb"
  "test_toeplitz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toeplitz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
