file(REMOVE_RECURSE
  "CMakeFiles/test_indefinite.dir/test_indefinite.cc.o"
  "CMakeFiles/test_indefinite.dir/test_indefinite.cc.o.d"
  "test_indefinite"
  "test_indefinite.pdb"
  "test_indefinite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indefinite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
