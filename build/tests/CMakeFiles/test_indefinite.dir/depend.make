# Empty dependencies file for test_indefinite.
# This may be replaced when dependencies are built.
