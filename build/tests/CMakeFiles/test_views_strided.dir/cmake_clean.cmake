file(REMOVE_RECURSE
  "CMakeFiles/test_views_strided.dir/test_views_strided.cc.o"
  "CMakeFiles/test_views_strided.dir/test_views_strided.cc.o.d"
  "test_views_strided"
  "test_views_strided.pdb"
  "test_views_strided[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_views_strided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
