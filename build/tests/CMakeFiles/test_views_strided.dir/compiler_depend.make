# Empty compiler generated dependencies file for test_views_strided.
# This may be replaced when dependencies are built.
