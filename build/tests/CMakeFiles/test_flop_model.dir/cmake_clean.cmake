file(REMOVE_RECURSE
  "CMakeFiles/test_flop_model.dir/test_flop_model.cc.o"
  "CMakeFiles/test_flop_model.dir/test_flop_model.cc.o.d"
  "test_flop_model"
  "test_flop_model.pdb"
  "test_flop_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flop_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
