# Empty compiler generated dependencies file for test_flop_model.
# This may be replaced when dependencies are built.
