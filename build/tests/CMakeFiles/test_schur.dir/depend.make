# Empty dependencies file for test_schur.
# This may be replaced when dependencies are built.
