# Empty dependencies file for test_block_reflector.
# This may be replaced when dependencies are built.
