file(REMOVE_RECURSE
  "CMakeFiles/test_block_reflector.dir/test_block_reflector.cc.o"
  "CMakeFiles/test_block_reflector.dir/test_block_reflector.cc.o.d"
  "test_block_reflector"
  "test_block_reflector.pdb"
  "test_block_reflector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_reflector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
