# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_factorizations[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_toeplitz[1]_include.cmake")
include("/root/repo/build/tests/test_hyperbolic[1]_include.cmake")
include("/root/repo/build/tests/test_block_reflector[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_schur[1]_include.cmake")
include("/root/repo/build/tests/test_indefinite[1]_include.cmake")
include("/root/repo/build/tests/test_refine[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_flop_model[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_two_level[1]_include.cmake")
include("/root/repo/build/tests/test_condest[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_views_strided[1]_include.cmake")
include("/root/repo/build/tests/test_mixed_precision[1]_include.cmake")
