// bst_report: pretty-printer and perf-regression gate for the schema-v1
// JSON reports every instrumented binary emits (util/report.h).
//
//   bst_report one.json
//       Pretty-prints the report: params, metrics, per-phase table,
//       histogram percentiles, warnings, thread utilization.
//
//   bst_report one.json --pe
//       Additionally prints the parallel-run sections (per-PE timeline
//       summary, PE x PE communication matrix, critical path) captured by
//       simnet runs.
//
//   bst_report --baseline=a.json --candidate=b.json
//              [--max-regress=50%] [--min-seconds=1e-3]
//       Diffs two reports: per-phase seconds/flops/bytes deltas, histogram
//       percentile shifts, warning-count changes.  Exits 3 when any phase
//       present in both reports slowed down by more than --max-regress
//       (a fraction, or a percentage with a '%' suffix) -- phases whose
//       baseline is below --min-seconds are skipped as noise.  This is the
//       perf gate CI runs between a trunk baseline and a candidate.
//
//   bst_report --trend=runs.jsonl [--max-regress=50%] [--min-seconds=1e-3]
//       Trend view over a perf ledger (util/ledger.h): per-series
//       min/median/last with an ASCII sparkline of the history.  Exits 3
//       when the *last* entry of any gated series (phase seconds,
//       metrics.time_s/sim_seconds, attainment fractions -- which gate on
//       *drops*) regresses past --max-regress relative to the rolling
//       median of the prior entries.  Entries from other machines
//       (fingerprint mismatch vs the newest entry) are skipped, and a
//       single-entry ledger reports "insufficient history" and exits 0.
//
//   bst_report one.json --prof [--max-bytes-skew=8]
//       Hardware-truth view of a report produced under --prof: per-phase
//       PMU table (cycles, IPC, stall and miss rates, measured DRAM bytes
//       vs the modeled byte counts), sampling-profiler summary and the top
//       folded stacks.  With --max-bytes-skew=F, exits 3 when any phase's
//       measured/modeled byte ratio (either direction) exceeds F -- the
//       measured-vs-modeled gate.  When the report says the PMU was
//       unavailable (containers, CI runners), the view still renders the
//       sampler side and the gate passes vacuously.
//
//   bst_report one.json --roofline
//       ASCII log-log roofline of the report's attainment section: the
//       calibrated memory-bandwidth and peak-GFLOP/s ceilings with each
//       traced phase plotted at (arithmetic intensity, achieved GFLOP/s).
//       Requires a report produced under --calibrate (exit 1 otherwise).
//
//   bst_report --attain --baseline=a.json --candidate=b.json
//              [--max-attain-drop=10%]
//       Diffs the *attainment* (roofline fraction) per phase instead of raw
//       seconds: exits 3 when any phase's attainment dropped by more than
//       --max-attain-drop relative to the baseline, 2 when either report
//       lacks an attainment section (malformed for this mode).
//
// Exit codes: 0 ok, 1 error (unreadable/malformed input), 2 usage or
// missing-section in --attain mode, 3 regression past the threshold.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/ledger.h"
#include "util/report.h"
#include "util/table.h"

using bst::util::Json;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

Json load_report(const std::string& path) {
  Json doc = bst::util::parse_json(slurp(path));
  if (doc.kind() != Json::Kind::Object || doc.find("schema_version") == nullptr) {
    throw std::runtime_error("'" + path + "' is not a perf report (no schema_version)");
  }
  return doc;
}

double num_or(const Json* j, double fallback) {
  return (j != nullptr && j->kind() == Json::Kind::Number) ? j->as_number() : fallback;
}

// Field of an object-valued member, e.g. field(phase, "seconds").
double field(const Json& obj, const std::string& key, double fallback = 0.0) {
  return num_or(obj.find(key), fallback);
}

std::string fmt(double v) {
  char buf[48];
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string pct(double rel) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel * 100.0);
  return buf;
}

// ---------------------------------------------------------------------------
// Pretty printing
// ---------------------------------------------------------------------------

void print_kv_object(const Json& doc, const char* section, const char* title) {
  const Json* obj = doc.find(section);
  if (obj == nullptr || obj->members().empty()) return;
  std::cout << title << "\n";
  for (const auto& [k, v] : obj->members()) {
    std::cout << "  " << k << " = ";
    switch (v.kind()) {
      case Json::Kind::Number: std::cout << fmt(v.as_number()); break;
      case Json::Kind::String: std::cout << v.as_string(); break;
      case Json::Kind::Bool: std::cout << (v.as_bool() ? "true" : "false"); break;
      default: std::cout << v.dump(); break;
    }
    std::cout << "\n";
  }
}

// One prominent line for the solver-crossover outcome: which family the
// policy picked, why, and (on the PCG route) how many iterations it took.
// The raw fields still appear under params/metrics; this line saves the
// reader from joining the two sections by hand.
void print_solver_route(const Json& doc) {
  const Json* params = doc.find("params");
  const Json* sp = params != nullptr ? params->find("solver_path") : nullptr;
  if (sp == nullptr || sp->kind() != Json::Kind::String) return;
  std::cout << "solver: " << sp->as_string();
  if (const Json* reason = params->find("policy_reason");
      reason != nullptr && reason->kind() == Json::Kind::String &&
      !reason->as_string().empty()) {
    std::cout << " (" << reason->as_string() << ")";
  }
  if (const Json* metrics = doc.find("metrics"); metrics != nullptr) {
    const double iters = field(*metrics, "pcg_iterations", 0.0);
    if (iters > 0) std::cout << ", " << fmt(iters) << " pcg iterations";
    if (const Json* ce = metrics->find("condest");
        ce != nullptr && ce->kind() == Json::Kind::Number) {
      std::cout << ", condest " << fmt(ce->as_number());
    }
  }
  std::cout << "\n";
}

// The "service" section (bench_service / bst::service::Service::stats_json)
// is one level deeper than params/metrics: cache/queue/batch sub-objects.
void print_service(const Json& doc) {
  const Json* svc = doc.find("service");
  if (svc == nullptr || svc->members().empty()) return;
  std::cout << "service\n";
  for (const auto& [group, obj] : svc->members()) {
    std::cout << "  " << group << ":";
    for (const auto& [k, v] : obj.members()) {
      std::cout << " " << k << "=";
      switch (v.kind()) {
        case Json::Kind::Number: std::cout << fmt(v.as_number()); break;
        case Json::Kind::Bool: std::cout << (v.as_bool() ? "true" : "false"); break;
        default: std::cout << v.dump(); break;
      }
    }
    std::cout << "\n";
  }
}

void print_phases(const Json& doc) {
  const Json* phases = doc.find("phases");
  if (phases == nullptr || phases->members().empty()) return;
  std::printf("phases\n  %-24s %10s %12s %14s %14s %10s\n", "phase", "calls", "seconds",
              "flops", "bytes", "GF/s");
  for (const auto& [name, ph] : phases->members()) {
    const double sec = field(ph, "seconds");
    const double flops = field(ph, "flops");
    std::printf("  %-24s %10s %12s %14s %14s %10s\n", name.c_str(),
                fmt(field(ph, "calls")).c_str(), fmt(sec).c_str(), fmt(flops).c_str(),
                fmt(field(ph, "bytes")).c_str(),
                sec > 0.0 ? fmt(flops / sec / 1e9).c_str() : "-");
  }
}

void print_histograms(const Json& doc) {
  const Json* hists = doc.find("histograms");
  if (hists == nullptr || hists->members().empty()) return;
  std::printf("histograms\n  %-28s %10s %12s %12s %12s %12s\n", "histogram", "count", "p50",
              "p95", "p99", "max");
  for (const auto& [name, h] : hists->members()) {
    std::printf("  %-28s %10s %12s %12s %12s %12s\n", name.c_str(),
                fmt(field(h, "count")).c_str(), fmt(field(h, "p50")).c_str(),
                fmt(field(h, "p95")).c_str(), fmt(field(h, "p99")).c_str(),
                fmt(field(h, "max")).c_str());
  }
}

std::map<std::string, std::size_t> warning_counts(const Json& doc) {
  std::map<std::string, std::size_t> counts;
  const Json* warnings = doc.find("warnings");
  if (warnings == nullptr) return counts;
  for (const Json& w : warnings->items()) {
    const Json* code = w.find("code");
    if (code != nullptr && code->kind() == Json::Kind::String) ++counts[code->as_string()];
  }
  return counts;
}

void print_warnings(const Json& doc) {
  const auto counts = warning_counts(doc);
  if (counts.empty()) return;
  std::cout << "warnings\n";
  for (const auto& [code, n] : counts) std::cout << "  " << code << " x" << n << "\n";
  const Json* dropped = doc.find("warnings_dropped");
  if (dropped != nullptr && dropped->as_number() > 0) {
    std::cout << "  (+" << fmt(dropped->as_number()) << " dropped past the cap)\n";
  }
}

void print_threads(const Json& doc) {
  const Json* threads = doc.find("threads");
  if (threads == nullptr || threads->items().empty()) return;
  double busy = 0.0, idle = 0.0, chunks = 0.0;
  for (const Json& t : threads->items()) {
    busy += field(t, "busy_seconds");
    idle += field(t, "idle_seconds");
    chunks += field(t, "chunks");
  }
  std::cout << "threads: " << threads->items().size() << " slots, busy " << fmt(busy)
            << "s, idle " << fmt(idle) << "s, " << fmt(chunks) << " chunks\n";
}

void print_attainment(const Json& doc) {
  const Json* att = doc.find("attainment");
  if (att == nullptr) return;
  const Json* cal = att->find("calibration");
  if (cal != nullptr) {
    std::printf("attainment (calibrated: peak %s GF/s, stream %s GB/s, span %s ns)\n",
                fmt(field(*cal, "peak_gflops")).c_str(), fmt(field(*cal, "stream_gbs")).c_str(),
                fmt(field(*cal, "span_overhead_ns")).c_str());
  } else {
    std::printf("attainment (uncalibrated: model ratios only)\n");
  }
  const Json* phases = att->find("phases");
  if (phases != nullptr && !phases->members().empty()) {
    std::printf("  %-24s %9s %9s %9s %8s %8s %8s\n", "phase", "GF/s", "F/byte", "ceiling",
                "attain", "model", "paper");
    for (const auto& [name, r] : phases->members()) {
      auto cell = [&](const char* key, double scale) {
        const Json* v = r.find(key);
        return v != nullptr ? fmt(v->as_number() * scale) : std::string("-");
      };
      std::printf("  %-24s %9s %9s %9s %8s %8s %8s\n", name.c_str(), cell("gflops", 1).c_str(),
                  cell("intensity", 1).c_str(), cell("ceiling_gflops", 1).c_str(),
                  (r.find("attainment") != nullptr ? pct(field(r, "attainment"))
                                                   : std::string("-"))
                      .c_str(),
                  cell("model_ratio", 1).c_str(), cell("paper_ratio", 1).c_str());
    }
  }
  if (const Json* be = att->find("backward_error"); be != nullptr) {
    std::printf("  backward_error %s\n", fmt(be->as_number()).c_str());
  }
  if (const Json* of = att->find("obs_overhead_frac"); of != nullptr) {
    std::printf("  observability: %s spans, %ss overhead (%s of makespan, budget 3%%)\n",
                fmt(field(*att, "span_calls")).c_str(), fmt(field(*att, "obs_overhead_s")).c_str(),
                pct(of->as_number()).c_str());
  }
}

// ---------------------------------------------------------------------------
// Hardware-truth (prof) view
// ---------------------------------------------------------------------------

int prof_report(const std::string& path, double max_bytes_skew, double min_seconds) {
  const Json doc = load_report(path);
  const Json* prof = doc.find("prof");
  if (prof == nullptr) {
    std::fprintf(stderr,
                 "bst_report: '%s' has no prof section; produce it with "
                 "`bst_solve ... --prof --profile=%s`\n",
                 path.c_str(), path.c_str());
    return 2;
  }
  const Json* pmu = prof->find("pmu");
  const Json* avail = pmu != nullptr ? pmu->find("available") : nullptr;
  const bool available = avail != nullptr && avail->kind() == Json::Kind::Bool &&
                         avail->as_bool();
  const Json* status = pmu != nullptr ? pmu->find("status") : nullptr;
  std::printf("prof: %s\n", path.c_str());
  std::printf("  pmu: %s",
              status != nullptr ? status->as_string().c_str() : "(no status)");
  if (available && pmu != nullptr) {
    std::printf(" (%s thread(s) measured)", fmt(field(*pmu, "threads")).c_str());
  }
  std::printf("\n");

  int regressions = 0;
  const Json* phases = doc.find("phases");
  if (available && phases != nullptr) {
    std::printf("  %-24s %11s %7s %7s %7s %7s %10s %10s\n", "phase", "cycles", "IPC",
                "stall%", "br/Ki", "LLC%", "meas MB", "meas/model");
    for (const auto& [name, ph] : phases->members()) {
      const double cycles = field(ph, "cycles");
      if (cycles <= 0.0) continue;
      const double instr = field(ph, "instructions");
      const double stalled = field(ph, "stalled_cycles");
      const double brm = field(ph, "branch_misses");
      const double measured = field(ph, "measured_bytes");
      const double modeled = field(ph, "bytes");
      const double ratio = modeled > 0.0 && measured > 0.0 ? measured / modeled : 0.0;
      const Json* llc = ph.find("llc_miss_rate");
      // Skew in either direction matters: measured >> model means the
      // roofline was fed too little traffic, measured << model too much.
      const double skew = ratio > 0.0 ? std::max(ratio, 1.0 / ratio) : 0.0;
      const bool gated = max_bytes_skew >= 0.0 && skew > max_bytes_skew &&
                         field(ph, "seconds") >= min_seconds;
      if (gated) ++regressions;
      std::printf("  %-24s %11s %7s %7s %7s %7s %10s %10s%s\n", name.c_str(),
                  fmt(cycles).c_str(),
                  cycles > 0.0 ? fmt(instr / cycles).c_str() : "-",
                  cycles > 0.0 ? fmt(100.0 * stalled / cycles).c_str() : "-",
                  instr > 0.0 ? fmt(1024.0 * brm / instr).c_str() : "-",
                  llc != nullptr ? fmt(100.0 * llc->as_number()).c_str() : "-",
                  fmt(measured / 1e6).c_str(),
                  ratio > 0.0 ? fmt(ratio).c_str() : "-", gated ? "  << SKEW" : "");
    }
  } else if (!available) {
    std::printf("  (no per-phase hardware counters -- software sampling only)\n");
  }

  if (const Json* sam = prof->find("sampler"); sam != nullptr) {
    std::printf("  sampler: %s samples (%s dropped) on %s thread(s), every %s us, "
                "~%s ns/sample (%ss total)\n",
                fmt(field(*sam, "samples")).c_str(), fmt(field(*sam, "dropped")).c_str(),
                fmt(field(*sam, "threads")).c_str(), fmt(field(*sam, "interval_us")).c_str(),
                fmt(field(*sam, "est_sample_cost_ns")).c_str(),
                fmt(field(*sam, "overhead_s")).c_str());
    const Json* stacks = sam->find("top_stacks");
    if (stacks != nullptr && !stacks->items().empty()) {
      std::printf("  top stacks (folded: phase;req;outer;...;leaf count)\n");
      for (const Json& row : stacks->items()) {
        const Json* stack = row.find("stack");
        std::printf("    %s %s\n",
                    stack != nullptr ? stack->as_string().c_str() : "?",
                    fmt(field(row, "count")).c_str());
      }
    }
  }

  if (regressions > 0) {
    std::printf("RESULT: %d phase(s) skewed past %s between measured and modeled bytes\n",
                regressions, fmt(max_bytes_skew).c_str());
    return 3;
  }
  if (max_bytes_skew >= 0.0) {
    if (available) {
      std::printf("RESULT: measured and modeled bytes agree within %sx\n",
                  fmt(max_bytes_skew).c_str());
    } else {
      std::printf("RESULT: pmu unavailable; measured-vs-modeled gate not applicable\n");
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// ASCII roofline
// ---------------------------------------------------------------------------

int roofline_report(const std::string& path) {
  const Json doc = load_report(path);
  const Json* att = doc.find("attainment");
  const Json* cal = att != nullptr ? att->find("calibration") : nullptr;
  const double peak = cal != nullptr ? field(*cal, "peak_gflops") : 0.0;
  const double bw = cal != nullptr ? field(*cal, "stream_gbs") : 0.0;
  if (att == nullptr || cal == nullptr || peak <= 0.0 || bw <= 0.0) {
    std::fprintf(stderr,
                 "bst_report: '%s' has no calibrated attainment section; produce the "
                 "report with `bst_solve ... --calibrate=prof.json --profile=...`\n",
                 path.c_str());
    return 1;
  }

  struct Point {
    std::string name;
    double x = 0.0, y = 0.0, attain = 0.0;
  };
  std::vector<Point> pts;
  if (const Json* phases = att->find("phases"); phases != nullptr) {
    for (const auto& [name, r] : phases->members()) {
      const double x = field(r, "intensity"), y = field(r, "gflops");
      if (x > 0.0 && y > 0.0) pts.push_back({name, x, y, field(r, "attainment")});
    }
  }

  // Log-log window sized to cover the machine balance point (where the
  // bandwidth slope meets the compute roof) and every phase point.
  const double balance = peak / bw;
  double xmin = balance, xmax = balance, ymin = peak, ymax = peak;
  for (const Point& p : pts) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
  }
  xmin /= 4.0;
  xmax *= 4.0;
  ymin = std::min(ymin / 4.0, xmin * bw);
  ymax *= 2.0;

  constexpr int W = 61, H = 17;
  const double lx0 = std::log(xmin), lx1 = std::log(xmax);
  const double ly0 = std::log(ymin), ly1 = std::log(ymax);
  auto col_of = [&](double x) {
    return static_cast<int>(std::lround((std::log(x) - lx0) / (lx1 - lx0) * (W - 1)));
  };
  auto row_of = [&](double y) {
    const int r =
        (H - 1) - static_cast<int>(std::lround((std::log(y) - ly0) / (ly1 - ly0) * (H - 1)));
    return std::min(H - 1, std::max(0, r));
  };

  std::vector<std::string> grid(H, std::string(W, ' '));
  for (int j = 0; j < W; ++j) {
    const double x = std::exp(lx0 + (lx1 - lx0) * j / (W - 1));
    grid[row_of(std::min(peak, x * bw))][j] = '.';
  }
  for (std::size_t i = 0; i < pts.size() && i < 26; ++i) {
    const int j = std::min(W - 1, std::max(0, col_of(pts[i].x)));
    grid[row_of(pts[i].y)][j] = static_cast<char>('A' + i);
  }

  std::printf("roofline: %s  (peak %s GF/s, stream %s GB/s, balance %s F/byte)\n", path.c_str(),
              fmt(peak).c_str(), fmt(bw).c_str(), fmt(balance).c_str());
  for (int r = 0; r < H; ++r) {
    // Label the roofs and a couple of reference rows on the y axis.
    const double y = std::exp(ly1 - (ly1 - ly0) * r / (H - 1));
    if (r % 4 == 0 || r == H - 1) {
      std::printf("%10s |%s\n", fmt(y).c_str(), grid[r].c_str());
    } else {
      std::printf("%10s |%s\n", "", grid[r].c_str());
    }
  }
  std::printf("%10s +%s\n", "GF/s", std::string(W, '-').c_str());
  std::printf("%10s  %-8s%*s\n", "", fmt(xmin).c_str(), W - 8, fmt(xmax).c_str());
  std::printf("%10s  %*s\n", "", W / 2 + 8, "arithmetic intensity (flops/byte)");
  for (std::size_t i = 0; i < pts.size() && i < 26; ++i) {
    std::printf("  %c %-24s %s F/byte, %s GF/s", static_cast<char>('A' + i),
                pts[i].name.c_str(), fmt(pts[i].x).c_str(), fmt(pts[i].y).c_str());
    if (pts[i].attain > 0.0) std::printf(", attainment %s", pct(pts[i].attain).c_str());
    std::printf("\n");
  }
  if (pts.empty()) {
    std::printf("  (no phase carried both flop and byte counters)\n");
  }
  return 0;
}

void print_pe_sections(const Json& doc) {
  const Json* tl = doc.find("pe_timeline");
  if (tl != nullptr) {
    std::printf("pe_timeline (makespan %ss, imbalance %s)\n", fmt(field(*tl, "makespan")).c_str(),
                fmt(field(*tl, "imbalance")).c_str());
    const Json* per_pe = tl->find("per_pe");
    if (per_pe != nullptr) {
      std::printf("  %-4s %12s %12s %12s %12s %12s %12s\n", "pe", "compute", "send", "recv",
                  "broadcast", "barrier", "idle");
      int pe = 0;
      for (const Json& u : per_pe->items()) {
        std::printf("  %-4d %12s %12s %12s %12s %12s %12s\n", pe++,
                    fmt(field(u, "compute")).c_str(), fmt(field(u, "send")).c_str(),
                    fmt(field(u, "recv")).c_str(), fmt(field(u, "broadcast")).c_str(),
                    fmt(field(u, "barrier")).c_str(), fmt(field(u, "idle")).c_str());
      }
    }
  }
  const Json* cm = doc.find("comm_matrix");
  if (cm != nullptr) {
    const Json* rows = cm->find("bytes");
    if (rows != nullptr && !rows->items().empty()) {
      std::printf("comm_matrix (bytes, src row -> dst col)\n  %-6s", "");
      for (std::size_t j = 0; j < rows->items().size(); ++j) std::printf(" %10zu", j);
      std::printf("\n");
      for (std::size_t i = 0; i < rows->items().size(); ++i) {
        std::printf("  pe:%-3zu", i);
        for (const Json& v : rows->items()[i].items()) {
          std::printf(" %10s", fmt(v.as_number()).c_str());
        }
        std::printf("\n");
      }
    }
  }
  const Json* cp = doc.find("critical_path");
  if (cp != nullptr) {
    std::printf("critical_path (%ss, slack %ss)\n", fmt(field(*cp, "seconds")).c_str(),
                fmt(field(*cp, "slack")).c_str());
    const Json* by_kind = cp->find("by_kind");
    if (by_kind != nullptr) {
      for (const auto& [kind, v] : by_kind->members()) {
        std::printf("  %-16s %12s\n", kind.c_str(), fmt(v.as_number()).c_str());
      }
    }
    const Json* segs = cp->find("segments");
    if (segs != nullptr && !segs->items().empty()) {
      std::printf("  segments (%zu): pe/kind/steps/seconds\n", segs->items().size());
      for (const Json& seg : segs->items()) {
        const Json* kind = seg.find("kind");
        std::printf("    pe:%-3s %-16s %s..%s %12s\n", fmt(field(seg, "pe")).c_str(),
                    kind != nullptr ? kind->as_string().c_str() : "?",
                    fmt(field(seg, "first_step")).c_str(), fmt(field(seg, "last_step")).c_str(),
                    fmt(field(seg, "seconds")).c_str());
      }
    }
  }
}

int print_report(const std::string& path, bool pe_sections) {
  const Json doc = load_report(path);
  const Json* tool = doc.find("tool");
  std::cout << "report: " << path << " (tool "
            << (tool != nullptr ? tool->as_string() : std::string("?")) << ", schema v"
            << fmt(num_or(doc.find("schema_version"), 0)) << ")\n";
  print_solver_route(doc);
  print_kv_object(doc, "params", "params");
  print_kv_object(doc, "metrics", "metrics");
  print_kv_object(doc, "counters", "counters");
  print_kv_object(doc, "gauges", "gauges");
  print_service(doc);
  print_phases(doc);
  print_attainment(doc);
  print_histograms(doc);
  print_warnings(doc);
  print_threads(doc);
  if (pe_sections) print_pe_sections(doc);
  return 0;
}

// ---------------------------------------------------------------------------
// Ledger trend
// ---------------------------------------------------------------------------

int trend_report(const std::string& ledger_path, double max_regress, double min_seconds) {
  const std::vector<Json> entries = bst::util::read_ledger(ledger_path);
  if (entries.empty()) {
    std::fprintf(stderr, "bst_report: '%s' has no parseable ledger entries\n",
                 ledger_path.c_str());
    return 1;
  }
  std::cout << "trend: " << ledger_path << " (" << entries.size() << " entries)\n";
  const bst::util::TrendReport trend =
      bst::util::ledger_trend(entries, max_regress, min_seconds);
  if (trend.skipped_machines > 0) {
    std::cout << "  (skipped " << trend.skipped_machines
              << " entries from other machines -- fingerprint mismatch)\n";
  }
  if (trend.skipped_paths > 0) {
    std::cout << "  (skipped " << trend.skipped_paths
              << " entries recorded on a different solver path -- phase "
                 "profiles are not comparable across schur/pcg)\n";
  }
  std::printf("  %-28s %4s %12s %12s %12s %9s  %s\n", "series", "n", "min", "median", "last",
              "vs med", "history");
  for (const bst::util::TrendStat& st : trend.series) {
    std::printf("  %-28s %4zu %12s %12s %12s %9s  %s%s\n", st.key.c_str(), st.values.size(),
                fmt(st.min).c_str(), fmt(st.median).c_str(), fmt(st.last).c_str(),
                st.values.size() > 1 ? pct(st.rel).c_str() : "-",
                bst::util::sparkline(st.values).c_str(),
                st.regressed ? "  << REGRESSION" : "");
  }
  if (trend.regressions > 0) {
    std::cout << "RESULT: " << trend.regressions << " series regressed past "
              << pct(max_regress) << " vs the rolling median (baseline >= "
              << fmt(min_seconds) << "s)\n";
    return 3;
  }
  if (trend.insufficient_history) {
    // A fresh (single-entry) ledger has nothing to compare against; say so
    // rather than claiming a clean bill of health.
    std::cout << "RESULT: insufficient history (need >= 2 comparable entries "
                 "per gated series); nothing gated\n";
    return 0;
  }
  std::cout << "RESULT: no regression past the threshold\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

// Parses "50%" as 0.5 and "0.5" as 0.5; negative means "no gate".
double parse_regress(const std::string& s) {
  if (s.empty()) return -1.0;
  std::size_t pos = 0;
  double v = std::stod(s, &pos);
  if (pos < s.size() && s[pos] == '%') v /= 100.0;
  return v;
}

struct DiffStats {
  int regressions = 0;  // phases past the gate
};

void diff_phases(const Json& base, const Json& cand, double max_regress, double min_seconds,
                 DiffStats& stats) {
  const Json* bp = base.find("phases");
  const Json* cp = cand.find("phases");
  if (bp == nullptr && cp == nullptr) return;
  std::printf("phases (baseline -> candidate)\n  %-24s %12s %12s %10s %10s %10s\n", "phase",
              "base s", "cand s", "d(sec)", "d(flops)", "d(bytes)");
  auto rel = [](double b, double c) { return b > 0.0 ? (c - b) / b : 0.0; };
  // Union of phase names, baseline order first.
  std::vector<std::string> names;
  auto collect = [&](const Json* p) {
    if (p == nullptr) return;
    for (const auto& [k, v] : p->members()) {
      (void)v;
      bool seen = false;
      for (const std::string& n : names) seen = seen || n == k;
      if (!seen) names.push_back(k);
    }
  };
  collect(bp);
  collect(cp);
  for (const std::string& name : names) {
    const Json* b = bp != nullptr ? bp->find(name) : nullptr;
    const Json* c = cp != nullptr ? cp->find(name) : nullptr;
    if (b == nullptr || c == nullptr) {
      std::printf("  %-24s %12s %12s %30s\n", name.c_str(),
                  b != nullptr ? fmt(field(*b, "seconds")).c_str() : "-",
                  c != nullptr ? fmt(field(*c, "seconds")).c_str() : "-",
                  b == nullptr ? "(new in candidate)" : "(gone in candidate)");
      continue;
    }
    const double bs = field(*b, "seconds"), cs = field(*c, "seconds");
    const double dsec = rel(bs, cs);
    const bool gated = max_regress >= 0.0 && bs >= min_seconds && dsec > max_regress;
    if (gated) ++stats.regressions;
    std::printf("  %-24s %12s %12s %10s %10s %10s%s\n", name.c_str(), fmt(bs).c_str(),
                fmt(cs).c_str(), pct(dsec).c_str(),
                pct(rel(field(*b, "flops"), field(*c, "flops"))).c_str(),
                pct(rel(field(*b, "bytes"), field(*c, "bytes"))).c_str(),
                gated ? "  << REGRESSION" : "");
  }
}

void diff_histograms(const Json& base, const Json& cand) {
  const Json* bh = base.find("histograms");
  const Json* ch = cand.find("histograms");
  if (bh == nullptr || ch == nullptr) return;
  bool any = false;
  for (const auto& [name, b] : bh->members()) {
    const Json* c = ch->find(name);
    if (c == nullptr) continue;
    if (!any) {
      std::printf("histograms (baseline -> candidate)\n  %-28s %22s %22s %22s\n", "histogram",
                  "p50", "p95", "p99");
      any = true;
    }
    auto shift = [&](const char* key) {
      return fmt(field(b, key)) + " -> " + fmt(field(*c, key));
    };
    std::printf("  %-28s %22s %22s %22s\n", name.c_str(), shift("p50").c_str(),
                shift("p95").c_str(), shift("p99").c_str());
  }
}

void diff_warnings(const Json& base, const Json& cand) {
  const auto bc = warning_counts(base);
  const auto cc = warning_counts(cand);
  if (bc.empty() && cc.empty()) return;
  std::cout << "warnings (baseline -> candidate)\n";
  std::map<std::string, std::pair<std::size_t, std::size_t>> merged;
  for (const auto& [k, n] : bc) merged[k].first = n;
  for (const auto& [k, n] : cc) merged[k].second = n;
  for (const auto& [code, counts] : merged) {
    std::cout << "  " << code << " " << counts.first << " -> " << counts.second
              << (counts.second > counts.first ? "  (more)" : "") << "\n";
  }
}

// Attainment diff: gates on per-phase *efficiency* drops instead of raw
// seconds, so a faster machine cannot mask a flop or locality regression.
// Exit 2 when either report lacks the attainment section (the mode's input
// contract -- run the solver under --calibrate), 3 past the gate.
int diff_attainment(const std::string& base_path, const std::string& cand_path,
                    double max_drop) {
  Json base, cand;
  try {
    base = load_report(base_path);
    cand = load_report(cand_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_report: error: %s\n", e.what());
    return 2;
  }
  const Json* bp = base.find("attainment") != nullptr
                       ? base.find("attainment")->find("phases")
                       : nullptr;
  const Json* cp = cand.find("attainment") != nullptr
                       ? cand.find("attainment")->find("phases")
                       : nullptr;
  if (bp == nullptr || cp == nullptr) {
    std::fprintf(stderr,
                 "bst_report: --attain needs attainment sections in both reports "
                 "(missing in %s)\n",
                 bp == nullptr ? base_path.c_str() : cand_path.c_str());
    return 2;
  }
  std::cout << "attain: baseline " << base_path << " vs candidate " << cand_path << "\n";
  std::printf("  %-24s %10s %10s %10s\n", "phase", "base", "cand", "drop");
  int regressions = 0;
  for (const auto& [name, b] : bp->members()) {
    const Json* ba = b.find("attainment");
    const Json* c = cp->find(name);
    const Json* ca = c != nullptr ? c->find("attainment") : nullptr;
    if (ba == nullptr || ca == nullptr) continue;
    const double bv = ba->as_number(), cv = ca->as_number();
    const double drop = bv > 0.0 ? (bv - cv) / bv : 0.0;
    const bool gated = max_drop >= 0.0 && drop > max_drop;
    if (gated) ++regressions;
    std::printf("  %-24s %10s %10s %10s%s\n", name.c_str(), pct(bv).c_str(), pct(cv).c_str(),
                pct(drop).c_str(), gated ? "  << REGRESSION" : "");
  }
  if (regressions > 0) {
    std::cout << "RESULT: " << regressions << " phase(s) lost more than " << pct(max_drop)
              << " of their attainment\n";
    return 3;
  }
  std::cout << "RESULT: no attainment drop past the threshold\n";
  return 0;
}

int diff_reports(const std::string& base_path, const std::string& cand_path,
                 double max_regress, double min_seconds) {
  const Json base = load_report(base_path);
  const Json cand = load_report(cand_path);
  std::cout << "diff: baseline " << base_path << " vs candidate " << cand_path << "\n";
  DiffStats stats;
  diff_phases(base, cand, max_regress, min_seconds, stats);
  diff_histograms(base, cand);
  diff_warnings(base, cand);
  if (stats.regressions > 0) {
    std::cout << "RESULT: " << stats.regressions << " phase(s) regressed past "
              << pct(max_regress) << " (baseline >= " << fmt(min_seconds) << "s)\n";
    return 3;
  }
  std::cout << "RESULT: no regression past the threshold\n";
  return 0;
}

}  // namespace

// Complete flag reference (docs/API.md mirrors this; tools/check_docs.py
// cross-checks the two and fails CI on drift).
int help() {
  std::printf(
      "bst_report: pretty-printer and perf-regression gate for perf reports\n"
      "\n"
      "modes:\n"
      "  bst_report report.json        pretty-print one report\n"
      "  --pe                          also print per-PE simnet sections\n"
      "  --prof                        hardware-truth view: PMU table + sampler stacks\n"
      "  --roofline                    ASCII roofline of the attainment section\n"
      "  --baseline=a.json             diff mode: the reference report\n"
      "  --candidate=b.json            diff mode: the report under test\n"
      "  --attain                      diff attainment fractions, not seconds\n"
      "  --trend=runs.jsonl            trend view over a perf ledger\n"
      "\n"
      "gates:\n"
      "  --max-regress=50%%             per-phase slowdown gate (diff/trend)\n"
      "  --max-attain-drop=10%%         attainment drop gate (--attain)\n"
      "  --max-bytes-skew=8            measured-vs-modeled byte skew gate (--prof)\n"
      "  --min-seconds=1e-3            ignore phases below this baseline\n"
      "  --help                        this list\n");
  return 0;
}

int main(int argc, char** argv) {
  bst::util::Cli cli(argc, argv);
  if (cli.has("help")) return help();
  // First positional (non --flag) argument, for single-report mode.
  std::string positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional = arg;
      break;
    }
  }
  const std::string baseline = cli.get("baseline", "");
  const std::string candidate = cli.get("candidate", "");
  const std::string trend = cli.get("trend", "");
  try {
    const double max_regress = parse_regress(cli.get("max-regress", "50%"));
    const double min_seconds = cli.get_double("min-seconds", 1e-3);
    if (!trend.empty()) {
      return trend_report(trend, max_regress, min_seconds);
    }
    if (cli.has("attain")) {
      if (baseline.empty() || candidate.empty()) {
        std::fprintf(stderr,
                     "bst_report: --attain needs --baseline=a.json --candidate=b.json\n");
        return 2;
      }
      return diff_attainment(baseline, candidate,
                             parse_regress(cli.get("max-attain-drop", "10%")));
    }
    if (!baseline.empty() && !candidate.empty()) {
      return diff_reports(baseline, candidate, max_regress, min_seconds);
    }
    if (!positional.empty() && baseline.empty() && candidate.empty()) {
      if (cli.has("prof")) {
        return prof_report(positional, cli.get_double("max-bytes-skew", -1.0), min_seconds);
      }
      if (cli.has("roofline")) return roofline_report(positional);
      return print_report(positional, cli.has("pe"));
    }
    std::fprintf(stderr,
                 "usage: bst_report report.json [--pe] [--roofline]\n"
                 "       bst_report report.json --prof [--max-bytes-skew=8]\n"
                 "       bst_report --baseline=a.json --candidate=b.json\n"
                 "                  [--max-regress=50%%] [--min-seconds=1e-3]\n"
                 "       bst_report --attain --baseline=a.json --candidate=b.json\n"
                 "                  [--max-attain-drop=10%%]\n"
                 "       bst_report --trend=runs.jsonl [--max-regress=50%%] "
                 "[--min-seconds=1e-3]\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_report: error: %s\n", e.what());
    return 1;
  }
}
