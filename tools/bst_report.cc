// bst_report: pretty-printer and perf-regression gate for the schema-v1
// JSON reports every instrumented binary emits (util/report.h).
//
//   bst_report one.json
//       Pretty-prints the report: params, metrics, per-phase table,
//       histogram percentiles, warnings, thread utilization.
//
//   bst_report one.json --pe
//       Additionally prints the parallel-run sections (per-PE timeline
//       summary, PE x PE communication matrix, critical path) captured by
//       simnet runs.
//
//   bst_report --baseline=a.json --candidate=b.json
//              [--max-regress=50%] [--min-seconds=1e-3]
//       Diffs two reports: per-phase seconds/flops/bytes deltas, histogram
//       percentile shifts, warning-count changes.  Exits 3 when any phase
//       present in both reports slowed down by more than --max-regress
//       (a fraction, or a percentage with a '%' suffix) -- phases whose
//       baseline is below --min-seconds are skipped as noise.  This is the
//       perf gate CI runs between a trunk baseline and a candidate.
//
//   bst_report --trend=runs.jsonl [--max-regress=50%] [--min-seconds=1e-3]
//       Trend view over a perf ledger (util/ledger.h): per-series
//       min/median/last with an ASCII sparkline of the history.  Exits 3
//       when the *last* entry of any gated series (phase seconds,
//       metrics.time_s/sim_seconds) regresses past --max-regress relative
//       to the rolling median of the prior entries.
//
// Exit codes: 0 ok, 1 error (unreadable/malformed input), 2 usage,
// 3 regression past the threshold.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/ledger.h"
#include "util/report.h"
#include "util/table.h"

using bst::util::Json;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

Json load_report(const std::string& path) {
  Json doc = bst::util::parse_json(slurp(path));
  if (doc.kind() != Json::Kind::Object || doc.find("schema_version") == nullptr) {
    throw std::runtime_error("'" + path + "' is not a perf report (no schema_version)");
  }
  return doc;
}

double num_or(const Json* j, double fallback) {
  return (j != nullptr && j->kind() == Json::Kind::Number) ? j->as_number() : fallback;
}

// Field of an object-valued member, e.g. field(phase, "seconds").
double field(const Json& obj, const std::string& key, double fallback = 0.0) {
  return num_or(obj.find(key), fallback);
}

std::string fmt(double v) {
  char buf[48];
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string pct(double rel) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%+.1f%%", rel * 100.0);
  return buf;
}

// ---------------------------------------------------------------------------
// Pretty printing
// ---------------------------------------------------------------------------

void print_kv_object(const Json& doc, const char* section, const char* title) {
  const Json* obj = doc.find(section);
  if (obj == nullptr || obj->members().empty()) return;
  std::cout << title << "\n";
  for (const auto& [k, v] : obj->members()) {
    std::cout << "  " << k << " = ";
    switch (v.kind()) {
      case Json::Kind::Number: std::cout << fmt(v.as_number()); break;
      case Json::Kind::String: std::cout << v.as_string(); break;
      case Json::Kind::Bool: std::cout << (v.as_bool() ? "true" : "false"); break;
      default: std::cout << v.dump(); break;
    }
    std::cout << "\n";
  }
}

void print_phases(const Json& doc) {
  const Json* phases = doc.find("phases");
  if (phases == nullptr || phases->members().empty()) return;
  std::printf("phases\n  %-24s %10s %12s %14s %14s %10s\n", "phase", "calls", "seconds",
              "flops", "bytes", "GF/s");
  for (const auto& [name, ph] : phases->members()) {
    const double sec = field(ph, "seconds");
    const double flops = field(ph, "flops");
    std::printf("  %-24s %10s %12s %14s %14s %10s\n", name.c_str(),
                fmt(field(ph, "calls")).c_str(), fmt(sec).c_str(), fmt(flops).c_str(),
                fmt(field(ph, "bytes")).c_str(),
                sec > 0.0 ? fmt(flops / sec / 1e9).c_str() : "-");
  }
}

void print_histograms(const Json& doc) {
  const Json* hists = doc.find("histograms");
  if (hists == nullptr || hists->members().empty()) return;
  std::printf("histograms\n  %-28s %10s %12s %12s %12s %12s\n", "histogram", "count", "p50",
              "p95", "p99", "max");
  for (const auto& [name, h] : hists->members()) {
    std::printf("  %-28s %10s %12s %12s %12s %12s\n", name.c_str(),
                fmt(field(h, "count")).c_str(), fmt(field(h, "p50")).c_str(),
                fmt(field(h, "p95")).c_str(), fmt(field(h, "p99")).c_str(),
                fmt(field(h, "max")).c_str());
  }
}

std::map<std::string, std::size_t> warning_counts(const Json& doc) {
  std::map<std::string, std::size_t> counts;
  const Json* warnings = doc.find("warnings");
  if (warnings == nullptr) return counts;
  for (const Json& w : warnings->items()) {
    const Json* code = w.find("code");
    if (code != nullptr && code->kind() == Json::Kind::String) ++counts[code->as_string()];
  }
  return counts;
}

void print_warnings(const Json& doc) {
  const auto counts = warning_counts(doc);
  if (counts.empty()) return;
  std::cout << "warnings\n";
  for (const auto& [code, n] : counts) std::cout << "  " << code << " x" << n << "\n";
  const Json* dropped = doc.find("warnings_dropped");
  if (dropped != nullptr && dropped->as_number() > 0) {
    std::cout << "  (+" << fmt(dropped->as_number()) << " dropped past the cap)\n";
  }
}

void print_threads(const Json& doc) {
  const Json* threads = doc.find("threads");
  if (threads == nullptr || threads->items().empty()) return;
  double busy = 0.0, idle = 0.0, chunks = 0.0;
  for (const Json& t : threads->items()) {
    busy += field(t, "busy_seconds");
    idle += field(t, "idle_seconds");
    chunks += field(t, "chunks");
  }
  std::cout << "threads: " << threads->items().size() << " slots, busy " << fmt(busy)
            << "s, idle " << fmt(idle) << "s, " << fmt(chunks) << " chunks\n";
}

void print_pe_sections(const Json& doc) {
  const Json* tl = doc.find("pe_timeline");
  if (tl != nullptr) {
    std::printf("pe_timeline (makespan %ss, imbalance %s)\n", fmt(field(*tl, "makespan")).c_str(),
                fmt(field(*tl, "imbalance")).c_str());
    const Json* per_pe = tl->find("per_pe");
    if (per_pe != nullptr) {
      std::printf("  %-4s %12s %12s %12s %12s %12s %12s\n", "pe", "compute", "send", "recv",
                  "broadcast", "barrier", "idle");
      int pe = 0;
      for (const Json& u : per_pe->items()) {
        std::printf("  %-4d %12s %12s %12s %12s %12s %12s\n", pe++,
                    fmt(field(u, "compute")).c_str(), fmt(field(u, "send")).c_str(),
                    fmt(field(u, "recv")).c_str(), fmt(field(u, "broadcast")).c_str(),
                    fmt(field(u, "barrier")).c_str(), fmt(field(u, "idle")).c_str());
      }
    }
  }
  const Json* cm = doc.find("comm_matrix");
  if (cm != nullptr) {
    const Json* rows = cm->find("bytes");
    if (rows != nullptr && !rows->items().empty()) {
      std::printf("comm_matrix (bytes, src row -> dst col)\n  %-6s", "");
      for (std::size_t j = 0; j < rows->items().size(); ++j) std::printf(" %10zu", j);
      std::printf("\n");
      for (std::size_t i = 0; i < rows->items().size(); ++i) {
        std::printf("  pe:%-3zu", i);
        for (const Json& v : rows->items()[i].items()) {
          std::printf(" %10s", fmt(v.as_number()).c_str());
        }
        std::printf("\n");
      }
    }
  }
  const Json* cp = doc.find("critical_path");
  if (cp != nullptr) {
    std::printf("critical_path (%ss, slack %ss)\n", fmt(field(*cp, "seconds")).c_str(),
                fmt(field(*cp, "slack")).c_str());
    const Json* by_kind = cp->find("by_kind");
    if (by_kind != nullptr) {
      for (const auto& [kind, v] : by_kind->members()) {
        std::printf("  %-16s %12s\n", kind.c_str(), fmt(v.as_number()).c_str());
      }
    }
    const Json* segs = cp->find("segments");
    if (segs != nullptr && !segs->items().empty()) {
      std::printf("  segments (%zu): pe/kind/steps/seconds\n", segs->items().size());
      for (const Json& seg : segs->items()) {
        const Json* kind = seg.find("kind");
        std::printf("    pe:%-3s %-16s %s..%s %12s\n", fmt(field(seg, "pe")).c_str(),
                    kind != nullptr ? kind->as_string().c_str() : "?",
                    fmt(field(seg, "first_step")).c_str(), fmt(field(seg, "last_step")).c_str(),
                    fmt(field(seg, "seconds")).c_str());
      }
    }
  }
}

int print_report(const std::string& path, bool pe_sections) {
  const Json doc = load_report(path);
  const Json* tool = doc.find("tool");
  std::cout << "report: " << path << " (tool "
            << (tool != nullptr ? tool->as_string() : std::string("?")) << ", schema v"
            << fmt(num_or(doc.find("schema_version"), 0)) << ")\n";
  print_kv_object(doc, "params", "params");
  print_kv_object(doc, "metrics", "metrics");
  print_phases(doc);
  print_histograms(doc);
  print_warnings(doc);
  print_threads(doc);
  if (pe_sections) print_pe_sections(doc);
  return 0;
}

// ---------------------------------------------------------------------------
// Ledger trend
// ---------------------------------------------------------------------------

int trend_report(const std::string& ledger_path, double max_regress, double min_seconds) {
  const std::vector<Json> entries = bst::util::read_ledger(ledger_path);
  if (entries.empty()) {
    std::fprintf(stderr, "bst_report: '%s' has no parseable ledger entries\n",
                 ledger_path.c_str());
    return 1;
  }
  std::cout << "trend: " << ledger_path << " (" << entries.size() << " entries)\n";
  const bst::util::TrendReport trend =
      bst::util::ledger_trend(entries, max_regress, min_seconds);
  std::printf("  %-28s %4s %12s %12s %12s %9s  %s\n", "series", "n", "min", "median", "last",
              "vs med", "history");
  for (const bst::util::TrendStat& st : trend.series) {
    std::printf("  %-28s %4zu %12s %12s %12s %9s  %s%s\n", st.key.c_str(), st.values.size(),
                fmt(st.min).c_str(), fmt(st.median).c_str(), fmt(st.last).c_str(),
                st.values.size() > 1 ? pct(st.rel).c_str() : "-",
                bst::util::sparkline(st.values).c_str(),
                st.regressed ? "  << REGRESSION" : "");
  }
  if (trend.regressions > 0) {
    std::cout << "RESULT: " << trend.regressions << " series regressed past "
              << pct(max_regress) << " vs the rolling median (baseline >= "
              << fmt(min_seconds) << "s)\n";
    return 3;
  }
  std::cout << "RESULT: no regression past the threshold\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

// Parses "50%" as 0.5 and "0.5" as 0.5; negative means "no gate".
double parse_regress(const std::string& s) {
  if (s.empty()) return -1.0;
  std::size_t pos = 0;
  double v = std::stod(s, &pos);
  if (pos < s.size() && s[pos] == '%') v /= 100.0;
  return v;
}

struct DiffStats {
  int regressions = 0;  // phases past the gate
};

void diff_phases(const Json& base, const Json& cand, double max_regress, double min_seconds,
                 DiffStats& stats) {
  const Json* bp = base.find("phases");
  const Json* cp = cand.find("phases");
  if (bp == nullptr && cp == nullptr) return;
  std::printf("phases (baseline -> candidate)\n  %-24s %12s %12s %10s %10s %10s\n", "phase",
              "base s", "cand s", "d(sec)", "d(flops)", "d(bytes)");
  auto rel = [](double b, double c) { return b > 0.0 ? (c - b) / b : 0.0; };
  // Union of phase names, baseline order first.
  std::vector<std::string> names;
  auto collect = [&](const Json* p) {
    if (p == nullptr) return;
    for (const auto& [k, v] : p->members()) {
      (void)v;
      bool seen = false;
      for (const std::string& n : names) seen = seen || n == k;
      if (!seen) names.push_back(k);
    }
  };
  collect(bp);
  collect(cp);
  for (const std::string& name : names) {
    const Json* b = bp != nullptr ? bp->find(name) : nullptr;
    const Json* c = cp != nullptr ? cp->find(name) : nullptr;
    if (b == nullptr || c == nullptr) {
      std::printf("  %-24s %12s %12s %30s\n", name.c_str(),
                  b != nullptr ? fmt(field(*b, "seconds")).c_str() : "-",
                  c != nullptr ? fmt(field(*c, "seconds")).c_str() : "-",
                  b == nullptr ? "(new in candidate)" : "(gone in candidate)");
      continue;
    }
    const double bs = field(*b, "seconds"), cs = field(*c, "seconds");
    const double dsec = rel(bs, cs);
    const bool gated = max_regress >= 0.0 && bs >= min_seconds && dsec > max_regress;
    if (gated) ++stats.regressions;
    std::printf("  %-24s %12s %12s %10s %10s %10s%s\n", name.c_str(), fmt(bs).c_str(),
                fmt(cs).c_str(), pct(dsec).c_str(),
                pct(rel(field(*b, "flops"), field(*c, "flops"))).c_str(),
                pct(rel(field(*b, "bytes"), field(*c, "bytes"))).c_str(),
                gated ? "  << REGRESSION" : "");
  }
}

void diff_histograms(const Json& base, const Json& cand) {
  const Json* bh = base.find("histograms");
  const Json* ch = cand.find("histograms");
  if (bh == nullptr || ch == nullptr) return;
  bool any = false;
  for (const auto& [name, b] : bh->members()) {
    const Json* c = ch->find(name);
    if (c == nullptr) continue;
    if (!any) {
      std::printf("histograms (baseline -> candidate)\n  %-28s %22s %22s %22s\n", "histogram",
                  "p50", "p95", "p99");
      any = true;
    }
    auto shift = [&](const char* key) {
      return fmt(field(b, key)) + " -> " + fmt(field(*c, key));
    };
    std::printf("  %-28s %22s %22s %22s\n", name.c_str(), shift("p50").c_str(),
                shift("p95").c_str(), shift("p99").c_str());
  }
}

void diff_warnings(const Json& base, const Json& cand) {
  const auto bc = warning_counts(base);
  const auto cc = warning_counts(cand);
  if (bc.empty() && cc.empty()) return;
  std::cout << "warnings (baseline -> candidate)\n";
  std::map<std::string, std::pair<std::size_t, std::size_t>> merged;
  for (const auto& [k, n] : bc) merged[k].first = n;
  for (const auto& [k, n] : cc) merged[k].second = n;
  for (const auto& [code, counts] : merged) {
    std::cout << "  " << code << " " << counts.first << " -> " << counts.second
              << (counts.second > counts.first ? "  (more)" : "") << "\n";
  }
}

int diff_reports(const std::string& base_path, const std::string& cand_path,
                 double max_regress, double min_seconds) {
  const Json base = load_report(base_path);
  const Json cand = load_report(cand_path);
  std::cout << "diff: baseline " << base_path << " vs candidate " << cand_path << "\n";
  DiffStats stats;
  diff_phases(base, cand, max_regress, min_seconds, stats);
  diff_histograms(base, cand);
  diff_warnings(base, cand);
  if (stats.regressions > 0) {
    std::cout << "RESULT: " << stats.regressions << " phase(s) regressed past "
              << pct(max_regress) << " (baseline >= " << fmt(min_seconds) << "s)\n";
    return 3;
  }
  std::cout << "RESULT: no regression past the threshold\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bst::util::Cli cli(argc, argv);
  // First positional (non --flag) argument, for single-report mode.
  std::string positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional = arg;
      break;
    }
  }
  const std::string baseline = cli.get("baseline", "");
  const std::string candidate = cli.get("candidate", "");
  const std::string trend = cli.get("trend", "");
  try {
    const double max_regress = parse_regress(cli.get("max-regress", "50%"));
    const double min_seconds = cli.get_double("min-seconds", 1e-3);
    if (!trend.empty()) {
      return trend_report(trend, max_regress, min_seconds);
    }
    if (!baseline.empty() && !candidate.empty()) {
      return diff_reports(baseline, candidate, max_regress, min_seconds);
    }
    if (!positional.empty() && baseline.empty() && candidate.empty()) {
      return print_report(positional, cli.has("pe"));
    }
    std::fprintf(stderr,
                 "usage: bst_report report.json [--pe]\n"
                 "       bst_report --baseline=a.json --candidate=b.json\n"
                 "                  [--max-regress=50%%] [--min-seconds=1e-3]\n"
                 "       bst_report --trend=runs.jsonl [--max-regress=50%%] "
                 "[--min-seconds=1e-3]\n");
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_report: error: %s\n", e.what());
    return 1;
  }
}
