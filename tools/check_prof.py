#!/usr/bin/env python3
"""Profiler-artifact gate (run as a ctest and by the prof-smoke CI job).

Validates the three outputs of a --prof run (util/prof, docs/OBSERVABILITY.md):

  1. the JSON report's "prof" section: pmu status/available/threads are
     consistent, the sampler block is well-formed, and -- when hardware
     counters were live -- the per-phase rows carry cycles/IPC and the
     attainment section joins measured against modeled bytes;
  2. the folded-stack file: every line is "stack count" with the stack
     rooted at a "phase:" frame (flamegraph.pl-compatible);
  3. the Perfetto/chrome-trace JSON: a traceEvents array holding the
     thread-name metadata and the instant sample events.

The PMU expectation is explicit because CI asserts *both* directions:
--require-pmu=yes on bare metal, --require-pmu=no for the graceful
fallback in restricted containers (perf_event_open denied), and the
default auto accepts whatever the kernel allowed.

The sampling-overhead budget (--max-overhead, default 3% of the measured
makespan) is only enforced when the run is long enough to measure
meaningfully; sub-50 ms runs are all noise.

Usage:
  check_prof.py --report=prof.json [--folded=prof.folded]
                [--perfetto=prof.samples.json] [--require-pmu=auto|yes|no]
                [--require-samples=N] [--max-overhead=0.03]

Exit codes: 0 ok, 1 validation failure, 2 usage.
"""

import json
import pathlib
import re
import sys

FOLDED_RE = re.compile(r"^(\S.*) (\d+)$")
MIN_MEASURABLE_MAKESPAN_S = 0.05


def parse_args(argv):
    args = {
        "report": None,
        "folded": None,
        "perfetto": None,
        "require-pmu": "auto",
        "require-samples": "0",
        "max-overhead": "0.03",
    }
    for arg in argv:
        if not arg.startswith("--") or "=" not in arg:
            sys.exit(f"check_prof: unexpected argument '{arg}' (want --key=value)")
        key, _, value = arg[2:].partition("=")
        if key not in args:
            sys.exit(f"check_prof: unknown argument '--{key}'")
        args[key] = value
    if not args["report"]:
        sys.exit("usage: check_prof.py --report=prof.json [--folded=...] "
                 "[--perfetto=...] [--require-pmu=auto|yes|no] "
                 "[--require-samples=N] [--max-overhead=0.03]")
    if args["require-pmu"] not in ("auto", "yes", "no"):
        sys.exit("check_prof: --require-pmu must be auto, yes or no")
    return args


def makespan_seconds(report):
    """Best available wall-clock estimate: the attainment makespan when the
    run was calibrated, otherwise the sum of per-phase seconds."""
    att = report.get("attainment")
    if isinstance(att, dict) and isinstance(att.get("makespan_s"), (int, float)):
        return float(att["makespan_s"])
    total = 0.0
    for row in report.get("phases", {}).values():
        if isinstance(row, dict):
            total += float(row.get("seconds", 0.0))
    return total


def check_report(path, require_pmu, require_samples, max_overhead, problems):
    try:
        report = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as e:
        problems.append(f"report '{path}': cannot load ({e})")
        return None
    prof = report.get("prof")
    if not isinstance(prof, dict):
        problems.append(f"report '{path}': no 'prof' section (was --prof given?)")
        return None

    pmu = prof.get("pmu")
    if not isinstance(pmu, dict):
        problems.append("prof.pmu: missing")
        return report
    status = pmu.get("status", "")
    available = pmu.get("available")
    if not isinstance(available, bool):
        problems.append("prof.pmu.available: not a boolean")
        available = False
    if available and status != "ok":
        problems.append(f"prof.pmu: available but status is '{status}', not 'ok'")
    if not available and status == "ok":
        problems.append("prof.pmu: status 'ok' but available is false")
    if available and pmu.get("threads", 0) < 1:
        problems.append("prof.pmu: available but no thread opened a counter group")
    if require_pmu == "yes" and not available:
        problems.append(f"prof.pmu: required but unavailable (status: '{status}')")
    if require_pmu == "no" and available:
        problems.append("prof.pmu: expected the no-PMU fallback but counters are live")

    # With live counters, the phase rows must carry the measured columns and
    # the attainment section must join measured against modeled bytes.
    if available:
        phases = report.get("phases", {})
        counted = [r for r in phases.values()
                   if isinstance(r, dict) and r.get("cycles", 0) > 0]
        if not counted:
            problems.append("prof.pmu: available but no phase row carries cycles")
        for name, row in sorted(phases.items()):
            if not isinstance(row, dict) or row.get("cycles", 0) <= 0:
                continue
            if row.get("instructions", 0) > 0 and row.get("ipc", 0) <= 0:
                problems.append(f"phase '{name}': instructions counted but ipc missing")
        att = report.get("attainment", {})
        att_phases = att.get("phases", {}) if isinstance(att, dict) else {}
        joined = [r for r in att_phases.values()
                  if isinstance(r, dict) and "measured_vs_model_bytes_ratio" in r]
        if att_phases and counted and not joined:
            problems.append("attainment: no phase joins measured against modeled bytes")

    sampler = prof.get("sampler")
    if not isinstance(sampler, dict):
        problems.append("prof.sampler: missing")
        return report
    samples = int(sampler.get("samples", 0))
    if sampler.get("enabled") and int(sampler.get("interval_us", 0)) <= 0:
        problems.append("prof.sampler: enabled but interval_us is not positive")
    if samples < int(require_samples):
        problems.append(f"prof.sampler: {samples} samples, required >= {require_samples}")
    if samples > 0 and not sampler.get("enabled"):
        problems.append("prof.sampler: samples captured while marked disabled")

    # Overhead budget: estimated capture cost against the measured makespan.
    makespan = makespan_seconds(report)
    overhead = float(sampler.get("overhead_s", 0.0))
    if samples > 0 and makespan >= MIN_MEASURABLE_MAKESPAN_S:
        budget = float(max_overhead) * makespan
        if overhead > budget:
            problems.append(
                f"prof.sampler: overhead {overhead:.6f}s exceeds "
                f"{float(max_overhead):.1%} of makespan {makespan:.3f}s")
    return report


def check_folded(path, problems):
    try:
        lines = pathlib.Path(path).read_text().splitlines()
    except OSError as e:
        problems.append(f"folded '{path}': cannot read ({e})")
        return
    if not lines:
        problems.append(f"folded '{path}': empty")
        return
    for i, line in enumerate(lines, 1):
        m = FOLDED_RE.match(line)
        if not m:
            problems.append(f"folded '{path}' line {i}: not 'stack count'")
            continue
        stack, count = m.group(1), int(m.group(2))
        if not stack.startswith("phase:"):
            problems.append(f"folded '{path}' line {i}: stack not rooted at 'phase:'")
        if count < 1:
            problems.append(f"folded '{path}' line {i}: zero count")
        if ";;" in stack or stack.endswith(";"):
            problems.append(f"folded '{path}' line {i}: empty frame in stack")


def check_perfetto(path, problems):
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as e:
        problems.append(f"perfetto '{path}': cannot load ({e})")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append(f"perfetto '{path}': no traceEvents array")
        return
    kinds = {}
    for ev in events:
        kinds[ev.get("ph")] = kinds.get(ev.get("ph"), 0) + 1
    if kinds.get("M", 0) < 1:
        problems.append(f"perfetto '{path}': no thread-name metadata events")
    if kinds.get("i", 0) < 1:
        problems.append(f"perfetto '{path}': no instant sample events")
    for ev in events:
        if ev.get("ph") == "i" and "stack" not in ev.get("args", {}):
            problems.append(f"perfetto '{path}': sample event without args.stack")
            break


def main(argv):
    args = parse_args(argv)
    problems = []
    check_report(args["report"], args["require-pmu"], args["require-samples"],
                 args["max-overhead"], problems)
    if args["folded"]:
        check_folded(args["folded"], problems)
    if args["perfetto"]:
        check_perfetto(args["perfetto"], problems)
    if problems:
        print("check_prof: validation failed:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("check_prof: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
