// bst_top: terminal live view of a running service's telemetry stream.
//
// Tails the JSONL tick stream a util::TelemetryExporter appends
// (BST_TELEMETRY_OUT / bench_service --telemetry-out=...) and renders the
// signals an operator watches first: QPS, cache hit rate, queue depth,
// inflight, backlog age, p50/p99 latency, and SLO burn-rate -- each with a
// sparkline over the retained tick history (util::sparkline, the same ramp
// bst_report --trend uses).
//
// Live mode redraws with ANSI home+clear every --refresh-ms, re-reading the
// stream from the start (tick streams are append-only and bench-sized;
// simplicity beats an inotify dance).  --once renders a single frame with
// no escape codes -- the scriptable mode the telemetry-smoke CI job greps.
// Malformed lines are skipped, not fatal: a tick being written while we
// read is expected.
//
// Exit codes: 0 ok, 1 failure (unreadable stream and no-parseable-ticks get
// distinct stderr messages), 2 usage.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bst.h"

using bst::util::Json;

namespace {

// One parsed tick: the derived signals bst_top renders.
struct Tick {
  double uptime_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double slo_p99_ms = 0.0;
  double burn_rate = 0.0;
  double hit_rate = 0.0;
  double queue_depth = 0.0;
  double inflight = 0.0;
  double backlog_ms = 0.0;
  double cache_mb = 0.0;
  double slow = 0.0;
  double warnings = 0.0;
  double stalls = 0.0;
  double stalled_threads = 0.0;
  double dropped = 0.0;
  double self_s = 0.0;
  std::uint64_t seq = 0;
};

double num_at(const Json& obj, const std::string& key, double fallback = 0.0) {
  const Json* v = obj.find(key);
  return v != nullptr && v->kind() == Json::Kind::Number ? v->as_number() : fallback;
}

bool parse_tick(const std::string& line, Tick& out) {
  Json doc;
  try {
    doc = bst::util::parse_json(line);
  } catch (const std::exception&) {
    return false;  // torn or malformed line: skip
  }
  if (doc.kind() != Json::Kind::Object) return false;
  out.seq = static_cast<std::uint64_t>(num_at(doc, "seq"));
  out.uptime_s = num_at(doc, "uptime_s");
  out.self_s = num_at(doc, "telemetry_self_s");
  out.qps = num_at(doc, "qps");
  out.p50_ms = num_at(doc, "p50_ms");
  out.p99_ms = num_at(doc, "p99_ms");
  out.slo_p99_ms = num_at(doc, "slo_p99_ms");
  out.burn_rate = num_at(doc, "burn_rate");
  if (const Json* c = doc.find("counters"); c != nullptr) {
    const double hits = num_at(*c, "service_cache_hits");
    const double misses = num_at(*c, "service_cache_misses");
    out.hit_rate = hits + misses > 0.0 ? hits / (hits + misses) : 0.0;
    out.slow = num_at(*c, "service_slow_requests");
    out.warnings = num_at(*c, "watchdog_warnings");
    out.stalls = num_at(*c, "stalls_detected");
    out.dropped = num_at(*c, "metrics_dropped");
  }
  if (const Json* g = doc.find("gauges"); g != nullptr) {
    out.queue_depth = num_at(*g, "service_queue_depth");
    out.inflight = num_at(*g, "service_inflight");
    out.backlog_ms = num_at(*g, "service_backlog_age_ms");
    out.cache_mb = num_at(*g, "service_cache_resident_bytes") / (1024.0 * 1024.0);
    out.stalled_threads = num_at(*g, "stalled_threads");
  }
  return true;
}

// `readable` distinguishes "the stream cannot be opened" (missing path,
// permissions) from "the stream opened but held no parseable tick" (empty
// file, or every line torn/malformed) -- the two failures an operator
// debugs differently, so --once reports them apart.
std::vector<Tick> read_stream(const std::string& path, std::size_t keep, bool* readable) {
  std::vector<Tick> ticks;
  std::ifstream f(path);
  if (readable != nullptr) *readable = static_cast<bool>(f);
  if (!f) return ticks;
  std::string line;
  while (std::getline(f, line)) {
    Tick t;
    if (parse_tick(line, t)) ticks.push_back(t);
  }
  if (ticks.size() > keep) ticks.erase(ticks.begin(), ticks.end() - static_cast<long>(keep));
  return ticks;
}

std::vector<double> series(const std::vector<Tick>& ticks, double Tick::* field) {
  std::vector<double> out;
  out.reserve(ticks.size());
  for (const Tick& t : ticks) out.push_back(t.*field);
  return out;
}

void render(const std::vector<Tick>& ticks, const std::string& stream) {
  const Tick& now = ticks.back();
  std::printf("bst_top — %s   tick #%llu   uptime %.1fs   telemetry self %.3fs\n",
              stream.c_str(), static_cast<unsigned long long>(now.seq), now.uptime_s,
              now.self_s);
  std::printf("  qps        %10.1f  %s\n", now.qps,
              bst::util::sparkline(series(ticks, &Tick::qps)).c_str());
  std::printf("  p50_ms     %10.3f  %s\n", now.p50_ms,
              bst::util::sparkline(series(ticks, &Tick::p50_ms)).c_str());
  std::printf("  p99_ms     %10.3f  %s   (slo %.1f ms, burn %.2f)\n", now.p99_ms,
              bst::util::sparkline(series(ticks, &Tick::p99_ms)).c_str(), now.slo_p99_ms,
              now.burn_rate);
  std::printf("  hit_rate   %10.3f  %s\n", now.hit_rate,
              bst::util::sparkline(series(ticks, &Tick::hit_rate)).c_str());
  std::printf("  queue      %10.0f  %s   inflight %.0f   backlog %.0f ms\n",
              now.queue_depth,
              bst::util::sparkline(series(ticks, &Tick::queue_depth)).c_str(), now.inflight,
              now.backlog_ms);
  std::printf("  cache_mb   %10.2f  slow %.0f   warnings %.0f\n", now.cache_mb, now.slow,
              now.warnings);
  // Health line: stallguard verdicts and the exporter's own drop counter.
  // Zero across the board is the healthy steady state; any nonzero value is
  // the first thing an operator should chase (docs/OBSERVABILITY.md).
  std::printf("  health     stalls %.0f   stalled_threads %.0f  %s   metrics_dropped %.0f\n",
              now.stalls, now.stalled_threads,
              bst::util::sparkline(series(ticks, &Tick::stalled_threads)).c_str(),
              now.dropped);
}

// Complete flag reference (docs/API.md mirrors this; tools/check_docs.py
// cross-checks bst_solve/bst_report only, but the same contract applies).
int help() {
  std::printf(
      "bst_top: terminal live view of a telemetry JSONL tick stream\n"
      "\n"
      "  --stream=ticks.jsonl          the stream to tail (required)\n"
      "  --refresh-ms=500              redraw period in live mode\n"
      "  --history=60                  ticks kept for the sparklines\n"
      "  --once                        render one frame, no escape codes, exit\n"
      "  --frames=0                    live mode: stop after N frames (0 = forever)\n"
      "  --help                        this list\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  bst::util::Cli cli(argc, argv);
  if (cli.has("help")) return help();
  const std::string stream = cli.get("stream", "");
  if (stream.empty()) {
    std::fprintf(stderr, "usage: bst_top --stream=ticks.jsonl [--refresh-ms=500] "
                         "[--history=60] [--once | --frames=N]\n");
    return 2;
  }
  const long refresh_ms = cli.get_int("refresh-ms", 500);
  const auto history = static_cast<std::size_t>(cli.get_int("history", 60));
  const bool once = cli.has("once");
  const long frames = cli.get_int("frames", 0);

  long rendered = 0;
  for (;;) {
    bool readable = false;
    const std::vector<Tick> ticks = read_stream(stream, history, &readable);
    if (once) {
      if (!readable) {
        std::fprintf(stderr,
                     "bst_top: cannot read tick stream '%s' (missing file or "
                     "permission denied)\n",
                     stream.c_str());
        return 1;
      }
      if (ticks.empty()) {
        std::fprintf(stderr,
                     "bst_top: no parseable ticks in '%s' (stream is empty or "
                     "every line is malformed)\n",
                     stream.c_str());
        return 1;
      }
      render(ticks, stream);
      return 0;
    }
    if (!ticks.empty()) {
      std::printf("\x1b[H\x1b[2J");  // home + clear: steady live frame
      render(ticks, stream);
      std::fflush(stdout);
      ++rendered;
      if (frames > 0 && rendered >= frames) return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(refresh_ms));
  }
} catch (const std::exception& e) {
  std::fprintf(stderr, "bst_top: %s\n", e.what());
  return 2;
}
