// bst_gen: generate test matrices in the bst text format.
//
//   bst_gen --family=kms|prolate|fgn|ma|ar1|indefinite|singular
//           [--n=N | --m=M --p=P] [--param=X] [--seed=S] [--out=T.txt]
//           [--rhs-ones=b.txt]
//
// Families:
//   kms         scalar, T(i,j) = param^|i-j|            (param = rho, 0.7)
//   prolate     scalar, bandlimited, ill-conditioned    (param = w, 0.35)
//   fgn         scalar, fractional Gaussian noise       (param = H, 0.75)
//   ma          block SPD, MA(q)-covariance             (param = q, 2)
//   ar1         block SPD, AR(1) vector process         (param = phi, 0.6)
//   indefinite  scalar symmetric indefinite             (param = diag, 1.2)
//   singular    scalar with singular 2x2 leading minor
#include <cstdio>
#include <iostream>
#include <string>

#include "bst.h"

using namespace bst;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  try {
    const std::string family = cli.get("family", "");
    const la::index_t n = cli.get_int("n", 64);
    const la::index_t m = cli.get_int("m", 2);
    const la::index_t p = cli.get_int("p", 32);
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

    toeplitz::BlockToeplitz t = [&]() -> toeplitz::BlockToeplitz {
      if (family == "kms") return toeplitz::kms(n, cli.get_double("param", 0.7));
      if (family == "prolate") return toeplitz::prolate(n, cli.get_double("param", 0.35));
      if (family == "fgn") return toeplitz::fgn(n, cli.get_double("param", 0.75));
      if (family == "ma") {
        return toeplitz::random_spd_block(m, p, cli.get_int("param", 2), seed);
      }
      if (family == "ar1") return toeplitz::ar1_block(m, p, seed, cli.get_double("param", 0.6));
      if (family == "indefinite") {
        return toeplitz::random_indefinite(n, seed, cli.get_double("param", 1.2));
      }
      if (family == "singular") return toeplitz::singular_minor_family(n, seed);
      throw std::runtime_error(
          "unknown --family '" + family +
          "' (kms|prolate|fgn|ma|ar1|indefinite|singular)");
    }();

    if (cli.has("out")) {
      toeplitz::write_block_toeplitz_file(cli.get("out", ""), t);
    } else {
      toeplitz::write_block_toeplitz(std::cout, t);
    }
    if (cli.has("rhs-ones")) {
      toeplitz::write_vector_file(cli.get("rhs-ones", ""), toeplitz::rhs_for_ones(t));
    }
    std::fprintf(stderr, "bst_gen: %s, n = %td (m = %td, p = %td)\n", family.c_str(),
                 t.order(), t.block_size(), t.num_blocks());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_gen: error: %s\n", e.what());
    return 1;
  }
}
