#!/usr/bin/env python3
"""Telemetry-format gate (run as a ctest and by the telemetry-smoke CI job).

Validates the two artifacts a util::TelemetryExporter produces:

  1. the Prometheus text-exposition file (--prom): every non-comment line
     must be `name[{labels}] value` with correctly escaped label values
     (backslash, double quote, and newline as \\ \" \n), every sample must
     be preceded by both a `# HELP` and a `# TYPE` for its metric family,
     and every --require=NAME series must be present;
  2. the JSONL tick stream (--stream): every line must parse as a JSON
     object with the tick keys, and `seq` must increase by one per line;
  3. the exporter's self-overhead: the last tick's telemetry_self_s /
     uptime_s must stay within --max-overhead (the 3% observability
     budget calibration already enforces for the tracer).

Usage: check_telemetry.py [--prom=bst.prom] [--stream=ticks.jsonl]
                          [--require=bst_qps ...] [--max-overhead=0.03]
"""

import json
import pathlib
import re
import sys

# One label pair: name="value" where the value escapes backslash, double
# quote, and newline as \\ \" \n (Prometheus text-exposition rules).  A raw
# backslash before anything else, a bare quote, or a literal newline inside
# a label value is malformed.
LABEL_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
# name{labels} value  |  name value   (value: int/float/scientific/inf/nan)
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{" + LABEL_RE + r"(?:," + LABEL_RE + r")*\})? "
    r"(-?(?:[0-9.]+(?:[eE][+-]?[0-9]+)?|[Ii]nf|[Nn]a[Nn]))$"
)
TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$")
HELP_RE = re.compile(r"^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$")

TICK_KEYS = {"seq", "ts_ns", "uptime_s", "telemetry_self_s", "qps", "p50_ms",
             "p99_ms", "burn_rate", "counters", "gauges", "histograms"}


def parse_args(argv):
    args = {"require": []}
    for arg in argv:
        if not arg.startswith("--") or "=" not in arg:
            sys.exit(f"check_telemetry: unexpected argument '{arg}'")
        key, _, value = arg[2:].partition("=")
        if key == "require":
            args["require"].append(value)
        else:
            args[key] = value
    if "prom" not in args and "stream" not in args:
        sys.exit("check_telemetry: need --prom=... and/or --stream=...")
    return args


def family_of(name):
    """The metric family a sample belongs to (summary quantile lines and
    _sum/_count belong to the base name's family)."""
    for suffix in ("_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prom(path, required):
    problems = []
    text = pathlib.Path(path).read_text(errors="replace")
    typed = set()
    helped = set()
    seen = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE"):
                m = TYPE_RE.match(line)
                if m is None:
                    problems.append(f"{path}:{lineno}: malformed TYPE comment: {line!r}")
                else:
                    typed.add(family_of(m.group(1)))
            elif line.startswith("# HELP"):
                m = HELP_RE.match(line)
                if m is None:
                    problems.append(f"{path}:{lineno}: malformed HELP comment: {line!r}")
                else:
                    helped.add(family_of(m.group(1)))
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"{path}:{lineno}: malformed sample line: {line!r}")
            continue
        name = m.group(1)
        seen.add(name)
        if family_of(name) not in typed and name not in typed:
            problems.append(f"{path}:{lineno}: sample '{name}' has no preceding # TYPE")
        if family_of(name) not in helped and name not in helped:
            problems.append(f"{path}:{lineno}: sample '{name}' has no preceding # HELP")
    if not seen:
        problems.append(f"{path}: no samples at all")
    for name in required:
        if name not in seen:
            problems.append(f"{path}: required series '{name}' is missing")
    return problems


def check_stream(path):
    problems = []
    last_tick = None
    prev_seq = None
    for lineno, line in enumerate(pathlib.Path(path).read_text(errors="replace").splitlines(),
                                  start=1):
        if not line.strip():
            continue
        try:
            tick = json.loads(line)
        except json.JSONDecodeError as e:
            problems.append(f"{path}:{lineno}: malformed JSON tick: {e}")
            continue
        missing = TICK_KEYS - set(tick)
        if missing:
            problems.append(f"{path}:{lineno}: tick missing keys {sorted(missing)}")
            continue
        if prev_seq is not None and tick["seq"] != prev_seq + 1:
            problems.append(
                f"{path}:{lineno}: seq {tick['seq']} does not follow {prev_seq}")
        prev_seq = tick["seq"]
        last_tick = tick
    if last_tick is None:
        problems.append(f"{path}: no parseable ticks")
    return problems, last_tick


def main(argv):
    args = parse_args(argv)
    max_overhead = float(args.get("max-overhead", 0.03))
    problems = []
    last_tick = None
    if "prom" in args:
        problems += check_prom(args["prom"], args["require"])
    if "stream" in args:
        stream_problems, last_tick = check_stream(args["stream"])
        problems += stream_problems
    if last_tick is not None and last_tick["uptime_s"] > 0:
        frac = last_tick["telemetry_self_s"] / last_tick["uptime_s"]
        if frac > max_overhead:
            problems.append(
                f"telemetry self-overhead {frac:.4f} exceeds the budget {max_overhead}")
        else:
            print(f"check_telemetry: exporter self-overhead {frac:.4f} "
                  f"(budget {max_overhead})")

    if problems:
        print("check_telemetry: telemetry output is malformed:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("check_telemetry: telemetry output is well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
