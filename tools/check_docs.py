#!/usr/bin/env python3
"""Docs-consistency gate (run as a ctest; wired in tools/CMakeLists.txt).

Two invariants, checked against the union of every docs/*.md file:

  1. every --flag printed by `bst_solve --help` and `bst_report --help`
     is documented somewhere under docs/;
  2. every BST_* environment variable referenced as a string literal in
     src/, tools/ or bench/ is documented somewhere under docs/.

A flag or env var that ships undocumented fails the build -- the docs and
the binaries drift apart exactly once, at review time, not at use time.

Usage: check_docs.py --repo=<repo root> --bst-solve=<path> --bst-report=<path>
"""

import pathlib
import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
ENV_RE = re.compile(r'"(BST_[A-Z0-9_]+)"')


def parse_args(argv):
    args = {}
    for arg in argv:
        if not arg.startswith("--") or "=" not in arg:
            sys.exit(f"check_docs: unexpected argument '{arg}'")
        key, _, value = arg[2:].partition("=")
        args[key] = value
    missing = {"repo", "bst-solve", "bst-report"} - set(args)
    if missing:
        sys.exit(f"check_docs: missing arguments: {sorted(missing)}")
    return args


def help_flags(binary):
    out = subprocess.run([binary, "--help"], capture_output=True, text=True, check=True)
    flags = set(FLAG_RE.findall(out.stdout))
    if not flags:
        sys.exit(f"check_docs: '{binary} --help' printed no --flags")
    return flags


def source_env_vars(repo):
    env = set()
    for sub in ("src", "tools", "bench"):
        for path in sorted((repo / sub).rglob("*")):
            if path.suffix not in {".h", ".cc", ".py"}:
                continue
            for name in ENV_RE.findall(path.read_text(errors="replace")):
                # Names ending in '_' are dynamic prefixes (e.g. the
                # "BST_KERNEL_" family base), not variables themselves.
                if not name.endswith("_"):
                    env.add(name)
    return env


def main(argv):
    args = parse_args(argv)
    repo = pathlib.Path(args["repo"])
    docs = ""
    for md in sorted((repo / "docs").glob("*.md")):
        docs += md.read_text(errors="replace")

    problems = []
    for label, binary in (("bst_solve", args["bst-solve"]), ("bst_report", args["bst-report"])):
        for flag in sorted(help_flags(binary)):
            if flag not in docs:
                problems.append(f"{label} flag '{flag}' is not documented in docs/*.md")
    for name in sorted(source_env_vars(repo)):
        if name not in docs:
            problems.append(f"environment variable '{name}' is not documented in docs/*.md")

    if problems:
        print("check_docs: documentation drift detected:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("check_docs: all CLI flags and BST_* environment variables are documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
