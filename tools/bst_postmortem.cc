// bst_postmortem: decode a crashbox report (util/crashbox.h) into
// human-readable form, optionally exporting the final flight-recorder rings
// as a chrome-trace/Perfetto JSON document.
//
//   bst_postmortem <report.bstcrash>                 # print the summary
//   bst_postmortem <report> --trace=out.json         # + Perfetto trace
//   bst_postmortem <report> --assert-req=<id>        # CI: victim present?
//
// Exit codes: 0 decoded (and, with --assert-req, the request was found in
// the active-request table); 1 unreadable/malformed report; 2 usage;
// 3 --assert-req id not in the report.
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "util/postmortem.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: bst_postmortem <report.bstcrash> [--trace=out.json] [--assert-req=<id>]\n"
     << "Decodes a BST crash report (written to BST_CRASH_DIR by the crashbox\n"
     << "signal handler) into a human-readable summary; --trace exports the\n"
     << "final flight-recorder rings as chrome://tracing / Perfetto JSON.\n"
     << "--assert-req exits 3 unless the given request id is in the report's\n"
     << "active-request table (CI fault-injection gate).\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path, trace_out, assert_req;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg.rfind("--trace=", 0) == 0) {
      trace_out = arg.substr(8);
    } else if (arg.rfind("--assert-req=", 0) == 0) {
      assert_req = arg.substr(13);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "bst_postmortem: unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "bst_postmortem: more than one report path given\n";
      usage(std::cerr);
      return 2;
    }
  }
  if (path.empty()) {
    usage(std::cerr);
    return 2;
  }

  bst::util::CrashReport rep;
  try {
    rep = bst::util::read_crash_report(path);
  } catch (const std::exception& e) {
    std::cerr << "bst_postmortem: " << e.what() << "\n";
    return 1;
  }

  std::cout << "crash report: " << path << "\n" << bst::util::crash_summary(rep);

  if (!trace_out.empty()) {
    std::ofstream f(trace_out);
    if (!f) {
      std::cerr << "bst_postmortem: cannot open '" << trace_out << "' for writing\n";
      return 1;
    }
    bst::util::write_crash_trace(rep, f);
    std::cout << "trace written: " << trace_out << "\n";
  }

  if (!assert_req.empty()) {
    const std::uint64_t want = std::strtoull(assert_req.c_str(), nullptr, 10);
    for (const bst::util::CrashRequest& r : rep.requests) {
      if (r.id == want) {
        std::cout << "assert-req: req " << want << " found, phase=" << r.phase << "\n";
        return 0;
      }
    }
    std::cerr << "bst_postmortem: req " << want
              << " not in the report's active-request table\n";
    return 3;
  }
  return 0;
}
