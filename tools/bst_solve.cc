// bst_solve: command line solver for symmetric (block) Toeplitz systems.
//
//   bst_solve --matrix=T.txt [--rhs=b.txt] [--out=x.txt] [--ms=K]
//             [--rep=vy2|vy1|yty|u|seq] [--solver=auto|schur|pcg]
//             [--refine] [--report]
//             [--profile=out.json] [--trace=out.json] [--ledger=runs.jsonl]
//             [--calibrate[=prof.json]]
//
//   bst_solve --np=4 [--layout=v1|v2|v3] [--group=G] [--spread=S]
//             [--matrix=T.txt | --n=256] [--ms=8] ...
//
//   bst_solve --fingerprint
//   bst_solve --calibrate=prof.json
//
// Reads the matrix (and optionally the right-hand side; defaults to
// T * ones so the expected solution is all-ones), solves with the
// automatic SPD/indefinite dispatch of core::toeplitz_solve, and writes
// the solution.  --report prints a one-line summary including the path
// taken, perturbation/interchange counts and the residual.  --profile
// enables the structured tracer and writes a schema-stamped JSON perf
// report (per-phase time/flop/byte breakdown, per-step diagnostics,
// latency histograms, watchdog warnings, thread utilization).  --trace
// additionally arms the flight recorder and writes the run's event
// timeline as a chrome://tracing / Perfetto JSON file.  --ledger appends
// one compact JSONL line (UTC time, git revision, params hash, phase
// seconds, metrics, warning count) for `bst_report --trend`.
//
// With --np the solve runs on the simulated distributed machine
// (simnet/dist_schur.h): the V1/V2 layouts really factor on per-PE
// storage and back-substitute through R^T R x = b; V3 is cost-model only
// (no solution vector).  Without --matrix a synthetic SPD Kac-Murdock-
// Szego system of order --n is used, so layout experiments need no input
// files.  The profile then carries the per-PE sections ("pe_timeline",
// "comm_matrix", "critical_path") and the trace shows one "pe:<k>" track
// per simulated PE (see docs/OBSERVABILITY.md for all formats).
//
// --calibrate=prof.json loads (or, on a fingerprint mismatch, re-measures
// and caches) the machine calibration profile -- peak GEMM GFLOP/s over the
// Schur block shapes, STREAM-triad bandwidth, per-span tracer overhead --
// and joins it with the traced phase counters into the report's
// "attainment" section: achieved GFLOP/s, arithmetic intensity, roofline
// ceiling, attainment fraction and model-ratio against the eq. 25-32 flop
// models (render with `bst_report --roofline`).  A bare --calibrate
// measures without caching.  --fingerprint prints the machine/build
// fingerprint (used as the CI cache key) and exits.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bst.h"

using namespace bst;

namespace {

core::Representation parse_rep(const std::string& s) {
  if (s == "vy1") return core::Representation::VY1;
  if (s == "vy2") return core::Representation::VY2;
  if (s == "yty") return core::Representation::YTY;
  if (s == "u") return core::Representation::AccumulatedU;
  if (s == "seq") return core::Representation::Sequential;
  throw std::runtime_error("unknown --rep '" + s + "' (vy1|vy2|yty|u|seq)");
}

simnet::Layout parse_layout(const std::string& s) {
  if (s == "v1") return simnet::Layout::V1;
  if (s == "v2") return simnet::Layout::V2;
  if (s == "v3") return simnet::Layout::V3;
  throw std::runtime_error("unknown --layout '" + s + "' (v1|v2|v3)");
}

// Complete flag reference, one per line (docs/API.md mirrors this table;
// tools/check_docs.py cross-checks the two and fails CI on drift).
int help() {
  std::printf(
      "bst_solve: solve a symmetric (block) Toeplitz system T x = b\n"
      "\n"
      "input / output:\n"
      "  --matrix=T.txt      block Toeplitz matrix file (toeplitz/io.h format)\n"
      "  --rhs=b.txt         right-hand side (default: T * ones)\n"
      "  --out=x.txt         write the solution vector\n"
      "  --n=256             synthetic KMS system of this order (no --matrix)\n"
      "\n"
      "algorithm:\n"
      "  --ms=K              working block size m_s of the block Schur step\n"
      "  --rep=vy2           reflector representation: vy1|vy2|yty|u|seq\n"
      "  --solver=auto       solver family: auto|schur|pcg (auto = crossover policy)\n"
      "  --refine            force one step of iterative refinement\n"
      "  --parallel          thread the factorization (BST_THREADS workers)\n"
      "\n"
      "simulated distributed machine:\n"
      "  --np=4              number of simulated PEs (enables simnet path)\n"
      "  --layout=v1         data layout: v1|v2|v3 (v3 is cost-model only)\n"
      "  --group=G           PE group size of the V2/V3 layouts\n"
      "  --spread=S          block-row spread of the V3 layout\n"
      "\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --report            print a one-line solve summary\n"
      "  --profile=out.json  write the JSON perf report\n"
      "  --trace=out.json    write a chrome://tracing event timeline\n"
      "  --ledger=runs.jsonl append one JSONL run line (bst_report --trend)\n"
      "  --prof              hardware profiler: per-phase PMU counters + sampling\n"
      "  --prof-out=prof     profiler artifact prefix (<p>.folded, <p>.samples.json)\n"
      "  --calibrate[=p.json] measure/load machine ceilings (attainment)\n"
      "  --fingerprint       print the machine/build fingerprint and exit\n"
      "  --help              this list\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bst_solve --matrix=T.txt [--rhs=b.txt] [--out=x.txt] "
               "[--ms=K] [--rep=vy2] [--solver=auto|schur|pcg] [--refine] [--parallel] [--report] "
               "[--profile=out.json] [--trace=out.json] [--ledger=runs.jsonl] "
               "[--calibrate[=prof.json]]\n"
               "       bst_solve --np=4 [--layout=v1|v2|v3] [--group=G] [--spread=S] "
               "[--matrix=T.txt | --n=256] [--ms=8] ...\n"
               "       bst_solve --n=256 [--ms=8] ...      (synthetic KMS, sequential)\n"
               "       bst_solve --fingerprint             (print machine fingerprint)\n"
               "       bst_solve --calibrate=prof.json     (measure/cache ceilings only)\n");
  return 2;
}

// Frobenius norm of the full block Toeplitz matrix from its first block
// row: ||T||_F^2 = p ||T_1||_F^2 + sum_{k=2}^p 2 (p - k + 1) ||T_k||_F^2
// (each T_k appears on 2(p-k+1) off-diagonal block positions).
double toeplitz_frobenius(const toeplitz::BlockToeplitz& t) {
  const la::index_t p = t.num_blocks();
  const double f1 = la::frobenius(t.block(1));
  double acc = static_cast<double>(p) * f1 * f1;
  for (la::index_t k = 2; k <= p; ++k) {
    const double fk = la::frobenius(t.block(k));
    acc += 2.0 * static_cast<double>(p - k + 1) * fk * fk;
  }
  return std::sqrt(acc);
}

// Finishes an observed run: trace file, profile file, ledger line.
void finish_observability(util::PerfReport& report, const std::string& profile_path,
                          const std::string& trace_path, const std::string& ledger_path) {
  if (!trace_path.empty()) {
    util::FlightRecorder::disable();
    util::FlightRecorder::write_chrome_trace(trace_path);
  }
  util::Tracer::disable();
  if (!profile_path.empty()) report.write_file(profile_path);
  if (!ledger_path.empty()) util::append_ledger(ledger_path, report.build());
}

// The distributed (simulated) solve path.  `calibration` (may be null)
// feeds the report's attainment section.
int run_simnet(const util::Cli& cli, const toeplitz::BlockToeplitz& t,
               const std::vector<double>& b, const std::string& matrix_label,
               const std::string& profile_path, const std::string& trace_path,
               const std::string& ledger_path, const util::Json* calibration) {
  simnet::DistOptions dopt;
  dopt.np = cli.get_int("np", 4);
  dopt.layout = parse_layout(cli.get("layout", "v1"));
  dopt.group = cli.get_int("group", 4);
  dopt.spread = cli.get_int("spread", 2);
  dopt.rep = parse_rep(cli.get("rep", "vy2"));
  dopt.block_size = cli.get_int("ms", 0);
  const bool want_factor = dopt.layout != simnet::Layout::V3;

  const double t0 = util::wall_seconds();
  simnet::DistResult res = simnet::dist_schur_factor(t, dopt, want_factor);
  const double dt = util::wall_seconds() - t0;

  double residual = -1.0;
  if (want_factor) {
    std::vector<double> x;
    core::solve_rtdr(std::as_const(*res.r).view(), nullptr, b, x);
    std::vector<double> r;
    toeplitz::MatVec op(t);
    op.residual(b, x, r);
    residual = la::norm2(r);
    if (cli.has("out")) {
      toeplitz::write_vector_file(cli.get("out", ""), x);
    } else if (profile_path.empty() && trace_path.empty()) {
      toeplitz::write_vector(std::cout, x);
    }
  }

  const util::ParAnalysis analysis = util::analyze_schedule(res.schedule);
  if (!res.schedule.empty() && !analysis.consistent()) {
    std::fprintf(stderr,
                 "bst_solve: warning: critical path (%.9e s) does not telescope to the "
                 "simulated makespan (%.9e s)\n",
                 analysis.critical_path_seconds, analysis.makespan);
  }

  // Profiled run: settle the sampler before any report is built so the
  // prof section and the folded artifacts are final.
  if (util::Prof::armed()) {
    util::Prof::disarm();
    util::Prof::write_artifacts();
  }

  util::PerfReport report("bst_solve");
  report.param("matrix", matrix_label);
  report.param("n", static_cast<std::int64_t>(t.order()));
  report.param("ms", static_cast<std::int64_t>(dopt.block_size ? dopt.block_size
                                                               : t.block_size()));
  report.param("rep", cli.get("rep", "vy2"));
  report.param("np", static_cast<std::int64_t>(dopt.np));
  report.param("layout", simnet::to_string(dopt.layout));
  if (dopt.layout == simnet::Layout::V2) {
    report.param("group", static_cast<std::int64_t>(dopt.group));
  }
  if (dopt.layout == simnet::Layout::V3) {
    report.param("spread", static_cast<std::int64_t>(dopt.spread));
  }
  report.metric("time_s", dt);
  report.metric("sim_seconds", res.sim_seconds);
  report.metric("sim_compute_s", res.breakdown.compute);
  report.metric("sim_broadcast_s", res.breakdown.broadcast);
  report.metric("sim_shift_s", res.breakdown.shift);
  report.metric("sim_barrier_s", res.breakdown.barrier);
  report.metric("steps", static_cast<double>(res.steps));
  if (residual >= 0) report.metric("residual", residual);
  for (const simnet::PeCommStats& c : res.comm) {
    report.add_pe_comm(c.bytes_sent, c.bytes_recv, c.messages);
  }
  if (!res.schedule.empty()) report.add_par_analysis(analysis);
  if (calibration != nullptr) {
    const util::Json doc = report.build();
    report.set_attainment(util::attainment_section(doc, calibration, {}));
  }
  finish_observability(report, profile_path, trace_path, ledger_path);

  if (cli.has("report")) {
    std::fprintf(stderr,
                 "bst_solve: n=%td np=%d layout=%s sim=%.3fms (compute %.3f / bcast %.3f / "
                 "shift %.3f / barrier %.3f ms) imbalance=%.3f residual=%s%.3e\n",
                 t.order(), dopt.np, simnet::to_string(dopt.layout), res.sim_seconds * 1e3,
                 res.breakdown.compute * 1e3, res.breakdown.broadcast * 1e3,
                 res.breakdown.shift * 1e3, res.breakdown.barrier * 1e3, analysis.imbalance,
                 residual < 0 ? "(not computed) " : "", residual < 0 ? 0.0 : residual);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  try {
    if (cli.has("help")) return help();
    if (cli.has("fingerprint")) {
      // CI cache key for calibration profiles: stable for a given
      // CPU model + core count + compiler + flags.
      std::printf("%s\n", util::machine_fingerprint().c_str());
      return 0;
    }

    const std::string matrix_path = cli.get("matrix", "");
    const bool simulate = cli.has("np");
    // --n alone selects the synthetic sequential path; --calibrate alone
    // measures the machine profile and exits.
    const bool calibrate_only =
        cli.has("calibrate") && matrix_path.empty() && !simulate && !cli.has("n");
    if (matrix_path.empty() && !simulate && !cli.has("n") && !calibrate_only) return usage();

    // Calibrate *before* arming observability: the span-overhead probe
    // drives the tracer, and run_calibration resets Tracer/Metrics on exit.
    util::Json cal_json;
    bool has_cal = false;
    if (cli.has("calibrate")) {
      const std::string cal_path = cli.get("calibrate", "");
      const util::Calibration cal =
          util::load_or_run_calibration(cal_path == "1" ? "" : cal_path);
      cal_json = cal.to_json();
      has_cal = true;
      // Feed the measured cache sizes into the level-3 kernel blocking
      // before any solve runs (BST_KERNEL_* still outranks the profile).
      util::apply_kernel_tuning(cal);
      if (calibrate_only) {
        std::fprintf(stderr,
                     "bst_solve: calibrated %s: peak %.2f GFLOP/s, stream %.2f GB/s, "
                     "span overhead %.1f ns\n",
                     cal.fingerprint.c_str(), cal.peak_gflops, cal.stream_gbs,
                     cal.span_overhead_ns);
        return 0;
      }
    }

    toeplitz::BlockToeplitz t = [&] {
      if (!matrix_path.empty()) return toeplitz::read_block_toeplitz_file(matrix_path);
      // Synthetic SPD default for layout experiments: a KMS system of
      // order --n re-blocked to --ms.
      const la::index_t n = cli.get_int("n", 256);
      const la::index_t ms = cli.get_int("ms", 8);
      return toeplitz::kms(n, 0.5).with_block_size(ms);
    }();
    const std::string matrix_label = matrix_path.empty() ? "kms" : matrix_path;

    std::vector<double> b;
    if (cli.has("rhs")) {
      b = toeplitz::read_vector_file(cli.get("rhs", ""));
      if (static_cast<la::index_t>(b.size()) != t.order()) {
        throw std::runtime_error("rhs length " + std::to_string(b.size()) +
                                 " does not match matrix order " + std::to_string(t.order()));
      }
    } else {
      b = toeplitz::rhs_for_ones(t);
    }

    const std::string profile_path = cli.get("profile", "");
    const std::string trace_path = cli.get("trace", "");
    const std::string ledger_path = cli.get("ledger", "");
    // --prof / BST_PROF: hardware-truth profiling (util/prof).  It rides
    // the tracer's spans, so it implies the observed path even without
    // --profile (artifacts still get written; the report just isn't).
    util::ProfOptions popt = util::ProfOptions::from_env();
    const bool prof = cli.has("prof") || popt.armed_by_env;
    const bool observe =
        !profile_path.empty() || !trace_path.empty() || !ledger_path.empty() || prof;
    if (observe) {
      util::Tracer::reset();
      util::ThreadPool::global().reset_worker_stats();
      util::Tracer::enable();
      if (!trace_path.empty()) util::FlightRecorder::enable();
      if (prof) {
        popt.out_prefix = cli.get("prof-out", popt.out_prefix);
        util::Prof::arm(popt);
      }
    }

    if (simulate) {
      return run_simnet(cli, t, b, matrix_label, profile_path, trace_path, ledger_path,
                        has_cal ? &cal_json : nullptr);
    }

    core::SolveOptions opt;
    opt.spd.block_size = cli.get_int("ms", 0);
    opt.indefinite.block_size = opt.spd.block_size;
    opt.spd.rep = opt.indefinite.rep = parse_rep(cli.get("rep", "vy2"));
    opt.spd.parallel = cli.has("parallel");
    opt.always_refine = cli.has("refine");
    // Crossover policy: BST_SOLVER / BST_SOLVER_MIN_N / BST_SOLVER_MAX_COND
    // from the environment, with --solver outranking the env kind.
    opt.policy = core::SolverPolicy::from_env();
    if (cli.has("solver")) {
      opt.policy.kind = core::parse_solver_kind(cli.get("solver", "auto"));
    }
    opt.pcg = core::PcgOptions::from_env();

    const double t0 = util::wall_seconds();
    core::SolveReport rep = core::toeplitz_solve(t, b, opt);
    const double dt = util::wall_seconds() - t0;

    // Stop sampling at solve end: the report below must carry final
    // sampler stats, and I/O time does not belong in the flamegraph.
    if (prof) {
      util::Prof::disarm();
      util::Prof::write_artifacts();
    }

    if (cli.has("out")) {
      toeplitz::write_vector_file(cli.get("out", ""), rep.x);
    } else {
      toeplitz::write_vector(std::cout, rep.x);
    }
    if (observe) {
      util::PerfReport report("bst_solve");
      report.param("matrix", matrix_label);
      report.param("n", static_cast<std::int64_t>(t.order()));
      report.param("ms", static_cast<std::int64_t>(
                             opt.spd.block_size ? opt.spd.block_size : t.block_size()));
      report.param("rep", cli.get("rep", "vy2"));
      report.param("path", core::to_string(rep.path));
      report.param("solver", core::to_string(opt.policy.kind));
      report.param("solver_path", rep.solver_path);
      report.param("policy_reason", rep.policy_reason);
      report.metric("time_s", dt);
      report.metric("factor_flops", static_cast<double>(rep.factor_flops));
      report.metric("refinement_steps", rep.refinement_steps);
      report.metric("interchanges", rep.interchanges);
      report.metric("perturbations", static_cast<double>(rep.perturbations));
      report.metric("pcg_iterations", rep.pcg_iterations);
      if (rep.condest >= 0) report.metric("condest", rep.condest);
      // Residual + normwise backward error ||b - Tx|| / (||T||_F ||x|| + ||b||):
      // the accuracy column the attainment section carries next to the
      // efficiency columns (speed gains are only worth reporting at
      // unchanged backward error).
      {
        std::vector<double> resid;
        toeplitz::MatVec op(t);
        op.residual(b, rep.x, resid);
        const double rnorm = la::norm2(resid);
        report.metric("residual", rnorm);
        const double denom = toeplitz_frobenius(t) * la::norm2(rep.x) + la::norm2(b);
        if (denom > 0) report.metric("backward_error", rnorm / denom);
      }
      for (const util::WorkerStats& w : util::ThreadPool::global().worker_stats()) {
        report.add_thread(w.busy_seconds, w.idle_seconds, w.chunks);
      }
      // Join the traced counters with the calibrated ceilings and the
      // eq. 25-32 flop models (SPD path only: the indefinite extension's
      // extra pivoting work is not modeled).
      std::vector<util::PhaseModel> models;
      const la::index_t ms_eff = opt.spd.block_size ? opt.spd.block_size : t.block_size();
      if (rep.path == core::SolvePath::Spd) {
        models = core::schur_phase_models(opt.spd.rep, t.order(), ms_eff);
      } else if (rep.solver_path == "pcg") {
        // A converged PCG run: the iteration count pins the matvec /
        // preconditioner apply counts, so the models are exact.
        models = core::pcg_phase_models(t.block_size(), t.num_blocks(), rep.pcg_iterations);
      }
      const util::Json doc = report.build();
      report.set_attainment(
          util::attainment_section(doc, has_cal ? &cal_json : nullptr, models));
      finish_observability(report, profile_path, trace_path, ledger_path);
    }
    if (cli.has("report")) {
      std::fprintf(stderr,
                   "bst_solve: n=%td path=%s solver=%s (%s) time=%.3fms flops=%llu "
                   "interchanges=%d perturbations=%zu refine_steps=%d pcg_iters=%d "
                   "residual=%s%.3e\n",
                   t.order(), core::to_string(rep.path), rep.solver_path.c_str(),
                   rep.policy_reason.c_str(), dt * 1e3,
                   static_cast<unsigned long long>(rep.factor_flops), rep.interchanges,
                   rep.perturbations, rep.refinement_steps, rep.pcg_iterations,
                   rep.final_residual < 0 ? "(not computed) " : "",
                   rep.final_residual < 0 ? 0.0 : rep.final_residual);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_solve: error: %s\n", e.what());
    return 1;
  }
}
