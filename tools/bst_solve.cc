// bst_solve: command line solver for symmetric (block) Toeplitz systems.
//
//   bst_solve --matrix=T.txt [--rhs=b.txt] [--out=x.txt] [--ms=K]
//             [--rep=vy2|vy1|yty|u|seq] [--refine] [--report]
//             [--profile=out.json] [--trace=out.json]
//
// Reads the matrix (and optionally the right-hand side; defaults to
// T * ones so the expected solution is all-ones), solves with the
// automatic SPD/indefinite dispatch of core::toeplitz_solve, and writes
// the solution.  --report prints a one-line summary including the path
// taken, perturbation/interchange counts and the residual.  --profile
// enables the structured tracer and writes a schema-stamped JSON perf
// report (per-phase time/flop/byte breakdown, per-step diagnostics,
// latency histograms, watchdog warnings, thread utilization).  --trace
// additionally arms the flight recorder and writes the run's event
// timeline as a chrome://tracing / Perfetto JSON file (see
// docs/OBSERVABILITY.md for both formats).
#include <cstdio>
#include <iostream>

#include "bst.h"

using namespace bst;

namespace {

core::Representation parse_rep(const std::string& s) {
  if (s == "vy1") return core::Representation::VY1;
  if (s == "vy2") return core::Representation::VY2;
  if (s == "yty") return core::Representation::YTY;
  if (s == "u") return core::Representation::AccumulatedU;
  if (s == "seq") return core::Representation::Sequential;
  throw std::runtime_error("unknown --rep '" + s + "' (vy1|vy2|yty|u|seq)");
}

}  // namespace

int main(int argc, char** argv) {
  util::enable_flush_to_zero();
  util::Cli cli(argc, argv);
  try {
    const std::string matrix_path = cli.get("matrix", "");
    if (matrix_path.empty()) {
      std::fprintf(stderr,
                   "usage: bst_solve --matrix=T.txt [--rhs=b.txt] [--out=x.txt] "
                   "[--ms=K] [--rep=vy2] [--refine] [--report] "
                   "[--profile=out.json] [--trace=out.json]\n");
      return 2;
    }
    toeplitz::BlockToeplitz t = toeplitz::read_block_toeplitz_file(matrix_path);

    std::vector<double> b;
    if (cli.has("rhs")) {
      b = toeplitz::read_vector_file(cli.get("rhs", ""));
      if (static_cast<la::index_t>(b.size()) != t.order()) {
        throw std::runtime_error("rhs length " + std::to_string(b.size()) +
                                 " does not match matrix order " + std::to_string(t.order()));
      }
    } else {
      b = toeplitz::rhs_for_ones(t);
    }

    core::SolveOptions opt;
    opt.spd.block_size = cli.get_int("ms", 0);
    opt.indefinite.block_size = opt.spd.block_size;
    opt.spd.rep = opt.indefinite.rep = parse_rep(cli.get("rep", "vy2"));
    opt.always_refine = cli.has("refine");

    const std::string profile_path = cli.get("profile", "");
    const std::string trace_path = cli.get("trace", "");
    if (!profile_path.empty() || !trace_path.empty()) {
      util::Tracer::reset();
      util::ThreadPool::global().reset_worker_stats();
      util::Tracer::enable();
      if (!trace_path.empty()) util::FlightRecorder::enable();
    }

    const double t0 = util::wall_seconds();
    core::SolveReport rep = core::toeplitz_solve(t, b, opt);
    const double dt = util::wall_seconds() - t0;

    if (cli.has("out")) {
      toeplitz::write_vector_file(cli.get("out", ""), rep.x);
    } else {
      toeplitz::write_vector(std::cout, rep.x);
    }
    if (!trace_path.empty()) {
      util::FlightRecorder::disable();
      util::FlightRecorder::write_chrome_trace(trace_path);
    }
    if (!profile_path.empty() || !trace_path.empty()) util::Tracer::disable();
    if (!profile_path.empty()) {
      util::PerfReport report("bst_solve");
      report.param("matrix", matrix_path);
      report.param("n", static_cast<std::int64_t>(t.order()));
      report.param("ms", static_cast<std::int64_t>(
                             opt.spd.block_size ? opt.spd.block_size : t.block_size()));
      report.param("rep", cli.get("rep", "vy2"));
      report.param("path", core::to_string(rep.path));
      report.metric("time_s", dt);
      report.metric("factor_flops", static_cast<double>(rep.factor_flops));
      if (rep.final_residual >= 0) report.metric("residual", rep.final_residual);
      report.metric("refinement_steps", rep.refinement_steps);
      report.metric("interchanges", rep.interchanges);
      report.metric("perturbations", static_cast<double>(rep.perturbations));
      for (const util::WorkerStats& w : util::ThreadPool::global().worker_stats()) {
        report.add_thread(w.busy_seconds, w.idle_seconds, w.chunks);
      }
      report.write_file(profile_path);
    }
    if (cli.has("report")) {
      std::fprintf(stderr,
                   "bst_solve: n=%td path=%s time=%.3fms flops=%llu interchanges=%d "
                   "perturbations=%zu refine_steps=%d residual=%s%.3e\n",
                   t.order(), core::to_string(rep.path), dt * 1e3,
                   static_cast<unsigned long long>(rep.factor_flops), rep.interchanges,
                   rep.perturbations, rep.refinement_steps,
                   rep.final_residual < 0 ? "(not computed) " : "",
                   rep.final_residual < 0 ? 0.0 : rep.final_residual);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bst_solve: error: %s\n", e.what());
    return 1;
  }
}
