// Distributed block Schur factorization on the simulated machine
// (paper section 7.1): the generator's block columns are laid out over a
// linear array of NP PEs in one of three schemes --
//
//   V1: block-cyclic, one block per PE per round,
//   V2: groups of `group` adjacent blocks per PE (less shift traffic,
//       less parallelism),
//   V3: each block split across `spread` adjacent PEs (more parallelism,
//       `spread` times more broadcasts)
//
// -- and each Schur step runs the compute/communicate phases of section 6.1
// with explicit barrier synchronization:
//   phase 3: shift the upper generator row one block to the right,
//   phase 1: the pivot owner builds the block reflector,
//   broadcast it, phase 2: every PE updates its owned columns, barrier.
//
// For V1/V2 the factorization *really runs* on per-PE storage (block
// columns move between PE stores during the shift), so the distributed
// result can be bit-compared with the sequential one; V3 is cost-model
// only (pass want_factor = false).
#pragma once

#include <optional>
#include <vector>

#include "core/block_reflector.h"
#include "simnet/machine.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::simnet {

using core::index_t;
using core::Representation;

/// Generator layout over the linear PE array.
enum class Layout { V1, V2, V3 };

const char* to_string(Layout l);

/// Options for a distributed factorization run.
struct DistOptions {
  Layout layout = Layout::V1;
  int np = 16;
  index_t group = 1;       // V2: adjacent blocks per PE ("b" in the paper)
  index_t spread = 1;      // V3: PEs per block ("1/b" in the paper)
  Representation rep = Representation::VY2;
  MachineParams machine = MachineParams::t3d();
  index_t block_size = 0;  // m_s override (0 = structural)
};

/// Result: virtual times plus (optionally) the actual factor.
struct DistResult {
  double sim_seconds = 0.0;
  TimeBreakdown breakdown;
  std::vector<PeCommStats> comm;  // per-PE send/recv volume (paper sec. 7.1)
  index_t steps = 0;
  std::optional<la::Mat> r;  // the n x n factor when requested
  /// Per-PE span capture (empty unless the Tracer was enabled); feed to
  /// util::analyze_schedule for the comm matrix / critical path sections.
  util::ParSchedule schedule;
};

/// Runs the distributed factorization.  With want_factor the numerical
/// factorization is actually carried out on distributed per-PE storage
/// (V1/V2 only; throws std::invalid_argument for V3); without it, only the
/// cost model runs (all layouts, any size).
DistResult dist_schur_factor(const toeplitz::BlockToeplitz& t, const DistOptions& opt,
                             bool want_factor);

/// Cost-model-only convenience for size sweeps: a synthetic SPD spec of the
/// given dimensions is assumed (no numerics executed).
DistResult dist_schur_model(index_t m, index_t p, const DistOptions& opt);

/// Bytes needed to communicate one step's block reflector in the given
/// representation (the YTY form's storage advantage, paper section 6.5).
double representation_bytes(Representation rep, index_t m);

}  // namespace bst::simnet
