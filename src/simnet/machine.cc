#include "simnet/machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/metrics.h"

namespace bst::simnet {
namespace {

// Same histogram as the threaded runtime's Comm::send, so both backends'
// message-size distributions land in one "simnet_msg_bytes" report entry.
util::HistId msg_hist() {
  static const util::HistId id = util::Metrics::histogram("simnet_msg_bytes");
  return id;
}

void record_msg_bytes(double bytes) {
  if (!util::Tracer::enabled() || bytes < 0.0) return;
  util::Metrics::record(msg_hist(), static_cast<std::uint64_t>(bytes));
}

}  // namespace

Machine::Machine(int np, MachineParams params) : params_(params) {
  assert(np >= 1);
  clock_.assign(static_cast<std::size_t>(np), 0.0);
  comm_.assign(static_cast<std::size_t>(np), PeCommStats{});
  // Capture per-PE spans whenever observability is armed; the schedule is a
  // few hundred bytes per Schur step, negligible next to the model itself.
  capture_ = util::Tracer::enabled();
  sched_.np = np;
}

void Machine::rec(int pe, util::SpanKind kind, double t0, double t1, double bytes, int peer) {
  if (!capture_) return;
  sched_.spans.push_back(
      {pe, peer, util::Tracer::current_step(), kind, t0, t1, bytes});
}

int Machine::tree_depth() const {
  const int n = np();
  int d = 0;
  while ((1 << d) < n) ++d;
  return d;
}

void Machine::compute(int pe, double flops) {
  const double dt = flops / params_.flop_rate;
  double& c = clock_[static_cast<std::size_t>(pe)];
  rec(pe, util::SpanKind::kCompute, c, c + dt);
  c += dt;
  acct_.compute += dt;
}

void Machine::put(int src, int dst, double bytes) { put_many(src, dst, 1.0, bytes); }

void Machine::put_many(int src, int dst, double messages, double bytes) {
  if (src == dst || messages <= 0.0) return;
  const double dt = messages * params_.latency + messages * bytes / params_.bandwidth;
  double& s = clock_[static_cast<std::size_t>(src)];
  double& d = clock_[static_cast<std::size_t>(dst)];
  // Sender is busy for the injections; receiver synchronizes with arrival.
  rec(src, util::SpanKind::kSend, s, s + dt, messages * bytes, dst);
  s += dt;
  // The receive span may be zero-length (message arrived before the
  // receiver would have waited); it still carries the bytes for the
  // communication matrix.
  rec(dst, util::SpanKind::kRecv, d, std::max(d, s), messages * bytes, src);
  d = std::max(d, s);
  acct_.shift += dt;
  record_msg_bytes(bytes);
  comm_[static_cast<std::size_t>(src)].bytes_sent += messages * bytes;
  comm_[static_cast<std::size_t>(src)].messages += messages;
  comm_[static_cast<std::size_t>(dst)].bytes_recv += messages * bytes;
}

void Machine::exchange(const std::vector<ShiftMsg>& msgs) {
  const std::vector<double> snap = clock_;
  for (const ShiftMsg& m : msgs) {
    if (m.src == m.dst || m.messages <= 0.0) continue;
    const double dt = m.messages * (params_.latency + m.bytes / params_.bandwidth);
    record_msg_bytes(m.bytes);
    const double arrive = snap[static_cast<std::size_t>(m.src)] + dt;
    double& sc = clock_[static_cast<std::size_t>(m.src)];
    double& dc = clock_[static_cast<std::size_t>(m.dst)];
    rec(m.src, util::SpanKind::kSend, snap[static_cast<std::size_t>(m.src)], arrive,
        m.messages * m.bytes, m.dst);
    rec(m.dst, util::SpanKind::kRecv, dc, std::max(dc, arrive), m.messages * m.bytes, m.src);
    sc = std::max(sc, arrive);
    dc = std::max(dc, arrive);
    acct_.shift += dt;
    comm_[static_cast<std::size_t>(m.src)].bytes_sent += m.messages * m.bytes;
    comm_[static_cast<std::size_t>(m.src)].messages += m.messages;
    comm_[static_cast<std::size_t>(m.dst)].bytes_recv += m.messages * m.bytes;
  }
}

void Machine::broadcast(int root, double bytes) {
  const int depth = tree_depth();
  const double per_hop = params_.latency + bytes / params_.bandwidth;
  const double dt = static_cast<double>(depth) * per_hop;
  const double t0 = clock_[static_cast<std::size_t>(root)] + dt;
  rec(root, util::SpanKind::kBroadcast, clock_[static_cast<std::size_t>(root)], t0, bytes);
  for (int pe = 0; pe < np(); ++pe) {
    double& c = clock_[static_cast<std::size_t>(pe)];
    if (pe != root) {
      rec(pe, util::SpanKind::kBroadcastRecv, c, std::max(c, t0), bytes, root);
    }
    c = std::max(c, t0);
  }
  acct_.broadcast += dt;
  record_msg_bytes(bytes);
  comm_[static_cast<std::size_t>(root)].bytes_sent += bytes;
  comm_[static_cast<std::size_t>(root)].messages += 1.0;
  for (int pe = 0; pe < np(); ++pe) {
    if (pe != root) comm_[static_cast<std::size_t>(pe)].bytes_recv += bytes;
  }
}

void Machine::comm_delay(int pe, double seconds) {
  double& c = clock_[static_cast<std::size_t>(pe)];
  rec(pe, util::SpanKind::kBroadcast, c, c + seconds);
  c += seconds;
  acct_.broadcast += seconds;
}

void Machine::barrier() {
  const double cost = static_cast<double>(tree_depth()) * params_.barrier_hop;
  const double tmax = *std::max_element(clock_.begin(), clock_.end());
  for (int pe = 0; pe < np(); ++pe) {
    double& c = clock_[static_cast<std::size_t>(pe)];
    if (tmax > c) rec(pe, util::SpanKind::kIdle, c, tmax);
    rec(pe, util::SpanKind::kBarrier, tmax, tmax + cost);
    acct_.barrier += (tmax - c);  // idle time absorbed at the barrier
    c = tmax + cost;
  }
  acct_.barrier += cost * static_cast<double>(np());
}

double Machine::time() const { return *std::max_element(clock_.begin(), clock_.end()); }

}  // namespace bst::simnet
