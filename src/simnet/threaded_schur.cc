#include "simnet/threaded_schur.h"

#include <map>
#include <stdexcept>
#include <utility>

#include "core/generator.h"
#include "core/schur.h"
#include "simnet/runtime.h"
#include "util/trace.h"

namespace bst::simnet {
namespace {

using core::BlockReflector;
using core::index_t;
using core::Reflector;
using la::Mat;

// Build/apply share names with the sequential driver; the message-passing
// phases get their own buckets.  Spans run inside the SPMD threads, so the
// accumulated seconds are summed across PEs (divide by np for per-PE time).
const util::PhaseId kBuildPhase = util::Tracer::phase("reflector_build");
const util::PhaseId kApplyPhase = util::Tracer::phase("reflector_apply");
const util::PhaseId kShiftPhase = util::Tracer::phase("dist_shift");
const util::PhaseId kGatherPhase = util::Tracer::phase("dist_gather");
const util::PhaseId kBarrierPhase = util::Tracer::phase("dist_barrier");

// Message tags: disjoint ranges per protocol phase.
constexpr int kTagShiftBase = 1'000'000;  // + logical column
constexpr int kTagGatherBase = 2'000'000; // + logical column

// Wire format of one reflector: [pivot, beta, sigma, x...].
void pack_reflectors(const std::vector<Reflector>& rs, std::vector<double>& out) {
  out.clear();
  for (const Reflector& r : rs) {
    out.push_back(static_cast<double>(r.pivot));
    out.push_back(r.beta);
    out.push_back(r.sigma);
    out.insert(out.end(), r.x.begin(), r.x.end());
  }
}

std::vector<Reflector> unpack_reflectors(const std::vector<double>& in, index_t m) {
  const std::size_t stride = 3 + static_cast<std::size_t>(2 * m);
  std::vector<Reflector> rs;
  rs.reserve(in.size() / stride);
  for (std::size_t off = 0; off + stride <= in.size(); off += stride) {
    Reflector r;
    r.pivot = static_cast<index_t>(in[off]);
    r.beta = in[off + 1];
    r.sigma = in[off + 2];
    r.x.assign(in.begin() + static_cast<std::ptrdiff_t>(off + 3),
               in.begin() + static_cast<std::ptrdiff_t>(off + stride));
    rs.push_back(std::move(r));
  }
  return rs;
}

std::vector<double> flatten(la::CView v) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(v.rows() * v.cols()));
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i) out.push_back(v(i, j));
  return out;
}

void unflatten(const std::vector<double>& in, la::View v) {
  std::size_t idx = 0;
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i) v(i, j) = in[idx++];
}

}  // namespace

namespace {
la::Mat threaded_schur_v3(const toeplitz::BlockToeplitz& spec, const DistOptions& opt);
}  // namespace

la::Mat threaded_schur_factor(const toeplitz::BlockToeplitz& t, const DistOptions& opt) {
  if (opt.np < 1) throw std::invalid_argument("threaded_schur: np must be >= 1");
  const toeplitz::BlockToeplitz spec =
      (opt.block_size == 0 || opt.block_size == t.block_size())
          ? t
          : t.with_block_size(opt.block_size);
  if (opt.layout == Layout::V3) return threaded_schur_v3(spec, opt);
  const index_t m = spec.block_size(), p = spec.num_blocks(), n = spec.order();
  const index_t group = (opt.layout == Layout::V2) ? opt.group : 1;
  auto owner = [&](index_t j) { return static_cast<int>((j / group) % opt.np); };

  Mat r_out(n, n);

  run_spmd(opt.np, [&](Comm& comm) {
    const int me = comm.rank();
    // Each PE slices its own columns out of the (deterministically
    // reproducible) generator; only these are kept.
    core::Generator g = core::make_generator_spd(spec);
    struct Column {
      Mat a, b;
    };
    std::map<index_t, Column> mine;
    for (index_t j = 0; j < p; ++j) {
      if (owner(j) != me) continue;
      Column c{Mat(m, m), Mat(m, m)};
      la::copy(g.a_block(j), c.a.view());
      la::copy(g.b_block(j), c.b.view());
      mine.emplace(j, std::move(c));
    }
    const core::Signature sig = g.sig;
    g = core::Generator{};  // drop the full generator: PEs own only slices

    // Gather of R block row `step` on PE 0.
    auto gather_row = [&](index_t step) {
      util::TraceSpan span(kGatherPhase);
      if (me == 0) {
        for (index_t j = step; j < p; ++j) {
          la::View dst = r_out.block(step * m, j * m, m, m);
          if (owner(j) == 0) {
            la::copy(mine.at(j).a.view(), dst);
          } else {
            unflatten(comm.recv(owner(j), kTagGatherBase + static_cast<int>(j)), dst);
          }
        }
      } else {
        for (auto& [j, col] : mine) {
          if (j >= step) {
            comm.send(0, kTagGatherBase + static_cast<int>(j), flatten(col.a.view()));
          }
        }
      }
    };

    gather_row(0);
    for (index_t i = 1; i < p; ++i) {
      util::Tracer::set_step(i);
      // ---- phase 3: shift A_{j-1} -> A_j --------------------------------
      // Sends first (pre-shift values), then local right-to-left moves,
      // then receives.
      {
        util::TraceSpan span(kShiftPhase);
        for (index_t j = i; j < p; ++j) {
          if (owner(j - 1) == me && owner(j) != me) {
            comm.send(owner(j), kTagShiftBase + static_cast<int>(j),
                      flatten(mine.at(j - 1).a.view()));
          }
        }
        for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
          const index_t j = it->first;
          if (j >= i && owner(j - 1) == me) {
            la::copy(mine.at(j - 1).a.view(), it->second.a.view());
          }
        }
        for (auto& [j, col] : mine) {
          if (j >= i && owner(j - 1) != me) {
            unflatten(comm.recv(owner(j - 1), kTagShiftBase + static_cast<int>(j)),
                      col.a.view());
          }
        }
      }

      // ---- phase 1: pivot owner builds, broadcasts the x-vectors --------
      std::vector<double> wire;
      std::optional<core::StepBreakdown> breakdown;
      if (owner(i) == me) {
        util::TraceSpan span(kBuildPhase);
        Column& pivot = mine.at(i);
        BlockReflector bref(opt.rep, m, sig);
        breakdown = bref.build(pivot.a.view(), pivot.b.view(), 1e-13);
        if (!breakdown) pack_reflectors(bref.reflectors(), wire);
        // An empty wire signals breakdown so every PE throws (instead of
        // deadlocking in recv while the owner unwinds).
      }
      comm.broadcast(owner(i), wire);
      if (wire.empty()) {
        throw core::NotPositiveDefinite(i, breakdown ? breakdown->column : 0,
                                        breakdown ? breakdown->hnorm : 0.0);
      }

      // ---- phase 2: everyone updates its own trailing columns -----------
      {
        util::TraceSpan span(kApplyPhase);
        BlockReflector bref = BlockReflector::from_reflectors(
            opt.rep, m, sig, unpack_reflectors(wire, m));
        for (auto& [j, col] : mine) {
          if (j > i) bref.apply(col.a.view(), col.b.view());
        }
      }

      gather_row(i);
      {
        util::TraceSpan span(kBarrierPhase);
        comm.barrier();
      }
    }
  });
  return r_out;
}

namespace {

// V3: every block column is split column-wise over `spread` adjacent PEs
// (paper section 7.1.3).  Each PE owns an m x ws slice of the A and B
// parts of the blocks assigned to its group; the pivot block's reflectors
// are built column-by-column by the slice owner and fanned out to all PEs,
// which update their own slices in reflector order.
la::Mat threaded_schur_v3(const toeplitz::BlockToeplitz& spec, const DistOptions& opt) {
  const index_t m = spec.block_size(), p = spec.num_blocks(), n = spec.order();
  const index_t s = opt.spread;
  if (s < 1 || opt.np % static_cast<int>(s) != 0) {
    throw std::invalid_argument("threaded_schur: V3 spread must divide np");
  }
  if (m % s != 0) {
    throw std::invalid_argument("threaded_schur: V3 requires spread | block size");
  }
  const index_t ws = m / s;                      // slice width
  const index_t groups = static_cast<index_t>(opt.np) / s;
  auto group_of = [&](index_t j) { return static_cast<int>(j % groups); };
  auto slice_owner = [&](index_t j, index_t q) {
    return group_of(j) * static_cast<int>(s) + static_cast<int>(q);
  };

  Mat r_out(n, n);

  run_spmd(opt.np, [&](Comm& comm) {
    const int me = comm.rank();
    const index_t myq = static_cast<index_t>(me) % s;  // my slice index
    const int mygroup = me / static_cast<int>(s);
    core::Generator g = core::make_generator_spd(spec);
    const core::Signature sig = g.sig;

    struct Slice {
      Mat a, b;  // m x ws each
    };
    std::map<index_t, Slice> mine;  // by logical block column
    for (index_t j = 0; j < p; ++j) {
      if (group_of(j) != mygroup) continue;
      Slice sl{Mat(m, ws), Mat(m, ws)};
      la::copy(g.a.block(0, j * m + myq * ws, m, ws), sl.a.view());
      la::copy(g.b.block(0, j * m + myq * ws, m, ws), sl.b.view());
      mine.emplace(j, std::move(sl));
    }
    g = core::Generator{};

    auto gather_row = [&](index_t step) {
      util::TraceSpan span(kGatherPhase);
      if (me == 0) {
        for (index_t j = step; j < p; ++j) {
          for (index_t q = 0; q < s; ++q) {
            la::View dst = r_out.block(step * m, j * m + q * ws, m, ws);
            if (slice_owner(j, q) == 0) {
              la::copy(mine.at(j).a.view(), dst);
            } else {
              unflatten(comm.recv(slice_owner(j, q),
                                  kTagGatherBase + static_cast<int>(j * s + q)),
                        dst);
            }
          }
        }
      } else {
        for (auto& [j, sl] : mine) {
          if (j >= step) {
            comm.send(0, kTagGatherBase + static_cast<int>(j * s + myq),
                      flatten(sl.a.view()));
          }
        }
      }
    };

    gather_row(0);
    for (index_t i = 1; i < p; ++i) {
      util::Tracer::set_step(i);
      // ---- shift A_{j-1} -> A_j: same slice index, next group ----------
      {
        util::TraceSpan span(kShiftPhase);
        for (index_t j = i; j < p; ++j) {
          if (group_of(j - 1) == mygroup && group_of(j) != mygroup) {
            comm.send(slice_owner(j, myq), kTagShiftBase + static_cast<int>(j * s + myq),
                      flatten(mine.at(j - 1).a.view()));
          }
        }
        for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
          const index_t j = it->first;
          if (j >= i && group_of(j - 1) == mygroup) {
            la::copy(mine.at(j - 1).a.view(), it->second.a.view());
          }
        }
        for (auto& [j, sl] : mine) {
          if (j >= i && group_of(j - 1) != mygroup) {
            unflatten(comm.recv(slice_owner(j - 1, myq),
                                kTagShiftBase + static_cast<int>(j * s + myq)),
                      sl.a.view());
          }
        }
      }

      // ---- build: pivot columns in order; each owner fans its x out -----
      // V3 interleaves single-reflector builds with pivot-slice updates, so
      // the whole per-column loop is charged to the build phase.
      std::vector<Reflector> reflectors;
      reflectors.reserve(static_cast<std::size_t>(m));
      const bool in_pivot_group = (group_of(i) == mygroup);
      {
      util::TraceSpan build_span(kBuildPhase);  // closes before the trailing update
      for (index_t k = 0; k < m; ++k) {
        const index_t q = k / ws;        // slice holding pivot column k
        const index_t kl = k - q * ws;   // column within the slice
        std::vector<double> wire;
        if (slice_owner(i, q) == me) {
          // Build from my (already updated) pivot slice column kl.
          Slice& piv = mine.at(i);
          std::vector<double> u(static_cast<std::size_t>(2 * m), 0.0);
          u[static_cast<std::size_t>(k)] = piv.a(k, kl);
          for (index_t rr = 0; rr < m; ++rr)
            u[static_cast<std::size_t>(m + rr)] = piv.b(rr, kl);
          auto refl = core::make_reflector(u, sig, k, 1e-13);
          if (!refl) {
            comm.broadcast(me, wire);  // empty = breakdown
            throw core::NotPositiveDefinite(i, k, core::hyperbolic_norm(u, sig));
          }
          pack_reflectors({*refl}, wire);
          comm.broadcast(me, wire);
        } else {
          comm.broadcast(slice_owner(i, q), wire);
          if (wire.empty()) throw core::NotPositiveDefinite(i, k, 0.0);
        }
        Reflector r = unpack_reflectors(wire, m).at(0);
        // Update my pivot slice columns with this reflector (in order).
        if (in_pivot_group) {
          Slice& piv = mine.at(i);
          core::BlockReflector seq = core::BlockReflector::from_reflectors(
              core::Representation::Sequential, m, sig, {r});
          seq.apply(piv.a.view(), piv.b.view());
          // Exact elimination of the pivot column (kill roundoff).
          if (slice_owner(i, q) == me) {
            piv.a(k, kl) = -r.sigma;
            for (index_t rr = 0; rr < m; ++rr) piv.b(rr, kl) = 0.0;
          }
        }
        reflectors.push_back(std::move(r));
      }
      }

      // ---- trailing update on every slice of blocks j > i ----------------
      {
        util::TraceSpan span(kApplyPhase);
        BlockReflector bref =
            BlockReflector::from_reflectors(opt.rep, m, sig, reflectors);
        for (auto& [j, sl] : mine) {
          if (j > i) bref.apply(sl.a.view(), sl.b.view());
        }
      }

      gather_row(i);
      {
        util::TraceSpan span(kBarrierPhase);
        comm.barrier();
      }
    }
  });
  return r_out;
}

}  // namespace

}  // namespace bst::simnet
