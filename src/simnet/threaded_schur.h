// Distributed block Schur factorization executed on the threads-based
// message-passing runtime (runtime.h): a real SPMD program in which every
// PE owns only its block columns of the generator, the shift moves blocks
// between PEs by point-to-point messages, the pivot owner builds the block
// reflector and broadcasts its x-vectors, and every PE updates its own
// columns -- the paper's section 7.1 program, actually running
// concurrently.
//
// The cost-model path (dist_schur.h) answers "how long would this take on
// a T3D"; this path answers "is the message-passing formulation correct".
// Both produce factors that are bit-compared against the sequential
// algorithm in the tests.
#pragma once

#include "la/matrix.h"
#include "simnet/dist_schur.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::simnet {

/// Runs the SPMD factorization on opt.np PE threads (layouts V1/V2).
/// Returns the assembled upper triangular factor (gathered on PE 0).
/// Throws std::invalid_argument for V3 (cost-model only) and propagates
/// NotPositiveDefinite from the pivot owner.
la::Mat threaded_schur_factor(const toeplitz::BlockToeplitz& t, const DistOptions& opt);

}  // namespace bst::simnet
