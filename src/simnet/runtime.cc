#include "simnet/runtime.h"

#include <exception>
#include <string>
#include <thread>

#include "util/flight_recorder.h"
#include "util/metrics.h"

namespace bst::simnet {
namespace {

// Payload sizes of SPMD messages (shared with the cost-model backend, which
// records its simulated sizes to the same histogram).
util::HistId msg_hist() {
  static const util::HistId id = util::Metrics::histogram("simnet_msg_bytes");
  return id;
}

}  // namespace

/// Shared state of one SPMD run.
class SpmdContext {
 public:
  explicit SpmdContext(int np) : np_(np), boxes_(static_cast<std::size_t>(np)) {}

  [[nodiscard]] int size() const noexcept { return np_; }

  void send(int src, int dst, int tag, std::vector<double> data) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
    {
      std::lock_guard lock(box.mu);
      box.queues[{src, tag}].push_back(std::move(data));
    }
    box.cv.notify_all();
  }

  std::vector<double> recv(int self, int src, int tag) {
    Mailbox& box = boxes_[static_cast<std::size_t>(self)];
    std::unique_lock lock(box.mu);
    auto& queue = box.queues[{src, tag}];
    box.cv.wait(lock, [&] { return !queue.empty(); });
    std::vector<double> data = std::move(queue.front());
    queue.pop_front();
    return data;
  }

  void barrier() {
    std::unique_lock lock(barrier_mu_);
    const std::size_t gen = barrier_gen_;
    if (++barrier_count_ == np_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen; });
    }
  }

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<std::vector<double>>> queues;
  };

  int np_;
  std::vector<Mailbox> boxes_;

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::size_t barrier_gen_ = 0;
};

int Comm::size() const noexcept { return ctx_->size(); }

namespace {

// Wall-clock spans for the threaded backend's messaging, so a --trace of an
// SPMD run shows where each PE thread blocks (mirrors the cost model's
// shift_send/shift_recv virtual spans).
util::PhaseId send_phase() {
  static const util::PhaseId id = util::Tracer::phase("msg_send");
  return id;
}
util::PhaseId recv_phase() {
  static const util::PhaseId id = util::Tracer::phase("msg_recv");
  return id;
}

}  // namespace

void Comm::send(int dst, int tag, std::vector<double> data) {
  if (util::Tracer::enabled()) {
    util::Metrics::record(msg_hist(), data.size() * sizeof(double));
  }
  util::TraceSpan span(send_phase());
  util::ByteCounter::charge(data.size() * sizeof(double));
  ctx_->send(rank_, dst, tag, std::move(data));
}

std::vector<double> Comm::recv(int src, int tag) {
  util::TraceSpan span(recv_phase());
  return ctx_->recv(rank_, src, tag);
}

void Comm::broadcast(int root, std::vector<double>& data) {
  // Naive rooted broadcast on a dedicated tag channel; correctness (not
  // performance) is this runtime's job -- timing lives in the cost model.
  constexpr int kBcastTag = -9001;
  if (rank_ == root) {
    for (int pe = 0; pe < size(); ++pe) {
      if (pe != root) ctx_->send(root, pe, kBcastTag, data);
    }
  } else {
    data = ctx_->recv(rank_, root, kBcastTag);
  }
}

void Comm::barrier() { ctx_->barrier(); }

void run_spmd(int np, const std::function<void(Comm&)>& body) {
  SpmdContext ctx(np);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (int pe = 0; pe < np; ++pe) {
    threads.emplace_back([&, pe] {
      Comm comm(&ctx, pe);
      if (util::FlightRecorder::enabled()) {
        util::FlightRecorder::label_thread("pe:" + std::to_string(pe));
      }
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace bst::simnet
