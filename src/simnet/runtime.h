// A small threads-based message-passing runtime (MPI-flavoured SPMD).
//
// The cost-model simulator (machine.h) predicts *time*; this runtime
// actually *executes* the distributed algorithm concurrently: every PE is
// a thread with its own storage, communicating only through explicit
// messages -- the same programming model as the paper's shmem code on the
// T3D.  Used by threaded_schur.{h,cc} and its tests to demonstrate that
// the distributed formulation is really message-driven, not a loop nest in
// disguise.
//
// Semantics:
//   * send/recv are point-to-point with a tag; matching is FIFO per
//     (source, tag) pair; recv blocks.
//   * broadcast is rooted (everyone must call it with the same root).
//   * barrier blocks until all PEs arrive (generation-counted, reusable).
//   * run_spmd launches NP threads, runs `body(comm)` on each, and joins;
//     the first uncaught exception is rethrown on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace bst::simnet {

class SpmdContext;

/// Per-PE communicator handle (value-semantics facade over the context).
class Comm {
 public:
  Comm(SpmdContext* ctx, int rank) : ctx_(ctx), rank_(rank) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Sends `data` to PE `dst` with a user tag (non-blocking, buffered).
  void send(int dst, int tag, std::vector<double> data);

  /// Receives the next message from `src` with `tag` (blocking, FIFO).
  std::vector<double> recv(int src, int tag);

  /// Rooted broadcast: on the root, `data` is sent; elsewhere it is
  /// replaced by the root's payload.
  void broadcast(int root, std::vector<double>& data);

  /// Blocks until every PE has arrived.
  void barrier();

 private:
  SpmdContext* ctx_;
  int rank_;
};

/// Runs body(comm) on `np` PE threads and joins them.
/// Rethrows the first exception thrown by any PE.
void run_spmd(int np, const std::function<void(Comm&)>& body);

}  // namespace bst::simnet
