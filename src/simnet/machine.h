// Deterministic cost-model simulator of a distributed-memory machine
// (the Cray T3D of the paper's section 7).
//
// Each PE has a virtual clock.  Computation advances one clock; messages
// synchronize the receiver's clock with the sender's plus a latency +
// volume/bandwidth cost; broadcasts and barriers use log2(NP) trees.  All
// times are virtual: runs are deterministic and independent of the host.
//
// The default parameters are the T3D's published figures (section 7.1.4):
// 150 MFLOPS peak DEC Alpha PEs (derated to a realistic sustained rate),
// 1 us shmem put latency, 300 MB/s neighbor links.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/par_analysis.h"

namespace bst::simnet {

/// Cost parameters of the simulated machine.
struct MachineParams {
  double flop_rate = 15e6;    // sustained flops/s per PE on the short
                              // BLAS1/2 operations of this algorithm
                              // (150 MFLOPS peak Alpha, ~10% sustained)
  double latency = 1e-6;      // seconds per message (shmem put)
  double bandwidth = 300e6;   // bytes/s per link
  double barrier_hop = 5e-6;  // per-tree-level cost of the software barrier
                              // + per-step loop orchestration overhead
  double cache_line_words = 4;  // T3D: 4-word direct-mapped cache lines

  /// Sustained-efficiency factor for generator updates with block size m:
  /// accesses with footprint below the cache line waste part of every line
  /// (the effect the paper uses to explain Fig. 9: the m = 4 update is
  /// "not twice" the m = 2 one).  Mild penalty, saturating at the line.
  [[nodiscard]] double block_efficiency(double m) const {
    const double l = cache_line_words;
    return (std::min(m, l) + l) / (2.0 * l);
  }

  /// The Cray T3D of the paper.
  static MachineParams t3d() { return MachineParams{}; }
};

/// Time accounting buckets (per experiment reporting).
struct TimeBreakdown {
  double compute = 0.0;
  double broadcast = 0.0;
  double shift = 0.0;
  double barrier = 0.0;
  [[nodiscard]] double total() const { return compute + broadcast + shift + barrier; }
};

/// Per-PE communication volume (the quantity the paper's V1/V2/V3 analysis
/// trades against parallelism; see docs/OBSERVABILITY.md "comm" section).
/// Broadcasts are attributed root->every other PE; interior tree forwarding
/// is not broken out.
struct PeCommStats {
  double bytes_sent = 0.0;
  double bytes_recv = 0.0;
  double messages = 0.0;  // messages injected by this PE
};

/// Virtual machine: NP processing elements with individual clocks.
class Machine {
 public:
  Machine(int np, MachineParams params);

  [[nodiscard]] int np() const noexcept { return static_cast<int>(clock_.size()); }
  [[nodiscard]] const MachineParams& params() const noexcept { return params_; }

  /// Advances `pe`'s clock by flops / flop_rate.
  void compute(int pe, double flops);

  /// Point-to-point message of `bytes` from src to dst.
  void put(int src, int dst, double bytes);

  /// `messages` back-to-back puts of `bytes` each (e.g. one shmem put per
  /// non-contiguous block during the generator shift): the sender pays the
  /// per-message latency `messages` times.
  void put_many(int src, int dst, double messages, double bytes);

  /// One concurrent exchange: every entry is sent simultaneously from a
  /// snapshot of the current clocks (one-sided puts do not chain), unlike
  /// consecutive put_many calls which would serialize around the ring.
  struct ShiftMsg {
    int src, dst;
    double messages, bytes;
  };
  void exchange(const std::vector<ShiftMsg>& msgs);

  /// Tree broadcast of `bytes` from root to all PEs.
  void broadcast(int root, double bytes);

  /// Advances `pe`'s clock by `seconds` of communication/synchronization
  /// time not covered by the other primitives (charged to the broadcast
  /// accounting bucket).
  void comm_delay(int pe, double seconds);

  /// Global barrier: all clocks advance to max + barrier cost.
  void barrier();

  /// Elapsed virtual time = max clock.
  [[nodiscard]] double time() const;

  /// Aggregate accounting (sums of per-PE charges by category; the
  /// `barrier` bucket holds the idle time absorbed at barriers).
  [[nodiscard]] const TimeBreakdown& breakdown() const noexcept { return acct_; }

  /// Per-PE bytes sent/received and messages injected.
  [[nodiscard]] const std::vector<PeCommStats>& comm_stats() const noexcept { return comm_; }

  /// Span capture for util::analyze_schedule / util::emit_schedule.  On by
  /// default while the Tracer is enabled at construction; every primitive
  /// then records one util::PeSpan per PE it touches (including zero-length
  /// receive spans, which carry bytes for the communication matrix).
  void set_capture(bool on) noexcept { capture_ = on; }
  [[nodiscard]] bool capturing() const noexcept { return capture_; }
  [[nodiscard]] const util::ParSchedule& schedule() const noexcept { return sched_; }
  [[nodiscard]] util::ParSchedule take_schedule() noexcept { return std::move(sched_); }

 private:
  [[nodiscard]] int tree_depth() const;
  void rec(int pe, util::SpanKind kind, double t0, double t1, double bytes = 0.0,
           int peer = -1);

  MachineParams params_;
  std::vector<double> clock_;
  TimeBreakdown acct_;
  std::vector<PeCommStats> comm_;
  bool capture_ = false;
  util::ParSchedule sched_;
};

}  // namespace bst::simnet
