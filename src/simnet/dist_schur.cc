#include "simnet/dist_schur.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/flop_model.h"
#include "core/generator.h"
#include "core/schur.h"
#include "la/blas.h"
#include "util/flight_recorder.h"
#include "util/par_analysis.h"
#include "util/trace.h"

namespace bst::simnet {
namespace {

// Same phase names as the shared-memory driver (core/schur.cc) so a report
// aggregates build/apply cost identically across backends.
const util::PhaseId kBuildPhase = util::Tracer::phase("reflector_build");
const util::PhaseId kApplyPhase = util::Tracer::phase("reflector_apply");

using core::BlockReflector;
using core::Generator;
using la::Mat;
using la::View;

// Number of integers j in [lo, hi) with j mod q == r (0 <= r < q).
index_t count_mod(index_t lo, index_t hi, index_t q, index_t r) {
  if (hi <= lo) return 0;
  auto upto = [q, r](index_t x) {  // count in [0, x]
    return (x >= r) ? (x - r) / q + 1 : 0;
  };
  return upto(hi - 1) - (lo > 0 ? upto(lo - 1) : 0);
}

// Static owner map: logical block column -> PE (V1/V2) or PE group (V3).
struct OwnerMap {
  Layout layout;
  int np;
  index_t group;   // V2 group size
  index_t spread;  // V3 spread

  [[nodiscard]] int owner(index_t j) const {
    switch (layout) {
      case Layout::V1: return static_cast<int>(j % np);
      case Layout::V2: return static_cast<int>((j / group) % np);
      case Layout::V3: {
        const index_t groups = np / spread;
        return static_cast<int>((j % groups) * spread);  // first PE of the group
      }
    }
    return 0;
  }

  /// Blocks in [lo, hi) owned by `pe` (V1/V2) or by pe's group (V3).
  [[nodiscard]] index_t owned_in_range(index_t lo, index_t hi, int pe) const {
    switch (layout) {
      case Layout::V1: return count_mod(lo, hi, np, pe);
      case Layout::V2: {
        const index_t period = static_cast<index_t>(np) * group;
        index_t c = 0;
        for (index_t r = static_cast<index_t>(pe) * group; r < (pe + 1) * group; ++r) {
          c += count_mod(lo, hi, period, r);
        }
        return c;
      }
      case Layout::V3: {
        const index_t groups = static_cast<index_t>(np) / spread;
        return count_mod(lo, hi, groups, static_cast<index_t>(pe) / spread);
      }
    }
    return 0;
  }

  /// Shift boundary crossings: blocks j in [lo, hi) owned by `pe` whose
  /// right neighbor j+1 lives on a different PE.
  [[nodiscard]] index_t crossings_in_range(index_t lo, index_t hi, int pe) const {
    switch (layout) {
      case Layout::V1: return count_mod(lo, hi, np, pe);
      case Layout::V2: {
        const index_t period = static_cast<index_t>(np) * group;
        return count_mod(lo, hi, period, (static_cast<index_t>(pe) + 1) * group - 1);
      }
      case Layout::V3:
        // every block crosses to the next group
        return owned_in_range(lo, hi, pe);
    }
    return 0;
  }
};

// Cost accounting for one Schur step (step index i, p block columns total),
// shared by the model-only and the real-data paths.
void charge_step(Machine& mach, const OwnerMap& map, const DistOptions& opt, index_t m,
                 index_t i, index_t p) {
  const double rep_bytes = representation_bytes(opt.rep, m);
  const double block_bytes = static_cast<double>(m * m) * 8.0;
  const int np = mach.np();

  // ---- phase 3: shift A_{j-1} -> A_j for j in [i, p) -------------------
  // Sources are columns [i-1, p-1); each PE aggregates its boundary
  // crossings into one message to the right neighbor (V1/V2) or to the
  // matching PE of the next group (V3: one message per slice PE).
  std::vector<Machine::ShiftMsg> shift;
  for (int pe = 0; pe < np; ++pe) {
    const index_t cross = map.crossings_in_range(i - 1, p - 1, pe);
    if (cross == 0) continue;
    if (map.layout == Layout::V3) {
      const index_t groups = static_cast<index_t>(np) / opt.spread;
      if (groups == 1) continue;  // single group: all moves are local
      if (pe % static_cast<int>(opt.spread) != 0) continue;  // charge once per group
      for (index_t s = 0; s < opt.spread; ++s) {
        const int src = pe + static_cast<int>(s);
        const int dst = ((pe + static_cast<int>(opt.spread)) % np + static_cast<int>(s)) % np;
        shift.push_back({src, dst, static_cast<double>(cross),
                         block_bytes / static_cast<double>(opt.spread)});
      }
    } else {
      // One shmem put per crossing block: the blocks are not contiguous in
      // the local store, so each costs the message latency (this is what
      // makes grouping pay off so sharply in Fig. 6).
      shift.push_back({pe, (pe + 1) % np, static_cast<double>(cross), block_bytes});
    }
  }
  mach.exchange(shift);  // all puts are concurrent one-sided operations

  // ---- phase 1: build the block reflector at the pivot owner -----------
  const double eff = opt.machine.block_efficiency(static_cast<double>(m));
  const double build_flops = core::blocking_flops(opt.rep, m, m) / eff;
  const int pivot_pe = map.owner(i);
  if (map.layout == Layout::V3) {
    // The build parallelizes over the group's column slices, at the price
    // of `spread` broadcasts per step (paper section 7.1.3) *and* one
    // intra-group exchange per pivot column: each scalar reflector's
    // x-vector pieces live on different PEs of the group and must be
    // combined before the slices can be updated.
    const int hops = [&] {
      int d = 0;
      while ((1 << d) < static_cast<int>(opt.spread)) ++d;
      return d;
    }();
    // Gather of the column's pieces serializes over the group (one message
    // from each of the `spread` PEs into the column owner), then a tree
    // broadcast of the combined x-vector back out.
    const double per_column =
        static_cast<double>(opt.spread) * (opt.machine.latency + opt.machine.barrier_hop) +
        static_cast<double>(hops) * 2.0 * static_cast<double>(m) /
            static_cast<double>(opt.spread) * 8.0 / opt.machine.bandwidth;
    const double chain = static_cast<double>(m) * per_column;
    for (index_t s = 0; s < opt.spread; ++s) {
      const int pe = pivot_pe + static_cast<int>(s);
      mach.compute(pe, build_flops / static_cast<double>(opt.spread));
      mach.comm_delay(pe, chain);
    }
    for (index_t s = 0; s < opt.spread; ++s) {
      mach.broadcast(pivot_pe + static_cast<int>(s), rep_bytes / static_cast<double>(opt.spread));
    }
  } else {
    mach.compute(pivot_pe, build_flops);
    mach.broadcast(pivot_pe, rep_bytes);
  }

  // ---- phase 2: apply to the owned trailing columns ---------------------
  const double per_block = core::application_flops(opt.rep, m, 1, m) / eff;
  for (int pe = 0; pe < np; ++pe) {
    index_t blocks = map.owned_in_range(i + 1, p, pe);
    if (blocks == 0) continue;
    double flops = per_block * static_cast<double>(blocks);
    if (map.layout == Layout::V3) flops /= static_cast<double>(opt.spread);
    mach.compute(pe, flops);
  }

  // ---- explicit synchronization between phases --------------------------
  mach.barrier();
}

void validate(const DistOptions& opt) {
  if (opt.np < 1) throw std::invalid_argument("dist_schur: np must be >= 1");
  if (opt.layout == Layout::V2 && opt.group < 1)
    throw std::invalid_argument("dist_schur: V2 needs group >= 1");
  if (opt.layout == Layout::V3) {
    if (opt.spread < 1 || opt.np % static_cast<int>(opt.spread) != 0)
      throw std::invalid_argument("dist_schur: V3 spread must divide np");
  }
}

}  // namespace

const char* to_string(Layout l) {
  switch (l) {
    case Layout::V1: return "V1";
    case Layout::V2: return "V2";
    case Layout::V3: return "V3";
  }
  return "?";
}

double representation_bytes(Representation rep, index_t m) {
  const double n = static_cast<double>(2 * m);
  const double k = static_cast<double>(m);
  switch (rep) {
    case Representation::AccumulatedU: return n * n * 8.0;
    case Representation::VY1:
    case Representation::VY2: return 2.0 * n * k * 8.0;
    case Representation::YTY: return (n * k + k * (k + 1) / 2.0) * 8.0;
    case Representation::Sequential: return (n + 1.0) * k * 8.0;  // the m x-vectors
  }
  return 0.0;
}

DistResult dist_schur_model(index_t m, index_t p, const DistOptions& opt) {
  validate(opt);
  OwnerMap map{opt.layout, opt.np, opt.group, opt.spread};
  Machine mach(opt.np, opt.machine);
  for (index_t i = 1; i < p; ++i) {
    util::Tracer::set_step(i);
    charge_step(mach, map, opt, m, i, p);
  }
  util::emit_schedule(mach.schedule());
  DistResult res;
  res.sim_seconds = mach.time();
  res.breakdown = mach.breakdown();
  res.comm = mach.comm_stats();
  res.steps = p - 1;
  res.schedule = mach.take_schedule();
  return res;
}

DistResult dist_schur_factor(const toeplitz::BlockToeplitz& t, const DistOptions& opt,
                             bool want_factor) {
  validate(opt);
  const toeplitz::BlockToeplitz spec =
      (opt.block_size == 0 || opt.block_size == t.block_size())
          ? t
          : t.with_block_size(opt.block_size);
  const index_t m = spec.block_size(), p = spec.num_blocks();
  if (!want_factor) {
    return dist_schur_model(m, p, opt);
  }
  if (opt.layout == Layout::V3) {
    throw std::invalid_argument("dist_schur: the numeric path does not implement V3");
  }

  OwnerMap map{opt.layout, opt.np, opt.group, opt.spread};
  Machine mach(opt.np, opt.machine);

  // Distributed storage: each PE owns the (A_j, B_j) pairs of its block
  // columns.  A flat array indexed by logical column, tagged with the
  // owning PE, keeps the ownership explicit while staying testable.
  Generator g = core::make_generator_spd(spec);
  struct Column {
    Mat a, b;
    int pe;
  };
  std::vector<Column> cols(static_cast<std::size_t>(p));
  for (index_t j = 0; j < p; ++j) {
    auto& c = cols[static_cast<std::size_t>(j)];
    c.a = Mat(m, m);
    c.b = Mat(m, m);
    la::copy(g.a_block(j), c.a.view());
    la::copy(g.b_block(j), c.b.view());
    c.pe = map.owner(j);
  }

  Mat r(spec.order(), spec.order());
  auto emit = [&](index_t step) {
    for (index_t j = step; j < p; ++j) {
      la::copy(cols[static_cast<std::size_t>(j)].a.view(), r.block(step * m, j * m, m, m));
    }
  };
  emit(0);

  for (index_t i = 1; i < p; ++i) {
    util::Tracer::set_step(i);
    // Phase 3: shift the A row one block to the right (explicit moves
    // between PE stores, right to left so nothing is overwritten early).
    for (index_t j = p - 1; j >= i; --j) {
      la::copy(cols[static_cast<std::size_t>(j - 1)].a.view(),
               cols[static_cast<std::size_t>(j)].a.view());
    }
    // Phase 1: the pivot owner builds the reflector...
    auto& pivot = cols[static_cast<std::size_t>(i)];
    BlockReflector bref(opt.rep, m, g.sig);
    {
      util::TraceSpan span(kBuildPhase);
      if (auto bd = bref.build(pivot.a.view(), pivot.b.view(), 1e-13)) {
        throw core::NotPositiveDefinite(i, bd->column, bd->hnorm);
      }
    }
    // Phase 2: ...and every PE updates the columns it owns.
    {
      util::TraceSpan span(kApplyPhase);
      for (index_t j = i + 1; j < p; ++j) {
        auto& c = cols[static_cast<std::size_t>(j)];
        bref.apply(c.a.view(), c.b.view());
      }
    }
    charge_step(mach, map, opt, m, i, p);
    emit(i);
  }

  util::emit_schedule(mach.schedule());
  DistResult res;
  res.sim_seconds = mach.time();
  res.breakdown = mach.breakdown();
  res.comm = mach.comm_stats();
  res.steps = p - 1;
  res.r = std::move(r);
  res.schedule = mach.take_schedule();
  return res;
}

}  // namespace bst::simnet
