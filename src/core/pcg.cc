#include "core/pcg.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "la/condest.h"
#include "la/norms.h"
#include "util/fault.h"
#include "util/flops.h"
#include "util/metrics.h"
#include "util/stallguard.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::core {
namespace {

using toeplitz::cplx;

const util::PhaseId kPcgPhase = util::Tracer::phase("pcg");
const util::PhaseId kPcgSetupPhase = util::Tracer::phase("pcg_setup");
const util::PhaseId kPcgPrecondPhase = util::Tracer::phase("pcg_precond");

util::HistId pcg_iters_hist() {
  static const util::HistId id = util::Metrics::histogram("pcg_iterations");
  return id;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CirculantPreconditioner::CirculantPreconditioner(const toeplitz::BlockToeplitz& t)
    : m_(t.block_size()), p_(t.num_blocks()) {
  util::TraceSpan span(kPcgSetupPhase);
  const std::size_t mm = static_cast<std::size_t>(m_ * m_);
  const std::size_t pu = static_cast<std::size_t>(p_);

  // Frequency blocks What_f(ri, rj) = forward DFT (length p) of the Strang
  // coefficient sequence W_l(ri, rj).  T's block at offset d = bi - bj is
  // T_{1-d} for d <= 0 and T_{d+1}^T for d > 0.
  std::vector<std::vector<cplx>> spec(mm);
  std::vector<cplx> seq(pu);
  for (la::index_t ri = 0; ri < m_; ++ri) {
    for (la::index_t rj = 0; rj < m_; ++rj) {
      for (la::index_t l = 0; l < p_; ++l) {
        double w;
        if (2 * l < p_) {
          w = l == 0 ? t.block(1)(ri, rj) : t.block(l + 1)(rj, ri);  // A_l
        } else if (2 * l > p_) {
          w = t.block(p_ - l + 1)(ri, rj);  // A_{l-p}
        } else {
          w = 0.5 * (t.block(l + 1)(rj, ri) + t.block(l + 1)(ri, rj));
        }
        seq[static_cast<std::size_t>(l)] = cplx(w, 0.0);
      }
      toeplitz::dft(seq, /*inverse=*/false);
      spec[static_cast<std::size_t>(ri * m_ + rj)] = seq;
    }
  }

  // Complex Cholesky LL^H of each (Hermitian) frequency block.
  fac_.assign(pu * mm, cplx{});
  min_pivot_ = std::numeric_limits<double>::infinity();
  max_pivot_ = 0.0;
  util::FlopCounter::charge(8 * static_cast<std::uint64_t>(m_) *
                            static_cast<std::uint64_t>(m_) *
                            static_cast<std::uint64_t>(m_) * pu / 3);
  for (std::size_t f = 0; f < pu; ++f) {
    cplx* l = fac_.data() + f * mm;
    for (la::index_t j = 0; j < m_; ++j) {
      double d = spec[static_cast<std::size_t>(j * m_ + j)][f].real();
      for (la::index_t k = 0; k < j; ++k) d -= std::norm(l[j + k * m_]);
      min_pivot_ = std::min(min_pivot_, d);
      max_pivot_ = std::max(max_pivot_, d);
      if (!(d > 0.0)) {
        spd_ = false;
        return;
      }
      const double ljj = std::sqrt(d);
      l[j + j * m_] = cplx(ljj, 0.0);
      for (la::index_t i = j + 1; i < m_; ++i) {
        cplx s = spec[static_cast<std::size_t>(i * m_ + j)][f];
        for (la::index_t k = 0; k < j; ++k) s -= l[i + k * m_] * std::conj(l[j + k * m_]);
        l[i + j * m_] = s / ljj;
      }
    }
  }
}

void CirculantPreconditioner::apply_inverse(const std::vector<double>& r,
                                            std::vector<double>& z) const {
  assert(spd_ && "apply_inverse on a non-SPD preconditioner");
  assert(static_cast<la::index_t>(r.size()) == order());
  util::TraceSpan span(kPcgPrecondPhase);
  const std::size_t pu = static_cast<std::size_t>(p_);
  const std::size_t mm = static_cast<std::size_t>(m_ * m_);

  // Forward DFT of the m strided components of r.
  std::vector<std::vector<cplx>> v(static_cast<std::size_t>(m_));
  for (la::index_t c = 0; c < m_; ++c) {
    auto& vc = v[static_cast<std::size_t>(c)];
    vc.resize(pu);
    for (la::index_t l = 0; l < p_; ++l) {
      vc[static_cast<std::size_t>(l)] = cplx(r[static_cast<std::size_t>(l * m_ + c)], 0.0);
    }
    toeplitz::dft(vc, /*inverse=*/false);
  }

  // Per-frequency L L^H u = rhat solves (two m x m triangular sweeps).
  util::FlopCounter::charge(8 * static_cast<std::uint64_t>(m_) *
                            static_cast<std::uint64_t>(m_) * pu);
  std::vector<cplx> u(static_cast<std::size_t>(m_));
  for (std::size_t f = 0; f < pu; ++f) {
    const cplx* l = fac_.data() + f * mm;
    for (la::index_t i = 0; i < m_; ++i) u[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)][f];
    for (la::index_t i = 0; i < m_; ++i) {  // L y = u
      cplx s = u[static_cast<std::size_t>(i)];
      for (la::index_t k = 0; k < i; ++k) s -= l[i + k * m_] * u[static_cast<std::size_t>(k)];
      u[static_cast<std::size_t>(i)] = s / l[i + i * m_].real();
    }
    for (la::index_t i = m_ - 1; i >= 0; --i) {  // L^H w = y
      cplx s = u[static_cast<std::size_t>(i)];
      for (la::index_t k = i + 1; k < m_; ++k) {
        s -= std::conj(l[k + i * m_]) * u[static_cast<std::size_t>(k)];
      }
      u[static_cast<std::size_t>(i)] = s / l[i + i * m_].real();
    }
    for (la::index_t i = 0; i < m_; ++i) v[static_cast<std::size_t>(i)][f] = u[static_cast<std::size_t>(i)];
  }

  z.resize(static_cast<std::size_t>(order()));
  for (la::index_t c = 0; c < m_; ++c) {
    auto& vc = v[static_cast<std::size_t>(c)];
    toeplitz::dft(vc, /*inverse=*/true);
    for (la::index_t l = 0; l < p_; ++l) {
      z[static_cast<std::size_t>(l * m_ + c)] = vc[static_cast<std::size_t>(l)].real();
    }
  }
  util::ByteCounter::charge(16 * static_cast<std::uint64_t>(order()));
}

PcgOptions PcgOptions::from_env(PcgOptions base) {
  if (const char* s = std::getenv("BST_PCG_TOL"); s != nullptr && *s != '\0') {
    base.tol = std::strtod(s, nullptr);
  }
  if (const char* s = std::getenv("BST_PCG_MAXIT"); s != nullptr && *s != '\0') {
    base.max_iters = std::max(1, std::atoi(s));
  }
  return base;
}

PcgResult pcg_solve(const toeplitz::MatVec& op, const CirculantPreconditioner& precond,
                    const std::vector<double>& b, const PcgOptions& opt) {
  util::TraceSpan span(kPcgPhase);
  PcgResult res;
  const auto n = static_cast<std::size_t>(op.order());
  assert(b.size() == n && precond.order() == op.order());
  res.x.assign(n, 0.0);

  const double nb = la::norm2(b);
  res.residual_norms.push_back(nb);
  if (nb == 0.0) {
    res.converged = true;
    return res;
  }

  std::vector<double> r = b, z, p, q;
  precond.apply_inverse(r, z);
  p = z;
  double rz = dot(r, z);
  double best = nb;
  double last = nb;

  for (int it = 0; it < opt.max_iters; ++it) {
    util::Fault::fire("pcg");
    util::StallGuard::beat();  // per-iteration progress
    op.apply(p, q);
    const double pq = dot(p, q);
    if (!(pq > 0.0)) {
      // T is not positive definite along p: CG's theory is void.  Stop and
      // let the caller fall back to the Schur path.
      util::Watchdog::warn("pcg_breakdown", res.iterations, pq, 0.0);
      break;
    }
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    ++res.iterations;
    const double rn = la::norm2(r);
    res.residual_norms.push_back(rn);
    last = rn;
    // Vector updates: two axpys, two dots, one norm (~10 n flops/iter).
    util::FlopCounter::charge(10 * static_cast<std::uint64_t>(n));
    util::ByteCounter::charge(8 * 7 * static_cast<std::uint64_t>(n));
    if (rn <= opt.tol * nb) {
      res.converged = true;
      break;
    }
    if (rn > 10.0 * best) break;  // diverging; check_pcg below flags it
    best = std::min(best, rn);
    precond.apply_inverse(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz = rz_new;
  }

  util::Watchdog::check_pcg(res.iterations, res.converged, best > 0.0 ? last / best : 0.0);
  if (util::Tracer::enabled()) {
    util::Metrics::record(pcg_iters_hist(), static_cast<std::uint64_t>(res.iterations));
  }
  return res;
}

double circulant_condest(const toeplitz::BlockToeplitz& t,
                         const CirculantPreconditioner& precond) {
  if (!precond.positive_definite()) return std::numeric_limits<double>::infinity();
  la::SolveFn solve = [&precond](const std::vector<double>& b, std::vector<double>& x) {
    precond.apply_inverse(b, x);
  };
  // M is symmetric, so the transpose solve is the same callback.
  return la::condest1(t.order(), t.norm1_upper(), solve, solve);
}

}  // namespace bst::core
