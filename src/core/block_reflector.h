// Block hyperbolic Householder representations (paper sections 4-6).
//
// A step of the block Schur algorithm eliminates the m x m lower pivot
// block Q against the upper-triangular pivot block P with a product of m
// hyperbolic reflectors U = U_m ... U_1.  The product can be represented:
//
//   AccumulatedU : U as a dense 2m x 2m matrix (the naive scheme),
//   VY1          : U = W^m + V Y^T, built with 2 matvecs / step (Lemma 4.0.1),
//   VY2          : U = W^m + V Y^T, built with 1 matvec + 1 rank-1 (Lemma 4.0.2),
//   YTY          : U = W^m + Y T Y^T W^{m-1} (Lemma 4.0.3; least build flops
//                  and half the storage/communication volume),
//   Sequential   : no aggregation; reflectors applied one by one (level-2).
//
// Applying the composite to the rest of the generator is done in split
// quadrant form (paper section 6.4): the upper and lower row blocks A and B
// of the generator live at different column offsets (the in-place virtual
// shift), so U's quadrants / the top and bottom halves of V, Y are used
// separately.
#pragma once

#include <optional>
#include <vector>

#include "core/hyperbolic.h"
#include "la/matrix.h"

namespace bst::core {

/// Which aggregation scheme to use for the step's reflector product.
enum class Representation { AccumulatedU, VY1, VY2, YTY, Sequential };

/// Human-readable name (bench output).
const char* to_string(Representation rep);

/// Build breakdown: the column whose hyperbolic norm was (near-)zero or of
/// the wrong sign -- a singular or indefinite principal minor.
struct StepBreakdown {
  index_t column = 0;  // 0-based column inside the pivot block
  double hnorm = 0.0;  // the offending hyperbolic norm
};

/// The aggregated product of one step's m reflectors.
class BlockReflector {
 public:
  BlockReflector(Representation rep, index_t m, Signature sig);

  /// Builds the composite from the pivot pair (P upper triangular, Q dense),
  /// transforming P and Q in place (P gets the -sigma diagonal, Q becomes 0).
  /// On breakdown, P/Q hold the partially transformed state for columns
  /// < breakdown.column and the breakdown is returned; the SPD driver treats
  /// that as "not positive definite", the indefinite driver re-runs the step
  /// with pivoting / perturbation.
  ///
  /// `inner_block` enables the two-level blocking of paper section 6.2:
  /// reflectors are aggregated every `inner_block` columns into a panel
  /// whose application to the remaining pivot columns uses the level-3
  /// path (useful when m is large).  0 (default) updates the pivot pair
  /// reflector-by-reflector.
  [[nodiscard]] std::optional<StepBreakdown> build(View p, View q, double breakdown_tol = 0.0,
                                                   index_t inner_block = 0);

  /// Applies the composite to the active generator columns:
  /// [A; B] := U [A; B] with A, B each an m x L view (possibly at different
  /// physical offsets -- the split-quadrant application).
  void apply(View a, View b) const;

  /// The scalar reflectors (Sequential application / tests).
  [[nodiscard]] const std::vector<Reflector>& reflectors() const noexcept { return refl_; }

  /// Rebuilds the aggregate from already-computed scalar reflectors (e.g.
  /// received over the network in the distributed implementation: the
  /// x-vectors are the compact wire format, each PE re-aggregates locally).
  static BlockReflector from_reflectors(Representation rep, index_t m, Signature sig,
                                        const std::vector<Reflector>& reflectors);

  /// Dense 2m x 2m composite (test oracle; independent of representation).
  [[nodiscard]] Mat dense_u() const;

  [[nodiscard]] Representation representation() const noexcept { return rep_; }
  [[nodiscard]] const Signature& signature() const noexcept { return sig_; }

 private:
  void accumulate(const Reflector& r, index_t k);
  // Builds reflectors for pivot columns [k0, k1), updating only the pivot
  // pair columns [k0, k1); used both for the whole step and per panel.
  [[nodiscard]] std::optional<StepBreakdown> build_panel(View p, View q, index_t k0, index_t k1,
                                                         double breakdown_tol,
                                                         BlockReflector* panel_agg);
  void apply_accumulated_u(View a, View b) const;
  void apply_vy(View a, View b) const;
  void apply_yty(View a, View b) const;
  void apply_sequential(View a, View b) const;

  Representation rep_;
  index_t m_;
  Signature sig_;                // length 2m
  std::vector<Reflector> refl_;  // the m scalar reflectors, in order
  index_t built_ = 0;            // number of reflectors accumulated so far
  Mat u_;                        // AccumulatedU: 2m x 2m
  Mat v_, y_;                    // VY forms: 2m x m each
  Mat t_;                        // YTY: m x m lower triangular
};

/// Scales the rows of `g` by sig^k (i.e. multiplies by W^k): a no-op for
/// even k, a per-row sign flip for odd k.
void scale_rows_wk(View g, const Signature& sig, index_t row_offset, index_t k);

}  // namespace bst::core
