// Closed-form flop models from the paper (section 6, eqs. 25-32).
//
// "Blocking flops" = cost of producing a representation of the product of
// k hyperbolic reflectors of order 2m; "application flops" = cost of
// applying it to the remaining 2m x mp generator.  The paper uses these
// models to argue that YTY^T is the cheapest to build and VY2 the cheapest
// to apply, with the naive accumulated-U scheme far more expensive.
#pragma once

#include <vector>

#include "core/block_reflector.h"
#include "util/attainment.h"

namespace bst::core {

/// Eq. 25: building U = U_k ... U_1 as a dense matrix; k = m specialization
/// gives 6m^3 + 1.5m^2 + 11.5m.
double blocking_flops_accumulated_u(index_t m, index_t k);

/// Eq. 26 (first VY form); k = m gives 2.333m^3 + 3.75m^2 + 8m.
double blocking_flops_vy1(index_t m, index_t k);

/// Eq. 27 (second VY form); k = m gives 2m^3 + 3m^2 + 8m.
double blocking_flops_vy2(index_t m, index_t k);

/// Eq. 28 (YTY^T form); k = m gives 1.333m^3 + 3.75m^2 + 8m - 1.
double blocking_flops_yty(index_t m, index_t k);

/// Eq. 29: applying dense U to a 2m x mp generator (k = m): 7m^3 p + m^2 p.
double application_flops_accumulated_u(index_t m, index_t p, index_t k);

/// Eq. 30: first VY form.
double application_flops_vy1(index_t m, index_t p, index_t k);

/// Eq. 31: second VY form.
double application_flops_vy2(index_t m, index_t p, index_t k);

/// Eq. 32: YTY^T form: 5m^3 p + 5m^2 p at k = m.
double application_flops_yty(index_t m, index_t p, index_t k);

/// Dispatch by representation (Sequential uses the per-reflector costs).
double blocking_flops(Representation rep, index_t m, index_t k);
double application_flops(Representation rep, index_t m, index_t p, index_t k);

/// As-implemented cost models: closed forms of exactly what the kernels
/// charge to util::FlopCounter (la/ BLAS conventions: gemm 2mnk, gemv/ger
/// 2mn; hyperbolic make_reflector 10m+8; pivot updates (5m+4) per entry).
/// For a single-level build() of k reflectors of block size m, measured
/// build-phase flops equal blocking_flops_impl *exactly*, and every
/// apply() over p trailing block columns charges application_flops_impl
/// exactly -- so measured/model ("model_ratio" in the attainment report
/// section) is ~1.0 and any drift flags an implementation change.  The
/// verbatim eq. 25-32 models above stay as the paper-idealized reference
/// ("paper_ratio"); the two differ by bookkeeping the paper drops (W-sign
/// scaling folded into axpys, reflector setup constants).  Two-level
/// builds (SchurOptions::inner_block > 0) do extra level-3 panel work the
/// single-level model does not count.
double blocking_flops_impl(Representation rep, index_t m, index_t k);
double application_flops_impl(Representation rep, index_t m, index_t p, index_t k);

/// Per-phase modeled flop budget of a full block Schur factorization of
/// order n with working block size ms (the sequential single-level path of
/// block_schur_stream): "reflector_build" and "reflector_apply" entries
/// with both the as-implemented and the paper eq. 25-32 totals, ready for
/// util::attainment_section().  Empty when ms does not divide n.
std::vector<util::PhaseModel> schur_phase_models(Representation rep, index_t n, index_t ms);

/// Total factorization cost model ~ 4 m_s n^2 (paper section 6.5) --
/// the leading-order term used in the block-size tradeoff discussion.
double factorization_flops_model(index_t n, index_t ms);

/// As-charged cost of one fft() call of the given length (toeplitz/fft.h
/// charges 5 n log2 n, plus n for the inverse's scaling pass).
double fft_flops_impl(std::size_t n, bool inverse);

/// As-charged cost of one dft() call: fft for powers of two, Bluestein's
/// three transforms plus chirp work otherwise.
double dft_flops_impl(std::size_t n, bool inverse);

/// Per-phase modeled flop budget of a *converged* circulant-preconditioned
/// CG solve (core/pcg.h) on a block Toeplitz system with block size m and
/// p block rows that spent `iterations` matvecs: "fft_setup" (the
/// block-circulant spectra of the operator), "pcg_setup" (Strang spectra +
/// per-frequency Cholesky) and "pcg" (the solve, inclusive of its nested
/// matvec/preconditioner spans).  As-implemented models only -- the paper
/// has no superfast tier, so paper_flops stays 0 and the attainment join
/// reports model_ratio alone for these phases.
std::vector<util::PhaseModel> pcg_phase_models(index_t m, index_t p, int iterations);

}  // namespace bst::core
