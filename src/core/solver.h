// High-level one-call solver for symmetric block Toeplitz systems.
//
// Dispatch policy (what a downstream user wants by default):
//   1. try the SPD block Schur factorization (cheapest, T = R^T R);
//   2. on breakdown, fall back to the indefinite extension
//      (signature pivoting + singular-minor perturbation);
//   3. if any perturbation was applied -- or if requested -- polish the
//      solution with iterative refinement against the exact operator.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/indefinite.h"
#include "core/refine.h"
#include "core/schur.h"
#include "toeplitz/matvec.h"

namespace bst::core {

/// Options for the one-call solver.
struct SolveOptions {
  SchurOptions spd;              // used for the SPD attempt
  IndefiniteOptions indefinite;  // used for the fallback
  RefineOptions refine;
  /// Run refinement even when no perturbation occurred.
  bool always_refine = false;
  /// Skip the SPD attempt (go straight to the indefinite driver).
  bool assume_indefinite = false;
  toeplitz::MatVecMode residual_mode = toeplitz::MatVecMode::Direct;
};

/// Which path produced the answer.
enum class SolvePath { Spd, Indefinite, IndefinitePerturbed };

const char* to_string(SolvePath p);

/// Everything a caller might want to inspect afterwards.
struct SolveReport {
  std::vector<double> x;
  SolvePath path = SolvePath::Spd;
  int refinement_steps = 0;
  bool refined = false;
  bool converged = true;          // refinement convergence (true if not run)
  double final_residual = -1.0;   // ||b - T x||, -1 when refinement not run
  int interchanges = 0;
  std::size_t perturbations = 0;
  std::uint64_t factor_flops = 0;
};

/// Solves T x = b, choosing the factorization automatically.
/// Throws SingularMinor only if even the perturbed path cannot proceed.
SolveReport toeplitz_solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b,
                           const SolveOptions& opt = {});

}  // namespace bst::core
