// High-level one-call solver for symmetric block Toeplitz systems.
//
// Two solver families sit behind one entry point:
//   * the block Schur factorization (core/schur.h, core/indefinite.h):
//     O(ms n^2), handles indefinite and singular-minor systems via
//     signature pivoting + perturbation + iterative refinement;
//   * circulant-preconditioned CG (core/pcg.h): O(n log n) per iteration,
//     wins on large well-conditioned SPD systems but has no story for
//     indefinite or clustered-at-zero spectra.
//
// The crossover policy (SolverPolicy / choose_solver) picks between them
// from the order, a positive-definiteness probe of the Strang circulant,
// and a cheap 1-norm condition estimate; BST_SOLVER / the --solver flag
// force a path.  A forced-or-chosen PCG run that fails to converge falls
// back to Schur with mandatory refinement ("pcg+fallback"), so the answer
// is always as good as the Schur path's.
//
// Schur dispatch (unchanged from the original policy):
//   1. try the SPD block Schur factorization (cheapest, T = R^T R);
//   2. on breakdown, fall back to the indefinite extension
//      (signature pivoting + singular-minor perturbation);
//   3. if any perturbation was applied -- or if requested -- polish the
//      solution with iterative refinement against the exact operator.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/indefinite.h"
#include "core/pcg.h"
#include "core/refine.h"
#include "core/schur.h"
#include "toeplitz/matvec.h"

namespace bst::core {

/// Solver family selector: Auto lets the crossover policy decide.
enum class SolverKind { Auto, Schur, Pcg };

const char* to_string(SolverKind k);

/// Parses "auto" / "schur" / "pcg"; throws std::invalid_argument otherwise.
SolverKind parse_solver_kind(const std::string& s);

/// The automatic solver-crossover policy.  Defaults are deliberately
/// conservative: PCG is only chosen when it is clearly the right tool.
struct SolverPolicy {
  SolverKind kind = SolverKind::Auto;
  /// Below this order the Schur factorization always wins (setup and
  /// constant factors dominate the asymptotic gap).
  la::index_t pcg_min_n = 2048;
  /// Condition estimates above this keep the system on the Schur path:
  /// CG iteration counts scale with sqrt(cond) while the factorization
  /// is condition-oblivious.
  double pcg_max_cond = 1e6;

  /// Overlays BST_SOLVER / BST_SOLVER_MIN_N / BST_SOLVER_MAX_COND onto
  /// `base` (defaults if omitted).
  static SolverPolicy from_env(SolverPolicy base);
  static SolverPolicy from_env() { return from_env(SolverPolicy{}); }
};

/// Outcome of the policy probe: which family to use and why, plus the
/// probe artifacts (preconditioner, condition estimate) so the PCG path
/// does not pay for them twice.
struct PolicyDecision {
  SolverKind chosen = SolverKind::Schur;
  /// "forced" | "small" | "not_spd" | "ill_conditioned" | "crossover".
  std::string reason;
  double condest = -1.0;  // 1-norm estimate; -1 when not probed
  std::shared_ptr<const CirculantPreconditioner> precond;  // set when built
};

/// Runs the crossover policy for `t`.  O(m^2 p log p) when it probes
/// (orders >= pcg_min_n under Auto), O(1) otherwise.
PolicyDecision choose_solver(const toeplitz::BlockToeplitz& t, const SolverPolicy& policy);

/// Options for the one-call solver.
struct SolveOptions {
  SchurOptions spd;              // used for the SPD attempt
  IndefiniteOptions indefinite;  // used for the fallback
  RefineOptions refine;
  SolverPolicy policy;           // solver-crossover policy (Auto by default)
  PcgOptions pcg;                // used when the PCG path is taken
  /// Run refinement even when no perturbation occurred.
  bool always_refine = false;
  /// Skip the SPD attempt (go straight to the indefinite driver).
  bool assume_indefinite = false;
  toeplitz::MatVecMode residual_mode = toeplitz::MatVecMode::Direct;
};

/// Which path produced the answer.
enum class SolvePath { Spd, Indefinite, IndefinitePerturbed, Pcg };

const char* to_string(SolvePath p);

/// Everything a caller might want to inspect afterwards.
struct SolveReport {
  std::vector<double> x;
  SolvePath path = SolvePath::Spd;
  /// End-to-end route: "schur", "schur+refine", "pcg", "pcg+fallback".
  std::string solver_path = "schur";
  /// Why the policy chose this route (PolicyDecision::reason).
  std::string policy_reason;
  int pcg_iterations = 0;         // matvecs spent in PCG (0 = not attempted)
  double condest = -1.0;          // policy's condition probe, -1 = not probed
  int refinement_steps = 0;
  bool refined = false;
  bool converged = true;          // refinement/PCG convergence (true if not run)
  double final_residual = -1.0;   // ||b - T x||, -1 when neither PCG nor refinement ran
  int interchanges = 0;
  std::size_t perturbations = 0;
  std::uint64_t factor_flops = 0;
};

/// Solves T x = b, choosing the solver family and factorization
/// automatically.  Throws SingularMinor only if even the perturbed Schur
/// path cannot proceed.
SolveReport toeplitz_solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b,
                           const SolveOptions& opt = {});

}  // namespace bst::core
