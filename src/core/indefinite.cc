#include "core/indefinite.h"

#include <cfloat>
#include <cmath>
#include <limits>
#include <sstream>

#include "la/blas.h"
#include "util/flops.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::core {
namespace {

const util::PhaseId kGeneratorPhase = util::Tracer::phase("generator_build");
const util::PhaseId kBuildPhase = util::Tracer::phase("reflector_build");
const util::PhaseId kApplyPhase = util::Tracer::phase("reflector_apply");
const util::PhaseId kSequentialPhase = util::Tracer::phase("indefinite_sequential");

double max_abs(la::CView v) {
  double mx = 0.0;
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i) mx = std::max(mx, std::fabs(v(i, j)));
  return mx;
}

std::string singular_message(index_t step, index_t column, double hnorm) {
  std::ostringstream os;
  os << "block Schur (indefinite): singular principal minor at step " << step << ", column "
     << column << " (hyperbolic norm " << hnorm << ")";
  return os.str();
}

// Applies one sparse hyperbolic reflector to every active column of the
// aligned generator views (A and B are m x L at their physical offsets).
void apply_one(const Reflector& r, const Signature& sig, index_t m, View a, View b) {
  const index_t k = r.pivot;
  const index_t l = a.cols();
  for (index_t c = 0; c < l; ++c) {
    double t = r.x[static_cast<std::size_t>(k)] * a(k, c);
    for (index_t rr = 0; rr < m; ++rr) t += r.x[static_cast<std::size_t>(m + rr)] * b(rr, c);
    t *= r.beta;
    for (index_t rr = 0; rr < m; ++rr) {
      const double w = sig[static_cast<std::size_t>(rr)];
      a(rr, c) = w * a(rr, c) + (rr == k ? t * r.x[static_cast<std::size_t>(k)] : 0.0);
    }
    for (index_t rr = 0; rr < m; ++rr) {
      const double w = sig[static_cast<std::size_t>(m + rr)];
      b(rr, c) = w * b(rr, c) + t * r.x[static_cast<std::size_t>(m + rr)];
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(l) * static_cast<std::uint64_t>(5 * m + 4));
}

struct StepState {
  Generator* g;
  index_t step;
  index_t active;  // blocks still in play
  // Aligned active views: A physical [0, active*m), B physical
  // [step*m, (step+active)*m).
  View a, b;
};

// 2-norm bound of U_x = W + beta x x^T.
double reflector_norm_bound(const Reflector& r) {
  double x2 = 0.0;
  for (const double v : r.x) x2 += v * v;
  return 1.0 + std::fabs(r.beta) * x2;
}

void track_norm(LdlFactor& f, const Reflector& r, double delta) {
  const double bound = reflector_norm_bound(r);
  f.max_reflector_norm = std::max(f.max_reflector_norm, bound);
  if (bound > 1.0 / std::sqrt(delta)) ++f.large_reflectors;
}

// Performs one full indefinite step sequentially, with interchanges and
// perturbations.  Returns the number of interchanges; `min_hnorm` (when
// non-null) receives the smallest |hyperbolic norm| accepted for a pivot.
int sequential_step(StepState st, const IndefiniteOptions& opt, double delta, double norm_g1,
                    std::vector<PerturbationEvent>& events, LdlFactor& f,
                    double* min_hnorm = nullptr) {
  Generator& g = *st.g;
  const index_t m = g.m;
  int interchanges = 0;
  std::vector<double> u(static_cast<std::size_t>(2 * m));
  for (index_t k = 0; k < m; ++k) {
    auto load_u = [&] {
      std::fill(u.begin(), u.end(), 0.0);
      u[static_cast<std::size_t>(k)] = st.a(k, k);
      for (index_t r = 0; r < m; ++r) u[static_cast<std::size_t>(m + r)] = st.b(r, k);
    };
    load_u();
    double h = hyperbolic_norm(u, g.sig);
    double u2 = 0.0;
    for (const double v : u) u2 += v * v;

    if (std::fabs(h) <= opt.singular_tol * u2 || u2 == 0.0) {
      // Singular principal minor: perturb the pivot entry (section 8.2).
      if (!opt.allow_perturbation) throw SingularMinor(st.step, k, h);
      const double sk = g.sig[static_cast<std::size_t>(k)];
      const double pk = st.a(k, k);
      const double rest = h - sk * pk * pk;  // lower-part contribution
      double scale = std::max(pk * pk, std::fabs(rest));
      if (scale == 0.0) scale = norm_g1 * norm_g1;
      // New pivot chosen so the new hyperbolic norm is sk * delta * scale.
      const double p2 = delta * scale + pk * pk - sk * h;
      const double sign_p = (pk >= 0.0) ? 1.0 : -1.0;
      const double pnew = sign_p * std::sqrt(p2);
      events.push_back({st.step, k, pk, pnew, h});
      util::Watchdog::warn("pivot_perturbed", st.step, h, opt.singular_tol * u2);
      st.a(k, k) = pnew;
      load_u();
      h = hyperbolic_norm(u, g.sig);
    }

    const double sign_h = (h >= 0.0) ? 1.0 : -1.0;
    if (sign_h != g.sig[static_cast<std::size_t>(k)]) {
      // Interchange: swap upper row k with a lower row of matching
      // signature, choosing the largest magnitude entry as the new pivot.
      index_t best = -1;
      double best_mag = -1.0;
      for (index_t r = 0; r < m; ++r) {
        if (g.sig[static_cast<std::size_t>(m + r)] != sign_h) continue;
        const double mag = std::fabs(st.b(r, k));
        if (mag > best_mag) {
          best_mag = mag;
          best = r;
        }
      }
      if (best < 0) throw SingularMinor(st.step, k, h);
      for (index_t c = 0; c < st.a.cols(); ++c) std::swap(st.a(k, c), st.b(best, c));
      std::swap(g.sig[static_cast<std::size_t>(k)], g.sig[static_cast<std::size_t>(m + best)]);
      ++interchanges;
      util::Watchdog::warn("pivot_interchange", st.step, h, 0.0);
      load_u();
      h = hyperbolic_norm(u, g.sig);
    }

    auto refl = make_reflector(u, g.sig, k, 0.0);
    if (!refl) throw SingularMinor(st.step, k, h);
    if (min_hnorm != nullptr) *min_hnorm = std::min(*min_hnorm, std::fabs(h));
    track_norm(f, *refl, delta);
    apply_one(*refl, g.sig, m, st.a, st.b);
    // Kill roundoff in the eliminated entries.
    st.a(k, k) = -refl->sigma;
    for (index_t r = 0; r < m; ++r) st.b(r, k) = 0.0;
  }
  return interchanges;
}

}  // namespace

SingularMinor::SingularMinor(index_t step_, index_t column_, double hnorm_)
    : std::runtime_error(singular_message(step_, column_, hnorm_)),
      step(step_),
      column(column_),
      hnorm(hnorm_) {}

LdlFactor block_schur_indefinite(const toeplitz::BlockToeplitz& t, const IndefiniteOptions& opt) {
  const toeplitz::BlockToeplitz spec =
      (opt.block_size == 0 || opt.block_size == t.block_size())
          ? t
          : t.with_block_size(opt.block_size);
  const double delta = (opt.delta > 0.0) ? opt.delta : std::cbrt(DBL_EPSILON);

  util::FlopScope flops;
  Generator g = [&] {
    util::TraceSpan span(kGeneratorPhase);
    return make_generator_indefinite(spec);
  }();
  const index_t m = g.m, p = g.p, n = m * p;

  LdlFactor f;
  f.block_size = m;
  f.r = Mat(n, n);
  f.d.assign(static_cast<std::size_t>(n), 1.0);

  auto emit = [&](index_t step) {
    const index_t cols = (p - step) * m;
    la::copy(g.a.block(0, 0, m, cols), f.r.block(step * m, step * m, m, cols));
    for (index_t r = 0; r < m; ++r) {
      f.d[static_cast<std::size_t>(step * m + r)] = g.sig[static_cast<std::size_t>(r)];
    }
  };

  emit(0);
  for (index_t i = 1; i < p; ++i) {
    util::Tracer::set_step(i);
    const index_t active = p - i;
    View a_act = g.a.block(0, 0, m, active * m);
    View b_act = g.b.block(0, i * m, m, active * m);

    // Fast path: if the step needs no interchange/perturbation, run the
    // same blocked code as the SPD driver.  Probe on copies of the pivot
    // pair so a breakdown leaves the generator untouched.
    bool blocked_ok = false;
    double min_h = std::numeric_limits<double>::infinity();
    {
      Mat pcopy(m, m), qcopy(m, m);
      la::copy(g.a_block(0), pcopy.view());
      la::copy(g.b_block(i), qcopy.view());
      BlockReflector bref(opt.rep, m, g.sig);
      // Probe with the *singular* tolerance so near-breakdowns take the
      // robust sequential path.
      bool built = false;
      {
        util::TraceSpan span(kBuildPhase);
        built = !bref.build(pcopy.view(), qcopy.view(), opt.singular_tol);
      }
      if (built) {
        la::copy(pcopy.view(), g.a_block(0));
        la::copy(qcopy.view(), g.b_block(i));
        util::TraceSpan span(kApplyPhase);
        bref.apply(g.a.block(0, m, m, (active - 1) * m),
                   g.b.block(0, (i + 1) * m, m, (active - 1) * m));
        for (const Reflector& r : bref.reflectors()) {
          track_norm(f, r, delta);
          min_h = std::min(min_h, r.sigma * r.sigma);
        }
        blocked_ok = true;
      }
    }
    if (!blocked_ok) {
      // Interleaved build+apply: charged to its own phase rather than split.
      util::TraceSpan span(kSequentialPhase);
      StepState st{&g, i, active, a_act, b_act};
      f.interchanges +=
          sequential_step(st, opt, delta, g.norm_g1, f.perturbations, f, &min_h);
    }
    if (util::Tracer::enabled()) {
      const double max_gen = std::max(max_abs(la::CView(a_act)), max_abs(la::CView(b_act)));
      util::Tracer::record_step(i, min_h, max_gen);
      util::Watchdog::check_step(i, min_h, max_gen, g.norm_g1);
    }
    emit(i);
  }
  f.flops = flops.elapsed();
  return f;
}

}  // namespace bst::core
