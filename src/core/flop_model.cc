#include "core/flop_model.h"

namespace bst::core {
namespace {
double d(index_t v) { return static_cast<double>(v); }
}  // namespace

double blocking_flops_accumulated_u(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 25: 4m^2 k + 2m k^2 - 3m^2 + 4mk + 0.5k^2 + m + 10.5k.
  return 4 * m * m * k + 2 * m * k * k - 3 * m * m + 4 * m * k + 0.5 * k * k + m + 10.5 * k;
}

double blocking_flops_vy1(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 26: ~ 2mk^2 + k^3/3 + 3.5mk + 0.25k^2 - m + 9k.
  return 2 * m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k - m + 9 * k;
}

double blocking_flops_vy2(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 27: 2mk^2 + 2.5mk + 0.5k^2 - 0.5m + 8.5k.
  return 2 * m * k * k + 2.5 * m * k + 0.5 * k * k - 0.5 * m + 8.5 * k;
}

double blocking_flops_yty(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 28: ~ mk^2 + k^3/3 + 3.5mk + 0.25k^2 + 9k - m - 1.
  return m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k + 9 * k - m - 1;
}

double application_flops_accumulated_u(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 29: 2m^3 p + 4m^2 p k + m p k^2 + m p k.
  return 2 * m * m * m * p + 4 * m * m * p * k + m * p * k * k + m * p * k;
}

double application_flops_vy1(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 30: 4m^2 p k + m p k^2 + 3 m p k (+ m^2 p when k odd).
  double f = 4 * m * m * p * k + m * p * k * k + 3 * m * p * k;
  if (k_ % 2 == 1) f += m * m * p;
  return f;
}

double application_flops_vy2(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 31: 4m^2 p k + m p k^2 + 2 m p k (+ m^2 p when k odd).
  double f = 4 * m * m * p * k + m * p * k * k + 2 * m * p * k;
  if (k_ % 2 == 1) f += m * m * p;
  return f;
}

double application_flops_yty(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 32: 4m^2 p k + m p k^2 + m^2 p + 4 m p k.
  return 4 * m * m * p * k + m * p * k * k + m * m * p + 4 * m * p * k;
}

double blocking_flops(Representation rep, index_t m, index_t k) {
  switch (rep) {
    case Representation::AccumulatedU: return blocking_flops_accumulated_u(m, k);
    case Representation::VY1: return blocking_flops_vy1(m, k);
    case Representation::VY2: return blocking_flops_vy2(m, k);
    case Representation::YTY: return blocking_flops_yty(m, k);
    case Representation::Sequential: return d(m) * (3 * d(m) + 8);  // reflector setup only
  }
  return 0.0;
}

double application_flops(Representation rep, index_t m, index_t p, index_t k) {
  switch (rep) {
    case Representation::AccumulatedU: return application_flops_accumulated_u(m, p, k);
    case Representation::VY1: return application_flops_vy1(m, p, k);
    case Representation::VY2: return application_flops_vy2(m, p, k);
    case Representation::YTY: return application_flops_yty(m, p, k);
    case Representation::Sequential:
      // k reflectors, each ~ (4m + 3) flops per generator column.
      return d(k) * d(m) * d(p) * (4 * d(m) + 3);
  }
  return 0.0;
}

double factorization_flops_model(index_t n, index_t ms) {
  return 4.0 * d(ms) * d(n) * d(n);
}

}  // namespace bst::core
