#include "core/flop_model.h"

#include <cstdint>

#include "toeplitz/fft.h"

namespace bst::core {
namespace {
double d(index_t v) { return static_cast<double>(v); }
}  // namespace

double blocking_flops_accumulated_u(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 25: 4m^2 k + 2m k^2 - 3m^2 + 4mk + 0.5k^2 + m + 10.5k.
  return 4 * m * m * k + 2 * m * k * k - 3 * m * m + 4 * m * k + 0.5 * k * k + m + 10.5 * k;
}

double blocking_flops_vy1(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 26: ~ 2mk^2 + k^3/3 + 3.5mk + 0.25k^2 - m + 9k.
  return 2 * m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k - m + 9 * k;
}

double blocking_flops_vy2(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 27: 2mk^2 + 2.5mk + 0.5k^2 - 0.5m + 8.5k.
  return 2 * m * k * k + 2.5 * m * k + 0.5 * k * k - 0.5 * m + 8.5 * k;
}

double blocking_flops_yty(index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Eq. 28: ~ mk^2 + k^3/3 + 3.5mk + 0.25k^2 + 9k - m - 1.
  return m * k * k + k * k * k / 3.0 + 3.5 * m * k + 0.25 * k * k + 9 * k - m - 1;
}

double application_flops_accumulated_u(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 29: 2m^3 p + 4m^2 p k + m p k^2 + m p k.
  return 2 * m * m * m * p + 4 * m * m * p * k + m * p * k * k + m * p * k;
}

double application_flops_vy1(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 30: 4m^2 p k + m p k^2 + 3 m p k (+ m^2 p when k odd).
  double f = 4 * m * m * p * k + m * p * k * k + 3 * m * p * k;
  if (k_ % 2 == 1) f += m * m * p;
  return f;
}

double application_flops_vy2(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 31: 4m^2 p k + m p k^2 + 2 m p k (+ m^2 p when k odd).
  double f = 4 * m * m * p * k + m * p * k * k + 2 * m * p * k;
  if (k_ % 2 == 1) f += m * m * p;
  return f;
}

double application_flops_yty(index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), p = d(p_), k = d(k_);
  // Eq. 32: 4m^2 p k + m p k^2 + m^2 p + 4 m p k.
  return 4 * m * m * p * k + m * p * k * k + m * m * p + 4 * m * p * k;
}

double blocking_flops(Representation rep, index_t m, index_t k) {
  switch (rep) {
    case Representation::AccumulatedU: return blocking_flops_accumulated_u(m, k);
    case Representation::VY1: return blocking_flops_vy1(m, k);
    case Representation::VY2: return blocking_flops_vy2(m, k);
    case Representation::YTY: return blocking_flops_yty(m, k);
    case Representation::Sequential: return d(m) * (3 * d(m) + 8);  // reflector setup only
  }
  return 0.0;
}

double application_flops(Representation rep, index_t m, index_t p, index_t k) {
  switch (rep) {
    case Representation::AccumulatedU: return application_flops_accumulated_u(m, p, k);
    case Representation::VY1: return application_flops_vy1(m, p, k);
    case Representation::VY2: return application_flops_vy2(m, p, k);
    case Representation::YTY: return application_flops_yty(m, p, k);
    case Representation::Sequential:
      // k reflectors, each ~ (4m + 3) flops per generator column.
      return d(k) * d(m) * d(p) * (4 * d(m) + 3);
  }
  return 0.0;
}

double blocking_flops_impl(Representation rep, index_t m_, index_t k_) {
  const double m = d(m_), k = d(k_);
  // Per reflector j (0-based pivot): make_reflector charges 3*2m (the
  // hyperbolic norm) + 2*2m + 8, and the restricted pivot-column update
  // charges (m - j)(5m + 4) (block_reflector.cc, single-level cend = m).
  double f = k * (10 * m + 8) + (5 * m + 4) * (k * m - k * (k - 1) / 2.0);
  switch (rep) {
    case Representation::AccumulatedU:
      // accumulate(): one 2m x 2m gemv + one 2m x 2m ger per reflector.
      f += 16 * m * m * k;
      break;
    case Representation::VY1:
    case Representation::VY2:
      // Two 2m x j gemvs (VY1) or a gemv + ger pair (VY2) at reflector j.
      f += 4 * m * k * (k - 1);
      break;
    case Representation::YTY:
      // One 2m x j gemv plus the j(j+1) triangular T-row update.
      f += 2 * m * k * (k - 1) + (k - 1) * k * (2 * k - 1) / 6.0 + k * (k - 1) / 2.0;
      break;
    case Representation::Sequential:
      break;
  }
  return f;
}

double application_flops_impl(Representation rep, index_t m_, index_t p_, index_t k_) {
  const double m = d(m_), k = d(k_), l = d(m_) * d(p_);
  switch (rep) {
    case Representation::AccumulatedU:
      // Four m x m gemms against the m x l panel halves.
      return 8 * m * m * l;
    case Representation::VY1:
      // Z = Y^T [A;B] (two gemms), pivot-sparse V_up (2kl), V_low gemm.
      return (6 * m * k + 2 * k) * l;
    case Representation::VY2:
      // Z gemm + diagonal Y_up (2kl), triangular V_up (k(k+1)l), V_low gemm.
      return (4 * m * k + k * (k + 1) + 2 * k) * l;
    case Representation::YTY:
      // Z gemm + diag (2kl), triangular T (k(k+1)l), diag (2kl), Y_low gemm.
      return (4 * m * k + k * (k + 1) + 4 * k) * l;
    case Representation::Sequential:
      return k * (5 * m + 4) * l;
  }
  return 0.0;
}

std::vector<util::PhaseModel> schur_phase_models(Representation rep, index_t n, index_t ms) {
  std::vector<util::PhaseModel> out;
  if (n <= 0 || ms <= 0 || n % ms != 0) return out;
  const index_t p = n / ms;
  util::PhaseModel build{"reflector_build", 0.0, 0.0};
  util::PhaseModel apply{"reflector_apply", 0.0, 0.0};
  // block_schur_stream: steps i = 1..p-1, each builds a full m_s-reflector
  // block and applies it to the p-1-i trailing block columns (schur.cc).
  for (index_t i = 1; i < p; ++i) {
    build.model_flops += blocking_flops_impl(rep, ms, ms);
    build.paper_flops += blocking_flops(rep, ms, ms);
    const index_t trailing = p - i - 1;
    if (trailing > 0) {
      apply.model_flops += application_flops_impl(rep, ms, trailing, ms);
      apply.paper_flops += application_flops(rep, ms, trailing, ms);
    }
  }
  out.push_back(std::move(build));
  out.push_back(std::move(apply));
  return out;
}

double factorization_flops_model(index_t n, index_t ms) {
  return 4.0 * d(ms) * d(n) * d(n);
}

double fft_flops_impl(std::size_t n, bool inverse) {
  if (n <= 1) return 0.0;
  std::uint64_t log2n = 0;
  for (std::size_t v = n; v > 1; v >>= 1) ++log2n;
  return 5.0 * static_cast<double>(n) * static_cast<double>(log2n) +
         (inverse ? static_cast<double>(n) : 0.0);
}

double dft_flops_impl(std::size_t n, bool inverse) {
  if (n <= 1) return 0.0;
  if ((n & (n - 1)) == 0) return fft_flops_impl(n, inverse);
  // Bluestein: two forward and one inverse transform at the embedding
  // order, plus the explicitly charged chirp/pointwise work.  The cost is
  // direction-independent (the inverse only changes the chirp's sign).
  const std::size_t nfft = toeplitz::next_pow2(2 * n - 1);
  return 2.0 * fft_flops_impl(nfft, false) + fft_flops_impl(nfft, true) +
         6.0 * static_cast<double>(nfft) + 12.0 * static_cast<double>(n);
}

std::vector<util::PhaseModel> pcg_phase_models(index_t m, index_t p, int iterations) {
  std::vector<util::PhaseModel> out;
  if (m <= 0 || p <= 0) return out;
  const double md = d(m), pd = d(p), n = md * pd;
  const std::size_t nfft = toeplitz::next_pow2(2 * static_cast<std::size_t>(p));
  const double its = static_cast<double>(iterations);

  // BlockCirculantMultiplier ctor: m^2 forward transforms at the embedding
  // order (the pointwise assembly is copies, not flops).
  out.push_back({"fft_setup", md * md * fft_flops_impl(nfft, false), 0.0});

  // CirculantPreconditioner ctor: m^2 forward DFTs of length p plus the
  // integer-arithmetic Cholesky charge from pcg.cc.
  const double chol = static_cast<double>(8 * static_cast<std::uint64_t>(m) *
                                          static_cast<std::uint64_t>(m) *
                                          static_cast<std::uint64_t>(m) *
                                          static_cast<std::uint64_t>(p) / 3);
  out.push_back({"pcg_setup", md * md * dft_flops_impl(static_cast<std::size_t>(p), false) + chol,
                 0.0});

  // The solve, inclusive of nested spans: per matvec m forward + m inverse
  // transforms and the 8 P m^2 spectral accumulate; per preconditioner
  // apply (one initial + one per non-final iteration = `iterations` total
  // on a converged run) 2m DFTs of length p and the 8 m^2 p triangular
  // solves; plus 10 n vector-update flops per iteration.
  const double matvec = md * (fft_flops_impl(nfft, false) + fft_flops_impl(nfft, true)) +
                        8.0 * static_cast<double>(nfft) * md * md;
  const double precond = md * (dft_flops_impl(static_cast<std::size_t>(p), false) +
                               dft_flops_impl(static_cast<std::size_t>(p), true)) +
                         8.0 * md * md * pd;
  out.push_back({"pcg", its * (matvec + precond + 10.0 * n), 0.0});
  return out;
}

}  // namespace bst::core
