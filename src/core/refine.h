// Iterative refinement (paper section 8, eqs. 34-37).
//
// The perturbed factorization LDL^T = T + dT solves a nearby system; the
// refinement loop
//     solve LDL^T dx_i = r_i;   x_{i+1} = x_i + dx_i;   r_{i+1} = b - T x_{i+1}
// contracts the error by ~ ||dT T^{-1}|| per step (eq. 41), so with
// delta = cbrt(eps) about two to three steps reach machine precision.
// Residuals are computed against the *exact* Toeplitz operator.
#pragma once

#include <functional>
#include <vector>

#include "toeplitz/matvec.h"

namespace bst::core {

/// Black-box "solve with the (approximate) factorization" callback.
using FactorSolve =
    std::function<void(const std::vector<double>& rhs, std::vector<double>& x)>;

/// Options for the refinement loop.
struct RefineOptions {
  int max_iters = 20;
  /// Stop when ||dx|| < tol * ||x|| (the paper's criterion).
  double tol = 1e-14;
};

/// Outcome of solve_refined.
struct RefineResult {
  std::vector<double> x;
  bool converged = false;
  int iterations = 0;                    // refinement steps taken (0 = none needed)
  std::vector<double> correction_norms;  // ||dx_i|| per step
  std::vector<double> residual_norms;    // ||r_i|| per step (r_0 first)
};

/// Solves T x = b with iterative refinement: `solve` applies the
/// (approximate) factorization, `op` the exact Toeplitz operator.
RefineResult solve_refined(const toeplitz::MatVec& op, const FactorSolve& solve,
                           const std::vector<double>& b, const RefineOptions& opt = {});

}  // namespace bst::core
