// Displacement generator of a symmetric block Toeplitz matrix.
//
// The Schur algorithm never touches the full matrix: it works on the
// 2m x mp generator  Gen = [A; B]  with
//   A = [T_1 T_2 ... T_p],  B = [0 T_2 ... T_p],  T_j = (L1 S)^{-1} That_j,
// where That_1 = L1 S L1^T is the (signature-)Cholesky factorization of the
// leading block (S = I in the SPD case), so that (paper eqs. 9-11)
//   T - Z^T T Z = Gen^T diag(S, -S) Gen .
//
// The generator is stored as the two m x mp row blocks A and B, plus the
// signature vector of length 2m.  During factorization the upper row block
// is shifted *virtually*: at step i, logical block column j of A lives at
// physical block column j - i, so no data movement is needed (the in-place
// scheme of paper section 6.4).
#pragma once

#include <vector>

#include "la/matrix.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::core {

using la::CView;
using la::index_t;
using la::Mat;
using la::View;
using toeplitz::BlockToeplitz;

/// Signature vector: entries +/-1.
using Signature = std::vector<double>;

/// The 2m x mp displacement generator plus its signature.
struct Generator {
  index_t m = 0;  // working block size (m_s)
  index_t p = 0;  // number of block columns
  Mat a;          // upper row block, m x (m*p)
  Mat b;          // lower row block, m x (m*p)
  Signature sig;  // length 2m; initially (S, -S)
  double norm_g1 = 0.0;  // Frobenius norm of the initial generator, used to
                         // scale the singular-minor perturbation (sec. 8.2)

  [[nodiscard]] View a_block(index_t j) { return a.block(0, j * m, m, m); }
  [[nodiscard]] View b_block(index_t j) { return b.block(0, j * m, m, m); }
};

/// Builds the generator of an SPD block Toeplitz matrix (S = I).
/// Throws std::runtime_error if the leading block T1 is not positive
/// definite (use make_generator_indefinite then).
Generator make_generator_spd(const BlockToeplitz& t);

/// Builds the generator with a signature decomposition T1 = L S L^T
/// (paper eq. 11), valid whenever T1 has nonsingular leading principal
/// minors.  Throws std::runtime_error otherwise.
Generator make_generator_indefinite(const BlockToeplitz& t);

/// Test oracle: assembles Gen^T diag(sig) Gen (an n x n matrix) which must
/// equal the displacement T - Z^T T Z.
Mat generator_displacement(const Generator& g);

/// Test oracle: reconstructs T from the stacked triangular generators
/// G1, G2 of eq. 5: T = G1^T S_p G1 - G2^T S_p G2.
Mat generator_reconstruct(const Generator& g);

}  // namespace bst::core
