#include "core/solve.h"

#include "la/blas.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace bst::core {
namespace {
const util::PhaseId kSolvePhase = util::Tracer::phase("triangular_solve");
}  // namespace

void solve_rtdr(CView r, const double* d, const std::vector<double>& b, std::vector<double>& x) {
  util::TraceSpan span(kSolvePhase);
  const index_t n = r.rows();
  assert(static_cast<index_t>(b.size()) == n);
  x = b;
  // R^T w = b  (forward substitution on the transposed upper factor).
  la::trsv(la::Uplo::Upper, la::Op::Trans, la::Diag::NonUnit, r, x.data());
  // w := D^{-1} w  (D = D^{-1}, entries +/-1).
  if (d != nullptr) {
    for (index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] *= d[i];
  }
  // R x = w.
  la::trsv(la::Uplo::Upper, la::Op::None, la::Diag::NonUnit, r, x.data());
}

void solve_rtdr_multi(CView r, const double* d, View bx) {
  util::TraceSpan span(kSolvePhase);
  const index_t n = r.rows();
  assert(bx.rows() == n);
  la::trsm(la::Side::Left, la::Uplo::Upper, la::Op::Trans, la::Diag::NonUnit, 1.0, r, bx);
  if (d != nullptr) {
    for (index_t j = 0; j < bx.cols(); ++j)
      for (index_t i = 0; i < n; ++i) bx(i, j) *= d[i];
  }
  la::trsm(la::Side::Left, la::Uplo::Upper, la::Op::None, la::Diag::NonUnit, 1.0, r, bx);
}

void solve_rtdr_panels(CView r, const double* d, View bx, index_t panel, bool parallel) {
  const index_t k = bx.cols();
  if (panel <= 0 || panel >= k) {
    solve_rtdr_multi(r, d, bx);
    return;
  }
  const index_t npanels = (k + panel - 1) / panel;
  auto body = [&](std::size_t pi) {
    const index_t j0 = static_cast<index_t>(pi) * panel;
    const index_t w = std::min(panel, k - j0);
    solve_rtdr_multi(r, d, bx.block(0, j0, bx.rows(), w));
  };
  if (parallel) {
    // One panel per chunk: each is a full two-sweep triangular solve, heavy
    // enough that finer grains only add dispatch overhead.  The level-3
    // kernels inside see in_parallel_region() and stay serial.
    util::ThreadPool::global().parallel_for(0, static_cast<std::size_t>(npanels), body);
  } else {
    for (index_t pi = 0; pi < npanels; ++pi) body(static_cast<std::size_t>(pi));
  }
}

Mat solve_spd_multi(const SchurFactor& f, CView b) {
  Mat x(b.rows(), b.cols());
  la::copy(b, x.view());
  solve_rtdr_multi(f.r.view(), nullptr, x.view());
  return x;
}

void demote_factor_to_float(View r) {
  for (index_t j = 0; j < r.cols(); ++j)
    for (index_t i = 0; i < r.rows(); ++i) r(i, j) = static_cast<float>(r(i, j));
}

std::vector<double> solve_spd(const SchurFactor& f, const std::vector<double>& b) {
  std::vector<double> x;
  solve_rtdr(f.r.view(), nullptr, b, x);
  return x;
}

std::vector<double> solve_ldl(const LdlFactor& f, const std::vector<double>& b) {
  std::vector<double> x;
  solve_rtdr(f.r.view(), f.d.data(), b, x);
  return x;
}

}  // namespace bst::core
