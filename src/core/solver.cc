#include "core/solver.h"

#include "core/solve.h"
#include "la/norms.h"

namespace bst::core {

const char* to_string(SolvePath p) {
  switch (p) {
    case SolvePath::Spd: return "spd";
    case SolvePath::Indefinite: return "indefinite";
    case SolvePath::IndefinitePerturbed: return "indefinite+perturbed";
  }
  return "?";
}

SolveReport toeplitz_solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b,
                           const SolveOptions& opt) {
  SolveReport rep;
  FactorSolve fsolve;
  std::optional<SchurFactor> spd;
  std::optional<LdlFactor> ldl;

  if (!opt.assume_indefinite) {
    try {
      spd = block_schur_factor(t, opt.spd);
      rep.path = SolvePath::Spd;
      rep.factor_flops = spd->flops;
      fsolve = [&spd](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_spd(*spd, rhs);
      };
    } catch (const NotPositiveDefinite&) {
      // fall through to the indefinite driver
    }
  }
  if (!spd) {
    ldl = block_schur_indefinite(t, opt.indefinite);
    rep.path = ldl->perturbations.empty() ? SolvePath::Indefinite
                                          : SolvePath::IndefinitePerturbed;
    rep.factor_flops = ldl->flops;
    rep.interchanges = ldl->interchanges;
    rep.perturbations = ldl->perturbations.size();
    fsolve = [&ldl](const std::vector<double>& rhs, std::vector<double>& out) {
      out = solve_ldl(*ldl, rhs);
    };
  }

  const bool need_refine = opt.always_refine || rep.path == SolvePath::IndefinitePerturbed;
  if (!need_refine) {
    fsolve(b, rep.x);
    return rep;
  }
  toeplitz::MatVec op(t, opt.residual_mode);
  RefineResult rr = solve_refined(op, fsolve, b, opt.refine);
  rep.x = std::move(rr.x);
  rep.refined = true;
  rep.refinement_steps = rr.iterations;
  rep.converged = rr.converged;
  std::vector<double> r;
  op.residual(b, rep.x, r);
  rep.final_residual = la::norm2(r);
  return rep;
}

}  // namespace bst::core
