#include "core/solver.h"

#include <cstdlib>
#include <stdexcept>

#include "core/solve.h"
#include "la/norms.h"
#include "util/watchdog.h"

namespace bst::core {

const char* to_string(SolvePath p) {
  switch (p) {
    case SolvePath::Spd: return "spd";
    case SolvePath::Indefinite: return "indefinite";
    case SolvePath::IndefinitePerturbed: return "indefinite+perturbed";
    case SolvePath::Pcg: return "pcg";
  }
  return "?";
}

const char* to_string(SolverKind k) {
  switch (k) {
    case SolverKind::Auto: return "auto";
    case SolverKind::Schur: return "schur";
    case SolverKind::Pcg: return "pcg";
  }
  return "?";
}

SolverKind parse_solver_kind(const std::string& s) {
  if (s == "auto") return SolverKind::Auto;
  if (s == "schur") return SolverKind::Schur;
  if (s == "pcg") return SolverKind::Pcg;
  throw std::invalid_argument("unknown solver kind '" + s + "' (auto|schur|pcg)");
}

SolverPolicy SolverPolicy::from_env(SolverPolicy base) {
  if (const char* s = std::getenv("BST_SOLVER"); s != nullptr && *s != '\0') {
    base.kind = parse_solver_kind(s);
  }
  if (const char* s = std::getenv("BST_SOLVER_MIN_N"); s != nullptr && *s != '\0') {
    base.pcg_min_n = static_cast<la::index_t>(std::strtol(s, nullptr, 10));
  }
  if (const char* s = std::getenv("BST_SOLVER_MAX_COND"); s != nullptr && *s != '\0') {
    base.pcg_max_cond = std::strtod(s, nullptr);
  }
  return base;
}

PolicyDecision choose_solver(const toeplitz::BlockToeplitz& t, const SolverPolicy& policy) {
  PolicyDecision d;
  if (policy.kind == SolverKind::Schur) {
    d.reason = "forced";
    return d;
  }
  if (policy.kind == SolverKind::Pcg) {
    d.chosen = SolverKind::Pcg;
    d.reason = "forced";
    d.precond = std::make_shared<const CirculantPreconditioner>(t);
    if (d.precond->positive_definite()) d.condest = circulant_condest(t, *d.precond);
    return d;
  }
  // Auto: cheapest checks first.
  if (t.order() < policy.pcg_min_n) {
    d.reason = "small";
    return d;
  }
  d.precond = std::make_shared<const CirculantPreconditioner>(t);
  if (!d.precond->positive_definite()) {
    d.reason = "not_spd";
    return d;
  }
  d.condest = circulant_condest(t, *d.precond);
  if (!(d.condest <= policy.pcg_max_cond)) {
    d.reason = "ill_conditioned";
    return d;
  }
  d.chosen = SolverKind::Pcg;
  d.reason = "crossover";
  return d;
}

SolveReport toeplitz_solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b,
                           const SolveOptions& opt) {
  SolveReport rep;
  const PolicyDecision dec = choose_solver(t, opt.policy);
  rep.condest = dec.condest;
  rep.policy_reason = dec.reason;

  bool pcg_failed = false;
  if (dec.chosen == SolverKind::Pcg) {
    toeplitz::MatVec op(t, toeplitz::MatVecMode::Fft);
    if (dec.precond != nullptr && dec.precond->positive_definite()) {
      PcgResult pr = pcg_solve(op, *dec.precond, b, opt.pcg);
      rep.pcg_iterations = pr.iterations;
      if (pr.converged) {
        rep.x = std::move(pr.x);
        rep.path = SolvePath::Pcg;
        rep.solver_path = "pcg";
        std::vector<double> r;
        op.residual(b, rep.x, r);
        rep.final_residual = la::norm2(r);
        return rep;
      }
    } else {
      // Forced PCG on a matrix whose Strang circulant is not SPD: there is
      // no preconditioner to run with.  pcg_solve was never entered, so
      // raise its warning here before taking the fallback.
      util::Watchdog::warn("pcg_precond_not_spd", 0,
                           dec.precond != nullptr ? dec.precond->min_pivot() : 0.0, 0.0);
    }
    pcg_failed = true;  // Schur below, with mandatory refinement
  }

  FactorSolve fsolve;
  std::optional<SchurFactor> spd;
  std::optional<LdlFactor> ldl;

  if (!opt.assume_indefinite) {
    try {
      spd = block_schur_factor(t, opt.spd);
      rep.path = SolvePath::Spd;
      rep.factor_flops = spd->flops;
      fsolve = [&spd](const std::vector<double>& rhs, std::vector<double>& out) {
        out = solve_spd(*spd, rhs);
      };
    } catch (const NotPositiveDefinite&) {
      // fall through to the indefinite driver
    }
  }
  if (!spd) {
    ldl = block_schur_indefinite(t, opt.indefinite);
    rep.path = ldl->perturbations.empty() ? SolvePath::Indefinite
                                          : SolvePath::IndefinitePerturbed;
    rep.factor_flops = ldl->flops;
    rep.interchanges = ldl->interchanges;
    rep.perturbations = ldl->perturbations.size();
    fsolve = [&ldl](const std::vector<double>& rhs, std::vector<double>& out) {
      out = solve_ldl(*ldl, rhs);
    };
  }

  const bool need_refine =
      opt.always_refine || pcg_failed || rep.path == SolvePath::IndefinitePerturbed;
  rep.solver_path = pcg_failed ? "pcg+fallback" : (need_refine ? "schur+refine" : "schur");
  if (!need_refine) {
    fsolve(b, rep.x);
    return rep;
  }
  // After a PCG failure the matrix is large by construction (the policy
  // only sends large systems to PCG), so the fallback keeps the O(n log n)
  // residuals regardless of the configured mode.
  toeplitz::MatVec op(t, pcg_failed ? toeplitz::MatVecMode::Fft : opt.residual_mode);
  RefineResult rr = solve_refined(op, fsolve, b, opt.refine);
  rep.x = std::move(rr.x);
  rep.refined = true;
  rep.refinement_steps = rr.iterations;
  rep.converged = rr.converged;
  std::vector<double> r;
  op.residual(b, rep.x, r);
  rep.final_residual = la::norm2(r);
  return rep;
}

}  // namespace bst::core
