// Circulant-preconditioned conjugate gradients for symmetric block
// Toeplitz systems -- the "superfast" O(n log n) tier.
//
// The Schur factorization costs O(p^2) block operations; for large,
// well-conditioned systems CG with a Strang-type block-circulant
// preconditioner gets to machine precision in O(1) iterations of
// O(m^2 P log P) work each (P = next_pow2(2p)), because the preconditioned
// spectrum clusters at 1 for Wiener-class symbols (Chan & Strang).  Both
// the operator (toeplitz::MatVec in Fft mode) and the preconditioner ride
// the cached-spectra machinery of toeplitz/fft.h.
//
// The preconditioner M is the block circulant that copies T's central
// block diagonals and wraps them: W_l = A_l for l < p/2, A_{l-p} for
// l > p/2, and the average of both for l = p/2 (A_d is T's block at
// offset d).  Symmetry of T gives W_{p-l} = W_l^T, so M is symmetric and
// its frequency blocks  What_f = sum_l W_l e^{-2 pi i f l / p}  are
// Hermitian; each is factored once by a complex Cholesky LL^H.  A solve
// M z = r is then m forward DFTs of length p, p independent m x m
// triangular solve pairs, and m inverse DFTs.  When some frequency block
// is not positive definite, M is not SPD and the solver policy
// (core/solver.h) keeps such systems on the Schur path.
#pragma once

#include <vector>

#include "toeplitz/block_toeplitz.h"
#include "toeplitz/fft.h"
#include "toeplitz/matvec.h"

namespace bst::core {

/// Strang-type block-circulant preconditioner for a symmetric block
/// Toeplitz matrix, factored per frequency at construction.
class CirculantPreconditioner {
 public:
  explicit CirculantPreconditioner(const toeplitz::BlockToeplitz& t);

  /// z := M^{-1} r (z resized to the order).  Only valid when
  /// positive_definite().
  void apply_inverse(const std::vector<double>& r, std::vector<double>& z) const;

  /// Whether every frequency block admitted a Cholesky factorization
  /// (equivalently: M is SPD).  When false, apply_inverse must not be
  /// called and PCG is off the table for this matrix.
  [[nodiscard]] bool positive_definite() const noexcept { return spd_; }

  [[nodiscard]] la::index_t order() const noexcept { return m_ * p_; }
  [[nodiscard]] la::index_t block_size() const noexcept { return m_; }
  [[nodiscard]] la::index_t num_blocks() const noexcept { return p_; }

  /// Extreme squared Cholesky pivots across all frequency blocks -- a
  /// crude proxy for M's spectral range, recorded in reports.
  [[nodiscard]] double min_pivot() const noexcept { return min_pivot_; }
  [[nodiscard]] double max_pivot() const noexcept { return max_pivot_; }

 private:
  la::index_t m_ = 0, p_ = 0;
  bool spd_ = true;
  double min_pivot_ = 0.0, max_pivot_ = 0.0;
  // p frequency blocks, each a column-major m x m lower factor L with
  // L L^H = What_f; frequency f starts at f*m*m.
  std::vector<toeplitz::cplx> fac_;
};

/// Options for pcg_solve.
struct PcgOptions {
  int max_iters = 500;
  /// Stop when ||r_k||_2 <= tol * ||b||_2.
  double tol = 1e-13;

  /// Overlays BST_PCG_TOL / BST_PCG_MAXIT onto `base` (defaults if omitted).
  static PcgOptions from_env(PcgOptions base);
  static PcgOptions from_env() { return from_env(PcgOptions{}); }
};

/// Outcome of pcg_solve.
struct PcgResult {
  std::vector<double> x;
  bool converged = false;
  int iterations = 0;                  // matvecs performed
  std::vector<double> residual_norms;  // ||r_k|| per iteration (r_0 = b first)
};

/// Solves T x = b by preconditioned CG.  `op` must evaluate the exact
/// Toeplitz operator (use MatVecMode::Fft for the O(n log n) cost this
/// path exists for); `precond` must be positive_definite().  Non-SPD
/// systems surface as breakdown (p^T T p <= 0) or divergence; both stop
/// early, leave converged == false, and raise watchdog warnings
/// ("pcg_breakdown" / "pcg_divergence" / "pcg_no_convergence") so the
/// caller can fall back to the Schur path.
PcgResult pcg_solve(const toeplitz::MatVec& op, const CirculantPreconditioner& precond,
                    const std::vector<double>& b, const PcgOptions& opt = {});

/// 1-norm condition estimate of the *preconditioner* standing in for T:
/// ||T||_1 upper bound (BlockToeplitz::norm1_upper) times Hager's estimate
/// of ||M^{-1}||_1.  Since M ~ T exactly in the regime where PCG pays off,
/// this is the cheap O(m^2 p log p) condition probe the solver-crossover
/// policy runs before committing to a path.  Returns +inf when the
/// preconditioner is not positive definite.
double circulant_condest(const toeplitz::BlockToeplitz& t,
                         const CirculantPreconditioner& precond);

}  // namespace bst::core
