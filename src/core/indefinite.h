// Extended block Schur algorithm for symmetric indefinite (block) Toeplitz
// matrices (paper sections 2 (eq. 11) and 8).
//
// Differences from the SPD driver:
//  * the leading block is factored T1 = L S L^T with a +/-1 signature S,
//  * when a pivot column's hyperbolic norm has the "wrong" sign, a row
//    interchange moves the pivot onto a row of matching signature (the
//    paper's "interchanging rows such that the pivot element always lies
//    along the diagonal row of the pivot block"),
//  * when the hyperbolic norm (numerically) vanishes -- a singular
//    principal minor -- the pivot entry is perturbed by delta ~ cbrt(eps)
//    (section 8.2) and the factorization continues; the result is an exact
//    factorization of a nearby matrix T + dT, to be corrected by iterative
//    refinement (core/refine.h).
//
// The result is T + dT = R^T D R with R upper triangular and D = diag(+/-1).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/block_reflector.h"
#include "core/generator.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::core {

/// One singular-minor perturbation applied during the factorization.
struct PerturbationEvent {
  index_t step = 0;    // block step
  index_t column = 0;  // column inside the pivot block
  double old_pivot = 0.0;
  double new_pivot = 0.0;
  double hnorm = 0.0;  // the (near-zero) hyperbolic norm that triggered it
};

/// Options for the indefinite driver.
struct IndefiniteOptions {
  /// Representation used for steps that need no interchange/perturbation
  /// (such steps run the same blocked code path as the SPD driver).
  Representation rep = Representation::VY2;
  /// Working block size m_s (0 = structural).
  index_t block_size = 0;
  /// Relative tolerance declaring a pivot column's hyperbolic norm zero.
  double singular_tol = 1e-10;
  /// Perturbation size; 0 selects cbrt(machine epsilon) ~ 6e-6 (paper: the
  /// delta minimizing  delta + eps/delta^2, eq. 45).
  double delta = 0.0;
  /// Disallow perturbations: throw SingularMinor instead (strict mode).
  bool allow_perturbation = true;
};

/// Thrown in strict mode when a singular principal minor is met.
class SingularMinor : public std::runtime_error {
 public:
  SingularMinor(index_t step, index_t column, double hnorm);
  index_t step, column;
  double hnorm;
};

/// T + dT = R^T D R.
struct LdlFactor {
  Mat r;                  // n x n upper triangular
  std::vector<double> d;  // length n, entries +/-1
  index_t block_size = 0;
  int interchanges = 0;   // number of row interchanges performed
  std::vector<PerturbationEvent> perturbations;
  std::uint64_t flops = 0;
  /// Largest 2-norm bound (1 + |beta| ||x||^2) over all reflectors used.
  /// Section 8.2 predicts ~1/delta after a singular-minor perturbation;
  /// the product of these norms bounds the error growth of the
  /// factorization, so a huge value signals that refinement is required.
  double max_reflector_norm = 1.0;
  /// Reflectors whose norm bound exceeded 1/sqrt(delta) -- the paper
  /// observes two per perturbation.
  int large_reflectors = 0;
};

/// Factors a symmetric (indefinite) block Toeplitz matrix.
/// Works for SPD inputs too (then D = I, no interchanges).
LdlFactor block_schur_indefinite(const toeplitz::BlockToeplitz& t,
                                 const IndefiniteOptions& opt = {});

}  // namespace bst::core
