#include "core/generator.h"

#include <cmath>
#include <stdexcept>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/ldlt.h"
#include "la/norms.h"

namespace bst::core {
namespace {

// Shared tail: given L and S with That_1 = L S L^T, forms
// A = [S L^{-1} That_1, S L^{-1} That_2, ...] (note (L S)^{-1} = S L^{-1})
// and B = A with its first block zeroed and first block of A = (S L^T)^T
// ... i.e. A_1 = (L S)^{-1} That_1 = L^T exactly; we overwrite it with the
// analytic value to keep it exactly triangular.
Generator finish(const BlockToeplitz& t, const Mat& l, const Signature& s) {
  Generator g;
  g.m = t.block_size();
  g.p = t.num_blocks();
  const index_t m = g.m, p = g.p;

  g.a = Mat(m, m * p);
  la::copy(t.first_row(), g.a.view());
  // A := L^{-1} * A  (forward solves on every column), then A := S * A.
  la::trsm(la::Side::Left, la::Uplo::Lower, la::Op::None, la::Diag::NonUnit, 1.0, l.view(),
           g.a.view());
  for (index_t i = 0; i < m; ++i) {
    if (s[static_cast<std::size_t>(i)] < 0.0) {
      for (index_t j = 0; j < m * p; ++j) g.a(i, j) = -g.a(i, j);
    }
  }
  // T_1 = L^T exactly (paper: "it is easy to see that T_1 = L_1^T"); write
  // the analytic value so the pivot block is exactly upper triangular.
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < m; ++i) g.a(i, j) = (i <= j) ? l(j, i) : 0.0;

  g.b = Mat(m, m * p);
  la::copy(g.a.view(), g.b.view());
  la::set_zero(g.b_block(0));

  g.sig.assign(static_cast<std::size_t>(2 * m), 1.0);
  for (index_t i = 0; i < m; ++i) {
    g.sig[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i)];
    g.sig[static_cast<std::size_t>(m + i)] = -s[static_cast<std::size_t>(i)];
  }
  const double na = la::frobenius(g.a.view());
  const double nb = la::frobenius(g.b.view());
  g.norm_g1 = std::sqrt(na * na + nb * nb);
  return g;
}

}  // namespace

Generator make_generator_spd(const BlockToeplitz& t) {
  const index_t m = t.block_size();
  Mat t1(m, m);
  la::copy(t.block(1), t1.view());
  if (!la::cholesky_lower(t1.view())) {
    throw std::runtime_error(
        "make_generator_spd: leading block T1 is not positive definite");
  }
  for (index_t j = 0; j < m; ++j)
    for (index_t i = 0; i < j; ++i) t1(i, j) = 0.0;
  return finish(t, t1, Signature(static_cast<std::size_t>(m), 1.0));
}

Generator make_generator_indefinite(const BlockToeplitz& t) {
  const index_t m = t.block_size();
  Mat work(m, m);
  la::copy(t.block(1), work.view());
  Mat l;
  Signature s;
  if (!la::ldl_signature(work.view(), l, s)) {
    throw std::runtime_error(
        "make_generator_indefinite: T1 has a singular leading principal minor");
  }
  return finish(t, l, s);
}

Mat generator_displacement(const Generator& g) {
  const index_t n = g.m * g.p;
  Mat d(n, n);
  // Gen^T diag(sig) Gen with Gen = [A; B] (2m x n).
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t r = 0; r < g.m; ++r) {
        s += g.sig[static_cast<std::size_t>(r)] * g.a(r, i) * g.a(r, j);
        s += g.sig[static_cast<std::size_t>(g.m + r)] * g.b(r, i) * g.b(r, j);
      }
      d(i, j) = s;
    }
  }
  return d;
}

Mat generator_reconstruct(const Generator& g) {
  const index_t m = g.m, p = g.p, n = m * p;
  // Stack the block upper-triangular Toeplitz matrices G1 (from A) and G2
  // (from B) of eq. 5 and form G1^T Sp G1 - G2^T Sp G2 with Sp = I_p (x) S.
  Mat g1(n, n), g2(n, n);
  for (index_t bi = 0; bi < p; ++bi) {
    for (index_t bj = bi; bj < p; ++bj) {
      const index_t k = bj - bi;  // block T_{k+1}
      for (index_t c = 0; c < m; ++c) {
        for (index_t r = 0; r < m; ++r) {
          g1(bi * m + r, bj * m + c) = g.a(r, k * m + c);
          g2(bi * m + r, bj * m + c) = g.b(r, k * m + c);
        }
      }
    }
  }
  Mat t(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t r = 0; r < n; ++r) {
        const double sr = g.sig[static_cast<std::size_t>(r % m)];
        s += sr * (g1(r, i) * g1(r, j) - g2(r, i) * g2(r, j));
      }
      t(i, j) = s;
    }
  }
  return t;
}

}  // namespace bst::core
