#include "core/refine.h"

#include "la/norms.h"
#include "util/fault.h"
#include "util/stallguard.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::core {
namespace {
// The refinement loop's own cost beyond the factor solves (which charge
// themselves to "triangular_solve"): exact Toeplitz residuals.
const util::PhaseId kResidualPhase = util::Tracer::phase("residual");

void traced_residual(const toeplitz::MatVec& op, const std::vector<double>& b,
                     const std::vector<double>& x, std::vector<double>& r) {
  util::TraceSpan span(kResidualPhase);
  op.residual(b, x, r);
}
}  // namespace

RefineResult solve_refined(const toeplitz::MatVec& op, const FactorSolve& solve,
                           const std::vector<double>& b, const RefineOptions& opt) {
  RefineResult res;
  solve(b, res.x);
  std::vector<double> r, dx;
  traced_residual(op, b, res.x, r);
  res.residual_norms.push_back(la::norm2(r));

  double prev_ndx = -1.0;
  for (int it = 0; it < opt.max_iters; ++it) {
    util::Fault::fire("refine");
    util::StallGuard::beat();  // per-iteration progress
    solve(r, dx);
    const double ndx = la::norm2(dx);
    const double nx = la::norm2(res.x);
    res.correction_norms.push_back(ndx);
    if (ndx < opt.tol * nx) {
      res.converged = true;
      break;
    }
    // Stagnation: once the correction stops contracting, the attainable
    // accuracy has been reached (Wilkinson's criterion); further steps
    // only bounce around in roundoff.
    if (prev_ndx >= 0.0 && ndx > 0.5 * prev_ndx) {
      res.converged = true;
      util::Watchdog::check_refine(res.iterations, true, prev_ndx > 0.0 ? ndx / prev_ndx : 1.0);
      break;
    }
    prev_ndx = ndx;
    for (std::size_t i = 0; i < res.x.size(); ++i) res.x[i] += dx[i];
    ++res.iterations;
    traced_residual(op, b, res.x, r);
    res.residual_norms.push_back(la::norm2(r));
  }
  if (!res.converged) {
    util::Watchdog::check_refine(res.iterations, false, 0.0);
  }
  return res;
}

}  // namespace bst::core
