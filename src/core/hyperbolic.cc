#include "core/hyperbolic.h"

#include <cmath>

#include "la/blas.h"
#include "util/flops.h"

namespace bst::core {

double hyperbolic_norm(const std::vector<double>& u, const Signature& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < u.size(); ++i) s += w[i] * u[i] * u[i];
  util::FlopCounter::charge(3 * u.size());
  return s;
}

std::optional<Reflector> make_reflector(const std::vector<double>& u, const Signature& w,
                                        index_t j, double breakdown_tol) {
  const double h = hyperbolic_norm(u, w);
  // The breakdown test is relative: |u^T W u| against ||u||_2^2, so a
  // singular principal minor is detected at any scale.
  double u2 = 0.0;
  for (const double v : u) u2 += v * v;
  if (std::fabs(h) <= breakdown_tol * u2) return std::nullopt;
  if ((h > 0.0 ? 1.0 : -1.0) != w[static_cast<std::size_t>(j)]) return std::nullopt;

  Reflector r;
  r.pivot = j;
  const double uj = u[static_cast<std::size_t>(j)];
  // sigma = +/- sqrt(|h|); both signs are algebraically valid, so choose the
  // one that makes x_j = w_j u_j + sigma an *addition* of same-sign terms
  // (sign(w_j u_j)), avoiding catastrophic cancellation -- essential when
  // the pivot carries a -1 signature (indefinite case with interchanges).
  const double sign_uj = (uj >= 0.0) ? 1.0 : -1.0;
  r.sigma = w[static_cast<std::size_t>(j)] * sign_uj * std::sqrt(std::fabs(h));
  // x = W u + sigma e_j.
  r.x.resize(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) r.x[i] = w[i] * u[i];
  r.x[static_cast<std::size_t>(j)] += r.sigma;
  // x^T W x = 2 (u^T W u + sigma u_j)  (paper, section 3).
  const double xwx = 2.0 * (h + r.sigma * uj);
  r.beta = -2.0 / xwx;
  util::FlopCounter::charge(2 * u.size() + 8);
  return r;
}

void apply_reflector(const Reflector& r, const Signature& w, double* y) {
  const index_t n = static_cast<index_t>(r.x.size());
  // t = beta * (x^T y); y := W y + t x.
  const double t = r.beta * la::dot(n, r.x.data(), y);
  for (index_t i = 0; i < n; ++i) {
    y[i] = w[static_cast<std::size_t>(i)] * y[i] + t * r.x[static_cast<std::size_t>(i)];
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(3 * n));
}

void apply_reflector(const Reflector& r, const Signature& w, View g) {
  for (index_t j = 0; j < g.cols(); ++j) apply_reflector(r, w, g.col(j));
}

Mat reflector_dense(const Reflector& r, const Signature& w) {
  const index_t n = static_cast<index_t>(r.x.size());
  Mat u(n, n);
  for (index_t i = 0; i < n; ++i) u(i, i) = w[static_cast<std::size_t>(i)];
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i)
      u(i, j) += r.beta * r.x[static_cast<std::size_t>(i)] * r.x[static_cast<std::size_t>(j)];
  return u;
}

double w_unitarity_error(CView u, const Signature& w) {
  const index_t n = u.rows();
  double err = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (index_t l = 0; l < n; ++l) s += u(l, i) * w[static_cast<std::size_t>(l)] * u(l, j);
      const double expect = (i == j) ? w[static_cast<std::size_t>(i)] : 0.0;
      err = std::max(err, std::fabs(s - expect));
    }
  }
  return err;
}

}  // namespace bst::core
