// Solving linear systems from the Schur factorizations.
#pragma once

#include <vector>

#include "core/indefinite.h"
#include "core/schur.h"

namespace bst::core {

/// Solves R^T R x = b (SPD factorization).  x may alias b.
std::vector<double> solve_spd(const SchurFactor& f, const std::vector<double>& b);

/// Solves R^T D R x = b (indefinite factorization).
std::vector<double> solve_ldl(const LdlFactor& f, const std::vector<double>& b);

/// Raw kernel: solves R^T diag(d) R x = b for an upper triangular R.
/// Pass d = nullptr for D = I.
void solve_rtdr(CView r, const double* d, const std::vector<double>& b, std::vector<double>& x);

/// Multi-right-hand-side variant: solves R^T diag(d) R X = B in place
/// (B is n x k; each column an independent system).  Uses level-3
/// triangular solves.
void solve_rtdr_multi(CView r, const double* d, View bx);

/// Panel-blocked multi-RHS solve: splits the k columns of B into panels of
/// `panel` columns and runs the level-3 triangular solve per panel -- with
/// `parallel`, panels are spread across the global ThreadPool.  Each panel
/// is an independent system and each output column depends only on its own
/// input column, so for a *fixed* panel width the results are bitwise
/// identical at any thread count (the kernels' shape crossover makes the
/// bits a function of the panel width, which is why service::Service pads
/// its batches to whole panels; see docs/SERVICE.md).  panel <= 0 or
/// panel >= k degenerates to one solve_rtdr_multi call.
void solve_rtdr_panels(CView r, const double* d, View bx, index_t panel, bool parallel = false);

/// Solves T X = B through an SPD factor for an n x k block of right-hand
/// sides (e.g. the multichannel normal equations); returns X.
Mat solve_spd_multi(const SchurFactor& f, CView b);

/// Rounds every entry of the factor to IEEE single precision in place --
/// the storage/bandwidth half of classical mixed-precision iterative
/// refinement: a factor kept (or computed) in float is ~2x cheaper to hold
/// and apply, and solve_refined against the exact double-precision Toeplitz
/// operator recovers full accuracy in a few steps (see
/// tests/test_mixed_precision.cc).
void demote_factor_to_float(View r);

}  // namespace bst::core
