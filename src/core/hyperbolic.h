// Hyperbolic Householder reflectors (paper section 3).
//
// Given a signature vector w (+/-1 entries) defining W = diag(w), a
// hyperbolic Householder matrix is  U_x = W - 2 x x^T / (x^T W x);  it is
// W-unitary (U^T W U = W) and, with  x = W u + sigma e_j,
// sigma = sign(u_j) sqrt(u^T W u),  maps u to -sigma e_j (eqs. 14-16).
#pragma once

#include <optional>
#include <vector>

#include "core/generator.h"
#include "la/matrix.h"

namespace bst::core {

/// One reflector in factored form: U = W - (x beta) x^T with beta = 2/(x^T W x).
/// (We store `minus_two_over_xwx` = -2/(x^T W x) so applying is
///  y := W y + x * (minus_two_over_xwx * (x^T y)).)
struct Reflector {
  std::vector<double> x;        // length n
  double beta = 0.0;            // -2 / (x^T W x)
  index_t pivot = 0;            // the j of e_j
  double sigma = 0.0;           // the mapped value: U u = -sigma e_j
};

/// Hyperbolic norm u^T W u.
double hyperbolic_norm(const std::vector<double>& u, const Signature& w);

/// Builds the reflector mapping u to -sigma e_j.  Requires
/// sign(u^T W u) == w[j] and |u^T W u| above the breakdown threshold;
/// returns std::nullopt when the hyperbolic norm has the wrong sign or is
/// (numerically) zero -- the singular-principal-minor case.
std::optional<Reflector> make_reflector(const std::vector<double>& u, const Signature& w,
                                        index_t j, double breakdown_tol = 0.0);

/// y := U_x y for a single column vector y (length n).
void apply_reflector(const Reflector& r, const Signature& w, double* y);

/// G := U_x G applied to every column of the view (level-2 path).
void apply_reflector(const Reflector& r, const Signature& w, View g);

/// Dense U_x (test oracle): W - 2 x x^T / (x^T W x).
Mat reflector_dense(const Reflector& r, const Signature& w);

/// Test oracle: checks U^T W U = W to within `tol`, returns max violation.
double w_unitarity_error(CView u, const Signature& w);

}  // namespace bst::core
