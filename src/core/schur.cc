#include "core/schur.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "core/flop_model.h"
#include "util/fault.h"
#include "util/flops.h"
#include "util/metrics.h"
#include "util/stallguard.h"
#include "util/thread_pool.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::core {
namespace {

const util::PhaseId kGeneratorPhase = util::Tracer::phase("generator_build");
const util::PhaseId kBuildPhase = util::Tracer::phase("reflector_build");
const util::PhaseId kApplyPhase = util::Tracer::phase("reflector_apply");

double max_abs(la::CView v) {
  double mx = 0.0;
  for (index_t j = 0; j < v.cols(); ++j)
    for (index_t i = 0; i < v.rows(); ++i) mx = std::max(mx, std::fabs(v(i, j)));
  return mx;
}

// Per-step stability diagnostics (recorded only while tracing): the smallest
// |hyperbolic norm| seen by the step's reflectors -- sigma_k^2 = |u^T W u| by
// construction (core/hyperbolic.h) -- and the post-step generator magnitude.
void record_step_diag(const Generator& g, const BlockReflector& bref, index_t step,
                      index_t active_blocks) {
  if (!util::Tracer::enabled()) return;
  double min_h = std::numeric_limits<double>::infinity();
  for (const Reflector& r : bref.reflectors()) min_h = std::min(min_h, r.sigma * r.sigma);
  const index_t m = g.m;
  la::CView a = g.a.block(0, 0, m, active_blocks * m);
  la::CView b = g.b.block(0, step * m, m, active_blocks * m);
  const double max_gen = std::max(max_abs(a), max_abs(b));
  util::Tracer::record_step(step, min_h, max_gen);
  util::Watchdog::check_step(step, min_h, max_gen, g.norm_g1);
}

std::string breakdown_message(index_t step, index_t column, double hnorm) {
  std::ostringstream os;
  os << "block Schur: pivot column " << column << " at step " << step
     << " has non-positive hyperbolic norm " << hnorm
     << " -- matrix is not positive definite (or a principal minor is singular)";
  return os.str();
}

// Minimum flops a parallel chunk must carry: below this, pool dispatch and
// per-chunk span overhead outweigh the arithmetic.  Overridable via
// BST_SCHUR_GRAIN_FLOPS for chunking experiments.
double chunk_grain_flops() {
  static const double grain = [] {
    if (const char* s = std::getenv("BST_SCHUR_GRAIN_FLOPS")) {
      char* end = nullptr;
      const double v = std::strtod(s, &end);
      if (end != s && v > 0.0) return v;
    }
    return 1e5;
  }();
  return grain;
}

// Applies the step's block reflector to the active trailing columns:
// A physical blocks [1, L) and B physical blocks [step+1, step+L).
void apply_to_trailing(Generator& g, const BlockReflector& bref, index_t step,
                       index_t active_blocks, const SchurOptions& opt) {
  const index_t m = g.m;
  const index_t trailing = active_blocks - 1;
  if (trailing <= 0) return;
  View a = g.a.block(0, m, m, trailing * m);
  View b = g.b.block(0, (step + 1) * m, m, trailing * m);
  // Flop-aware chunking: chunk count comes from the as-implemented cost of
  // one trailing block column, so a late small step (few trailing columns,
  // small m) runs serially instead of paying pool dispatch, while an early
  // fat step still splits finely enough to balance.
  auto& pool = util::ThreadPool::global();
  index_t chunks = 0;
  if (opt.parallel && pool.size() > 1) {
    const double per_block = application_flops_impl(opt.rep, m, 1, m);
    const auto by_grain =
        static_cast<index_t>(per_block * static_cast<double>(trailing) / chunk_grain_flops());
    chunks = std::min({trailing, by_grain, static_cast<index_t>(pool.size()) * 4});
  }
  if (chunks <= 1) {
    util::TraceSpan span(kApplyPhase);
    bref.apply(a, b);
    return;
  }
  // Each chunk is independent.  The span opens *inside* the worker callback:
  // flops/bytes counters are thread-local, so each worker must observe its
  // own share.
  const index_t per = (trailing + chunks - 1) / chunks;
  if (util::Tracer::enabled()) {
    // Chunk grain (block columns per chunk) for trace/report visibility.
    static const util::HistId grain_hist = util::Metrics::histogram("schur_chunk_blocks");
    util::Metrics::record(grain_hist, static_cast<std::uint64_t>(per));
  }
  pool.parallel_for(0, static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const index_t lo = static_cast<index_t>(c) * per;
    const index_t hi = std::min(trailing, lo + per);
    if (lo >= hi) return;
    util::Tracer::set_step(step);  // workers carry their own step context
    util::TraceSpan span(kApplyPhase);
    bref.apply(a.block(0, lo * m, m, (hi - lo) * m), b.block(0, lo * m, m, (hi - lo) * m));
  });
}

}  // namespace

NotPositiveDefinite::NotPositiveDefinite(index_t step_, index_t column_, double hnorm_)
    : std::runtime_error(breakdown_message(step_, column_, hnorm_)),
      step(step_),
      column(column_),
      hnorm(hnorm_) {}

void schur_step(Generator& g, index_t step, const SchurOptions& opt) {
  util::Tracer::set_step(step);
  util::Fault::fire("schur_step");
  util::StallGuard::beat();  // per-step progress during long factorizations
  const index_t m = g.m;
  const index_t active = g.p - step;  // blocks still in play
  BlockReflector bref(opt.rep, m, g.sig);
  View pivot_p = g.a_block(0);
  View pivot_q = g.b_block(step);
  {
    util::TraceSpan span(kBuildPhase);
    if (auto breakdown = bref.build(pivot_p, pivot_q, opt.breakdown_tol, opt.inner_block)) {
      throw NotPositiveDefinite(step, breakdown->column, breakdown->hnorm);
    }
  }
  apply_to_trailing(g, bref, step, active, opt);
  record_step_diag(g, bref, step, active);
}

std::uint64_t block_schur_stream(const toeplitz::BlockToeplitz& t, const SchurOptions& opt,
                                 const RowBlockSink& sink) {
  const toeplitz::BlockToeplitz spec =
      (opt.block_size == 0 || opt.block_size == t.block_size())
          ? t
          : t.with_block_size(opt.block_size);
  util::FlopScope flops;
  util::Tracer::set_step(0);
  Generator g = [&] {
    util::TraceSpan span(kGeneratorPhase);
    return make_generator_spd(spec);
  }();
  const index_t m = g.m, p = g.p;
  sink(0, g.a.view());
  for (index_t i = 1; i < p; ++i) {
    schur_step(g, i, opt);
    sink(i, g.a.block(0, 0, m, (p - i) * m));
  }
  return flops.elapsed();
}

SchurFactor block_schur_factor(const toeplitz::BlockToeplitz& t, const SchurOptions& opt) {
  const index_t n = t.order();
  const index_t ms = (opt.block_size == 0) ? t.block_size() : opt.block_size;
  SchurFactor f;
  f.block_size = ms;
  f.r = Mat(n, n);
  f.flops = block_schur_stream(t, opt, [&](index_t step, CView rows) {
    la::copy(rows, f.r.block(step * ms, step * ms, ms, rows.cols()));
  });
  return f;
}

}  // namespace bst::core
