#include "core/schur.h"

#include <sstream>

#include "util/flops.h"
#include "util/thread_pool.h"

namespace bst::core {
namespace {

std::string breakdown_message(index_t step, index_t column, double hnorm) {
  std::ostringstream os;
  os << "block Schur: pivot column " << column << " at step " << step
     << " has non-positive hyperbolic norm " << hnorm
     << " -- matrix is not positive definite (or a principal minor is singular)";
  return os.str();
}

// Applies the step's block reflector to the active trailing columns:
// A physical blocks [1, L) and B physical blocks [step+1, step+L).
void apply_to_trailing(Generator& g, const BlockReflector& bref, index_t step,
                       index_t active_blocks, bool parallel) {
  const index_t m = g.m;
  const index_t trailing = active_blocks - 1;
  if (trailing <= 0) return;
  View a = g.a.block(0, m, m, trailing * m);
  View b = g.b.block(0, (step + 1) * m, m, trailing * m);
  if (!parallel || trailing < 4) {
    bref.apply(a, b);
    return;
  }
  // Chunk the trailing columns across the pool; each chunk is independent.
  auto& pool = util::ThreadPool::global();
  const index_t chunks = std::min<index_t>(trailing, static_cast<index_t>(pool.size()) * 2);
  const index_t per = (trailing + chunks - 1) / chunks;
  pool.parallel_for(0, static_cast<std::size_t>(chunks), [&](std::size_t c) {
    const index_t lo = static_cast<index_t>(c) * per;
    const index_t hi = std::min(trailing, lo + per);
    if (lo >= hi) return;
    bref.apply(a.block(0, lo * m, m, (hi - lo) * m), b.block(0, lo * m, m, (hi - lo) * m));
  });
}

}  // namespace

NotPositiveDefinite::NotPositiveDefinite(index_t step_, index_t column_, double hnorm_)
    : std::runtime_error(breakdown_message(step_, column_, hnorm_)),
      step(step_),
      column(column_),
      hnorm(hnorm_) {}

void schur_step(Generator& g, index_t step, const SchurOptions& opt) {
  const index_t m = g.m;
  const index_t active = g.p - step;  // blocks still in play
  BlockReflector bref(opt.rep, m, g.sig);
  View pivot_p = g.a_block(0);
  View pivot_q = g.b_block(step);
  if (auto breakdown = bref.build(pivot_p, pivot_q, opt.breakdown_tol, opt.inner_block)) {
    throw NotPositiveDefinite(step, breakdown->column, breakdown->hnorm);
  }
  apply_to_trailing(g, bref, step, active, opt.parallel);
}

std::uint64_t block_schur_stream(const toeplitz::BlockToeplitz& t, const SchurOptions& opt,
                                 const RowBlockSink& sink) {
  const toeplitz::BlockToeplitz spec =
      (opt.block_size == 0 || opt.block_size == t.block_size())
          ? t
          : t.with_block_size(opt.block_size);
  util::FlopScope flops;
  Generator g = make_generator_spd(spec);
  const index_t m = g.m, p = g.p;
  sink(0, g.a.view());
  for (index_t i = 1; i < p; ++i) {
    schur_step(g, i, opt);
    sink(i, g.a.block(0, 0, m, (p - i) * m));
  }
  return flops.elapsed();
}

SchurFactor block_schur_factor(const toeplitz::BlockToeplitz& t, const SchurOptions& opt) {
  const index_t n = t.order();
  const index_t ms = (opt.block_size == 0) ? t.block_size() : opt.block_size;
  SchurFactor f;
  f.block_size = ms;
  f.r = Mat(n, n);
  f.flops = block_schur_stream(t, opt, [&](index_t step, CView rows) {
    la::copy(rows, f.r.block(step * ms, step * ms, ms, rows.cols()));
  });
  return f;
}

}  // namespace bst::core
