#include "core/block_reflector.h"

#include <cassert>
#include <cmath>

#include "la/blas.h"
#include "util/flops.h"

namespace bst::core {

const char* to_string(Representation rep) {
  switch (rep) {
    case Representation::AccumulatedU: return "U";
    case Representation::VY1: return "VY1";
    case Representation::VY2: return "VY2";
    case Representation::YTY: return "YTY";
    case Representation::Sequential: return "seq";
  }
  return "?";
}

void scale_rows_wk(View g, const Signature& sig, index_t row_offset, index_t k) {
  if (k % 2 == 0) return;
  for (index_t i = 0; i < g.rows(); ++i) {
    const double w = sig[static_cast<std::size_t>(row_offset + i)];
    if (w == 1.0) continue;
    for (index_t j = 0; j < g.cols(); ++j) g(i, j) = -g(i, j);
  }
}

BlockReflector::BlockReflector(Representation rep, index_t m, Signature sig)
    : rep_(rep), m_(m), sig_(std::move(sig)) {
  assert(static_cast<index_t>(sig_.size()) == 2 * m_);
  refl_.reserve(static_cast<std::size_t>(m_));
  switch (rep_) {
    case Representation::AccumulatedU:
      u_ = la::identity(2 * m_);
      break;
    case Representation::VY1:
    case Representation::VY2:
      v_ = Mat(2 * m_, m_);
      y_ = Mat(2 * m_, m_);
      break;
    case Representation::YTY:
      y_ = Mat(2 * m_, m_);
      t_ = Mat(m_, m_);
      break;
    case Representation::Sequential:
      break;
  }
}

BlockReflector BlockReflector::from_reflectors(Representation rep, index_t m, Signature sig,
                                               const std::vector<Reflector>& reflectors) {
  BlockReflector bref(rep, m, std::move(sig));
  for (const Reflector& r : reflectors) {
    bref.accumulate(r, bref.built_);
    bref.refl_.push_back(r);
    ++bref.built_;
  }
  return bref;
}

std::optional<StepBreakdown> BlockReflector::build(View p, View q, double breakdown_tol,
                                                   index_t inner_block) {
  assert(p.rows() == m_ && p.cols() == m_ && q.rows() == m_ && q.cols() == m_);
  if (inner_block <= 0 || inner_block >= m_ || rep_ == Representation::Sequential) {
    return build_panel(p, q, 0, m_, breakdown_tol, nullptr);
  }
  // Two-level blocking (paper section 6.2): aggregate every `inner_block`
  // reflectors and update the pivot columns to the right of the panel with
  // the level-3 application path.
  for (index_t k0 = 0; k0 < m_; k0 += inner_block) {
    const index_t k1 = std::min(m_, k0 + inner_block);
    BlockReflector panel(rep_, m_, sig_);
    if (auto bd = build_panel(p, q, k0, k1, breakdown_tol, &panel)) return bd;
    if (k1 < m_) {
      panel.apply(p.block(0, k1, m_, m_ - k1), q.block(0, k1, m_, m_ - k1));
    }
    // Finished columns left of the panel only feel the panel's W^kb.
    if (k0 > 0) {
      scale_rows_wk(p.block(0, 0, m_, k0), sig_, 0, k1 - k0);
      // (their lower rows are exactly zero already)
    }
  }
  return std::nullopt;
}

std::optional<StepBreakdown> BlockReflector::build_panel(View p, View q, index_t k0, index_t k1,
                                                         double breakdown_tol,
                                                         BlockReflector* panel_agg) {
  std::vector<double> u(static_cast<std::size_t>(2 * m_));
  // Per-reflector updates stop at the panel edge; columns beyond it are
  // updated by the aggregated panel (or, in single-level mode, k1 == m).
  const index_t cend = (panel_agg != nullptr) ? k1 : m_;
  for (index_t k = k0; k < k1; ++k) {
    // Restricted column: the pivot entry plus the lower block's column k.
    std::fill(u.begin(), u.end(), 0.0);
    u[static_cast<std::size_t>(k)] = p(k, k);
    for (index_t r = 0; r < m_; ++r) u[static_cast<std::size_t>(m_ + r)] = q(r, k);

    auto refl = make_reflector(u, sig_, k, breakdown_tol);
    if (!refl) {
      return StepBreakdown{k, hyperbolic_norm(u, sig_)};
    }
    // Transform the remaining pivot columns (k..cend-1) of [P; Q].
    for (index_t c = k; c < cend; ++c) {
      const Reflector& r = *refl;
      double t = 0.0;
      t += r.x[static_cast<std::size_t>(k)] * p(k, c);
      for (index_t rr = 0; rr < m_; ++rr)
        t += r.x[static_cast<std::size_t>(m_ + rr)] * q(rr, c);
      t *= r.beta;
      // Upper rows: only row k has a nonzero x entry; other upper rows keep
      // their W_jj = sig_j scaling.
      for (index_t rr = 0; rr < m_; ++rr) {
        const double w = sig_[static_cast<std::size_t>(rr)];
        p(rr, c) = w * p(rr, c) + (rr == k ? t * r.x[static_cast<std::size_t>(k)] : 0.0);
      }
      for (index_t rr = 0; rr < m_; ++rr) {
        const double w = sig_[static_cast<std::size_t>(m_ + rr)];
        q(rr, c) = w * q(rr, c) + t * r.x[static_cast<std::size_t>(m_ + rr)];
      }
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>((cend - k)) *
                              static_cast<std::uint64_t>(5 * m_ + 4));
    // Column k is now -sigma e_k + (untouched rows above k); kill roundoff
    // in the eliminated entries.
    p(k, k) = -refl->sigma;
    for (index_t rr = 0; rr < m_; ++rr) q(rr, k) = 0.0;
    // Finished columns of this panel still need this reflector's W scaling
    // (columns of earlier panels are handled at the panel boundary).
    const index_t flip_from = (panel_agg != nullptr) ? k0 : 0;
    for (index_t c = flip_from; c < k; ++c) {
      for (index_t rr = 0; rr < m_; ++rr) {
        const double w = sig_[static_cast<std::size_t>(rr)];
        if (w != 1.0) p(rr, c) = -p(rr, c);
      }
      // Lower rows of columns < k are exactly zero already.
    }

    if (panel_agg != nullptr) {
      panel_agg->accumulate(*refl, k - k0);
      panel_agg->refl_.push_back(*refl);
      ++panel_agg->built_;
    }
    accumulate(*refl, k);
    refl_.push_back(std::move(*refl));
    ++built_;
  }
  return std::nullopt;
}

void BlockReflector::accumulate(const Reflector& r, index_t k) {
  const index_t n = 2 * m_;
  switch (rep_) {
    case Representation::Sequential:
      return;
    case Representation::AccumulatedU: {
      // U := U_{k+1} U = W U + beta x (x^T U).
      std::vector<double> z(static_cast<std::size_t>(n));
      la::gemv(/*trans=*/true, r.beta, u_.view(), r.x.data(), 0.0, z.data());
      for (index_t i = 0; i < n; ++i) {
        const double w = sig_[static_cast<std::size_t>(i)];
        if (w != 1.0) {
          for (index_t j = 0; j < n; ++j) u_(i, j) = -u_(i, j);
        }
      }
      la::ger(1.0, r.x.data(), z.data(), u_.view());
      return;
    }
    case Representation::VY1: {
      // z = beta (x^T U^{(k)}) = beta (x^T W^k) + beta (x^T V_k) Y_k^T.
      std::vector<double> z(static_cast<std::size_t>(n), 0.0);
      for (index_t i = 0; i < n; ++i) {
        double wk = 1.0;
        if (k % 2 == 1) wk = sig_[static_cast<std::size_t>(i)];
        z[static_cast<std::size_t>(i)] = r.beta * wk * r.x[static_cast<std::size_t>(i)];
      }
      if (k > 0) {
        std::vector<double> t(static_cast<std::size_t>(k));
        la::gemv(/*trans=*/true, 1.0, la::CView(v_.view().block(0, 0, n, k)), r.x.data(), 0.0,
                 t.data());
        la::gemv(/*trans=*/false, r.beta, la::CView(y_.view().block(0, 0, n, k)), t.data(), 1.0,
                 z.data());
      }
      // V := [W V_k, x].
      for (index_t c = 0; c < k; ++c) {
        for (index_t i = 0; i < n; ++i) {
          const double w = sig_[static_cast<std::size_t>(i)];
          if (w != 1.0) v_(i, c) = -v_(i, c);
        }
      }
      for (index_t i = 0; i < n; ++i) {
        v_(i, k) = r.x[static_cast<std::size_t>(i)];
        y_(i, k) = z[static_cast<std::size_t>(i)];
      }
      return;
    }
    case Representation::VY2: {
      // z = beta (x^T W^k);  V := [U_{k+1} V_k, x].
      if (k > 0) {
        View vk = v_.block(0, 0, n, k);
        std::vector<double> t(static_cast<std::size_t>(k));
        la::gemv(/*trans=*/true, r.beta, la::CView(vk), r.x.data(), 0.0, t.data());
        for (index_t i = 0; i < n; ++i) {
          const double w = sig_[static_cast<std::size_t>(i)];
          if (w != 1.0) {
            for (index_t c = 0; c < k; ++c) vk(i, c) = -vk(i, c);
          }
        }
        la::ger(1.0, r.x.data(), t.data(), vk);
      }
      for (index_t i = 0; i < n; ++i) {
        double wk = 1.0;
        if (k % 2 == 1) wk = sig_[static_cast<std::size_t>(i)];
        v_(i, k) = r.x[static_cast<std::size_t>(i)];
        y_(i, k) = r.beta * wk * r.x[static_cast<std::size_t>(i)];
      }
      return;
    }
    case Representation::YTY: {
      // a = beta (x^T Y_k T_k), b = beta;  Y := [W Y_k, x].
      if (k > 0) {
        std::vector<double> t2(static_cast<std::size_t>(k));
        la::gemv(/*trans=*/true, 1.0, la::CView(y_.view().block(0, 0, n, k)), r.x.data(), 0.0,
                 t2.data());
        // a^T = beta T_k^T t2 (T_k is the leading k x k lower triangle).
        std::vector<double> a(static_cast<std::size_t>(k), 0.0);
        for (index_t j = 0; j < k; ++j) {
          double s = 0.0;
          for (index_t i = j; i < k; ++i) s += t_(i, j) * t2[static_cast<std::size_t>(i)];
          a[static_cast<std::size_t>(j)] = r.beta * s;
        }
        for (index_t j = 0; j < k; ++j) t_(k, j) = a[static_cast<std::size_t>(j)];
        util::FlopCounter::charge(static_cast<std::uint64_t>(k) * (k + 1));
      }
      t_(k, k) = r.beta;
      for (index_t c = 0; c < k; ++c) {
        for (index_t i = 0; i < n; ++i) {
          const double w = sig_[static_cast<std::size_t>(i)];
          if (w != 1.0) y_(i, c) = -y_(i, c);
        }
      }
      for (index_t i = 0; i < n; ++i) y_(i, k) = r.x[static_cast<std::size_t>(i)];
      return;
    }
  }
}

void BlockReflector::apply(View a, View b) const {
  assert(built_ >= 1 && "apply() before a successful build()");
  assert(a.rows() == m_ && b.rows() == m_ && a.cols() == b.cols());
  if (a.cols() == 0) return;
  switch (rep_) {
    case Representation::AccumulatedU: return apply_accumulated_u(a, b);
    case Representation::VY1:
    case Representation::VY2: return apply_vy(a, b);
    case Representation::YTY: return apply_yty(a, b);
    case Representation::Sequential: return apply_sequential(a, b);
  }
}

void BlockReflector::apply_accumulated_u(View a, View b) const {
  const index_t l = a.cols();
  Mat ta(m_, l), tb(m_, l);
  la::CView u11 = u_.block(0, 0, m_, m_);
  la::CView u12 = u_.block(0, m_, m_, m_);
  la::CView u21 = u_.block(m_, 0, m_, m_);
  la::CView u22 = u_.block(m_, m_, m_, m_);
  la::gemm(la::Op::None, la::Op::None, 1.0, u11, a, 0.0, ta.view());
  la::gemm(la::Op::None, la::Op::None, 1.0, u12, b, 1.0, ta.view());
  la::gemm(la::Op::None, la::Op::None, 1.0, u21, a, 0.0, tb.view());
  la::gemm(la::Op::None, la::Op::None, 1.0, u22, b, 1.0, tb.view());
  la::copy(ta.view(), a);
  la::copy(tb.view(), b);
}

void BlockReflector::apply_vy(View a, View b) const {
  const index_t l = a.cols();
  const index_t r = built_;  // aggregated reflectors (== m for a full step)
  // The upper halves of V and Y carry the sparsity of paper Figs. 3:
  //   VY1: V_up is diagonal (columns are the x vectors, upper part e_k),
  //        Y_up is dense;
  //   VY2: Y_up is diagonal (columns are beta W^k x), V_up is lower
  //        triangular (rows fill in as later reflectors touch them).
  // Exploiting this removes roughly half of the dense work, which is what
  // makes the VY application costs of eqs. 30-31 achievable.
  Mat z(r, l);
  if (rep_ == Representation::VY2) {
    // Z = D_yup A(rows 0..r) + Y_low^T B.
    la::gemm(la::Op::Trans, la::Op::None, 1.0, y_.block(m_, 0, m_, r), b, 0.0, z.view());
    for (index_t k = 0; k < r; ++k) {
      const index_t pk = refl_[static_cast<std::size_t>(k)].pivot;
      const double d = y_(pk, k);
      const double* arow = &a(pk, 0);
      double* zrow = &z(k, 0);
      for (index_t j = 0; j < l; ++j) zrow[j * z.ld()] += d * arow[j * a.ld()];
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(2 * r * l));
  } else {
    la::gemm(la::Op::Trans, la::Op::None, 1.0, y_.block(0, 0, m_, r), a, 0.0, z.view());
    la::gemm(la::Op::Trans, la::Op::None, 1.0, y_.block(m_, 0, m_, r), b, 1.0, z.view());
  }
  // A := W^r A + V_up Z;  B := W^r B + V_low Z.
  scale_rows_wk(a, sig_, 0, r);
  scale_rows_wk(b, sig_, m_, r);
  if (rep_ == Representation::VY1) {
    // V_up is nonzero only at the pivot row of each column (diagonal in
    // the full-step case, shifted for panels).
    for (index_t k = 0; k < r; ++k) {
      const index_t pk = refl_[static_cast<std::size_t>(k)].pivot;
      const double d = v_(pk, k);
      const double* zrow = &z(k, 0);
      double* arow = &a(pk, 0);
      for (index_t j = 0; j < l; ++j) arow[j * a.ld()] += d * zrow[j * z.ld()];
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(2 * r * l));
  } else {
    // V_up's only nonzero rows are the pivot rows, and pivot row of
    // reflector i carries entries in columns <= i (lower triangular after
    // reindexing by pivot order).
    for (index_t j = 0; j < l; ++j) {
      const double* zc = z.view().col(j);
      double* ac = a.col(j);
      for (index_t i = 0; i < r; ++i) {
        const index_t pi = refl_[static_cast<std::size_t>(i)].pivot;
        double s = 0.0;
        for (index_t k = 0; k <= i; ++k) s += v_(pi, k) * zc[k];
        ac[pi] += s;
      }
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(r * (r + 1) * l));
  }
  la::gemm(la::Op::None, la::Op::None, 1.0, v_.block(m_, 0, m_, r), z.view(), 1.0, b);
}

void BlockReflector::apply_yty(View a, View b) const {
  const index_t l = a.cols();
  const index_t r = built_;  // aggregated reflectors (== m for a full step)
  // Sparsity of paper Fig. 4: Y_up is diagonal (columns are the x vectors,
  // never modified by the recurrence) and T is lower triangular.
  // Z = Y^T W^{r-1} [A; B]: fold the W^{r-1} signs into the diagonal /
  // per-row signs.
  // W^{r-1} scales row i of [A;B] by sig_i^(r-1); for odd r-1 fold the
  // signs into a copy of Y_low (and into the diagonal term below).
  Mat z(r, l);
  if ((r - 1) % 2 == 0) {
    la::gemm(la::Op::Trans, la::Op::None, 1.0, y_.block(m_, 0, m_, r), b, 0.0, z.view());
  } else {
    Mat yl(m_, r);
    for (index_t k = 0; k < r; ++k)
      for (index_t i = 0; i < m_; ++i)
        yl(i, k) = y_(m_ + i, k) * sig_[static_cast<std::size_t>(m_ + i)];
    la::gemm(la::Op::Trans, la::Op::None, 1.0, yl.view(), b, 0.0, z.view());
  }
  for (index_t k = 0; k < r; ++k) {
    const index_t pk = refl_[static_cast<std::size_t>(k)].pivot;
    double d = y_(pk, k);
    if ((r - 1) % 2 == 1) d *= sig_[static_cast<std::size_t>(pk)];
    const double* arow = &a(pk, 0);
    double* zrow = &z(k, 0);
    for (index_t j = 0; j < l; ++j) zrow[j * z.ld()] += d * arow[j * a.ld()];
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * r * l));
  // Z2 = T Z with T lower triangular (triangular multiply, half the work).
  Mat z2(r, l);
  for (index_t j = 0; j < l; ++j) {
    const double* zc = z.view().col(j);
    double* oc = z2.view().col(j);
    for (index_t i = 0; i < r; ++i) {
      double s = 0.0;
      for (index_t k = 0; k <= i; ++k) s += t_(i, k) * zc[k];
      oc[i] = s;
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(r * (r + 1) * l));
  scale_rows_wk(a, sig_, 0, r);
  scale_rows_wk(b, sig_, m_, r);
  // A += Y_up Z2 (pivot-row sparse);  B += Y_low Z2 (dense).
  for (index_t k = 0; k < r; ++k) {
    const index_t pk = refl_[static_cast<std::size_t>(k)].pivot;
    const double d = y_(pk, k);
    const double* zrow = &z2(k, 0);
    double* arow = &a(pk, 0);
    for (index_t j = 0; j < l; ++j) arow[j * a.ld()] += d * zrow[j * z2.ld()];
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * r * l));
  la::gemm(la::Op::None, la::Op::None, 1.0, y_.block(m_, 0, m_, r), z2.view(), 1.0, b);
}

void BlockReflector::apply_sequential(View a, View b) const {
  const index_t l = a.cols();
  for (const Reflector& r : refl_) {
    const index_t k = r.pivot;
    for (index_t c = 0; c < l; ++c) {
      double t = r.x[static_cast<std::size_t>(k)] * a(k, c);
      for (index_t rr = 0; rr < m_; ++rr)
        t += r.x[static_cast<std::size_t>(m_ + rr)] * b(rr, c);
      t *= r.beta;
      for (index_t rr = 0; rr < m_; ++rr) {
        const double w = sig_[static_cast<std::size_t>(rr)];
        a(rr, c) = w * a(rr, c) + (rr == k ? t * r.x[static_cast<std::size_t>(k)] : 0.0);
      }
      for (index_t rr = 0; rr < m_; ++rr) {
        const double w = sig_[static_cast<std::size_t>(m_ + rr)];
        b(rr, c) = w * b(rr, c) + t * r.x[static_cast<std::size_t>(m_ + rr)];
      }
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(l) *
                              static_cast<std::uint64_t>(5 * m_ + 4));
  }
}

Mat BlockReflector::dense_u() const {
  Mat u = la::identity(2 * m_);
  for (const Reflector& r : refl_) {
    // U := U_r U = W U + beta x (x^T U).
    const index_t n = 2 * m_;
    std::vector<double> z(static_cast<std::size_t>(n));
    la::gemv(/*trans=*/true, r.beta, u.view(), r.x.data(), 0.0, z.data());
    for (index_t i = 0; i < n; ++i) {
      const double w = sig_[static_cast<std::size_t>(i)];
      if (w != 1.0) {
        for (index_t j = 0; j < n; ++j) u(i, j) = -u(i, j);
      }
    }
    la::ger(1.0, r.x.data(), z.data(), u.view());
  }
  return u;
}

}  // namespace bst::core
