// The block Schur factorization of an SPD block Toeplitz matrix
// (paper sections 2, 5, 6): T = R^T R with R upper triangular, computed in
// O(m n^2) flops on the 2m x mp generator.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>

#include "core/block_reflector.h"
#include "core/generator.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::core {

/// Options controlling the factorization.
struct SchurOptions {
  /// Aggregation scheme for each step's reflector product.
  Representation rep = Representation::VY2;
  /// Working block size m_s; 0 keeps the structural block size m.  Values
  /// larger than m forego part of the Toeplitz structure for better BLAS3
  /// shapes (paper section 6.5); must be a multiple of m dividing n.
  index_t block_size = 0;
  /// Relative breakdown tolerance on the hyperbolic norm of a pivot column.
  double breakdown_tol = 1e-13;
  /// Two-level blocking (paper section 6.2): aggregate the step's
  /// reflectors every `inner_block` columns and update the rest of the
  /// pivot block with the level-3 path.  0 = single-level.
  index_t inner_block = 0;
  /// Parallelize the reflector application across column chunks using the
  /// global thread pool (shared-memory mode, paper section 9).
  bool parallel = false;
};

/// Thrown when a pivot column has non-positive hyperbolic norm: the matrix
/// is not positive definite (or a principal minor is numerically singular).
class NotPositiveDefinite : public std::runtime_error {
 public:
  NotPositiveDefinite(index_t step, index_t column, double hnorm);
  index_t step, column;
  double hnorm;
};

/// Receives the factor row-block by row-block.  `step` is the block row
/// index (0-based); `rows` is the m_s x (p - step) * m_s strip that forms
/// R(step block row, step.. block columns).
using RowBlockSink = std::function<void(index_t step, CView rows)>;

/// Dense result of the factorization.
struct SchurFactor {
  Mat r;                   // n x n upper triangular, T = R^T R
  index_t block_size = 0;  // working block size m_s
  std::uint64_t flops = 0; // flops charged during the factorization
};

/// Factors T = R^T R, streaming the block rows of R into `sink`.
/// Throws NotPositiveDefinite on breakdown.  Returns the flop count.
std::uint64_t block_schur_stream(const toeplitz::BlockToeplitz& t, const SchurOptions& opt,
                                 const RowBlockSink& sink);

/// Factors T = R^T R and returns R densely.
SchurFactor block_schur_factor(const toeplitz::BlockToeplitz& t, const SchurOptions& opt = {});

/// One in-place factorization step on a prepared generator: builds the
/// reflector from (A block 0, B block `step`) and applies it to the
/// remaining active columns.  Exposed for the distributed driver, which
/// performs the same step on distributed storage.  Throws on breakdown.
void schur_step(Generator& g, index_t step, const SchurOptions& opt);

}  // namespace bst::core
