#include "baseline/classic_schur.h"

#include <cmath>
#include <stdexcept>

#include "la/blas.h"
#include "util/flops.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::baseline {
namespace {
const util::PhaseId kClassicSchurPhase = util::Tracer::phase("classic_schur");
}  // namespace

la::Mat classic_schur_factor(const std::vector<double>& first_row) {
  util::TraceSpan span(kClassicSchurPhase);
  const la::index_t n = static_cast<la::index_t>(first_row.size());
  if (n == 0) return la::Mat();
  const double t0 = first_row[0];
  if (t0 <= 0.0) throw std::runtime_error("classic_schur: T(0,0) <= 0");
  const double l0 = std::sqrt(t0);

  // Generator rows: a = [t0 t1 ... t_{n-1}] / l0, b = a with b[0] = 0.
  std::vector<double> a(first_row.size()), b(first_row.size());
  for (std::size_t i = 0; i < first_row.size(); ++i) a[i] = first_row[i] / l0;
  b = a;
  b[0] = 0.0;

  la::Mat r(n, n);
  for (la::index_t j = 0; j < n; ++j) r(0, j) = a[static_cast<std::size_t>(j)];

  for (la::index_t i = 1; i < n; ++i) {
    // Virtual shift: a's active entries are a[0 .. n-1-i] holding logical
    // columns i..n-1; b's active entries are b[i .. n-1].
    const double p = a[0];
    const double q = b[static_cast<std::size_t>(i)];
    const double h = p * p - q * q;
    if (h <= 0.0) throw std::runtime_error("classic_schur: matrix is not positive definite");
    // Hyperbolic rotation eliminating q against p:
    //   [c -s; -s c] with c = p / sqrt(h), s = q / sqrt(h)
    // is W-unitary for W = diag(1, -1) and maps (p, q) to (sqrt(h), 0).
    const double rho = std::sqrt(h);
    const double c = p / rho, s = q / rho;
    const la::index_t len = n - i;  // active columns
    a[0] = rho;
    b[static_cast<std::size_t>(i)] = 0.0;
    for (la::index_t j = 1; j < len; ++j) {
      const double av = a[static_cast<std::size_t>(j)];
      const double bv = b[static_cast<std::size_t>(i + j)];
      a[static_cast<std::size_t>(j)] = c * av - s * bv;
      b[static_cast<std::size_t>(i + j)] = c * bv - s * av;
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(6 * (len - 1) + 8));
    if (util::Tracer::enabled()) {
      util::Tracer::record_step(i, h, rho);
      util::Watchdog::check_step(i, h, 0.0, 0.0);
      util::Watchdog::check_reflection(i, q / p);  // |q/p| -> 1 is breakdown
    }
    for (la::index_t j = 0; j < len; ++j) r(i, i + j) = a[static_cast<std::size_t>(j)];
  }
  return r;
}

std::vector<double> classic_schur_solve(const std::vector<double>& first_row,
                                        const std::vector<double>& b) {
  la::Mat r = classic_schur_factor(first_row);
  std::vector<double> x = b;
  la::trsv(la::Uplo::Upper, la::Op::Trans, la::Diag::NonUnit, r.view(), x.data());
  la::trsv(la::Uplo::Upper, la::Op::None, la::Diag::NonUnit, r.view(), x.data());
  return x;
}

}  // namespace bst::baseline
