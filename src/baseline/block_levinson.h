// Block Levinson solver for symmetric block Toeplitz systems (baseline).
//
// Generalizes the Levinson recursion to block Toeplitz matrices
// T(l, k) = C_{k-l} (C_{-d} = C_d^T) via a two-sided bordering: alongside
// the solution x_k of T_k x = b it maintains the auxiliary block columns
//   y_k = T_k^{-1} [C_k; ...; C_1]      (bottom bordering)
//   z_k = T_k^{-1} [C_1^T; ...; C_k^T]  (top bordering)
// which extend each other in O(k m^3) per step -- O(n^2 m) total, the
// block analogue of Levinson's O(n^2).  Requires every leading principal
// block minor (and its Schur complement) to be nonsingular, exactly like
// the scalar recursion; throws std::runtime_error otherwise.
#pragma once

#include <vector>

#include "toeplitz/block_toeplitz.h"

namespace bst::baseline {

/// Solves T x = b for a symmetric block Toeplitz T.
std::vector<double> block_levinson_solve(const toeplitz::BlockToeplitz& t,
                                         const std::vector<double>& b);

}  // namespace bst::baseline
