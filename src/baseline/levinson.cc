#include "baseline/levinson.h"

#include <cmath>
#include <stdexcept>

#include "util/flops.h"
#include "util/trace.h"
#include "util/watchdog.h"

namespace bst::baseline {
namespace {
const util::PhaseId kLevinsonPhase = util::Tracer::phase("levinson");
}  // namespace

std::vector<double> levinson_solve(const std::vector<double>& first_row,
                                   const std::vector<double>& b) {
  util::TraceSpan span(kLevinsonPhase);
  const std::size_t n = first_row.size();
  if (b.size() != n) throw std::invalid_argument("levinson_solve: size mismatch");
  if (n == 0) return {};
  const double t0 = first_row[0];
  if (t0 == 0.0) throw std::runtime_error("levinson_solve: singular leading minor");
  // Normalize to unit diagonal (Golub & Van Loan, Algorithm 4.7.2).
  std::vector<double> r(n), bn(n);
  for (std::size_t i = 0; i < n; ++i) {
    r[i] = first_row[i] / t0;
    bn[i] = b[i] / t0;
  }
  std::vector<double> x(n, 0.0), y(n, 0.0);
  x[0] = bn[0];
  if (n == 1) return x;
  y[0] = -r[1];
  double beta = 1.0;
  double alpha = -r[1];
  for (std::size_t k = 1; k < n; ++k) {
    beta *= (1.0 - alpha * alpha);
    if (beta == 0.0 || !std::isfinite(beta)) {
      throw std::runtime_error("levinson_solve: singular leading minor");
    }
    double mu = bn[k];
    for (std::size_t i = 0; i < k; ++i) mu -= r[i + 1] * x[k - 1 - i];
    mu /= beta;
    for (std::size_t i = 0; i < k; ++i) x[i] += mu * y[k - 1 - i];
    x[k] = mu;
    if (k < n - 1) {
      double a = r[k + 1];
      for (std::size_t i = 0; i < k; ++i) a += r[i + 1] * y[k - 1 - i];
      alpha = -a / beta;
      // z = y + alpha * reverse(y): in-place with a two-pointer sweep.
      for (std::size_t i = 0, j = k - 1; i < j; ++i, --j) {
        const double yi = y[i], yj = y[j];
        y[i] = yi + alpha * yj;
        y[j] = yj + alpha * yi;
      }
      if (k % 2 == 1) y[k / 2] *= (1.0 + alpha);
      y[k] = alpha;
    }
    util::FlopCounter::charge(8 * k + 10);
    if (util::Tracer::enabled()) {
      // beta plays the hyperbolic norm's role here (it collapses toward 0 as
      // a leading minor goes singular); alpha is the reflection coefficient.
      const std::int64_t step = static_cast<std::int64_t>(k);
      util::Tracer::record_step(step, beta, std::fabs(alpha));
      util::Watchdog::check_step(step, beta, 0.0, 0.0);
      util::Watchdog::check_reflection(step, alpha);
    }
  }
  return x;
}

DurbinResult durbin(const std::vector<double>& r) {
  const std::size_t n = r.size();
  DurbinResult res;
  if (n <= 1) {
    res.beta = 1.0;
    return res;
  }
  std::vector<double>& y = res.y;
  y.assign(n - 1, 0.0);
  y[0] = -r[1] / r[0];
  res.reflection.push_back(y[0]);
  double beta = r[0] * (1.0 - y[0] * y[0]);
  for (std::size_t k = 1; k + 1 < n; ++k) {
    double a = r[k + 1];
    for (std::size_t i = 0; i < k; ++i) a += r[i + 1] * y[k - 1 - i];
    if (beta == 0.0) throw std::runtime_error("durbin: singular minor");
    const double alpha = -a / beta;
    res.reflection.push_back(alpha);
    for (std::size_t i = 0, j = k - 1; i < j; ++i, --j) {
      const double yi = y[i], yj = y[j];
      y[i] = yi + alpha * yj;
      y[j] = yj + alpha * yi;
    }
    if (k % 2 == 1) y[k / 2] *= (1.0 + alpha);
    y[k] = alpha;
    beta *= (1.0 - alpha * alpha);
  }
  res.beta = beta;
  return res;
}

}  // namespace bst::baseline
