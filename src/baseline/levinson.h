// Levinson recursion for symmetric Toeplitz systems (baseline, O(n^2)).
//
// The classical alternative to Schur-type algorithms: solves T x = b
// directly from the first row of T without forming a factorization.
// Requires all leading principal minors to be nonsingular.
#pragma once

#include <vector>

namespace bst::baseline {

/// Solves T x = b for a symmetric Toeplitz T given by its first row.
/// Throws std::runtime_error when a leading principal minor is
/// (numerically) singular.
std::vector<double> levinson_solve(const std::vector<double>& first_row,
                                   const std::vector<double>& b);

/// Durbin's algorithm: solves the Yule-Walker system T_{n-1} y = -(r_1..r_{n-1})
/// for a symmetric Toeplitz with unit diagonal; returns y and the final
/// prediction-error variance beta (both useful in the LPC example).
struct DurbinResult {
  std::vector<double> y;
  double beta = 0.0;
  std::vector<double> reflection;  // the n-1 reflection (PARCOR) coefficients
};
DurbinResult durbin(const std::vector<double>& r);

}  // namespace bst::baseline
