// Classical (unblocked) Schur algorithm of Cybenko & Berry for a scalar
// symmetric positive definite Toeplitz matrix.
//
// Serves as an independently-written cross-check for the block algorithm
// (to which it must agree up to roundoff for m = m_s = 1) and as the
// baseline "point algorithm" in the performance comparisons.
#pragma once

#include "la/matrix.h"

#include <vector>

namespace bst::baseline {

/// Factors the SPD Toeplitz matrix with the given first row into T = R^T R;
/// returns the dense upper triangular R.  Throws std::runtime_error when a
/// pivot loses positivity.
la::Mat classic_schur_factor(const std::vector<double>& first_row);

/// Solves T x = b through the classical Schur factorization.
std::vector<double> classic_schur_solve(const std::vector<double>& first_row,
                                        const std::vector<double>& b);

}  // namespace bst::baseline
