// Dense O(n^3) baseline solvers, structure-oblivious.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace bst::baseline {

/// Solves A x = b for dense SPD A via blocked Cholesky.
std::vector<double> dense_spd_solve(la::CView a, const std::vector<double>& b);

/// Solves A x = b for dense symmetric A via unpivoted LDL^T (requires
/// nonsingular leading minors).
std::vector<double> dense_sym_solve(la::CView a, const std::vector<double>& b);

}  // namespace bst::baseline
