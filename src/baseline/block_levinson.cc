#include "baseline/block_levinson.h"

#include <stdexcept>

#include "la/blas.h"
#include "la/ldlt.h"
#include "util/trace.h"

namespace bst::baseline {
namespace {

const util::PhaseId kBlockLevinsonPhase = util::Tracer::phase("block_levinson");

using la::CView;
using la::index_t;
using la::Mat;
using la::View;

// Solves S X = B for a small dense symmetric S (m x m) via unpivoted LDL^T;
// the Schur complements of a nonsingular-minor block Toeplitz matrix are
// symmetric and nonsingular.
class SmallSolver {
 public:
  explicit SmallSolver(CView s) : l_(s.rows(), s.cols()) {
    la::copy(s, l_.view());
    if (!la::ldlt_unpivoted(l_.view(), d_)) {
      throw std::runtime_error("block_levinson: singular leading principal minor");
    }
  }

  // In-place solve for each column of x.
  void solve(View x) const {
    const index_t n = l_.rows();
    for (index_t j = 0; j < x.cols(); ++j) {
      double* col = x.col(j);
      la::trsv(la::Uplo::Lower, la::Op::None, la::Diag::Unit, l_.view(), col);
      for (index_t i = 0; i < n; ++i) col[i] /= d_[static_cast<std::size_t>(i)];
      la::trsv(la::Uplo::Lower, la::Op::Trans, la::Diag::Unit, l_.view(), col);
    }
  }

 private:
  Mat l_;
  std::vector<double> d_;
};

}  // namespace

std::vector<double> block_levinson_solve(const toeplitz::BlockToeplitz& t,
                                         const std::vector<double>& b) {
  util::TraceSpan span(kBlockLevinsonPhase);
  const index_t m = t.block_size(), p = t.num_blocks();
  if (static_cast<index_t>(b.size()) != t.order()) {
    throw std::invalid_argument("block_levinson_solve: rhs size mismatch");
  }
  // C_d = block (1, d+1) of the first block row.
  auto c = [&](index_t d) { return t.block(d + 1); };

  // State after step k (1-based): x (k*m), y and z (k*m x m).
  Mat y(m * p, m), z(m * p, m);
  std::vector<double> x(static_cast<std::size_t>(m * p), 0.0);

  // k = 1: T_1 = C_0.
  {
    SmallSolver c0(c(0));
    if (p > 1) {
      la::copy(c(1), y.block(0, 0, m, m));  // y_1 = C_0^{-1} C_1
      Mat c1t = la::transpose(c(1));
      la::copy(c1t.view(), z.block(0, 0, m, m));  // z_1 = C_0^{-1} C_1^T
      c0.solve(y.block(0, 0, m, m));
      c0.solve(z.block(0, 0, m, m));
    }
    for (index_t i = 0; i < m; ++i) x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)];
    View xv(x.data(), m, 1, m);
    c0.solve(xv);
  }

  Mat sk_tv(m, m), row_v(m, m), rhs(m, m), eta(m, m), zeta(m, m);
  std::vector<double> xi(static_cast<std::size_t>(m));
  for (index_t k = 1; k < p; ++k) {
    // s_k^T v = sum_j C_{k+1-j}^T v(j)   (v has k block rows), here 1-based
    // j = 1..k maps to lag k-j+1... using 0-based block j: lag k - j.
    auto st_dot_mat = [&](const Mat& v, View out) {
      la::set_zero(out);
      for (index_t j = 0; j < k; ++j) {
        la::gemm(la::Op::Trans, la::Op::None, 1.0, c(k - j),
                 v.block(j * m, 0, m, m), 1.0, out);
      }
    };
    auto st_dot_vec = [&](const std::vector<double>& v, double* out) {
      for (index_t i = 0; i < m; ++i) out[i] = 0.0;
      for (index_t j = 0; j < k; ++j) {
        la::gemv(/*trans=*/true, 1.0, c(k - j), v.data() + j * m, 1.0, out);
      }
    };
    // row . v = sum_j C_{j+1} v(j)  (top-border row of lags 1..k).
    auto row_dot_mat = [&](const Mat& v, View out) {
      la::set_zero(out);
      for (index_t j = 0; j < k; ++j) {
        la::gemm(la::Op::None, la::Op::None, 1.0, c(j + 1), v.block(j * m, 0, m, m), 1.0,
                 out);
      }
    };

    // Schur complements of the two borderings.
    Mat s_bottom(m, m), s_top(m, m);
    st_dot_mat(y, sk_tv.view());
    for (index_t jj = 0; jj < m; ++jj)
      for (index_t ii = 0; ii < m; ++ii) s_bottom(ii, jj) = c(0)(ii, jj) - sk_tv(ii, jj);
    row_dot_mat(z, row_v.view());
    for (index_t jj = 0; jj < m; ++jj)
      for (index_t ii = 0; ii < m; ++ii) s_top(ii, jj) = c(0)(ii, jj) - row_v(ii, jj);
    // Symmetrize against roundoff before factoring.
    for (index_t jj = 0; jj < m; ++jj)
      for (index_t ii = 0; ii < jj; ++ii) {
        s_bottom(ii, jj) = s_bottom(jj, ii) = 0.5 * (s_bottom(ii, jj) + s_bottom(jj, ii));
        s_top(ii, jj) = s_top(jj, ii) = 0.5 * (s_top(ii, jj) + s_top(jj, ii));
      }
    SmallSolver bottom(s_bottom.view());
    SmallSolver top(s_top.view());

    // --- solution update: xi = S_b^{-1} (b_{k+1} - s_k^T x_k) -------------
    st_dot_vec(x, xi.data());
    for (index_t i = 0; i < m; ++i) {
      xi[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(k * m + i)] -
                                        xi[static_cast<std::size_t>(i)];
    }
    {
      View xiv(xi.data(), m, 1, m);
      bottom.solve(xiv);
    }
    // x(1:k) -= y_k xi;  x(k+1) = xi.
    for (index_t j = 0; j < k; ++j) {
      la::gemv(/*trans=*/false, -1.0, y.block(j * m, 0, m, m), xi.data(), 1.0,
               x.data() + j * m);
    }
    for (index_t i = 0; i < m; ++i) x[static_cast<std::size_t>(k * m + i)] =
        xi[static_cast<std::size_t>(i)];
    if (k + 1 == p) break;  // no need to extend the auxiliaries further

    // --- z update (bottom bordering) --------------------------------------
    // zeta = S_b^{-1} (C_{k+1}^T - s_k^T z_k);  z(1:k) -= y_k zeta.
    st_dot_mat(z, rhs.view());
    for (index_t jj = 0; jj < m; ++jj)
      for (index_t ii = 0; ii < m; ++ii) zeta(ii, jj) = c(k + 1)(jj, ii) - rhs(ii, jj);
    bottom.solve(zeta.view());

    // --- y update (top bordering) ------------------------------------------
    // eta = S_t^{-1} (C_{k+1} - row . y_k);  y'' = y_k - z_k eta, then the
    // new y is [eta; y''] (blocks shift down by one).
    row_dot_mat(y, rhs.view());
    for (index_t jj = 0; jj < m; ++jj)
      for (index_t ii = 0; ii < m; ++ii) eta(ii, jj) = c(k + 1)(ii, jj) - rhs(ii, jj);
    top.solve(eta.view());

    // Apply both updates using the OLD y_k/z_k consistently.
    Mat ynew(m * p, m);
    for (index_t j = 0; j < k; ++j) {
      View dst = ynew.block((j + 1) * m, 0, m, m);
      la::copy(y.block(j * m, 0, m, m), dst);
      la::gemm(la::Op::None, la::Op::None, -1.0, z.block(j * m, 0, m, m), eta.view(), 1.0,
               dst);
    }
    la::copy(eta.view(), ynew.block(0, 0, m, m));

    for (index_t j = 0; j < k; ++j) {
      View dst = z.block(j * m, 0, m, m);
      la::gemm(la::Op::None, la::Op::None, -1.0, y.block(j * m, 0, m, m), zeta.view(), 1.0,
               dst);
    }
    la::copy(zeta.view(), z.block(k * m, 0, m, m));
    la::copy(ynew.block(0, 0, (k + 1) * m, m), y.block(0, 0, (k + 1) * m, m));
  }
  return x;
}

}  // namespace bst::baseline
