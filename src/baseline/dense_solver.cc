#include "baseline/dense_solver.h"

#include <stdexcept>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/ldlt.h"
#include "util/trace.h"

namespace bst::baseline {
namespace {
// The factor phase is this file's own; the solves reuse the solver-wide
// "triangular_solve" phase so dense and Schur-based paths compare directly.
const util::PhaseId kDenseFactorPhase = util::Tracer::phase("dense_factor");
const util::PhaseId kTrsvPhase = util::Tracer::phase("triangular_solve");
}  // namespace

std::vector<double> dense_spd_solve(la::CView a, const std::vector<double>& b) {
  const la::index_t n = a.rows();
  la::Mat l(n, n);
  la::copy(a, l.view());
  {
    util::TraceSpan span(kDenseFactorPhase);
    if (!la::cholesky_lower(l.view())) {
      throw std::runtime_error("dense_spd_solve: matrix is not positive definite");
    }
  }
  std::vector<double> x = b;
  util::TraceSpan span(kTrsvPhase);
  la::trsv(la::Uplo::Lower, la::Op::None, la::Diag::NonUnit, l.view(), x.data());
  la::trsv(la::Uplo::Lower, la::Op::Trans, la::Diag::NonUnit, l.view(), x.data());
  return x;
}

std::vector<double> dense_sym_solve(la::CView a, const std::vector<double>& b) {
  const la::index_t n = a.rows();
  la::Mat l(n, n);
  la::copy(a, l.view());
  std::vector<double> d;
  {
    util::TraceSpan span(kDenseFactorPhase);
    if (!la::ldlt_unpivoted(l.view(), d)) {
      throw std::runtime_error("dense_sym_solve: singular leading principal minor");
    }
  }
  std::vector<double> x = b;
  util::TraceSpan span(kTrsvPhase);
  la::trsv(la::Uplo::Lower, la::Op::None, la::Diag::Unit, l.view(), x.data());
  for (la::index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] /= d[static_cast<std::size_t>(i)];
  la::trsv(la::Uplo::Lower, la::Op::Trans, la::Diag::Unit, l.view(), x.data());
  return x;
}

}  // namespace bst::baseline
