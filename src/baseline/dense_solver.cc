#include "baseline/dense_solver.h"

#include <stdexcept>

#include "la/blas.h"
#include "la/cholesky.h"
#include "la/ldlt.h"

namespace bst::baseline {

std::vector<double> dense_spd_solve(la::CView a, const std::vector<double>& b) {
  const la::index_t n = a.rows();
  la::Mat l(n, n);
  la::copy(a, l.view());
  if (!la::cholesky_lower(l.view())) {
    throw std::runtime_error("dense_spd_solve: matrix is not positive definite");
  }
  std::vector<double> x = b;
  la::trsv(la::Uplo::Lower, la::Op::None, la::Diag::NonUnit, l.view(), x.data());
  la::trsv(la::Uplo::Lower, la::Op::Trans, la::Diag::NonUnit, l.view(), x.data());
  return x;
}

std::vector<double> dense_sym_solve(la::CView a, const std::vector<double>& b) {
  const la::index_t n = a.rows();
  la::Mat l(n, n);
  la::copy(a, l.view());
  std::vector<double> d;
  if (!la::ldlt_unpivoted(l.view(), d)) {
    throw std::runtime_error("dense_sym_solve: singular leading principal minor");
  }
  std::vector<double> x = b;
  la::trsv(la::Uplo::Lower, la::Op::None, la::Diag::Unit, l.view(), x.data());
  for (la::index_t i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] /= d[static_cast<std::size_t>(i)];
  la::trsv(la::Uplo::Lower, la::Op::Trans, la::Diag::Unit, l.view(), x.data());
  return x;
}

}  // namespace bst::baseline
