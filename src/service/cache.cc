#include "service/cache.h"

#include <cstdio>
#include <utility>

#include "util/fault.h"
#include "util/ledger.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace bst::service {
namespace {

const util::PhaseId kFactorPhase = util::Tracer::phase("service_factor");
const util::CtrId kHits = util::Metrics::counter("service_cache_hits");
const util::CtrId kMisses = util::Metrics::counter("service_cache_misses");
const util::CtrId kEvictions = util::Metrics::counter("service_cache_evictions");
// Live cache occupancy for the telemetry exporter: set under the cache
// lock wherever resident_ changes.
const util::GaugeId kResident = util::Metrics::gauge("service_cache_resident_bytes");

// FNV-1a over raw bytes (same constants as util::fnv1a_hex, which takes a
// string; the first block row is hashed as its in-memory doubles).
std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t factor_bytes(const core::SchurFactor& f) {
  const auto n = static_cast<std::size_t>(f.r.rows());
  return n * static_cast<std::size_t>(f.r.cols()) * sizeof(double) + sizeof(core::SchurFactor);
}

}  // namespace

std::string problem_key(const toeplitz::BlockToeplitz& t, const core::SchurOptions& opt) {
  const la::CView row = t.first_row();
  std::uint64_t h = 14695981039346656037ull;
  const la::index_t m = t.block_size(), p = t.num_blocks();
  h = fnv1a_bytes(h, &m, sizeof m);
  h = fnv1a_bytes(h, &p, sizeof p);
  for (la::index_t j = 0; j < row.cols(); ++j) {
    h = fnv1a_bytes(h, row.col(j), static_cast<std::size_t>(row.rows()) * sizeof(double));
  }
  char row_hex[20];
  std::snprintf(row_hex, sizeof row_hex, "%016llx", static_cast<unsigned long long>(h));

  // Same mechanism as the ledger's params_hash: FNV-1a of a compact params
  // object (util/ledger.h), here with the matrix content folded in.
  util::Json params = util::Json::object();
  params.set("m", util::Json::number(static_cast<std::int64_t>(m)));
  params.set("p", util::Json::number(static_cast<std::int64_t>(p)));
  params.set("ms", util::Json::number(static_cast<std::int64_t>(opt.block_size)));
  params.set("rep", util::Json::number(static_cast<std::int64_t>(opt.rep)));
  params.set("inner", util::Json::number(static_cast<std::int64_t>(opt.inner_block)));
  params.set("tol", util::Json::number(opt.breakdown_tol));
  params.set("row", util::Json::string(row_hex));
  return util::fnv1a_hex(params.dump_compact());
}

FactorCache::FactorCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

FactorPtr FactorCache::get_or_factor(const std::string& key, const Factory& factory,
                                     bool* was_hit) {
  std::unique_lock lock(mu_);
  if (auto it = map_.find(key); it != map_.end()) {
    ++hits_;
    util::Metrics::add(kHits);
    if (was_hit != nullptr) *was_hit = true;
    if (it->second.factor != nullptr) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.factor;
    }
    // Another thread is factoring this key right now: wait on its result
    // (counted as a hit -- this caller pays a wait, not a factorization).
    std::shared_future<FactorPtr> pending = it->second.pending;
    lock.unlock();
    return pending.get();
  }
  ++misses_;
  util::Metrics::add(kMisses);
  if (was_hit != nullptr) *was_hit = false;
  std::promise<FactorPtr> promise;
  {
    Entry building;
    building.pending = promise.get_future().share();
    map_.emplace(key, std::move(building));
  }
  lock.unlock();

  FactorPtr ptr;
  try {
    util::TraceSpan span(kFactorPhase);
    util::Fault::fire("cache_fill");
    ptr = std::make_shared<const core::SchurFactor>(factory());
  } catch (...) {
    std::exception_ptr err = std::current_exception();
    promise.set_exception(err);
    lock.lock();
    map_.erase(key);
    std::rethrow_exception(err);
  }
  promise.set_value(ptr);

  lock.lock();
  Entry& entry = map_[key];
  entry.factor = ptr;
  entry.bytes = factor_bytes(*ptr);
  entry.pending = {};
  lru_.push_front(key);
  entry.lru = lru_.begin();
  resident_ += entry.bytes;
  evict_locked(key);
  util::Metrics::gauge_set(kResident, static_cast<std::int64_t>(resident_));
  return ptr;
}

void FactorCache::evict_locked(const std::string& keep_key) {
  while (resident_ > max_bytes_ && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep_key) break;  // never evict the entry just inserted
    auto it = map_.find(victim);
    resident_ -= it->second.bytes;
    ++evictions_;
    util::Metrics::add(kEvictions);
    map_.erase(it);
    lru_.pop_back();
  }
  util::Metrics::gauge_set(kResident, static_cast<std::int64_t>(resident_));
}

bool FactorCache::contains(const std::string& key) const {
  std::lock_guard lock(mu_);
  auto it = map_.find(key);
  return it != map_.end() && it->second.factor != nullptr;
}

CacheStats FactorCache::stats() const {
  std::lock_guard lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_;
  s.entries = lru_.size();
  return s;
}

void FactorCache::clear() {
  std::lock_guard lock(mu_);
  for (const std::string& key : lru_) map_.erase(key);
  lru_.clear();
  resident_ = 0;
  util::Metrics::gauge_set(kResident, 0);
}

}  // namespace bst::service
