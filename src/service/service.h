// bst::service::Service -- the batched factor-once/solve-many solver
// service (docs/SERVICE.md).
//
// Production traffic for this solver is *many* solves: GP-regression
// sweeps and per-user multichannel predictors fire thousands of small
// block Toeplitz systems, most sharing a handful of matrices.  The Service
// layers three things over core::block_schur_factor + the level-3 solve
// path to serve that shape of load:
//
//   * a FactorCache (service/cache.h): factors are cached by the ledger's
//     params hash and reused across requests -- factor once, solve many;
//   * blocked multi-RHS solves: batches of right-hand sides go through
//     core::solve_rtdr_panels, which drives the packed la/blas3 trsm over
//     fixed-width RHS panels (padded with zero columns to a whole panel,
//     so every trsm sees the same shape and the answer bits do not depend
//     on how requests happened to batch);
//   * an async submission path: submit() enqueues onto a bounded admission
//     queue (blocking when full -- backpressure; try_submit() rejects
//     instead) and a dispatcher thread coalesces same-key requests into
//     one factor lookup + one blocked solve.  Panel solves fan out across
//     util::ThreadPool.
//
// Determinism: for a fixed ServiceOptions (in particular rhs_panel),
// concurrent submit()s return solutions bitwise identical to the serial
// solve() path at any thread count and any batching outcome -- each output
// column depends only on its own input column, and the fixed panel shape
// pins the kernels' shape crossover (tests/test_service.cc).
//
// Scope: the Service serves the SPD fast path.  A matrix that is not
// positive definite fails the factorization; the error propagates through
// the returned future (or throws from the synchronous calls).  Indefinite
// traffic belongs on core::toeplitz_solve.
//
// Observability: hits/misses/evictions/admissions land in util::Metrics
// counters; batch sizes and request latencies record unconditionally into
// histograms so the live telemetry exporter (util/telemetry.h) sees QPS and
// tail latency without a profiled run.  Live state mirrors into gauges
// (service_queue_depth, service_inflight, service_backlog_age_ms,
// service_cache_resident_bytes).  Every request carries a monotone id
// minted at admission; its queue-wait / cache-lookup / solve split comes
// back in the SolveResult, and (while tracing) the first trace_requests
// requests additionally emit "req:<id>" flight-recorder tracks whose span
// `step` field encodes cache hit (1) vs miss (0).  Requests slower than
// slow_ms log one structured stderr line and bump service_slow_requests;
// watchdog warnings fired while a request was being served come back in
// SolveResult::warnings and the `watchdog_warnings` counter.
// stats_json() returns the "service" report section bench_service emits
// and bst_report pretty-prints.
//
// Environment knobs (all overridable via ServiceOptions::from_env):
//   BST_SERVICE_CACHE_BYTES  factor-cache budget in bytes
//   BST_SERVICE_QUEUE        admission queue capacity (requests)
//   BST_SERVICE_BATCH        max same-key requests coalesced per dispatch
//   BST_SERVICE_PANEL        RHS panel width of the blocked solves
//   BST_SERVICE_NOCACHE      "1" disables the factor cache (baseline mode)
//   BST_SERVICE_SLOW_MS      slow-request log threshold in ms (0 = off)
//   BST_SERVICE_TRACE_REQS   max requests that get "req:<id>" trace tracks
//   BST_SERVICE_REFINE       iterative-refinement sweeps per solve (0 = off)
//
// Refinement (BST_SERVICE_REFINE / ServiceOptions::refine_steps): every
// solve -- sync, batched, or dispatched -- is followed by that many sweeps
// of  R = B - T X;  solve R panels;  X += dX, with the residuals computed
// through the cached block-circulant FFT embedding (toeplitz/fft.h), so a
// k-column batch pays O(k m^2 P log P) per sweep instead of k dense
// matvecs.  The multipliers are cached per problem key alongside the
// factor cache.  Requests report the route as SolveResult::solver_path
// ("schur" or "schur+refine") plus the sweeps applied.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/schur.h"
#include "service/cache.h"
#include "toeplitz/block_toeplitz.h"
#include "toeplitz/fft.h"
#include "util/report.h"

namespace bst::service {

using la::index_t;

/// Service configuration (see the header comment for the env knobs).
struct ServiceOptions {
  core::SchurOptions schur;            // factorization knobs (m_s, rep, ...)
  std::size_t cache_bytes = 256ull << 20;  // factor-cache budget
  std::size_t queue_capacity = 4096;   // bounded admission queue
  index_t max_batch = 256;             // same-key requests per dispatch
  index_t rhs_panel = 32;              // RHS panel width (fixed trsm shape)
  bool cache_enabled = true;
  bool parallel_panels = true;         // spread panels across the ThreadPool
  double slow_ms = 100.0;              // slow-request log threshold (0 = off)
  std::uint64_t trace_requests = 32;   // "req:<id>" tracks minted while tracing
  int refine_steps = 0;                // FFT-residual refinement sweeps (0 = off)

  /// Applies BST_SERVICE_* environment overrides on top of `base`.
  static ServiceOptions from_env(ServiceOptions base);
  static ServiceOptions from_env() { return from_env(ServiceOptions{}); }
};

/// Per-request outcome.
struct SolveResult {
  std::vector<double> x;
  bool cache_hit = false;         // factor came from the cache
  std::uint64_t factor_flops = 0; // flops of the (possibly cached) factor
  index_t batch_cols = 1;         // requests coalesced into the same solve
  std::uint64_t done_ns = 0;      // TraceClock stamp at completion
  std::uint64_t req_id = 0;       // monotone id minted at admission
  std::uint64_t queue_ns = 0;     // admission-to-dispatch wait
  std::uint64_t factor_ns = 0;    // cache lookup + (on miss) factorization
  std::uint64_t solve_ns = 0;     // panel solve + scatter
  std::uint64_t warnings = 0;     // watchdog warnings fired while serving it
  int refine_steps = 0;           // FFT-residual sweeps applied to this solve
  std::string solver_path = "schur";  // "schur" or "schur+refine"
};

/// Copied-out service counters (cache + queue + batching).
struct ServiceStats {
  CacheStats cache;
  std::uint64_t submitted = 0;  // requests admitted (sync calls included)
  std::uint64_t rejected = 0;   // try_submit refusals on a full queue
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;    // dispatches (each = 1 factor lookup)
  std::uint64_t max_batch = 0;  // largest coalesced batch
  std::uint64_t queue_peak = 0; // high-water mark of the admission queue
  std::uint64_t slow = 0;       // requests past the slow_ms threshold
  std::uint64_t refine_sweeps = 0;  // FFT-residual sweeps executed

  [[nodiscard]] double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(completed) / static_cast<double>(batches);
  }
};

class Service {
 public:
  explicit Service(ServiceOptions opt = ServiceOptions::from_env());
  /// Drains the queue (outstanding futures complete), then joins.
  ~Service();
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Synchronous solve of T x = b through the cache.  Throws
  /// core::NotPositiveDefinite (and std::invalid_argument on a size
  /// mismatch) like the underlying factorization.
  SolveResult solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b);

  /// Synchronous blocked multi-RHS solve: returns X with T X = B
  /// (B is order x k, each column an independent right-hand side).
  la::Mat solve_many(const toeplitz::BlockToeplitz& t, la::CView b);

  /// Asynchronous solve: enqueues and returns a future.  Blocks while the
  /// admission queue is full (backpressure); throws std::runtime_error
  /// when the service is shutting down.
  std::future<SolveResult> submit(const toeplitz::BlockToeplitz& t, std::vector<double> b);

  /// Non-blocking admission: false (and no enqueue) when the queue is
  /// full.  On success `out` receives the future.
  bool try_submit(const toeplitz::BlockToeplitz& t, std::vector<double> b,
                  std::future<SolveResult>& out);

  /// Blocks until every admitted request has completed.
  void drain();

  [[nodiscard]] ServiceStats stats() const;

  /// The "service" perf-report section (attach via PerfReport::set_extra):
  /// cache/queue/batch counters plus the effective options.
  [[nodiscard]] util::Json stats_json() const;

  [[nodiscard]] const ServiceOptions& options() const noexcept { return opt_; }

 private:
  struct Request {
    std::string key;
    toeplitz::BlockToeplitz t;
    std::vector<double> b;
    std::promise<SolveResult> done;
    std::uint64_t submit_ns = 0;
    std::uint64_t id = 0;  // minted at admission (next_req_id_)
    int cb_slot = -1;      // crashbox active-request slot (-1 = table full)
  };

  /// Factor via the cache (or directly when caching is off).
  FactorPtr factor_for(const toeplitz::BlockToeplitz& t, const std::string& key, bool* hit);

  /// Solves the padded batch in place: fixed-width panels over the pool.
  void solve_batch(const core::SchurFactor& f, la::View b_padded);

  /// solve_batch plus opt_.refine_steps batched FFT-residual sweeps (the
  /// plain solve when refinement is off; needs `t`/`key` for the cached
  /// block-circulant multiplier).
  void solve_batch_refined(const toeplitz::BlockToeplitz& t, const std::string& key,
                           const core::SchurFactor& f, la::View b_inout);

  /// Cached block-circulant embedding for the FFT residuals, keyed like
  /// the factor cache.
  std::shared_ptr<const toeplitz::BlockCirculantMultiplier> multiplier_for(
      const toeplitz::BlockToeplitz& t, const std::string& key);

  void dispatcher_loop();

  ServiceOptions opt_;
  FactorCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_nonempty_;
  std::condition_variable cv_notfull_;
  std::condition_variable cv_drained_;
  std::deque<Request> queue_;
  std::size_t inflight_ = 0;  // requests popped but not yet completed
  bool stop_ = false;
  std::uint64_t submitted_ = 0, rejected_ = 0, completed_ = 0;
  std::uint64_t batches_ = 0, max_batch_ = 0, queue_peak_ = 0, slow_ = 0;
  std::atomic<std::uint64_t> next_req_id_{1};
  std::atomic<std::uint64_t> refine_sweeps_{0};

  // Cached FFT embeddings for refinement residuals (small: spectra are
  // O(m^2 P) complex values per matrix; bounded by eviction below).
  mutable std::mutex fftmul_mu_;
  std::unordered_map<std::string, std::shared_ptr<const toeplitz::BlockCirculantMultiplier>>
      fftmul_;

  std::thread dispatcher_;  // started last, joined first
};

}  // namespace bst::service
