// Factorization cache for the batched solver service (docs/SERVICE.md).
//
// The paper's block Schur factorization pays off precisely when one
// factorization is reused across many right-hand sides: the factor costs
// O(m_s n^2) flops, the marginal solve O(n^2) -- and in the solve-many
// regime the factor is *the* expensive object (same structural point as
// Kanhouche's inverse-factorization papers, PAPERS.md).  This cache holds
// recently used factors keyed by the same FNV-1a params hash the perf
// ledger stamps on every run (util/ledger.h), so a cache key and a ledger
// line describing the same problem agree on what "the same problem" means:
// the hash covers the first block row's bytes and every numerically
// relevant SchurOptions knob.
//
// Eviction is LRU by *resident bytes* (an n x n factor is n^2 doubles; a
// thousand cached n = 512 systems is 2 GiB -- entry counts are the wrong
// budget).  Hits, misses and evictions land in util::Metrics counters
// (service_cache_{hits,misses,evictions}) so any profiled run reports
// them, plus per-instance CacheStats for programmatic use.
//
// Thread safety: all methods may be called concurrently.  Concurrent
// misses on one key factor once -- the first caller runs the factory, the
// rest block on a shared future (no thundering herd).  Evicted factors
// stay alive while any solve still holds the shared_ptr.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/schur.h"
#include "toeplitz/block_toeplitz.h"

namespace bst::service {

using FactorPtr = std::shared_ptr<const core::SchurFactor>;

/// Canonical cache key of a problem: the FNV-1a hex hash (util::fnv1a_hex,
/// the ledger's params_hash function) of a compact params object covering
/// the matrix content (first block row bytes, m, p) and the numerically
/// relevant factorization options (m_s, rep, inner_block, breakdown_tol).
std::string problem_key(const toeplitz::BlockToeplitz& t, const core::SchurOptions& opt);

/// Copied-out cache counters.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// LRU-by-bytes cache of Schur factors.
class FactorCache {
 public:
  /// `max_bytes` caps the resident factor storage; the most recently
  /// inserted entry is never evicted, so a single factor larger than the
  /// budget still caches (and evicts everything else).
  explicit FactorCache(std::size_t max_bytes);

  using Factory = std::function<core::SchurFactor()>;

  /// Returns the cached factor for `key`, or runs `factory` (outside the
  /// lock), caches and returns its result.  `was_hit`, when non-null, is
  /// set to whether the factor was already present (or being built by
  /// another thread).  A throwing factory propagates to every waiter and
  /// leaves no entry behind.
  FactorPtr get_or_factor(const std::string& key, const Factory& factory,
                          bool* was_hit = nullptr);

  /// True when `key` is resident (no LRU touch, no counter update).
  [[nodiscard]] bool contains(const std::string& key) const;

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// Drops every resident entry (in-flight factorizations finish normally).
  void clear();

 private:
  struct Entry {
    FactorPtr factor;                      // null while the factory runs
    std::shared_future<FactorPtr> pending; // valid while the factory runs
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru;  // valid once factor != null
  };

  void evict_locked(const std::string& keep_key);

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // most recently used at the front
  std::size_t resident_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace bst::service
