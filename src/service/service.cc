#include "service/service.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/solve.h"
#include "util/crashbox.h"
#include "util/fault.h"
#include "util/flight_recorder.h"
#include "util/flops.h"
#include "util/metrics.h"
#include "util/prof.h"
#include "util/stallguard.h"
#include "util/trace.h"

namespace bst::service {
namespace {

const util::PhaseId kSolvePhase = util::Tracer::phase("service_solve");
const util::PhaseId kRefinePhase = util::Tracer::phase("service_refine");
const util::CtrId kSubmitted = util::Metrics::counter("service_submitted");
const util::CtrId kRefineSweeps = util::Metrics::counter("service_refine_sweeps");
const util::CtrId kRejected = util::Metrics::counter("service_rejected");
const util::CtrId kCompleted = util::Metrics::counter("service_completed");
const util::CtrId kBatches = util::Metrics::counter("service_batches");
const util::CtrId kSlow = util::Metrics::counter("service_slow_requests");
// Watchdog::warn bumps this unconditionally; deltas around a request's
// factor+solve attribute warnings to the request (util/watchdog.cc).
const util::CtrId kWarnings = util::Metrics::counter("watchdog_warnings");
const util::GaugeId kQueueDepth = util::Metrics::gauge("service_queue_depth");
const util::GaugeId kInflight = util::Metrics::gauge("service_inflight");
const util::GaugeId kBacklogAge = util::Metrics::gauge("service_backlog_age_ms");
// Recorded unconditionally (not tracer-gated): the telemetry exporter's
// QPS/p50/p99 come from these, and a live service is exactly the case
// where no profiled run is watching.
const util::HistId kBatchHist = util::Metrics::histogram("service_batch_cols");
const util::HistId kLatencyHist = util::Metrics::histogram("service_request_ns");

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return fallback;
  return v;
}

double env_f64(const char* name, double fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) return fallback;
  return v;
}

// Emits the request's three-phase timeline as a tiny "req:<id>" track.
// The span `step` field carries cache hit (1) vs miss (0), so a trace
// shows hit and miss requests apart at a glance.  Only the first
// trace_requests ids get tracks: each track's ring is permanent, so an
// unbounded service must not mint one per request.
void emit_request_track(const ServiceOptions& opt, std::uint64_t id, bool hit,
                        std::uint64_t submit_ns, std::uint64_t pop_ns,
                        std::uint64_t factor_done_ns, std::uint64_t done_ns,
                        std::uint64_t cols) {
  if (!util::Tracer::enabled() || !util::FlightRecorder::enabled()) return;
  if (id > opt.trace_requests) return;
  static const util::PhaseId kQueueWait = util::Tracer::phase("req_queue_wait");
  static const util::PhaseId kCacheLookup = util::Tracer::phase("req_cache_lookup");
  static const util::PhaseId kReqSolve = util::Tracer::phase("req_solve");
  const std::uint32_t tid =
      util::FlightRecorder::track("req:" + std::to_string(id), 8);
  const std::int64_t step = hit ? 1 : 0;
  util::FlightRecorder::virtual_span(tid, kQueueWait, step, submit_ns, pop_ns, 0, -1);
  util::FlightRecorder::virtual_span(tid, kCacheLookup, step, pop_ns, factor_done_ns, 0, -1);
  util::FlightRecorder::virtual_span(tid, kReqSolve, step, factor_done_ns, done_ns, cols, -1);
}

// Decimated past the first few: an overload that makes one request slow
// makes thousands slow, and a log storm is its own outage.  The
// service_slow_requests counter stays exact; stderr gets the first 10
// lines, then every 100th with the suppressed count.
void log_slow(std::uint64_t id, const SolveResult& res) {
  static std::atomic<std::uint64_t> logged{0};
  const std::uint64_t seq = logged.fetch_add(1, std::memory_order_relaxed);
  if (seq >= 10 && seq % 100 != 0) return;
  const double total_ms =
      static_cast<double>(res.queue_ns + res.factor_ns + res.solve_ns) * 1e-6;
  std::fprintf(stderr,
               "[bst_service] slow request id=%llu total_ms=%.2f queue_ms=%.2f "
               "factor_ms=%.2f solve_ms=%.2f hit=%d batch=%lld warnings=%llu%s\n",
               static_cast<unsigned long long>(id), total_ms,
               static_cast<double>(res.queue_ns) * 1e-6,
               static_cast<double>(res.factor_ns) * 1e-6,
               static_cast<double>(res.solve_ns) * 1e-6, res.cache_hit ? 1 : 0,
               static_cast<long long>(res.batch_cols),
               static_cast<unsigned long long>(res.warnings),
               seq >= 10 ? " (slow log decimated to 1/100)" : "");
}

// Exception-safe crashbox request-table entry for the synchronous solve
// paths (the async path threads Request::cb_slot through the queue instead,
// because the slot outlives the submitting frame).
struct CrashboxReq {
  int slot;
  CrashboxReq(std::uint64_t id, util::ReqPhase p)
      : slot(util::Crashbox::request_begin(id, p)) {}
  CrashboxReq(const CrashboxReq&) = delete;
  CrashboxReq& operator=(const CrashboxReq&) = delete;
  void phase(util::ReqPhase p) const { util::Crashbox::request_phase(slot, p); }
  ~CrashboxReq() { util::Crashbox::request_end(slot); }
};

// The dispatcher thread reads opt_ from construction on, so every clamp
// must happen before it starts (dispatcher_ is the last member).
ServiceOptions sanitize(ServiceOptions o) {
  o.max_batch = std::max<index_t>(1, o.max_batch);
  o.rhs_panel = std::max<index_t>(1, o.rhs_panel);
  o.queue_capacity = std::max<std::size_t>(1, o.queue_capacity);
  o.refine_steps = std::max(0, o.refine_steps);
  return o;
}

}  // namespace

ServiceOptions ServiceOptions::from_env(ServiceOptions base) {
  base.cache_bytes =
      static_cast<std::size_t>(env_u64("BST_SERVICE_CACHE_BYTES", base.cache_bytes));
  base.queue_capacity = std::max<std::size_t>(
      1, static_cast<std::size_t>(env_u64("BST_SERVICE_QUEUE", base.queue_capacity)));
  base.max_batch = std::max<index_t>(
      1, static_cast<index_t>(env_u64("BST_SERVICE_BATCH",
                                      static_cast<std::uint64_t>(base.max_batch))));
  base.rhs_panel = std::max<index_t>(
      1, static_cast<index_t>(env_u64("BST_SERVICE_PANEL",
                                      static_cast<std::uint64_t>(base.rhs_panel))));
  if (const char* s = std::getenv("BST_SERVICE_NOCACHE"); s != nullptr && *s != '\0') {
    base.cache_enabled = (s[0] == '0' && s[1] == '\0');
  }
  base.slow_ms = env_f64("BST_SERVICE_SLOW_MS", base.slow_ms);
  base.trace_requests = env_u64("BST_SERVICE_TRACE_REQS", base.trace_requests);
  base.refine_steps = std::max(
      0, static_cast<int>(env_u64("BST_SERVICE_REFINE",
                                  static_cast<std::uint64_t>(std::max(0, base.refine_steps)))));
  return base;
}

Service::Service(ServiceOptions opt)
    : opt_(sanitize(opt)), cache_(opt_.cache_bytes), dispatcher_([this] { dispatcher_loop(); }) {
  // Env-gated no-ops unless BST_CRASH_DIR / BST_STALL_MS are set: a live
  // service is exactly the process whose last moments are worth keeping.
  util::Crashbox::install();
  util::StallGuard::start_from_env();
}

Service::~Service() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_nonempty_.notify_all();
  cv_notfull_.notify_all();
  dispatcher_.join();
}

FactorPtr Service::factor_for(const toeplitz::BlockToeplitz& t, const std::string& key,
                              bool* hit) {
  auto factory = [&] { return core::block_schur_factor(t, opt_.schur); };
  if (opt_.cache_enabled) return cache_.get_or_factor(key, factory, hit);
  if (hit != nullptr) *hit = false;
  return std::make_shared<const core::SchurFactor>(factory());
}

void Service::solve_batch(const core::SchurFactor& f, la::View b_padded) {
  util::TraceSpan span(kSolvePhase);
  core::solve_rtdr_panels(f.r.view(), nullptr, b_padded, opt_.rhs_panel, opt_.parallel_panels);
}

std::shared_ptr<const toeplitz::BlockCirculantMultiplier> Service::multiplier_for(
    const toeplitz::BlockToeplitz& t, const std::string& key) {
  std::lock_guard lock(fftmul_mu_);
  if (auto it = fftmul_.find(key); it != fftmul_.end()) return it->second;
  // Cheap bound: each entry holds m^2 spectra of O(2P) complex values, tiny
  // next to the factors -- a simple clear-on-overflow keeps it honest for
  // services that churn through many distinct matrices.
  if (fftmul_.size() >= 16) fftmul_.clear();
  auto mul = std::make_shared<const toeplitz::BlockCirculantMultiplier>(t);
  fftmul_.emplace(key, mul);
  return mul;
}

void Service::solve_batch_refined(const toeplitz::BlockToeplitz& t, const std::string& key,
                                  const core::SchurFactor& f, la::View b_inout) {
  if (opt_.refine_steps <= 0) {
    solve_batch(f, b_inout);
    return;
  }
  const index_t n = b_inout.rows(), cols = b_inout.cols();
  const auto mul = multiplier_for(t, key);
  // Keep B: after the in-place solve b_inout holds X, and each sweep needs
  // the original right-hand sides for R = B - T X.  Zero-padded columns
  // have zero residuals, so refining the full padded width is exact.
  la::Mat b0(n, cols);
  la::copy(b_inout, b0.view());
  solve_batch(f, b_inout);
  la::Mat r(n, cols);
  for (int s = 0; s < opt_.refine_steps; ++s) {
    util::TraceSpan span(kRefinePhase);
    mul->residual(b0.view(), b_inout, r.view());
    solve_batch(f, r.view());  // r becomes the correction dX
    for (index_t j = 0; j < cols; ++j) {
      const double* dj = r.data() + j * r.ld();
      double* xj = b_inout.data() + j * b_inout.ld();
      for (index_t i = 0; i < n; ++i) xj[i] += dj[i];
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(cols));
  }
  refine_sweeps_.fetch_add(static_cast<std::uint64_t>(opt_.refine_steps),
                          std::memory_order_relaxed);
  util::Metrics::add(kRefineSweeps, static_cast<std::uint64_t>(opt_.refine_steps));
}

SolveResult Service::solve(const toeplitz::BlockToeplitz& t, const std::vector<double>& b) {
  const index_t n = t.order();
  if (static_cast<index_t>(b.size()) != n) {
    throw std::invalid_argument("Service::solve: rhs length does not match the matrix order");
  }
  {
    std::lock_guard lock(mu_);
    ++submitted_;
  }
  util::Metrics::add(kSubmitted);
  const std::uint64_t id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t_submit = util::TraceClock::now_ns();
  const std::uint64_t warn0 = util::Metrics::counter_value(kWarnings);
  const CrashboxReq cb(id, util::ReqPhase::kFactor);
  bool hit = false;
  const FactorPtr f = factor_for(t, problem_key(t, opt_.schur), &hit);
  const std::uint64_t t_factor = util::TraceClock::now_ns();
  cb.phase(util::ReqPhase::kSolve);
  // One fixed-width panel, zero-padded: the same trsm shape every request
  // sees, so the answer bits match the batched path exactly.
  la::Mat pad(n, opt_.rhs_panel);
  std::copy(b.begin(), b.end(), pad.data());
  solve_batch_refined(t, problem_key(t, opt_.schur), *f, pad.view());
  SolveResult res;
  res.x.assign(pad.data(), pad.data() + n);
  res.cache_hit = hit;
  res.factor_flops = f->flops;
  res.batch_cols = 1;
  res.refine_steps = opt_.refine_steps;
  res.solver_path = opt_.refine_steps > 0 ? "schur+refine" : "schur";
  res.done_ns = util::TraceClock::now_ns();
  res.req_id = id;
  res.queue_ns = 0;
  res.factor_ns = t_factor - t_submit;
  res.solve_ns = res.done_ns - t_factor;
  res.warnings = util::Metrics::counter_value(kWarnings) - warn0;
  util::Metrics::record(kBatchHist, 1);
  util::Metrics::record(kLatencyHist, res.done_ns - t_submit);
  emit_request_track(opt_, id, hit, t_submit, t_submit, t_factor, res.done_ns, 1);
  const bool slow = opt_.slow_ms > 0.0 &&
                    static_cast<double>(res.done_ns - t_submit) > opt_.slow_ms * 1e6;
  {
    std::lock_guard lock(mu_);
    ++completed_;
    ++batches_;
    max_batch_ = std::max<std::uint64_t>(max_batch_, 1);
    if (slow) ++slow_;
  }
  util::Metrics::add(kCompleted);
  util::Metrics::add(kBatches);
  if (slow) {
    util::Metrics::add(kSlow);
    log_slow(id, res);
  }
  return res;
}

la::Mat Service::solve_many(const toeplitz::BlockToeplitz& t, la::CView b) {
  const index_t n = t.order(), k = b.cols();
  if (b.rows() != n) {
    throw std::invalid_argument("Service::solve_many: rhs rows do not match the matrix order");
  }
  {
    std::lock_guard lock(mu_);
    submitted_ += static_cast<std::uint64_t>(k);
  }
  util::Metrics::add(kSubmitted, static_cast<std::uint64_t>(k));
  const std::uint64_t id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t t_submit = util::TraceClock::now_ns();
  const std::uint64_t warn0 = util::Metrics::counter_value(kWarnings);
  const CrashboxReq cb(id, util::ReqPhase::kFactor);
  bool hit = false;
  const FactorPtr f = factor_for(t, problem_key(t, opt_.schur), &hit);
  const std::uint64_t t_factor = util::TraceClock::now_ns();
  cb.phase(util::ReqPhase::kSolve);
  const index_t panel = opt_.rhs_panel;
  const index_t padded = ((k + panel - 1) / panel) * panel;
  la::Mat pad(n, padded);
  la::copy(b, pad.block(0, 0, n, k));
  solve_batch_refined(t, problem_key(t, opt_.schur), *f, pad.view());
  la::Mat x(n, k);
  la::copy(pad.block(0, 0, n, k), x.view());
  const std::uint64_t done_ns = util::TraceClock::now_ns();
  util::Metrics::record(kBatchHist, static_cast<std::uint64_t>(k));
  util::Metrics::record(kLatencyHist, done_ns - t_submit);
  emit_request_track(opt_, id, hit, t_submit, t_submit, t_factor, done_ns,
                     static_cast<std::uint64_t>(k));
  const std::uint64_t warn_delta = util::Metrics::counter_value(kWarnings) - warn0;
  const bool slow = opt_.slow_ms > 0.0 &&
                    static_cast<double>(done_ns - t_submit) > opt_.slow_ms * 1e6;
  {
    std::lock_guard lock(mu_);
    completed_ += static_cast<std::uint64_t>(k);
    ++batches_;
    max_batch_ = std::max(max_batch_, static_cast<std::uint64_t>(k));
    if (slow) ++slow_;
  }
  util::Metrics::add(kCompleted, static_cast<std::uint64_t>(k));
  util::Metrics::add(kBatches);
  if (slow) {
    util::Metrics::add(kSlow);
    SolveResult probe;  // reuse the structured log line for the batch call
    probe.cache_hit = hit;
    probe.batch_cols = k;
    probe.factor_ns = t_factor - t_submit;
    probe.solve_ns = done_ns - t_factor;
    probe.warnings = warn_delta;
    log_slow(id, probe);
  }
  return x;
}

std::future<SolveResult> Service::submit(const toeplitz::BlockToeplitz& t,
                                         std::vector<double> b) {
  if (static_cast<index_t>(b.size()) != t.order()) {
    throw std::invalid_argument("Service::submit: rhs length does not match the matrix order");
  }
  util::Fault::fire("admission");
  Request req;
  req.key = problem_key(t, opt_.schur);
  req.t = t;
  req.b = std::move(b);
  req.submit_ns = util::TraceClock::now_ns();
  req.id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  std::future<SolveResult> fut = req.done.get_future();
  {
    std::unique_lock lock(mu_);
    cv_notfull_.wait(lock, [&] { return stop_ || queue_.size() < opt_.queue_capacity; });
    if (stop_) throw std::runtime_error("Service::submit: service is shutting down");
    // Registered only once admission is certain; the dispatcher owns the
    // slot from here (phase transitions + release).
    req.cb_slot = util::Crashbox::request_begin(req.id, util::ReqPhase::kQueued);
    queue_.push_back(std::move(req));
    ++submitted_;
    queue_peak_ = std::max(queue_peak_, static_cast<std::uint64_t>(queue_.size()));
    util::Metrics::gauge_set(kQueueDepth, static_cast<std::int64_t>(queue_.size()));
  }
  util::Metrics::add(kSubmitted);
  cv_nonempty_.notify_one();
  return fut;
}

bool Service::try_submit(const toeplitz::BlockToeplitz& t, std::vector<double> b,
                         std::future<SolveResult>& out) {
  if (static_cast<index_t>(b.size()) != t.order()) {
    throw std::invalid_argument("Service::try_submit: rhs length does not match the matrix order");
  }
  util::Fault::fire("admission");
  Request req;
  req.key = problem_key(t, opt_.schur);
  req.t = t;
  req.b = std::move(b);
  req.submit_ns = util::TraceClock::now_ns();
  req.id = next_req_id_.fetch_add(1, std::memory_order_relaxed);
  std::future<SolveResult> fut = req.done.get_future();
  {
    std::unique_lock lock(mu_);
    if (stop_ || queue_.size() >= opt_.queue_capacity) {
      ++rejected_;
      util::Metrics::add(kRejected);
      return false;
    }
    req.cb_slot = util::Crashbox::request_begin(req.id, util::ReqPhase::kQueued);
    queue_.push_back(std::move(req));
    ++submitted_;
    queue_peak_ = std::max(queue_peak_, static_cast<std::uint64_t>(queue_.size()));
    util::Metrics::gauge_set(kQueueDepth, static_cast<std::int64_t>(queue_.size()));
  }
  util::Metrics::add(kSubmitted);
  cv_nonempty_.notify_one();
  out = std::move(fut);
  return true;
}

void Service::drain() {
  std::unique_lock lock(mu_);
  cv_drained_.wait(lock, [&] { return queue_.empty() && inflight_ == 0; });
}

void Service::dispatcher_loop() {
  util::StallGuard::register_self("svc:dispatcher");
  for (;;) {
    std::vector<Request> batch;
    {
      util::StallGuard::idle();  // parked on the condvar: not a stall
      std::unique_lock lock(mu_);
      cv_nonempty_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      util::StallGuard::beat();
      if (queue_.empty()) {
        if (stop_) return;  // drained shutdown: exit only once the queue is empty
        continue;
      }
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalesce same-key requests into one factor lookup + blocked solve.
      for (auto it = queue_.begin();
           it != queue_.end() && static_cast<index_t>(batch.size()) < opt_.max_batch;) {
        if (it->key == batch.front().key) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      inflight_ += batch.size();
      util::Metrics::gauge_set(kQueueDepth, static_cast<std::int64_t>(queue_.size()));
      util::Metrics::gauge_set(kInflight, static_cast<std::int64_t>(inflight_));
      // Age of the oldest request still waiting: a growing value with a
      // non-empty queue means the dispatcher is falling behind.
      const std::int64_t backlog_ms =
          queue_.empty() ? 0
                         : static_cast<std::int64_t>(
                               (util::TraceClock::now_ns() - queue_.front().submit_ns) /
                               1000000u);
      util::Metrics::gauge_set(kBacklogAge, backlog_ms);
    }
    cv_notfull_.notify_all();

    util::Fault::fire("dispatch");
    const auto k = static_cast<index_t>(batch.size());
    const std::uint64_t pop_ns = util::TraceClock::now_ns();
    // Profiler sample attribution: tag this thread's samples with the id
    // leading the batch (the same id the crashbox request table carries),
    // so flamegraphs fold per `req:<id>` like the flight-recorder tracks.
    util::Prof::set_request(batch.front().id);
    std::uint64_t slow_count = 0;
    try {
      const std::uint64_t warn0 = util::Metrics::counter_value(kWarnings);
      for (const Request& req : batch) {
        util::Crashbox::request_phase(req.cb_slot, util::ReqPhase::kFactor);
      }
      bool hit = false;
      const FactorPtr f = factor_for(batch.front().t, batch.front().key, &hit);
      const std::uint64_t factor_done_ns = util::TraceClock::now_ns();
      for (const Request& req : batch) {
        util::Crashbox::request_phase(req.cb_slot, util::ReqPhase::kSolve);
      }
      const index_t n = batch.front().t.order();
      const index_t panel = opt_.rhs_panel;
      const index_t padded = ((k + panel - 1) / panel) * panel;
      la::Mat pad(n, padded);
      for (index_t j = 0; j < k; ++j) {
        const std::vector<double>& b = batch[static_cast<std::size_t>(j)].b;
        std::copy(b.begin(), b.end(), pad.data() + j * n);
      }
      solve_batch_refined(batch.front().t, batch.front().key, *f, pad.view());
      const std::uint64_t done_ns = util::TraceClock::now_ns();
      const std::uint64_t warn_delta = util::Metrics::counter_value(kWarnings) - warn0;
      util::Metrics::record(kBatchHist, static_cast<std::uint64_t>(k));
      for (index_t j = 0; j < k; ++j) {
        Request& req = batch[static_cast<std::size_t>(j)];
        SolveResult res;
        const double* xj = pad.data() + j * n;
        res.x.assign(xj, xj + n);
        res.cache_hit = hit;
        res.factor_flops = f->flops;
        res.batch_cols = k;
        res.done_ns = done_ns;
        res.req_id = req.id;
        res.queue_ns = pop_ns - req.submit_ns;
        res.factor_ns = factor_done_ns - pop_ns;
        res.solve_ns = done_ns - factor_done_ns;
        res.warnings = warn_delta;
        res.refine_steps = opt_.refine_steps;
        res.solver_path = opt_.refine_steps > 0 ? "schur+refine" : "schur";
        util::Metrics::record(kLatencyHist, done_ns - req.submit_ns);
        emit_request_track(opt_, req.id, hit, req.submit_ns, pop_ns, factor_done_ns,
                           done_ns, static_cast<std::uint64_t>(k));
        const bool slow =
            opt_.slow_ms > 0.0 &&
            static_cast<double>(done_ns - req.submit_ns) > opt_.slow_ms * 1e6;
        if (slow) {
          ++slow_count;
          util::Metrics::add(kSlow);
          log_slow(req.id, res);
        }
        req.done.set_value(std::move(res));
        util::Crashbox::request_end(req.cb_slot);
      }
    } catch (...) {
      // Factorization failure (e.g. NotPositiveDefinite) fails the whole
      // batch -- every request is the same problem.
      std::exception_ptr err = std::current_exception();
      for (Request& req : batch) {
        req.done.set_exception(err);
        util::Crashbox::request_end(req.cb_slot);
      }
    }
    util::Prof::set_request(0);

    {
      std::lock_guard lock(mu_);
      inflight_ -= batch.size();
      completed_ += batch.size();
      ++batches_;
      max_batch_ = std::max(max_batch_, static_cast<std::uint64_t>(batch.size()));
      slow_ += slow_count;
      util::Metrics::gauge_set(kInflight, static_cast<std::int64_t>(inflight_));
    }
    util::Metrics::add(kCompleted, static_cast<std::uint64_t>(batch.size()));
    util::Metrics::add(kBatches);
    cv_drained_.notify_all();
  }
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.cache = cache_.stats();
  std::lock_guard lock(mu_);
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.batches = batches_;
  s.max_batch = max_batch_;
  s.queue_peak = queue_peak_;
  s.slow = slow_;
  s.refine_sweeps = refine_sweeps_.load(std::memory_order_relaxed);
  return s;
}

util::Json Service::stats_json() const {
  const ServiceStats s = stats();
  util::Json cache = util::Json::object();
  cache.set("hits", util::Json::number(s.cache.hits));
  cache.set("misses", util::Json::number(s.cache.misses));
  cache.set("evictions", util::Json::number(s.cache.evictions));
  cache.set("resident_bytes", util::Json::number(static_cast<std::uint64_t>(s.cache.resident_bytes)));
  cache.set("entries", util::Json::number(static_cast<std::uint64_t>(s.cache.entries)));
  cache.set("max_bytes", util::Json::number(static_cast<std::uint64_t>(cache_.max_bytes())));
  cache.set("hit_rate", util::Json::number(s.cache.hit_rate()));
  cache.set("enabled", util::Json::boolean(opt_.cache_enabled));
  util::Json queue = util::Json::object();
  queue.set("capacity", util::Json::number(static_cast<std::uint64_t>(opt_.queue_capacity)));
  queue.set("peak", util::Json::number(s.queue_peak));
  queue.set("submitted", util::Json::number(s.submitted));
  queue.set("rejected", util::Json::number(s.rejected));
  queue.set("completed", util::Json::number(s.completed));
  queue.set("slow", util::Json::number(s.slow));
  queue.set("slow_ms", util::Json::number(opt_.slow_ms));
  util::Json batch = util::Json::object();
  batch.set("batches", util::Json::number(s.batches));
  batch.set("max_batch", util::Json::number(s.max_batch));
  batch.set("mean_batch", util::Json::number(s.mean_batch()));
  batch.set("max_batch_limit", util::Json::number(static_cast<std::uint64_t>(opt_.max_batch)));
  batch.set("rhs_panel", util::Json::number(static_cast<std::uint64_t>(opt_.rhs_panel)));
  util::Json refine = util::Json::object();
  refine.set("steps", util::Json::number(static_cast<std::uint64_t>(opt_.refine_steps)));
  refine.set("sweeps", util::Json::number(s.refine_sweeps));
  util::Json root = util::Json::object();
  root.set("cache", std::move(cache));
  root.set("queue", std::move(queue));
  root.set("batch", std::move(batch));
  root.set("refine", std::move(refine));
  return root;
}

}  // namespace bst::service
