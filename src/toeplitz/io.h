// Plain-text I/O for block Toeplitz problems -- the file format consumed
// by the bst_solve command line tool and useful for test fixtures.
//
// Matrix file format (whitespace/line-break insensitive, '#' comments):
//   bst-toeplitz <m> <p>
//   <m * m * p numbers>        # the first block row, column-major per block
// Vector file format:
//   bst-vector <n>
//   <n numbers>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "toeplitz/block_toeplitz.h"

namespace bst::toeplitz {

/// Parses a block Toeplitz description.  Throws std::runtime_error with a
/// line-oriented message on malformed input.
BlockToeplitz read_block_toeplitz(std::istream& in);
BlockToeplitz read_block_toeplitz_file(const std::string& path);

/// Writes the spec in the same format (round-trips exactly in text form).
void write_block_toeplitz(std::ostream& out, const BlockToeplitz& t);
void write_block_toeplitz_file(const std::string& path, const BlockToeplitz& t);

/// Vector I/O.
std::vector<double> read_vector(std::istream& in);
std::vector<double> read_vector_file(const std::string& path);
void write_vector(std::ostream& out, const std::vector<double>& v);
void write_vector_file(const std::string& path, const std::vector<double>& v);

}  // namespace bst::toeplitz
