// Matrix-vector products with symmetric block Toeplitz matrices.
//
// Iterative refinement (paper section 8) needs residuals r = b - T x against
// the *exact* structured matrix.  Two evaluators are provided:
//   * Direct:  block-wise gemv, O(p^2 m^2) per product, no setup cost.
//   * Fft:     block-circulant embedding (toeplitz/fft.h), O(m^2 P log P)
//              per product after O(m^2 P log P) setup; the spectra are
//              cached once per operator and shared by every residual,
//              including the batched multi-RHS overloads.
#pragma once

#include <memory>
#include <vector>

#include "toeplitz/block_toeplitz.h"
#include "toeplitz/fft.h"

namespace bst::toeplitz {

/// Evaluation strategy for MatVec.
enum class MatVecMode { Direct, Fft };

/// Reusable y = T x operator for a fixed symmetric block Toeplitz T.
class MatVec {
 public:
  explicit MatVec(const BlockToeplitz& t, MatVecMode mode = MatVecMode::Direct);

  /// y := T x (y resized to the order of T).
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Batched y := T x over columns (x and y are order x k views).
  void apply(la::CView x, la::View y) const;

  /// r := b - T x.
  void residual(const std::vector<double>& b, const std::vector<double>& x,
                std::vector<double>& r) const;

  /// Batched r := b - T x over columns (all views order x k).
  void residual(la::CView b, la::CView x, la::View r) const;

  [[nodiscard]] la::index_t order() const noexcept { return t_.order(); }
  [[nodiscard]] MatVecMode mode() const noexcept { return mode_; }

 private:
  void apply_direct(const double* x, double* y) const;

  BlockToeplitz t_;
  MatVecMode mode_;
  // FFT path: the block-circulant embedding with its cached eigen-blocks.
  // Shared so MatVec stays cheap to copy.
  std::shared_ptr<const BlockCirculantMultiplier> fftmul_;
};

}  // namespace bst::toeplitz
