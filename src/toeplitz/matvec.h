// Matrix-vector products with symmetric block Toeplitz matrices.
//
// Iterative refinement (paper section 8) needs residuals r = b - T x against
// the *exact* structured matrix.  Two evaluators are provided:
//   * Direct:  block-wise gemv, O(p^2 m^2) per product, no setup cost.
//   * Fft:     circulant embedding of the m^2 scalar Toeplitz sequences,
//              O(m^2 P log P) per product after O(m^2 P log P) setup.
#pragma once

#include <memory>
#include <vector>

#include "toeplitz/block_toeplitz.h"
#include "toeplitz/fft.h"

namespace bst::toeplitz {

/// Evaluation strategy for MatVec.
enum class MatVecMode { Direct, Fft };

/// Reusable y = T x operator for a fixed symmetric block Toeplitz T.
class MatVec {
 public:
  explicit MatVec(const BlockToeplitz& t, MatVecMode mode = MatVecMode::Direct);

  /// y := T x (y resized to the order of T).
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  /// r := b - T x.
  void residual(const std::vector<double>& b, const std::vector<double>& x,
                std::vector<double>& r) const;

  [[nodiscard]] la::index_t order() const noexcept { return t_.order(); }

 private:
  void apply_direct(const std::vector<double>& x, std::vector<double>& y) const;
  void apply_fft(const std::vector<double>& x, std::vector<double>& y) const;

  BlockToeplitz t_;
  MatVecMode mode_;
  // FFT path: eigenvalue spectra of the (ri, rj) scalar sequences, each of
  // circulant order nfft_.
  std::size_t nfft_ = 0;
  std::vector<std::vector<cplx>> eig_;  // m*m entries, index ri*m + rj
};

}  // namespace bst::toeplitz
