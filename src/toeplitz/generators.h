// Test-matrix generators.
//
// The paper evaluates on SPD (block) Toeplitz matrices and on symmetric
// indefinite Toeplitz matrices with singular principal minors (its worked
// 6x6 example, eq. 50).  These generators provide those families plus the
// standard ill-conditioned SPD Toeplitz matrices from the literature.
#pragma once

#include <cstdint>
#include <vector>

#include "toeplitz/block_toeplitz.h"

namespace bst::toeplitz {

/// Kac-Murdock-Szego matrix: T(i,j) = rho^|i-j|, SPD for |rho| < 1.
BlockToeplitz kms(la::index_t n, double rho);

/// Prolate matrix: t_0 = 2w, t_k = sin(2 pi w k) / (pi k); SPD and extremely
/// ill-conditioned for small w (0 < w < 0.5).
BlockToeplitz prolate(la::index_t n, double w);

/// Random SPD block Toeplitz: autocovariance of an m-channel moving-average
/// process of order q, T_k = sum_j C_j C_{j+k-1}^T, plus `ridge` * I.
/// Always positive semidefinite by construction; ridge > 0 makes it PD.
BlockToeplitz random_spd_block(la::index_t m, la::index_t p, la::index_t q,
                               std::uint64_t seed, double ridge = 0.5);

/// Random symmetric indefinite scalar Toeplitz: first row uniform in [-1,1]
/// with t_0 = diag.  Generally indefinite for small diag.
BlockToeplitz random_indefinite(la::index_t n, std::uint64_t seed, double diag = 0.25);

/// The paper's 6x6 example with a singular 2x2 principal minor (eq. 50):
/// first row (1.0000 1.0000 0.5297 0.6711 0.0077 0.3834).
BlockToeplitz paper_example_6x6();

/// Symmetric Toeplitz with first row (1, 1, r_3 .. r_n) random: the leading
/// 2x2 minor [[1 1],[1 1]] is singular, forcing a perturbation at step 2.
BlockToeplitz singular_minor_family(la::index_t n, std::uint64_t seed);

/// Fractional-Gaussian-noise autocovariance: t_k proportional to
/// |k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}; SPD and, for H near 1,
/// long-memory and increasingly ill-conditioned (0 < H < 1).
BlockToeplitz fgn(la::index_t n, double hurst);

/// AR(1) vector-process block autocovariance: C_k = Phi^k C_0 with
/// C_0 solving C_0 = Phi C_0 Phi^T + I (computed by fixed-point iteration).
/// `phi_scale` < 1 controls the spectral radius of the random Phi.
BlockToeplitz ar1_block(la::index_t m, la::index_t p, std::uint64_t seed,
                        double phi_scale = 0.6);

/// Right-hand side b = T * ones(n) (handy for checking solutions).
std::vector<double> rhs_for_ones(const BlockToeplitz& t);

}  // namespace bst::toeplitz
