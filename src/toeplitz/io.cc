#include "toeplitz/io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace bst::toeplitz {
namespace {

// Stream tokenizer skipping '#' comments to end of line.
class Tokens {
 public:
  explicit Tokens(std::istream& in) : in_(in) {}

  std::string next(const char* what) {
    std::string tok;
    while (in_ >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in_, rest);
        continue;
      }
      return tok;
    }
    throw std::runtime_error(std::string("unexpected end of input, expected ") + what);
  }

  long next_int(const char* what) {
    const std::string tok = next(what);
    std::size_t pos = 0;
    long v = 0;
    try {
      v = std::stol(tok, &pos);
    } catch (...) {
      pos = 0;
    }
    if (pos != tok.size()) {
      throw std::runtime_error("expected integer for " + std::string(what) + ", got '" + tok +
                               "'");
    }
    return v;
  }

  double next_double(const char* what) {
    const std::string tok = next(what);
    // Not std::stod: glibc strtod flags subnormal results as ERANGE, which
    // stod turns into out_of_range -- but subnormals are legitimate entries
    // (kms decay reaches them well before n = 4096). Accept any finite
    // parse that consumes the whole token; true overflow (HUGE_VAL) and
    // trailing junk still reject.
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(v)) {
      throw std::runtime_error("expected number for " + std::string(what) + ", got '" + tok +
                               "'");
    }
    return v;
  }

 private:
  std::istream& in_;
};

std::ifstream open_in(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for reading");
  return f;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open '" + path + "' for writing");
  return f;
}

}  // namespace

BlockToeplitz read_block_toeplitz(std::istream& in) {
  Tokens tok(in);
  const std::string magic = tok.next("header 'bst-toeplitz'");
  if (magic != "bst-toeplitz") {
    throw std::runtime_error("bad header: expected 'bst-toeplitz', got '" + magic + "'");
  }
  const long m = tok.next_int("block size m");
  const long p = tok.next_int("block count p");
  if (m < 1 || p < 1 || m > 4096 || p > (1L << 24)) {
    throw std::runtime_error("implausible dimensions m=" + std::to_string(m) +
                             " p=" + std::to_string(p));
  }
  la::Mat row(m, m * p);
  for (la::index_t j = 0; j < m * p; ++j)
    for (la::index_t i = 0; i < m; ++i) row(i, j) = tok.next_double("matrix entry");
  return BlockToeplitz(static_cast<la::index_t>(m), std::move(row));
}

BlockToeplitz read_block_toeplitz_file(const std::string& path) {
  std::ifstream f = open_in(path);
  return read_block_toeplitz(f);
}

void write_block_toeplitz(std::ostream& out, const BlockToeplitz& t) {
  out << "bst-toeplitz " << t.block_size() << ' ' << t.num_blocks() << '\n';
  out << std::setprecision(17);
  const la::CView row = t.first_row();
  for (la::index_t j = 0; j < row.cols(); ++j) {
    for (la::index_t i = 0; i < row.rows(); ++i) out << row(i, j) << ' ';
    out << '\n';
  }
}

void write_block_toeplitz_file(const std::string& path, const BlockToeplitz& t) {
  std::ofstream f = open_out(path);
  write_block_toeplitz(f, t);
}

std::vector<double> read_vector(std::istream& in) {
  Tokens tok(in);
  const std::string magic = tok.next("header 'bst-vector'");
  if (magic != "bst-vector") {
    throw std::runtime_error("bad header: expected 'bst-vector', got '" + magic + "'");
  }
  const long n = tok.next_int("vector length");
  if (n < 0 || n > (1L << 28)) {
    throw std::runtime_error("implausible vector length " + std::to_string(n));
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = tok.next_double("vector entry");
  return v;
}

std::vector<double> read_vector_file(const std::string& path) {
  std::ifstream f = open_in(path);
  return read_vector(f);
}

void write_vector(std::ostream& out, const std::vector<double>& v) {
  out << "bst-vector " << v.size() << '\n';
  out << std::setprecision(17);
  for (double x : v) out << x << '\n';
}

void write_vector_file(const std::string& path, const std::vector<double>& v) {
  std::ofstream f = open_out(path);
  write_vector(f, v);
}

}  // namespace bst::toeplitz
