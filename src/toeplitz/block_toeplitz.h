// Symmetric block Toeplitz matrices, stored by their first block row.
//
// A symmetric block Toeplitz matrix T of order n = m*p is fully determined
// by its first block row  [T1 T2 ... Tp]  (eq. 2 of the paper) with T1
// symmetric: block (i, j) equals T_{j-i+1} for j >= i and T_{i-j+1}^T
// otherwise.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace bst::toeplitz {

using la::CView;
using la::index_t;
using la::Mat;
using la::View;

/// Value-type description of a symmetric block Toeplitz matrix.
class BlockToeplitz {
 public:
  BlockToeplitz() = default;

  /// `first_row` is the m x (m*p) matrix [T1 T2 ... Tp]; T1 must be symmetric.
  BlockToeplitz(index_t m, Mat first_row);

  /// Builds a scalar (m = 1) symmetric Toeplitz matrix from its first row.
  static BlockToeplitz scalar(const std::vector<double>& first_row);

  [[nodiscard]] index_t block_size() const noexcept { return m_; }
  [[nodiscard]] index_t num_blocks() const noexcept { return p_; }
  [[nodiscard]] index_t order() const noexcept { return m_ * p_; }

  /// View of block T_k, k = 1..p (1-based to match the paper).
  [[nodiscard]] CView block(index_t k) const;

  /// The m x (m*p) first block row.
  [[nodiscard]] CView first_row() const { return row_.view(); }

  /// Entry T(i, j) of the full matrix (0-based), resolved via the structure.
  [[nodiscard]] double entry(index_t i, index_t j) const;

  /// Materializes the full dense n x n matrix (tests / baselines).
  [[nodiscard]] Mat dense() const;

  /// Cheap upper bound on ||T||_1 (= ||T||_inf by symmetry): one O(p m^2)
  /// pass over the first block row that bounds every column sum of the
  /// full matrix by the worst within-block column's total across all
  /// blocks (both orientations).  Overestimates by at most 2x; used by the
  /// solver-crossover policy's condition estimate (core/solver.h), where a
  /// factor of two does not move the decision.
  [[nodiscard]] double norm1_upper() const;

  /// Re-interprets the same matrix with block size `ms` (must divide the
  /// order and be a multiple of m).  This is the paper's m_s != m device:
  /// a block Toeplitz matrix with block size m is also block Toeplitz for
  /// any block size that is a multiple of m, at the cost of "forgetting"
  /// part of the structure.  The new first block row is the leading
  /// ms x n strip of the full matrix.
  [[nodiscard]] BlockToeplitz with_block_size(index_t ms) const;

 private:
  index_t m_ = 0, p_ = 0;
  Mat row_;  // m x (m*p)
};

}  // namespace bst::toeplitz
