// Radix-2 complex FFT (iterative, in place) plus the circulant machinery
// built on it.
//
// Used for the fast Toeplitz matrix-vector product (circulant embedding),
// which makes each iterative-refinement residual -- and each iteration of
// the preconditioned CG path (core/pcg.h) -- O(n log n) instead of O(n^2).
// Three layers:
//   * fft():  power-of-two radix-2 transform (the only kernel);
//   * dft():  any length, via Bluestein's chirp-z reduction to fft();
//   * CirculantMultiplier / BlockCirculantMultiplier: precomputed spectra
//     for repeated products with a fixed (block) circulant / Toeplitz
//     matrix.  Both own their power-of-two embedding internally, so
//     callers never pad.
#pragma once

#include <complex>
#include <vector>

#include "toeplitz/block_toeplitz.h"

namespace bst::toeplitz {

using cplx = std::complex<double>;

/// In-place FFT of `a` (size must be a power of two).
/// `inverse` applies the conjugate transform and the 1/N scaling.
void fft(std::vector<cplx>& a, bool inverse);

/// In-place DFT of `a` of *any* length: power-of-two sizes go straight to
/// fft(); everything else runs Bluestein's chirp-z algorithm (two
/// power-of-two convolution transforms), so odd and prime lengths cost
/// O(n log n) like the rest.
void dft(std::vector<cplx>& a, bool inverse);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// Precomputed circulant multiplier: y = C x where C is the circulant whose
/// first column is `c`.  Any logical order works: a power-of-two order is
/// diagonalized directly; otherwise the circulant (itself a Toeplitz
/// matrix) is embedded into a circulant of order next_pow2(2n-1) owned by
/// this class -- callers never see or provide the padding.
class CirculantMultiplier {
 public:
  explicit CirculantMultiplier(const std::vector<double>& first_col);

  /// y := C x (x and y of the logical order; y resized as needed).
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Logical circulant order (= first_col.size()).
  [[nodiscard]] std::size_t order() const noexcept { return n_; }

  /// Internal transform length (n for power-of-two orders, else the
  /// embedding order next_pow2(2n-1)).
  [[nodiscard]] std::size_t fft_order() const noexcept { return nfft_; }

 private:
  std::size_t n_ = 0;      // logical circulant order (any size)
  std::size_t nfft_ = 0;   // power-of-two transform length
  std::vector<cplx> eig_;  // spectra of the (embedded) first column
};

/// Precomputed block-circulant embedding of a symmetric block Toeplitz
/// matrix T (block size m, p block rows, order n = m p): y = T x in
/// O(m^2 P log P) per product (P = next_pow2(2p)) after one
/// O(m^2 P log P) setup that caches the m^2 eigenvalue spectra -- the
/// "eigen-blocks" of the embedding.  The batched overload runs every
/// right-hand-side column through the same cached spectra with shared
/// scratch, which is what makes multi-RHS residuals in the service layer
/// O(k m^2 P log P) instead of k dense matvecs.
class BlockCirculantMultiplier {
 public:
  explicit BlockCirculantMultiplier(const BlockToeplitz& t);

  /// y := T x (y resized to the order of T).
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Batched y := T x over columns: x and y are order() x k views (same k).
  void apply(la::CView x, la::View y) const;

  /// r := b - T x.
  void residual(const std::vector<double>& b, const std::vector<double>& x,
                std::vector<double>& r) const;

  /// Batched r := b - T x over columns (all views order() x k).
  void residual(la::CView b, la::CView x, la::View r) const;

  [[nodiscard]] la::index_t order() const noexcept { return n_; }
  [[nodiscard]] la::index_t block_size() const noexcept { return m_; }
  [[nodiscard]] la::index_t num_blocks() const noexcept { return p_; }

  /// Internal circulant order of the embedding (next_pow2(2p)).
  [[nodiscard]] std::size_t fft_order() const noexcept { return nfft_; }

 private:
  // One column through the cached spectra; `xs` and `acc` are caller-owned
  // scratch (m vectors of length nfft_ and one accumulator) so batched
  // applies reuse them across columns.
  void apply_col(const double* x, double* y, std::vector<std::vector<cplx>>& xs,
                 std::vector<cplx>& acc) const;

  la::index_t m_ = 0, p_ = 0, n_ = 0;
  std::size_t nfft_ = 0;
  std::vector<std::vector<cplx>> eig_;  // m*m spectra, index ri*m + rj
};

}  // namespace bst::toeplitz
