// Radix-2 complex FFT (iterative, in place).
//
// Used for the fast symmetric-Toeplitz matrix-vector product (circulant
// embedding), which makes each iterative-refinement residual O(n log n)
// instead of O(n^2) for scalar Toeplitz systems.
#pragma once

#include <complex>
#include <vector>

namespace bst::toeplitz {

using cplx = std::complex<double>;

/// In-place FFT of `a` (size must be a power of two).
/// `inverse` applies the conjugate transform and the 1/N scaling.
void fft(std::vector<cplx>& a, bool inverse);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// Precomputed circulant multiplier: y = C x where C is the circulant whose
/// first column is `c`.  Apply() works for any real x of length c.size().
class CirculantMultiplier {
 public:
  explicit CirculantMultiplier(const std::vector<double>& first_col);

  /// y := C x (x and y of the circulant order; y resized as needed).
  void apply(const std::vector<double>& x, std::vector<double>& y) const;

  [[nodiscard]] std::size_t order() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;        // circulant order (power of two)
  std::vector<cplx> eig_;    // FFT of the first column = eigenvalues
};

}  // namespace bst::toeplitz
