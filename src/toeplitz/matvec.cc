#include "toeplitz/matvec.h"

#include <cassert>

#include "la/blas.h"
#include "util/trace.h"

namespace bst::toeplitz {
namespace {
const util::PhaseId kMatVecPhase = util::Tracer::phase("toeplitz_matvec");
const util::PhaseId kFftSetupPhase = util::Tracer::phase("fft_setup");
}  // namespace

MatVec::MatVec(const BlockToeplitz& t, MatVecMode mode) : t_(t), mode_(mode) {
  if (mode_ != MatVecMode::Fft) return;
  util::TraceSpan span(kFftSetupPhase);
  const la::index_t m = t_.block_size();
  const la::index_t p = t_.num_blocks();
  nfft_ = next_pow2(static_cast<std::size_t>(2 * p));
  eig_.resize(static_cast<std::size_t>(m * m));
  // For block-row offset ri and block-col offset rj, the scalar sequence over
  // block indices (bi, bj) is Toeplitz with
  //   first row  h_k = T_{k+1}(ri, rj)   (k = bj - bi >= 0)
  //   first col  g_k = T_{k+1}(rj, ri)   (k = bi - bj >= 0, transposed block)
  // and its circulant embedding of order nfft has first column
  //   [g_0 .. g_{p-1}, 0 ..., h_{p-1} .. h_1].
  std::vector<double> col(nfft_);
  for (la::index_t ri = 0; ri < m; ++ri) {
    for (la::index_t rj = 0; rj < m; ++rj) {
      std::fill(col.begin(), col.end(), 0.0);
      for (la::index_t k = 0; k < p; ++k) {
        col[static_cast<std::size_t>(k)] = t_.block(k + 1)(rj, ri);  // g_k
      }
      for (la::index_t k = 1; k < p; ++k) {
        col[nfft_ - static_cast<std::size_t>(k)] = t_.block(k + 1)(ri, rj);  // h_k
      }
      auto& e = eig_[static_cast<std::size_t>(ri * m + rj)];
      e.assign(nfft_, cplx{});
      for (std::size_t i = 0; i < nfft_; ++i) e[i] = cplx(col[i], 0.0);
      fft(e, /*inverse=*/false);
    }
  }
}

void MatVec::apply(const std::vector<double>& x, std::vector<double>& y) const {
  util::TraceSpan span(kMatVecPhase);
  assert(static_cast<la::index_t>(x.size()) == t_.order());
  if (mode_ == MatVecMode::Fft) {
    apply_fft(x, y);
  } else {
    apply_direct(x, y);
  }
}

void MatVec::apply_direct(const std::vector<double>& x, std::vector<double>& y) const {
  const la::index_t m = t_.block_size();
  const la::index_t p = t_.num_blocks();
  y.assign(static_cast<std::size_t>(t_.order()), 0.0);
  for (la::index_t bi = 0; bi < p; ++bi) {
    double* yi = y.data() + bi * m;
    for (la::index_t bj = 0; bj < p; ++bj) {
      const double* xj = x.data() + bj * m;
      if (bj >= bi) {
        la::gemv(/*trans=*/false, 1.0, t_.block(bj - bi + 1), xj, 1.0, yi);
      } else {
        la::gemv(/*trans=*/true, 1.0, t_.block(bi - bj + 1), xj, 1.0, yi);
      }
    }
  }
}

void MatVec::apply_fft(const std::vector<double>& x, std::vector<double>& y) const {
  const la::index_t m = t_.block_size();
  const la::index_t p = t_.num_blocks();
  // Forward transforms of the m strided components of x.
  std::vector<std::vector<cplx>> xs(static_cast<std::size_t>(m));
  for (la::index_t rj = 0; rj < m; ++rj) {
    auto& v = xs[static_cast<std::size_t>(rj)];
    v.assign(nfft_, cplx{});
    for (la::index_t k = 0; k < p; ++k) {
      v[static_cast<std::size_t>(k)] = cplx(x[static_cast<std::size_t>(k * m + rj)], 0.0);
    }
    fft(v, /*inverse=*/false);
  }
  y.assign(static_cast<std::size_t>(t_.order()), 0.0);
  std::vector<cplx> acc(nfft_);
  for (la::index_t ri = 0; ri < m; ++ri) {
    std::fill(acc.begin(), acc.end(), cplx{});
    for (la::index_t rj = 0; rj < m; ++rj) {
      const auto& e = eig_[static_cast<std::size_t>(ri * m + rj)];
      const auto& v = xs[static_cast<std::size_t>(rj)];
      for (std::size_t i = 0; i < nfft_; ++i) acc[i] += e[i] * v[i];
    }
    fft(acc, /*inverse=*/true);
    for (la::index_t k = 0; k < p; ++k) {
      y[static_cast<std::size_t>(k * m + ri)] = acc[static_cast<std::size_t>(k)].real();
    }
  }
}

void MatVec::residual(const std::vector<double>& b, const std::vector<double>& x,
                      std::vector<double>& r) const {
  apply(x, r);
  assert(b.size() == r.size());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

}  // namespace bst::toeplitz
