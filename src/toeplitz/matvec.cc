#include "toeplitz/matvec.h"

#include <cassert>

#include "la/blas.h"
#include "util/trace.h"

namespace bst::toeplitz {
namespace {
const util::PhaseId kMatVecPhase = util::Tracer::phase("toeplitz_matvec");
}  // namespace

MatVec::MatVec(const BlockToeplitz& t, MatVecMode mode) : t_(t), mode_(mode) {
  if (mode_ == MatVecMode::Fft) {
    fftmul_ = std::make_shared<const BlockCirculantMultiplier>(t_);
  }
}

void MatVec::apply(const std::vector<double>& x, std::vector<double>& y) const {
  util::TraceSpan span(kMatVecPhase);
  assert(static_cast<la::index_t>(x.size()) == t_.order());
  y.resize(static_cast<std::size_t>(t_.order()));
  if (mode_ == MatVecMode::Fft) {
    fftmul_->apply(x, y);
  } else {
    apply_direct(x.data(), y.data());
  }
}

void MatVec::apply(la::CView x, la::View y) const {
  util::TraceSpan span(kMatVecPhase);
  assert(x.rows() == t_.order() && y.rows() == t_.order() && x.cols() == y.cols());
  if (mode_ == MatVecMode::Fft) {
    fftmul_->apply(x, y);
    return;
  }
  for (la::index_t j = 0; j < x.cols(); ++j) {
    apply_direct(x.data() + j * x.ld(), y.data() + j * y.ld());
  }
}

void MatVec::apply_direct(const double* x, double* y) const {
  const la::index_t m = t_.block_size();
  const la::index_t p = t_.num_blocks();
  for (la::index_t i = 0; i < t_.order(); ++i) y[i] = 0.0;
  for (la::index_t bi = 0; bi < p; ++bi) {
    double* yi = y + bi * m;
    for (la::index_t bj = 0; bj < p; ++bj) {
      const double* xj = x + bj * m;
      if (bj >= bi) {
        la::gemv(/*trans=*/false, 1.0, t_.block(bj - bi + 1), xj, 1.0, yi);
      } else {
        la::gemv(/*trans=*/true, 1.0, t_.block(bi - bj + 1), xj, 1.0, yi);
      }
    }
  }
}

void MatVec::residual(const std::vector<double>& b, const std::vector<double>& x,
                      std::vector<double>& r) const {
  apply(x, r);
  assert(b.size() == r.size());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

void MatVec::residual(la::CView b, la::CView x, la::View r) const {
  assert(b.rows() == t_.order() && b.cols() == x.cols() && b.cols() == r.cols());
  apply(x, r);
  for (la::index_t j = 0; j < b.cols(); ++j) {
    const double* bj = b.data() + j * b.ld();
    double* rj = r.data() + j * r.ld();
    for (la::index_t i = 0; i < t_.order(); ++i) rj[i] = bj[i] - rj[i];
  }
}

}  // namespace bst::toeplitz
