#include "toeplitz/generators.h"

#include <cmath>

#include "la/blas.h"
#include "la/norms.h"
#include "toeplitz/matvec.h"
#include "util/rng.h"

namespace bst::toeplitz {

BlockToeplitz kms(la::index_t n, double rho) {
  std::vector<double> row(static_cast<std::size_t>(n));
  double v = 1.0;
  for (la::index_t k = 0; k < n; ++k) {
    row[static_cast<std::size_t>(k)] = v;
    v *= rho;
  }
  return BlockToeplitz::scalar(row);
}

BlockToeplitz prolate(la::index_t n, double w) {
  std::vector<double> row(static_cast<std::size_t>(n));
  row[0] = 2.0 * w;
  for (la::index_t k = 1; k < n; ++k) {
    row[static_cast<std::size_t>(k)] =
        std::sin(2.0 * M_PI * w * static_cast<double>(k)) / (M_PI * static_cast<double>(k));
  }
  return BlockToeplitz::scalar(row);
}

BlockToeplitz random_spd_block(la::index_t m, la::index_t p, la::index_t q,
                               std::uint64_t seed, double ridge) {
  util::Rng rng(seed);
  // MA(q) coefficients C_0 .. C_q (m x m each).
  std::vector<la::Mat> c;
  c.reserve(static_cast<std::size_t>(q + 1));
  for (la::index_t j = 0; j <= q; ++j) {
    la::Mat cj(m, m);
    for (la::index_t b = 0; b < m; ++b)
      for (la::index_t a = 0; a < m; ++a) cj(a, b) = rng.normal() / std::sqrt(double(q + 1));
    c.push_back(std::move(cj));
  }
  // T_k = sum_j C_j C_{j+k-1}^T for k = 1..p  (zero when j+k-1 > q).
  la::Mat row(m, m * p);
  for (la::index_t k = 1; k <= p; ++k) {
    la::View tk = row.block(0, (k - 1) * m, m, m);
    for (la::index_t j = 0; j + (k - 1) <= q; ++j) {
      la::gemm(la::Op::None, la::Op::Trans, 1.0, c[static_cast<std::size_t>(j)].view(),
               c[static_cast<std::size_t>(j + k - 1)].view(), 1.0, tk);
    }
  }
  // Symmetrize T1 exactly (it is symmetric in exact arithmetic) + ridge.
  for (la::index_t i = 0; i < m; ++i) {
    for (la::index_t j = 0; j < i; ++j) {
      const double s = 0.5 * (row(i, j) + row(j, i));
      row(i, j) = row(j, i) = s;
    }
    row(i, i) += ridge;
  }
  return BlockToeplitz(m, std::move(row));
}

BlockToeplitz random_indefinite(la::index_t n, std::uint64_t seed, double diag) {
  util::Rng rng(seed);
  std::vector<double> row(static_cast<std::size_t>(n));
  row[0] = diag;
  for (la::index_t k = 1; k < n; ++k) row[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0);
  return BlockToeplitz::scalar(row);
}

BlockToeplitz paper_example_6x6() {
  return BlockToeplitz::scalar({1.0000, 1.0000, 0.5297, 0.6711, 0.0077, 0.3834});
}

BlockToeplitz singular_minor_family(la::index_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> row(static_cast<std::size_t>(n));
  row[0] = 1.0;
  row[1] = 1.0;  // leading minor [[1 1],[1 1]] is exactly singular
  for (la::index_t k = 2; k < n; ++k) row[static_cast<std::size_t>(k)] = rng.uniform(-1.0, 1.0);
  return BlockToeplitz::scalar(row);
}

BlockToeplitz fgn(la::index_t n, double hurst) {
  std::vector<double> row(static_cast<std::size_t>(n));
  const double h2 = 2.0 * hurst;
  auto pw = [h2](double x) { return std::pow(std::fabs(x), h2); };
  for (la::index_t k = 0; k < n; ++k) {
    const double kk = static_cast<double>(k);
    row[static_cast<std::size_t>(k)] = 0.5 * (pw(kk + 1.0) - 2.0 * pw(kk) + pw(kk - 1.0));
  }
  return BlockToeplitz::scalar(row);
}

BlockToeplitz ar1_block(la::index_t m, la::index_t p, std::uint64_t seed, double phi_scale) {
  util::Rng rng(seed);
  // Random Phi with spectral radius <= ~phi_scale (row-sum scaling bound).
  la::Mat phi(m, m);
  double max_row = 0.0;
  for (la::index_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (la::index_t j = 0; j < m; ++j) {
      phi(i, j) = rng.uniform(-1.0, 1.0);
      s += std::fabs(phi(i, j));
    }
    max_row = std::max(max_row, s);
  }
  for (la::index_t j = 0; j < m; ++j)
    for (la::index_t i = 0; i < m; ++i) phi(i, j) *= phi_scale / max_row;

  // Stationary covariance: C0 = Phi C0 Phi^T + I, by fixed-point iteration
  // (converges geometrically since rho(Phi) < 1).
  la::Mat c0 = la::identity(m);
  la::Mat tmp(m, m), next(m, m);
  for (int it = 0; it < 200; ++it) {
    la::gemm(la::Op::None, la::Op::None, 1.0, phi.view(), c0.view(), 0.0, tmp.view());
    la::gemm(la::Op::None, la::Op::Trans, 1.0, tmp.view(), phi.view(), 0.0, next.view());
    for (la::index_t i = 0; i < m; ++i) next(i, i) += 1.0;
    if (la::max_diff(next.view(), c0.view()) < 1e-15) break;
    la::copy(next.view(), c0.view());
  }
  // Exact symmetry.
  for (la::index_t i = 0; i < m; ++i)
    for (la::index_t j = 0; j < i; ++j) {
      const double s = 0.5 * (c0(i, j) + c0(j, i));
      c0(i, j) = c0(j, i) = s;
    }
  // C_k = Phi^k C_0: with T(l, j) = C_{j-l} and C_d = E[y_t y_{t-d}^T],
  // block (1, k+1) of the first block row is C_k.
  la::Mat row(m, m * p);
  la::copy(c0.view(), row.block(0, 0, m, m));
  la::Mat ck(m, m);
  la::copy(c0.view(), ck.view());
  for (la::index_t k = 1; k < p; ++k) {
    la::gemm(la::Op::None, la::Op::None, 1.0, phi.view(), ck.view(), 0.0, tmp.view());
    la::copy(tmp.view(), ck.view());
    la::copy(ck.view(), row.block(0, k * m, m, m));
  }
  return BlockToeplitz(m, std::move(row));
}

std::vector<double> rhs_for_ones(const BlockToeplitz& t) {
  const std::vector<double> ones(static_cast<std::size_t>(t.order()), 1.0);
  std::vector<double> b;
  MatVec(t).apply(ones, b);
  return b;
}

}  // namespace bst::toeplitz
