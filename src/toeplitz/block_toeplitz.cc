#include "toeplitz/block_toeplitz.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bst::toeplitz {

BlockToeplitz::BlockToeplitz(index_t m, Mat first_row) : m_(m), row_(std::move(first_row)) {
  assert(m > 0);
  assert(row_.rows() == m);
  assert(row_.cols() % m == 0);
  p_ = row_.cols() / m;
  // T1 must be symmetric for the matrix to be symmetric.
  for (index_t i = 0; i < m_; ++i)
    for (index_t j = 0; j < i; ++j)
      if (std::fabs(row_(i, j) - row_(j, i)) > 1e-12 * (1.0 + std::fabs(row_(i, j)))) {
        throw std::invalid_argument("BlockToeplitz: T1 is not symmetric");
      }
}

BlockToeplitz BlockToeplitz::scalar(const std::vector<double>& first_row) {
  Mat row(1, static_cast<index_t>(first_row.size()));
  for (index_t j = 0; j < row.cols(); ++j) row(0, j) = first_row[static_cast<std::size_t>(j)];
  return BlockToeplitz(1, std::move(row));
}

CView BlockToeplitz::block(index_t k) const {
  assert(k >= 1 && k <= p_);
  return row_.block(0, (k - 1) * m_, m_, m_);
}

double BlockToeplitz::entry(index_t i, index_t j) const {
  const index_t bi = i / m_, bj = j / m_;
  const index_t ri = i % m_, rj = j % m_;
  if (bj >= bi) return row_(ri, (bj - bi) * m_ + rj);
  return row_(rj, (bi - bj) * m_ + ri);  // transposed block
}

Mat BlockToeplitz::dense() const {
  const index_t n = order();
  Mat t(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) t(i, j) = entry(i, j);
  return t;
}

double BlockToeplitz::norm1_upper() const {
  // Column (bj, rj) of the full matrix sums |T_k(:, rj)| for the blocks
  // above the diagonal and |T_k(rj, :)| for the transposed blocks below
  // it; bounding both sums by their full k = 1..p totals gives a bound
  // independent of bj.
  double worst = 0.0;
  for (index_t rj = 0; rj < m_; ++rj) {
    double s = 0.0;
    for (index_t k = 1; k <= p_; ++k) {
      const CView tk = block(k);
      double down = 0.0, across = 0.0;
      for (index_t ri = 0; ri < m_; ++ri) {
        down += std::fabs(tk(ri, rj));
        across += std::fabs(tk(rj, ri));
      }
      s += (k == 1) ? down : down + across;
    }
    worst = std::max(worst, s);
  }
  return worst;
}

BlockToeplitz BlockToeplitz::with_block_size(index_t ms) const {
  assert(ms > 0);
  if (ms == m_) return *this;
  if (ms % m_ != 0 || order() % ms != 0) {
    throw std::invalid_argument(
        "with_block_size: ms must be a multiple of m and divide the order");
  }
  const index_t n = order();
  Mat strip(ms, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < ms; ++i) strip(i, j) = entry(i, j);
  return BlockToeplitz(ms, std::move(strip));
}

}  // namespace bst::toeplitz
