#include "toeplitz/fft.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "util/flops.h"
#include "util/trace.h"

namespace bst::toeplitz {
namespace {
const util::PhaseId kFftPhase = util::Tracer::phase("fft");
}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "fft size must be a power of two");
  if (n <= 1) return;
  util::TraceSpan span(kFftPhase);
  // ~5 n log2 n real flops for a radix-2 complex FFT (plus n for the
  // inverse's scaling pass).
  const auto log2n = static_cast<std::uint64_t>(std::countr_zero(n));
  util::FlopCounter::charge(5 * static_cast<std::uint64_t>(n) * log2n +
                            (inverse ? static_cast<std::uint64_t>(n) : 0));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv;
  }
}

CirculantMultiplier::CirculantMultiplier(const std::vector<double>& first_col) {
  n_ = first_col.size();
  assert((n_ & (n_ - 1)) == 0 && "circulant order must be a power of two");
  eig_.assign(n_, cplx{});
  for (std::size_t i = 0; i < n_; ++i) eig_[i] = cplx(first_col[i], 0.0);
  fft(eig_, /*inverse=*/false);
}

void CirculantMultiplier::apply(const std::vector<double>& x, std::vector<double>& y) const {
  assert(x.size() == n_);
  std::vector<cplx> v(n_);
  for (std::size_t i = 0; i < n_; ++i) v[i] = cplx(x[i], 0.0);
  fft(v, /*inverse=*/false);
  for (std::size_t i = 0; i < n_; ++i) v[i] *= eig_[i];
  fft(v, /*inverse=*/true);
  y.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = v[i].real();
}

}  // namespace bst::toeplitz
