#include "toeplitz/fft.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "util/flops.h"
#include "util/trace.h"

namespace bst::toeplitz {
namespace {
const util::PhaseId kFftPhase = util::Tracer::phase("fft");
const util::PhaseId kDftPhase = util::Tracer::phase("dft");
const util::PhaseId kFftSetupPhase = util::Tracer::phase("fft_setup");

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
}  // namespace

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "fft size must be a power of two");
  if (n <= 1) return;
  util::TraceSpan span(kFftPhase);
  // ~5 n log2 n real flops for a radix-2 complex FFT (plus n for the
  // inverse's scaling pass).
  const auto log2n = static_cast<std::uint64_t>(std::countr_zero(n));
  util::FlopCounter::charge(5 * static_cast<std::uint64_t>(n) * log2n +
                            (inverse ? static_cast<std::uint64_t>(n) : 0));

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = sign * 2.0 * M_PI / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv;
  }
}

void dft(std::vector<cplx>& a, bool inverse) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  if (is_pow2(n)) {
    fft(a, inverse);
    return;
  }
  // Bluestein's chirp-z: with w_j = exp(sign i pi j^2 / n),
  //   X_k = w_k * sum_j (a_j w_j) conj(w_{k-j}),
  // a linear convolution computed cyclically at order next_pow2(2n-1).
  // j^2 is reduced mod 2n before the twiddle (exp has period 2n in j^2),
  // so the argument stays O(pi) at any length.  Separate phase from "fft"
  // so the three inner transforms are not double-committed to one id.
  util::TraceSpan span(kDftPhase);
  const double sign = inverse ? 1.0 : -1.0;
  const std::size_t nfft = next_pow2(2 * n - 1);
  std::vector<cplx> w(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t q = (j * j) % (2 * n);
    const double ang = sign * M_PI * static_cast<double>(q) / static_cast<double>(n);
    w[j] = cplx(std::cos(ang), std::sin(ang));
  }
  std::vector<cplx> x(nfft, cplx{}), chirp(nfft, cplx{});
  for (std::size_t j = 0; j < n; ++j) x[j] = a[j] * w[j];
  chirp[0] = cplx(1.0, 0.0);
  for (std::size_t j = 1; j < n; ++j) chirp[j] = chirp[nfft - j] = std::conj(w[j]);
  fft(x, /*inverse=*/false);
  fft(chirp, /*inverse=*/false);
  for (std::size_t i = 0; i < nfft; ++i) x[i] *= chirp[i];
  fft(x, /*inverse=*/true);
  // Chirp setup + two pointwise products (6 real flops per complex mult).
  util::FlopCounter::charge(6 * static_cast<std::uint64_t>(nfft) +
                            12 * static_cast<std::uint64_t>(n));
  const double scale = inverse ? 1.0 / static_cast<double>(n) : 1.0;
  for (std::size_t k = 0; k < n; ++k) a[k] = scale * (w[k] * x[k]);
}

CirculantMultiplier::CirculantMultiplier(const std::vector<double>& first_col) {
  n_ = first_col.size();
  assert(n_ > 0 && "circulant order must be positive");
  if (is_pow2(n_)) {
    // Power-of-two order: diagonalize the circulant itself.
    nfft_ = n_;
    eig_.assign(nfft_, cplx{});
    for (std::size_t i = 0; i < n_; ++i) eig_[i] = cplx(first_col[i], 0.0);
  } else {
    // Any other order: the circulant is a Toeplitz matrix with first column
    // c and first row [c_0, c_{n-1}, ..., c_1]; embed it into a circulant
    // of order next_pow2(2n-1) whose products restricted to the leading n
    // entries are exact (zero padding prevents wraparound).
    nfft_ = next_pow2(2 * n_ - 1);
    eig_.assign(nfft_, cplx{});
    for (std::size_t i = 0; i < n_; ++i) eig_[i] = cplx(first_col[i], 0.0);
    for (std::size_t k = 1; k < n_; ++k) eig_[nfft_ - k] = cplx(first_col[n_ - k], 0.0);
  }
  fft(eig_, /*inverse=*/false);
}

void CirculantMultiplier::apply(const std::vector<double>& x, std::vector<double>& y) const {
  assert(x.size() == n_);
  std::vector<cplx> v(nfft_, cplx{});
  for (std::size_t i = 0; i < n_; ++i) v[i] = cplx(x[i], 0.0);
  fft(v, /*inverse=*/false);
  for (std::size_t i = 0; i < nfft_; ++i) v[i] *= eig_[i];
  util::FlopCounter::charge(6 * static_cast<std::uint64_t>(nfft_));
  fft(v, /*inverse=*/true);
  y.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = v[i].real();
}

BlockCirculantMultiplier::BlockCirculantMultiplier(const BlockToeplitz& t)
    : m_(t.block_size()), p_(t.num_blocks()), n_(t.order()) {
  util::TraceSpan span(kFftSetupPhase);
  nfft_ = next_pow2(static_cast<std::size_t>(2 * p_));
  eig_.resize(static_cast<std::size_t>(m_ * m_));
  // For block-row offset ri and block-col offset rj, the scalar sequence
  // over block indices (bi, bj) is Toeplitz with
  //   first row  h_k = T_{k+1}(ri, rj)   (k = bj - bi >= 0)
  //   first col  g_k = T_{k+1}(rj, ri)   (k = bi - bj >= 0, transposed block)
  // and its circulant embedding of order nfft has first column
  //   [g_0 .. g_{p-1}, 0 ..., h_{p-1} .. h_1].
  std::vector<cplx> col(nfft_);
  for (la::index_t ri = 0; ri < m_; ++ri) {
    for (la::index_t rj = 0; rj < m_; ++rj) {
      std::fill(col.begin(), col.end(), cplx{});
      for (la::index_t k = 0; k < p_; ++k) {
        col[static_cast<std::size_t>(k)] = cplx(t.block(k + 1)(rj, ri), 0.0);  // g_k
      }
      for (la::index_t k = 1; k < p_; ++k) {
        col[nfft_ - static_cast<std::size_t>(k)] = cplx(t.block(k + 1)(ri, rj), 0.0);  // h_k
      }
      fft(col, /*inverse=*/false);
      eig_[static_cast<std::size_t>(ri * m_ + rj)] = col;
    }
  }
}

void BlockCirculantMultiplier::apply_col(const double* x, double* y,
                                         std::vector<std::vector<cplx>>& xs,
                                         std::vector<cplx>& acc) const {
  // Forward transforms of the m strided components of x.
  for (la::index_t rj = 0; rj < m_; ++rj) {
    auto& v = xs[static_cast<std::size_t>(rj)];
    v.assign(nfft_, cplx{});
    for (la::index_t k = 0; k < p_; ++k) {
      v[static_cast<std::size_t>(k)] = cplx(x[k * m_ + rj], 0.0);
    }
    fft(v, /*inverse=*/false);
  }
  for (la::index_t ri = 0; ri < m_; ++ri) {
    std::fill(acc.begin(), acc.end(), cplx{});
    for (la::index_t rj = 0; rj < m_; ++rj) {
      const auto& e = eig_[static_cast<std::size_t>(ri * m_ + rj)];
      const auto& v = xs[static_cast<std::size_t>(rj)];
      for (std::size_t i = 0; i < nfft_; ++i) acc[i] += e[i] * v[i];
    }
    // Complex multiply-accumulate: 8 real flops per element per (ri, rj).
    util::FlopCounter::charge(8 * static_cast<std::uint64_t>(nfft_) *
                              static_cast<std::uint64_t>(m_));
    fft(acc, /*inverse=*/true);
    for (la::index_t k = 0; k < p_; ++k) {
      y[k * m_ + ri] = acc[static_cast<std::size_t>(k)].real();
    }
  }
}

void BlockCirculantMultiplier::apply(const std::vector<double>& x, std::vector<double>& y) const {
  assert(static_cast<la::index_t>(x.size()) == n_);
  y.resize(static_cast<std::size_t>(n_));
  std::vector<std::vector<cplx>> xs(static_cast<std::size_t>(m_));
  std::vector<cplx> acc(nfft_);
  apply_col(x.data(), y.data(), xs, acc);
}

void BlockCirculantMultiplier::apply(la::CView x, la::View y) const {
  assert(x.rows() == n_ && y.rows() == n_ && x.cols() == y.cols());
  // Shared scratch across columns: the spectra are cached, so a k-column
  // batch costs k times the transforms but one setup and one allocation.
  std::vector<std::vector<cplx>> xs(static_cast<std::size_t>(m_));
  std::vector<cplx> acc(nfft_);
  for (la::index_t j = 0; j < x.cols(); ++j) {
    apply_col(x.data() + j * x.ld(), y.data() + j * y.ld(), xs, acc);
  }
  util::ByteCounter::charge(16 * static_cast<std::uint64_t>(n_) *
                            static_cast<std::uint64_t>(x.cols()));
}

void BlockCirculantMultiplier::residual(const std::vector<double>& b,
                                        const std::vector<double>& x,
                                        std::vector<double>& r) const {
  apply(x, r);
  assert(b.size() == r.size());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  util::FlopCounter::charge(static_cast<std::uint64_t>(r.size()));
}

void BlockCirculantMultiplier::residual(la::CView b, la::CView x, la::View r) const {
  assert(b.rows() == n_ && b.cols() == x.cols() && b.cols() == r.cols());
  apply(x, r);
  for (la::index_t j = 0; j < b.cols(); ++j) {
    const double* bj = b.data() + j * b.ld();
    double* rj = r.data() + j * r.ld();
    for (la::index_t i = 0; i < n_; ++i) rj[i] = bj[i] - rj[i];
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n_) *
                            static_cast<std::uint64_t>(b.cols()));
}

}  // namespace bst::toeplitz
