#include "la/condest.h"

#include <cmath>

namespace bst::la {
namespace {

double sum_abs(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += std::fabs(x);
  return s;
}

}  // namespace

double invnorm1_estimate(index_t n, const SolveFn& solve, const SolveFn& solve_trans,
                         int max_iters) {
  if (n == 0) return 0.0;
  // Start from the uniform vector.
  std::vector<double> x(static_cast<std::size_t>(n), 1.0 / static_cast<double>(n));
  std::vector<double> y, z;
  double est = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    solve(x, y);  // y = A^{-1} x
    const double new_est = sum_abs(y);
    if (it > 0 && new_est <= est) break;  // no longer improving
    est = new_est;
    // xi = sign(y); z = A^{-T} xi.
    std::vector<double> xi(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    solve_trans(xi, z);
    // Most promising coordinate for the next unit-vector probe.
    index_t jmax = 0;
    double zmax = -1.0;
    double ztx = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const double v = std::fabs(z[static_cast<std::size_t>(j)]);
      ztx += z[static_cast<std::size_t>(j)] * x[static_cast<std::size_t>(j)];
      if (v > zmax) {
        zmax = v;
        jmax = j;
      }
    }
    if (zmax <= std::fabs(ztx)) break;  // Hager's optimality test
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<std::size_t>(jmax)] = 1.0;
  }
  // Guard with the alternating-sign probe (catches adversarial cases).
  std::vector<double> probe(static_cast<std::size_t>(n));
  double scale = 1.0;
  for (index_t i = 0; i < n; ++i) {
    probe[static_cast<std::size_t>(i)] =
        scale * (1.0 + static_cast<double>(i) / static_cast<double>(std::max<index_t>(1, n - 1)));
    scale = -scale;
  }
  solve(probe, y);
  const double alt = 2.0 * sum_abs(y) / (3.0 * static_cast<double>(n));
  return std::max(est, alt);
}

double condest1(index_t n, double norm1_a, const SolveFn& solve, const SolveFn& solve_trans) {
  return norm1_a * invnorm1_estimate(n, solve, solve_trans);
}

}  // namespace bst::la
