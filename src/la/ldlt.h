// Symmetric indefinite factorizations.
//
// The indefinite block Schur algorithm (paper section 2, eq. 11) needs the
// leading block factored as T1 = L S L^T with S a +/-1 signature matrix.
// That decomposition exists whenever T1 has nonsingular leading principal
// submatrices, exactly the paper's assumption.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace bst::la {

/// In-place unpivoted LDL^T: A = L D L^T, unit lower L written to the strict
/// lower triangle of `a`, D returned in `d`.  Returns false on a (near-)zero
/// pivot relative to `pivot_tol * max|A|`.
[[nodiscard]] bool ldlt_unpivoted(View a, std::vector<double>& d, double pivot_tol = 1e-13);

/// Signature decomposition A = L S L^T with L lower triangular (general
/// diagonal) and S = diag(+/-1) returned in `sigma`.  Returns false when a
/// leading principal submatrix is singular.
[[nodiscard]] bool ldl_signature(View a_inout, Mat& l, std::vector<double>& sigma,
                                 double pivot_tol = 1e-13);

}  // namespace bst::la
