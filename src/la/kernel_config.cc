#include "la/kernel_config.h"

#include <algorithm>
#include <cstdlib>

namespace bst::la {
namespace {

// Rounds `v` down to a positive multiple of `unit`.
index_t round_to(index_t v, index_t unit) {
  return std::max(unit, (v / unit) * unit);
}

index_t env_index(const char* name, index_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || v <= 0) return fallback;
  return static_cast<index_t>(v);
}

KernelConfig& active_slot() {
  static KernelConfig cfg = KernelConfig::from_env(KernelConfig::defaults());
  return cfg;
}

}  // namespace

KernelConfig KernelConfig::from_env(KernelConfig base) {
  base.mc = env_index("BST_KERNEL_MC", base.mc);
  base.kc = env_index("BST_KERNEL_KC", base.kc);
  base.nc = env_index("BST_KERNEL_NC", base.nc);
  base.pack_min_flops = env_index("BST_KERNEL_PACK_MIN_FLOPS", base.pack_min_flops);
  base.pack_min_m = env_index("BST_KERNEL_PACK_MIN_M", base.pack_min_m);
  base.parallel_min_flops = env_index("BST_KERNEL_PAR_MIN_FLOPS", base.parallel_min_flops);
  if (const char* s = std::getenv("BST_KERNEL_SIMD"); s != nullptr && *s != '\0') {
    base.simd = !(s[0] == '0' && s[1] == '\0');
  }
  // Keep the invariants the packing code relies on.
  base.mc = round_to(base.mc, kMicroRows);
  base.nc = round_to(base.nc, kMicroCols);
  base.kc = std::max<index_t>(4, base.kc);
  return base;
}

KernelConfig KernelConfig::tuned(double l1d_kib, double l2_kib, double lshared_kib) {
  KernelConfig cfg;  // start from the defaults
  // One mr-wide A slice plus one nr-wide B slice of depth kc live in L1
  // while a micro-tile runs; budget half of L1 for them.
  if (l1d_kib > 0) {
    const double doubles = l1d_kib * 1024.0 / 8.0;
    const auto kc = static_cast<index_t>(0.5 * doubles / static_cast<double>(kMicroRows + kMicroCols));
    cfg.kc = std::clamp<index_t>(kc, 64, 1024);
  }
  // The packed mc x kc A block should occupy about half of L2 so B panel
  // slices and C tiles do not evict it.
  if (l2_kib > 0) {
    const double doubles = l2_kib * 1024.0 / 8.0;
    const auto mc = static_cast<index_t>(0.5 * doubles / static_cast<double>(cfg.kc));
    cfg.mc = round_to(std::clamp<index_t>(mc, kMicroRows, 1024), kMicroRows);
  }
  // The kc x nc packed B panel is reused across every A block of a column
  // sweep; keep it within about a third of the shared cache.
  if (lshared_kib > 0) {
    const double doubles = lshared_kib * 1024.0 / 8.0;
    const auto nc = static_cast<index_t>(doubles / 3.0 / static_cast<double>(cfg.kc));
    cfg.nc = round_to(std::clamp<index_t>(nc, kMicroCols * 8, 8192), kMicroCols);
  }
  return cfg;
}

const KernelConfig& KernelConfig::active() { return active_slot(); }

void KernelConfig::set_active(const KernelConfig& cfg) { active_slot() = cfg; }

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

}  // namespace bst::la
