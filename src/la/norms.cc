#include "la/norms.h"

#include <algorithm>
#include <cmath>

#include "la/blas.h"

namespace bst::la {

double frobenius(CView a) {
  double amax = max_abs(a);
  if (amax == 0.0) return 0.0;
  double s = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) {
      const double v = a(i, j) / amax;
      s += v * v;
    }
  return amax * std::sqrt(s);
}

double max_abs(CView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, std::fabs(a(i, j)));
  return m;
}

double norm1(CView a) {
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (index_t i = 0; i < a.rows(); ++i) s += std::fabs(a(i, j));
    m = std::max(m, s);
  }
  return m;
}

double norm_inf(CView a) {
  std::vector<double> s(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) s[static_cast<std::size_t>(i)] += std::fabs(a(i, j));
  return s.empty() ? 0.0 : *std::max_element(s.begin(), s.end());
}

double norm2(const std::vector<double>& x) {
  return nrm2(static_cast<index_t>(x.size()), x.data());
}

double max_diff(CView a, CView b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace bst::la
