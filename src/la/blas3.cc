// Level-3 kernels, built as a BLIS-style stack (docs/KERNELS.md).
//
// Layers, bottom to top:
//   1. an mr x nr register micro-kernel (portable C plus a runtime-dispatched
//      AVX2/FMA variant) computing a C tile from packed panels,
//   2. a macro-kernel sweeping micro-tiles over one packed A block x B panel,
//   3. MC/KC/NC cache blocking with A/B packing into aligned thread-local
//      buffers (KernelConfig picks the block sizes),
//   4. a dispatcher that routes small calls to direct scalar loops (the Schur
//      hot shapes: 2m-row generator panels with m in {1..8}) and large calls
//      to a ThreadPool-parallel 2-D tile grid,
//   5. the public gemm/syrk_lower/trsm entry points, which keep the exact
//      flop/byte charging semantics of the seed kernels: each charges a
//      closed-form total once, on the calling thread, so counts are identical
//      whether a call runs serially or fans out to the pool.
//
// syrk_lower and trsm are blocked so their inner updates run through the
// packed gemm engine; their O(blk^2) diagonal work stays scalar.
#include <algorithm>
#include <cstdlib>

#include "la/blas.h"
#include "la/kernel_config.h"
#include "util/flops.h"
#include "util/thread_pool.h"
#include "util/trace.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define BST_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace bst::la {
namespace {

constexpr index_t MR = kMicroRows;
constexpr index_t NR = kMicroCols;

// ----- seed engines (accumulate-only, no charging) --------------------------
// These are the pre-stack loops, unchanged.  They serve three roles: the
// direct path for shapes below the packing crossover, the reference the
// kernel tests diff against, and the baseline series in bench_kernels.

// k-blocking keeps a panel of A plus the active C columns cache-resident.
constexpr index_t kSeedKc = 256;

// C(m x n) += alpha * A(m x k) * B(k x n), all column-major, no transposes.
// Register-blocks four columns of C at a time; the inner loop is a fused
// multiply-add over stride-1 columns of A.
void seed_nn(double alpha, CView a, CView b, View c) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  for (index_t l0 = 0; l0 < k; l0 += kSeedKc) {
    const index_t lend = std::min(k, l0 + kSeedKc);
    index_t j = 0;
    for (; j + 4 <= n; j += 4) {
      double* c0 = c.col(j);
      double* c1 = c.col(j + 1);
      double* c2 = c.col(j + 2);
      double* c3 = c.col(j + 3);
      for (index_t l = l0; l < lend; ++l) {
        const double* al = a.col(l);
        const double b0 = alpha * b(l, j);
        const double b1 = alpha * b(l, j + 1);
        const double b2 = alpha * b(l, j + 2);
        const double b3 = alpha * b(l, j + 3);
        for (index_t i = 0; i < m; ++i) {
          const double av = al[i];
          c0[i] += av * b0;
          c1[i] += av * b1;
          c2[i] += av * b2;
          c3[i] += av * b3;
        }
      }
    }
    for (; j < n; ++j) {
      double* cj = c.col(j);
      for (index_t l = l0; l < lend; ++l) {
        const double* al = a.col(l);
        const double bv = alpha * b(l, j);
        for (index_t i = 0; i < m; ++i) cj[i] += al[i] * bv;
      }
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B(k x n): C(i,j) += sum_l A(l,i) B(l,j),
// expressed as stride-1 dot products down the columns of A and B.
void seed_tn(double alpha, CView a, CView b, View c) {
  const index_t m = a.cols(), k = a.rows(), n = b.cols();
  for (index_t j = 0; j < n; ++j) {
    const double* bj = b.col(j);
    double* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      cj[i] += alpha * s;
    }
  }
}

// C(m x n) += alpha * A(m x k) * B^T(k x n): B^T(l,j) = B(j,l).
void seed_nt(double alpha, CView a, CView b, View c) {
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  for (index_t l = 0; l < k; ++l) {
    const double* al = a.col(l);
    for (index_t j = 0; j < n; ++j) {
      const double bv = alpha * b(j, l);
      if (bv == 0.0) continue;
      double* cj = c.col(j);
      for (index_t i = 0; i < m; ++i) cj[i] += al[i] * bv;
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B^T(k x n).
void seed_tt(double alpha, CView a, CView b, View c) {
  const index_t m = a.cols(), k = a.rows(), n = b.rows();
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) s += ai[l] * b(j, l);
      cj[i] += alpha * s;
    }
  }
}

// C += alpha * op(A) op(B) through the seed loops.
void accum_direct(Op ta, Op tb, double alpha, CView a, CView b, View c) {
  if (ta == Op::None && tb == Op::None) seed_nn(alpha, a, b, c);
  else if (ta == Op::Trans && tb == Op::None) seed_tn(alpha, a, b, c);
  else if (ta == Op::None && tb == Op::Trans) seed_nt(alpha, a, b, c);
  else seed_tt(alpha, a, b, c);
}

// ----- packing --------------------------------------------------------------

// Grow-only 64-byte-aligned scratch; one per thread per operand, so the
// packed panels of concurrent tiles never alias.
class PackBuffer {
 public:
  PackBuffer() = default;
  PackBuffer(const PackBuffer&) = delete;
  PackBuffer& operator=(const PackBuffer&) = delete;
  ~PackBuffer() { std::free(buf_); }

  double* get(std::size_t doubles) {
    if (doubles > cap_) {
      std::free(buf_);
      // Round up so the byte size is a multiple of the 64-byte alignment
      // (required by aligned_alloc) and regrowth is amortized.
      cap_ = (doubles + 511) & ~std::size_t{511};
      buf_ = static_cast<double*>(std::aligned_alloc(64, cap_ * sizeof(double)));
    }
    return buf_;
  }

 private:
  double* buf_ = nullptr;
  std::size_t cap_ = 0;
};

PackBuffer& pack_a_buffer() {
  thread_local PackBuffer buf;
  return buf;
}
PackBuffer& pack_b_buffer() {
  thread_local PackBuffer buf;
  return buf;
}

index_t panels(index_t extent, index_t tile) { return (extent + tile - 1) / tile; }

// Packs op(A)(ic:ic+mb, pc:pc+kb) into MR-row panels: panel p holds rows
// [p*MR, p*MR+MR) depth-major (dst[l*MR + i]), short last panel zero-padded
// so the micro-kernel never reads uninitialized lanes.
void pack_a(Op ta, CView a, index_t ic, index_t pc, index_t mb, index_t kb, double* dst) {
  for (index_t ir = 0; ir < mb; ir += MR) {
    const index_t mr = std::min(MR, mb - ir);
    if (ta == Op::None) {
      for (index_t l = 0; l < kb; ++l) {
        const double* src = a.col(pc + l) + ic + ir;
        double* d = dst + l * MR;
        index_t i = 0;
        for (; i < mr; ++i) d[i] = src[i];
        for (; i < MR; ++i) d[i] = 0.0;
      }
    } else {
      // op(A)(r, c) = A(c, r): row r of op(A) is column ic+ir+i of A, so the
      // stride-1 direction is the depth index l.
      for (index_t i = 0; i < mr; ++i) {
        const double* src = a.col(ic + ir + i) + pc;
        double* d = dst + i;
        for (index_t l = 0; l < kb; ++l) d[l * MR] = src[l];
      }
      for (index_t i = mr; i < MR; ++i) {
        double* d = dst + i;
        for (index_t l = 0; l < kb; ++l) d[l * MR] = 0.0;
      }
    }
    dst += MR * kb;
  }
}

// Packs alpha * op(B)(pc:pc+kb, jc:jc+nb) into NR-column panels
// (dst[l*NR + j]), short last panel zero-padded.  Folding alpha here costs
// one multiply per packed element instead of one per micro-kernel flop.
void pack_b(Op tb, double alpha, CView b, index_t pc, index_t jc, index_t kb, index_t nb,
            double* dst) {
  for (index_t jr = 0; jr < nb; jr += NR) {
    const index_t nr = std::min(NR, nb - jr);
    if (tb == Op::None) {
      for (index_t j = 0; j < nr; ++j) {
        const double* src = b.col(jc + jr + j) + pc;
        double* d = dst + j;
        for (index_t l = 0; l < kb; ++l) d[l * NR] = alpha * src[l];
      }
      for (index_t j = nr; j < NR; ++j) {
        double* d = dst + j;
        for (index_t l = 0; l < kb; ++l) d[l * NR] = 0.0;
      }
    } else {
      // op(B)(l, c) = B(c, l): for fixed depth l the columns jr+j are
      // consecutive rows of B's column pc+l, stride 1 on both sides.
      for (index_t l = 0; l < kb; ++l) {
        const double* src = b.col(pc + l) + jc + jr;
        double* d = dst + l * NR;
        index_t j = 0;
        for (; j < nr; ++j) d[j] = alpha * src[j];
        for (; j < NR; ++j) d[j] = 0.0;
      }
    }
    dst += NR * kb;
  }
}

// ----- micro-kernels --------------------------------------------------------
// Contract: acc (column-major MR x NR, 64-byte aligned) := sum over l of
// apanel[l*MR + i] * bpanel[l*NR + j].  Panels come from pack_a/pack_b, so
// both are contiguous, aligned, and zero-padded; edge masking happens when
// the caller adds acc into C.

using UKernel = void (*)(index_t, const double*, const double*, double*);

void ukernel_generic(index_t kb, const double* ap, const double* bp, double* acc) {
  for (index_t x = 0; x < MR * NR; ++x) acc[x] = 0.0;
  for (index_t l = 0; l < kb; ++l) {
    const double* al = ap + l * MR;
    const double* bl = bp + l * NR;
    for (index_t j = 0; j < NR; ++j) {
      const double bv = bl[j];
      double* aj = acc + j * MR;
      for (index_t i = 0; i < MR; ++i) aj[i] += al[i] * bv;
    }
  }
}

#if defined(BST_KERNEL_X86)
// 8x6 FMA kernel: 12 accumulator ymm registers + 2 for the A slice + 1
// broadcast = 15 of the 16 architectural registers, no spills.
__attribute__((target("avx2,fma"))) void ukernel_avx2(index_t kb, const double* ap,
                                                      const double* bp, double* acc) {
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  __m256d c40 = _mm256_setzero_pd(), c41 = _mm256_setzero_pd();
  __m256d c50 = _mm256_setzero_pd(), c51 = _mm256_setzero_pd();
  for (index_t l = 0; l < kb; ++l) {
    const __m256d a0 = _mm256_load_pd(ap);
    const __m256d a1 = _mm256_load_pd(ap + 4);
    __m256d bv = _mm256_broadcast_sd(bp + 0);
    c00 = _mm256_fmadd_pd(a0, bv, c00);
    c01 = _mm256_fmadd_pd(a1, bv, c01);
    bv = _mm256_broadcast_sd(bp + 1);
    c10 = _mm256_fmadd_pd(a0, bv, c10);
    c11 = _mm256_fmadd_pd(a1, bv, c11);
    bv = _mm256_broadcast_sd(bp + 2);
    c20 = _mm256_fmadd_pd(a0, bv, c20);
    c21 = _mm256_fmadd_pd(a1, bv, c21);
    bv = _mm256_broadcast_sd(bp + 3);
    c30 = _mm256_fmadd_pd(a0, bv, c30);
    c31 = _mm256_fmadd_pd(a1, bv, c31);
    bv = _mm256_broadcast_sd(bp + 4);
    c40 = _mm256_fmadd_pd(a0, bv, c40);
    c41 = _mm256_fmadd_pd(a1, bv, c41);
    bv = _mm256_broadcast_sd(bp + 5);
    c50 = _mm256_fmadd_pd(a0, bv, c50);
    c51 = _mm256_fmadd_pd(a1, bv, c51);
    ap += MR;
    bp += NR;
  }
  _mm256_store_pd(acc + 0, c00);
  _mm256_store_pd(acc + 4, c01);
  _mm256_store_pd(acc + 8, c10);
  _mm256_store_pd(acc + 12, c11);
  _mm256_store_pd(acc + 16, c20);
  _mm256_store_pd(acc + 20, c21);
  _mm256_store_pd(acc + 24, c30);
  _mm256_store_pd(acc + 28, c31);
  _mm256_store_pd(acc + 32, c40);
  _mm256_store_pd(acc + 36, c41);
  _mm256_store_pd(acc + 40, c50);
  _mm256_store_pd(acc + 44, c51);
}
#endif  // BST_KERNEL_X86

UKernel pick_ukernel(const KernelConfig& cfg) {
#if defined(BST_KERNEL_X86)
  static const bool has_simd = cpu_has_avx2_fma();
  if (cfg.simd && has_simd) return &ukernel_avx2;
#else
  (void)cfg;
#endif
  return &ukernel_generic;
}

// ----- macro-kernel + cache blocking ----------------------------------------

// C (mb x nb) += packed A block * packed B panel.
void macro_kernel(UKernel uk, const double* ap, const double* bp, index_t mb, index_t nb,
                  index_t kb, View c) {
  alignas(64) double acc[MR * NR];
  for (index_t jr = 0; jr < nb; jr += NR) {
    const double* bpanel = bp + (jr / NR) * (NR * kb);
    const index_t nr = std::min(NR, nb - jr);
    for (index_t ir = 0; ir < mb; ir += MR) {
      const double* apanel = ap + (ir / MR) * (MR * kb);
      uk(kb, apanel, bpanel, acc);
      const index_t mr = std::min(MR, mb - ir);
      for (index_t j = 0; j < nr; ++j) {
        double* cj = c.col(jr + j) + ir;
        const double* aj = acc + j * MR;
        for (index_t i = 0; i < mr; ++i) cj[i] += aj[i];
      }
    }
  }
}

// Serial packed gemm: C += alpha * op(A) op(B) with the full NC/KC/MC loop
// nest.  Threaded callers hand each tile of C to one invocation of this, so
// the k-accumulation order per element is independent of the tile grid and
// results are bitwise identical for every thread count.
void gemm_packed(Op ta, Op tb, double alpha, CView a, CView b, View c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  const KernelConfig& cfg = KernelConfig::active();
  const UKernel uk = pick_ukernel(cfg);
  for (index_t jc = 0; jc < n; jc += cfg.nc) {
    const index_t nb = std::min(cfg.nc, n - jc);
    for (index_t pc = 0; pc < k; pc += cfg.kc) {
      const index_t kb = std::min(cfg.kc, k - pc);
      double* bp = pack_b_buffer().get(
          static_cast<std::size_t>(panels(nb, NR) * NR * kb));
      pack_b(tb, alpha, b, pc, jc, kb, nb, bp);
      for (index_t ic = 0; ic < m; ic += cfg.mc) {
        const index_t mb = std::min(cfg.mc, m - ic);
        double* ap = pack_a_buffer().get(
            static_cast<std::size_t>(panels(mb, MR) * MR * kb));
        pack_a(ta, a, ic, pc, mb, kb, ap);
        macro_kernel(uk, ap, bp, mb, nb, kb, c.block(ic, jc, mb, nb));
      }
    }
  }
}

// Row range [r0, r0+rows) of op(A) as a view of A.
CView op_rows(Op ta, CView a, index_t r0, index_t rows) {
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  return (ta == Op::None) ? a.block(r0, 0, rows, k) : a.block(0, r0, k, rows);
}

// Column range [c0, c0+cols) of op(B) as a view of B.
CView op_cols(Op tb, CView b, index_t c0, index_t cols) {
  const index_t k = (tb == Op::None) ? b.rows() : b.cols();
  return (tb == Op::None) ? b.block(0, c0, k, cols) : b.block(c0, 0, cols, k);
}

// True when this call should fan out to the global pool: enough flops to
// amortize dispatch, more than one thread available, and the caller is not
// already inside a parallel region (no nested pools).
bool want_parallel(double flops, const KernelConfig& cfg, util::ThreadPool& pool) {
  return flops >= static_cast<double>(cfg.parallel_min_flops) && pool.size() > 1 &&
         !util::ThreadPool::in_parallel_region();
}

// C += alpha * op(A) op(B): the internal accumulate engine behind every
// public level-3 entry point.  Charges nothing -- callers charge closed-form
// totals -- and never nests parallelism, so public kernels may call it from
// pool workers.
void gemm_accum(Op ta, Op tb, double alpha, CView a, CView b, View c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  const KernelConfig& cfg = KernelConfig::active();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  // Crossover: the Schur hot shapes (generator panels with only a few rows)
  // keep the direct loops, where packing traffic and zero-padded SIMD lanes
  // would dominate.
  if (m < cfg.pack_min_m || flops < static_cast<double>(cfg.pack_min_flops)) {
    accum_direct(ta, tb, alpha, a, b, c);
    return;
  }
  util::ThreadPool& pool = util::ThreadPool::global();
  if (!want_parallel(flops, cfg, pool)) {
    gemm_packed(ta, tb, alpha, a, b, c);
    return;
  }
  // 2-D tile grid: pick the factorization pr x pc of the pool size whose
  // tiles are closest to square (in units of micro-tiles), then split m on
  // MR multiples and n on NR multiples so only the last tile sees edges.
  const auto np = static_cast<index_t>(pool.size());
  const index_t max_pr = std::max<index_t>(1, panels(m, MR));
  const index_t max_pc = std::max<index_t>(1, panels(n, NR));
  index_t pr = 1, pc = 1;
  double best = -1.0;
  for (index_t d = 1; d <= np; ++d) {
    if (np % d != 0) continue;
    const index_t e = np / d;
    if (d > max_pr || e > max_pc) continue;
    const double th = static_cast<double>(m) / static_cast<double>(d * MR);
    const double tw = static_cast<double>(n) / static_cast<double>(e * NR);
    const double score = std::min(th, tw) / std::max(th, tw);  // 1 == square
    if (score > best) {
      best = score;
      pr = d;
      pc = e;
    }
  }
  const auto row_edge = [&](index_t t) {
    return (t >= pr) ? m : (m * t / pr) / MR * MR;
  };
  const auto col_edge = [&](index_t t) {
    return (t >= pc) ? n : (n * t / pc) / NR * NR;
  };
  pool.parallel_for(0, static_cast<std::size_t>(pr * pc), [&](std::size_t tile) {
    const auto t = static_cast<index_t>(tile);
    const index_t r0 = row_edge(t / pc), r1 = row_edge(t / pc + 1);
    const index_t c0 = col_edge(t % pc), c1 = col_edge(t % pc + 1);
    if (r1 <= r0 || c1 <= c0) return;
    gemm_packed(ta, tb, alpha, op_rows(ta, a, r0, r1 - r0), op_cols(tb, b, c0, c1 - c0),
                c.block(r0, c0, r1 - r0, c1 - c0));
  });
}

// ----- triangular helpers (no charging) -------------------------------------

// op(T) x = b in place; the loops of the public trsv without its charges.
void trsv_engine(Uplo uplo, Op op, Diag diag, CView t, double* x) {
  const index_t n = t.rows();
  const bool lower = (uplo == Uplo::Lower);
  const bool trans = (op == Op::Trans);
  if ((lower && !trans) || (!lower && trans)) {
    // Forward substitution.
    for (index_t i = 0; i < n; ++i) {
      double s = x[i];
      if (!trans) {
        for (index_t l = 0; l < i; ++l) s -= t(i, l) * x[l];
      } else {
        for (index_t l = 0; l < i; ++l) s -= t(l, i) * x[l];
      }
      x[i] = (diag == Diag::NonUnit) ? s / t(i, i) : s;
    }
  } else {
    // Backward substitution.
    for (index_t i = n - 1; i >= 0; --i) {
      double s = x[i];
      if (!trans) {
        for (index_t l = i + 1; l < n; ++l) s -= t(i, l) * x[l];
      } else {
        for (index_t l = i + 1; l < n; ++l) s -= t(l, i) * x[l];
      }
      x[i] = (diag == Diag::NonUnit) ? s / t(i, i) : s;
    }
  }
}

// Diagonal-block width for the blocked triangular solves: big enough that
// the rank-`blk` gemm updates dominate, small enough that the O(blk^2)
// scalar diagonal work stays cache-resident.
constexpr index_t kTrsBlk = 64;

// Solves op(T) X = B over every column of b, blocked: unblocked diagonal
// solves plus packed gemm updates of the remaining rows.
void trsm_left_engine(Uplo uplo, Op op, Diag diag, CView t, View b) {
  const index_t n = t.rows(), ncols = b.cols();
  const bool trans = (op == Op::Trans);
  const bool forward = ((uplo == Uplo::Lower) != trans);
  const index_t nblocks = panels(n, kTrsBlk);
  for (index_t bi = 0; bi < nblocks; ++bi) {
    // Forward elimination consumes leading blocks first, backward trailing.
    const index_t d = forward ? bi * kTrsBlk : (nblocks - 1 - bi) * kTrsBlk;
    const index_t w = std::min(kTrsBlk, n - d);
    View bd = b.block(d, 0, w, ncols);
    {
      CView tdd = t.block(d, d, w, w);
      for (index_t j = 0; j < ncols; ++j) trsv_engine(uplo, op, diag, tdd, bd.col(j));
    }
    if (forward) {
      const index_t rest = n - d - w;
      if (rest > 0) {
        if (!trans) {  // lower: B(d+w:, :) -= T(d+w:, d:d+w) X_d
          gemm_accum(Op::None, Op::None, -1.0, t.block(d + w, d, rest, w), bd,
                     b.block(d + w, 0, rest, ncols));
        } else {  // upper^T: B(d+w:, :) -= T(d:d+w, d+w:)^T X_d
          gemm_accum(Op::Trans, Op::None, -1.0, t.block(d, d + w, w, rest), bd,
                     b.block(d + w, 0, rest, ncols));
        }
      }
    } else if (d > 0) {
      if (!trans) {  // upper: B(0:d, :) -= T(0:d, d:d+w) X_d
        gemm_accum(Op::None, Op::None, -1.0, t.block(0, d, d, w), bd,
                   b.block(0, 0, d, ncols));
      } else {  // lower^T: B(0:d, :) -= T(d:d+w, 0:d)^T X_d
        gemm_accum(Op::Trans, Op::None, -1.0, t.block(d, 0, w, d), bd,
                   b.block(0, 0, d, ncols));
      }
    }
  }
}

// Solves X op(T) = B for every row of b, blocked by column blocks of X: a
// packed gemm folds in the already-solved blocks, then a scalar sweep solves
// within the diagonal block (same update order as the seed kernel).
void trsm_right_engine(Uplo uplo, Op op, Diag diag, CView t, View b) {
  const index_t m = b.rows(), n = t.rows();
  const bool trans = (op == Op::Trans);
  // Column sweep direction of the effective system on columns of B.
  const bool upper_like = ((uplo == Uplo::Lower) == trans);
  const index_t nblocks = panels(n, kTrsBlk);
  for (index_t bi = 0; bi < nblocks; ++bi) {
    const index_t d = upper_like ? bi * kTrsBlk : (nblocks - 1 - bi) * kTrsBlk;
    const index_t w = std::min(kTrsBlk, n - d);
    View bd = b.block(0, d, m, w);
    if (upper_like && d > 0) {
      // B_d -= B(:, 0:d) op(T)(0:d, d:d+w)
      if (!trans) {
        gemm_accum(Op::None, Op::None, -1.0, b.block(0, 0, m, d), t.block(0, d, d, w), bd);
      } else {
        gemm_accum(Op::None, Op::Trans, -1.0, b.block(0, 0, m, d), t.block(d, 0, w, d), bd);
      }
    } else if (!upper_like && n - d - w > 0) {
      const index_t rest = n - d - w;
      // B_d -= B(:, d+w:) op(T)(d+w:, d:d+w)
      if (!trans) {
        gemm_accum(Op::None, Op::None, -1.0, b.block(0, d + w, m, rest),
                   t.block(d + w, d, rest, w), bd);
      } else {
        gemm_accum(Op::None, Op::Trans, -1.0, b.block(0, d + w, m, rest),
                   t.block(d, d + w, w, rest), bd);
      }
    }
    // In-block column sweep (stride-1 in B, like the seed kernel).
    for (index_t jj = 0; jj < w; ++jj) {
      const index_t j = upper_like ? d + jj : d + w - 1 - jj;
      double* bj = b.col(j);
      const index_t l0 = upper_like ? d : j + 1;
      const index_t l1 = upper_like ? j : d + w;
      for (index_t l = l0; l < l1; ++l) {
        const double tv = trans ? t(j, l) : t(l, j);
        if (tv == 0.0) continue;
        const double* bl = b.col(l);
        for (index_t i = 0; i < m; ++i) bj[i] -= tv * bl[i];
      }
      if (diag == Diag::NonUnit) {
        const double inv = 1.0 / t(j, j);
        for (index_t i = 0; i < m; ++i) bj[i] *= inv;
      }
    }
  }
}

}  // namespace

namespace detail {

void gemm_seed(Op ta, Op tb, double alpha, CView a, CView b, double beta, View c) {
  const index_t m = c.rows(), n = c.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  if (beta == 0.0) {
    set_zero(c);
  } else if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) {
      double* cj = c.col(j);
      for (index_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;
  accum_direct(ta, tb, alpha, a, b, c);
}

}  // namespace detail

void gemm(Op ta, Op tb, double alpha, CView a, CView b, double beta, View c) {
  const index_t m = (ta == Op::None) ? a.rows() : a.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  const index_t n = (tb == Op::None) ? b.cols() : b.rows();
  assert(((tb == Op::None) ? b.rows() : b.cols()) == k);
  assert(c.rows() == m && c.cols() == n);

  if (beta == 0.0) {
    set_zero(c);
  } else if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (alpha == 0.0 || k == 0) return;

  gemm_accum(ta, tb, alpha, a, b, c);

  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * m * n * k));
  // Operand footprint: A and B read once, C read and written.
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (m * k + k * n + 2 * m * n)));
}

void syrk_lower(double alpha, CView a, double beta, View c) {
  const index_t n = a.rows(), k = a.cols();
  assert(c.rows() == n && c.cols() == n);
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    if (beta == 0.0) {
      for (index_t i = j; i < n; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (index_t i = j; i < n; ++i) cj[i] *= beta;
    }
  }
  if (alpha != 0.0 && k > 0) {
    // Column blocks: a scalar triangle on the diagonal block, the rectangle
    // below it through the packed gemm engine.  Blocks write disjoint parts
    // of C, so they parallelize directly.
    constexpr index_t blk = 48;  // multiple of both micro-tile extents
    const index_t nblocks = panels(n, blk);
    const auto do_block = [&](index_t bi) {
      const index_t j0 = bi * blk;
      const index_t w = std::min(blk, n - j0);
      for (index_t l = 0; l < k; ++l) {
        const double* al = a.col(l);
        for (index_t j = j0; j < j0 + w; ++j) {
          const double av = alpha * al[j];
          double* cj = c.col(j);
          for (index_t i = j; i < j0 + w; ++i) cj[i] += al[i] * av;
        }
      }
      const index_t rows = n - j0 - w;
      if (rows > 0) {
        gemm_accum(Op::None, Op::Trans, alpha, a.block(j0 + w, 0, rows, k),
                   a.block(j0, 0, w, k), c.block(j0 + w, j0, rows, w));
      }
    };
    const KernelConfig& cfg = KernelConfig::active();
    util::ThreadPool& pool = util::ThreadPool::global();
    const double flops = static_cast<double>(n) * static_cast<double>(n + 1) *
                         static_cast<double>(k);
    if (nblocks > 1 && want_parallel(flops, cfg, pool)) {
      pool.parallel_for(0, static_cast<std::size_t>(nblocks),
                        [&](std::size_t bi) { do_block(static_cast<index_t>(bi)); });
    } else {
      for (index_t bi = 0; bi < nblocks; ++bi) do_block(bi);
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n * (n + 1) * k));
  // A read once; the lower triangle of C read and written.
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (n * k + n * (n + 1))));
}

void trsm(Side side, Uplo uplo, Op op, Diag diag, double alpha, CView t, View b) {
  const index_t m = b.rows(), n = b.cols();
  if (alpha != 1.0) {
    for (index_t j = 0; j < n; ++j) scal(m, alpha, b.col(j));
  }
  const KernelConfig& cfg = KernelConfig::active();
  util::ThreadPool& pool = util::ThreadPool::global();
  if (side == Side::Left) {
    assert(t.rows() == m && t.cols() == m);
    // Columns of B are independent solves: split them into strips.
    const double flops = static_cast<double>(n) * static_cast<double>(m) *
                         static_cast<double>(m);
    const auto np = static_cast<index_t>(pool.size());
    if (n > 1 && np > 1 && want_parallel(flops, cfg, pool)) {
      const index_t strips = std::min(n, np);
      pool.parallel_for(0, static_cast<std::size_t>(strips), [&](std::size_t s) {
        const auto si = static_cast<index_t>(s);
        const index_t c0 = n * si / strips, c1 = n * (si + 1) / strips;
        if (c1 > c0) trsm_left_engine(uplo, op, diag, t, b.block(0, c0, m, c1 - c0));
      });
    } else {
      trsm_left_engine(uplo, op, diag, t, b);
    }
    // Same totals the seed kernel charged through one trsv per column.
    util::FlopCounter::charge(static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(m * m));
    util::ByteCounter::charge(static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(8 * (m * (m + 1) / 2 + 2 * m)));
    return;
  }
  assert(t.rows() == n && t.cols() == n);
  // Rows of B are independent solves: split them into strips.
  const double flops = static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(n);
  const auto np = static_cast<index_t>(pool.size());
  if (m > 1 && np > 1 && want_parallel(flops, cfg, pool)) {
    const index_t strips = std::min(m, np);
    pool.parallel_for(0, static_cast<std::size_t>(strips), [&](std::size_t s) {
      const auto si = static_cast<index_t>(s);
      const index_t r0 = m * si / strips, r1 = m * (si + 1) / strips;
      if (r1 > r0) trsm_right_engine(uplo, op, diag, t, b.block(r0, 0, r1 - r0, n));
    });
  } else {
    trsm_right_engine(uplo, op, diag, t, b);
  }
  // Dense closed form: n(n-1)/2 row updates of length m plus (NonUnit) n
  // scalings, matching the axpy/scal charges of the seed kernel on a dense
  // triangle.  (The seed kernel skipped zero entries of T; the closed form
  // charges them, which keeps counts shape-deterministic.)
  std::uint64_t fl = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(n > 0 ? n - 1 : 0);
  std::uint64_t by = static_cast<std::uint64_t>(12 * m) *
                     static_cast<std::uint64_t>(n) *
                     static_cast<std::uint64_t>(n > 0 ? n - 1 : 0);
  if (diag == Diag::NonUnit) {
    fl += static_cast<std::uint64_t>(m * n);
    by += static_cast<std::uint64_t>(16 * m * n);
  }
  util::FlopCounter::charge(fl);
  util::ByteCounter::charge(by);
}

void trsv(Uplo uplo, Op op, Diag diag, CView t, double* x) {
  const index_t n = t.rows();
  assert(t.cols() == n);
  trsv_engine(uplo, op, diag, t, x);
  util::FlopCounter::charge(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  // Half of T read, x read and written.  (trsm's blocked solves inherit the
  // same totals through their closed-form charges above.)
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (n * (n + 1) / 2 + 2 * n)));
}

}  // namespace bst::la
