#include <algorithm>

#include "la/blas.h"
#include "util/flops.h"
#include "util/trace.h"

namespace bst::la {
namespace {

// k-blocking keeps a panel of A plus the active C columns cache-resident.
constexpr index_t kKc = 256;

// C(m x n) += alpha * A(m x k) * B(k x n), all column-major, no transposes.
// Register-blocks four columns of C at a time; the inner loop is a fused
// multiply-add over stride-1 columns of A.
void gemm_nn(double alpha, CView a, CView b, View c) {
  const index_t m = a.rows(), k = a.cols(), n = b.cols();
  for (index_t l0 = 0; l0 < k; l0 += kKc) {
    const index_t lend = std::min(k, l0 + kKc);
    index_t j = 0;
    for (; j + 4 <= n; j += 4) {
      double* c0 = c.col(j);
      double* c1 = c.col(j + 1);
      double* c2 = c.col(j + 2);
      double* c3 = c.col(j + 3);
      for (index_t l = l0; l < lend; ++l) {
        const double* al = a.col(l);
        const double b0 = alpha * b(l, j);
        const double b1 = alpha * b(l, j + 1);
        const double b2 = alpha * b(l, j + 2);
        const double b3 = alpha * b(l, j + 3);
        for (index_t i = 0; i < m; ++i) {
          const double av = al[i];
          c0[i] += av * b0;
          c1[i] += av * b1;
          c2[i] += av * b2;
          c3[i] += av * b3;
        }
      }
    }
    for (; j < n; ++j) {
      double* cj = c.col(j);
      for (index_t l = l0; l < lend; ++l) {
        const double* al = a.col(l);
        const double bv = alpha * b(l, j);
        for (index_t i = 0; i < m; ++i) cj[i] += al[i] * bv;
      }
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B(k x n): C(i,j) += sum_l A(l,i) B(l,j),
// expressed as stride-1 dot products down the columns of A and B.
void gemm_tn(double alpha, CView a, CView b, View c) {
  const index_t m = a.cols(), k = a.rows(), n = b.cols();
  for (index_t j = 0; j < n; ++j) {
    const double* bj = b.col(j);
    double* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      cj[i] += alpha * s;
    }
  }
}

// C(m x n) += alpha * A(m x k) * B^T(k x n): B^T(l,j) = B(j,l).
void gemm_nt(double alpha, CView a, CView b, View c) {
  const index_t m = a.rows(), k = a.cols(), n = b.rows();
  for (index_t l = 0; l < k; ++l) {
    const double* al = a.col(l);
    for (index_t j = 0; j < n; ++j) {
      const double bv = alpha * b(j, l);
      if (bv == 0.0) continue;
      double* cj = c.col(j);
      for (index_t i = 0; i < m; ++i) cj[i] += al[i] * bv;
    }
  }
}

// C(m x n) += alpha * A^T(m x k) * B^T(k x n).
void gemm_tt(double alpha, CView a, CView b, View c) {
  const index_t m = a.cols(), k = a.rows(), n = b.rows();
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    for (index_t i = 0; i < m; ++i) {
      const double* ai = a.col(i);
      double s = 0.0;
      for (index_t l = 0; l < k; ++l) s += ai[l] * b(j, l);
      cj[i] += alpha * s;
    }
  }
}

}  // namespace

void gemm(Op ta, Op tb, double alpha, CView a, CView b, double beta, View c) {
  const index_t m = (ta == Op::None) ? a.rows() : a.cols();
  const index_t k = (ta == Op::None) ? a.cols() : a.rows();
  const index_t n = (tb == Op::None) ? b.cols() : b.rows();
  assert(((tb == Op::None) ? b.rows() : b.cols()) == k);
  assert(c.rows() == m && c.cols() == n);

  if (beta == 0.0) {
    set_zero(c);
  } else if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j) scal(m, beta, c.col(j));
  }
  if (alpha == 0.0 || k == 0) return;

  if (ta == Op::None && tb == Op::None) gemm_nn(alpha, a, b, c);
  else if (ta == Op::Trans && tb == Op::None) gemm_tn(alpha, a, b, c);
  else if (ta == Op::None && tb == Op::Trans) gemm_nt(alpha, a, b, c);
  else gemm_tt(alpha, a, b, c);

  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * m * n * k));
  // Operand footprint: A and B read once, C read and written.
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (m * k + k * n + 2 * m * n)));
}

void syrk_lower(double alpha, CView a, double beta, View c) {
  const index_t n = a.rows(), k = a.cols();
  assert(c.rows() == n && c.cols() == n);
  for (index_t j = 0; j < n; ++j) {
    double* cj = c.col(j);
    if (beta == 0.0) {
      for (index_t i = j; i < n; ++i) cj[i] = 0.0;
    } else if (beta != 1.0) {
      for (index_t i = j; i < n; ++i) cj[i] *= beta;
    }
  }
  for (index_t l = 0; l < k; ++l) {
    const double* al = a.col(l);
    for (index_t j = 0; j < n; ++j) {
      const double av = alpha * al[j];
      double* cj = c.col(j);
      for (index_t i = j; i < n; ++i) cj[i] += al[i] * av;
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n * (n + 1) * k));
  // A read once; the lower triangle of C read and written.
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (n * k + n * (n + 1))));
}

void trsm(Side side, Uplo uplo, Op op, Diag diag, double alpha, CView t, View b) {
  const index_t m = b.rows(), n = b.cols();
  if (alpha != 1.0) {
    for (index_t j = 0; j < n; ++j) scal(m, alpha, b.col(j));
  }
  if (side == Side::Left) {
    assert(t.rows() == m && t.cols() == m);
    for (index_t j = 0; j < n; ++j) trsv(uplo, op, diag, t, b.col(j));
    return;
  }
  // Right side: X op(T) = B  <=>  op(T)^T X^T = B^T.  Solve row systems:
  // column-major B is awkward to traverse row-wise, so operate column-of-T
  // at a time on all rows of B simultaneously (still stride-1 in B).
  assert(t.rows() == n && t.cols() == n);
  const bool lower = (uplo == Uplo::Lower);
  const bool trans = (op == Op::Trans);
  // Effective triangular system on columns of B: for X T = B with T upper,
  // process columns left to right: x_j = (b_j - sum_{l<j} x_l T(l,j)) / T(j,j).
  // For T lower (or transposed), order/indices change accordingly.
  const bool effective_upper = (lower == trans);  // upper-like column sweep
  if (effective_upper) {
    for (index_t j = 0; j < n; ++j) {
      double* bj = b.col(j);
      for (index_t l = 0; l < j; ++l) {
        const double tv = trans ? t(j, l) : t(l, j);
        if (tv != 0.0) axpy(m, -tv, b.col(l), bj);
      }
      if (diag == Diag::NonUnit) {
        const double d = t(j, j);
        scal(m, 1.0 / d, bj);
      }
    }
  } else {
    for (index_t j = n - 1; j >= 0; --j) {
      double* bj = b.col(j);
      for (index_t l = j + 1; l < n; ++l) {
        const double tv = trans ? t(j, l) : t(l, j);
        if (tv != 0.0) axpy(m, -tv, b.col(l), bj);
      }
      if (diag == Diag::NonUnit) {
        const double d = t(j, j);
        scal(m, 1.0 / d, bj);
      }
    }
  }
}

void trsv(Uplo uplo, Op op, Diag diag, CView t, double* x) {
  const index_t n = t.rows();
  assert(t.cols() == n);
  const bool lower = (uplo == Uplo::Lower);
  const bool trans = (op == Op::Trans);
  if ((lower && !trans) || (!lower && trans)) {
    // Forward substitution.
    for (index_t i = 0; i < n; ++i) {
      double s = x[i];
      if (!trans) {
        for (index_t l = 0; l < i; ++l) s -= t(i, l) * x[l];
      } else {
        for (index_t l = 0; l < i; ++l) s -= t(l, i) * x[l];
      }
      x[i] = (diag == Diag::NonUnit) ? s / t(i, i) : s;
    }
  } else {
    // Backward substitution.
    for (index_t i = n - 1; i >= 0; --i) {
      double s = x[i];
      if (!trans) {
        for (index_t l = i + 1; l < n; ++l) s -= t(i, l) * x[l];
      } else {
        for (index_t l = i + 1; l < n; ++l) s -= t(l, i) * x[l];
      }
      x[i] = (diag == Diag::NonUnit) ? s / t(i, i) : s;
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  // Half of T read, x read and written.  (trsm delegates here / to axpy+scal,
  // so it inherits its byte charges from the level-1/2 calls it makes.)
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (n * (n + 1) / 2 + 2 * n)));
}

}  // namespace bst::la
