#include "la/cholesky.h"

#include <cmath>
#include <stdexcept>

#include "la/blas.h"
#include "util/flops.h"

namespace bst::la {
namespace {

// Unblocked kernel on the diagonal block.
bool chol_unblocked(View a) {
  const index_t n = a.rows();
  for (index_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index_t l = 0; l < j; ++l) d -= a(j, l) * a(j, l);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    d = std::sqrt(d);
    a(j, j) = d;
    const double inv = 1.0 / d;
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t l = 0; l < j; ++l) s -= a(i, l) * a(j, l);
      a(i, j) = s * inv;
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n) * n * n / 3);
  return true;
}

}  // namespace

bool cholesky_lower(View a, index_t block) {
  assert(a.rows() == a.cols());
  const index_t n = a.rows();
  if (n <= block) return chol_unblocked(a);
  for (index_t j0 = 0; j0 < n; j0 += block) {
    const index_t jb = std::min(block, n - j0);
    View d = a.block(j0, j0, jb, jb);
    if (!chol_unblocked(d)) return false;
    const index_t rest = n - j0 - jb;
    if (rest == 0) break;
    View panel = a.block(j0 + jb, j0, rest, jb);
    // panel := panel * L_d^{-T}
    trsm(Side::Right, Uplo::Lower, Op::Trans, Diag::NonUnit, 1.0, d, panel);
    // trailing := trailing - panel panel^T (lower triangle only)
    View trail = a.block(j0 + jb, j0 + jb, rest, rest);
    syrk_lower(-1.0, panel, 1.0, trail);
  }
  return true;
}

Mat cholesky_factor(CView a, index_t block) {
  Mat l(a.rows(), a.cols());
  copy(a, l.view());
  if (!cholesky_lower(l.view(), block)) {
    throw std::runtime_error("cholesky_factor: matrix is not positive definite");
  }
  for (index_t j = 0; j < l.cols(); ++j)
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  return l;
}

}  // namespace bst::la
