// BLAS-style dense kernels (levels 1-3), built from scratch.
//
// These are the computational primitives the paper assumes (its performance
// argument is entirely about trading level-1/2 operations for level-3 ones).
// Every kernel charges its flop count to util::FlopCounter so the paper's
// closed-form models (eqs. 25-32) can be validated against reality.
#pragma once

#include <cstdint>

#include "la/matrix.h"

namespace bst::la {

// ----- level 1 ------------------------------------------------------------

/// x . y for vectors of length n (stride 1).
double dot(index_t n, const double* x, const double* y);

/// y += alpha * x.
void axpy(index_t n, double alpha, const double* x, double* y);

/// x *= alpha.
void scal(index_t n, double alpha, double* x);

/// Euclidean norm of x.
double nrm2(index_t n, const double* x);

// ----- level 2 ------------------------------------------------------------

/// y := alpha * op(A) x + beta * y, op = A or A^T.
void gemv(bool trans, double alpha, CView a, const double* x, double beta, double* y);

/// A += alpha * x y^T (rank-1 update).
void ger(double alpha, const double* x, const double* y, View a);

// ----- level 3 ------------------------------------------------------------

enum class Op : std::uint8_t { None, Trans };

/// C := alpha * op(A) op(B) + beta * C.
void gemm(Op ta, Op tb, double alpha, CView a, CView b, double beta, View c);

/// C := alpha * A A^T + beta * C, only the lower triangle of C referenced.
void syrk_lower(double alpha, CView a, double beta, View c);

enum class Side : std::uint8_t { Left, Right };
enum class Uplo : std::uint8_t { Lower, Upper };
enum class Diag : std::uint8_t { NonUnit, Unit };

/// Solves op(T) X = alpha B (Left) or X op(T) = alpha B (Right) in place,
/// where T is triangular; B is overwritten with X.
void trsm(Side side, Uplo uplo, Op op, Diag diag, double alpha, CView t, View b);

/// Triangular matrix-vector solve: op(T) x = b in place (x := solution).
void trsv(Uplo uplo, Op op, Diag diag, CView t, double* x);

namespace detail {

/// The pre-kernel-stack scalar gemm (k-blocked loops with 4-column register
/// blocking), kept verbatim as the reference/baseline implementation: the
/// kernel tests compare the packed stack against it and bench_kernels times
/// it as the "seed" series.  Single-threaded; charges no flops/bytes.
void gemm_seed(Op ta, Op tb, double alpha, CView a, CView b, double beta, View c);

}  // namespace detail

}  // namespace bst::la
