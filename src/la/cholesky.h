// Dense Cholesky factorization (blocked, right-looking).
#pragma once

#include "la/matrix.h"

namespace bst::la {

/// In-place lower Cholesky: A = L L^T with L written into the lower triangle
/// of `a` (the strict upper triangle is left untouched).  Returns false when
/// a non-positive pivot is met, i.e. A is not positive definite.
[[nodiscard]] bool cholesky_lower(View a, index_t block = 64);

/// Convenience: factors a copy and returns L as a full lower-triangular
/// matrix (zeros above the diagonal).  Throws std::runtime_error if not PD.
Mat cholesky_factor(CView a, index_t block = 64);

}  // namespace bst::la
