// Blocking/threading parameters of the level-3 kernel stack (la/blas3.cc).
//
// The packed gemm/syrk/trsm kernels follow the classic BLIS decomposition:
// an mr x nr register micro-kernel at the bottom, KC-deep panels of A and B
// packed into contiguous aligned buffers, and MC/NC outer blocking chosen so
// the packed A block stays L2-resident and one B panel stays L1-resident
// while a C tile streams through registers.  The numbers below control that
// decomposition; they are process-wide (set once at startup, read by every
// kernel call) and come from three sources, in increasing precedence:
//
//   1. compiled-in defaults (safe for any 32K-L1 / 512K+-L2 x86 core),
//   2. the machine calibration profile (util/calibrate.h measures cache
//      capacities with a STREAM-triad size sweep; apply_kernel_tuning()
//      derives MC/KC/NC from them),
//   3. BST_KERNEL_* environment variables (always win; see from_env()).
//
// docs/KERNELS.md documents the scheme and every knob.
#pragma once

#include "la/matrix.h"

namespace bst::la {

/// Register micro-tile dimensions: fixed at compile time by the built
/// micro-kernels (portable C and AVX2/FMA share the same tile so packing
/// is identical); exposed so callers can align partitions to tile edges.
inline constexpr index_t kMicroRows = 8;  // mr
inline constexpr index_t kMicroCols = 6;  // nr

struct KernelConfig {
  // Cache blocking (doubles, not bytes): A blocks are mc x kc, B panels
  // kc x nc.  kc * (mr + nr) * 8 bytes should fit L1 with room to spare;
  // mc * kc * 8 about half of L2; nc bounds the packed-B footprint.
  index_t mc = 128;
  index_t kc = 256;
  index_t nc = 2048;

  // Size-based crossover: gemm calls with fewer than pack_min_flops total
  // flops (2mnk) or fewer than pack_min_m rows of op(A) use the direct
  // register-blocked loops instead of packing.  The Schur hot shapes --
  // 2m-row generator panels with m in {1..8} -- produce C tiles narrower
  // than the micro-kernel's mr rows, where zero-padded micro-tiles would
  // waste a large fraction of the SIMD lanes and the packing traffic is
  // pure overhead.
  index_t pack_min_flops = 1 << 15;
  index_t pack_min_m = 5;

  // Threading: a kernel fans out to util::ThreadPool::global() only when
  // its flop count reaches parallel_min_flops (pool dispatch costs a few
  // microseconds; small calls are faster inline) and the calling thread is
  // not already inside a parallel region (no nested pools).
  index_t parallel_min_flops = 2 << 20;

  // Use the AVX2/FMA micro-kernel when the CPU supports it (runtime
  // dispatch; the portable kernel is always available as fallback).
  bool simd = true;

  /// Compiled-in defaults (the values above).
  static KernelConfig defaults() { return KernelConfig{}; }

  /// Applies BST_KERNEL_{MC,KC,NC,PACK_MIN_FLOPS,PACK_MIN_M,PAR_MIN_FLOPS,
  /// SIMD} environment overrides on top of `base`.  Invalid or non-positive
  /// values are ignored (BST_KERNEL_SIMD=0 disables the SIMD path).
  static KernelConfig from_env(KernelConfig base);

  /// Derives blocking from measured cache capacities (KiB; pass 0 for
  /// "unknown" to keep the default for that level).  Results are clamped to
  /// sane ranges and rounded to micro-tile multiples.
  static KernelConfig tuned(double l1d_kib, double l2_kib, double lshared_kib);

  /// The process-wide active configuration.  Initialized on first use from
  /// from_env(defaults()); replace with set_active() at startup (e.g. after
  /// loading a calibration profile).  Not synchronized: do not call
  /// set_active() while kernels may be running on other threads.
  static const KernelConfig& active();
  static void set_active(const KernelConfig& cfg);
};

/// True when this CPU supports the AVX2+FMA micro-kernel (independent of
/// KernelConfig::simd; the dispatcher uses `active().simd && cpu_has...`).
bool cpu_has_avx2_fma();

}  // namespace bst::la
