// 1-norm condition estimation (Hager's method, as in LAPACK's xLACON).
//
// Estimates ||A^{-1}||_1 from a solve callback without forming the inverse
// -- the natural companion of a factorization.  Used to assess the
// refinement contraction factor gamma = ||dT T^{-1}|| of the paper's
// section 8 analysis.
#pragma once

#include <functional>
#include <vector>

#include "la/matrix.h"

namespace bst::la {

/// Black-box x := A^{-1} b (or A^{-T} b for the transpose flag).
using SolveFn = std::function<void(const std::vector<double>& b, std::vector<double>& x)>;

/// Hager's estimator for ||A^{-1}||_1 given solves with A and A^T.
/// For symmetric A pass the same callback twice.  `n` is the order.
double invnorm1_estimate(index_t n, const SolveFn& solve, const SolveFn& solve_trans,
                         int max_iters = 5);

/// 1-norm condition estimate: ||A||_1 * est(||A^{-1}||_1).
/// `norm1_a` is the (cheaply computable) 1-norm of A.
double condest1(index_t n, double norm1_a, const SolveFn& solve, const SolveFn& solve_trans);

}  // namespace bst::la
