#include "la/triangular.h"

#include <cmath>
#include <vector>

#include "util/flops.h"

namespace bst::la {

void trmm(TrSide side, TrUplo uplo, bool trans, double alpha, CView t, View b) {
  const index_t m = b.rows(), n = b.cols();
  const bool upper = (uplo == TrUplo::Upper);
  // Effective triangular operand S = op(T); S upper <=> upper != trans ...
  // keep it simple and correct: materialize per-column products.
  if (side == TrSide::Left) {
    assert(t.rows() == m && t.cols() == m);
    std::vector<double> tmp(static_cast<std::size_t>(m));
    for (index_t j = 0; j < n; ++j) {
      double* bj = b.col(j);
      for (index_t i = 0; i < m; ++i) {
        double s = 0.0;
        if (!trans) {
          const index_t lo = upper ? i : 0;
          const index_t hi = upper ? m : i + 1;
          for (index_t l = lo; l < hi; ++l) s += t(i, l) * bj[l];
        } else {
          const index_t lo = upper ? 0 : i;
          const index_t hi = upper ? i + 1 : m;
          for (index_t l = lo; l < hi; ++l) s += t(l, i) * bj[l];
        }
        tmp[static_cast<std::size_t>(i)] = alpha * s;
      }
      for (index_t i = 0; i < m; ++i) bj[i] = tmp[static_cast<std::size_t>(i)];
    }
    util::FlopCounter::charge(static_cast<std::uint64_t>(m) * m * n);
  } else {
    assert(t.rows() == n && t.cols() == n);
    Mat tmp(m, n);
    for (index_t j = 0; j < n; ++j) {
      double* out = tmp.view().col(j);
      for (index_t l = 0; l < n; ++l) {
        // S = op(T); B := alpha * B * S, so out_j = alpha * sum_l b_l S(l,j)
        // with S(l,j) = T(j,l) when transposed.
        const double tv = trans ? t(j, l) : t(l, j);
        const bool in_triangle = trans ? (upper ? j <= l : j >= l) : (upper ? l <= j : l >= j);
        if (!in_triangle || tv == 0.0) continue;
        const double* bl = b.col(l);
        for (index_t i = 0; i < m; ++i) out[i] += alpha * tv * bl[i];
      }
    }
    copy(tmp.view(), b);
    util::FlopCounter::charge(static_cast<std::uint64_t>(m) * n * n);
  }
}

void keep_triangle(View a, bool keep_upper) {
  for (index_t j = 0; j < a.cols(); ++j) {
    if (keep_upper) {
      for (index_t i = j + 1; i < a.rows(); ++i) a(i, j) = 0.0;
    } else {
      for (index_t i = 0; i < j && i < a.rows(); ++i) a(i, j) = 0.0;
    }
  }
}

bool is_upper_triangular(CView a, double tol) {
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = j + 1; i < a.rows(); ++i)
      if (std::fabs(a(i, j)) > tol) return false;
  return true;
}

}  // namespace bst::la
