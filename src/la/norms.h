// Matrix and vector norms.
#pragma once

#include <vector>

#include "la/matrix.h"

namespace bst::la {

/// Frobenius norm.
double frobenius(CView a);

/// Largest absolute entry.
double max_abs(CView a);

/// Induced 1-norm (max column sum of absolute values).
double norm1(CView a);

/// Induced infinity norm (max row sum of absolute values).
double norm_inf(CView a);

/// Euclidean norm of a vector.
double norm2(const std::vector<double>& x);

/// max |a - b| over all entries (test helper).
double max_diff(CView a, CView b);

}  // namespace bst::la
