#include "la/matrix.h"

#include <cstring>

namespace bst::la {

void copy(CView src, View dst) {
  assert(src.rows() == dst.rows() && src.cols() == dst.cols());
  const index_t r = src.rows();
  for (index_t j = 0; j < src.cols(); ++j) {
    std::memcpy(dst.col(j), src.col(j), static_cast<std::size_t>(r) * sizeof(double));
  }
}

Mat identity(index_t n) {
  Mat a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 1.0;
  return a;
}

Mat transpose(CView a) {
  Mat t(a.cols(), a.rows());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i) t(j, i) = a(i, j);
  return t;
}

void set_zero(View a) {
  for (index_t j = 0; j < a.cols(); ++j) {
    std::memset(a.col(j), 0, static_cast<std::size_t>(a.rows()) * sizeof(double));
  }
}

}  // namespace bst::la
