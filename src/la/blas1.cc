#include <cmath>

#include "la/blas.h"
#include "util/flops.h"
#include "util/trace.h"

namespace bst::la {

// Byte charges below are operand-footprint estimates: 8 bytes per double
// read, 16 per element updated in place (read + write back).

double dot(index_t n, const double* x, const double* y) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * n));
  util::ByteCounter::charge(static_cast<std::uint64_t>(16 * n));
  return (s0 + s1) + (s2 + s3);
}

void axpy(index_t n, double alpha, const double* x, double* y) {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * n));
  util::ByteCounter::charge(static_cast<std::uint64_t>(24 * n));
}

void scal(index_t n, double alpha, double* x) {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
  util::FlopCounter::charge(static_cast<std::uint64_t>(n));
  util::ByteCounter::charge(static_cast<std::uint64_t>(16 * n));
}

double nrm2(index_t n, const double* x) {
  // Two-pass scaling keeps intermediate squares in range.
  double amax = 0.0;
  for (index_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  if (amax == 0.0) return 0.0;
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double v = x[i] / amax;
    s += v * v;
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(3 * n));
  util::ByteCounter::charge(static_cast<std::uint64_t>(16 * n));  // two read passes
  return amax * std::sqrt(s);
}

}  // namespace bst::la
