#include "la/blas.h"
#include "util/flops.h"
#include "util/trace.h"

namespace bst::la {

void gemv(bool trans, double alpha, CView a, const double* x, double beta, double* y) {
  const index_t m = a.rows(), n = a.cols();
  if (!trans) {
    // y (m) := alpha * A x + beta * y; accumulate column-wise for stride-1
    // access into the column-major storage.
    if (beta == 0.0) {
      for (index_t i = 0; i < m; ++i) y[i] = 0.0;
    } else if (beta != 1.0) {
      for (index_t i = 0; i < m; ++i) y[i] *= beta;
    }
    for (index_t j = 0; j < n; ++j) {
      const double ax = alpha * x[j];
      const double* col = a.col(j);
      for (index_t i = 0; i < m; ++i) y[i] += ax * col[i];
    }
  } else {
    // y (n) := alpha * A^T x + beta * y; each component is a column dot.
    for (index_t j = 0; j < n; ++j) {
      const double* col = a.col(j);
      double s = 0.0;
      for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] = (beta == 0.0 ? 0.0 : beta * y[j]) + alpha * s;
    }
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * m * n));
  // A read once, x read, y updated (operand footprint).
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (m * n + m + 2 * n)));
}

void ger(double alpha, const double* x, const double* y, View a) {
  const index_t m = a.rows(), n = a.cols();
  for (index_t j = 0; j < n; ++j) {
    const double ay = alpha * y[j];
    double* col = a.col(j);
    for (index_t i = 0; i < m; ++i) col[i] += ay * x[i];
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(2 * m * n));
  util::ByteCounter::charge(static_cast<std::uint64_t>(8 * (2 * m * n + m + n)));
}

}  // namespace bst::la
