#include "la/ldlt.h"

#include <cmath>

#include "la/norms.h"
#include "util/flops.h"

namespace bst::la {

bool ldlt_unpivoted(View a, std::vector<double>& d, double pivot_tol) {
  assert(a.rows() == a.cols());
  const index_t n = a.rows();
  d.assign(static_cast<std::size_t>(n), 0.0);
  const double scale = max_abs(a);
  for (index_t j = 0; j < n; ++j) {
    // d_j = A(j,j) - sum_l L(j,l)^2 d_l
    double dj = a(j, j);
    for (index_t l = 0; l < j; ++l) dj -= a(j, l) * a(j, l) * d[static_cast<std::size_t>(l)];
    if (std::fabs(dj) <= pivot_tol * scale || !std::isfinite(dj)) return false;
    d[static_cast<std::size_t>(j)] = dj;
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t l = 0; l < j; ++l)
        s -= a(i, l) * a(j, l) * d[static_cast<std::size_t>(l)];
      a(i, j) = s / dj;
    }
    a(j, j) = 1.0;
  }
  util::FlopCounter::charge(static_cast<std::uint64_t>(n) * n * n / 3);
  return true;
}

bool ldl_signature(View a_inout, Mat& l, std::vector<double>& sigma, double pivot_tol) {
  const index_t n = a_inout.rows();
  std::vector<double> d;
  if (!ldlt_unpivoted(a_inout, d, pivot_tol)) return false;
  l = Mat(n, n);
  sigma.assign(static_cast<std::size_t>(n), 1.0);
  for (index_t j = 0; j < n; ++j) {
    const double dj = d[static_cast<std::size_t>(j)];
    const double r = std::sqrt(std::fabs(dj));
    sigma[static_cast<std::size_t>(j)] = dj >= 0.0 ? 1.0 : -1.0;
    l(j, j) = r;
    for (index_t i = j + 1; i < n; ++i) l(i, j) = a_inout(i, j) * r;
  }
  return true;
}

}  // namespace bst::la
