// Dense column-major matrices and non-owning views.
//
// All la/ kernels operate on views (pointer + dims + leading dimension),
// which lets the core algorithm address sub-blocks of the generator and the
// triangular factor without copies — the same convention as LAPACK.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace bst::la {

using index_t = std::ptrdiff_t;

template <typename T>
class MatrixView;
template <typename T>
class ConstMatrixView;

/// Owning dense column-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols)) {
    assert(rows >= 0 && cols >= 0);
  }
  /// Builds from row-major nested initializer lists (test convenience).
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<index_t>(init.size());
    cols_ = rows_ == 0 ? 0 : static_cast<index_t>(init.begin()->size());
    data_.assign(static_cast<std::size_t>(rows_ * cols_), T{});
    index_t i = 0;
    for (const auto& r : init) {
      assert(static_cast<index_t>(r.size()) == cols_);
      index_t j = 0;
      for (const T& v : r) (*this)(i, j++) = v;
      ++i;
    }
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return rows_; }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  T& operator()(index_t i, index_t j) noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  const T& operator()(index_t i, index_t j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  void set_zero() { data_.assign(data_.size(), T{}); }

  /// Whole-matrix mutable/const views.
  MatrixView<T> view() noexcept;
  ConstMatrixView<T> view() const noexcept;
  /// Sub-block view of `r x c` starting at (i0, j0).
  MatrixView<T> block(index_t i0, index_t j0, index_t r, index_t c) noexcept;
  ConstMatrixView<T> block(index_t i0, index_t j0, index_t r, index_t c) const noexcept;

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

/// Non-owning mutable column-major view.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] T* col(index_t j) const noexcept { return data_ + j * ld_; }

  T& operator()(index_t i, index_t j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[j * ld_ + i];
  }

  [[nodiscard]] MatrixView block(index_t i0, index_t j0, index_t r, index_t c) const noexcept {
    assert(i0 >= 0 && j0 >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return MatrixView(data_ + j0 * ld_ + i0, r, c, ld_);
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

/// Non-owning const column-major view.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    assert(ld >= rows);
  }
  // NOLINTNEXTLINE(google-explicit-constructor): mutable->const is implicit by design.
  ConstMatrixView(MatrixView<T> v)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t ld() const noexcept { return ld_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] const T* col(index_t j) const noexcept { return data_ + j * ld_; }

  const T& operator()(index_t i, index_t j) const noexcept {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[j * ld_ + i];
  }

  [[nodiscard]] ConstMatrixView block(index_t i0, index_t j0, index_t r, index_t c) const noexcept {
    assert(i0 >= 0 && j0 >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return ConstMatrixView(data_ + j0 * ld_ + i0, r, c, ld_);
  }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, ld_ = 0;
};

template <typename T>
MatrixView<T> Matrix<T>::view() noexcept {
  return MatrixView<T>(data(), rows_, cols_, rows_);
}
template <typename T>
ConstMatrixView<T> Matrix<T>::view() const noexcept {
  return ConstMatrixView<T>(data(), rows_, cols_, rows_);
}
template <typename T>
MatrixView<T> Matrix<T>::block(index_t i0, index_t j0, index_t r, index_t c) noexcept {
  return view().block(i0, j0, r, c);
}
template <typename T>
ConstMatrixView<T> Matrix<T>::block(index_t i0, index_t j0, index_t r, index_t c) const noexcept {
  return view().block(i0, j0, r, c);
}

using Mat = Matrix<double>;
using View = MatrixView<double>;
using CView = ConstMatrixView<double>;

/// Copies src into dst (dimensions must match).
void copy(CView src, View dst);

/// Returns an identity matrix of order n.
Mat identity(index_t n);

/// Returns the transpose of a (fresh allocation).
Mat transpose(CView a);

/// Fills `a` with zeros.
void set_zero(View a);

}  // namespace bst::la
