// Triangular matrix helpers used by the factorization drivers.
#pragma once

#include <cstdint>

#include "la/matrix.h"

namespace bst::la {

/// B := op(T) * B (Left) or B := B * op(T) (Right), T triangular.
/// (A small trmm; the core algorithm uses it to form T_j = L1^{-T-}T_hat_j
/// style products and in tests.)
enum class TrSide : std::uint8_t { Left, Right };
enum class TrUplo : std::uint8_t { Lower, Upper };

void trmm(TrSide side, TrUplo uplo, bool trans, double alpha, CView t, View b);

/// Zeroes the strict lower (keep_upper) or strict upper (otherwise) triangle.
void keep_triangle(View a, bool keep_upper);

/// True when max |A(i,j)| for i > j (strictly below diagonal) <= tol.
bool is_upper_triangular(CView a, double tol);

}  // namespace bst::la
