// Black-box crash reporting: an async-signal-safe handler that turns an
// abnormal termination into a decodable artifact.
//
// When a run dies on SIGSEGV/SIGABRT/SIGFPE/SIGBUS/SIGILL, everything the
// observability stack knows -- the live tick, the in-flight request table,
// the flight-recorder rings -- normally dies with the process.  Crashbox
// writes it out first, from inside the signal handler, using only
// async-signal-safe primitives (open/write/close, relaxed atomic loads on
// pre-registered state, and hand-rolled integer formatting -- no malloc, no
// mutexes, no stdio).  The report lands in `BST_CRASH_DIR/crash_<pid>.bstcrash`
// and `tools/bst_postmortem` decodes it back into human-readable form plus a
// Perfetto trace of the final rings.
//
// The layer is passive until installed: every hook below is a relaxed-load
// no-op when `BST_CRASH_DIR` is unset, so steady-state overhead stays inside
// the observability budget.  State the handler reads is *mirrored* into
// fixed-size lock-free tables at registration time (phase/counter/gauge
// names from util/trace + util/metrics, the last telemetry tick under a
// seqlock, active requests in a CAS slot table) -- the handler never touches
// the mutex-guarded registries themselves.
//
// Report format ("BSTCRASH v1") and usage: docs/OBSERVABILITY.md,
// "Post-mortem debugging".
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace bst::util {

// Async-signal-safe write helpers: raw write(2) loops plus integer
// formatting with no allocation or stdio.  Shared by the crashbox handler
// and FlightRecorder::unsafe_dump.
namespace sigsafe {
void write_all(int fd, const void* data, std::size_t len) noexcept;
void write_str(int fd, const char* s) noexcept;
void write_u64(int fd, std::uint64_t v) noexcept;
void write_i64(int fd, std::int64_t v) noexcept;
}  // namespace sigsafe

/// Coarse lifecycle phase of an in-flight service request, as recorded in
/// the crash report's active-request table.
enum class ReqPhase : std::uint32_t {
  kQueued = 1,  // admitted, waiting for the dispatcher
  kFactor = 2,  // factorization (cache miss fill or sync factor)
  kSolve = 3,   // triangular solves / refinement
};
const char* req_phase_name(ReqPhase p) noexcept;

class Crashbox {
 public:
  static constexpr int kMaxRequests = 256;  // active-request slot table size
  static constexpr int kMaxNames = 256;     // mirrored phase/counter/gauge names
  static constexpr int kNameLen = 48;       // per-name bytes (truncating)

  /// Installs the signal handlers and arms the report path from
  /// `BST_CRASH_DIR`.  Returns false (and stays disarmed) when the variable
  /// is unset or empty.  Idempotent; safe to call from multiple subsystems.
  static bool install();

  /// Same, with an explicit directory (tests).  Re-arms the one-report
  /// latch, so a fresh install() can dump again in the same process.
  static bool install(const char* dir);

  static bool installed() noexcept;

  /// Full path the next report will be written to ("" when not installed).
  static std::string report_path();

  /// Publishes the latest telemetry tick line (util/telemetry.h calls this
  /// once per tick).  Single writer assumed; readers (the handler) tolerate
  /// a torn read and flag it in the report.
  static void set_last_tick(const char* data, std::size_t len) noexcept;

  /// Active-request table.  begin() claims a slot (-1 when disabled or the
  /// table is full -- the overflow is counted in the report, never silent);
  /// phase()/end() are no-ops on slot -1.
  static int request_begin(std::uint64_t id, ReqPhase phase) noexcept;
  static void request_phase(int slot, ReqPhase phase) noexcept;
  static void request_end(int slot) noexcept;

  /// Name mirrors, called by the interning registries (Tracer::phase,
  /// Metrics::counter/gauge) under their own locks.  The handler walks
  /// these fixed tables instead of the std::string registries.
  static void note_phase(int id, const char* name) noexcept;
  static void note_counter(int id, const char* name) noexcept;
  static void note_gauge(int id, const char* name) noexcept;

  /// Writes the report now.  `sig` 0 means a non-signal dump (stallguard
  /// escalation, tests); `reason` is a short free-text tag.  Returns false
  /// when not installed or a report was already written (one per process,
  /// re-armed by install()).  Async-signal-safe.
  static bool dump(int sig, const char* reason) noexcept;
};

}  // namespace bst::util
