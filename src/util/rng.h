// Deterministic pseudo-random number generation.
//
// Tests and workload generators must be reproducible across platforms, so
// we use a fixed xoshiro256** implementation instead of std::mt19937 (whose
// distributions are implementation-defined).
#pragma once

#include <cstdint>

namespace bst::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal variate (Box-Muller; consumes two uniforms).
  double normal() noexcept;

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace bst::util
