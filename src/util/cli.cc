#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace bst::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_.emplace(std::string(arg), "1");
    } else {
      kv_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long Cli::get_int(const std::string& key, long fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const char* s = it->second.c_str();
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    throw std::runtime_error("--" + key + ": expected an integer, got '" + it->second + "'");
  }
  return v;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const char* s = it->second.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0') {
    throw std::runtime_error("--" + key + ": expected a number, got '" + it->second + "'");
  }
  return v;
}

bool Cli::has(const std::string& key) const { return kv_.contains(key); }

}  // namespace bst::util
