#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/metrics.h"
#include "util/stallguard.h"
#include "util/trace.h"

namespace bst::util {
namespace {

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now().time_since_epoch())
          .count());
}

// Latency of individual parallel_for chunks (load-balance visibility).
HistId chunk_hist() {
  static const HistId id = Metrics::histogram("pool_chunk_ns");
  return id;
}

// See in_parallel_region(): true for workers always, for callers while a
// parallel_for they dispatched is in flight.
thread_local bool tl_in_parallel = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  stats_ = std::vector<StatSlot>(workers);
  // The calling thread participates, so spawn workers-1 threads.
  threads_.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::in_parallel_region() noexcept { return tl_in_parallel; }

void ThreadPool::worker_loop(std::size_t slot) {
  tl_in_parallel = true;  // workers only ever run parallel_for chunks
  {
    char label[32];
    std::snprintf(label, sizeof label, "pool:%zu", slot);
    StallGuard::register_self(label);
  }
  StatSlot& stats = stats_[slot];
  std::size_t seen = 0;
  std::uint64_t counter_epoch_seen = counter_epoch_.load(std::memory_order_acquire);
  for (;;) {
    Task task;
    {
      const bool timed = Tracer::enabled();
      const std::uint64_t w0 = timed ? now_ns() : 0;
      StallGuard::idle();  // parked on the condvar: not a stall
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (timed) stats.idle_ns.fetch_add(now_ns() - w0, std::memory_order_relaxed);
      if (stop_) return;
      StallGuard::beat();
      seen = generation_;
      task = task_;
      ++inflight_;
    }
    // Between tasks this worker has no open FlopScope/TraceSpan, so it is
    // safe to honour a pending counter reset here (never on the caller
    // thread, whose enclosing spans hold counter baselines).
    const std::uint64_t epoch = counter_epoch_.load(std::memory_order_acquire);
    if (epoch != counter_epoch_seen) {
      counter_epoch_seen = epoch;
      FlopCounter::reset();
      ByteCounter::reset();
    }
    run_and_merge(task, stats);
    {
      std::lock_guard lock(mu_);
      --inflight_;
    }
    cv_done_.notify_all();
  }
}

// Kept out of the worker_loop body (and never inlined there): GCC 12's
// jump threading under -fsanitize=undefined specializes an impossible
// null-address path for the thread-local counter reads when this code sits
// inside the condvar loop, producing a false "load of null pointer" report.
__attribute__((noinline)) void ThreadPool::run_and_merge(Task& task, StatSlot& stats) {
  const std::uint64_t flops0 = FlopCounter::now();
  const std::uint64_t bytes0 = ByteCounter::now();
  const std::uint64_t executed = run_chunks(task, stats);
  // Merge-on-join: publish this worker's counter deltas for the caller to
  // charge.  Only after running a chunk -- a worker that raced in late and
  // claimed nothing may hold a task whose dispatcher already returned, so
  // its (zero) delta must not touch the dangling atomics.  When a chunk
  // did run, the dispatcher is still blocked on our inflight_ decrement,
  // so the pointers are alive.
  if (executed > 0 && task.flops != nullptr) {
    task.flops->fetch_add(FlopCounter::now() - flops0, std::memory_order_relaxed);
    task.bytes->fetch_add(ByteCounter::now() - bytes0, std::memory_order_relaxed);
  }
}

void ThreadPool::run_inline(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& body) {
  // Inline execution still counts as a parallel region so the invariant
  // "in_parallel_region() is true inside any parallel_for body" holds for
  // every pool size and dispatch path (kernels rely on it to avoid nesting).
  const bool was_in_parallel = tl_in_parallel;
  tl_in_parallel = true;
  for (std::size_t i = begin; i < end; ++i) body(i);
  tl_in_parallel = was_in_parallel;
}

std::uint64_t ThreadPool::run_chunks(Task& task, StatSlot& stats) {
  const bool timed = Tracer::enabled();
  const std::uint64_t t0 = timed ? now_ns() : 0;
  std::uint64_t executed = 0;
  std::uint64_t prev = t0;  // chunk boundary timestamp (reused across chunks)
  for (;;) {
    std::size_t lo;
    {
      std::lock_guard lock(mu_);
      if (next_ >= task.end) break;
      lo = next_;
      next_ = std::min(task.end, next_ + task.grain);
    }
    const std::size_t hi = std::min(task.end, lo + task.grain);
    for (std::size_t i = lo; i < hi; ++i) (*task.body)(i);
    ++executed;
    StallGuard::beat();  // per-chunk progress: long tasks never read as stalls
    if (timed) {
      const std::uint64_t now = now_ns();
      Metrics::record(chunk_hist(), now - prev);
      prev = now;
    }
  }
  if (executed > 0) {
    stats.chunks.fetch_add(executed, std::memory_order_relaxed);
    if (timed) stats.busy_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  }
  return executed;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (threads_.empty() || end - begin <= grain) {
    run_inline(begin, end, body);
    return;
  }
  // One dispatcher at a time: if another thread (or a body nested under this
  // pool) is mid-parallel_for, run inline rather than clobbering the shared
  // task slot.  Inline execution keeps counter totals trivially correct.
  if (busy_.exchange(true, std::memory_order_acquire)) {
    run_inline(begin, end, body);
    return;
  }
  // Worker-side flop/byte deltas, merged into this thread's counters at
  // join so threaded and serial runs charge identical totals.
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> bytes{0};
  Task task{begin, end, grain, &body, &flops, &bytes};
  {
    std::lock_guard lock(mu_);
    task_ = task;
    next_ = begin;
    ++generation_;
  }
  cv_start_.notify_all();
  const bool was_in_parallel = tl_in_parallel;
  tl_in_parallel = true;
  run_chunks(task, stats_[0]);  // the caller helps, charging slot 0
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return inflight_ == 0 && next_ >= task.end; });
  }
  tl_in_parallel = was_in_parallel;
  busy_.store(false, std::memory_order_release);
  FlopCounter::charge(flops.load(std::memory_order_relaxed));
  ByteCounter::charge(bytes.load(std::memory_order_relaxed));
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out[i].busy_seconds =
        static_cast<double>(stats_[i].busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    out[i].idle_seconds =
        static_cast<double>(stats_[i].idle_ns.load(std::memory_order_relaxed)) * 1e-9;
    out[i].chunks = stats_[i].chunks.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::reset_worker_stats() {
  for (StatSlot& s : stats_) {
    s.busy_ns.store(0, std::memory_order_relaxed);
    s.idle_ns.store(0, std::memory_order_relaxed);
    s.chunks.store(0, std::memory_order_relaxed);
  }
  counter_epoch_.fetch_add(1, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("BST_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace bst::util
