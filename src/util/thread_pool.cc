#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/metrics.h"
#include "util/trace.h"

namespace bst::util {
namespace {

std::uint64_t now_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now().time_since_epoch())
          .count());
}

// Latency of individual parallel_for chunks (load-balance visibility).
HistId chunk_hist() {
  static const HistId id = Metrics::histogram("pool_chunk_ns");
  return id;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  stats_ = std::vector<StatSlot>(workers);
  // The calling thread participates, so spawn workers-1 threads.
  threads_.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t slot) {
  StatSlot& stats = stats_[slot];
  std::size_t seen = 0;
  std::uint64_t counter_epoch_seen = counter_epoch_.load(std::memory_order_acquire);
  for (;;) {
    Task task;
    {
      const bool timed = Tracer::enabled();
      const std::uint64_t w0 = timed ? now_ns() : 0;
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (timed) stats.idle_ns.fetch_add(now_ns() - w0, std::memory_order_relaxed);
      if (stop_) return;
      seen = generation_;
      task = task_;
      ++inflight_;
    }
    // Between tasks this worker has no open FlopScope/TraceSpan, so it is
    // safe to honour a pending counter reset here (never on the caller
    // thread, whose enclosing spans hold counter baselines).
    const std::uint64_t epoch = counter_epoch_.load(std::memory_order_acquire);
    if (epoch != counter_epoch_seen) {
      counter_epoch_seen = epoch;
      FlopCounter::reset();
      ByteCounter::reset();
    }
    run_chunks(task, stats);
    {
      std::lock_guard lock(mu_);
      --inflight_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(Task& task, StatSlot& stats) {
  const bool timed = Tracer::enabled();
  const std::uint64_t t0 = timed ? now_ns() : 0;
  std::uint64_t executed = 0;
  std::uint64_t prev = t0;  // chunk boundary timestamp (reused across chunks)
  for (;;) {
    std::size_t lo;
    {
      std::lock_guard lock(mu_);
      if (next_ >= task.end) break;
      lo = next_;
      next_ = std::min(task.end, next_ + task.grain);
    }
    const std::size_t hi = std::min(task.end, lo + task.grain);
    for (std::size_t i = lo; i < hi; ++i) (*task.body)(i);
    ++executed;
    if (timed) {
      const std::uint64_t now = now_ns();
      Metrics::record(chunk_hist(), now - prev);
      prev = now;
    }
  }
  if (executed > 0) {
    stats.chunks.fetch_add(executed, std::memory_order_relaxed);
    if (timed) stats.busy_ns.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (threads_.empty() || end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  Task task{begin, end, grain, &body};
  {
    std::lock_guard lock(mu_);
    task_ = task;
    next_ = begin;
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunks(task, stats_[0]);  // the caller helps, charging slot 0
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return inflight_ == 0 && next_ >= task.end; });
}

std::vector<WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    out[i].busy_seconds =
        static_cast<double>(stats_[i].busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    out[i].idle_seconds =
        static_cast<double>(stats_[i].idle_ns.load(std::memory_order_relaxed)) * 1e-9;
    out[i].chunks = stats_[i].chunks.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::reset_worker_stats() {
  for (StatSlot& s : stats_) {
    s.busy_ns.store(0, std::memory_order_relaxed);
    s.idle_ns.store(0, std::memory_order_relaxed);
    s.chunks.store(0, std::memory_order_relaxed);
  }
  counter_epoch_.fetch_add(1, std::memory_order_release);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("BST_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace bst::util
