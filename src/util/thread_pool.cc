#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace bst::util {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates, so spawn workers-1 threads.
  threads_.reserve(workers - 1);
  for (std::size_t i = 1; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::size_t seen = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      ++inflight_;
    }
    run_chunks(task);
    {
      std::lock_guard lock(mu_);
      --inflight_;
    }
    cv_done_.notify_all();
  }
}

void ThreadPool::run_chunks(Task& task) {
  for (;;) {
    std::size_t lo;
    {
      std::lock_guard lock(mu_);
      if (next_ >= task.end) return;
      lo = next_;
      next_ = std::min(task.end, next_ + task.grain);
    }
    const std::size_t hi = std::min(task.end, lo + task.grain);
    for (std::size_t i = lo; i < hi; ++i) (*task.body)(i);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  if (threads_.empty() || end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  Task task{begin, end, grain, &body};
  {
    std::lock_guard lock(mu_);
    task_ = task;
    next_ = begin;
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunks(task);  // the caller helps
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [&] { return inflight_ == 0 && next_ >= task.end; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("BST_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n > 0) return static_cast<std::size_t>(n);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace bst::util
