#include "util/flops.h"

#include <chrono>

namespace bst::util {

thread_local std::uint64_t FlopCounter::count_ = 0;

double wall_seconds() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace bst::util
