#include "util/crashbox.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "util/calibrate.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"

namespace bst::util {

// ----------------------------------------------------------- sigsafe helpers

namespace sigsafe {

void write_all(int fd, const void* data, std::size_t len) noexcept {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n > 0) {
      p += n;
      len -= static_cast<std::size_t>(n);
    } else if (n < 0 && errno == EINTR) {
      continue;
    } else {
      return;  // unwritable fd: nothing sane to do from a signal handler
    }
  }
}

void write_str(int fd, const char* s) noexcept {
  if (s != nullptr) write_all(fd, s, std::strlen(s));
}

void write_u64(int fd, std::uint64_t v) noexcept {
  char buf[24];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + (v % 10));
    v /= 10;
  } while (v != 0);
  write_all(fd, p, static_cast<std::size_t>(buf + sizeof buf - p));
}

void write_i64(int fd, std::int64_t v) noexcept {
  if (v < 0) {
    write_str(fd, "-");
    // -INT64_MIN overflows; negate in unsigned space.
    write_u64(fd, ~static_cast<std::uint64_t>(v) + 1);
  } else {
    write_u64(fd, static_cast<std::uint64_t>(v));
  }
}

}  // namespace sigsafe

const char* req_phase_name(ReqPhase p) noexcept {
  switch (p) {
    case ReqPhase::kQueued: return "queued";
    case ReqPhase::kFactor: return "factor";
    case ReqPhase::kSolve: return "solve";
  }
  return "unknown";
}

// ------------------------------------------------------------ armed state
//
// Everything the handler touches lives in file-scope PODs with atomic
// members: zero-initialized before any dynamic initializer runs, so the
// note_* hooks are safe even from namespace-scope Metrics::counter(...)
// initializers elsewhere in the library.

namespace {

constexpr std::size_t kPathMax = 512;
constexpr std::size_t kProvMax = 2048;
constexpr std::size_t kTickMax = 16384;

std::atomic<bool> g_installed{false};
std::atomic<bool> g_handlers_set{false};
std::atomic<bool> g_dumped{false};
char g_path[kPathMax];        // written under g_install_mu, read after acquire
char g_provenance[kProvMax];  // pre-serialized at install()

// Last telemetry tick under a seqlock (odd = write in progress).  One
// writer (the exporter thread); the handler tolerates and flags tears.
std::atomic<std::uint32_t> g_tick_seq{0};
std::atomic<std::size_t> g_tick_len{0};
char g_tick_buf[kTickMax];

// Active-request slot table.  id 0 = free slot (service req ids start at 1).
struct ReqSlot {
  std::atomic<std::uint64_t> id;
  std::atomic<std::uint32_t> phase;
  std::atomic<std::uint64_t> since_ns;
};
ReqSlot g_reqs[Crashbox::kMaxRequests];
std::atomic<std::uint32_t> g_req_hint{0};
std::atomic<std::uint64_t> g_req_overflow{0};

// Name mirrors (phases / counters / gauges).  Appended under the owning
// registry's lock; the handler reads count with acquire.
struct NameSlot {
  std::atomic<std::int32_t> id;
  char name[Crashbox::kNameLen];
};
struct NameTable {
  NameSlot slots[Crashbox::kMaxNames];
  std::atomic<int> count;

  void note(int id, const char* name) noexcept {
    const int n = count.load(std::memory_order_relaxed);
    if (n >= Crashbox::kMaxNames || name == nullptr) return;
    std::size_t len = std::strlen(name);
    if (len > Crashbox::kNameLen - 1) len = Crashbox::kNameLen - 1;
    std::memcpy(slots[n].name, name, len);
    slots[n].name[len] = '\0';
    slots[n].id.store(id, std::memory_order_release);
    count.store(n + 1, std::memory_order_release);
  }
};
NameTable g_phases;
NameTable g_counters;
NameTable g_gauges;

std::uint64_t mono_ns() noexcept {
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

extern "C" void crashbox_handler(int sig, siginfo_t* /*info*/, void* /*ctx*/) {
  Crashbox::dump(sig, signal_name(sig));
  // SA_RESETHAND restored the default disposition before we ran; re-raise
  // so the process still dies with the original signal (core, wait status).
  ::raise(sig);
}

void write_name_table(int fd, const NameTable& t, const char* prefix,
                      std::uint64_t (*value_of)(int)) noexcept {
  const int n = t.count.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    sigsafe::write_str(fd, prefix);
    sigsafe::write_str(fd, t.slots[i].name);
    if (value_of != nullptr) {
      sigsafe::write_str(fd, " ");
      sigsafe::write_u64(fd, value_of(t.slots[i].id.load(std::memory_order_acquire)));
    } else {
      sigsafe::write_str(fd, " ");
      sigsafe::write_i64(fd, t.slots[i].id.load(std::memory_order_acquire));
    }
    sigsafe::write_str(fd, "\n");
  }
}

}  // namespace

// ------------------------------------------------------------- public API

bool Crashbox::install() {
  const char* dir = std::getenv("BST_CRASH_DIR");
  if (dir == nullptr || *dir == '\0') return false;
  return install(dir);
}

bool Crashbox::install(const char* dir) {
  if (dir == nullptr || *dir == '\0') return false;
  ::mkdir(dir, 0777);  // best-effort; open() below reports real failures

  char path[kPathMax];
  std::snprintf(path, sizeof path, "%s/crash_%ld.bstcrash", dir,
                static_cast<long>(::getpid()));
  std::memcpy(g_path, path, sizeof g_path);

  // Provenance is serialized now so the handler only has to write() it.
  char prov[kProvMax];
  int off = std::snprintf(prov, sizeof prov, "pid %ld\nhw_threads %u\n",
                          static_cast<long>(::getpid()),
                          std::thread::hardware_concurrency());
  const std::string cpu = cpu_model_name();
  const std::string fp = machine_fingerprint();
  off += std::snprintf(prov + off, sizeof prov - static_cast<std::size_t>(off),
                       "cpu %s\nfingerprint %s\n", cpu.c_str(), fp.c_str());
#ifdef BST_BUILD_TYPE
  off += std::snprintf(prov + off, sizeof prov - static_cast<std::size_t>(off),
                       "build %s\n", BST_BUILD_TYPE);
#endif
#ifdef BST_GIT_DESCRIBE
  off += std::snprintf(prov + off, sizeof prov - static_cast<std::size_t>(off),
                       "git %s\n", BST_GIT_DESCRIBE);
#endif
  if (off < 0 || static_cast<std::size_t>(off) >= kProvMax) prov[kProvMax - 1] = '\0';
  std::memcpy(g_provenance, prov, sizeof g_provenance);

  g_dumped.store(false, std::memory_order_relaxed);  // re-arm (tests)
  g_installed.store(true, std::memory_order_release);

  if (!g_handlers_set.exchange(true)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_sigaction = crashbox_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESETHAND;
    sigemptyset(&sa.sa_mask);
    for (const int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGBUS, SIGILL}) {
      ::sigaction(sig, &sa, nullptr);
    }
  }
  return true;
}

bool Crashbox::installed() noexcept {
  return g_installed.load(std::memory_order_acquire);
}

std::string Crashbox::report_path() {
  if (!installed()) return std::string();
  return std::string(g_path);
}

void Crashbox::set_last_tick(const char* data, std::size_t len) noexcept {
  if (data == nullptr || !installed()) return;
  if (len > kTickMax) len = kTickMax;
  g_tick_seq.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
  std::memcpy(g_tick_buf, data, len);
  g_tick_len.store(len, std::memory_order_relaxed);
  g_tick_seq.fetch_add(1, std::memory_order_release);  // even again
}

int Crashbox::request_begin(std::uint64_t id, ReqPhase phase) noexcept {
  if (!installed() || id == 0) return -1;
  const std::uint32_t h = g_req_hint.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < kMaxRequests; ++i) {
    const int s = static_cast<int>((h + static_cast<std::uint32_t>(i)) %
                                   static_cast<std::uint32_t>(kMaxRequests));
    std::uint64_t expected = 0;
    if (g_reqs[s].id.compare_exchange_strong(expected, id, std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      g_reqs[s].phase.store(static_cast<std::uint32_t>(phase), std::memory_order_relaxed);
      g_reqs[s].since_ns.store(mono_ns(), std::memory_order_release);
      return s;
    }
  }
  g_req_overflow.fetch_add(1, std::memory_order_relaxed);
  return -1;
}

void Crashbox::request_phase(int slot, ReqPhase phase) noexcept {
  if (slot < 0 || slot >= kMaxRequests) return;
  g_reqs[slot].phase.store(static_cast<std::uint32_t>(phase), std::memory_order_relaxed);
}

void Crashbox::request_end(int slot) noexcept {
  if (slot < 0 || slot >= kMaxRequests) return;
  g_reqs[slot].id.store(0, std::memory_order_release);
}

void Crashbox::note_phase(int id, const char* name) noexcept { g_phases.note(id, name); }
void Crashbox::note_counter(int id, const char* name) noexcept { g_counters.note(id, name); }
void Crashbox::note_gauge(int id, const char* name) noexcept { g_gauges.note(id, name); }

bool Crashbox::dump(int sig, const char* reason) noexcept {
  if (!installed()) return false;
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return false;

  const int fd = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;

  using sigsafe::write_all;
  using sigsafe::write_i64;
  using sigsafe::write_str;
  using sigsafe::write_u64;

  write_str(fd, "BSTCRASH v1\n");
  write_str(fd, "signal ");
  write_i64(fd, sig);
  write_str(fd, " ");
  write_str(fd, sig > 0 ? signal_name(sig) : (reason != nullptr ? reason : "manual"));
  write_str(fd, "\n");
  if (reason != nullptr) {
    write_str(fd, "reason ");
    write_str(fd, reason);
    write_str(fd, "\n");
  }
  write_str(fd, "ts_ns ");
  write_u64(fd, mono_ns());
  write_str(fd, "\n");

  write_str(fd, "provenance_begin\n");
  write_str(fd, g_provenance);
  write_str(fd, "provenance_end\n");

  // Counters and gauges: mirrored names + live relaxed-atomic value reads.
  write_str(fd, "counters_begin\n");
  write_name_table(fd, g_counters, "c ", [](int id) {
    return Metrics::counter_value(id);
  });
  const int ng = g_gauges.count.load(std::memory_order_acquire);
  for (int i = 0; i < ng; ++i) {
    write_str(fd, "g ");
    write_str(fd, g_gauges.slots[i].name);
    write_str(fd, " ");
    write_i64(fd, Metrics::gauge_value(g_gauges.slots[i].id.load(std::memory_order_acquire)));
    write_str(fd, "\n");
  }
  write_str(fd, "counters_end\n");

  // Active requests: id, coarse phase, age.
  const std::uint64_t now = mono_ns();
  write_str(fd, "requests_begin\n");
  for (int s = 0; s < kMaxRequests; ++s) {
    const std::uint64_t id = g_reqs[s].id.load(std::memory_order_acquire);
    if (id == 0) continue;
    const std::uint64_t since = g_reqs[s].since_ns.load(std::memory_order_relaxed);
    write_str(fd, "r ");
    write_u64(fd, id);
    write_str(fd, " ");
    write_str(fd, req_phase_name(static_cast<ReqPhase>(
                      g_reqs[s].phase.load(std::memory_order_relaxed))));
    write_str(fd, " ");
    write_u64(fd, now > since ? now - since : 0);
    write_str(fd, "\n");
  }
  const std::uint64_t overflow = g_req_overflow.load(std::memory_order_relaxed);
  if (overflow > 0) {
    write_str(fd, "overflow ");
    write_u64(fd, overflow);
    write_str(fd, "\n");
  }
  write_str(fd, "requests_end\n");

  // Phase-name table so the decoder can name ring events without the
  // (mutex-guarded) Tracer registry.
  write_str(fd, "phases_begin\n");
  write_name_table(fd, g_phases, "p ", nullptr);
  write_str(fd, "phases_end\n");

  // Last telemetry tick, length-prefixed; a concurrent writer tears it at
  // worst, and the tear is flagged.
  {
    const std::uint32_t s0 = g_tick_seq.load(std::memory_order_acquire);
    const std::size_t len = g_tick_len.load(std::memory_order_relaxed);
    write_str(fd, "tick ");
    write_u64(fd, len);
    write_str(fd, "\n");
    if (len > 0) write_all(fd, g_tick_buf, len);
    write_str(fd, "\n");
    const std::uint32_t s1 = g_tick_seq.load(std::memory_order_acquire);
    if (s0 != s1 || (s0 & 1u) != 0) write_str(fd, "tick_torn 1\n");
  }

  FlightRecorder::unsafe_dump(fd);

  write_str(fd, "end\n");
  ::close(fd);
  return true;
}

}  // namespace bst::util
