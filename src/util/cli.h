// Tiny --key=value command line parser for the bench/example binaries.
#pragma once

#include <map>
#include <string>

namespace bst::util {

/// Parses arguments of the form --key=value (or bare --flag => "1").
/// Unrecognized positional arguments are ignored.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// Returns the value for `key`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric accessors parse the *whole* value: trailing garbage
  /// (`--np=4x`, `--panel=8q`) throws std::runtime_error naming the flag
  /// instead of silently truncating to the leading digits.
  [[nodiscard]] long get_int(const std::string& key, long fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool has(const std::string& key) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace bst::util
