// Decoder for crashbox reports ("BSTCRASH v1", util/crashbox.h): parses the
// artifact back into structured form, renders a human-readable summary, and
// exports the final flight-recorder rings as a chrome-trace/Perfetto JSON
// document.  `tools/bst_postmortem` is the CLI over this; the library form
// exists so tests can round-trip a dump without shelling out.
//
// A report written from a signal handler can be imperfect: individual ring
// events may be torn (another thread was mid-push), and a report can be
// truncated if the process died while dumping.  The decoder is strict about
// the header (a file that is not a crash report throws) but tolerant past
// it: torn events are skipped and counted, truncation sets `truncated`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/flight_recorder.h"

namespace bst::util {

/// One decoded ring: the header fields plus the valid-filtered events.
struct CrashRing {
  std::uint32_t tid = 0;
  bool virtual_time = false;
  std::uint64_t head = 0;
  std::uint64_t cap = 0;
  std::uint64_t dropped = 0;     // wrap-lost events (as counted at dump time)
  std::uint64_t torn = 0;        // events discarded as unparseable
  std::string label;
  std::vector<FlightEvent> events;  // oldest first
};

struct CrashRequest {
  std::uint64_t id = 0;
  std::string phase;    // queued / factor / solve
  std::uint64_t age_ns = 0;
};

struct CrashReport {
  int signal = 0;                // 0 = non-signal dump (stall escalation, tests)
  std::string signal_name;
  std::string reason;
  std::uint64_t ts_ns = 0;
  std::vector<std::pair<std::string, std::string>> provenance;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<CrashRequest> requests;
  std::uint64_t request_overflow = 0;
  std::vector<std::pair<int, std::string>> phase_names;
  std::string last_tick;         // raw JSON tick line ("" = none captured)
  bool tick_torn = false;
  std::size_t event_size = 0;    // sizeof(FlightEvent) in the writing process
  std::vector<CrashRing> rings;
  std::uint64_t rings_skipped = 0;
  bool truncated = false;        // file ended before the `end` marker

  /// Phase-id -> name using the report's own table (not this process's).
  std::string phase_name(int id) const;
};

/// Parses a crash report.  Throws std::runtime_error when the file cannot
/// be read or is not a BSTCRASH v1 artifact.
CrashReport read_crash_report(const std::string& path);

/// Human-readable multi-line rendering (what `bst_postmortem` prints).
std::string crash_summary(const CrashReport& report);

/// Chrome-trace JSON of the report's rings, same shape as
/// FlightRecorder::write_chrome_trace but driven entirely by the decoded
/// report (phase names included), so it works across processes.
void write_crash_trace(const CrashReport& report, std::ostream& os);

}  // namespace bst::util
