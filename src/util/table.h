// Minimal fixed-width ASCII table printer used by the bench harnesses to
// emit the rows/series of the paper's tables and figures.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace bst::util {

/// One table cell: text, integer, or floating point value.
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned table with a title, header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header labels (defines the column count).
  void header(std::vector<std::string> labels);

  /// Appends a row; must match the header length.
  void row(std::vector<Cell> cells);

  /// Floating point cells are printed with this many significant digits.
  void precision(int digits) { precision_ = digits; }

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Structured access for the JSON report writer (util/report.h).
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& header_labels() const noexcept { return header_; }
  [[nodiscard]] const std::vector<std::vector<Cell>>& data() const noexcept { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 5;
};

/// One character per value, min-max normalized onto an ASCII density ramp
/// (".:-=+*#%@"); non-finite values render as '?', a constant series as
/// all-'-'.  Used by `bst_report --trend` to show a metric's history inline.
std::string sparkline(const std::vector<double>& values);

}  // namespace bst::util
