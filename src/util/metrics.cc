#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <mutex>

#include "util/crashbox.h"
#include "util/watchdog.h"

namespace bst::util {
namespace {

// One histogram's accumulators.  Min/max use CAS loops (updates are rare
// once the range has been seen); bucket counts are relaxed fetch-adds.
struct HistSlot {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
  std::atomic<std::uint64_t> buckets[kHistBuckets] = {};

  void record(std::uint64_t v) noexcept {
    count.fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
    buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t cur = min.load(std::memory_order_relaxed);
    while (v < cur && !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max.load(std::memory_order_relaxed);
    while (v > cur && !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept {
    count.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
    min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max.store(0, std::memory_order_relaxed);
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  }
};

// Named histograms plus one implicit latency histogram per trace phase.
HistSlot g_named[Metrics::kMaxHistograms];
HistSlot g_phase_ns[Tracer::kMaxPhases];

// Named monotonic counters (padded: unrelated counters on one cache line
// would make every fetch-add a false-sharing miss under concurrent use).
struct alignas(64) CtrSlot {
  std::atomic<std::uint64_t> value{0};
};
CtrSlot g_counters[Metrics::kMaxCounters];

// Gauges share the counter slot layout but hold signed readings.
struct alignas(64) GaugeSlot {
  std::atomic<std::int64_t> value{0};
};
GaugeSlot g_gauges[Metrics::kMaxGauges];

// Registrations refused because a kMax* table was full, plus the one-shot
// latch for the registry-full watchdog warning.  Deliberately outside the
// slot tables: the drop count must survive exactly the condition that
// exhausted them.
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_full_warned{false};

// Counts the refused registration and announces the saturation once per
// reset.  The warning rides the normal watchdog channel (report "warnings"
// section + flight-recorder instant), so it is gated on Tracer::enabled()
// like every other warning; the counter records unconditionally.
//
// Must be called WITHOUT registry_mu() held: Watchdog::warn bumps the
// `watchdog_warnings` counter, which re-enters Metrics::counter.  The
// thread_local guard breaks the one remaining cycle -- warn's own counter
// registration overflowing a full table must not warn again.
int register_dropped(const char* kind, int cap) {
  g_dropped.fetch_add(1, std::memory_order_relaxed);
  static thread_local bool in_warn = false;
  if (!in_warn && !g_full_warned.exchange(true, std::memory_order_relaxed)) {
    in_warn = true;
    Watchdog::warn(std::string("metrics_registry_full:") + kind, 0,
                   static_cast<double>(g_dropped.load(std::memory_order_relaxed)),
                   static_cast<double>(cap));
    in_warn = false;
  }
  return -1;
}

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<std::string>& registry() {
  static std::vector<std::string> names;
  return names;
}

std::vector<std::string>& counter_registry() {
  static std::vector<std::string> names;
  return names;
}

std::vector<std::string>& gauge_registry() {
  static std::vector<std::string> names;
  return names;
}

HistogramStats snapshot_slot(const HistSlot& s, std::string name) {
  HistogramStats out;
  out.name = std::move(name);
  out.count = s.count.load(std::memory_order_relaxed);
  out.sum = s.sum.load(std::memory_order_relaxed);
  out.min = s.min.load(std::memory_order_relaxed);
  out.max = s.max.load(std::memory_order_relaxed);
  for (int b = 0; b < kHistBuckets; ++b) {
    const std::uint64_t c = s.buckets[b].load(std::memory_order_relaxed);
    if (c != 0) out.buckets.emplace_back(hist_bucket_lo(b), c);
  }
  out.p50 = out.quantile(0.50);
  out.p95 = out.quantile(0.95);
  out.p99 = out.quantile(0.99);
  return out;
}

}  // namespace

int hist_bucket(std::uint64_t v) noexcept {
  if (v < kHistSubBuckets) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);  // >= 2 here
  const int sub = static_cast<int>((v >> (msb - 2)) & 3);
  return kHistSubBuckets * (msb - 1) + sub;
}

double hist_bucket_lo(int b) noexcept {
  if (b < kHistSubBuckets) return static_cast<double>(b);
  const int msb = b / kHistSubBuckets + 1;
  const int sub = b % kHistSubBuckets;
  return static_cast<double>(4 + sub) * std::exp2(static_cast<double>(msb - 2));
}

double hist_bucket_hi(int b) noexcept {
  if (b < kHistSubBuckets) return static_cast<double>(b + 1);
  const int msb = b / kHistSubBuckets + 1;
  const int sub = b % kHistSubBuckets;
  return static_cast<double>(5 + sub) * std::exp2(static_cast<double>(msb - 2));
}

double HistogramStats::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, then linear interpolation inside the bucket.
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto [lo, c] = buckets[i];
    const double next = cum + static_cast<double>(c);
    if (next >= target || i + 1 == buckets.size()) {
      const double hi = hist_bucket_hi(hist_bucket(static_cast<std::uint64_t>(lo)));
      const double frac = (c == 0) ? 0.0 : std::clamp((target - cum) / static_cast<double>(c), 0.0, 1.0);
      // Clamp into the recorded range so tiny histograms stay sensible.
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min), static_cast<double>(max));
    }
    cum = next;
  }
  return static_cast<double>(max);
}

HistId Metrics::histogram(const std::string& name) {
  {
    std::lock_guard lock(registry_mu());
    auto& names = registry();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<HistId>(i);
    }
    if (names.size() < static_cast<std::size_t>(kMaxHistograms)) {
      names.push_back(name);
      return static_cast<HistId>(names.size() - 1);
    }
  }
  return register_dropped("histogram", kMaxHistograms);
}

void Metrics::record(HistId id, std::uint64_t value) noexcept {
  if (id < 0 || id >= kMaxHistograms) return;
  g_named[id].record(value);
}

void Metrics::record_phase_ns(PhaseId id, std::uint64_t ns) noexcept {
  if (id < 0 || id >= Tracer::kMaxPhases) return;
  g_phase_ns[id].record(ns);
}

std::vector<HistogramStats> Metrics::snapshot() {
  std::vector<std::string> named;
  {
    std::lock_guard lock(registry_mu());
    named = registry();
  }
  std::vector<HistogramStats> out;
  for (std::size_t i = 0; i < named.size(); ++i) {
    if (g_named[i].count.load(std::memory_order_relaxed) == 0) continue;
    out.push_back(snapshot_slot(g_named[i], named[i]));
  }
  const std::vector<std::string> phases = Tracer::phase_names();
  for (std::size_t i = 0; i < phases.size() && i < Tracer::kMaxPhases; ++i) {
    if (g_phase_ns[i].count.load(std::memory_order_relaxed) == 0) continue;
    out.push_back(snapshot_slot(g_phase_ns[i], phases[i] + "_ns"));
  }
  return out;
}

CtrId Metrics::counter(const std::string& name) {
  {
    std::lock_guard lock(registry_mu());
    auto& names = counter_registry();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<CtrId>(i);
    }
    if (names.size() < static_cast<std::size_t>(kMaxCounters)) {
      names.push_back(name);
      const auto id = static_cast<CtrId>(names.size() - 1);
      // Mirror the name for the crashbox signal handler, which reads counter
      // values (relaxed atomics) but must not take this registry's mutex.
      Crashbox::note_counter(id, name.c_str());
      return id;
    }
  }
  return register_dropped("counter", kMaxCounters);
}

void Metrics::add(CtrId id, std::uint64_t delta) noexcept {
  if (id < 0 || id >= kMaxCounters) return;
  g_counters[id].value.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Metrics::counter_value(CtrId id) noexcept {
  if (id < 0 || id >= kMaxCounters) return 0;
  return g_counters[id].value.load(std::memory_order_relaxed);
}

std::vector<CounterStats> Metrics::counters_snapshot() {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mu());
    names = counter_registry();
  }
  std::vector<CounterStats> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::uint64_t v = g_counters[i].value.load(std::memory_order_relaxed);
    if (v != 0) out.push_back({names[i], v});
  }
  // Saturated registries must not disappear from reports: surface the drop
  // count as a synthetic counter that cannot itself be dropped.
  const std::uint64_t dropped = g_dropped.load(std::memory_order_relaxed);
  if (dropped != 0) out.push_back({"metrics_dropped", dropped});
  return out;
}

GaugeId Metrics::gauge(const std::string& name) {
  {
    std::lock_guard lock(registry_mu());
    auto& names = gauge_registry();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return static_cast<GaugeId>(i);
    }
    if (names.size() < static_cast<std::size_t>(kMaxGauges)) {
      names.push_back(name);
      const auto id = static_cast<GaugeId>(names.size() - 1);
      Crashbox::note_gauge(id, name.c_str());
      return id;
    }
  }
  return register_dropped("gauge", kMaxGauges);
}

void Metrics::gauge_set(GaugeId id, std::int64_t value) noexcept {
  if (id < 0 || id >= kMaxGauges) return;
  g_gauges[id].value.store(value, std::memory_order_relaxed);
}

void Metrics::gauge_add(GaugeId id, std::int64_t delta) noexcept {
  if (id < 0 || id >= kMaxGauges) return;
  g_gauges[id].value.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Metrics::gauge_value(GaugeId id) noexcept {
  if (id < 0 || id >= kMaxGauges) return 0;
  return g_gauges[id].value.load(std::memory_order_relaxed);
}

std::vector<GaugeStats> Metrics::gauges_snapshot() {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mu());
    names = gauge_registry();
  }
  std::vector<GaugeStats> out;
  out.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Zero is kept: an empty queue is a reading, not a non-event.
    out.push_back({names[i], g_gauges[i].value.load(std::memory_order_relaxed)});
  }
  return out;
}

std::uint64_t Metrics::dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

void Metrics::reset() {
  for (auto& s : g_named) s.reset();
  for (auto& s : g_phase_ns) s.reset();
  for (auto& s : g_counters) s.value.store(0, std::memory_order_relaxed);
  for (auto& s : g_gauges) s.value.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_full_warned.store(false, std::memory_order_relaxed);
}

}  // namespace bst::util
