// Flop accounting.
//
// The paper argues about representation choices through explicit flop
// models (eqs. 25-32).  To validate those models against the code that is
// actually run, every kernel in la/ charges its flops to a thread-local
// counter that can be sampled around any region of interest.
#pragma once

#include <cstdint>

namespace bst::util {

/// Thread-local running flop count charged by the la/ kernels.
class FlopCounter {
 public:
  /// Adds `n` flops to the current thread's counter.
  static void charge(std::uint64_t n) noexcept { count_ += n; }

  /// Current value of the counter.
  static std::uint64_t now() noexcept { return count_; }

  /// Resets the counter to zero.
  static void reset() noexcept { count_ = 0; }

 private:
  static thread_local std::uint64_t count_;
};

/// RAII sampler: measures the flops charged between construction and
/// `elapsed()` (or destruction, via `*out`).
class FlopScope {
 public:
  FlopScope() : start_(FlopCounter::now()) {}
  explicit FlopScope(std::uint64_t* out) : out_(out), start_(FlopCounter::now()) {}
  ~FlopScope() {
    if (out_ != nullptr) *out_ = elapsed();
  }
  FlopScope(const FlopScope&) = delete;
  FlopScope& operator=(const FlopScope&) = delete;

  [[nodiscard]] std::uint64_t elapsed() const noexcept {
    return FlopCounter::now() - start_;
  }

 private:
  std::uint64_t* out_ = nullptr;
  std::uint64_t start_;
};

/// Monotonic wall-clock timer returning seconds.
double wall_seconds() noexcept;

}  // namespace bst::util
