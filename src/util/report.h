// JSON perf reports with a stable schema.
//
// Every instrumented binary (tools/bst_solve --profile, the bench_fig*
// harnesses) emits the same machine-readable document so perf trajectories
// can be diffed across commits:
//
//   {
//     "schema_version": 1,
//     "tool":    "<binary name>",
//     "params":  { ... run parameters (n, m, rep, np, ...) },
//     "machine": { "hardware_concurrency": N, "pointer_bits": 64,
//                  "cpu_model": "...", "fingerprint": "<fnv1a>" },
//     "build":   { "compiler": "...", "build_type": "...", "flags": "...",
//                  "cxx": 202002 },
//     "phases":  { "<phase>": {"calls","seconds","flops","bytes"}, ... },
//     "steps":   [ {"step","min_hnorm","max_generator"}, ... ],
//     "histograms": { "<name>": {"count","min","max","mean",
//                                "p50","p95","p99", "buckets": [[lo,c],...]} },
//     "warnings": [ {"code","step","value","threshold"}, ... ],
//     "counters": { "<name>": value, ... },   (+ synthetic "metrics_dropped")
//     "gauges":   { "<name>": value, ... },   (nonzero readings at write time)
//     "threads": [ {"busy_seconds","idle_seconds","chunks"}, ... ],
//     "comm":    [ {"bytes_sent","bytes_recv","messages"}, ... ],
//     "pe_timeline":   { "makespan", "imbalance", "per_pe": [...] },
//     "comm_matrix":   { "bytes": [[...], ...] },
//     "critical_path": { "seconds","slack","by_kind", "segments": [...] },
//     "attainment":    { "calibration": {...}, "phases": { "<phase>":
//                        {"gflops","intensity","ceiling_gflops","attainment",
//                         "model_ratio",...} }, "obs_overhead_frac", ... },
//     "metrics": { ... scalar results (time_s, residual, ...) },
//     "tables":  [ {"title","columns",  "rows": [[...], ...]}, ... ]
//   }
//
// "phases"/"steps" come from util::Tracer; "histograms" from util::Metrics
// (log-bucketed latency/size distributions); "warnings" from the
// numerical-health watchdog (util/watchdog.h); "threads" from the
// ThreadPool worker stats; "comm" from the simulated Machine's per-PE
// counters.  Empty sections are omitted.  docs/OBSERVABILITY.md documents
// the schema and its compatibility rules (additive changes only -- which is
// why "histograms"/"warnings" did not bump schema_version; removals do).
//
// The Json value + parser here are deliberately minimal (objects, arrays,
// strings, numbers, bools, null; UTF-8 passed through) -- enough to write
// reports and to round-trip them in tests without an external dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/par_analysis.h"
#include "util/table.h"

namespace bst::util {

/// Bumped when a field is removed or its meaning changes; adding fields is
/// a compatible change and does not bump it.
inline constexpr int kReportSchemaVersion = 1;

/// Minimal JSON document tree.
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json number(std::uint64_t v);
  static Json number(std::int64_t v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const std::vector<Json>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const { return obj_; }

  /// Array append / object set (set replaces an existing key).
  void push(Json v);
  void set(const std::string& key, Json v);

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Serializes with 2-space indentation and full string escaping.
  void write(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump() const;

  /// Serializes without any whitespace (one line; the ledger entry format).
  void write_compact(std::ostream& os) const;
  [[nodiscard]] std::string dump_compact() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Parses a JSON document (throws std::runtime_error on malformed input).
Json parse_json(const std::string& text);

/// Assembles the standard report document.  The tracer sections are pulled
/// from util::Tracer at write time; callers add run parameters, scalar
/// metrics and result tables.
class PerfReport {
 public:
  explicit PerfReport(std::string tool);

  /// Run parameters (the "params" section).
  void param(const std::string& key, const std::string& value);
  void param(const std::string& key, std::int64_t value);
  void param(const std::string& key, double value);

  /// Scalar results (the "metrics" section).
  void metric(const std::string& key, double value);

  /// Attaches a result table (columns + typed rows).
  void add_table(const Table& table);

  /// Attaches one per-worker {busy_seconds, idle_seconds, chunks} entry.
  void add_thread(double busy_seconds, double idle_seconds, std::uint64_t chunks);

  /// Attaches one per-PE {bytes_sent, bytes_recv, messages} entry.
  void add_pe_comm(double bytes_sent, double bytes_recv, double messages);

  /// Attaches the parallel-schedule sections derived by analyze_schedule():
  /// "pe_timeline" (per-PE busy/comm/idle breakdown + imbalance index),
  /// "comm_matrix" (PE x PE payload bytes) and "critical_path" (the
  /// phase-attributed longest chain; see docs/OBSERVABILITY.md).
  void add_par_analysis(const ParAnalysis& a);

  /// Attaches the model-attainment section (util::attainment_section());
  /// emitted verbatim as "attainment" (additive, schema stays v1).
  void set_attainment(Json attainment);

  /// Attaches an arbitrary additive top-level section (e.g. "service" from
  /// service::Service::stats_json()).  Replaces an earlier section of the
  /// same key; the key must not collide with a built-in section name.
  void set_extra(const std::string& key, Json value);

  /// Builds the document: schema header, machine/build info, the Tracer's
  /// phases and step diagnostics (when `include_tracer`), and everything
  /// attached above.
  [[nodiscard]] Json build(bool include_tracer = true) const;

  /// build() + serialize.  write_file throws std::runtime_error when the
  /// path cannot be opened.
  void write(std::ostream& os, bool include_tracer = true) const;
  void write_file(const std::string& path, bool include_tracer = true) const;

 private:
  std::string tool_;
  Json params_ = Json::object();
  Json metrics_ = Json::object();
  Json tables_ = Json::array();
  Json threads_ = Json::array();
  Json comm_ = Json::array();
  Json pe_timeline_ = Json::null();
  Json comm_matrix_ = Json::null();
  Json critical_path_ = Json::null();
  Json attainment_ = Json::null();
  Json extra_ = Json::object();
};

}  // namespace bst::util
