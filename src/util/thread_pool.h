// A small work-sharing thread pool with a parallel_for primitive.
//
// The paper's shared-memory experiments (Cray Y-MP, section 9) parallelize
// the application of the block reflector across the generator's block
// columns.  We provide the same capability via an explicit pool rather than
// OpenMP so the code is self-contained and the chunking policy is visible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bst::util {

/// Fixed-size pool of worker threads executing index-range chunks.
class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means use the hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size() + 1; }

  /// Runs body(i) for i in [begin, end), splitting the range across the
  /// pool plus the calling thread.  Blocks until every index has run.
  /// `grain` is the minimum chunk size.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide default pool (lazy, sized from BST_THREADS or hardware).
  static ThreadPool& global();

 private:
  struct Task {
    std::size_t begin = 0, end = 0, grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop();
  void run_chunks(Task& task);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t next_ = 0;       // next unclaimed index of the active task
  std::size_t inflight_ = 0;   // workers still executing chunks
  std::size_t generation_ = 0; // bumped per parallel_for to wake workers
  bool stop_ = false;
};

}  // namespace bst::util
