// A small work-sharing thread pool with a parallel_for primitive.
//
// The paper's shared-memory experiments (Cray Y-MP, section 9) parallelize
// the application of the block reflector across the generator's block
// columns.  We provide the same capability via an explicit pool rather than
// OpenMP so the code is self-contained and the chunking policy is visible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bst::util {

/// Per-worker utilization counters (observability; sampled by worker_stats).
struct WorkerStats {
  double busy_seconds = 0.0;  // time executing parallel_for chunks
  double idle_seconds = 0.0;  // time parked waiting for work
  std::uint64_t chunks = 0;   // chunks claimed and executed
};

/// Fixed-size pool of worker threads executing index-range chunks.
class ThreadPool {
 public:
  /// Creates `workers` threads; 0 means use the hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const noexcept { return threads_.size() + 1; }

  /// Runs body(i) for i in [begin, end), splitting the range across the
  /// pool plus the calling thread.  Blocks until every index has run.
  /// `grain` is the minimum chunk size.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide default pool (lazy, sized from BST_THREADS or hardware).
  static ThreadPool& global();

  /// True while the calling thread is inside a parallel_for: always for pool
  /// workers, and for the dispatching caller between fan-out and join.
  /// Kernels consult this to stay serial instead of nesting parallelism.
  static bool in_parallel_region() noexcept;

  /// Snapshot of the per-thread utilization counters: slot 0 is the calling
  /// thread's share of parallel_for work, slots 1..size()-1 the workers.
  /// Busy/idle times only accumulate while util::Tracer is enabled (the
  /// instrumentation is two clock reads per chunk batch / wait otherwise
  /// avoided); chunk counts always accumulate.
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// Zeroes the utilization counters (e.g. at the start of a profiled run)
  /// and schedules a thread-local FlopCounter/ByteCounter reset on every
  /// worker: each worker re-zeroes its counters before claiming its next
  /// chunk, so back-to-back profiled solves in one process do not inherit
  /// the previous run's charges.  The *calling* thread's counters are left
  /// alone -- an enclosing FlopScope/TraceSpan on the caller must keep its
  /// baseline (callers reset their own counters explicitly if desired).
  void reset_worker_stats();

 private:
  struct Task {
    std::size_t begin = 0, end = 0, grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    // Flop/byte charges made by pool workers while executing this task's
    // chunks; parallel_for adds them to the *caller's* thread-local counters
    // at join, so totals are identical to a serial run (merge-on-join).
    // Point into the dispatching parallel_for's frame; workers only touch
    // them after claiming at least one chunk, which the join waits for.
    std::atomic<std::uint64_t>* flops = nullptr;
    std::atomic<std::uint64_t>* bytes = nullptr;
  };

  // Padded so workers on different cores do not share counter cache lines.
  struct alignas(64) StatSlot {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> chunks{0};
  };

  void worker_loop(std::size_t slot);
  std::uint64_t run_chunks(Task& task, StatSlot& stats);  // returns chunks run
  // run_chunks plus the merge-on-join counter publication (see .cc).
  void run_and_merge(Task& task, StatSlot& stats);
  // Serial fallback (empty pool, tiny range, or another dispatch in flight);
  // marks the calling thread as inside a parallel region for the duration.
  static void run_inline(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

  // Bumped by reset_worker_stats(); workers compare against a thread-local
  // copy and zero their FlopCounter/ByteCounter when it moved.
  std::atomic<std::uint64_t> counter_epoch_{0};

  // Dispatch guard: set while a parallel_for owns the workers.  A second
  // caller (another application thread, or a body nesting a parallel_for)
  // runs its range inline instead of corrupting the shared task slot.
  std::atomic<bool> busy_{false};

  std::vector<std::thread> threads_;
  std::vector<StatSlot> stats_;  // size() entries; fixed after construction
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t next_ = 0;       // next unclaimed index of the active task
  std::size_t inflight_ = 0;   // workers still executing chunks
  std::size_t generation_ = 0; // bumped per parallel_for to wake workers
  bool stop_ = false;
};

}  // namespace bst::util
