#include "util/postmortem.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bst::util {
namespace {

// First whitespace-separated token; `rest` gets everything after it.
std::string split_first(const std::string& line, std::string* rest) {
  const std::size_t sp = line.find(' ');
  if (sp == std::string::npos) {
    if (rest != nullptr) rest->clear();
    return line;
  }
  if (rest != nullptr) *rest = line.substr(sp + 1);
  return line.substr(0, sp);
}

std::uint64_t to_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::int64_t to_i64(const std::string& s) {
  return std::strtoll(s.c_str(), nullptr, 10);
}

bool plausible_event(const FlightEvent& e) {
  const auto kind = static_cast<std::uint8_t>(e.kind);
  if (kind > static_cast<std::uint8_t>(EventKind::kInstant)) return false;
  return e.phase >= -1 && e.phase < 65536;
}

double unbits(std::uint64_t u) {
  double v = 0.0;
  std::memcpy(&v, &u, sizeof v);
  return v;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string CrashReport::phase_name(int id) const {
  for (const auto& [pid, name] : phase_names) {
    if (pid == id) return name;
  }
  return "phase_" + std::to_string(id);
}

CrashReport read_crash_report(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open crash report '" + path + "'");

  std::string line;
  if (!std::getline(f, line) || line != "BSTCRASH v1") {
    throw std::runtime_error("'" + path + "' is not a BSTCRASH v1 report");
  }

  CrashReport rep;
  rep.truncated = true;  // cleared by the `end` marker
  enum class Section { kTop, kProvenance, kCounters, kRequests, kPhases, kRings };
  Section sec = Section::kTop;

  while (std::getline(f, line)) {
    if (sec == Section::kProvenance) {
      if (line == "provenance_end") {
        sec = Section::kTop;
      } else {
        std::string rest;
        const std::string key = split_first(line, &rest);
        rep.provenance.emplace_back(key, rest);
      }
      continue;
    }
    if (sec == Section::kCounters) {
      if (line == "counters_end") {
        sec = Section::kTop;
      } else {
        std::string rest, value;
        const std::string tag = split_first(line, &rest);
        const std::string name = split_first(rest, &value);
        if (tag == "c") rep.counters.emplace_back(name, to_u64(value));
        else if (tag == "g") rep.gauges.emplace_back(name, to_i64(value));
      }
      continue;
    }
    if (sec == Section::kRequests) {
      if (line == "requests_end") {
        sec = Section::kTop;
      } else {
        std::string rest;
        const std::string tag = split_first(line, &rest);
        if (tag == "r") {
          CrashRequest req;
          std::string after_id, age;
          req.id = to_u64(split_first(rest, &after_id));
          req.phase = split_first(after_id, &age);
          req.age_ns = to_u64(age);
          rep.requests.push_back(std::move(req));
        } else if (tag == "overflow") {
          rep.request_overflow = to_u64(rest);
        }
      }
      continue;
    }
    if (sec == Section::kPhases) {
      if (line == "phases_end") {
        sec = Section::kTop;
      } else {
        std::string rest, id;
        if (split_first(line, &rest) == "p") {
          const std::string name = split_first(rest, &id);
          rep.phase_names.emplace_back(static_cast<int>(to_i64(id)), name);
        }
      }
      continue;
    }
    if (sec == Section::kRings) {
      if (line == "rings_end") {
        sec = Section::kTop;
        continue;
      }
      std::string rest;
      const std::string tag = split_first(line, &rest);
      if (tag == "rings_skipped") {
        rep.rings_skipped = to_u64(rest);
        continue;
      }
      if (tag != "ring") continue;
      // ring <tid> <virtual> <head> <cap> <count> <dropped> <label>
      CrashRing ring;
      std::string r2, r3, r4, r5, r6;
      ring.tid = static_cast<std::uint32_t>(to_u64(split_first(rest, &r2)));
      ring.virtual_time = to_u64(split_first(r2, &r3)) != 0;
      ring.head = to_u64(split_first(r3, &r4));
      ring.cap = to_u64(split_first(r4, &r5));
      const std::uint64_t count = to_u64(split_first(r5, &r6));
      ring.dropped = to_u64(split_first(r6, &ring.label));
      if (rep.event_size == 0 || count > (1ull << 32)) break;  // malformed: stop
      std::vector<char> raw(static_cast<std::size_t>(count) * rep.event_size);
      if (!f.read(raw.data(), static_cast<std::streamsize>(raw.size()))) {
        // Truncated mid-ring: decode what arrived.
        raw.resize(static_cast<std::size_t>(f.gcount()));
      }
      const std::size_t n = raw.size() / rep.event_size;
      ring.events.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        FlightEvent e;
        if (rep.event_size == sizeof(FlightEvent)) {
          std::memcpy(&e, raw.data() + i * rep.event_size, sizeof e);
          if (plausible_event(e)) {
            ring.events.push_back(e);
            continue;
          }
        }
        ++ring.torn;  // torn record, or a cross-version event size
      }
      rep.rings.push_back(std::move(ring));
      f.get();  // the '\n' after the raw bytes
      continue;
    }

    // Top level.
    std::string rest;
    const std::string key = split_first(line, &rest);
    if (key == "signal") {
      std::string name;
      rep.signal = static_cast<int>(to_i64(split_first(rest, &name)));
      rep.signal_name = name;
    } else if (key == "reason") {
      rep.reason = rest;
    } else if (key == "ts_ns") {
      rep.ts_ns = to_u64(rest);
    } else if (key == "provenance_begin") {
      sec = Section::kProvenance;
    } else if (key == "counters_begin") {
      sec = Section::kCounters;
    } else if (key == "requests_begin") {
      sec = Section::kRequests;
    } else if (key == "phases_begin") {
      sec = Section::kPhases;
    } else if (key == "tick") {
      const std::uint64_t len = to_u64(rest);
      if (len > 0 && len < (1ull << 24)) {
        std::string tick(static_cast<std::size_t>(len), '\0');
        if (f.read(tick.data(), static_cast<std::streamsize>(len))) {
          rep.last_tick = std::move(tick);
        }
      }
      f.get();  // trailing '\n'
    } else if (key == "tick_torn") {
      rep.tick_torn = true;
    } else if (key == "event_size") {
      rep.event_size = static_cast<std::size_t>(to_u64(rest));
    } else if (key == "rings_begin") {
      sec = Section::kRings;
    } else if (key == "end") {
      rep.truncated = false;
      break;
    }
  }
  return rep;
}

std::string crash_summary(const CrashReport& rep) {
  std::ostringstream os;
  os << "BSTCRASH v1: " << (rep.signal_name.empty() ? "unknown" : rep.signal_name)
     << " (signal " << rep.signal << ")";
  if (!rep.reason.empty() && rep.reason != rep.signal_name) {
    os << ", reason: " << rep.reason;
  }
  os << "\n";
  if (rep.truncated) os << "WARNING: report truncated (process died mid-dump)\n";

  os << "provenance:\n";
  for (const auto& [key, value] : rep.provenance) {
    os << "  " << key << " " << value << "\n";
  }

  if (rep.last_tick.empty()) {
    os << "last tick: (none)\n";
  } else {
    os << "last tick" << (rep.tick_torn ? " (torn)" : "") << ": " << rep.last_tick << "\n";
  }

  os << "active requests (" << rep.requests.size();
  if (rep.request_overflow > 0) os << ", overflow " << rep.request_overflow;
  os << "):\n";
  for (const CrashRequest& r : rep.requests) {
    char age[32];
    std::snprintf(age, sizeof age, "%.3f", static_cast<double>(r.age_ns) / 1e6);
    os << "  req " << r.id << " phase=" << r.phase << " age_ms=" << age << "\n";
  }

  os << "counters (nonzero):\n";
  for (const auto& [name, value] : rep.counters) {
    if (value != 0) os << "  " << name << " " << value << "\n";
  }
  os << "gauges:\n";
  for (const auto& [name, value] : rep.gauges) {
    os << "  " << name << " " << value << "\n";
  }

  std::uint64_t events = 0, dropped = 0, torn = 0;
  for (const CrashRing& ring : rep.rings) {
    events += ring.events.size();
    dropped += ring.dropped;
    torn += ring.torn;
  }
  os << "rings (" << rep.rings.size() << ", " << events << " events, " << dropped
     << " dropped, " << torn << " torn";
  if (rep.rings_skipped > 0) os << ", " << rep.rings_skipped << " rings skipped";
  os << "):\n";
  for (const CrashRing& ring : rep.rings) {
    os << "  tid " << ring.tid << " '" << ring.label << "' " << ring.events.size()
       << " events";
    // The deepest still-open span is where that thread died.
    std::vector<PhaseId> stack;
    for (const FlightEvent& e : ring.events) {
      if (e.kind == EventKind::kBegin) stack.push_back(e.phase);
      else if (e.kind == EventKind::kEnd && !stack.empty()) stack.pop_back();
    }
    if (!stack.empty()) os << ", open span: " << rep.phase_name(stack.back());
    os << "\n";
  }
  return os.str();
}

void write_crash_trace(const CrashReport& rep, std::ostream& os) {
  // Common steady-clock origin (virtual tracks are already zero-based).
  std::uint64_t t0 = ~std::uint64_t{0};
  bool any_real = false;
  for (const CrashRing& ring : rep.rings) {
    if (ring.virtual_time) continue;
    for (const FlightEvent& e : ring.events) {
      any_real = true;
      t0 = std::min(t0, e.ts_ns);
    }
  }
  if (!any_real) t0 = 0;

  os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&](const std::string& body) {
    if (!first) os << ",\n";
    first = false;
    os << "    " << body;
  };
  for (const CrashRing& ring : rep.rings) {
    if (ring.label.empty()) continue;
    std::ostringstream b;
    b << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << ring.tid
      << ", \"args\": {\"name\": ";
    write_json_string(b, ring.label);
    b << "}}";
    emit(b.str());
  }
  for (const CrashRing& ring : rep.rings) {
    // Re-balance exactly like the live exporter; Begins still open at the
    // crash are emitted as instants so the viewer shows where it died.
    std::vector<char> emit_flag(ring.events.size(), 0);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < ring.events.size(); ++i) {
      switch (ring.events[i].kind) {
        case EventKind::kBegin: stack.push_back(i); break;
        case EventKind::kEnd:
          if (!stack.empty()) {
            emit_flag[stack.back()] = 1;
            emit_flag[i] = 1;
            stack.pop_back();
          }
          break;
        case EventKind::kInstant: emit_flag[i] = 1; break;
      }
    }
    auto ts_of = [&](const FlightEvent& e) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(e.ts_ns - (ring.virtual_time ? 0 : t0)) * 1e-3);
      return std::string(buf);
    };
    for (std::size_t i = 0; i < ring.events.size(); ++i) {
      const FlightEvent& e = ring.events[i];
      const bool open_at_crash =
          e.kind == EventKind::kBegin && !emit_flag[i];
      if (!emit_flag[i] && !open_at_crash) continue;
      std::ostringstream b;
      b << "{\"name\": ";
      write_json_string(b, rep.phase_name(e.phase) +
                               (open_at_crash ? " (open at crash)" : ""));
      const char ph = open_at_crash                  ? 'i'
                      : e.kind == EventKind::kBegin  ? 'B'
                      : e.kind == EventKind::kEnd    ? 'E'
                                                     : 'i';
      b << ", \"ph\": \"" << ph << "\"";
      if (ph == 'i') b << ", \"s\": \"t\"";
      b << ", \"pid\": 1, \"tid\": " << ring.tid << ", \"ts\": " << ts_of(e);
      b << ", \"args\": {\"step\": " << e.step;
      if (e.kind == EventKind::kInstant) {
        char v[40], t[40];
        std::snprintf(v, sizeof v, "%.17g", unbits(e.a));
        std::snprintf(t, sizeof t, "%.17g", unbits(e.b));
        b << ", \"value\": " << v << ", \"threshold\": " << t;
      }
      b << "}}";
      emit(b.str());
    }
    if (ring.dropped > 0 || ring.torn > 0) {
      std::ostringstream b;
      b << "{\"name\": \"flight_recorder_dropped\", \"ph\": \"i\", \"s\": \"t\", "
           "\"pid\": 1, \"tid\": "
        << ring.tid << ", \"ts\": 0.000, \"args\": {\"dropped\": " << ring.dropped
        << ", \"torn\": " << ring.torn << "}}";
      emit(b.str());
    }
  }
  os << "\n  ]\n}\n";
}

}  // namespace bst::util
