// Hang/stall detection: per-thread heartbeats plus a monitor thread.
//
// A crashed process trips the crashbox signal handler; a *wedged* one dies
// silently -- a dispatcher stuck on a lock, a pool worker spinning in a
// pathological kernel, an exporter blocked on a full disk.  StallGuard
// closes that gap: long-lived threads register a heartbeat slot and stamp
// it as they make progress (`beat()`), or park it while they are
// legitimately idle (`idle()`).  A monitor thread wakes every few hundred
// milliseconds and flags any busy slot whose stamp is older than
// `BST_STALL_MS`:
//
//   * logs the stalled thread's label and its current open flight-recorder
//     span to stderr,
//   * bumps the `stalls_detected` counter and the `stalled_threads` gauge,
//     so the live telemetry tick stream carries the detection,
//   * raises a `thread_stall` watchdog warning,
//   * and, with `BST_STALL_FATAL=1`, escalates: crashbox dump + abort, so
//     a wedged service turns into a decodable crash report.
//
// A flagged slot that beats again is unflagged (and logged as recovered):
// detection is per-episode, not per-scan.  Heartbeats are two relaxed
// stores; everything is a no-op until start() runs, so the cost in
// unmonitored processes is one thread-local read per beat() call.
//
// Wired in: ThreadPool workers ("pool:<slot>"), the service dispatcher
// ("svc:dispatcher"), the telemetry exporter ("telemetry"), plus beats
// inside the Schur step and refinement loops so genuinely long
// factorizations never read as stalls.  Tuning: docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>

namespace bst::util {

struct StallGuardOptions {
  std::uint64_t stall_ms = 0;  // heartbeat age that counts as a stall; 0 = off
  bool fatal = false;          // escalate a stall to crashbox dump + abort
  std::uint64_t poll_ms = 0;   // monitor period; 0 = stall_ms/4, clamped [5, 1000]

  /// BST_STALL_MS / BST_STALL_FATAL (unset -> disabled).
  static StallGuardOptions from_env();
};

class StallGuard {
 public:
  static constexpr int kMaxThreads = 64;  // heartbeat slots (overflow -> -1, counted)

  /// Claims (or returns) the calling thread's heartbeat slot and stamps it
  /// busy.  Idempotent per thread; the slot is released at thread exit.
  /// Returns -1 when the table is full.
  static int register_self(const char* label);

  /// Stamps the calling thread's heartbeat (no-op when unregistered).
  static void beat() noexcept;

  /// Parks the calling thread's slot: an idle thread is never a stall.
  static void idle() noexcept;

  /// Starts the monitor thread.  No-op when opt.stall_ms == 0 or already
  /// running.  start_from_env() is the env-gated form subsystems call.
  static void start(const StallGuardOptions& opt);
  static void start_from_env();
  static void stop();
  static bool running();

  /// One synchronous monitor pass with explicit options (tests; does not
  /// require the monitor thread).  Returns the number of newly flagged
  /// stalls.
  static std::uint64_t scan_once(const StallGuardOptions& opt);

  /// Lifetime total of detected stall episodes (the `stalls_detected`
  /// counter).
  static std::uint64_t stalls_detected() noexcept;
};

}  // namespace bst::util
