// Deterministic fault injection: `BST_FAULT=<site>:<kind>[:<count>]`.
//
// The post-mortem layer (util/crashbox, util/stallguard) is only testable
// if failures are reproducible on demand, so the hot paths carry named
// fault sites -- `Fault::fire("cache_fill")` -- that are a single relaxed
// atomic load when no fault is armed.  Arming one via the environment makes
// the `count`-th hit of the named site misbehave:
//
//   crash    null-pointer write -> SIGSEGV (exercises the crashbox handler)
//   fp-trap  enables FE_DIVBYZERO traps and divides by zero -> SIGFPE
//   hang     sleeps BST_FAULT_HANG_MS (default 2000) -> trips stallguard
//   slow     sleeps BST_FAULT_SLOW_MS (default 50) on every hit from
//            `count` on -> exercises the slow-request/SLO paths
//
// Sites (docs/OBSERVABILITY.md keeps the catalog): admission, dispatch,
// cache_fill, schur_step, refine.  `count` defaults to 1 (first hit).
//
// Exactly one site can be armed per process; parsing happens once at load
// time (reload() re-parses for tests).
#pragma once

#include <cstdint>

namespace bst::util {

enum class FaultKind : int { kNone = 0, kCrash, kHang, kFpTrap, kSlow };

class Fault {
 public:
  /// True when BST_FAULT parsed to an armed site (one relaxed load).
  static bool armed() noexcept;

  /// Hit the named site: no-op unless this site is armed and the hit count
  /// reached the configured threshold, in which case the fault triggers
  /// (crash/fp-trap do not return).
  static void fire(const char* site) noexcept;

  /// Re-parses BST_FAULT / BST_FAULT_*_MS from the environment.  Tests use
  /// this after setenv(); death tests call it inside the forked child.
  static void reload();

  /// "site:kind:count" of the armed fault, or "" when disarmed.
  static const char* describe() noexcept;
};

}  // namespace bst::util
