#include "util/trace.h"

#include <chrono>
#include <mutex>
#include <stdexcept>

#include "util/crashbox.h"
#include "util/flight_recorder.h"
#include "util/metrics.h"
#include "util/prof.h"
#include "util/watchdog.h"

namespace bst::util {
namespace {

thread_local std::int64_t t_current_step = 0;

// Fixed-capacity accumulator slots: commit() must stay lock-free, so the
// registry only ever appends names and the per-phase atomics live in a
// static array (cache-line padded against false sharing between phases
// committed from different threads).
struct alignas(64) PhaseSlot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> wall_ns{0};
  std::atomic<std::uint64_t> flops{0};
  std::atomic<std::uint64_t> bytes{0};
};

PhaseSlot g_slots[Tracer::kMaxPhases];

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<std::string>& registry() {
  static std::vector<std::string> names;
  return names;
}

std::mutex& steps_mu() {
  static std::mutex mu;
  return mu;
}

std::vector<StepDiag>& step_log() {
  static std::vector<StepDiag> log;
  return log;
}

}  // namespace

thread_local std::uint64_t ByteCounter::count_ = 0;

std::atomic<bool> Tracer::enabled_{false};

PhaseId Tracer::phase(const std::string& name) {
  std::lock_guard lock(registry_mu());
  auto& names = registry();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<PhaseId>(i);
  }
  if (names.size() >= static_cast<std::size_t>(kMaxPhases)) {
    throw std::length_error("Tracer: phase registry full (kMaxPhases)");
  }
  names.push_back(name);
  const auto id = static_cast<PhaseId>(names.size() - 1);
  // Mirror into the crashbox name table (fixed, lock-free) so the signal
  // handler can emit a phase-id -> name mapping without this mutex.
  Crashbox::note_phase(id, name.c_str());
  return id;
}

std::vector<std::string> Tracer::phase_names() {
  std::lock_guard lock(registry_mu());
  return registry();
}

void Tracer::reset() {
  for (PhaseSlot& s : g_slots) {
    s.calls.store(0, std::memory_order_relaxed);
    s.wall_ns.store(0, std::memory_order_relaxed);
    s.flops.store(0, std::memory_order_relaxed);
    s.bytes.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(steps_mu());
    step_log().clear();
  }
  Metrics::reset();
  Watchdog::reset();
  FlightRecorder::reset();
  Prof::reset();
}

void Tracer::set_step(std::int64_t step) noexcept { t_current_step = step; }

std::int64_t Tracer::current_step() noexcept { return t_current_step; }

void Tracer::commit(PhaseId id, std::uint64_t wall_ns, std::uint64_t flops,
                    std::uint64_t bytes) noexcept {
  if (id < 0 || id >= kMaxPhases) return;
  PhaseSlot& s = g_slots[id];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
  s.flops.fetch_add(flops, std::memory_order_relaxed);
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void Tracer::record_step(std::int64_t step, double min_hnorm, double max_generator) {
  if (!enabled()) return;
  std::lock_guard lock(steps_mu());
  step_log().push_back({step, min_hnorm, max_generator});
}

std::vector<PhaseStats> Tracer::snapshot() {
  std::vector<std::string> names;
  {
    std::lock_guard lock(registry_mu());
    names = registry();
  }
  std::vector<PhaseStats> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const PhaseSlot& s = g_slots[i];
    const std::uint64_t calls = s.calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    PhaseStats ps;
    ps.name = names[i];
    ps.calls = calls;
    ps.seconds = static_cast<double>(s.wall_ns.load(std::memory_order_relaxed)) * 1e-9;
    ps.flops = s.flops.load(std::memory_order_relaxed);
    ps.bytes = s.bytes.load(std::memory_order_relaxed);
    out.push_back(std::move(ps));
  }
  return out;
}

std::vector<StepDiag> Tracer::steps() {
  std::lock_guard lock(steps_mu());
  return step_log();
}

std::uint64_t TraceClock::now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now().time_since_epoch())
          .count());
}

void TraceSpan::open(PhaseId id) noexcept {
  id_ = id;
  flops0_ = FlopCounter::now();
  bytes0_ = ByteCounter::now();
  t0_ = TraceClock::now_ns();
  if (FlightRecorder::enabled()) FlightRecorder::begin(id_, t0_, flops0_, bytes0_);
  if (Prof::armed()) Prof::on_span_open(id_);
}

void TraceSpan::close() noexcept {
  // PMU delta first, so the hardware window excludes the bookkeeping below
  // (the wall-time window symmetrically excludes the open()-side PMU read).
  if (Prof::armed()) Prof::on_span_close(id_);
  const std::uint64_t t1 = TraceClock::now_ns();
  const std::uint64_t dflops = FlopCounter::now() - flops0_;
  const std::uint64_t dbytes = ByteCounter::now() - bytes0_;
  Tracer::commit(id_, t1 - t0_, dflops, dbytes);
  Metrics::record_phase_ns(id_, t1 - t0_);
  if (FlightRecorder::enabled()) FlightRecorder::end(id_, t1, dflops, dbytes);
}

}  // namespace bst::util
