// Post-processing of captured parallel-run schedules: per-PE timelines,
// the PE x PE communication matrix, and the critical path.
//
// The paper's whole experimental argument (section 7, figs. 6-9) is about
// *where time goes on each PE* -- compute vs. broadcast vs. shift vs.
// barrier under the V1/V2/V3 layouts.  The simulated Machine (and, for
// labels only, the threaded SPMD runtime) records one PeSpan per primitive
// per PE while the Tracer is enabled; this module turns that schedule into
// the quantities the figures are drawn from:
//
//   * per-PE busy/comm/idle breakdown (who is the straggler?),
//   * a PE x PE byte matrix (who talks to whom, and how much?),
//   * a load-imbalance index (max/mean compute time),
//   * the critical path through the send/recv/barrier dependency graph:
//     the longest chain of spans in which each span starts exactly where
//     its predecessor ends -- on the same PE, or across PEs through a
//     message arrival or a barrier release.  Its length telescopes to the
//     simulated makespan; `consistent()` checks that invariant.
//
// The same schedule replays into the flight recorder as one virtual track
// per PE ("pe:<k>", emit_schedule), so `--trace=` opens as a per-PE Gantt
// chart in Perfetto / chrome://tracing.  Report sections built from a
// ParAnalysis are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <vector>

namespace bst::util {

/// What a PE was doing during a span (the paper's accounting buckets,
/// with communication split into its send/receive sides).
enum class SpanKind : std::uint8_t {
  kCompute,        // local arithmetic
  kSend,           // injecting a point-to-point message (shift traffic)
  kRecv,           // waiting for / synchronizing with a message arrival
  kBroadcast,      // root side of a tree broadcast (or modeled comm delay)
  kBroadcastRecv,  // leaf side: waiting for the broadcast front
  kBarrier,        // inside the barrier tree
  kIdle,           // stalled at a barrier waiting for the straggler
};

const char* to_string(SpanKind k);

/// One captured span of one PE's virtual clock.  Zero-length spans are
/// legal (a message that arrives before the receiver would have waited
/// still carries bytes for the communication matrix).
struct PeSpan {
  int pe = 0;
  int peer = -1;         // message partner (dst for kSend, src for k*Recv)
  std::int64_t step = 0; // Schur step (Tracer::current_step() at capture)
  SpanKind kind = SpanKind::kCompute;
  double t0 = 0.0;       // virtual seconds
  double t1 = 0.0;
  double bytes = 0.0;    // payload volume (kSend / k*Recv)

  [[nodiscard]] double seconds() const noexcept { return t1 - t0; }
};

/// A whole run's capture: every PE's spans, in capture order.
struct ParSchedule {
  int np = 0;
  std::vector<PeSpan> spans;

  [[nodiscard]] bool empty() const noexcept { return spans.empty(); }
};

/// Per-PE time totals by bucket (virtual seconds).
struct PeUsage {
  double compute = 0.0;
  double send = 0.0;
  double recv = 0.0;
  double broadcast = 0.0;  // root + leaf sides
  double barrier = 0.0;
  double idle = 0.0;

  [[nodiscard]] double comm() const noexcept { return send + recv + broadcast; }
};

/// One merged segment of the critical path: consecutive chain spans on the
/// same PE with the same kind, chronological order.
struct CritSegment {
  int pe = 0;
  SpanKind kind = SpanKind::kCompute;
  std::int64_t first_step = 0;
  std::int64_t last_step = 0;
  double seconds = 0.0;
};

/// Everything analyze_schedule() derives from a ParSchedule.
struct ParAnalysis {
  double makespan = 0.0;                         // max span end time
  std::vector<PeUsage> per_pe;                   // indexed by PE
  std::vector<std::vector<double>> comm_matrix;  // [src][dst] payload bytes
  double imbalance = 0.0;                        // max/mean per-PE compute
  std::vector<CritSegment> critical_path;        // chronological segments
  double critical_path_seconds = 0.0;            // sum of segment seconds
  double critical_slack = 0.0;                   // makespan - path length
  /// Per-kind totals along the critical path, indexed by SpanKind.
  std::vector<double> critical_by_kind;

  /// The invariant the capture must satisfy: the critical path telescopes
  /// (gaplessly) from the makespan back to t = 0.
  [[nodiscard]] bool consistent(double rel_tol = 1e-9) const noexcept {
    return critical_slack <= rel_tol * (makespan > 0.0 ? makespan : 1.0);
  }
};

/// Derives timelines, the communication matrix, the imbalance index and
/// the critical path from a captured schedule.
ParAnalysis analyze_schedule(const ParSchedule& sched);

/// Replays the schedule into the flight recorder as one virtual track per
/// PE (labelled "pe:<k>", balanced begin/end pairs with byte/peer payloads)
/// so write_chrome_trace() yields a per-PE Gantt.  No-op while the
/// recorder is off or the schedule is empty.
void emit_schedule(const ParSchedule& sched);

}  // namespace bst::util
