// Structured tracing: named phase counters + RAII spans.
//
// The paper's performance argument is phase-structured -- it attributes the
// cost of a Schur step to building the block reflector (eqs. 25-28) versus
// applying it (eqs. 29-32), and its distributed analysis splits time into
// compute / broadcast / shift buckets.  This layer lets the real code carry
// the same structure: a TraceSpan charges the wall time, flops and bytes of
// a region to a named phase, and the accumulated per-phase totals (plus
// optional per-step numerical diagnostics) feed the JSON perf reports of
// util/report.h.
//
// Design constraints:
//   * A disabled tracer costs one relaxed atomic load + branch per span --
//     cheap enough to leave spans permanently in the hot paths.
//   * Accumulation is thread-safe: spans may open and close on pool workers
//     or SPMD threads; totals land in per-phase relaxed atomics.
//   * Spans are *inclusive*: a span nested inside another charges its phase
//     AND remains part of the outer span's elapsed time/flops.  Phase totals
//     therefore only sum to end-to-end time across non-overlapping phases.
//   * Flops/bytes are read from the thread-local FlopCounter/ByteCounter, so
//     a span only observes work charged on its own thread.  Regions that
//     fan out to a pool must open the span inside the worker callback (see
//     core/schur.cc) rather than around the parallel_for.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/flops.h"

namespace bst::util {

/// Thread-local estimate of bytes moved by the la/ kernels (operand reads +
/// writes per call, not cache-aware), mirroring FlopCounter.  Together with
/// the flop totals this gives per-phase arithmetic intensity.
class ByteCounter {
 public:
  static void charge(std::uint64_t n) noexcept { count_ += n; }
  static std::uint64_t now() noexcept { return count_; }
  static void reset() noexcept { count_ = 0; }

 private:
  static thread_local std::uint64_t count_;
};

/// Stable identifier of an interned phase name.
using PhaseId = int;

/// The steady clock every observability layer shares (nanoseconds).
struct TraceClock {
  static std::uint64_t now_ns() noexcept;
};

/// Accumulated totals of one phase (a snapshot; see Tracer::snapshot).
struct PhaseStats {
  std::string name;
  std::uint64_t calls = 0;    // completed spans
  double seconds = 0.0;       // summed wall time (inclusive)
  std::uint64_t flops = 0;    // flops charged on the span's thread
  std::uint64_t bytes = 0;    // bytes charged on the span's thread
};

/// Per-step numerical diagnostics (Bojanczyk/Brent/de Hoog-style stability
/// monitoring): the smallest |hyperbolic norm| met while building the
/// step's reflectors, and the generator's max-magnitude entry afterwards
/// (growth relative to Generator::norm_g1 is left to the consumer).
struct StepDiag {
  std::int64_t step = 0;
  double min_hnorm = 0.0;
  double max_generator = 0.0;
};

/// Process-wide tracer: a registry of named phases with atomic accumulators.
///
/// Typical call-site pattern (the static local interns the name once):
///
///   static const util::PhaseId kBuild = util::Tracer::phase("reflector_build");
///   { util::TraceSpan span(kBuild); bref.build(p, q); }
class Tracer {
 public:
  /// Tracing costs nothing (beyond this test) while disabled.
  static bool enabled() noexcept { return enabled_.load(std::memory_order_relaxed); }
  static void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  static void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

  /// Interns `name`, returning its id (idempotent: same name, same id).
  /// Phases live for the process; there is room for kMaxPhases distinct
  /// names, after which phase() throws std::length_error.
  static PhaseId phase(const std::string& name);

  /// Every interned phase name, indexed by PhaseId.
  static std::vector<std::string> phase_names();

  /// Zeroes every accumulator and drops recorded step diagnostics, and
  /// resets the rest of the observability layer with it -- histograms
  /// (util/metrics.h), warnings (util/watchdog.h) and flight-recorder rings
  /// (util/flight_recorder.h) -- so one call arms a clean profiled run.
  /// Registries (phase and histogram names) are preserved; ids stay valid.
  static void reset();

  /// Thread-local Schur step index attached to flight-recorder events
  /// (set by the factorization drivers at the top of each step; workers
  /// set it inside their callbacks).
  static void set_step(std::int64_t step) noexcept;
  static std::int64_t current_step() noexcept;

  /// Adds one completed span to phase `id` (used by TraceSpan; also handy
  /// for charging externally-measured regions, e.g. per-worker busy time).
  static void commit(PhaseId id, std::uint64_t wall_ns, std::uint64_t flops,
                     std::uint64_t bytes) noexcept;

  /// Records a per-step diagnostic (no-op while disabled).
  static void record_step(std::int64_t step, double min_hnorm, double max_generator);

  /// Copies out every phase with at least one committed span.
  static std::vector<PhaseStats> snapshot();

  /// Copies out the recorded per-step diagnostics (ordered by record time).
  static std::vector<StepDiag> steps();

  static constexpr int kMaxPhases = 64;

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: charges the enclosed wall time and the flops/bytes charged on
/// this thread to the given phase.  When the tracer is disabled both the
/// constructor and destructor reduce to a relaxed load + branch.  While
/// enabled, closing a span also feeds the phase's `<phase>_ns` latency
/// histogram (util/metrics.h) and, when the flight recorder is on, emits
/// begin/end timeline events (util/flight_recorder.h).
class TraceSpan {
 public:
  explicit TraceSpan(PhaseId id) noexcept {
    if (!Tracer::enabled()) return;
    open(id);
  }
  ~TraceSpan() {
    if (id_ < 0) return;
    close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(PhaseId id) noexcept;   // out of line: touches the recorder
  void close() noexcept;            // out of line: commit + histogram + event

  PhaseId id_ = -1;  // -1: tracer was disabled at construction
  std::uint64_t t0_ = 0;
  std::uint64_t flops0_ = 0;
  std::uint64_t bytes0_ = 0;
};

}  // namespace bst::util
