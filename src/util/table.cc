#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bst::util {
namespace {

std::string render(const Cell& c, int precision) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::setprecision(precision) << std::get<double>(c);
  return os.str();
}

}  // namespace

void Table::header(std::vector<std::string> labels) { header_ = std::move(labels); }

void Table::row(std::vector<Cell> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<std::string> line;
    line.reserve(r.size());
    for (std::size_t j = 0; j < r.size(); ++j) {
      line.push_back(render(r[j], precision_));
      width[j] = std::max(width[j], line.back().size());
    }
    text.push_back(std::move(line));
  }
  os << "== " << title_ << " ==\n";
  auto rule = [&] {
    for (std::size_t j = 0; j < header_.size(); ++j)
      os << '+' << std::string(width[j] + 2, '-');
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t j = 0; j < cells.size(); ++j)
      os << "| " << std::setw(static_cast<int>(width[j])) << cells[j] << ' ';
    os << "|\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& r : text) line(r);
  rule();
}

std::string sparkline(const std::vector<double>& values) {
  static const char kRamp[] = ".:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof kRamp) - 1;
  double lo = 0.0, hi = 0.0;
  bool seen = false;
  for (const double v : values) {
    if (!std::isfinite(v)) continue;
    lo = seen ? std::min(lo, v) : v;
    hi = seen ? std::max(hi, v) : v;
    seen = true;
  }
  std::string out;
  out.reserve(values.size());
  for (const double v : values) {
    if (!std::isfinite(v)) {
      out.push_back('?');
    } else if (hi <= lo) {
      out.push_back('-');
    } else {
      const int level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
      out.push_back(kRamp[std::clamp(level, 0, kLevels - 1)]);
    }
  }
  return out;
}

}  // namespace bst::util
