// Metrics registry: named log-bucketed latency/size histograms.
//
// The aggregate per-phase totals of util/trace.h answer "where did the time
// go"; the histograms here answer "what was the *distribution*" -- the shape
// over time the paper's per-step cost analysis (eqs. 25-32) is really about.
// A phase whose p99 drifts while its mean holds steady is invisible to the
// Tracer's accumulators but jumps out of a percentile summary.
//
// Design, mirroring the Tracer:
//   * Names are interned once into a fixed table of kMaxHistograms slots;
//     recording is a relaxed atomic increment into a log-bucketed count
//     array (no locks, no allocation on the hot path).
//   * Buckets are logarithmic with 4 linear sub-buckets per octave, so the
//     relative bucket width is at most 25% over the full uint64 range and
//     values 0..3 are exact.  Percentiles are estimated by linear
//     interpolation inside the containing bucket (error bounded by the
//     bucket width; pinned by tests/test_histogram.cc).
//   * Recording is NOT internally gated: call sites gate on
//     util::Tracer::enabled() (every existing site already has the flag in
//     hand), keeping the disabled cost identical to the rest of the layer.
//
// Alongside the explicitly named histograms, every trace phase gets an
// implicit `<phase>_ns` latency histogram fed by TraceSpan, so per-step
// reflector build/apply latency distributions come for free wherever spans
// already exist.  Snapshots land in the perf report's "histograms" section
// (docs/OBSERVABILITY.md).
//
// Three accumulator kinds now share the registry machinery:
//   * histograms -- "what was the distribution" (latencies, sizes);
//   * counters   -- monotonic "how often did it happen" event counts;
//   * gauges     -- "how much right now": set/add semantics for live state
//     (queue depth, inflight requests, cache resident bytes, dispatcher
//     backlog age).  Unlike counters they go up AND down, and a snapshot
//     reports every registered gauge -- zero is a meaningful reading.
// The live-telemetry exporter (util/telemetry.h) snapshots all three on a
// timer; reports embed them as "histograms"/"counters"/"gauges" sections.
//
// No silent caps: registering past a kMax* table simply disables that one
// instrument (its id is invalid, records no-op) -- but the drop is counted
// in the synthetic `metrics_dropped` counter and announced once through a
// `metrics_registry_full` watchdog warning, so a saturated registry is
// visible in every report instead of vanishing (or aborting the run, as
// the old throwing behaviour did).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/trace.h"

namespace bst::util {

/// Stable identifier of an interned histogram name.
using HistId = int;

/// Stable identifier of an interned counter name.
using CtrId = int;

/// Stable identifier of an interned gauge name.
using GaugeId = int;

/// Log-bucket geometry: 4 sub-buckets per power of two.
inline constexpr int kHistSubBuckets = 4;
/// Total bucket count covering the full uint64 range (values 0..3 map to
/// buckets 0..3; larger values to 4*(msb-1) + sub, msb in [2, 63]).
inline constexpr int kHistBuckets = 252;

/// Bucket index containing `v` (total order preserved across buckets).
[[nodiscard]] int hist_bucket(std::uint64_t v) noexcept;
/// Inclusive lower / exclusive upper bound of bucket `b`.
[[nodiscard]] double hist_bucket_lo(int b) noexcept;
[[nodiscard]] double hist_bucket_hi(int b) noexcept;

/// Copied-out state of one histogram (only non-empty buckets are listed).
struct HistogramStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  std::vector<std::pair<double, std::uint64_t>> buckets;  // {lower bound, count}

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Interpolated quantile for q in [0, 1] (0 when empty).
  [[nodiscard]] double quantile(double q) const;
};

/// Copied-out state of one named counter.
struct CounterStats {
  std::string name;
  std::uint64_t value = 0;
};

/// Copied-out state of one named gauge (signed: gauges go down too).
struct GaugeStats {
  std::string name;
  std::int64_t value = 0;
};

/// Process-wide histogram registry (accumulators live for the process).
class Metrics {
 public:
  /// Interns `name`, returning its id (idempotent).  Once kMaxHistograms
  /// distinct names exist further registrations return an invalid id whose
  /// records no-op, bump the `metrics_dropped` counter and fire a one-shot
  /// `metrics_registry_full` watchdog warning (no silent caps).
  static HistId histogram(const std::string& name);

  /// Adds one sample.  Lock-free; callers gate on Tracer::enabled().
  static void record(HistId id, std::uint64_t value) noexcept;

  /// Adds one sample to the phase's implicit `<phase>_ns` latency
  /// histogram (used by TraceSpan; callers gate on Tracer::enabled()).
  static void record_phase_ns(PhaseId id, std::uint64_t ns) noexcept;

  /// Copies out every histogram with at least one sample, named histograms
  /// first, then the implicit per-phase `<phase>_ns` ones.
  static std::vector<HistogramStats> snapshot();

  /// Interns a monotonic event counter (idempotent; same overflow contract
  /// as histogram()).  Histograms answer "what was the distribution";
  /// counters answer "how often did it happen" -- cache hits/misses/
  /// evictions, admissions, rejections (src/service).
  static CtrId counter(const std::string& name);

  /// Adds `delta` to the counter.  Lock-free and NOT gated on the tracer:
  /// like the thread-pool chunk counts, event counts always accumulate
  /// (one relaxed fetch-add; there is no per-event allocation to avoid).
  static void add(CtrId id, std::uint64_t delta = 1) noexcept;

  /// Current value of one counter (0 for an invalid id).
  static std::uint64_t counter_value(CtrId id) noexcept;

  /// Copies out every counter with a non-zero value, in interning order,
  /// appending a synthetic `metrics_dropped` entry when any registration
  /// overflowed a kMax* table.  Lands in the perf report's "counters"
  /// section (additive, schema v1).
  static std::vector<CounterStats> counters_snapshot();

  /// Interns a gauge (idempotent; same overflow contract as histogram()).
  /// Gauges carry instantaneous state -- set() for absolute readings
  /// (queue depth after a push), add() for +/- deltas (inflight requests).
  static GaugeId gauge(const std::string& name);

  /// Stores `value` / adds `delta`.  Lock-free, never gated on the tracer:
  /// gauges mirror live service state, which exists whether or not a
  /// profiled run is watching.
  static void gauge_set(GaugeId id, std::int64_t value) noexcept;
  static void gauge_add(GaugeId id, std::int64_t delta) noexcept;

  /// Current reading of one gauge (0 for an invalid id).
  static std::int64_t gauge_value(GaugeId id) noexcept;

  /// Copies out every registered gauge (zero readings included -- an empty
  /// queue is a measurement), in interning order.
  static std::vector<GaugeStats> gauges_snapshot();

  /// Registrations refused because a kMax* table was full (the value the
  /// synthetic `metrics_dropped` counter reports).
  static std::uint64_t dropped();

  /// Zeroes every accumulator and the drop count, and re-arms the one-shot
  /// registry-full warning (names/ids are preserved).
  static void reset();

  static constexpr int kMaxHistograms = 64;
  static constexpr int kMaxCounters = 64;
  static constexpr int kMaxGauges = 64;
};

}  // namespace bst::util
