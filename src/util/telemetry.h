// Live telemetry: a periodic exporter that turns the process-global
// Metrics accumulators into continuously observable signals.
//
// Everything observability built so far (reports, traces, the ledger) is
// post-hoc -- written once, after the run.  A long-running service::Service
// needs the opposite: current queue depth, hit rate, tail latency, and SLO
// burn-rate *while it serves*, cheap enough to leave on in production.
//
// Three layers, separable on purpose:
//
//   * TelemetrySnapshot / telemetry_capture(): one timestamped copy of every
//     counter, gauge, and histogram (util/metrics.h).  Pure data.
//   * The pure serializers telemetry_tick_json() and prometheus_exposition():
//     deterministic functions of (snapshot, derived stats) -- same inputs,
//     byte-identical output, section entries sorted by name.  Tested without
//     any thread or clock (tests/test_telemetry.cc).
//   * TelemetryExporter: the background thread.  Every interval_ms it
//     captures a snapshot, derives rolling-window QPS/p50/p99/burn-rate from
//     the window of recent snapshots, appends one JSONL tick to `out`, and
//     atomically rewrites `prom` (write tmp + rename) in Prometheus text
//     exposition format for pull-based scrapers.  A final tick is emitted on
//     stop(), so short runs always leave at least one observation.
//
// Rolling-window statistics come from *bucket deltas* between the oldest and
// newest snapshot in the window: the log-bucketed histograms are monotone
// accumulators, so subtracting per-bucket counts yields the distribution of
// exactly the window's samples, and quantiles/burn-rate follow from the
// existing interpolation.  Burn-rate is the SRE error-budget form: the
// fraction of window requests slower than the SLO target, divided by the
// budget (1 - 0.99) -- burn_rate > 1 means the p99 budget is being spent
// faster than it accrues.
//
// Self-overhead is measured, not assumed: every tick accumulates its own
// wall time, and both outputs carry uptime vs. telemetry-self seconds so the
// 3% observability budget (util/calibrate.h) is checkable from the stream
// alone (the telemetry-smoke CI job gates on it).
//
// Environment (TelemetryOptions::from_env; docs/API.md):
//   BST_TELEMETRY_INTERVAL_MS  tick period (default 1000; min 10)
//   BST_TELEMETRY_OUT          JSONL tick stream path (append; "" = off)
//   BST_TELEMETRY_PROM         Prometheus exposition path ("" = off)
//   BST_SLO_P99_MS             SLO latency target for burn-rate (default 100)
//   BST_TELEMETRY_WINDOW       rolling window length in ticks (default 10)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace bst::util {

/// Exporter configuration (see the header comment for the env knobs).
struct TelemetryOptions {
  std::uint64_t interval_ms = 1000;  // tick period
  std::string out;                   // JSONL tick stream ("" = off)
  std::string prom;                  // Prometheus exposition file ("" = off)
  double slo_p99_ms = 100.0;         // SLO latency target for burn-rate
  std::size_t window_ticks = 10;     // rolling window length
  /// Counter whose rate is reported as QPS and histogram whose window
  /// quantiles become p50/p99 (defaults match the service layer).
  std::string qps_counter = "service_completed";
  std::string latency_hist = "service_request_ns";

  /// Applies BST_TELEMETRY_* / BST_SLO_* environment overrides.
  static TelemetryOptions from_env(TelemetryOptions base);
  static TelemetryOptions from_env() { return from_env(TelemetryOptions{}); }

  /// True when at least one output is configured.
  [[nodiscard]] bool active() const { return !out.empty() || !prom.empty(); }
};

/// One timestamped copy of every Metrics accumulator.
struct TelemetrySnapshot {
  std::uint64_t ts_ns = 0;  // TraceClock stamp at capture
  std::vector<CounterStats> counters;
  std::vector<GaugeStats> gauges;
  std::vector<HistogramStats> histograms;
};

/// Captures the current Metrics state (counters incl. the synthetic
/// `metrics_dropped`, all gauges, every non-empty histogram).
[[nodiscard]] TelemetrySnapshot telemetry_capture(std::uint64_t ts_ns);

/// Rolling-window statistics derived from the (oldest, newest) snapshot
/// pair of the exporter's window.
struct TelemetryDerived {
  double window_s = 0.0;        // wall span of the window
  std::uint64_t window_count = 0;  // latency samples inside the window
  double qps = 0.0;             // qps_counter delta / window_s
  double p50_ms = 0.0;          // window latency quantiles (0 when empty)
  double p99_ms = 0.0;
  double slo_p99_ms = 0.0;      // the target the burn-rate is against
  double bad_fraction = 0.0;    // window requests slower than the SLO
  double burn_rate = 0.0;       // bad_fraction / (1 - 0.99)
};

/// Derives window stats from the two snapshots (pure; `oldest` and `newest`
/// may be the same snapshot, yielding an all-zero window).
[[nodiscard]] TelemetryDerived telemetry_derive(const TelemetrySnapshot& oldest,
                                                const TelemetrySnapshot& newest,
                                                const TelemetryOptions& opt);

/// One compact JSONL tick line (no trailing newline).  Deterministic:
/// counters/gauges/histograms are emitted sorted by name.
[[nodiscard]] std::string telemetry_tick_json(std::uint64_t seq,
                                              const TelemetrySnapshot& snap,
                                              const TelemetryDerived& d,
                                              double uptime_s, double self_s);

/// The Prometheus text-exposition document for one snapshot: counters as
/// `bst_<name>_total`, gauges as `bst_<name>`, histograms as summaries with
/// quantile labels, plus the derived series (bst_qps, bst_p50_ms, bst_p99_ms,
/// bst_burn_rate, bst_uptime_seconds, bst_telemetry_self_seconds).  Metric
/// names are sanitized to [a-zA-Z0-9_:]; entries sorted by name; every
/// family gets `# HELP` + `# TYPE` lines (tools/check_telemetry.py gates
/// both).
[[nodiscard]] std::string prometheus_exposition(const TelemetrySnapshot& snap,
                                                const TelemetryDerived& d,
                                                double uptime_s, double self_s);

/// Escapes a Prometheus label *value*: backslash, double quote, and newline
/// become \\ \" \n per the text-exposition format, so third-party scrapers
/// parse labels carrying arbitrary interned names.
[[nodiscard]] std::string prom_escape_label(const std::string& value);

/// The background exporter thread.  Construction does not start it; start()
/// is a no-op when !opt.active().  stop() (or destruction) emits one final
/// tick and joins.
class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions opt = TelemetryOptions::from_env());
  ~TelemetryExporter();
  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  void start();
  void stop();

  [[nodiscard]] bool running() const;
  /// Ticks emitted so far / exporter self-time spent producing them.
  [[nodiscard]] std::uint64_t ticks() const;
  [[nodiscard]] double self_seconds() const;

  [[nodiscard]] const TelemetryOptions& options() const noexcept { return opt_; }

 private:
  void run();
  void tick(std::uint64_t seq);

  TelemetryOptions opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  double self_s_ = 0.0;
  std::uint64_t start_ns_ = 0;
  std::vector<TelemetrySnapshot> window_;  // oldest first
  std::thread thread_;
};

}  // namespace bst::util
