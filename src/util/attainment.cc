#include "util/attainment.h"

#include <algorithm>
#include <cmath>

#include "util/ledger.h"

namespace bst::util {

namespace {

double number_or(const Json* v, double fallback) {
  return (v != nullptr && v->kind() == Json::Kind::Number) ? v->as_number() : fallback;
}

double field(const Json& obj, const char* key) { return number_or(obj.find(key), 0.0); }

const PhaseModel* find_model(const std::vector<PhaseModel>& models, const std::string& name) {
  for (const PhaseModel& m : models) {
    if (m.phase == name) return &m;
  }
  return nullptr;
}

}  // namespace

Json attainment_section(const Json& report_doc, const Json* calibration,
                        const std::vector<PhaseModel>& models) {
  Json out = Json::object();

  double peak = 0.0, bw = 0.0, overhead_ns = 0.0;
  const bool has_cal = calibration != nullptr && calibration->kind() == Json::Kind::Object;
  if (has_cal) {
    peak = field(*calibration, "peak_gflops");
    bw = field(*calibration, "stream_gbs");
    overhead_ns = field(*calibration, "span_overhead_ns");
    Json cal = Json::object();
    // Hash of the full profile so reports can be matched to the exact
    // calibration they were judged against.
    cal.set("hash", Json::string(fnv1a_hex(calibration->dump_compact())));
    if (const Json* cpu = calibration->find("cpu_model"); cpu != nullptr) {
      cal.set("cpu_model", *cpu);
    }
    cal.set("peak_gflops", Json::number(peak));
    cal.set("stream_gbs", Json::number(bw));
    cal.set("span_overhead_ns", Json::number(overhead_ns));
    out.set("calibration", std::move(cal));
  }

  double total_calls = 0.0;
  double seconds_sum = 0.0;
  Json rows = Json::object();
  if (const Json* phases = report_doc.find("phases"); phases != nullptr) {
    for (const auto& [name, ph] : phases->members()) {
      const double seconds = field(ph, "seconds");
      const double flops = field(ph, "flops");
      const double bytes = field(ph, "bytes");
      total_calls += field(ph, "calls");
      seconds_sum += seconds;
      Json r = Json::object();
      r.set("seconds", Json::number(seconds));
      double gflops = 0.0;
      if (seconds > 0.0 && flops > 0.0) {
        gflops = flops / seconds / 1e9;
        r.set("gflops", Json::number(gflops));
      }
      double intensity = 0.0;
      if (bytes > 0.0 && flops > 0.0) {
        intensity = flops / bytes;
        r.set("intensity", Json::number(intensity));
      }
      if (has_cal && intensity > 0.0) {
        const double ceiling = std::min(peak, intensity * bw);
        r.set("ceiling_gflops", Json::number(ceiling));
        if (ceiling > 0.0 && gflops > 0.0) {
          r.set("attainment", Json::number(gflops / ceiling));
        }
      }
      // Measured-vs-modeled join (util/prof): when the PMU ran, judge the
      // modeled byte count against LLC-derived DRAM traffic.  A ratio far
      // from 1 means the roofline above was fed the wrong intensity.
      const double measured_bytes = field(ph, "measured_bytes");
      if (measured_bytes > 0.0 && flops > 0.0) {
        r.set("measured_intensity", Json::number(flops / measured_bytes));
      }
      if (measured_bytes > 0.0 && bytes > 0.0) {
        r.set("measured_vs_model_bytes_ratio", Json::number(measured_bytes / bytes));
      }
      if (const double ipc = field(ph, "ipc"); ipc > 0.0) {
        r.set("ipc", Json::number(ipc));
      }
      if (const PhaseModel* m = find_model(models, name); m != nullptr) {
        if (m->model_flops > 0.0) {
          r.set("model_flops", Json::number(m->model_flops));
          r.set("model_ratio", Json::number(flops / m->model_flops));
        }
        if (m->paper_flops > 0.0) {
          r.set("paper_flops", Json::number(m->paper_flops));
          r.set("paper_ratio", Json::number(flops / m->paper_flops));
        }
      }
      rows.set(name, std::move(r));
    }
  }
  out.set("phases", std::move(rows));

  const Json* metrics = report_doc.find("metrics");
  double makespan = metrics != nullptr ? number_or(metrics->find("time_s"), 0.0) : 0.0;
  if (makespan <= 0.0) makespan = seconds_sum;  // benches without a wall metric
  out.set("makespan_s", Json::number(makespan));
  if (metrics != nullptr) {
    if (const Json* be = metrics->find("backward_error");
        be != nullptr && be->kind() == Json::Kind::Number) {
      out.set("backward_error", *be);
    }
  }
  if (has_cal) {
    const double obs_s = total_calls * overhead_ns * 1e-9;
    out.set("span_calls", Json::number(total_calls));
    out.set("obs_overhead_s", Json::number(obs_s));
    if (makespan > 0.0) out.set("obs_overhead_frac", Json::number(obs_s / makespan));
  }
  return out;
}

}  // namespace bst::util
